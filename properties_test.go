package kiss

import (
	"testing"
	"testing/quick"

	"repro/internal/lower"
	"repro/internal/randprog"
)

// These property tests validate the paper's two central meta-claims on
// randomly generated concurrent programs, using the interleaving explorer
// as ground truth.

// mustParse parses a generated program, which is correct by construction.
func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}
	return p
}

// TestNoFalseErrors is the paper's soundness-of-reports direction
// (Section 4: "if an assertion is violated in the translated sequential
// program, it is violated in some execution of the multithreaded program
// as well"): whenever the KISS pipeline reports an error, the full
// interleaving exploration of the original program must also report one.
func TestNoFalseErrors(t *testing.T) {
	errors := 0
	for seed := int64(0); seed < 120; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for _, maxTS := range []int{0, 1, 2} {
			prog := mustParse(t, src)
			res, err := Check(prog, WithMaxTS(maxTS), WithMaxStates(300000))
			if err != nil {
				t.Fatalf("seed %d ts %d: %v", seed, maxTS, err)
			}
			if res.Verdict != Error {
				continue
			}
			errors++
			ground, err := Explore(mustParse(t, src), WithMaxStates(300000))
			if err != nil {
				t.Fatalf("seed %d: ground truth: %v", seed, err)
			}
			if ground.Verdict == Safe {
				t.Errorf("FALSE ERROR at seed %d, ts %d: KISS reports %q but the concurrent program is safe\n%s",
					seed, maxTS, res.Message, src)
			}
		}
	}
	if errors == 0 {
		t.Error("no generated program produced an error; the property was tested vacuously")
	}
	t.Logf("validated %d error reports against ground truth", errors)
}

// TestTwoThreadContextSwitchCoverage is the paper's coverage
// characterization (Section 2: "given a 2-threaded concurrent program, the
// sequential program simulates all executions with at most two context
// switches"): every error the bounded concurrent explorer finds within 2
// context switches must also be found by KISS with ts bound 1.
func TestTwoThreadContextSwitchCoverage(t *testing.T) {
	covered := 0
	for seed := int64(0); seed < 150; seed++ {
		src := randprog.GenerateTwoThreaded(seed, randprog.Default)
		bounded, err := Explore(mustParse(t, src), WithMaxStates(300000), WithContextBound(2))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bounded.Verdict != Error {
			continue
		}
		covered++
		res, err := Check(mustParse(t, src), WithMaxTS(1), WithMaxStates(300000))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Verdict != Error {
			t.Errorf("COVERAGE GAP at seed %d: a 2-context-switch error exists but KISS(ts=1) reports %v\n%s",
				seed, res.Verdict, src)
		}
	}
	if covered == 0 {
		t.Error("no 2-switch-reachable errors generated; the property was tested vacuously")
	}
	t.Logf("validated KISS coverage on %d bounded-error programs", covered)
}

// TestKissSubsetOfConcurrent: KISS never finds more than the unbounded
// explorer at ANY ts bound — its behaviors are a subset. (Strictly implied
// by TestNoFalseErrors but phrased over the verdict lattice: Error implies
// ground Error; Safe may under-approximate.)
func TestKissVerdictLattice(t *testing.T) {
	for seed := int64(200); seed < 260; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		ground, err := Explore(mustParse(t, src), WithMaxStates(300000))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ground.Verdict == ResourceBound {
			continue
		}
		for _, maxTS := range []int{0, 3} {
			res, err := Check(mustParse(t, src), WithMaxTS(maxTS), WithMaxStates(300000))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.Verdict == Error && ground.Verdict == Safe {
				t.Errorf("seed %d ts %d: KISS error on safe program\n%s", seed, maxTS, src)
			}
		}
	}
}

// TestTransformInvariants (testing/quick): for any seed, the transformed
// program is well-formed, core, sequential, and the transformation is
// deterministic.
func TestTransformInvariants(t *testing.T) {
	f := func(seed int64, tsRaw uint8) bool {
		maxTS := int(tsRaw % 4)
		src := randprog.Generate(seed, randprog.Default)
		p1, err := Parse(src)
		if err != nil {
			return false
		}
		out1, err := NewConfig(WithMaxTS(maxTS)).Transform(p1)
		if err != nil {
			return false
		}
		if ok, _ := lower.IsCore(out1.AST()); !ok {
			return false
		}
		if !out1.Sequential() {
			return false
		}
		p2, err := Parse(src)
		if err != nil {
			return false
		}
		out2, err := NewConfig(WithMaxTS(maxTS)).Transform(p2)
		if err != nil {
			return false
		}
		return out1.Source() == out2.Source()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTraceWellFormedness (testing/quick): every reconstructed trace from
// a failing random program starts on thread 0, marks switches exactly at
// thread changes, and never leaks instrumentation names.
func TestTraceWellFormedness(t *testing.T) {
	checked := 0
	f := func(seed int64) bool {
		src := randprog.Generate(seed, randprog.Default)
		prog, err := Parse(src)
		if err != nil {
			return false
		}
		res, err := Check(prog, WithMaxTS(2), WithMaxStates(300000))
		if err != nil {
			return false
		}
		if res.Verdict != Error || res.Trace == nil || len(res.Trace.Steps) == 0 {
			return true // nothing to validate for safe programs
		}
		checked++
		if res.Trace.Steps[0].ThreadID != 0 {
			return false
		}
		last := -1
		for _, s := range res.Trace.Steps {
			if s.Func != "" && (len(s.Func) >= 2 && s.Func[:2] == "__") {
				return false
			}
			if last >= 0 && (s.ThreadID != last) != s.Switch {
				return false
			}
			last = s.ThreadID
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
	if checked == 0 {
		t.Log("note: no failing traces among quick-generated seeds")
	}
}

// TestTraceReplayCertification: for failing random programs, the
// reconstructed trace's schedule replays to a real failure on the
// original concurrent program — not merely "some failure exists", but the
// specific interleaving the trace describes.
func TestTraceReplayCertification(t *testing.T) {
	certified := 0
	for seed := int64(0); seed < 80; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		prog := mustParse(t, src)
		res, err := Check(prog, WithMaxTS(2), WithMaxStates(300000))
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Error {
			continue
		}
		ok, err := NewConfig(WithMaxStates(300000)).Certify(mustParse(t, src), res)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Errorf("seed %d: reconstructed schedule %v does not replay\n%s",
				seed, res.Trace.Schedule(), src)
			continue
		}
		certified++
	}
	if certified == 0 {
		t.Error("no failing programs; replay certification tested vacuously")
	}
	t.Logf("certified %d reconstructed traces by guided replay", certified)
}
