// Package kiss (module repro) is a reproduction of "KISS: Keep It Simple
// and Sequential" (Shaz Qadeer and Dinghao Wu, PLDI 2004): an assertion
// and race-condition checker for concurrent programs that works by
// transforming the concurrent program into a sequential program simulating
// a large subset of its behaviors, and analyzing the result with a checker
// that only understands sequential semantics.
//
// The pipeline (the paper's Figure 1) is:
//
//	concurrent program --Transform--> sequential program --seqcheck--> error trace
//	                                                          |
//	                                       reconstructed concurrent trace
//
// This package is the public facade over the internal packages:
//
//	internal/lexer,parser,sema,lower  — the parallel-language front end
//	internal/kiss                     — the Figure 4/5 transformations
//	internal/seqcheck                 — sequential model checker (SLAM's role)
//	internal/concheck                 — interleaving explorer (baseline)
//	internal/trace                    — sequential-to-concurrent trace mapping
//	internal/alias                    — unification-based alias analysis
//
// Quick start:
//
//	prog, err := kiss.Parse(src)
//	res, err := kiss.CheckRace(prog, kiss.RaceTarget{Record: "DEVICE_EXTENSION",
//	        Field: "stoppingFlag"}, kiss.Options{MaxTS: 0}, kiss.Budget{})
//	if res.Verdict == kiss.Error { fmt.Print(res.Trace.Format()) }
package kiss

import (
	"fmt"
	"os"

	"repro/internal/ast"
	"repro/internal/boolcheck"
	"repro/internal/concheck"
	ikiss "repro/internal/kiss"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/sema"
	"repro/internal/seqcheck"
	"repro/internal/trace"
)

// Program is a parsed, checked, core-form program in the parallel language.
type Program struct {
	ast *ast.Program
	// sequential marks programs produced by Transform/TransformRace.
	sequential bool
}

// Parse parses, checks, and lowers a concurrent program from source text.
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := sema.Check(p, sema.Source); err != nil {
		return nil, err
	}
	lower.Program(p)
	return &Program{ast: p}, nil
}

// ParseFile is Parse on the contents of a file.
func ParseFile(path string) (*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// FromAST wraps an already-built core-form program. It is the bridge for
// programmatically generated models (the synthetic driver corpus). The
// program is checked and lowered.
func FromAST(p *ast.Program) (*Program, error) {
	if err := sema.Check(p, sema.Source); err != nil {
		return nil, err
	}
	lower.Program(p)
	return &Program{ast: p}, nil
}

// AST exposes the underlying program for in-module tooling.
func (p *Program) AST() *ast.Program { return p.ast }

// Source renders the program back to concrete syntax.
func (p *Program) Source() string { return ast.Print(p.ast) }

// Sequential reports whether this program is a KISS transformation output
// (in the sequential fragment of the language).
func (p *Program) Sequential() bool { return p.sequential }

// DotCFG renders the control-flow graph of one function of the program in
// Graphviz DOT format (developer tooling: `kiss cfg`). For transformed
// programs, pass the translated name (e.g. "__kiss_main") or a generated
// helper, or "main" for the Check(s) wrapper.
func (p *Program) DotCFG(fn string) (string, error) {
	c, err := sem.Compile(p.ast)
	if err != nil {
		return "", err
	}
	return sem.DotCFG(c, fn)
}

// Options parameterize the KISS transformation.
type Options struct {
	// MaxTS is the bound MAX on the multiset ts of forked-but-unscheduled
	// threads (Section 4) — the knob trading coverage for analysis cost.
	MaxTS int
	// DisableAliasElision keeps all race checks regardless of the alias
	// analysis (ablation only; see BenchmarkAliasElision).
	DisableAliasElision bool
	// Scheduler selects the scheduling policy of the generated schedule
	// function (Section 4's pluggable-scheduler remark). The zero value
	// is the paper's fully nondeterministic scheduler; see the Scheduler
	// constants for the cheaper, lower-coverage variants.
	Scheduler Scheduler
}

// Scheduler re-exports the transformation's scheduling policies.
type Scheduler = ikiss.Scheduler

// Scheduling policies (see internal/kiss for semantics).
const (
	SchedulerNondet      = ikiss.SchedulerNondet
	SchedulerDrainAll    = ikiss.SchedulerDrainAll
	SchedulerAtCallsOnly = ikiss.SchedulerAtCallsOnly
)

// RaceTarget names the distinguished variable r checked for races
// (Section 5): either a global variable, or a field of a record type (the
// form used for device-extension fields).
type RaceTarget struct {
	Global string
	Record string
	Field  string
}

func (t RaceTarget) internal() ast.RaceTarget {
	return ast.RaceTarget{Global: t.Global, Record: t.Record, Field: t.Field}
}

// String renders the target like "DEVICE_EXTENSION.stoppingFlag".
func (t RaceTarget) String() string {
	it := t.internal()
	return (&it).String()
}

// Transform applies the assertion-checking translation (Figure 4),
// producing a sequential program.
func Transform(p *Program, opts Options) (*Program, error) {
	out, err := ikiss.Transform(p.ast, ikiss.Options{MaxTS: opts.MaxTS, DisableAliasElision: opts.DisableAliasElision, Scheduler: opts.Scheduler})
	if err != nil {
		return nil, err
	}
	return &Program{ast: out, sequential: true}, nil
}

// TransformRace applies the race-checking translation (Figure 5) for the
// given distinguished variable, producing a sequential program.
func TransformRace(p *Program, t RaceTarget, opts Options) (*Program, error) {
	out, err := ikiss.TransformRace(p.ast, t.internal(), ikiss.Options{MaxTS: opts.MaxTS, DisableAliasElision: opts.DisableAliasElision, Scheduler: opts.Scheduler})
	if err != nil {
		return nil, err
	}
	return &Program{ast: out, sequential: true}, nil
}

// Budget bounds and configures a model-checking run; zero fields mean
// unlimited. It plays the role of the paper's per-run resource bound ("20
// minutes of CPU time and 800MB of memory").
type Budget struct {
	MaxStates int
	MaxSteps  int
	MaxDepth  int
	// BFS selects breadth-first search in the sequential checker, which
	// makes the returned counterexample a shortest error trace.
	BFS bool
}

// Verdict is the outcome of a check.
type Verdict int

const (
	// Safe means the explored state space contains no failure.
	Safe Verdict = iota
	// Error means a failure is reachable; Result carries the trace.
	Error
	// ResourceBound means the budget ran out first (a Table 1 "timeout").
	ResourceBound
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Error:
		return "error"
	default:
		return "resource-bound"
	}
}

// Result reports a check's verdict, statistics, and (for Error) both the
// raw sequential trace and the reconstructed concurrent trace.
type Result struct {
	Verdict Verdict
	// Message describes the failure (Error verdicts).
	Message string
	// Pos is the failing statement's source position (Error verdicts).
	Pos ast.Pos
	// Trace is the reconstructed concurrent error trace (Error verdicts
	// from the KISS pipeline).
	Trace *trace.Trace
	// SeqEvents is the raw sequential counterexample (Error verdicts).
	SeqEvents []sem.Event
	// States and Steps are explored-state and executed-transition counts.
	States int
	Steps  int
}

// CheckAssertions runs the full KISS pipeline for assertion checking:
// transform, sequential model checking, and trace reconstruction.
func CheckAssertions(p *Program, opts Options, budget Budget) (*Result, error) {
	seq, err := Transform(p, opts)
	if err != nil {
		return nil, err
	}
	return CheckSequential(seq, budget)
}

// CheckRace runs the full KISS pipeline for race checking on one
// distinguished variable.
func CheckRace(p *Program, t RaceTarget, opts Options, budget Budget) (*Result, error) {
	seq, err := TransformRace(p, t, opts)
	if err != nil {
		return nil, err
	}
	return CheckSequential(seq, budget)
}

// CheckSequential analyzes an already-transformed sequential program with
// the sequential model checker and reconstructs the concurrent trace on
// error. It is exposed separately so callers can reuse one transformation
// across budgets.
func CheckSequential(seq *Program, budget Budget) (*Result, error) {
	if !seq.sequential {
		return nil, fmt.Errorf("kiss: CheckSequential requires a transformed program")
	}
	c, err := sem.Compile(seq.ast)
	if err != nil {
		return nil, err
	}
	r := seqcheck.Check(c, seqcheck.Options{
		MaxStates: budget.MaxStates,
		MaxSteps:  budget.MaxSteps,
		MaxDepth:  budget.MaxDepth,
		BFS:       budget.BFS,
	})
	out := &Result{Verdict: Verdict(r.Verdict), States: r.States, Steps: r.Steps}
	if r.Verdict == seqcheck.Error {
		out.Message = r.Failure.Msg
		out.Pos = r.Failure.Pos
		// A failing assert inside the generated check_r/check_w bodies is
		// the race monitor firing (Section 5): report it as a race on the
		// distinguished variable rather than as a raw assertion.
		if t := seq.ast.RaceTarget; t != nil &&
			(r.Failure.Fn == ikiss.CheckRFn || r.Failure.Fn == ikiss.CheckWFn) {
			kind := "read/write"
			if r.Failure.Fn == ikiss.CheckWFn {
				kind = "write/write or read/write"
			}
			out.Message = fmt.Sprintf("race condition on %s (%s conflict)", t, kind)
		}
		out.SeqEvents = r.Trace
		out.Trace = trace.Reconstruct(r.Trace)
	}
	return out, nil
}

// CheckAssertionsSummaries runs the KISS pipeline with the summary-based
// interprocedural checker (internal/boolcheck, the Bebop/RHS architecture
// of the paper's complexity claim) in place of the explicit-state
// explorer. It supports only the pointer-free fragment but terminates on
// recursive programs with finite data; no counterexample trace is
// produced (summaries conflate call stacks). Returns an error when the
// program falls outside the fragment.
func CheckAssertionsSummaries(p *Program, opts Options, budget Budget) (*Result, error) {
	seq, err := Transform(p, opts)
	if err != nil {
		return nil, err
	}
	c, err := sem.Compile(seq.ast)
	if err != nil {
		return nil, err
	}
	r, err := boolcheck.Check(c, boolcheck.Options{MaxPathEdges: budget.MaxStates})
	if err != nil {
		return nil, err
	}
	out := &Result{Verdict: Verdict(r.Verdict), States: r.PathEdges}
	if r.Verdict == boolcheck.Error {
		out.Message = r.Failure.Msg
		out.Pos = r.Failure.Pos
	}
	return out, nil
}

// TransformStats re-exports the instrumentation blowup statistics
// (Section 4's "small constant blowup" quantities).
type TransformStats = ikiss.Stats

// MeasureTransform computes the blowup statistics between a source
// program and its transformation output.
func MeasureTransform(src, out *Program) TransformStats {
	return ikiss.Measure(src.ast, out.ast)
}

// CertifyTrace replays the original concurrent program p along the
// reconstructed schedule of an Error result, confirming that the exact
// interleaving the trace describes really reaches a failure — the
// machine-checked form of the paper's "the error trace leading to the
// assertion failure in P is easily constructed from the error trace in
// P'". It returns (true, nil) when the failure replays.
func CertifyTrace(p *Program, res *Result, budget Budget) (bool, error) {
	if res == nil || res.Verdict != Error || res.Trace == nil {
		return false, fmt.Errorf("kiss: CertifyTrace requires an Error result with a reconstructed trace")
	}
	c, err := sem.Compile(p.ast)
	if err != nil {
		return false, err
	}
	rr := trace.Replay(c, res.Trace.Schedule(), budget.MaxStates)
	return rr.Certified, nil
}

// ExploreConcurrent runs the baseline interleaving-exploring model checker
// directly on the concurrent program — the approach whose exponential
// blowup KISS avoids. contextBound < 0 means unbounded.
func ExploreConcurrent(p *Program, budget Budget, contextBound int) (*Result, error) {
	c, err := sem.Compile(p.ast)
	if err != nil {
		return nil, err
	}
	r := concheck.Check(c, concheck.Options{
		MaxStates:    budget.MaxStates,
		MaxSteps:     budget.MaxSteps,
		MaxDepth:     budget.MaxDepth,
		ContextBound: contextBound,
	})
	out := &Result{Verdict: Verdict(r.Verdict), States: r.States, Steps: r.Steps}
	if r.Verdict == concheck.Error {
		out.Message = r.Failure.Msg
		out.Pos = r.Failure.Pos
		out.SeqEvents = r.Trace
	}
	return out, nil
}
