// Package kiss (module repro) is a reproduction of "KISS: Keep It Simple
// and Sequential" (Shaz Qadeer and Dinghao Wu, PLDI 2004): an assertion
// and race-condition checker for concurrent programs that works by
// transforming the concurrent program into a sequential program simulating
// a large subset of its behaviors, and analyzing the result with a checker
// that only understands sequential semantics.
//
// The pipeline (the paper's Figure 1) is:
//
//	concurrent program --Transform--> sequential program --seqcheck--> error trace
//	                                                          |
//	                                       reconstructed concurrent trace
//
// This package is the public facade over the internal packages:
//
//	internal/lexer,parser,sema,lower  — the parallel-language front end
//	internal/kiss                     — the Figure 4/5 transformations
//	internal/seqcheck                 — sequential model checker (SLAM's role)
//	internal/concheck                 — interleaving explorer (baseline)
//	internal/trace                    — sequential-to-concurrent trace mapping
//	internal/alias                    — unification-based alias analysis
//	internal/stats                    — observability: metrics + progress
//
// Quick start — the unified, context-aware Check API. A single Check call
// runs the whole pipeline under one Config built from functional options;
// the returned Result carries the verdict, the reconstructed trace, and a
// full metrics record (per-phase wall time, states/sec, peak frontier,
// visited-set size, and which budget tripped, if any):
//
//	prog, err := kiss.Parse(src)
//	res, err := kiss.Check(prog,
//	        kiss.WithRaceTarget(kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: "stoppingFlag"}),
//	        kiss.WithMaxTS(0),
//	        kiss.WithMaxStates(40000),
//	        kiss.WithContext(ctx),
//	        kiss.WithProgress(func(e kiss.Event) { log.Printf("%d states", e.States) }))
//	if res.Verdict == kiss.Error { fmt.Print(res.Trace.Format()) }
//	fmt.Printf("%.0f states/sec\n", res.Stats.StatesPerSec)
package kiss

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/ast"
	"repro/internal/boolcheck"
	"repro/internal/cbseq"
	"repro/internal/concheck"
	ikiss "repro/internal/kiss"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/sema"
	"repro/internal/seqcheck"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Program is a parsed, checked, core-form program in the parallel language.
type Program struct {
	ast *ast.Program
	// sequential marks programs produced by Transform/TransformRace.
	sequential bool
	// parseTime is the front-end wall time, carried into Result.Stats.
	parseTime time.Duration
}

// Parse parses, checks, and lowers a concurrent program from source text.
func Parse(src string) (*Program, error) {
	start := time.Now()
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := sema.Check(p, sema.Source); err != nil {
		return nil, err
	}
	lower.Program(p)
	return &Program{ast: p, parseTime: time.Since(start)}, nil
}

// ParseFile is Parse on the contents of a file.
func ParseFile(path string) (*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// FromAST wraps an already-built core-form program. It is the bridge for
// programmatically generated models (the synthetic driver corpus). The
// program is checked and lowered.
func FromAST(p *ast.Program) (*Program, error) {
	start := time.Now()
	if err := sema.Check(p, sema.Source); err != nil {
		return nil, err
	}
	lower.Program(p)
	return &Program{ast: p, parseTime: time.Since(start)}, nil
}

// AST exposes the underlying program for in-module tooling.
func (p *Program) AST() *ast.Program { return p.ast }

// Source renders the program back to concrete syntax.
func (p *Program) Source() string { return ast.Print(p.ast) }

// Sequential reports whether this program is a KISS transformation output
// (in the sequential fragment of the language).
func (p *Program) Sequential() bool { return p.sequential }

// DotCFG renders the control-flow graph of one function of the program in
// Graphviz DOT format (developer tooling: `kiss cfg`). For transformed
// programs, pass the translated name (e.g. "__kiss_main") or a generated
// helper, or "main" for the Check(s) wrapper.
func (p *Program) DotCFG(fn string) (string, error) {
	c, err := sem.Compile(p.ast)
	if err != nil {
		return "", err
	}
	return sem.DotCFG(c, fn)
}

// Scheduler re-exports the transformation's scheduling policies.
type Scheduler = ikiss.Scheduler

// Scheduling policies (see internal/kiss for semantics).
const (
	SchedulerNondet      = ikiss.SchedulerNondet
	SchedulerDrainAll    = ikiss.SchedulerDrainAll
	SchedulerAtCallsOnly = ikiss.SchedulerAtCallsOnly
)

// Observability re-exports: the metrics record carried on every Result,
// the progress-event type delivered to WithProgress hooks, and the Reason
// enum naming which resource bound ended a search early.
type (
	// Stats is the unified metrics record for one check run.
	Stats = stats.Stats
	// Event is one progress sample delivered to a WithProgress hook.
	Event = stats.Event
	// Reason names the bound that ended a search early.
	Reason = stats.Reason
)

// Reasons for a ResourceBound verdict (Result.Stats.Reason).
const (
	ReasonNone     = stats.ReasonNone
	ReasonStates   = stats.ReasonStates
	ReasonSteps    = stats.ReasonSteps
	ReasonDeadline = stats.ReasonDeadline
	ReasonCanceled = stats.ReasonCanceled
)

// Sequentialization modes (Config.Sequentialization).
const (
	// SeqKISS is the paper's translation (Figure 4/5): forked threads run
	// from a bounded ts multiset and never resume once interrupted.
	SeqKISS = "kiss"
	// SeqCB is context-bounded sequentialization (internal/cbseq,
	// Lal–Reps style): per-global snapshots are guessed at each of K
	// context switches and linked by assumes at the end, so every thread
	// can be suspended and resumed up to K times.
	SeqCB = "cb"
)

// DefaultContextSwitches is the CB bound K used when SeqCB is selected
// without an explicit WithContextSwitches.
const DefaultContextSwitches = 2

// RaceTarget names the distinguished variable r checked for races
// (Section 5): either a global variable, or a field of a record type (the
// form used for device-extension fields).
type RaceTarget struct {
	Global string
	Record string
	Field  string
}

func (t RaceTarget) internal() ast.RaceTarget {
	return ast.RaceTarget{Global: t.Global, Record: t.Record, Field: t.Field}
}

// String renders the target like "DEVICE_EXTENSION.stoppingFlag".
func (t RaceTarget) String() string {
	it := t.internal()
	return (&it).String()
}

// Config is the single configuration record for the whole pipeline: the
// transformation knobs, the search budgets, and the execution context
// (cancellation, deadline, progress streaming). It replaces the old
// Options/Budget pair. Build one with NewConfig and functional options,
// or fill the fields directly; the zero value checks assertions with the
// paper's fully nondeterministic scheduler, ts bound 0, and no budget.
type Config struct {
	// MaxTS is the bound MAX on the multiset ts of forked-but-unscheduled
	// threads (Section 4) — the knob trading coverage for analysis cost.
	MaxTS int
	// DisableAliasElision keeps all race checks regardless of the alias
	// analysis (ablation only; see BenchmarkAliasElision).
	DisableAliasElision bool
	// Scheduler selects the scheduling policy of the generated schedule
	// function (Section 4's pluggable-scheduler remark). The zero value
	// is the paper's fully nondeterministic scheduler.
	Scheduler Scheduler
	// Sequentialization selects the source-to-source transform feeding
	// the sequential checker: SeqKISS (the default; "" means kiss) or
	// SeqCB. The mode changes which interleavings are reachable — it is
	// verdict-affecting — so it participates in Normalized()/
	// CanonicalJSON and in persistent summary keys. SeqCB checks
	// assertions on the scalar-globals fragment only: RaceTarget and the
	// Summaries engine are rejected, and programs with heap or pointer
	// operations return an unsupported error (cbseq.IsUnsupported).
	Sequentialization string
	// ContextSwitches is K for SeqCB: how many context switches the
	// translated program simulates (each one guesses a snapshot of the
	// shared globals). 0 selects DefaultContextSwitches; the knob is
	// ignored under SeqKISS. Not to be confused with ContextBound, which
	// bounds the *concurrent* baseline in Explore.
	ContextSwitches int

	// RaceTarget, when non-nil, selects the race-checking translation
	// (Figure 5) on that distinguished variable; nil selects assertion
	// checking (Figure 4).
	RaceTarget *RaceTarget
	// Summaries selects the summary-based sequential engine
	// (internal/boolcheck) in place of the explicit-state explorer. It
	// supports only the pointer-free fragment but terminates on recursive
	// programs with finite data; no counterexample trace is produced.
	Summaries bool

	// MaxStates, MaxSteps, and MaxDepth bound the search; zero means
	// unlimited. They play the role of the paper's per-run resource bound
	// ("20 minutes of CPU time and 800MB of memory"). Under Summaries,
	// MaxStates bounds path edges.
	MaxStates int
	MaxSteps  int
	MaxDepth  int
	// BFS selects breadth-first search in the sequential checker, which
	// makes the returned counterexample a shortest error trace.
	BFS bool
	// DisableMacroSteps turns off macro-step compression, restoring the
	// seed-identical per-statement search that stores a state after every
	// micro transition. Compression is on by default: deterministic runs
	// fold into single transitions and only decision-point states are
	// stored, with identical verdicts, failure positions, and certified
	// traces (see WithMacroSteps). Stats.States then counts stored states;
	// Stats.StatesStepped counts traversed ones.
	DisableMacroSteps bool
	// DisableFoldMemo turns off fold memoization, the replay cache that
	// lets macro-step compression skip re-executing a fold whose control
	// point and read footprint were seen before (see WithFoldMemo). The
	// memo is on by default whenever macro steps are on; it changes only
	// wall time and the Stats.Memo diagnostics — the verdict, trace,
	// failure position, and every deterministic counter are bit-identical
	// either way and at every SearchWorkers count.
	DisableFoldMemo bool
	// MemoMB is the fold-memo table byte budget in MiB; 0 selects the
	// default (sem.DefaultMemoBytes).
	MemoMB int
	// DisableCallSummaries turns off call-grained procedure summaries,
	// the interprocedural replay tier above the fold memo: calls whose
	// site and read footprint match a recorded segment replay the whole
	// call (nested calls included, by composition) as one stored write
	// delta (see WithCallSummaries). Summaries are on by default whenever
	// macro steps are on; like the memo they change only wall time and
	// the Stats.Summary diagnostics — the verdict, trace, failure
	// position, and every deterministic counter are bit-identical either
	// way and at every SearchWorkers count.
	DisableCallSummaries bool
	// SummaryMB is the summary-table byte budget in MiB; 0 selects the
	// default (sem.DefaultSummaryBytes).
	SummaryMB int
	// SummaryTable, when non-nil, injects a persistent summary table that
	// outlives this check (kissd keys one per program content hash). The
	// table pins the one compiled program its entries refer to
	// (sem.SummaryTable.BindCompile), so it must only ever be handed to
	// checks of the identical source and shaping config. SummaryMB and
	// AuditFoldMemo are ignored for an injected table (its creator chose
	// them); Stats.Summary then reports per-check counter deltas.
	SummaryTable *sem.SummaryTable
	// AuditFoldMemo re-executes every memo and summary hit and verifies
	// the replayed result byte-for-byte against execution, counting
	// divergences in Stats.Memo.AuditMismatches /
	// Stats.Summary.AuditMismatches and always returning the executed
	// result. Matching is exact (no footprint hashing), so a
	// mismatch can only mean an implementation bug in the recorder or
	// delta model; audit exists to detect that and for differential
	// tests, and costs more than the replay saves.
	AuditFoldMemo bool
	// VisitedMode selects the visited-set representation of the
	// explicit-state searches: VisitedExact (the default; "" means exact)
	// stores every 64-bit state fingerprint exactly, reproducing the seed
	// search bit-for-bit; VisitedCompact stores fingerprints in a blocked
	// Bloom filter at ~8–16 bits per state, an order of magnitude smaller.
	// A compact filter's only error is a false "already seen" — it can
	// *shrink* the explored set (possibly missing a failure) but never
	// fabricate one, and Stats.Memory reports its occupancy and estimated
	// false-positive rate.
	VisitedMode string
	// MemBudgetMB caps the search's memory footprint in MiB; 0 means
	// unlimited (no frontier spilling; a compact filter takes its default
	// size). Under a budget the BFS frontier spills overflowing depth
	// buckets to sorted on-disk runs and streams them back in order —
	// results stay bit-identical at every worker count — and under
	// VisitedCompact the budget is split evenly between the frontier's
	// in-RAM share and the filter.
	MemBudgetMB int
	// SpillDir is where frontier spill files are created under a memory
	// budget; "" uses the system temp directory. Placement only — it never
	// changes what a check computes.
	SpillDir string
	// AuditVisited shadows a compact visited filter with an exact set,
	// counting measured false positives in Stats.Memory without changing
	// the search (differential testing; costs the exact set's memory).
	// Ignored under VisitedExact.
	AuditVisited bool
	// SearchWorkers >= 1 runs the state-space search of a *single* check
	// with that many concurrent workers over a level-synchronized
	// breadth-first frontier and a sharded visited set (both Check and
	// Explore). Results are bit-identical at every worker count — only
	// wall-clock and the Stats.Parallel diagnostics vary; 1 selects the
	// same deterministic search single-threaded. 0 (the default) keeps the
	// classic sequential search. Ignored under Summaries. When combining
	// with corpus-level parallelism, split the core budget (see
	// eval.Options.SearchWorkers).
	SearchWorkers int
	// NumShards is the visited-set shard count for parallel searches
	// (rounded up to a power of two; 0 picks the default).
	NumShards int
	// ContextBound bounds context switches in Explore (the concurrent
	// baseline): negative means unlimited, 0 means no switches. It is
	// ignored by Check. NewConfig defaults it to -1.
	ContextBound int

	// Context, when non-nil, makes every checker loop cancelable:
	// cancellation or deadline expiry returns a partial Result with
	// verdict ResourceBound and Stats.Reason ReasonCanceled or
	// ReasonDeadline — never an error.
	Context context.Context
	// Progress, when non-nil, receives progress events streamed from
	// inside the search loop on the ProgressStates/ProgressEvery cadence,
	// plus one final event when the check completes. Hooks must be safe
	// for concurrent use when the same Config serves concurrent checks.
	Progress func(Event)
	// ProgressStates and ProgressEvery set the event cadence (an event
	// when the state count grows by ProgressStates or ProgressEvery
	// elapses, whichever is first). Zero values use the defaults
	// (stats.DefaultEveryStates, stats.DefaultEvery).
	ProgressStates int
	ProgressEvery  time.Duration
}

// Option is a functional option mutating a Config.
type Option func(*Config)

// NewConfig builds a Config from functional options. The base config
// checks assertions, nondeterministic scheduler, ts bound 0, no budgets,
// unlimited context switches for Explore.
func NewConfig(opts ...Option) *Config {
	c := &Config{ContextBound: -1}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithMaxTS bounds the pending-thread multiset ts (Section 4's MAX).
func WithMaxTS(n int) Option { return func(c *Config) { c.MaxTS = n } }

// WithSequentialization selects the transform: SeqKISS or SeqCB.
func WithSequentialization(mode string) Option {
	return func(c *Config) { c.Sequentialization = mode }
}

// WithContextSwitches sets K for the SeqCB transform (0 = default).
func WithContextSwitches(k int) Option { return func(c *Config) { c.ContextSwitches = k } }

// WithScheduler selects the generated schedule function's policy.
func WithScheduler(s Scheduler) Option { return func(c *Config) { c.Scheduler = s } }

// WithoutAliasElision disables the alias-analysis elision of race checks
// (ablation only).
func WithoutAliasElision() Option { return func(c *Config) { c.DisableAliasElision = true } }

// WithRaceTarget selects race checking (Figure 5) on the distinguished
// variable t.
func WithRaceTarget(t RaceTarget) Option { return func(c *Config) { c.RaceTarget = &t } }

// WithSummaries selects the summary-based sequential engine.
func WithSummaries() Option { return func(c *Config) { c.Summaries = true } }

// WithMaxStates bounds distinct explored states (path edges under
// Summaries). Zero means unlimited.
func WithMaxStates(n int) Option { return func(c *Config) { c.MaxStates = n } }

// WithMaxSteps bounds executed transitions. Zero means unlimited.
func WithMaxSteps(n int) Option { return func(c *Config) { c.MaxSteps = n } }

// WithMaxDepth bounds the trace length considered. Zero means unlimited.
func WithMaxDepth(n int) Option { return func(c *Config) { c.MaxDepth = n } }

// WithBFS selects breadth-first search (shortest counterexamples).
func WithBFS() Option { return func(c *Config) { c.BFS = true } }

// WithMacroSteps toggles macro-step compression (default on): the search
// folds each maximal deterministic run into one transition and stores
// only decision-point states, cutting stored states, clones, and
// visited-set pressure by the run length. The verdict, failure position,
// and certified trace are identical either way and at every SearchWorkers
// count; WithMacroSteps(false) reproduces the per-statement search.
func WithMacroSteps(on bool) Option { return func(c *Config) { c.DisableMacroSteps = !on } }

// WithFoldMemo toggles fold memoization (default on whenever macro steps
// are on): folds whose control point and read footprint match a recorded
// run replay as stored write deltas instead of re-executing, winning back
// the wall time macro-step compression spends re-running long
// deterministic runs. Results are bit-identical either way; only wall
// time and Stats.Memo differ.
func WithFoldMemo(on bool) Option { return func(c *Config) { c.DisableFoldMemo = !on } }

// WithMemoMB sets the fold-memo table byte budget in MiB (0: default).
func WithMemoMB(n int) Option { return func(c *Config) { c.MemoMB = n } }

// WithCallSummaries toggles call-grained procedure summaries (default on
// whenever macro steps are on): calls whose site and read footprint match
// a recorded segment replay whole — nested calls included — instead of
// re-folding per caller state, lifting fold-level replay to the
// interprocedural level. Results are bit-identical either way; only wall
// time and Stats.Summary differ.
func WithCallSummaries(on bool) Option { return func(c *Config) { c.DisableCallSummaries = !on } }

// WithSummaryMB sets the summary-table byte budget in MiB (0: default).
func WithSummaryMB(n int) Option { return func(c *Config) { c.SummaryMB = n } }

// Visited-set representations (Config.VisitedMode).
const (
	// VisitedExact stores every state fingerprint exactly (the default).
	VisitedExact = "exact"
	// VisitedCompact stores fingerprints in a blocked Bloom filter at
	// ~8–16 bits per state; false positives only ever shrink the search.
	VisitedCompact = "compact"
)

// WithVisitedMode selects the visited-set representation: VisitedExact
// (bit-identical to the classic search) or VisitedCompact (an order of
// magnitude less memory; may under-explore, never over-reports).
func WithVisitedMode(mode string) Option { return func(c *Config) { c.VisitedMode = mode } }

// WithMemBudgetMB caps the search's memory footprint in MiB: the BFS
// frontier spills to disk past its share of the budget, and a compact
// visited filter is sized to the other half. 0 means unlimited.
func WithMemBudgetMB(n int) Option { return func(c *Config) { c.MemBudgetMB = n } }

// WithAuditVisited shadows a compact visited filter with an exact set,
// counting measured false positives in Stats.Memory.
func WithAuditVisited() Option { return func(c *Config) { c.AuditVisited = true } }

// WithSearchWorkers runs the state-space search with n concurrent workers
// (n >= 1; results are bit-identical at every n). 0 restores the classic
// sequential search.
func WithSearchWorkers(n int) Option { return func(c *Config) { c.SearchWorkers = n } }

// WithContextBound bounds context switches in Explore (negative:
// unlimited; 0: no switches).
func WithContextBound(n int) Option { return func(c *Config) { c.ContextBound = n } }

// WithContext makes the run cancelable: cancellation or deadline expiry
// yields a partial ResourceBound result with the matching Reason.
func WithContext(ctx context.Context) Option { return func(c *Config) { c.Context = ctx } }

// WithProgress registers a progress-event hook.
func WithProgress(fn func(Event)) Option { return func(c *Config) { c.Progress = fn } }

// WithProgressCadence sets how often progress events fire: when the state
// count grows by everyStates, or when every elapses, whichever is first.
func WithProgressCadence(everyStates int, every time.Duration) Option {
	return func(c *Config) {
		c.ProgressStates = everyStates
		c.ProgressEvery = every
	}
}

// collector builds this run's stats collector (always non-nil; timing-only
// when no progress hook is registered).
func (c *Config) collector() *stats.Collector {
	return stats.NewCollector(c.Progress, c.ProgressStates, c.ProgressEvery)
}

// visitedCompact validates VisitedMode, reporting whether the compact
// filter is selected.
func (c *Config) visitedCompact() (bool, error) {
	switch c.VisitedMode {
	case "", VisitedExact:
		return false, nil
	case VisitedCompact:
		return true, nil
	}
	return false, fmt.Errorf("kiss: unknown visited mode %q (want %q or %q)",
		c.VisitedMode, VisitedExact, VisitedCompact)
}

// memoryBudget splits MemBudgetMB between the frontier's in-RAM share and
// the compact filter: half and half when both are bounded, all of it to
// the frontier under an exact visited set. No budget means no spilling; a
// compact filter then takes its default size.
func (c *Config) memoryBudget(compact bool) (frontierBytes, filterBytes int64) {
	if c.MemBudgetMB <= 0 {
		return 0, 0
	}
	total := int64(c.MemBudgetMB) << 20
	if compact {
		return total / 2, total / 2
	}
	return total, 0
}

// ikissOptions lowers the transformation knobs.
func (c *Config) ikissOptions() ikiss.Options {
	return ikiss.Options{MaxTS: c.MaxTS, DisableAliasElision: c.DisableAliasElision, Scheduler: c.Scheduler}
}

// Transform applies the assertion-checking translation (Figure 4) under
// this config, producing a sequential program.
func (c *Config) Transform(p *Program) (*Program, error) {
	cb, err := c.seqCB()
	if err != nil {
		return nil, err
	}
	var out *ast.Program
	if cb {
		out, err = cbseq.Transform(p.ast, c.cbOptions())
	} else {
		out, err = ikiss.Transform(p.ast, c.ikissOptions())
	}
	if err != nil {
		return nil, err
	}
	return &Program{ast: out, sequential: true, parseTime: p.parseTime}, nil
}

// seqCB validates Sequentialization and reports whether the CB transform
// is selected.
func (c *Config) seqCB() (bool, error) {
	switch c.Sequentialization {
	case "", SeqKISS:
		return false, nil
	case SeqCB:
		if c.ContextSwitches < 0 {
			return false, fmt.Errorf("kiss: negative context-switch bound %d", c.ContextSwitches)
		}
		return true, nil
	}
	return false, fmt.Errorf("kiss: unknown sequentialization %q (want %q or %q)",
		c.Sequentialization, SeqKISS, SeqCB)
}

// EffectiveContextSwitches is K for SeqCB after applying the default.
func (c *Config) EffectiveContextSwitches() int {
	if c.ContextSwitches > 0 {
		return c.ContextSwitches
	}
	return DefaultContextSwitches
}

func (c *Config) cbOptions() cbseq.Options {
	return cbseq.Options{ContextSwitches: c.EffectiveContextSwitches()}
}

// MemBudgetIgnored reports whether MemBudgetMB is set but the selected
// engine silently ignores it: the budget's frontier spilling and filter
// sizing live in the BFS engines (BFS, or SearchWorkers >= 1), and the
// summary engine has no frontier at all — the sequential DFS default
// pays it no attention (the membench study forces BFS for exactly this
// reason). CLIs use this to warn and point at -bfs.
func (c *Config) MemBudgetIgnored() bool {
	if c.MemBudgetMB <= 0 {
		return false
	}
	if c.Summaries {
		return true
	}
	return !c.BFS && c.SearchWorkers < 1
}

// TransformRace applies the race-checking translation (Figure 5) for the
// given distinguished variable under this config.
func (c *Config) TransformRace(p *Program, t RaceTarget) (*Program, error) {
	out, err := ikiss.TransformRace(p.ast, t.internal(), c.ikissOptions())
	if err != nil {
		return nil, err
	}
	return &Program{ast: out, sequential: true, parseTime: p.parseTime}, nil
}

// Verdict is the outcome of a check.
type Verdict int

const (
	// Safe means the explored state space contains no failure.
	Safe Verdict = iota
	// Error means a failure is reachable; Result carries the trace.
	Error
	// ResourceBound means the budget ran out first (a Table 1 "timeout");
	// Result.Stats.Reason names which bound — including cancellation and
	// deadline expiry of a WithContext context.
	ResourceBound
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Error:
		return "error"
	default:
		return "resource-bound"
	}
}

// Result reports a check's verdict, metrics, and (for Error) both the
// raw sequential trace and the reconstructed concurrent trace.
type Result struct {
	Verdict Verdict
	// Message describes the failure (Error verdicts).
	Message string
	// Pos is the failing statement's source position (Error verdicts).
	Pos ast.Pos
	// Trace is the reconstructed concurrent error trace (Error verdicts
	// from the KISS pipeline).
	Trace *trace.Trace
	// SeqEvents is the raw sequential counterexample (Error verdicts).
	SeqEvents []sem.Event
	// States and Steps are explored-state and executed-transition counts
	// (also in Stats; kept here for the original API shape).
	States int
	Steps  int
	// Stats is the full metrics record: per-phase wall time, states/sec,
	// peak frontier and depth, visited-set size, fingerprint-audit
	// collisions, and — for ResourceBound verdicts — which bound tripped.
	Stats Stats
}

// String renders a one-line summary. ResourceBound names the specific
// bound that tripped (max-states, max-steps, deadline, canceled) — "we
// ran out of budget" and "the operator hit ^C" call for different
// reactions.
func (r *Result) String() string {
	counters := fmt.Sprintf("states=%d steps=%d", r.States, r.Steps)
	if r.Stats.CompressionRatio > 1 {
		counters += fmt.Sprintf(" compression=%.1fx", r.Stats.CompressionRatio)
	}
	if m := r.Stats.Memo; m != nil {
		counters += fmt.Sprintf(" memo-hits=%.0f%%", m.HitRatio*100)
	}
	if sm := r.Stats.Summary; sm != nil {
		counters += fmt.Sprintf(" sum-hits=%.0f%%", sm.HitRatio*100)
	}
	switch r.Verdict {
	case Safe:
		return fmt.Sprintf("no bug found (%s)", counters)
	case Error:
		return fmt.Sprintf("error: %s (%s)", r.Message, counters)
	default:
		return fmt.Sprintf("resource bound exhausted (%s; %s)",
			stats.BoundName(r.Stats.Reason), counters)
	}
}

// Check runs the full KISS pipeline on p under the config: the Figure 4
// translation (or Figure 5 when RaceTarget is set), the sequential
// checker (explicit-state, or summary-based when Summaries is set), and
// counterexample-trace reconstruction. Programs already in the sequential
// fragment (Transform output) skip the translation. Cancellation of
// Context yields a partial ResourceBound result, never an error.
func (c *Config) Check(p *Program) (*Result, error) {
	col := c.collector()
	col.AddPhase(stats.PhaseParse, p.parseTime)

	cb, err := c.seqCB()
	if err != nil {
		return nil, err
	}
	if cb {
		if c.RaceTarget != nil {
			// An UnsupportedError (not a plain config error) so corpus
			// sweeps classify race-target fields as outside the CB
			// fragment instead of aborting the whole run.
			return nil, &cbseq.UnsupportedError{Reason: fmt.Sprintf("race checking needs the KISS translation (Figure 5); it is not supported under %q", SeqCB)}
		}
		if c.Summaries {
			return nil, fmt.Errorf("kiss: the summary engine is not supported under %q", SeqCB)
		}
	}

	seq := p
	if !p.sequential {
		col.Start(stats.PhaseTransform)
		var err error
		if c.RaceTarget != nil {
			seq, err = c.TransformRace(p, *c.RaceTarget)
		} else {
			seq, err = c.Transform(p)
		}
		col.End(stats.PhaseTransform)
		if err != nil {
			return nil, err
		}
	}
	if c.Summaries {
		return c.checkSummaries(seq, col)
	}

	compactVis, err := c.visitedCompact()
	if err != nil {
		return nil, err
	}
	frontierBytes, filterBytes := c.memoryBudget(compactVis)

	col.Start(stats.PhaseCheck)
	sum := c.newSummaryTable()
	compiled, err := compileFor(sum, seq.ast)
	if err != nil {
		col.End(stats.PhaseCheck)
		return nil, err
	}
	memo := c.newFoldMemo()
	sumPrev := summarySnapshot(sum)
	r := seqcheck.Check(compiled, seqcheck.Options{
		MaxStates:         c.MaxStates,
		MaxSteps:          c.MaxSteps,
		MaxDepth:          c.MaxDepth,
		BFS:               c.BFS,
		DisableMacroSteps: c.DisableMacroSteps,
		Memo:              memo,
		Summaries:         sum,
		SearchWorkers:     c.SearchWorkers,
		NumShards:         c.NumShards,
		VisitedCompact:    compactVis,
		VisitedBytes:      filterBytes,
		AuditVisited:      c.AuditVisited,
		FrontierBudget:    frontierBytes,
		SpillDir:          c.SpillDir,
		Context:           c.Context,
		Collector:         col,
	})

	out := &Result{Verdict: Verdict(r.Verdict), States: r.States, Steps: r.Steps}
	if r.Verdict == seqcheck.Error {
		out.Message = r.Failure.Msg
		out.Pos = r.Failure.Pos
		// A failing assert inside the generated check_r/check_w bodies is
		// the race monitor firing (Section 5): report it as a race on the
		// distinguished variable rather than as a raw assertion.
		if t := seq.ast.RaceTarget; t != nil &&
			(r.Failure.Fn == ikiss.CheckRFn || r.Failure.Fn == ikiss.CheckWFn) {
			kind := "read/write"
			if r.Failure.Fn == ikiss.CheckWFn {
				kind = "write/write or read/write"
			}
			out.Message = fmt.Sprintf("race condition on %s (%s conflict)", t, kind)
		}
		out.SeqEvents = r.Trace
		if cb {
			// CB failures surface at the deferred assert in __cb_fin,
			// after the linking assumes validated the guessed snapshots.
			// Trace reconstruction assumes KISS-shaped events, so the raw
			// sequential counterexample is all the CB pipeline reports.
			if r.Failure.Fn == cbseq.FinFn {
				n, plural := c.EffectiveContextSwitches(), "es"
				if n == 1 {
					plural = ""
				}
				out.Message = fmt.Sprintf(
					"assertion failure reachable within %d context switch%s", n, plural)
			}
		} else {
			out.Trace = trace.Reconstruct(r.Trace)
		}
	}
	col.End(stats.PhaseCheck)
	stepped, ratio := compression(r.States, r.StatesStepped)
	out.Stats = Stats{
		States:           r.States,
		Steps:            r.Steps,
		StatesStepped:    stepped,
		CompressionRatio: ratio,
		Visited:          r.Visited,
		PeakFrontier:     r.PeakFrontier,
		PeakDepth:        r.PeakDepth,
		HashCollisions:   r.HashCollisions,
		Reason:           r.Reason,
		Parallel:         r.Parallel,
		Memo:             memoStats(memo),
		Summary:          summaryStats(sum, sumPrev),
		Memory:           r.Memory,
	}
	col.Finalize(&out.Stats)
	return out, nil
}

// newFoldMemo builds this check's fold-memoization table — one fresh
// table per run (memo entries hold compiled-function pointers, so tables
// never outlive their program) — or nil when the memo cannot engage.
func (c *Config) newFoldMemo() *sem.FoldMemo {
	if c.DisableMacroSteps || c.DisableFoldMemo {
		return nil
	}
	return sem.NewFoldMemo(int64(c.MemoMB)<<20, c.AuditFoldMemo)
}

// newSummaryTable builds or selects this check's call-summary table: an
// injected persistent table (kissd) wins; otherwise a fresh table per run,
// or nil when summaries cannot engage.
func (c *Config) newSummaryTable() *sem.SummaryTable {
	if c.DisableMacroSteps || c.DisableCallSummaries {
		return nil
	}
	if c.SummaryTable != nil {
		return c.SummaryTable
	}
	return sem.NewSummaryTable(int64(c.SummaryMB)<<20, c.AuditFoldMemo)
}

// compileFor compiles the program, routing through the summary table's
// BindCompile when one is live: summary entries compare compiled-function
// pointers, so every check sharing a table must run the same Compiled.
func compileFor(sum *sem.SummaryTable, p *ast.Program) (*sem.Compiled, error) {
	if sum == nil {
		return sem.Compile(p)
	}
	return sum.BindCompile(func() (*sem.Compiled, error) { return sem.Compile(p) })
}

// summarySnapshot reads the table counters before a check so persistent
// tables can report per-check deltas; zero for a nil table.
func summarySnapshot(sum *sem.SummaryTable) sem.SummaryStats {
	if sum == nil {
		return sem.SummaryStats{}
	}
	return sum.Stats()
}

// summaryStats folds a summary table into the Stats record as the delta
// since prev; a table that never saw a lookup this check reports nil.
func summaryStats(sum *sem.SummaryTable, prev sem.SummaryStats) *stats.Summary {
	if sum == nil {
		return nil
	}
	st := sum.Stats().Sub(prev)
	if st.Hits+st.Misses == 0 && st.Stores == 0 {
		return nil
	}
	return &stats.Summary{
		Hits:            st.Hits,
		Misses:          st.Misses,
		HitRatio:        st.HitRatio(),
		Stores:          st.Stores,
		Evictions:       st.Evictions,
		StepsSaved:      st.StepsSaved,
		Composed:        st.Composed,
		MaxDepth:        st.MaxDepth,
		Entries:         st.Entries,
		Bytes:           st.Bytes,
		AuditMismatches: st.AuditMismatches,
	}
}

// memoStats snapshots a memo table into the Stats record; a table that
// never saw a lookup (e.g. the per-statement engines ran) reports nil.
func memoStats(memo *sem.FoldMemo) *stats.Memo {
	if memo == nil {
		return nil
	}
	st := memo.Stats()
	if st.Hits+st.Misses == 0 {
		return nil
	}
	return &stats.Memo{
		Hits:            st.Hits,
		Misses:          st.Misses,
		HitRatio:        st.HitRatio(),
		Stores:          st.Stores,
		Evictions:       st.Evictions,
		StepsSaved:      st.StepsSaved,
		Entries:         st.Entries,
		Bytes:           st.Bytes,
		AuditMismatches: st.AuditMismatches,
	}
}

// compression derives the (StatesStepped, CompressionRatio) pair from a
// checker result; the per-statement engines leave their stepped counter
// at zero, meaning "equal to stored".
func compression(states, stepped int) (int, float64) {
	if stepped <= 0 {
		stepped = states
	}
	ratio := 1.0
	if states > 0 {
		ratio = float64(stepped) / float64(states)
	}
	return stepped, ratio
}

// checkSummaries is the Summaries engine path of Check.
func (c *Config) checkSummaries(seq *Program, col *stats.Collector) (*Result, error) {
	col.Start(stats.PhaseCheck)
	compiled, err := sem.Compile(seq.ast)
	if err != nil {
		col.End(stats.PhaseCheck)
		return nil, err
	}
	r, err := boolcheck.Check(compiled, boolcheck.Options{
		MaxPathEdges: c.MaxStates,
		Context:      c.Context,
		Collector:    col,
	})
	col.End(stats.PhaseCheck)
	if err != nil {
		return nil, err
	}
	out := &Result{Verdict: Verdict(r.Verdict), States: r.PathEdges}
	if r.Verdict == boolcheck.Error {
		out.Message = r.Failure.Msg
		out.Pos = r.Failure.Pos
	}
	out.Stats = Stats{States: r.PathEdges, Visited: r.PathEdges, Reason: r.Reason}
	col.Finalize(&out.Stats)
	return out, nil
}

// Explore runs the baseline interleaving-exploring model checker directly
// on the concurrent program — the approach whose exponential blowup KISS
// avoids — under the config's budgets, ContextBound, context, and
// progress hook.
func (c *Config) Explore(p *Program) (*Result, error) {
	col := c.collector()
	col.AddPhase(stats.PhaseParse, p.parseTime)
	compactVis, err := c.visitedCompact()
	if err != nil {
		return nil, err
	}
	frontierBytes, filterBytes := c.memoryBudget(compactVis)
	col.Start(stats.PhaseCheck)
	sum := c.newSummaryTable()
	compiled, err := compileFor(sum, p.ast)
	if err != nil {
		col.End(stats.PhaseCheck)
		return nil, err
	}
	memo := c.newFoldMemo()
	sumPrev := summarySnapshot(sum)
	r := concheck.Check(compiled, concheck.Options{
		MaxStates:         c.MaxStates,
		MaxSteps:          c.MaxSteps,
		MaxDepth:          c.MaxDepth,
		ContextBound:      c.ContextBound,
		DisableMacroSteps: c.DisableMacroSteps,
		Memo:              memo,
		Summaries:         sum,
		SearchWorkers:     c.SearchWorkers,
		NumShards:         c.NumShards,
		VisitedCompact:    compactVis,
		VisitedBytes:      filterBytes,
		AuditVisited:      c.AuditVisited,
		FrontierBudget:    frontierBytes,
		SpillDir:          c.SpillDir,
		Context:           c.Context,
		Collector:         col,
	})
	col.End(stats.PhaseCheck)
	out := &Result{Verdict: Verdict(r.Verdict), States: r.States, Steps: r.Steps}
	if r.Verdict == concheck.Error {
		out.Message = r.Failure.Msg
		out.Pos = r.Failure.Pos
		out.SeqEvents = r.Trace
	}
	stepped, ratio := compression(r.States, r.StatesStepped)
	out.Stats = Stats{
		States:           r.States,
		Steps:            r.Steps,
		StatesStepped:    stepped,
		CompressionRatio: ratio,
		Visited:          r.Visited,
		PeakFrontier:     r.PeakFrontier,
		PeakDepth:        r.PeakDepth,
		HashCollisions:   r.HashCollisions,
		Reason:           r.Reason,
		Parallel:         r.Parallel,
		Memo:             memoStats(memo),
		Summary:          summaryStats(sum, sumPrev),
		Memory:           r.Memory,
	}
	col.Finalize(&out.Stats)
	return out, nil
}

// Certify replays the original concurrent program p along the
// reconstructed schedule of an Error result, confirming that the exact
// interleaving the trace describes really reaches a failure — the
// machine-checked form of the paper's "the error trace leading to the
// assertion failure in P is easily constructed from the error trace in
// P'". It returns (true, nil) when the failure replays, and accumulates
// the replay wall time into res.Stats.Phases.Replay.
func (c *Config) Certify(p *Program, res *Result) (bool, error) {
	if res == nil || res.Verdict != Error || res.Trace == nil {
		return false, fmt.Errorf("kiss: Certify requires an Error result with a reconstructed trace")
	}
	start := time.Now()
	compiled, err := sem.Compile(p.ast)
	if err != nil {
		return false, err
	}
	rr := trace.Replay(compiled, res.Trace.Schedule(), c.MaxStates)
	res.Stats.Phases.Replay += time.Since(start)
	return rr.Certified, nil
}

// Check runs the full pipeline on p under a config built from opts — the
// unified entry point. See Config.Check.
func Check(p *Program, opts ...Option) (*Result, error) {
	return NewConfig(opts...).Check(p)
}

// Explore runs the baseline interleaving explorer on p under a config
// built from opts. See Config.Explore.
func Explore(p *Program, opts ...Option) (*Result, error) {
	return NewConfig(opts...).Explore(p)
}

// The long-deprecated Options/Budget wrapper layer (the pre-Config API:
// CheckAssertions, CheckRace, CheckSequential, CheckAssertionsSummaries,
// CertifyTrace, ExploreConcurrent, and the package-level Transform/
// TransformRace) was removed when the API froze at v1 — Config and the
// functional options above are the one public surface, matching the
// versioned wire format in config_wire.go. See DESIGN.md, "the v1 API
// freeze".

// TransformStats re-exports the instrumentation blowup statistics
// (Section 4's "small constant blowup" quantities).
type TransformStats = ikiss.Stats

// MeasureTransform computes the blowup statistics between a source
// program and its transformation output.
func MeasureTransform(src, out *Program) TransformStats {
	return ikiss.Measure(src.ast, out.ast)
}
