package kiss_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	kiss "repro"
)

const racyConfigSrc = `
var x;
func worker() { x = 1; }
func main() {
  x = 0;
  async worker();
  assert(x == 0);
}
`

// bigConfigSrc explores tens of thousands of states — enough for budgets,
// cancellation, and progress cadences to trip mid-run.
const bigConfigSrc = `
var a;
var b;
func main() {
  a = 0; b = 0;
  iter { choice { { a = a + 1; assume(a < 200); } [] { b = b + 1; assume(b < 200); } } }
  assert(a >= 0);
}
`

// TestOptionsMatchStructConfig: the functional-options constructor and a
// hand-filled Config literal are the same API — same verdicts, same
// counts. This is the v1 freeze invariant that replaced the old
// Options/Budget equivalence tests when those wrappers were deleted.
func TestOptionsMatchStructConfig(t *testing.T) {
	prog, err := kiss.Parse(racyConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	structRes, err := (&kiss.Config{MaxTS: 1}).Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := kiss.Check(prog, kiss.WithMaxTS(1))
	if err != nil {
		t.Fatal(err)
	}
	if structRes.Verdict != optRes.Verdict || structRes.States != optRes.States || structRes.Steps != optRes.Steps {
		t.Errorf("options path diverges from struct Config: %+v vs %+v", optRes, structRes)
	}
	if optRes.Verdict != kiss.Error {
		t.Fatalf("expected the publish-before-write bug, got %v", optRes.Verdict)
	}

	structRace, err := (&kiss.Config{RaceTarget: &kiss.RaceTarget{Global: "x"}}).Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	optRace, err := kiss.Check(prog, kiss.WithRaceTarget(kiss.RaceTarget{Global: "x"}), kiss.WithMaxTS(0))
	if err != nil {
		t.Fatal(err)
	}
	if structRace.Verdict != optRace.Verdict || structRace.Message != optRace.Message {
		t.Errorf("race check diverges between option and struct configs: %+v vs %+v", optRace, structRace)
	}
}

// TestCheckSkipsTransformForSequentialPrograms: Transform output passed to
// Check is analyzed directly — no second sequentialization — so a config
// that differs only in transformation knobs reaches the same analysis.
func TestCheckSkipsTransformForSequentialPrograms(t *testing.T) {
	prog, err := kiss.Parse(racyConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kiss.NewConfig(kiss.WithMaxTS(1))
	seq, err := cfg.Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Sequential() {
		t.Fatal("Transform output not marked sequential")
	}
	res, err := cfg.Check(seq)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := kiss.Check(seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != plain.Verdict || res.States != plain.States {
		t.Errorf("Check on sequential program depends on transform knobs: %+v vs %+v", res, plain)
	}
	if res.Stats.Phases.Transform != 0 {
		t.Errorf("transform phase timed on an already-sequential program: %v", res.Stats.Phases.Transform)
	}
}

// TestResultStats: a pipeline run fills the full metrics record — phase
// times, rate, peaks, visited set.
func TestResultStats(t *testing.T) {
	prog, err := kiss.Parse(bigConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := kiss.Check(prog, kiss.WithMaxStates(5000))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.States != res.States || st.Steps != res.Steps {
		t.Errorf("Stats counters disagree with Result: %+v vs states=%d steps=%d", st, res.States, res.Steps)
	}
	if st.Visited == 0 || st.PeakFrontier == 0 || st.PeakDepth == 0 {
		t.Errorf("search metrics missing: %+v", st)
	}
	if st.Reason != kiss.ReasonStates {
		t.Errorf("budget trip reason = %v, want ReasonStates", st.Reason)
	}
	if st.Phases.Parse <= 0 || st.Phases.Check <= 0 {
		t.Errorf("phase times missing: %+v", st.Phases)
	}
	if st.StatesPerSec <= 0 {
		t.Errorf("states/sec missing: %+v", st)
	}
	if st.Phases.Transform <= 0 {
		t.Errorf("transform phase not timed: %+v", st.Phases)
	}
}

// TestProgressHook: WithProgress receives cadence events mid-run and a
// final event; the final event carries the run's totals.
func TestProgressHook(t *testing.T) {
	prog, err := kiss.Parse(bigConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	var events []kiss.Event
	res, err := kiss.Check(prog,
		kiss.WithMaxStates(10000),
		kiss.WithProgress(func(e kiss.Event) { events = append(events, e) }),
		kiss.WithProgressCadence(1000, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("want cadence events plus a final event, got %d", len(events))
	}
	final := events[len(events)-1]
	if !final.Final {
		t.Error("last event not marked final")
	}
	if final.States != res.States || final.Steps != res.Steps {
		t.Errorf("final event totals %d/%d disagree with result %d/%d",
			final.States, final.Steps, res.States, res.Steps)
	}
	for _, e := range events[:len(events)-1] {
		if e.Final {
			t.Error("mid-run event marked final")
		}
	}
}

// TestContextCancellationPartialResult: canceling mid-run yields a
// ResourceBound verdict with ReasonCanceled and partial stats — no error —
// and a rerun to completion is unaffected.
func TestContextCancellationPartialResult(t *testing.T) {
	prog, err := kiss.Parse(bigConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	res, err := kiss.Check(prog,
		kiss.WithContext(ctx),
		kiss.WithProgress(func(e kiss.Event) {
			if !e.Final && fired.CompareAndSwap(false, true) {
				cancel()
			}
		}),
		kiss.WithProgressCadence(500, time.Hour))
	if err != nil {
		t.Fatalf("cancellation surfaced as an error: %v", err)
	}
	if res.Verdict != kiss.ResourceBound || res.Stats.Reason != kiss.ReasonCanceled {
		t.Fatalf("want resource-bound/canceled, got %v reason=%v", res.Verdict, res.Stats.Reason)
	}
	if res.States == 0 {
		t.Error("canceled run reports no partial stats")
	}

	full1, err := kiss.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	full2, err := kiss.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if full1.States != full2.States || full1.Verdict != full2.Verdict {
		t.Errorf("reruns disagree: %+v vs %+v", full1, full2)
	}
	if res.States >= full1.States {
		t.Errorf("canceled run explored %d states, full run %d — not partial", res.States, full1.States)
	}
}

// TestResultStringNamesTrippedBound: the bugfix target — a ResourceBound
// result must say WHICH bound tripped, not just that one did.
func TestResultStringNamesTrippedBound(t *testing.T) {
	prog, err := kiss.Parse(bigConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := kiss.Check(prog, kiss.WithMaxStates(100))
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); !strings.Contains(s, "max-states") {
		t.Errorf("Result.String() does not name the state budget: %q", s)
	}
	res, err = kiss.Check(prog, kiss.WithMaxSteps(100))
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); !strings.Contains(s, "max-steps") {
		t.Errorf("Result.String() does not name the step budget: %q", s)
	}
}

// TestDeadlineReason: an expired WithContext deadline reports
// ReasonDeadline, distinct from cancellation.
func TestDeadlineReason(t *testing.T) {
	prog, err := kiss.Parse(bigConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := kiss.Check(prog, kiss.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != kiss.ResourceBound || res.Stats.Reason != kiss.ReasonDeadline {
		t.Errorf("want resource-bound/deadline, got %v reason=%v", res.Verdict, res.Stats.Reason)
	}
}

// TestExploreWithConfig: the baseline explorer honors the unified config
// (context bound + cancellation + stats).
func TestExploreWithConfig(t *testing.T) {
	prog, err := kiss.Parse(racyConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := kiss.Explore(prog, kiss.WithContextBound(2))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := (&kiss.Config{ContextBound: 2}).Explore(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != direct.Verdict || res.States != direct.States {
		t.Errorf("Explore diverges between option and struct configs: %+v vs %+v", res, direct)
	}
	if res.Stats.Visited == 0 {
		t.Error("Explore fills no stats")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceled, err := kiss.Explore(prog, kiss.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if canceled.Verdict != kiss.ResourceBound || canceled.Stats.Reason != kiss.ReasonCanceled {
		t.Errorf("canceled explore: %v reason=%v", canceled.Verdict, canceled.Stats.Reason)
	}
}

// TestSummariesWithConfig: the summary engine path is reachable through
// the unified API and reports its path-edge budget trip.
func TestSummariesWithConfig(t *testing.T) {
	prog, err := kiss.Parse(racyConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := kiss.Check(prog, kiss.WithMaxTS(1), kiss.WithSummaries())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := (&kiss.Config{MaxTS: 1, Summaries: true}).Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != direct.Verdict || res.States != direct.States {
		t.Errorf("summary path diverges: %+v vs %+v", res, direct)
	}
}

// TestCertifyAccumulatesReplayTime: Config.Certify certifies the trace and
// records the replay phase.
func TestCertifyAccumulatesReplayTime(t *testing.T) {
	prog, err := kiss.Parse(racyConfigSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kiss.NewConfig(kiss.WithMaxTS(1))
	res, err := cfg.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != kiss.Error {
		t.Fatalf("expected error verdict, got %v", res.Verdict)
	}
	ok, err := cfg.Certify(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("reconstructed trace failed to certify")
	}
	if res.Stats.Phases.Replay <= 0 {
		t.Errorf("replay phase not timed: %+v", res.Stats.Phases)
	}
}
