package kiss

import (
	"testing"

	"repro/internal/cbseq"
	"repro/internal/randprog"
)

// Differential properties of the CB(K) sequentialization against the
// interleaving-exploring ground truth, mirroring properties_test.go's
// validation of the KISS translation.

// cbRandConfig bounds the guess-domain branching so CB runs complete
// inside the per-check state budget.
var cbRandConfig = randprog.Config{Globals: 2, Funcs: 2, MaxStmts: 4, MaxAsyncs: 2, Depth: 2}

// TestCBNoFalseErrors: whenever CB(K) reports an error, the full
// interleaving exploration must also report one — the linking assumes
// must have pruned every non-realizable guess. The property is checked
// at search-workers 0, 1, and 8 (verdicts are engine-independent), and
// doubles as the monotonicity check: the error set may only grow with K.
func TestCBNoFalseErrors(t *testing.T) {
	bounds := []int{2, 3, 4}
	for _, workers := range []int{0, 1, 8} {
		workers := workers
		t.Run(map[int]string{0: "seq", 1: "workers1", 8: "workers8"}[workers], func(t *testing.T) {
			t.Parallel()
			errors := 0
			for seed := int64(0); seed < 24; seed++ {
				src := randprog.Generate(seed, cbRandConfig)
				// verdicts[i] is CB(bounds[i])'s outcome; resource-bounded
				// arms are recorded as a gap, not evidence.
				verdicts := make([]Verdict, len(bounds))
				for i, k := range bounds {
					res, err := Check(mustParse(t, src),
						WithSequentialization(SeqCB), WithContextSwitches(k),
						WithMaxStates(400000), WithSearchWorkers(workers))
					if err != nil {
						if cbseq.IsUnsupported(err) {
							t.Fatalf("seed %d: generator strayed outside the CB fragment: %v", seed, err)
						}
						t.Fatalf("seed %d cb(%d): %v", seed, k, err)
					}
					verdicts[i] = res.Verdict
					if res.Verdict != Error {
						continue
					}
					errors++
					ground, err := Explore(mustParse(t, src), WithMaxStates(400000))
					if err != nil {
						t.Fatalf("seed %d: ground truth: %v", seed, err)
					}
					if ground.Verdict == Safe {
						t.Errorf("FALSE ERROR at seed %d, cb(%d): %q but the concurrent program is safe\n%s",
							seed, k, res.Message, src)
					}
				}
				// Monotone in K: a completed higher bound keeps every bug a
				// lower bound found.
				for i := range verdicts {
					for j := i + 1; j < len(verdicts); j++ {
						if verdicts[i] == Error && verdicts[j] == Safe {
							t.Errorf("seed %d: cb(%d) finds a bug cb(%d) loses\n%s",
								seed, bounds[i], bounds[j], src)
						}
					}
				}
			}
			if errors == 0 {
				t.Error("no generated program produced a CB error; the property was tested vacuously")
			}
			t.Logf("validated %d CB error reports against ground truth", errors)
		})
	}
}
