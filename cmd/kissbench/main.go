// Command kissbench regenerates every experimental result of the KISS
// paper (see EXPERIMENTS.md for the experiment index):
//
//	kissbench -table1     Table 1: permissive-harness races, 18 drivers
//	kissbench -table2     Table 2: refined-harness rerun of Table 1 races
//	kissbench -refcount   Section 6 reference-counting experiments
//	kissbench -blowup     interleaving-blowup ablation (Section 1 claim)
//	kissbench -coverage   ts coverage/cost ablation (Section 4 knob)
//	kissbench -lockset    lockset-baseline flexibility comparison (Section 6.1)
//	kissbench -contextbound  context-bound coverage study (Section 2 claim)
//	kissbench -schedulers    scheduler-policy study (Section 4 remark)
//	kissbench -macrobench    macro-step compression ablation (JSON with -json)
//	kissbench -all        everything
//
// -macrobench runs the corpus four ways — per-statement, macro steps,
// macro steps + fold memoization, and macro steps + memo + call-grained
// procedure summaries — verifies that verdicts and failure positions are
// identical at search-workers 0, 1, and 8, and reports stored/stepped
// state counts, throughput, allocations, and the memo and summary
// hit/steps-saved totals per arm. It exits non-zero if the arms
// disagree; if -min-ratio R is given and the stored-state compression
// ratio — measured over the fields that completed in both arms, the ones
// whose runs covered the same state space — falls below R; if
// -min-hit-ratio H is given and the memo arm's hit ratio falls below H;
// or if -require-memo-speedup is given and the summary arm's traversal
// rate (stepped states/sec) does not strictly exceed the memo-off macro
// arm's — the gate that makes "the memo layer pays for itself" a CI
// property rather than a claim. -require-summary-parity is the
// smoke-sized variant: the summary arm must reach 90% of the macro+memo
// arm (the slack absorbs sub-second-run rate noise).
// -macro-steps=false, -fold-memo=false, and -call-summaries=false turn
// the corresponding layer off for the regular table runs (the ablation
// arms, one at a time); -memo-mb M caps the memo table and -summary-mb M
// the summary table.
//
// Optional: -drivers a,b,c restricts the corpus tables to named drivers;
// -max-states N overrides the per-field state budget (spelled like the
// kiss.Config field and the kiss binary's flag); -workers N bounds the
// corpus worker pool (0 = one worker per CPU, 1 = sequential);
// -search-workers N parallelizes each individual state-space search (the
// auto-sized field pool shrinks to keep the total core budget). Results
// are identical at every -workers and -search-workers setting; only
// wall-clock changes.
//
// Observability: -json emits one JSON record per corpus entry (JSON
// Lines) with the full metrics payload — per-phase wall time, states/sec,
// peak frontier and depth, visited-set size, and the specific budget-trip
// reason (see EXPERIMENTS.md, "Reading the metrics"). -progress streams
// per-field search events to stderr. -timeout D bounds the whole corpus
// run; on expiry the tables render the completed prefix and unchecked
// fields are marked canceled.
//
// -server URL submits the corpus table checks to a running kissd daemon
// instead of checking in-process: repeated runs of the same table are
// answered from the daemon's content-addressed result cache with
// identical verdicts and counters. -version prints the build version.
//
// -membench runs the memory-budget study (PR 9): every hard field twice
// under one -mem-budget-mb budget — exact visited set at -max-states vs
// compact filter + disk-spilling frontier at a 10x state ceiling — and
// reports per-field verdicts, spilled bytes, and false-positive-rate
// stats. -min-improved N exits non-zero unless at least N fields that
// tripped MaxStates in the exact arm completed (or reached 10x the
// states) in the budgeted arm. For the regular table runs, -visited
// exact|compact selects the visited-set representation, -mem-budget-mb
// caps search memory, and -audit-visited shadow-checks compact hits
// against an exact set.
//
// -seqbench runs the sequentialization ablation (PR 10): KISS vs CB(K)
// at K = 2, 3, 4 vs the concurrent ground truth over the assertion
// scenarios (internal/drivers.Scenarios) plus -seq-programs random
// programs. It exits non-zero if any CB arm reports a bug the oracle
// refutes, if raising K ever loses a bug, or if -min-cb-only N is given
// and fewer than N truth-confirmed bugs were found by CB but missed by
// KISS. For the corpus tables, -seq kiss|cb and -context-switches K
// select the transform (the race-target corpus is outside the CB
// fragment and reports per-field "unsupported" under -seq cb).
//
// -o FILE writes the run's JSON output (from -json, -membench, or
// -seqbench) to FILE
// atomically — the bytes are staged in memory, written to a temp file,
// and renamed into place only when non-empty — so an interrupted or
// failed run can never leave a truncated artifact behind; kissbench
// exits non-zero rather than write an empty payload. The artifact is
// written even when a gate trips, so a failing run still leaves the
// evidence to inspect.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/eval"
)

// benchOutput stages JSON output for -o: everything written to Writer()
// lands in memory and Flush() installs it atomically (temp + rename),
// refusing empty payloads. Without -o, Writer() is plain stdout and
// Flush() is a no-op.
type benchOutput struct {
	path string
	buf  bytes.Buffer
}

func (o *benchOutput) Writer() io.Writer {
	if o.path == "" {
		return os.Stdout
	}
	return &o.buf
}

func (o *benchOutput) Flush() error {
	if o.path == "" {
		return nil
	}
	if o.buf.Len() == 0 {
		return fmt.Errorf("refusing to write empty bench artifact %s", o.path)
	}
	tmp, err := os.CreateTemp(filepath.Dir(o.path), ".kissbench-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(o.buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp makes 0600 files; published artifacts are world-readable.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), o.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	fmt.Fprintf(os.Stderr, "kissbench: wrote %s (%d bytes)\n", o.path, o.buf.Len())
	return nil
}

// version is stamped by the Makefile via
// -ldflags "-X main.version=$(VERSION)"; "dev" for plain go build.
var version = "dev"

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	table2 := flag.Bool("table2", false, "regenerate Table 2")
	refcount := flag.Bool("refcount", false, "run the reference-counting experiments")
	blowup := flag.Bool("blowup", false, "run the interleaving-blowup study")
	coverage := flag.Bool("coverage", false, "run the ts coverage/cost study")
	locksetCmp := flag.Bool("lockset", false, "run the lockset-baseline flexibility comparison")
	contextBound := flag.Bool("contextbound", false, "run the context-bound coverage study")
	schedulers := flag.Bool("schedulers", false, "run the scheduler-policy study")
	macrobench := flag.Bool("macrobench", false, "run the macro-step compression ablation")
	membench := flag.Bool("membench", false, "run the memory-budget study: exact visited set vs compact filter + spilling frontier on the hard fields")
	minImproved := flag.Int("min-improved", 0, "with -membench: fail unless at least N MaxStates-tripped fields complete or reach 10x states under the budget (0 = no check)")
	seqbench := flag.Bool("seqbench", false, "run the sequentialization ablation: KISS vs CB(K) vs the concurrent ground truth on the assertion scenarios and random programs")
	seqPrograms := flag.Int("seq-programs", 0, "with -seqbench: random-program population size (0 = default, negative = scenarios only)")
	minCBOnly := flag.Int("min-cb-only", 0, "with -seqbench: fail unless at least N truth-confirmed bugs are found by CB but missed by KISS (0 = no check)")
	seqMode := flag.String("seq", "", `sequentialization for the corpus tables: "kiss" (default) or "cb" (context-bounded; the race-target corpus reports per-field "unsupported")`)
	contextSwitches := flag.Int("context-switches", 0, "CB context-switch bound K for the corpus tables (0 = default; -seq cb only)")
	visitedMode := flag.String("visited", "", "visited-set representation for the table runs: exact (default) or compact")
	memBudgetMB := flag.Int("mem-budget-mb", 0, "search memory budget in MiB: the frontier spills to disk past its share, a compact filter is sized to the rest (0 = unlimited)")
	auditVisited := flag.Bool("audit-visited", false, "shadow-check compact visited hits against an exact set, counting false positives in the metrics")
	outFile := flag.String("o", "", "write JSON output to this file atomically (temp + rename); exits non-zero on an empty payload")
	minRatio := flag.Float64("min-ratio", 0, "with -macrobench: fail unless the stored-state compression ratio reaches this value (0 = no check)")
	minHitRatio := flag.Float64("min-hit-ratio", 0, "with -macrobench: fail unless the memo arm's hit ratio reaches this value (0 = no check)")
	requireMemoSpeedup := flag.Bool("require-memo-speedup", false, "with -macrobench: fail unless the summary arm's stepped-states/sec strictly exceeds the memo-off macro arm's")
	requireSummaryParity := flag.Bool("require-summary-parity", false, "with -macrobench: fail unless the summary arm's stepped-states/sec reaches 90% of the macro+memo arm's (the smoke-sized gate)")
	macroSteps := flag.Bool("macro-steps", true, "collapse deterministic runs into single transitions (-macro-steps=false reproduces the per-statement search)")
	foldMemo := flag.Bool("fold-memo", true, "replay previously recorded folds from the read-footprint memo table (-fold-memo=false re-executes every fold)")
	memoMB := flag.Int("memo-mb", 0, "fold-memo table byte budget in MiB (0 = default)")
	callSummaries := flag.Bool("call-summaries", true, "replay whole procedure calls from the call-summary table (-call-summaries=false re-executes every call)")
	summaryMB := flag.Int("summary-mb", 0, "call-summary table byte budget in MiB (0 = default)")
	all := flag.Bool("all", false, "run everything")
	driversFlag := flag.String("drivers", "", "comma-separated driver subset for the tables")
	maxStates := flag.Int("max-states", 0, "per-field state budget override (0 = default)")
	workers := flag.Int("workers", 0, "concurrent field checks (0 = one per CPU, 1 = sequential)")
	searchWorkers := flag.Int("search-workers", 0, "workers per state-space search (0 = sequential search; >0 shrinks the auto-sized field pool to share the cores)")
	blowupN := flag.Int("blowup-threads", 6, "max thread count for the blowup study")
	jsonOut := flag.Bool("json", false, "emit per-field JSON metrics records (JSON Lines) for the corpus tables")
	stripTiming := flag.Bool("strip-timing", false, "with -json: zero the wall-clock Stats fields so two runs diff byte-for-byte at any worker count")
	progress := flag.Bool("progress", false, "stream per-field search progress to stderr")
	timeout := flag.Duration("timeout", 0, "wall-time bound for the corpus runs, e.g. 10m (0 = unlimited)")
	server := flag.String("server", "", "base URL of a running kissd or kiss-coord: submit corpus-table checks over HTTP instead of checking in-process")
	batch := flag.Bool("batch", false, "with -server pointing at a kiss-coord coordinator: submit the corpus as one /v1/batch instead of per-field /v1/check calls")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("kissbench %s\n", version)
		return
	}
	if *all {
		*table1, *table2, *refcount, *blowup, *coverage, *locksetCmp, *contextBound, *schedulers = true, true, true, true, true, true, true, true
	}
	if !*table1 && !*table2 && !*refcount && !*blowup && !*coverage && !*locksetCmp && !*contextBound && !*schedulers && !*macrobench && !*membench && !*seqbench {
		flag.Usage()
		os.Exit(2)
	}

	opts := eval.Options{
		Workers: *workers, SearchWorkers: *searchWorkers, Server: *server, Batch: *batch,
		DisableMacroSteps: !*macroSteps, DisableFoldMemo: !*foldMemo, MemoMB: *memoMB,
		DisableCallSummaries: !*callSummaries, SummaryMB: *summaryMB,
		VisitedMode: *visitedMode, MemBudgetMB: *memBudgetMB, AuditVisited: *auditVisited,
		Sequentialization: *seqMode, ContextSwitches: *contextSwitches,
	}
	// The memory-budget machinery lives in the BFS engines; the corpus
	// tables run the sequential DFS default, which would silently ignore
	// the budget. -membench forces BFS itself, so it is exempt.
	if *memBudgetMB > 0 && *searchWorkers < 1 && !*membench {
		fmt.Fprintln(os.Stderr, "kissbench: warning: -mem-budget-mb has no effect on the default sequential DFS engine; use -search-workers N (or the kiss binary's -bfs) to engage the spilling frontier")
	}
	if *batch && *server == "" {
		fmt.Fprintln(os.Stderr, "kissbench: -batch requires -server (a kiss-coord coordinator)")
		os.Exit(2)
	}
	if *maxStates > 0 {
		opts.MaxStates = *maxStates
	}
	if *driversFlag != "" {
		opts.Drivers = map[string]bool{}
		for _, d := range strings.Split(*driversFlag, ",") {
			opts.Drivers[strings.TrimSpace(d)] = true
		}
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}
	if *progress {
		// The hook is called from concurrent workers; serialize the writes.
		var mu sync.Mutex
		opts.Progress = func(e eval.FieldEvent) {
			mu.Lock()
			defer mu.Unlock()
			if e.Event.Final {
				fmt.Fprintf(os.Stderr, "progress: %s.%s done states=%d elapsed=%s\n",
					e.Driver, e.Field, e.Event.States, e.Event.Elapsed.Round(time.Millisecond))
				return
			}
			fmt.Fprintf(os.Stderr, "progress: %s.%s states=%d frontier=%d visited=%d rate=%.0f/s\n",
				e.Driver, e.Field, e.Event.States, e.Event.Frontier, e.Event.Visited, e.Event.StatesPerSec)
		}
	}

	writeJSON := eval.WriteJSON
	if *stripTiming {
		writeJSON = eval.WriteJSONDeterministic
	}
	out := &benchOutput{path: *outFile}
	exitCode := 0

	var t1 []*eval.DriverResult
	if *table1 || *table2 {
		var err error
		t1, err = eval.RunCorpus(opts)
		fatal(err)
	}
	if *table1 {
		if *jsonOut {
			fatal(writeJSON(out.Writer(), t1))
		} else {
			fmt.Println(eval.FormatTable1(t1))
			printMismatches("Table 1", eval.CompareTable1(t1))
		}
	}
	if *table2 {
		opts2 := opts
		opts2.Refined = true
		opts2.Only = eval.RacedFields(t1)
		t2, err := eval.RunCorpus(opts2)
		fatal(err)
		if *jsonOut {
			fatal(writeJSON(out.Writer(), t2))
		} else {
			fmt.Println(eval.FormatTable2(t2))
			printMismatches("Table 2", eval.CompareTable2(t2))
		}
	}
	if *refcount {
		rows, err := eval.RunRefcount()
		fatal(err)
		fmt.Println(eval.FormatRefcount(rows))
	}
	if *blowup {
		rows, err := eval.RunBlowup(*blowupN)
		fatal(err)
		fmt.Println(eval.FormatBlowup(rows))
	}
	if *coverage {
		rows, err := eval.RunCoverage(4, 5)
		fatal(err)
		fmt.Println(eval.FormatCoverage(rows))
	}
	if *locksetCmp {
		rows, err := eval.RunLocksetComparison()
		fatal(err)
		fmt.Println(eval.FormatLocksetComparison(rows))
	}
	if *contextBound {
		s, err := eval.RunContextBound(80, 4)
		fatal(err)
		fmt.Println(eval.FormatContextBound(s))
	}
	if *schedulers {
		s, err := eval.RunSchedulerStudy(60)
		fatal(err)
		fmt.Println(eval.FormatSchedulerStudy(s))
	}
	if *macrobench {
		rep, err := eval.RunMacroAblation(eval.AblationOptions{
			MaxStates: opts.MaxStates,
			Drivers:   opts.Drivers,
			Workers:   *workers,
			MemoMB:    *memoMB,
			SummaryMB: *summaryMB,
		})
		fatal(err)
		if *jsonOut {
			fatal(eval.WriteMacroAblation(out.Writer(), rep))
		} else {
			fmt.Print(eval.FormatMacroAblation(rep))
		}
		// Gates set exitCode instead of exiting so the -o artifact still
		// flushes: a failing run must leave the evidence behind.
		if !rep.Identical {
			fmt.Fprintf(os.Stderr, "kissbench: macrobench: %d verdict/position mismatches between arms\n", len(rep.Mismatches))
			exitCode = 1
		}
		if *minRatio > 0 && rep.CompressionRatio < *minRatio {
			fmt.Fprintf(os.Stderr, "kissbench: macrobench: compression ratio %.2fx below required %.2fx\n", rep.CompressionRatio, *minRatio)
			exitCode = 1
		}
		if *minHitRatio > 0 && rep.Memo.MemoHitRatio < *minHitRatio {
			fmt.Fprintf(os.Stderr, "kissbench: macrobench: memo hit ratio %.3f below required %.3f\n", rep.Memo.MemoHitRatio, *minHitRatio)
			exitCode = 1
		}
		if *requireMemoSpeedup && rep.Sum.SteppedPerSec <= rep.On.SteppedPerSec {
			fmt.Fprintf(os.Stderr, "kissbench: macrobench: summary arm traversal rate %.0f/s does not exceed the memo-off macro arm's %.0f/s\n",
				rep.Sum.SteppedPerSec, rep.On.SteppedPerSec)
			exitCode = 1
		}
		// The parity bound carries 10% measurement slack: smoke-sized arms
		// run well under a second each, where run-to-run rate noise swamps
		// the layer's true (near-zero) cost. The slack still trips on a
		// summary layer that grossly costs more than it saves.
		if *requireSummaryParity && rep.Sum.SteppedPerSec < 0.9*rep.Memo.SteppedPerSec {
			fmt.Fprintf(os.Stderr, "kissbench: macrobench: summary arm traversal rate %.0f/s below 90%% of the macro+memo arm's %.0f/s\n",
				rep.Sum.SteppedPerSec, rep.Memo.SteppedPerSec)
			exitCode = 1
		}
	}
	if *membench {
		rep, err := eval.RunMemBudget(eval.MemBudgetOptions{
			MaxStates:     opts.MaxStates,
			MemBudgetMB:   *memBudgetMB,
			Drivers:       opts.Drivers,
			Workers:       *workers,
			SearchWorkers: *searchWorkers,
		})
		fatal(err)
		if *jsonOut || *outFile != "" {
			fatal(eval.WriteMemBudget(out.Writer(), rep))
		}
		if !*jsonOut {
			fmt.Print(eval.FormatMemBudget(rep))
		}
		if *minImproved > 0 && rep.Improved < *minImproved {
			fmt.Fprintf(os.Stderr, "kissbench: membench: only %d fields improved under the budget, required %d\n", rep.Improved, *minImproved)
			exitCode = 1
		}
	}
	if *seqbench {
		rep, err := eval.RunSeqAblation(eval.SeqAblationOptions{
			Programs:      *seqPrograms,
			MaxStates:     opts.MaxStates,
			Workers:       *workers,
			SearchWorkers: *searchWorkers,
		})
		fatal(err)
		if *jsonOut || *outFile != "" {
			fatal(eval.WriteSeqAblation(out.Writer(), rep))
		}
		if !*jsonOut {
			fmt.Print(eval.FormatSeqAblation(rep))
		}
		// Soundness and monotonicity are correctness properties, not
		// tunable thresholds: any violation fails the run.
		if !rep.Sound || !rep.Monotone {
			fmt.Fprintf(os.Stderr, "kissbench: seqbench: sound=%v monotone=%v (%d violations)\n",
				rep.Sound, rep.Monotone, len(rep.Violations))
			exitCode = 1
		}
		if *minCBOnly > 0 && rep.CBOnly < *minCBOnly {
			fmt.Fprintf(os.Stderr, "kissbench: seqbench: only %d CB-only bugs found, required %d\n", rep.CBOnly, *minCBOnly)
			exitCode = 1
		}
	}
	fatal(out.Flush())
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

func printMismatches(what string, ms []string) {
	if len(ms) == 0 {
		fmt.Printf("%s matches the paper's verdict counts exactly.\n\n", what)
		return
	}
	fmt.Printf("%s mismatches vs the paper:\n", what)
	for _, m := range ms {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "kissbench: %v\n", err)
		os.Exit(1)
	}
}
