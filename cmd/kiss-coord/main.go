// Command kiss-coord is the cluster coordinator: one HTTP front end
// over a fleet of kissd backends (internal/coord). Jobs are routed by
// consistent-hashing their content address, so each backend's result
// cache becomes a shard of one distributed cache; a dead backend's work
// reroutes to its ring successor, and after the member comes back the
// coordinator probes its peers' caches before recomputing anything.
//
// Endpoints (see internal/coord):
//
//	POST /v1/check  synchronous single check, same wire shape as kissd
//	POST /v1/batch  submit a corpus; results stream back as JSON Lines
//	GET  /healthz   coordinator + per-backend health, ring epoch
//	GET  /metrics   Prometheus text exposition
//
// Named tenants (X-Kiss-Tenant) draw from per-tenant token buckets and
// get 429 + Retry-After when over quota. kiss -server and kissbench
// -server work against a coordinator unchanged; kissbench -batch uses
// the batch endpoint.
//
// -smoke runs the self-contained acceptance loop used by `make
// cluster-smoke`: two in-process kissd backends behind a coordinator,
// a corpus slice submitted as one batch twice, verdicts required
// identical to local checking, the warm pass required to come from the
// shard caches, and the work required to have spread across both
// backends.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/eval"
	"repro/internal/service"
)

// version is stamped by the Makefile via
// -ldflags "-X main.version=$(VERSION)"; "dev" for plain go build.
var version = "dev"

func main() {
	addr := flag.String("addr", ":8345", "listen address")
	backends := flag.String("backends", "", "comma-separated kissd backends, each name=url or a bare url (auto-named b0, b1, ...)")
	healthEvery := flag.Duration("health-every", 2*time.Second, "backend health-poll cadence")
	tenantRate := flag.Float64("tenant-rate", 50, "per-tenant admission rate in jobs/second")
	tenantBurst := flag.Int("tenant-burst", 200, "per-tenant admission burst in jobs")
	batchWorkers := flag.Int("batch-workers", 0, "concurrent jobs per batch across the fleet (0 = 4 per backend)")
	smoke := flag.Bool("smoke", false, "self-contained smoke test: two in-process backends, a corpus slice batched through the cluster twice, local-identical verdicts and warm-pass cache hits required, then exit")
	smokeDrivers := flag.String("smoke-drivers", "kbfiltr,moufiltr", "comma-separated corpus slice checked by -smoke")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("kiss-coord %s\n", version)
		return
	}

	var err error
	if *smoke {
		err = runSmoke(*smokeDrivers, *healthEvery)
		if err == nil {
			fmt.Println("kiss-coord smoke: ok")
		}
	} else {
		var specs []coord.BackendSpec
		specs, err = parseBackends(*backends)
		if err == nil {
			err = serve(coord.Config{
				Version:      version,
				Backends:     specs,
				HealthEvery:  *healthEvery,
				TenantRate:   *tenantRate,
				TenantBurst:  *tenantBurst,
				BatchWorkers: *batchWorkers,
			}, *addr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kiss-coord: %v\n", err)
		os.Exit(1)
	}
}

// parseBackends reads the -backends list: "name=url" entries, or bare
// URLs auto-named by position.
func parseBackends(s string) ([]coord.BackendSpec, error) {
	var out []coord.BackendSpec
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			out = append(out, coord.BackendSpec{Name: name, URL: url})
		} else {
			out = append(out, coord.BackendSpec{Name: fmt.Sprintf("b%d", i), URL: part})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backends: pass -backends name=url[,name=url...]")
	}
	return out, nil
}

// serve runs the coordinator until SIGINT/SIGTERM. Shutdown waits for
// in-flight requests — batch streams included — up to a minute; a
// second signal kills outright.
func serve(cfg coord.Config, addr string) error {
	co, err := coord.New(cfg)
	if err != nil {
		return err
	}
	defer co.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: co.Handler()}
	fmt.Fprintf(os.Stderr, "kiss-coord %s listening on %s (%d backends)\n",
		cfg.Version, ln.Addr(), len(cfg.Backends))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "kiss-coord: signal received; shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return hs.Shutdown(sctx)
}

// runSmoke is the in-process cluster acceptance loop: local baseline,
// cold batched pass through a 2-backend cluster, warm batched pass
// served from the shard caches, plus one per-field pass over the proxy
// endpoint — all required verdict-identical to local checking.
func runSmoke(driverList string, healthEvery time.Duration) error {
	sel := map[string]bool{}
	for _, d := range strings.Split(driverList, ",") {
		if d = strings.TrimSpace(d); d != "" {
			sel[d] = true
		}
	}

	local, err := eval.RunCorpus(eval.Options{Drivers: sel})
	if err != nil {
		return fmt.Errorf("local baseline: %w", err)
	}
	fields := 0
	for _, dr := range local {
		fields += len(dr.Fields)
	}
	if fields == 0 {
		return fmt.Errorf("corpus slice %q selected no fields", driverList)
	}

	// Two in-process backends on loopback ports.
	var specs []coord.BackendSpec
	var servers []*service.Server
	for i := 0; i < 2; i++ {
		s := service.New(service.Config{Version: version})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		servers = append(servers, s)
		specs = append(specs, coord.BackendSpec{
			Name: fmt.Sprintf("b%d", i),
			URL:  "http://" + ln.Addr().String(),
		})
	}

	co, err := coord.New(coord.Config{Version: version, Backends: specs, HealthEvery: healthEvery})
	if err != nil {
		return err
	}
	defer co.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: co.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "kiss-coord smoke: %s fronting %s and %s, drivers %s\n",
		url, specs[0].URL, specs[1].URL, driverList)

	cold, err := eval.RunCorpus(eval.Options{Drivers: sel, Server: url, Batch: true})
	if err != nil {
		return fmt.Errorf("cold batch: %w", err)
	}
	if err := compareCorpus(local, cold); err != nil {
		return fmt.Errorf("cold batch: %w", err)
	}

	warm, err := eval.RunCorpus(eval.Options{Drivers: sel, Server: url, Batch: true})
	if err != nil {
		return fmt.Errorf("warm batch: %w", err)
	}
	if err := compareCorpus(local, warm); err != nil {
		return fmt.Errorf("warm batch: %w", err)
	}

	// The proxy endpoint serves the same shard caches per field.
	proxy, err := eval.RunCorpus(eval.Options{Drivers: sel, Server: url})
	if err != nil {
		return fmt.Errorf("proxy pass: %w", err)
	}
	if err := compareCorpus(local, proxy); err != nil {
		return fmt.Errorf("proxy pass: %w", err)
	}

	// The warm and proxy passes must have been answered from the shard
	// caches: 2*fields lookups, >=90% owner hits.
	ownerHits, err := scrapeMetric(url, "kiss_coord_owner_cache_hits_total")
	if err != nil {
		return err
	}
	if ownerHits*10 < float64(2*fields)*9 {
		return fmt.Errorf("warm passes: %.0f of %d submissions served from the shard caches (<90%%)", ownerHits, 2*fields)
	}

	// The sharding must actually have spread the corpus: both backends
	// solved some of it.
	for i, s := range servers {
		if done := s.Health().JobsDone; done == 0 {
			return fmt.Errorf("backend b%d computed no jobs; the corpus was not sharded", i)
		}
	}
	fmt.Fprintf(os.Stderr, "kiss-coord smoke: verdicts identical to local; %.0f/%d warm lookups were shard-cache hits\n",
		ownerHits, 2*fields)

	for _, s := range servers {
		dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err := s.Drain(dctx)
		cancel()
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
	}
	return nil
}

// scrapeMetric reads one label-free sample off the coordinator's
// Prometheus endpoint.
func scrapeMetric(url, name string) (float64, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if val, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			fmt.Sscanf(val, "%g", &v)
			return v, nil
		}
	}
	return 0, fmt.Errorf("%s missing from /metrics", name)
}

// compareCorpus requires the cluster-backed corpus results to be
// field-for-field identical to the local baseline.
func compareCorpus(local, remote []*eval.DriverResult) error {
	if len(remote) != len(local) {
		return fmt.Errorf("driver rows: remote %d, local %d", len(remote), len(local))
	}
	for i := range local {
		if len(remote[i].Fields) != len(local[i].Fields) {
			return fmt.Errorf("%s: field rows: remote %d, local %d",
				local[i].Spec.Name, len(remote[i].Fields), len(local[i].Fields))
		}
		for j := range local[i].Fields {
			lf, rf := local[i].Fields[j], remote[i].Fields[j]
			if lf.Verdict != rf.Verdict || lf.States != rf.States || lf.Steps != rf.Steps ||
				lf.Message != rf.Message || lf.Pos != rf.Pos {
				return fmt.Errorf("%s.%s: remote {%v %d %d %q %q}, local {%v %d %d %q %q}",
					lf.Driver, lf.Field, rf.Verdict, rf.States, rf.Steps, rf.Message, rf.Pos,
					lf.Verdict, lf.States, lf.Steps, lf.Message, lf.Pos)
			}
		}
	}
	return nil
}
