package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	kiss "repro"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.pl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const racySrc = `
var x;
func worker() { x = 1; }
func main() {
  x = 0;
  async worker();
  assert(x == 0);
}
`

func TestParseTarget(t *testing.T) {
	tgt, err := parseTarget("DEVICE_EXTENSION.stoppingFlag")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Record != "DEVICE_EXTENSION" || tgt.Field != "stoppingFlag" || tgt.Global != "" {
		t.Errorf("field target parsed wrong: %+v", tgt)
	}
	tgt, err = parseTarget("stopped")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Global != "stopped" {
		t.Errorf("global target parsed wrong: %+v", tgt)
	}
	if _, err := parseTarget(""); err == nil {
		t.Error("empty target accepted")
	}
}

func TestRunCheckCommand(t *testing.T) {
	path := writeTemp(t, racySrc)
	if err := runCheck([]string{"-max-ts", "0", path}); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestRunRaceCommand(t *testing.T) {
	path := writeTemp(t, racySrc)
	if err := runRace([]string{"-max-ts", "0", "-target", "x", path}); err != nil {
		t.Fatalf("race: %v", err)
	}
	if err := runRace([]string{path}); err == nil {
		t.Error("race without -target accepted")
	}
}

func TestRunTransformCommand(t *testing.T) {
	path := writeTemp(t, racySrc)
	if err := runTransform([]string{"-max-ts", "1", path}); err != nil {
		t.Fatalf("transform: %v", err)
	}
	if err := runTransform([]string{"-max-ts", "1", "-target", "x", path}); err != nil {
		t.Fatalf("transform -target: %v", err)
	}
}

func TestRunExploreAndPrint(t *testing.T) {
	path := writeTemp(t, racySrc)
	if err := runExplore([]string{"-context-bound", "2", path}); err != nil {
		t.Fatalf("explore: %v", err)
	}
	if err := runPrint([]string{path}); err != nil {
		t.Fatalf("print: %v", err)
	}
}

// TestObservabilityFlags: every checking command accepts the shared
// budget/observability flag set (-max-depth, -timeout, -progress).
func TestObservabilityFlags(t *testing.T) {
	path := writeTemp(t, racySrc)
	if err := runCheck([]string{"-max-ts", "1", "-max-depth", "50", "-timeout", "30s", "-progress", path}); err != nil {
		t.Fatalf("check with observability flags: %v", err)
	}
	if err := runRace([]string{"-target", "x", "-timeout", "30s", path}); err != nil {
		t.Fatalf("race -timeout: %v", err)
	}
	if err := runExplore([]string{"-context-bound", "2", "-progress", path}); err != nil {
		t.Fatalf("explore -progress: %v", err)
	}
}

func TestMissingFileErrors(t *testing.T) {
	if err := runCheck([]string{"/nonexistent/prog.pl"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := runCheck([]string{}); err == nil {
		t.Error("no-argument invocation accepted")
	}
}

// TestTransformOutputIsValidInput: `kiss transform` output must itself be
// a parsable program (the printed intrinsics round trip).
func TestTransformOutputIsValidInput(t *testing.T) {
	prog, err := kiss.Parse(racySrc)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := kiss.NewConfig(kiss.WithMaxTS(1)).Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	src := seq.Source()
	if !strings.Contains(src, "__kiss_raise") {
		t.Errorf("transformed source missing instrumentation:\n%s", src)
	}
}

func TestRunCFGCommand(t *testing.T) {
	path := writeTemp(t, racySrc)
	if err := runCFG([]string{"-fn", "__kiss_main", "-max-ts", "1", path}); err != nil {
		t.Fatalf("cfg: %v", err)
	}
	if err := runCFG([]string{"-fn", "nosuch", path}); err == nil {
		t.Error("cfg of unknown function accepted")
	}
	if err := runCFG([]string{"-fn", "__kiss_check_r", "-target", "x", path}); err != nil {
		t.Fatalf("cfg -target: %v", err)
	}
}

func TestRunCheckWithCertifyAndEngines(t *testing.T) {
	path := writeTemp(t, racySrc)
	if err := runCheck([]string{"-max-ts", "1", "-bfs", "-certify", path}); err != nil {
		t.Fatalf("check -bfs -certify: %v", err)
	}
	if err := runCheck([]string{"-max-ts", "1", "-summaries", path}); err != nil {
		t.Fatalf("check -summaries: %v", err)
	}
	heapy := writeTemp(t, `record R { f; } func main() { var e; e = new R; e->f = 1; }`)
	if err := runCheck([]string{"-summaries", heapy}); err == nil {
		t.Error("summary engine accepted a heap-using program")
	}
}
