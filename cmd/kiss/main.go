// Command kiss is the command-line front end of the KISS checker: it
// parses a concurrent program in the parallel language (conventionally a
// .pl file), applies the sequentializing transformation, runs the
// sequential model checker, and reports a reconstructed concurrent error
// trace — the full pipeline of Figure 1 of the paper.
//
// Usage:
//
//	kiss check [-max-ts N] [-bfs] [-certify] [-summaries] prog.pl  assertion checking
//	kiss race  [-max-ts N] -target T [-max-states N] prog.pl       race checking
//	kiss transform [-max-ts N] [-target T] prog.pl      print the sequential program
//	kiss explore [-context-bound N] prog.pl             baseline interleaving exploration
//	kiss print prog.pl                                  parse, lower, and pretty-print
//	kiss cfg [-fn NAME] [-max-ts N] prog.pl             Graphviz DOT of the instrumented CFG
//
// Flag names mirror the kiss.Config fields (and kissbench flags): -max-ts,
// -max-states, -max-steps, -max-depth, -bfs, -context-bound, -timeout,
// -search-workers, -macro-steps, -fold-memo, -memo-mb, -progress.
// -macro-steps=false disables macro-step compression and reproduces the
// per-statement search; -fold-memo=false disables the fold-memoization
// replay cache (results are identical, folds just re-execute) and
// -memo-mb caps its byte budget.
// -progress streams search metrics to stderr
// while the checker runs; -timeout bounds wall time and reports the
// partial result; -search-workers N runs the state-space search with N
// workers (verdicts and counters are identical at every worker count).
//
// Memory knobs (PR 9): -mem-budget-mb M caps search memory — the BFS
// frontier spills frames to sorted disk runs past its share (results
// stay bit-identical; spilling is pure eviction) and, under -visited
// compact, the rest sizes a blocked-Bloom visited filter (~8-16
// bits/state instead of a full snapshot per state; may prune revisits
// spuriously, so Safe becomes "no bug found within the filter's
// resolution"). -audit-visited shadow-checks compact hits against an
// exact set and reports the false-positive count.
//
// Sequentialization (PR 10): -seq cb -context-switches K replaces the
// KISS translation with the context-bounded (CB) transform for check and
// transform: per-global snapshots are guessed at each of K context
// switches and validated by linking assumes at the end, so bugs needing a
// preempted thread to *resume* — which the KISS discipline can never
// schedule — become reachable at the price of branching on the guessed
// values. CB handles the scalar-globals fragment only (no heap, no race
// targets); -seq kiss (the default) is the paper's translation.
//
// check and race also take -server URL to submit the job to a running
// kissd daemon instead of checking in-process: the daemon may answer
// from its content-addressed result cache (marked "[cached]"), and
// -timeout becomes the job's server-side deadline. kiss -version prints
// the build version.
//
// The race target T is either a global variable name ("stopped") or
// record.field ("DEVICE_EXTENSION.stoppingFlag").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	kiss "repro"
	"repro/internal/service"
	"repro/internal/stats"
)

// version is stamped by the Makefile via
// -ldflags "-X main.version=$(VERSION)"; "dev" for plain go build.
var version = "dev"

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "check":
		err = runCheck(args)
	case "race":
		err = runRace(args)
	case "transform":
		err = runTransform(args)
	case "explore":
		err = runExplore(args)
	case "print":
		err = runPrint(args)
	case "cfg":
		err = runCFG(args)
	case "-version", "--version", "version":
		fmt.Printf("kiss %s\n", version)
		return
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "kiss: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kiss: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `kiss - sequentializing checker for concurrent programs (Qadeer & Wu, PLDI 2004)

commands:
  check     [-seq kiss|cb] [-context-switches K] [-max-ts N] [-max-states N] [-max-steps N] [-max-depth N] [-bfs] [-timeout D] [-progress] prog.pl
  race      [-max-ts N] -target T [-max-states N] [-max-steps N] [-max-depth N] [-timeout D] [-progress] prog.pl
  transform [-seq kiss|cb] [-context-switches K] [-max-ts N] [-target T] prog.pl
  explore   [-context-bound N] [-max-states N] [-timeout D] [-progress] prog.pl
  print     prog.pl
  cfg       [-fn NAME] [-max-ts N] [-target T] prog.pl   (DOT of the transformed CFG)

The race target T is a global name or Record.Field.
`)
}

func parseTarget(s string) (kiss.RaceTarget, error) {
	if s == "" {
		return kiss.RaceTarget{}, fmt.Errorf("missing -target")
	}
	if rec, field, ok := strings.Cut(s, "."); ok {
		return kiss.RaceTarget{Record: rec, Field: field}, nil
	}
	return kiss.RaceTarget{Global: s}, nil
}

func loadProgram(fs *flag.FlagSet) (*kiss.Program, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one program file, got %d args", fs.NArg())
	}
	return kiss.ParseFile(fs.Arg(0))
}

// budgetFlags registers the search-budget flags shared by the checking
// commands, spelled exactly like the kiss.Config fields they set.
type budgetFlags struct {
	maxStates, maxSteps, maxDepth *int
	searchWorkers                 *int
	macroSteps                    *bool
	foldMemo                      *bool
	memoMB                        *int
	visitedMode                   *string
	memBudgetMB                   *int
	auditVisited                  *bool
	timeout                       *time.Duration
	progress                      *bool
	server                        *string
}

func addBudgetFlags(fs *flag.FlagSet) *budgetFlags {
	return &budgetFlags{
		maxStates:     fs.Int("max-states", 0, "state budget (0 = unlimited)"),
		maxSteps:      fs.Int("max-steps", 0, "step budget (0 = unlimited)"),
		maxDepth:      fs.Int("max-depth", 0, "search depth bound (0 = unlimited)"),
		searchWorkers: fs.Int("search-workers", 0, "parallel search workers (0 = sequential; results identical at every count)"),
		macroSteps:    fs.Bool("macro-steps", true, "collapse deterministic runs into single transitions (-macro-steps=false reproduces the per-statement search)"),
		foldMemo:      fs.Bool("fold-memo", true, "replay previously recorded folds from the read-footprint memo table (-fold-memo=false re-executes every fold; results identical either way)"),
		memoMB:        fs.Int("memo-mb", 0, "fold-memo table byte budget in MiB (0 = default)"),
		visitedMode:   fs.String("visited", "", "visited-set representation: exact (default) or compact (blocked-Bloom filter, ~8-16 bits/state)"),
		memBudgetMB:   fs.Int("mem-budget-mb", 0, "search memory budget in MiB: the frontier spills to disk past its share, a compact filter is sized to the rest (0 = unlimited)"),
		auditVisited:  fs.Bool("audit-visited", false, "shadow-check compact visited hits against an exact set, counting false positives"),
		timeout:       fs.Duration("timeout", 0, "wall-time bound, e.g. 30s (0 = unlimited)"),
		progress:      fs.Bool("progress", false, "stream search metrics to stderr while running"),
		server:        fs.String("server", "", "base URL of a running kissd (e.g. http://localhost:8344): submit the check to the daemon instead of checking locally"),
	}
}

// options converts the parsed flags into functional options. The returned
// cancel func must be called when checking finishes (it releases the
// timeout context's timer).
func (bf *budgetFlags) options() ([]kiss.Option, context.CancelFunc) {
	opts := []kiss.Option{
		kiss.WithMaxStates(*bf.maxStates),
		kiss.WithMaxSteps(*bf.maxSteps),
		kiss.WithMaxDepth(*bf.maxDepth),
		kiss.WithSearchWorkers(*bf.searchWorkers),
		kiss.WithMacroSteps(*bf.macroSteps),
		kiss.WithFoldMemo(*bf.foldMemo),
		kiss.WithMemoMB(*bf.memoMB),
		kiss.WithVisitedMode(*bf.visitedMode),
		kiss.WithMemBudgetMB(*bf.memBudgetMB),
	}
	if *bf.auditVisited {
		opts = append(opts, kiss.WithAuditVisited())
	}
	cancel := context.CancelFunc(func() {})
	if *bf.timeout > 0 {
		var ctx context.Context
		ctx, cancel = context.WithTimeout(context.Background(), *bf.timeout)
		opts = append(opts, kiss.WithContext(ctx))
	}
	if *bf.progress {
		opts = append(opts, kiss.WithProgress(printProgress))
	}
	return opts, cancel
}

// addSeqFlags registers the sequentialization axis shared by check and
// transform.
func addSeqFlags(fs *flag.FlagSet) (seq *string, contextSwitches *int) {
	seq = fs.String("seq", "", `sequentialization: "kiss" (default, the paper's translation) or "cb" (context-bounded, guessed round snapshots)`)
	contextSwitches = fs.Int("context-switches", 0,
		fmt.Sprintf("CB context-switch bound K (0 = default %d; -seq cb only)", kiss.DefaultContextSwitches))
	return seq, contextSwitches
}

// warnMemBudget points out a configured memory budget the selected engine
// would silently ignore: the budget machinery (spilling frontier, sized
// visited filter) lives in the BFS engines only.
func warnMemBudget(cfg *kiss.Config) {
	if cfg.MemBudgetIgnored() {
		fmt.Fprintln(os.Stderr, "kiss: warning: -mem-budget-mb has no effect on the default sequential DFS engine; add -bfs (or -search-workers N) to engage the spilling frontier")
	}
}

func printProgress(e kiss.Event) {
	if e.Final {
		fmt.Fprintf(os.Stderr, "progress: done phase=%s states=%d steps=%d visited=%d elapsed=%s\n",
			e.Phase, e.States, e.Steps, e.Visited, e.Elapsed.Round(time.Millisecond))
		return
	}
	fmt.Fprintf(os.Stderr, "progress: phase=%s states=%d steps=%d frontier=%d depth=%d visited=%d rate=%.0f/s elapsed=%s\n",
		e.Phase, e.States, e.Steps, e.Frontier, e.Depth, e.Visited, e.StatesPerSec, e.Elapsed.Round(time.Millisecond))
}

// remoteCheck submits the raw program source to a running kissd and
// prints the wire result — the service-backed twin of the local
// parse/check/report path. The daemon parses and checks (possibly
// answering from its content-addressed cache); -timeout becomes the
// job's server-side deadline.
func remoteCheck(server, path string, cfg *kiss.Config, timeout time.Duration) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	resp, err := service.NewClient(server).Do(context.Background(),
		service.CheckRequest{Source: string(data), Config: cfg},
		service.WithTimeout(timeout))
	if err != nil {
		return err
	}
	if resp.State == service.StateFailed {
		return fmt.Errorf("remote check failed: %s", resp.Error)
	}
	reportWire(resp.Result, resp.Cached)
	return nil
}

// reportWire mirrors report for the serialized result shape, marking
// cache-served answers.
func reportWire(res *service.Result, cached bool) {
	note := ""
	if cached {
		note = " [cached]"
	}
	switch res.Verdict {
	case kiss.Safe.String():
		fmt.Printf("result: no bug found (states=%d steps=%d)%s\n", res.States, res.Steps, note)
	case kiss.Error.String():
		fmt.Printf("result: ERROR at %s: %s (states=%d steps=%d)%s\n", res.Pos, res.Message, res.States, res.Steps, note)
		if res.Trace != "" {
			fmt.Println()
			fmt.Print(res.Trace)
		}
	default:
		fmt.Printf("result: resource bound exhausted (%s; states=%d steps=%d)%s\n",
			stats.BoundName(res.Stats.Reason), res.States, res.Steps, note)
	}
}

func report(res *kiss.Result) {
	switch res.Verdict {
	case kiss.Safe:
		fmt.Printf("result: no bug found (states=%d steps=%d)\n", res.States, res.Steps)
	case kiss.ResourceBound:
		// Name the specific bound that tripped — a deadline and a state
		// budget call for different operator reactions.
		fmt.Printf("result: %s\n", res)
	case kiss.Error:
		fmt.Printf("result: ERROR at %s: %s (states=%d steps=%d)\n", res.Pos, res.Message, res.States, res.Steps)
		if res.Trace != nil {
			fmt.Println()
			fmt.Print(res.Trace.Format())
		}
	}
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	maxTS := fs.Int("max-ts", 0, "bound MAX on the pending-thread multiset ts")
	bf := addBudgetFlags(fs)
	seq, contextSwitches := addSeqFlags(fs)
	bfs := fs.Bool("bfs", false, "breadth-first search (shortest counterexample)")
	certify := fs.Bool("certify", false, "on error, replay the reconstructed schedule on the concurrent program")
	summaries := fs.Bool("summaries", false, "use the summary-based engine (pointer-free fragment; handles recursion; no trace)")
	fs.Parse(args)
	opts, cancel := bf.options()
	defer cancel()
	opts = append(opts, kiss.WithMaxTS(*maxTS),
		kiss.WithSequentialization(*seq), kiss.WithContextSwitches(*contextSwitches))
	if *bfs {
		opts = append(opts, kiss.WithBFS())
	}
	if *summaries {
		opts = append(opts, kiss.WithSummaries())
	}
	cfg := kiss.NewConfig(opts...)
	warnMemBudget(cfg)
	if *bf.server != "" {
		if *certify {
			return fmt.Errorf("-certify replays the trace locally and is incompatible with -server")
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("expected exactly one program file, got %d args", fs.NArg())
		}
		return remoteCheck(*bf.server, fs.Arg(0), cfg, *bf.timeout)
	}
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	res, err := cfg.Check(prog)
	if err != nil {
		return err
	}
	report(res)
	if *certify && res.Verdict == kiss.Error && res.Trace != nil {
		ok, err := cfg.Certify(prog, res)
		if err != nil {
			return err
		}
		fmt.Printf("\nguided replay of schedule %v: certified=%v\n", res.Trace.Schedule(), ok)
	}
	return nil
}

func runRace(args []string) error {
	fs := flag.NewFlagSet("race", flag.ExitOnError)
	maxTS := fs.Int("max-ts", 0, "bound MAX on the pending-thread multiset ts")
	target := fs.String("target", "", "race target: global name or Record.Field")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	t, err := parseTarget(*target)
	if err != nil {
		return err
	}
	opts, cancel := bf.options()
	defer cancel()
	opts = append(opts, kiss.WithMaxTS(*maxTS), kiss.WithRaceTarget(t))
	cfg := kiss.NewConfig(opts...)
	warnMemBudget(cfg)
	if *bf.server != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("expected exactly one program file, got %d args", fs.NArg())
		}
		fmt.Printf("race check on %s:\n", t)
		return remoteCheck(*bf.server, fs.Arg(0), cfg, *bf.timeout)
	}
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	res, err := cfg.Check(prog)
	if err != nil {
		return err
	}
	fmt.Printf("race check on %s:\n", t)
	report(res)
	return nil
}

func runTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ExitOnError)
	maxTS := fs.Int("max-ts", 0, "bound MAX on the pending-thread multiset ts")
	target := fs.String("target", "", "optional race target: instrument for race checking")
	seqMode, contextSwitches := addSeqFlags(fs)
	stats := fs.Bool("stats", false, "print instrumentation blowup statistics instead of the program")
	fs.Parse(args)
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	seq, err := transformed(prog, *maxTS, *target, *seqMode, *contextSwitches)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Println(kiss.MeasureTransform(prog, seq))
		return nil
	}
	fmt.Print(seq.Source())
	return nil
}

func runExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	contextBound := fs.Int("context-bound", -1, "context-switch bound (-1 = unlimited)")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if *bf.server != "" {
		return fmt.Errorf("explore runs the unreduced interleaving baseline, which kissd does not serve; run it locally")
	}
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	opts, cancel := bf.options()
	defer cancel()
	opts = append(opts, kiss.WithContextBound(*contextBound))
	res, err := kiss.Explore(prog, opts...)
	if err != nil {
		return err
	}
	report(res)
	return nil
}

// transformed applies the selected sequentialization (KISS or CB),
// race-instrumented when a target is given — the shared front half of
// transform and cfg. Race instrumentation needs the KISS translation.
func transformed(prog *kiss.Program, maxTS int, target, seq string, contextSwitches int) (*kiss.Program, error) {
	cfg := kiss.NewConfig(kiss.WithMaxTS(maxTS),
		kiss.WithSequentialization(seq), kiss.WithContextSwitches(contextSwitches))
	if target == "" {
		return cfg.Transform(prog)
	}
	if seq == kiss.SeqCB {
		return nil, fmt.Errorf("-target requires the KISS translation; it is not supported under -seq %s", kiss.SeqCB)
	}
	t, err := parseTarget(target)
	if err != nil {
		return nil, err
	}
	return cfg.TransformRace(prog, t)
}

func runCFG(args []string) error {
	fs := flag.NewFlagSet("cfg", flag.ExitOnError)
	fn := fs.String("fn", "main", "function to render")
	maxTS := fs.Int("max-ts", 0, "bound MAX on the pending-thread multiset ts")
	target := fs.String("target", "", "optional race target: render the race-instrumented program")
	fs.Parse(args)
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	seq, err := transformed(prog, *maxTS, *target, "", 0)
	if err != nil {
		return err
	}
	dot, err := seq.DotCFG(*fn)
	if err != nil {
		return err
	}
	fmt.Print(dot)
	return nil
}

func runPrint(args []string) error {
	fs := flag.NewFlagSet("print", flag.ExitOnError)
	fs.Parse(args)
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	fmt.Print(prog.Source())
	return nil
}
