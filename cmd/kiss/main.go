// Command kiss is the command-line front end of the KISS checker: it
// parses a concurrent program in the parallel language (conventionally a
// .pl file), applies the sequentializing transformation, runs the
// sequential model checker, and reports a reconstructed concurrent error
// trace — the full pipeline of Figure 1 of the paper.
//
// Usage:
//
//	kiss check [-ts N] [-bfs] [-certify] [-summaries] prog.pl   assertion checking
//	kiss race  [-ts N] -target T [-max-states N] prog.pl        race checking
//	kiss transform [-ts N] [-target T] prog.pl        print the sequential program
//	kiss explore [-context N] prog.pl                 baseline interleaving exploration
//	kiss print prog.pl                                parse, lower, and pretty-print
//	kiss cfg [-fn NAME] [-ts N] prog.pl               Graphviz DOT of the instrumented CFG
//
// The race target T is either a global variable name ("stopped") or
// record.field ("DEVICE_EXTENSION.stoppingFlag").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	kiss "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "check":
		err = runCheck(args)
	case "race":
		err = runRace(args)
	case "transform":
		err = runTransform(args)
	case "explore":
		err = runExplore(args)
	case "print":
		err = runPrint(args)
	case "cfg":
		err = runCFG(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "kiss: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kiss: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `kiss - sequentializing checker for concurrent programs (Qadeer & Wu, PLDI 2004)

commands:
  check     [-ts N] [-max-states N] [-max-steps N] prog.pl
  race      [-ts N] -target T [-max-states N] [-max-steps N] prog.pl
  transform [-ts N] [-target T] prog.pl
  explore   [-context N] [-max-states N] prog.pl
  print     prog.pl
  cfg       [-fn NAME] [-ts N] [-target T] prog.pl   (DOT of the transformed CFG)

The race target T is a global name or Record.Field.
`)
}

func parseTarget(s string) (kiss.RaceTarget, error) {
	if s == "" {
		return kiss.RaceTarget{}, fmt.Errorf("missing -target")
	}
	if rec, field, ok := strings.Cut(s, "."); ok {
		return kiss.RaceTarget{Record: rec, Field: field}, nil
	}
	return kiss.RaceTarget{Global: s}, nil
}

func loadProgram(fs *flag.FlagSet) (*kiss.Program, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one program file, got %d args", fs.NArg())
	}
	return kiss.ParseFile(fs.Arg(0))
}

func report(res *kiss.Result) {
	switch res.Verdict {
	case kiss.Safe:
		fmt.Printf("result: no bug found (states=%d steps=%d)\n", res.States, res.Steps)
	case kiss.ResourceBound:
		fmt.Printf("result: resource bound exhausted (states=%d steps=%d)\n", res.States, res.Steps)
	case kiss.Error:
		fmt.Printf("result: ERROR at %s: %s (states=%d steps=%d)\n", res.Pos, res.Message, res.States, res.Steps)
		if res.Trace != nil {
			fmt.Println()
			fmt.Print(res.Trace.Format())
		}
	}
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	ts := fs.Int("ts", 0, "bound MAX on the pending-thread multiset ts")
	maxStates := fs.Int("max-states", 0, "state budget (0 = unlimited)")
	maxSteps := fs.Int("max-steps", 0, "step budget (0 = unlimited)")
	bfs := fs.Bool("bfs", false, "breadth-first search (shortest counterexample)")
	certify := fs.Bool("certify", false, "on error, replay the reconstructed schedule on the concurrent program")
	summaries := fs.Bool("summaries", false, "use the summary-based engine (pointer-free fragment; handles recursion; no trace)")
	fs.Parse(args)
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	budget := kiss.Budget{MaxStates: *maxStates, MaxSteps: *maxSteps, BFS: *bfs}
	opts := kiss.Options{MaxTS: *ts}
	var res *kiss.Result
	if *summaries {
		res, err = kiss.CheckAssertionsSummaries(prog, opts, budget)
	} else {
		res, err = kiss.CheckAssertions(prog, opts, budget)
	}
	if err != nil {
		return err
	}
	report(res)
	if *certify && res.Verdict == kiss.Error && res.Trace != nil {
		ok, err := kiss.CertifyTrace(prog, res, budget)
		if err != nil {
			return err
		}
		fmt.Printf("\nguided replay of schedule %v: certified=%v\n", res.Trace.Schedule(), ok)
	}
	return nil
}

func runRace(args []string) error {
	fs := flag.NewFlagSet("race", flag.ExitOnError)
	ts := fs.Int("ts", 0, "bound MAX on the pending-thread multiset ts")
	target := fs.String("target", "", "race target: global name or Record.Field")
	maxStates := fs.Int("max-states", 0, "state budget (0 = unlimited)")
	maxSteps := fs.Int("max-steps", 0, "step budget (0 = unlimited)")
	fs.Parse(args)
	t, err := parseTarget(*target)
	if err != nil {
		return err
	}
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	res, err := kiss.CheckRace(prog, t, kiss.Options{MaxTS: *ts},
		kiss.Budget{MaxStates: *maxStates, MaxSteps: *maxSteps})
	if err != nil {
		return err
	}
	fmt.Printf("race check on %s:\n", t)
	report(res)
	return nil
}

func runTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ExitOnError)
	ts := fs.Int("ts", 0, "bound MAX on the pending-thread multiset ts")
	target := fs.String("target", "", "optional race target: instrument for race checking")
	stats := fs.Bool("stats", false, "print instrumentation blowup statistics instead of the program")
	fs.Parse(args)
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	var seq *kiss.Program
	if *target != "" {
		t, err := parseTarget(*target)
		if err != nil {
			return err
		}
		seq, err = kiss.TransformRace(prog, t, kiss.Options{MaxTS: *ts})
		if err != nil {
			return err
		}
	} else {
		seq, err = kiss.Transform(prog, kiss.Options{MaxTS: *ts})
		if err != nil {
			return err
		}
	}
	if *stats {
		fmt.Println(kiss.MeasureTransform(prog, seq))
		return nil
	}
	fmt.Print(seq.Source())
	return nil
}

func runExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	contextBound := fs.Int("context", -1, "context-switch bound (-1 = unlimited)")
	maxStates := fs.Int("max-states", 0, "state budget (0 = unlimited)")
	fs.Parse(args)
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	res, err := kiss.ExploreConcurrent(prog, kiss.Budget{MaxStates: *maxStates}, *contextBound)
	if err != nil {
		return err
	}
	report(res)
	return nil
}

func runCFG(args []string) error {
	fs := flag.NewFlagSet("cfg", flag.ExitOnError)
	fn := fs.String("fn", "main", "function to render")
	ts := fs.Int("ts", 0, "bound MAX on the pending-thread multiset ts")
	target := fs.String("target", "", "optional race target: render the race-instrumented program")
	fs.Parse(args)
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	var seq *kiss.Program
	if *target != "" {
		t, err := parseTarget(*target)
		if err != nil {
			return err
		}
		seq, err = kiss.TransformRace(prog, t, kiss.Options{MaxTS: *ts})
		if err != nil {
			return err
		}
	} else {
		seq, err = kiss.Transform(prog, kiss.Options{MaxTS: *ts})
		if err != nil {
			return err
		}
	}
	dot, err := seq.DotCFG(*fn)
	if err != nil {
		return err
	}
	fmt.Print(dot)
	return nil
}

func runPrint(args []string) error {
	fs := flag.NewFlagSet("print", flag.ExitOnError)
	fs.Parse(args)
	prog, err := loadProgram(fs)
	if err != nil {
		return err
	}
	fmt.Print(prog.Source())
	return nil
}
