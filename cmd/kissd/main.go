// Command kissd is the long-running checking service: the kiss.Check
// pipeline behind an HTTP API, with a bounded admission queue, a worker
// pool multiplexing checks under one core budget, a content-addressed
// result cache, and Prometheus metrics. The KISS reduction makes every
// checking problem an independent, deterministic (source, config) pair,
// so identical submissions — corpus re-runs, CI — are answered from the
// cache without exploring a single state.
//
// Endpoints (see internal/service):
//
//	POST /v1/check     submit {source, config, wait?, timeout_ms?}
//	GET  /v1/jobs/{id} poll an async submission
//	GET  /healthz      liveness + version + queue/cache counters
//	GET  /metrics      Prometheus text exposition
//
// A full queue answers 429 with Retry-After; SIGTERM/SIGINT drains:
// accepted jobs (queued and in-flight) run to completion, bounded by
// -drain-timeout, then the listener shuts down. kiss -server URL and
// kissbench -server URL are the matching clients.
//
// -smoke runs the self-contained acceptance loop used by `make
// serve-smoke`: serve on a loopback port, run a corpus slice through
// the daemon twice, require verdicts and counters identical to local
// checking, a >=90% warm-pass cache-hit rate, and a nonzero fold-memo
// steps-saved total on /metrics; then re-run the slice under a shifted
// state budget (result-cache miss, persistent summary-table hit) and
// require the warm re-check to beat the cold pass on wall time; then
// drain cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/eval"
	"repro/internal/service"
)

// version is stamped by the Makefile via
// -ldflags "-X main.version=$(VERSION)"; "dev" for plain go build.
var version = "dev"

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	queueSize := flag.Int("queue", 64, "admission-queue capacity (a full queue rejects with 429 + Retry-After)")
	workers := flag.Int("workers", 0, "concurrent checks (0 = sized from the core count and -search-workers)")
	searchWorkers := flag.Int("search-workers", 0, "parallel search workers per check (0 = sequential; verdicts identical at every count)")
	cacheMB := flag.Int64("cache-mb", 64, "result-cache byte budget in MiB")
	summaryMB := flag.Int64("summary-mb", 0, "persistent call-summary store byte budget in MiB (0 = default, negative disables cross-check summary reuse)")
	memBudgetMB := flag.Int("mem-budget-mb", 0, "per-job search memory ceiling in MiB: jobs asking for more (or for no budget) are clamped; run one value fleet-wide behind a coordinator (0 = no ceiling)")
	timeout := flag.Duration("timeout", 0, "default per-job wall-time bound when the request sets no timeout_ms (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "bound on running accepted jobs to completion at shutdown")
	smoke := flag.Bool("smoke", false, "self-contained smoke test: serve on a loopback port, run a corpus slice twice through the daemon, require local-identical verdicts and a >=90% warm-pass cache-hit rate, drain, exit")
	smokeDrivers := flag.String("smoke-drivers", "kbfiltr,moufiltr", "comma-separated corpus slice checked by -smoke")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("kissd %s\n", version)
		return
	}

	cfg := service.Config{
		Version:        version,
		QueueSize:      *queueSize,
		Workers:        *workers,
		SearchWorkers:  *searchWorkers,
		CacheBytes:     *cacheMB << 20,
		SummaryBytes:   *summaryMB << 20,
		DefaultTimeout: *timeout,
		MemBudgetMB:    *memBudgetMB,
	}
	if *summaryMB < 0 {
		cfg.SummaryBytes = -1
	}
	var err error
	if *smoke {
		err = runSmoke(cfg, *smokeDrivers, *drainTimeout)
		if err == nil {
			fmt.Println("kissd smoke: ok")
		}
	} else {
		err = serve(cfg, *addr, *drainTimeout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kissd: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the daemon until SIGINT/SIGTERM, then drains the scheduler
// (accepted jobs finish, waiting clients get their results) before
// shutting the listener down. A second signal aborts immediately.
func serve(cfg service.Config, addr string, drainTimeout time.Duration) error {
	s := service.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	h := s.Health()
	fmt.Fprintf(os.Stderr, "kissd %s listening on %s (workers=%d search-workers=%d queue=%d cache=%dMiB)\n",
		cfg.Version, ln.Addr(), h.Workers, h.SearchWorkers, h.QueueCapacity, h.Cache.MaxBytes>>20)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills outright
	fmt.Fprintln(os.Stderr, "kissd: signal received; draining")

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "kissd: drain: %v\n", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "kissd: drained")
	return nil
}

// runSmoke is the in-process acceptance loop: local baseline, cold
// service pass, warm service pass, cache-hit assertion, clean drain.
func runSmoke(cfg service.Config, driverList string, drainTimeout time.Duration) error {
	sel := map[string]bool{}
	for _, d := range strings.Split(driverList, ",") {
		if d = strings.TrimSpace(d); d != "" {
			sel[d] = true
		}
	}

	local, err := eval.RunCorpus(eval.Options{Drivers: sel})
	if err != nil {
		return fmt.Errorf("local baseline: %w", err)
	}

	s := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "kissd smoke: serving on %s, drivers %s\n", url, driverList)

	coldStart := time.Now()
	cold, err := eval.RunCorpus(eval.Options{Drivers: sel, Server: url})
	coldDur := time.Since(coldStart)
	if err != nil {
		return fmt.Errorf("cold pass: %w", err)
	}
	if err := compareCorpus(local, cold); err != nil {
		return fmt.Errorf("cold pass: %w", err)
	}
	h1 := s.Health()

	warm, err := eval.RunCorpus(eval.Options{Drivers: sel, Server: url})
	if err != nil {
		return fmt.Errorf("warm pass: %w", err)
	}
	if err := compareCorpus(local, warm); err != nil {
		return fmt.Errorf("warm pass: %w", err)
	}
	h2 := s.Health()

	fields := 0
	for _, dr := range warm {
		fields += len(dr.Fields)
	}
	if fields == 0 {
		return fmt.Errorf("corpus slice %q selected no fields", driverList)
	}
	hits := h2.Cache.Hits - h1.Cache.Hits
	if hits*10 < int64(fields)*9 {
		return fmt.Errorf("warm pass: %d of %d submissions served from cache (<90%%)", hits, fields)
	}
	fmt.Fprintf(os.Stderr, "kissd smoke: verdicts identical to local; warm pass %d/%d cache hits\n", hits, fields)

	// The cold pass ran real checks with fold memoization on (the
	// default); the exported memo metrics must show the replay cache
	// engaging, end to end through /metrics.
	m, err := scrapeMetrics(url, "kissd_memo_hit_ratio", "kissd_memo_steps_saved_total",
		"kissd_summary_hits_total", "kissd_summary_steps_saved_total")
	if err != nil {
		return fmt.Errorf("memo metrics: %w", err)
	}
	if m["kissd_memo_steps_saved_total"] <= 0 {
		return fmt.Errorf("memo metrics: kissd_memo_steps_saved_total is %v; the fold memo never engaged",
			m["kissd_memo_steps_saved_total"])
	}
	fmt.Fprintf(os.Stderr, "kissd smoke: memo hit ratio %.1f%%, %.0f steps replayed from the table\n",
		m["kissd_memo_hit_ratio"]*100, m["kissd_memo_steps_saved_total"])

	// Third pass: the same corpus under a shifted state budget. The
	// canonical config changes, so every submission misses the result
	// cache and runs a real check — but the shaping config (and hence
	// the program key) does not change, so those checks replay from the
	// summary tables the cold pass populated. That is the warm-service
	// pattern the persistent store exists for, and it must show up as
	// wall time: the re-check beats the cold pass.
	budgetStart := time.Now()
	shifted, err := eval.RunCorpus(eval.Options{Drivers: sel, Server: url, MaxStates: eval.DefaultMaxStates + 1})
	budgetDur := time.Since(budgetStart)
	if err != nil {
		return fmt.Errorf("budget pass: %w", err)
	}
	if err := compareVerdicts(local, shifted); err != nil {
		return fmt.Errorf("budget pass: %w", err)
	}
	h3 := s.Health()
	if d := h3.Cache.Hits - h2.Cache.Hits; d != 0 {
		return fmt.Errorf("budget pass: %d submissions served from the result cache; the shifted budget should miss it", d)
	}
	m2, err := scrapeMetrics(url, "kissd_summary_hits_total", "kissd_summary_steps_saved_total")
	if err != nil {
		return fmt.Errorf("summary metrics: %w", err)
	}
	sumHits := m2["kissd_summary_hits_total"] - m["kissd_summary_hits_total"]
	sumSaved := m2["kissd_summary_steps_saved_total"] - m["kissd_summary_steps_saved_total"]
	if sumHits <= 0 || sumSaved <= 0 {
		return fmt.Errorf("budget pass: summary hits %+v steps-saved %+v; the persistent summary table never engaged", sumHits, sumSaved)
	}
	if budgetDur >= coldDur {
		return fmt.Errorf("budget pass: warm re-check took %v, cold pass took %v; summary reuse must be measurably faster", budgetDur, coldDur)
	}
	fmt.Fprintf(os.Stderr, "kissd smoke: budget-shifted re-check %v vs cold %v (%.0f summary hits, %.0f steps replayed)\n",
		budgetDur.Round(time.Millisecond), coldDur.Round(time.Millisecond), sumHits, sumSaved)

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(sctx)
}

// scrapeMetrics reads the named unlabeled series off the daemon's
// Prometheus endpoint — the same bytes an operator's scrape sees. Every
// requested name must be present.
func scrapeMetrics(url string, names ...string) (map[string]float64, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	out := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || !want[name] {
			continue
		}
		var v float64
		fmt.Sscanf(val, "%g", &v)
		out[name] = v
	}
	for _, n := range names {
		if _, ok := out[n]; !ok {
			return nil, fmt.Errorf("%s missing from /metrics", n)
		}
	}
	return out, nil
}

// compareVerdicts requires field-for-field verdict identity (verdict,
// message, failing position) but not counter identity: the budget pass
// runs under a shifted state bound, so budget-tripped fields legitimately
// report different stored-state counts while every verdict is unchanged.
func compareVerdicts(local, remote []*eval.DriverResult) error {
	if len(remote) != len(local) {
		return fmt.Errorf("driver rows: remote %d, local %d", len(remote), len(local))
	}
	for i := range local {
		if len(remote[i].Fields) != len(local[i].Fields) {
			return fmt.Errorf("%s: field rows: remote %d, local %d",
				local[i].Spec.Name, len(remote[i].Fields), len(local[i].Fields))
		}
		for j := range local[i].Fields {
			lf, rf := local[i].Fields[j], remote[i].Fields[j]
			if lf.Verdict != rf.Verdict || lf.Message != rf.Message || lf.Pos != rf.Pos {
				return fmt.Errorf("%s.%s: remote {%v %q %q}, local {%v %q %q}",
					lf.Driver, lf.Field, rf.Verdict, rf.Message, rf.Pos,
					lf.Verdict, lf.Message, lf.Pos)
			}
		}
	}
	return nil
}

// compareCorpus requires the service-backed corpus results to be
// field-for-field identical to the local baseline — verdicts, failure
// positions, and the deterministic search counters.
func compareCorpus(local, remote []*eval.DriverResult) error {
	if len(remote) != len(local) {
		return fmt.Errorf("driver rows: remote %d, local %d", len(remote), len(local))
	}
	for i := range local {
		if len(remote[i].Fields) != len(local[i].Fields) {
			return fmt.Errorf("%s: field rows: remote %d, local %d",
				local[i].Spec.Name, len(remote[i].Fields), len(local[i].Fields))
		}
		for j := range local[i].Fields {
			lf, rf := local[i].Fields[j], remote[i].Fields[j]
			if lf.Verdict != rf.Verdict || lf.States != rf.States || lf.Steps != rf.Steps ||
				lf.Message != rf.Message || lf.Pos != rf.Pos {
				return fmt.Errorf("%s.%s: remote {%v %d %d %q %q}, local {%v %d %d %q %q}",
					lf.Driver, lf.Field, rf.Verdict, rf.States, rf.Steps, rf.Message, rf.Pos,
					lf.Verdict, lf.States, lf.Steps, lf.Message, lf.Pos)
			}
		}
	}
	return nil
}
