// Command kissd is the long-running checking service: the kiss.Check
// pipeline behind an HTTP API, with a bounded admission queue, a worker
// pool multiplexing checks under one core budget, a content-addressed
// result cache, and Prometheus metrics. The KISS reduction makes every
// checking problem an independent, deterministic (source, config) pair,
// so identical submissions — corpus re-runs, CI — are answered from the
// cache without exploring a single state.
//
// Endpoints (see internal/service):
//
//	POST /v1/check     submit {source, config, wait?, timeout_ms?}
//	GET  /v1/jobs/{id} poll an async submission
//	GET  /healthz      liveness + version + queue/cache counters
//	GET  /metrics      Prometheus text exposition
//
// A full queue answers 429 with Retry-After; SIGTERM/SIGINT drains:
// accepted jobs (queued and in-flight) run to completion, bounded by
// -drain-timeout, then the listener shuts down. kiss -server URL and
// kissbench -server URL are the matching clients.
//
// -smoke runs the self-contained acceptance loop used by `make
// serve-smoke`: serve on a loopback port, run a corpus slice through
// the daemon twice, require verdicts and counters identical to local
// checking, a >=90% warm-pass cache-hit rate, and a nonzero fold-memo
// steps-saved total on /metrics, then drain cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/eval"
	"repro/internal/service"
)

// version is stamped by the Makefile via
// -ldflags "-X main.version=$(VERSION)"; "dev" for plain go build.
var version = "dev"

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	queueSize := flag.Int("queue", 64, "admission-queue capacity (a full queue rejects with 429 + Retry-After)")
	workers := flag.Int("workers", 0, "concurrent checks (0 = sized from the core count and -search-workers)")
	searchWorkers := flag.Int("search-workers", 0, "parallel search workers per check (0 = sequential; verdicts identical at every count)")
	cacheMB := flag.Int64("cache-mb", 64, "result-cache byte budget in MiB")
	timeout := flag.Duration("timeout", 0, "default per-job wall-time bound when the request sets no timeout_ms (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "bound on running accepted jobs to completion at shutdown")
	smoke := flag.Bool("smoke", false, "self-contained smoke test: serve on a loopback port, run a corpus slice twice through the daemon, require local-identical verdicts and a >=90% warm-pass cache-hit rate, drain, exit")
	smokeDrivers := flag.String("smoke-drivers", "kbfiltr,moufiltr", "comma-separated corpus slice checked by -smoke")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("kissd %s\n", version)
		return
	}

	cfg := service.Config{
		Version:        version,
		QueueSize:      *queueSize,
		Workers:        *workers,
		SearchWorkers:  *searchWorkers,
		CacheBytes:     *cacheMB << 20,
		DefaultTimeout: *timeout,
	}
	var err error
	if *smoke {
		err = runSmoke(cfg, *smokeDrivers, *drainTimeout)
		if err == nil {
			fmt.Println("kissd smoke: ok")
		}
	} else {
		err = serve(cfg, *addr, *drainTimeout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kissd: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the daemon until SIGINT/SIGTERM, then drains the scheduler
// (accepted jobs finish, waiting clients get their results) before
// shutting the listener down. A second signal aborts immediately.
func serve(cfg service.Config, addr string, drainTimeout time.Duration) error {
	s := service.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	h := s.Health()
	fmt.Fprintf(os.Stderr, "kissd %s listening on %s (workers=%d search-workers=%d queue=%d cache=%dMiB)\n",
		cfg.Version, ln.Addr(), h.Workers, h.SearchWorkers, h.QueueCapacity, h.Cache.MaxBytes>>20)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills outright
	fmt.Fprintln(os.Stderr, "kissd: signal received; draining")

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "kissd: drain: %v\n", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "kissd: drained")
	return nil
}

// runSmoke is the in-process acceptance loop: local baseline, cold
// service pass, warm service pass, cache-hit assertion, clean drain.
func runSmoke(cfg service.Config, driverList string, drainTimeout time.Duration) error {
	sel := map[string]bool{}
	for _, d := range strings.Split(driverList, ",") {
		if d = strings.TrimSpace(d); d != "" {
			sel[d] = true
		}
	}

	local, err := eval.RunCorpus(eval.Options{Drivers: sel})
	if err != nil {
		return fmt.Errorf("local baseline: %w", err)
	}

	s := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "kissd smoke: serving on %s, drivers %s\n", url, driverList)

	cold, err := eval.RunCorpus(eval.Options{Drivers: sel, Server: url})
	if err != nil {
		return fmt.Errorf("cold pass: %w", err)
	}
	if err := compareCorpus(local, cold); err != nil {
		return fmt.Errorf("cold pass: %w", err)
	}
	h1 := s.Health()

	warm, err := eval.RunCorpus(eval.Options{Drivers: sel, Server: url})
	if err != nil {
		return fmt.Errorf("warm pass: %w", err)
	}
	if err := compareCorpus(local, warm); err != nil {
		return fmt.Errorf("warm pass: %w", err)
	}
	h2 := s.Health()

	fields := 0
	for _, dr := range warm {
		fields += len(dr.Fields)
	}
	if fields == 0 {
		return fmt.Errorf("corpus slice %q selected no fields", driverList)
	}
	hits := h2.Cache.Hits - h1.Cache.Hits
	if hits*10 < int64(fields)*9 {
		return fmt.Errorf("warm pass: %d of %d submissions served from cache (<90%%)", hits, fields)
	}
	fmt.Fprintf(os.Stderr, "kissd smoke: verdicts identical to local; warm pass %d/%d cache hits\n", hits, fields)

	// The cold pass ran real checks with fold memoization on (the
	// default); the exported memo metrics must show the replay cache
	// engaging, end to end through /metrics.
	memoRatio, memoSaved, err := scrapeMemoMetrics(url)
	if err != nil {
		return fmt.Errorf("memo metrics: %w", err)
	}
	if memoSaved <= 0 {
		return fmt.Errorf("memo metrics: kissd_memo_steps_saved_total is %v; the fold memo never engaged", memoSaved)
	}
	fmt.Fprintf(os.Stderr, "kissd smoke: memo hit ratio %.1f%%, %.0f steps replayed from the table\n",
		memoRatio*100, memoSaved)

	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(sctx)
}

// scrapeMemoMetrics reads the fold-memo gauges off the daemon's
// Prometheus endpoint — the same bytes an operator's scrape sees.
func scrapeMemoMetrics(url string) (hitRatio, stepsSaved float64, err error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		return 0, 0, err
	}
	foundRatio := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		switch name {
		case "kissd_memo_hit_ratio":
			fmt.Sscanf(val, "%g", &hitRatio)
			foundRatio = true
		case "kissd_memo_steps_saved_total":
			fmt.Sscanf(val, "%g", &stepsSaved)
		}
	}
	if !foundRatio {
		return 0, 0, fmt.Errorf("kissd_memo_hit_ratio missing from /metrics")
	}
	return hitRatio, stepsSaved, nil
}

// compareCorpus requires the service-backed corpus results to be
// field-for-field identical to the local baseline — verdicts, failure
// positions, and the deterministic search counters.
func compareCorpus(local, remote []*eval.DriverResult) error {
	if len(remote) != len(local) {
		return fmt.Errorf("driver rows: remote %d, local %d", len(remote), len(local))
	}
	for i := range local {
		if len(remote[i].Fields) != len(local[i].Fields) {
			return fmt.Errorf("%s: field rows: remote %d, local %d",
				local[i].Spec.Name, len(remote[i].Fields), len(local[i].Fields))
		}
		for j := range local[i].Fields {
			lf, rf := local[i].Fields[j], remote[i].Fields[j]
			if lf.Verdict != rf.Verdict || lf.States != rf.States || lf.Steps != rf.Steps ||
				lf.Message != rf.Message || lf.Pos != rf.Pos {
				return fmt.Errorf("%s.%s: remote {%v %d %d %q %q}, local {%v %d %d %q %q}",
					lf.Driver, lf.Field, rf.Verdict, rf.States, rf.Steps, rf.Message, rf.Pos,
					lf.Verdict, lf.States, lf.Steps, lf.Message, lf.Pos)
			}
		}
	}
	return nil
}
