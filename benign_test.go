package kiss

import (
	"strings"
	"testing"
)

// The benign annotation is the future-work feature proposed in Section 6
// of the paper: "we intend to deal with the problem of benign races by
// allowing the programmer to annotate an access as benign. KISS can then
// use this annotation as a directive to not instrument that access."

// fakemodemOpenCount is the benign-race pattern of Section 6: OpenCount is
// incremented under a lock everywhere except one read whose decision does
// not need the lock ("The read operation is atomic already; performing it
// while holding the protecting lock will not reduce the set of values that
// may be read").
const fakemodemOpenCount = `
record EXT { lock; OpenCount; }

func DispatchCreate(e) {
  atomic { assume(e->lock == 0); e->lock = 1; }
  e->OpenCount = e->OpenCount + 1;
  atomic { e->lock = 0; }
}

func DispatchCleanup(e) {
  var v;
  %s
}

func main() {
  var e;
  e = new EXT;
  async DispatchCreate(e);
  DispatchCleanup(e);
}
`

func TestBenignAnnotationSuppressesReport(t *testing.T) {
	target := RaceTarget{Record: "EXT", Field: "OpenCount"}

	// Unannotated: the unprotected read races the locked increment and
	// KISS reports it, as in the paper's fakemodem experiment.
	plain := strings.Replace(fakemodemOpenCount, "%s",
		`v = e->OpenCount;
  if (v == 0) { skip; }`, 1)
	prog, err := Parse(plain)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Check(prog, WithRaceTarget(target))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Error {
		t.Fatalf("unannotated benign race not reported: %v", res.Verdict)
	}

	// Annotated: the same access inside benign{} is not instrumented, so
	// the warning disappears.
	annotated := strings.Replace(fakemodemOpenCount, "%s",
		`benign {
    v = e->OpenCount;
  }
  if (v == 0) { skip; }`, 1)
	prog2, err := Parse(annotated)
	if err != nil {
		t.Fatalf("parse annotated: %v", err)
	}
	res2, err := Check(prog2, WithRaceTarget(target))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != Safe {
		t.Fatalf("annotated access still reported: %v (%s)", res2.Verdict, res2.Message)
	}
}

// TestBenignDoesNotMaskOtherAccesses: only the annotated accesses are
// exempt; a second unannotated conflicting access is still reported.
func TestBenignDoesNotMaskOtherAccesses(t *testing.T) {
	src := `
record EXT { OpenCount; }
func reader(e) {
  var v;
  benign {
    v = e->OpenCount;
  }
  v = e->OpenCount;     // unannotated read still races
}
func writer(e) {
  e->OpenCount = 1;
}
func main() {
  var e;
  e = new EXT;
  async writer(e);
  reader(e);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, WithRaceTarget(RaceTarget{Record: "EXT", Field: "OpenCount"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Error {
		t.Fatalf("unannotated access masked by a sibling benign block: %v", res.Verdict)
	}
}

// TestBenignPreservesExecutionSemantics: the annotation changes nothing
// for assertion checking or the concurrent semantics.
func TestBenignPreservesExecutionSemantics(t *testing.T) {
	src := `
var x;
func worker() {
  benign {
    x = x + 1;
  }
}
func main() {
  x = 0;
  async worker();
  assume(x == 1);
  assert(x == 1);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, WithMaxTS(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Safe {
		t.Fatalf("benign changed assertion semantics: %v (%s)", res.Verdict, res.Message)
	}
	ground, err := Explore(prog)
	if err != nil {
		t.Fatal(err)
	}
	if ground.Verdict != Safe {
		t.Fatalf("benign changed concurrent semantics: %v", ground.Verdict)
	}
}

// TestBenignRoundTrip: the annotation survives printing and reparsing.
func TestBenignRoundTrip(t *testing.T) {
	src := `
var x;
func main() {
  benign {
    x = 1;
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := prog.Source()
	if !strings.Contains(printed, "benign {") {
		t.Fatalf("benign lost in printing:\n%s", printed)
	}
	if _, err := Parse(printed); err != nil {
		t.Fatalf("printed benign does not reparse: %v", err)
	}
}
