package kiss

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// This file gives Config a stable JSON wire format, the single encoding
// shared by the kissd HTTP API (internal/service wire requests) and the
// content-addressed result cache (the config half of the cache key). The
// format is defined once, here, next to the functional options it
// mirrors, so the two can't drift: every serializable Config knob appears
// in wireConfig with a fixed snake_case name, and the golden test in
// config_wire_test.go pins the rendered bytes.
//
// The runtime-only fields — Context, Progress, and the progress cadence —
// are deliberately absent: they parameterize *how* a check runs (who is
// watching, when it may be interrupted), never *what* it computes, so
// they have no business in a wire request or a cache key.
//
// Every payload leads with an explicit version field "v". The format was
// frozen as v1 together with the service envelope (internal/service) and
// the Go API (DESIGN.md, "the v1 API freeze"): a payload without a
// version, or with one this build does not speak, fails fast with a
// *WireVersionError instead of being half-understood.

// WireV is the wire-format version this build speaks, carried in the "v"
// field of every Config payload and service envelope. Distributed result
// reuse (kissd's cache, kiss-coord's peer lookup) is only sound when both
// sides agree byte-for-byte on what a payload means, so version skew is a
// hard decode error, never a best-effort parse.
const WireV = 1

// WireVersionError reports a wire payload whose "v" field is missing
// (Got == 0) or names a version this build does not speak. It is the
// typed form callers match with errors.As to distinguish version skew
// from malformed JSON.
type WireVersionError struct {
	What string // which payload failed: "config", "check request", ...
	Got  int
}

func (e *WireVersionError) Error() string {
	if e.Got == 0 {
		return fmt.Sprintf("kiss: %s is missing the wire version field \"v\" (this build speaks v%d)", e.What, WireV)
	}
	return fmt.Sprintf("kiss: %s wire version %d is not supported (this build speaks v%d)", e.What, e.Got, WireV)
}

// CheckWireV validates a decoded "v" field, returning a *WireVersionError
// naming the payload on mismatch. internal/service uses it for the
// request/response envelopes; Config.UnmarshalJSON uses it for configs.
func CheckWireV(what string, v int) error {
	if v != WireV {
		return &WireVersionError{What: what, Got: v}
	}
	return nil
}

// wireConfig is the serialized shape of Config. Field order is the
// canonical order; tags are the canonical names.
type wireConfig struct {
	V                   int             `json:"v"`
	MaxTS               int             `json:"max_ts"`
	DisableAliasElision bool            `json:"disable_alias_elision"`
	Scheduler           string          `json:"scheduler"`
	RaceTarget          *wireRaceTarget `json:"race_target,omitempty"`
	Summaries           bool            `json:"summaries"`
	MaxStates           int             `json:"max_states"`
	MaxSteps            int             `json:"max_steps"`
	MaxDepth            int             `json:"max_depth"`
	BFS                 bool            `json:"bfs"`
	DisableMacroSteps   bool            `json:"disable_macro_steps"`
	DisableFoldMemo     bool            `json:"disable_fold_memo"`
	MemoMB              int             `json:"memo_mb"`
	DisableCallSum      bool            `json:"disable_call_summaries"`
	SummaryMB           int             `json:"summary_mb"`
	SearchWorkers       int             `json:"search_workers"`
	NumShards           int             `json:"num_shards"`
	ContextBound        int             `json:"context_bound"`
	// The memory-budget knobs are omitempty: payloads and cache keys
	// written before they existed decode and re-render byte-identically,
	// so the v1 freeze holds without a version bump.
	VisitedMode string `json:"visited_mode,omitempty"`
	MemBudgetMB int    `json:"mem_budget_mb,omitempty"`
	// The sequentialization knobs follow the same omitempty tail-field
	// discipline: the default mode ("", meaning kiss) renders no bytes,
	// so pre-CB payloads and cache keys are untouched, while cb-mode
	// configs — which compute a different result — render distinct bytes
	// and get distinct cache keys.
	Sequentialization string `json:"sequentialization,omitempty"`
	ContextSwitches   int    `json:"context_switches,omitempty"`
}

type wireRaceTarget struct {
	Global string `json:"global,omitempty"`
	Record string `json:"record,omitempty"`
	Field  string `json:"field,omitempty"`
}

// schedulerNames maps the Scheduler enum to its stable wire spelling
// (the same strings Scheduler.String renders).
var schedulerNames = map[Scheduler]string{
	SchedulerNondet:      "nondet",
	SchedulerDrainAll:    "drain-all",
	SchedulerAtCallsOnly: "at-calls-only",
}

func parseScheduler(s string) (Scheduler, error) {
	for sched, name := range schedulerNames {
		if name == s {
			return sched, nil
		}
	}
	return 0, fmt.Errorf("kiss: unknown scheduler %q", s)
}

// MarshalJSON renders the serializable Config knobs in the stable wire
// format. The runtime-only fields (Context, Progress, ProgressStates,
// ProgressEvery) are dropped; schedulers render by name.
func (c *Config) MarshalJSON() ([]byte, error) {
	name, ok := schedulerNames[c.Scheduler]
	if !ok {
		return nil, fmt.Errorf("kiss: cannot marshal unknown scheduler %d", int(c.Scheduler))
	}
	w := wireConfig{
		V:                   WireV,
		MaxTS:               c.MaxTS,
		DisableAliasElision: c.DisableAliasElision,
		Scheduler:           name,
		Summaries:           c.Summaries,
		MaxStates:           c.MaxStates,
		MaxSteps:            c.MaxSteps,
		MaxDepth:            c.MaxDepth,
		BFS:                 c.BFS,
		DisableMacroSteps:   c.DisableMacroSteps,
		DisableFoldMemo:     c.DisableFoldMemo,
		MemoMB:              c.MemoMB,
		DisableCallSum:      c.DisableCallSummaries,
		SummaryMB:           c.SummaryMB,
		SearchWorkers:       c.SearchWorkers,
		NumShards:           c.NumShards,
		ContextBound:        c.ContextBound,
		VisitedMode:         c.VisitedMode,
		MemBudgetMB:         c.MemBudgetMB,
		Sequentialization:   c.Sequentialization,
		ContextSwitches:     c.ContextSwitches,
	}
	if c.RaceTarget != nil {
		w.RaceTarget = &wireRaceTarget{
			Global: c.RaceTarget.Global,
			Record: c.RaceTarget.Record,
			Field:  c.RaceTarget.Field,
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire format back into a Config. Unknown
// fields are rejected — a wire request naming a knob this build doesn't
// know about is a version skew the caller must hear about, not a silent
// no-op — and the "v" field must name a version this build speaks: a
// missing or unknown version fails with a *WireVersionError before any
// knob is interpreted. An absent scheduler means the paper's
// nondeterministic default.
func (c *Config) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireConfig
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("kiss: decoding config: %w", err)
	}
	if err := CheckWireV("config", w.V); err != nil {
		return err
	}
	sched := SchedulerNondet
	if w.Scheduler != "" {
		var err error
		if sched, err = parseScheduler(w.Scheduler); err != nil {
			return err
		}
	}
	switch w.VisitedMode {
	case "", VisitedExact, VisitedCompact:
	default:
		return fmt.Errorf("kiss: unknown visited mode %q", w.VisitedMode)
	}
	switch w.Sequentialization {
	case "", SeqKISS, SeqCB:
	default:
		return fmt.Errorf("kiss: unknown sequentialization %q", w.Sequentialization)
	}
	if w.ContextSwitches < 0 {
		return fmt.Errorf("kiss: negative context-switch bound %d", w.ContextSwitches)
	}
	*c = Config{
		MaxTS:                w.MaxTS,
		DisableAliasElision:  w.DisableAliasElision,
		Scheduler:            sched,
		Summaries:            w.Summaries,
		MaxStates:            w.MaxStates,
		MaxSteps:             w.MaxSteps,
		MaxDepth:             w.MaxDepth,
		BFS:                  w.BFS,
		DisableMacroSteps:    w.DisableMacroSteps,
		DisableFoldMemo:      w.DisableFoldMemo,
		MemoMB:               w.MemoMB,
		DisableCallSummaries: w.DisableCallSum,
		SummaryMB:            w.SummaryMB,
		SearchWorkers:        w.SearchWorkers,
		NumShards:            w.NumShards,
		ContextBound:         w.ContextBound,
		VisitedMode:          w.VisitedMode,
		MemBudgetMB:          w.MemBudgetMB,
		Sequentialization:    w.Sequentialization,
		ContextSwitches:      w.ContextSwitches,
	}
	if w.RaceTarget != nil {
		c.RaceTarget = &RaceTarget{
			Global: w.RaceTarget.Global,
			Record: w.RaceTarget.Record,
			Field:  w.RaceTarget.Field,
		}
	}
	return nil
}

// Normalized returns a copy of the Config reduced to the knobs that
// determine a Check result. Two configs with equal Normalized forms are
// guaranteed to produce identical Check outcomes on the same program, so
// the normalized form is what a result cache may key on. Dropped fields:
//
//   - Context, Progress, ProgressStates, ProgressEvery: runtime plumbing,
//     invisible to the verdict.
//   - SearchWorkers, NumShards: the parallel search is bit-identical at
//     every worker/shard count (the PR 3 invariant, property-tested in
//     internal/seqcheck and internal/concheck), so they only move wall
//     clock and the scheduling-dependent Stats.Parallel diagnostics.
//   - ContextBound: consulted only by Explore, ignored by Check.
//   - DisableFoldMemo, MemoMB, AuditFoldMemo: fold memoization replays
//     folds bit-identically (the memo invariant, property-tested against
//     memo-off runs), so the knobs move only wall time and the
//     scheduling-dependent Stats.Memo diagnostics.
//   - DisableCallSummaries, SummaryMB, SummaryTable: call summaries carry
//     the same bit-identity invariant as the memo (property-tested against
//     summary-off runs), so the knobs — and any injected persistent table —
//     move only wall time and Stats.Summary.
//   - SpillDir and AuditVisited: spill placement and the false-positive
//     audit never change what a check computes. MemBudgetMB is kept only
//     under VisitedCompact — frontier spilling is bit-identical (eviction
//     only, property-tested in internal/seqcheck and internal/concheck),
//     but the budget also sizes the compact filter, whose false positives
//     are part of the result.
//
// Everything else — the transformation knobs, the engine selection, the
// budgets, BFS, and macro-step compression (which changes the stored-state
// counters a Result reports) — is kept. The sequentialization mode is
// verdict-affecting and is kept, in canonical spelling: "kiss" reduces to
// "" (they select the same transform), ContextSwitches is zeroed under
// KISS (ignored there) and defaulted under cb, and the KISS-only
// transform knobs (MaxTS, Scheduler, alias elision) are zeroed under cb,
// which never consults them — so configs that must compute the same
// result render the same bytes.
func (c *Config) Normalized() Config {
	n := *c
	if n.Sequentialization == SeqKISS {
		n.Sequentialization = ""
	}
	if n.Sequentialization == SeqCB {
		n.ContextSwitches = n.EffectiveContextSwitches()
		n.MaxTS = 0
		n.Scheduler = SchedulerNondet
		n.DisableAliasElision = false
	} else {
		n.ContextSwitches = 0
	}
	n.Context = nil
	n.Progress = nil
	n.ProgressStates = 0
	n.ProgressEvery = 0
	n.SearchWorkers = 0
	n.NumShards = 0
	n.ContextBound = 0
	n.DisableFoldMemo = false
	n.MemoMB = 0
	n.AuditFoldMemo = false
	n.DisableCallSummaries = false
	n.SummaryMB = 0
	n.SummaryTable = nil
	n.SpillDir = ""
	n.AuditVisited = false
	if n.VisitedMode != VisitedCompact {
		n.MemBudgetMB = 0
	}
	if n.RaceTarget != nil {
		// Detach the pointer so the normalized copy shares no storage.
		t := *n.RaceTarget
		n.RaceTarget = &t
	}
	return n
}

// CanonicalJSON renders the normalized config as the canonical byte
// sequence used in cache keys: fixed field order, fixed names, runtime
// and result-invariant knobs stripped. Configs that must produce the
// same Check result render to the same bytes.
func (c *Config) CanonicalJSON() ([]byte, error) {
	n := c.Normalized()
	return n.MarshalJSON()
}
