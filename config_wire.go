package kiss

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// This file gives Config a stable JSON wire format, the single encoding
// shared by the kissd HTTP API (internal/service wire requests) and the
// content-addressed result cache (the config half of the cache key). The
// format is defined once, here, next to the functional options it
// mirrors, so the two can't drift: every serializable Config knob appears
// in wireConfig with a fixed snake_case name, and the golden test in
// config_wire_test.go pins the rendered bytes.
//
// The runtime-only fields — Context, Progress, and the progress cadence —
// are deliberately absent: they parameterize *how* a check runs (who is
// watching, when it may be interrupted), never *what* it computes, so
// they have no business in a wire request or a cache key.

// wireConfig is the serialized shape of Config. Field order is the
// canonical order; tags are the canonical names.
type wireConfig struct {
	MaxTS               int             `json:"max_ts"`
	DisableAliasElision bool            `json:"disable_alias_elision"`
	Scheduler           string          `json:"scheduler"`
	RaceTarget          *wireRaceTarget `json:"race_target,omitempty"`
	Summaries           bool            `json:"summaries"`
	MaxStates           int             `json:"max_states"`
	MaxSteps            int             `json:"max_steps"`
	MaxDepth            int             `json:"max_depth"`
	BFS                 bool            `json:"bfs"`
	DisableMacroSteps   bool            `json:"disable_macro_steps"`
	DisableFoldMemo     bool            `json:"disable_fold_memo"`
	MemoMB              int             `json:"memo_mb"`
	SearchWorkers       int             `json:"search_workers"`
	NumShards           int             `json:"num_shards"`
	ContextBound        int             `json:"context_bound"`
}

type wireRaceTarget struct {
	Global string `json:"global,omitempty"`
	Record string `json:"record,omitempty"`
	Field  string `json:"field,omitempty"`
}

// schedulerNames maps the Scheduler enum to its stable wire spelling
// (the same strings Scheduler.String renders).
var schedulerNames = map[Scheduler]string{
	SchedulerNondet:      "nondet",
	SchedulerDrainAll:    "drain-all",
	SchedulerAtCallsOnly: "at-calls-only",
}

func parseScheduler(s string) (Scheduler, error) {
	for sched, name := range schedulerNames {
		if name == s {
			return sched, nil
		}
	}
	return 0, fmt.Errorf("kiss: unknown scheduler %q", s)
}

// MarshalJSON renders the serializable Config knobs in the stable wire
// format. The runtime-only fields (Context, Progress, ProgressStates,
// ProgressEvery) are dropped; schedulers render by name.
func (c *Config) MarshalJSON() ([]byte, error) {
	name, ok := schedulerNames[c.Scheduler]
	if !ok {
		return nil, fmt.Errorf("kiss: cannot marshal unknown scheduler %d", int(c.Scheduler))
	}
	w := wireConfig{
		MaxTS:               c.MaxTS,
		DisableAliasElision: c.DisableAliasElision,
		Scheduler:           name,
		Summaries:           c.Summaries,
		MaxStates:           c.MaxStates,
		MaxSteps:            c.MaxSteps,
		MaxDepth:            c.MaxDepth,
		BFS:                 c.BFS,
		DisableMacroSteps:   c.DisableMacroSteps,
		DisableFoldMemo:     c.DisableFoldMemo,
		MemoMB:              c.MemoMB,
		SearchWorkers:       c.SearchWorkers,
		NumShards:           c.NumShards,
		ContextBound:        c.ContextBound,
	}
	if c.RaceTarget != nil {
		w.RaceTarget = &wireRaceTarget{
			Global: c.RaceTarget.Global,
			Record: c.RaceTarget.Record,
			Field:  c.RaceTarget.Field,
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire format back into a Config. Unknown
// fields are rejected — a wire request naming a knob this build doesn't
// know about is a version skew the caller must hear about, not a silent
// no-op. An absent scheduler means the paper's nondeterministic default.
func (c *Config) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireConfig
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("kiss: decoding config: %w", err)
	}
	sched := SchedulerNondet
	if w.Scheduler != "" {
		var err error
		if sched, err = parseScheduler(w.Scheduler); err != nil {
			return err
		}
	}
	*c = Config{
		MaxTS:               w.MaxTS,
		DisableAliasElision: w.DisableAliasElision,
		Scheduler:           sched,
		Summaries:           w.Summaries,
		MaxStates:           w.MaxStates,
		MaxSteps:            w.MaxSteps,
		MaxDepth:            w.MaxDepth,
		BFS:                 w.BFS,
		DisableMacroSteps:   w.DisableMacroSteps,
		DisableFoldMemo:     w.DisableFoldMemo,
		MemoMB:              w.MemoMB,
		SearchWorkers:       w.SearchWorkers,
		NumShards:           w.NumShards,
		ContextBound:        w.ContextBound,
	}
	if w.RaceTarget != nil {
		c.RaceTarget = &RaceTarget{
			Global: w.RaceTarget.Global,
			Record: w.RaceTarget.Record,
			Field:  w.RaceTarget.Field,
		}
	}
	return nil
}

// Normalized returns a copy of the Config reduced to the knobs that
// determine a Check result. Two configs with equal Normalized forms are
// guaranteed to produce identical Check outcomes on the same program, so
// the normalized form is what a result cache may key on. Dropped fields:
//
//   - Context, Progress, ProgressStates, ProgressEvery: runtime plumbing,
//     invisible to the verdict.
//   - SearchWorkers, NumShards: the parallel search is bit-identical at
//     every worker/shard count (the PR 3 invariant, property-tested in
//     internal/seqcheck and internal/concheck), so they only move wall
//     clock and the scheduling-dependent Stats.Parallel diagnostics.
//   - ContextBound: consulted only by Explore, ignored by Check.
//   - DisableFoldMemo, MemoMB, AuditFoldMemo: fold memoization replays
//     folds bit-identically (the memo invariant, property-tested against
//     memo-off runs), so the knobs move only wall time and the
//     scheduling-dependent Stats.Memo diagnostics.
//
// Everything else — the transformation knobs, the engine selection, the
// budgets, BFS, and macro-step compression (which changes the stored-state
// counters a Result reports) — is kept.
func (c *Config) Normalized() Config {
	n := *c
	n.Context = nil
	n.Progress = nil
	n.ProgressStates = 0
	n.ProgressEvery = 0
	n.SearchWorkers = 0
	n.NumShards = 0
	n.ContextBound = 0
	n.DisableFoldMemo = false
	n.MemoMB = 0
	n.AuditFoldMemo = false
	if n.RaceTarget != nil {
		// Detach the pointer so the normalized copy shares no storage.
		t := *n.RaceTarget
		n.RaceTarget = &t
	}
	return n
}

// CanonicalJSON renders the normalized config as the canonical byte
// sequence used in cache keys: fixed field order, fixed names, runtime
// and result-invariant knobs stripped. Configs that must produce the
// same Check result render to the same bytes.
func (c *Config) CanonicalJSON() ([]byte, error) {
	n := c.Normalized()
	return n.MarshalJSON()
}
