GO ?= go

.PHONY: build test vet race verify bench benchall

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the packages that own concurrency:
# the eval worker pool (and, transitively, the shared parsed-harness and
# model caches it hands to concurrent field checks), the parallel
# state-space searches in seqcheck/concheck with their sharded visited
# set, and the copy-on-write state representation their workers share.
# -short skips the full-corpus reproductions, which the plain `test`
# target already runs.
race:
	$(GO) test -race -short ./internal/eval/... ./internal/seqcheck/... ./internal/concheck/... ./internal/sem/... ./internal/visited/...

# verify is the tier-1 gate: build, vet, full tests, and the race check.
verify: build vet test race

# bench runs the PR 3 performance suite: the clone/successor
# microbenchmarks (the copy-on-write win) and a kissbench corpus pass
# with per-field JSON metrics written to BENCH_PR3.json.
bench:
	$(GO) test -bench 'BenchmarkClone|BenchmarkDeepClone|BenchmarkSuccessors' -benchmem -run '^$$' ./internal/sem/
	$(GO) run ./cmd/kissbench -table1 -json > BENCH_PR3.json
	@echo "wrote BENCH_PR3.json"

# benchall runs every benchmark in the repository.
benchall:
	$(GO) test -bench=. -benchmem ./...
