GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the packages that own concurrency:
# the eval worker pool (and, transitively, the shared parsed-harness and
# model caches it hands to concurrent field checks). -short skips the
# full-corpus reproductions, which the plain `test` target already runs.
race:
	$(GO) test -race -short ./internal/eval/...

# verify is the tier-1 gate: build, vet, full tests, and the race check.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...
