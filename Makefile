GO ?= go

# VERSION is stamped into the kiss/kissbench/kissd binaries (reported by
# -version and kissd's /healthz); plain `go build` yields "dev".
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X main.version=$(VERSION)"

.PHONY: build test vet race verify bench bench-smoke serve-smoke cluster-smoke benchall

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the packages that own concurrency:
# the eval worker pool (and, transitively, the shared parsed-harness and
# model caches it hands to concurrent field checks), the parallel
# state-space searches in seqcheck/concheck with their sharded visited
# set — including the macro-step engines, their sync.Pool buffer reuse,
# the sharded fold-memo replay cache they share, and the call-summary
# tables layered on it, exercised by the TestMacro*, TestFoldMemo*, and
# TestCallSummaries* differential tests in those packages —
# and the copy-on-write state representation their workers
# share, plus the kissd service layer (queue admission vs. drain, the
# worker scheduler, and the result cache) and the kiss-coord cluster
# coordinator (ring swaps, health transitions, batch fan-out, tenant
# buckets). -short skips the full-corpus reproductions and the chaos
# test's state-space passes, which the plain `test` target already runs.
race:
	$(GO) test -race -short ./internal/eval/... ./internal/seqcheck/... ./internal/concheck/... ./internal/sem/... ./internal/visited/... ./internal/frontier/... ./internal/coord/...
	$(GO) test -race ./internal/service/...

# verify is the tier-1 gate: build, vet, full tests, and the race check.
verify: build vet test race

# bench runs the PR 3 performance suite: the clone/successor
# microbenchmarks (the copy-on-write win) and a kissbench corpus pass
# with per-field JSON metrics written to BENCH_PR3.json. The PR 4 suite
# follows: the macro-step compression ablation over the full corpus —
# compression on vs off, verdict/position identity verified at
# search-workers 0/1/8, stored/stepped states, throughput, and
# allocations per arm — written to BENCH_PR4.json (the run exits
# non-zero if the arms disagree or stored states fail to compress).
# The PR 6 suite reruns the ablation and writes BENCH_PR6.json with the
# fold-memo hit ratio and steps-saved totals; it exits non-zero unless
# compression holds 3.0x and the memo hit ratio reaches 10%. The PR 8
# suite runs the full four-arm ablation — per-statement, macro,
# macro+memo, macro+memo+sum — with verdict identity at search-workers
# 0/1/8 and the strict speedup gate: the summary arm's traversal rate
# (stepped states/sec) must strictly exceed the memo-off macro arm's.
# BENCH_PR8.json is the record the "memo arm pays for itself" claim
# stands on. The PR 9 suite is the memory-budget study: the corpus's
# hard fields (exact visited set, classic state budget — the runs that
# trip MaxStates) rerun with the compact visited filter and the
# disk-spilling frontier at a 10x state ceiling under 1 MiB of search
# memory; BENCH_PR9.json records per-field verdicts, peak search RAM,
# spilled bytes, and filter occupancy, and the run exits non-zero unless
# at least 3 tripped fields improve. (The small budget is deliberate:
# it forces real spill traffic on any machine, making the artifact a
# record of the spill path, not of having enough RAM.)
#
# Every JSON artifact is written by kissbench's -o flag: staged in
# memory, written to a temp file, renamed into place, and refused when
# empty — a failed run can never leave a truncated artifact behind
# (the shell-redirect form this replaces truncated the target before
# the run began, which is how an empty BENCH_PR8.json once shipped).
# The PR 8 line runs last: its strict speedup gate is the one most
# sensitive to the host's scheduler, and a rate regression there should
# fail the target without blocking the other artifacts from being
# (re)generated — with -o, even the failing run's own artifact lands.
bench:
	$(GO) test -bench 'BenchmarkClone|BenchmarkDeepClone|BenchmarkSuccessors' -benchmem -run '^$$' ./internal/sem/
	$(GO) run ./cmd/kissbench -table1 -json -o BENCH_PR3.json
	$(GO) run ./cmd/kissbench -macrobench -min-ratio 3.0 -json -o BENCH_PR4.json
	$(GO) run ./cmd/kissbench -macrobench -min-ratio 3.0 -min-hit-ratio 0.10 -json -o BENCH_PR6.json
	$(GO) run ./cmd/kissbench -membench -drivers fakemodem,kbdclass,mouclass,mouser -max-states 4000 -mem-budget-mb 1 -min-improved 3 -o BENCH_PR9.json
	$(GO) run ./cmd/kissbench -macrobench -min-ratio 3.0 -min-hit-ratio 0.10 -require-memo-speedup -json -o BENCH_PR8.json
	$(GO) run ./cmd/kissbench -seqbench -min-cb-only 1 -o BENCH_PR10.json

# bench-smoke is the CI-sized slice of the ablation suite: four arms on
# four small drivers with the same identity verification, asserting the
# stored-state compression ratio exceeds 1, a nonzero fold-memo hit
# ratio, and a summary-arm traversal rate within 10% of the macro+memo
# arm's (the slice is too small for the strict full-corpus gate; the
# slack absorbs sub-second rate noise while still catching a summary
# layer that grossly costs more than it saves). It then runs a one-
# driver slice of the memory-budget study through -o and asserts the
# artifact is non-empty and carries the expected document shape — the
# regression gate for the truncated-artifact bug. Runs in seconds.
bench-smoke:
	$(GO) run ./cmd/kissbench -macrobench -drivers kbfiltr,moufiltr,diskperf,1394diag -min-ratio 1.0 -min-hit-ratio 0.01 -require-summary-parity
	@rm -f .bench-smoke.json
	$(GO) run ./cmd/kissbench -membench -drivers fakemodem -max-states 4000 -mem-budget-mb 1 -min-improved 1 -o .bench-smoke.json
	@test -s .bench-smoke.json || { echo "bench-smoke: empty bench artifact"; rm -f .bench-smoke.json; exit 1; }
	@grep -q '"rows"' .bench-smoke.json && grep -q '"spilled_bytes"' .bench-smoke.json || { echo "bench-smoke: malformed bench artifact"; rm -f .bench-smoke.json; exit 1; }
	@rm -f .bench-smoke.json
	@echo "bench-smoke: membench artifact non-empty and well-formed"
	@rm -f .bench-smoke.json
	$(GO) run ./cmd/kissbench -seqbench -seq-programs -1 -max-states 50000 -min-cb-only 1 -o .bench-smoke.json
	@test -s .bench-smoke.json || { echo "bench-smoke: empty seqbench artifact"; rm -f .bench-smoke.json; exit 1; }
	@grep -q '"cb_only": true' .bench-smoke.json && grep -q '"sound": true' .bench-smoke.json || { echo "bench-smoke: seqbench found no CB-only bug"; rm -f .bench-smoke.json; exit 1; }
	@rm -f .bench-smoke.json
	@echo "bench-smoke: seqbench artifact non-empty; CB finds scenario bugs KISS misses"

# serve-smoke is the kissd acceptance loop: start the daemon on a
# loopback port, run a two-driver corpus slice through it twice, require
# verdicts and search counters identical to local checking and >=90% of
# the warm pass served from the content-addressed cache, then drain
# cleanly. Runs in about a second.
serve-smoke:
	$(GO) run $(LDFLAGS) ./cmd/kissd -smoke

# cluster-smoke is the kiss-coord acceptance loop: two in-process kissd
# backends behind a coordinator on loopback ports, a two-driver corpus
# slice submitted as one /v1/batch twice plus one per-field /v1/check
# pass, verdicts and counters required identical to local checking,
# >=90% of the warm lookups required to hit the shard caches, and both
# backends required to have computed part of the corpus.
cluster-smoke:
	$(GO) run $(LDFLAGS) ./cmd/kiss-coord -smoke

# benchall runs every benchmark in the repository.
benchall:
	$(GO) test -bench=. -benchmem ./...
