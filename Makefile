GO ?= go

# VERSION is stamped into the kiss/kissbench/kissd binaries (reported by
# -version and kissd's /healthz); plain `go build` yields "dev".
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X main.version=$(VERSION)"

.PHONY: build test vet race verify bench bench-smoke serve-smoke cluster-smoke benchall

build:
	$(GO) build $(LDFLAGS) ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the race detector over the packages that own concurrency:
# the eval worker pool (and, transitively, the shared parsed-harness and
# model caches it hands to concurrent field checks), the parallel
# state-space searches in seqcheck/concheck with their sharded visited
# set — including the macro-step engines, their sync.Pool buffer reuse,
# the sharded fold-memo replay cache they share, and the call-summary
# tables layered on it, exercised by the TestMacro*, TestFoldMemo*, and
# TestCallSummaries* differential tests in those packages —
# and the copy-on-write state representation their workers
# share, plus the kissd service layer (queue admission vs. drain, the
# worker scheduler, and the result cache) and the kiss-coord cluster
# coordinator (ring swaps, health transitions, batch fan-out, tenant
# buckets). -short skips the full-corpus reproductions and the chaos
# test's state-space passes, which the plain `test` target already runs.
race:
	$(GO) test -race -short ./internal/eval/... ./internal/seqcheck/... ./internal/concheck/... ./internal/sem/... ./internal/visited/... ./internal/coord/...
	$(GO) test -race ./internal/service/...

# verify is the tier-1 gate: build, vet, full tests, and the race check.
verify: build vet test race

# bench runs the PR 3 performance suite: the clone/successor
# microbenchmarks (the copy-on-write win) and a kissbench corpus pass
# with per-field JSON metrics written to BENCH_PR3.json. The PR 4 suite
# follows: the macro-step compression ablation over the full corpus —
# compression on vs off, verdict/position identity verified at
# search-workers 0/1/8, stored/stepped states, throughput, and
# allocations per arm — written to BENCH_PR4.json (the run exits
# non-zero if the arms disagree or stored states fail to compress).
# The PR 6 suite reruns the ablation and writes BENCH_PR6.json with the
# fold-memo hit ratio and steps-saved totals; it exits non-zero unless
# compression holds 3.0x and the memo hit ratio reaches 10%. The PR 8
# suite runs the full four-arm ablation — per-statement, macro,
# macro+memo, macro+memo+sum — with verdict identity at search-workers
# 0/1/8 and the strict speedup gate: the summary arm's traversal rate
# (stepped states/sec) must strictly exceed the memo-off macro arm's.
# BENCH_PR8.json is the record the "memo arm pays for itself" claim
# stands on.
bench:
	$(GO) test -bench 'BenchmarkClone|BenchmarkDeepClone|BenchmarkSuccessors' -benchmem -run '^$$' ./internal/sem/
	$(GO) run ./cmd/kissbench -table1 -json > BENCH_PR3.json
	@echo "wrote BENCH_PR3.json"
	$(GO) run ./cmd/kissbench -macrobench -min-ratio 3.0 -json > BENCH_PR4.json
	@echo "wrote BENCH_PR4.json"
	$(GO) run ./cmd/kissbench -macrobench -min-ratio 3.0 -min-hit-ratio 0.10 -json > BENCH_PR6.json
	@echo "wrote BENCH_PR6.json"
	$(GO) run ./cmd/kissbench -macrobench -min-ratio 3.0 -min-hit-ratio 0.10 -require-memo-speedup -json > BENCH_PR8.json
	@echo "wrote BENCH_PR8.json"

# bench-smoke is the CI-sized slice of the ablation suite: four arms on
# four small drivers with the same identity verification, asserting the
# stored-state compression ratio exceeds 1, a nonzero fold-memo hit
# ratio, and a summary-arm traversal rate within 10% of the macro+memo
# arm's (the slice is too small for the strict full-corpus gate; the
# slack absorbs sub-second rate noise while still catching a summary
# layer that grossly costs more than it saves). Runs in seconds.
bench-smoke:
	$(GO) run ./cmd/kissbench -macrobench -drivers kbfiltr,moufiltr,diskperf,1394diag -min-ratio 1.0 -min-hit-ratio 0.01 -require-summary-parity

# serve-smoke is the kissd acceptance loop: start the daemon on a
# loopback port, run a two-driver corpus slice through it twice, require
# verdicts and search counters identical to local checking and >=90% of
# the warm pass served from the content-addressed cache, then drain
# cleanly. Runs in about a second.
serve-smoke:
	$(GO) run $(LDFLAGS) ./cmd/kissd -smoke

# cluster-smoke is the kiss-coord acceptance loop: two in-process kissd
# backends behind a coordinator on loopback ports, a two-driver corpus
# slice submitted as one /v1/batch twice plus one per-field /v1/check
# pass, verdicts and counters required identical to local checking,
# >=90% of the warm lookups required to hit the shard caches, and both
# backends required to have computed part of the corpus.
cluster-smoke:
	$(GO) run $(LDFLAGS) ./cmd/kiss-coord -smoke

# benchall runs every benchmark in the repository.
benchall:
	$(GO) test -bench=. -benchmem ./...
