package kiss_test

import (
	"testing"

	kiss "repro"
	"repro/internal/randprog"
)

// traceText renders a result's reconstructed trace for byte comparison
// ("" when the verdict carries no trace).
func traceText(r *kiss.Result) string {
	if r.Trace == nil {
		return ""
	}
	return r.Trace.Format()
}

// TestFoldMemoDifferentialOnRandomPrograms: fold memoization is a pure
// wall-time optimization — on random concurrent programs, checking with
// the memo on must produce bit-identical results to the memo-off search
// at every worker count: same verdict, failure position and message,
// stored-state and step counters, and the same reconstructed trace.
func TestFoldMemoDifferentialOnRandomPrograms(t *testing.T) {
	var totalHits, totalErrors int64
	for seed := int64(0); seed < 30; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		parse := func() *kiss.Program {
			p, err := kiss.Parse(src)
			if err != nil {
				t.Fatalf("seed %d: generated program does not parse: %v", seed, err)
			}
			return p
		}

		for _, w := range []int{0, 1, 8} {
			// The reference runs at the same worker count: the sequential
			// DFS and the parallel BFS legitimately store different state
			// counts; the memo must be invisible within each engine.
			ref, err := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithSearchWorkers(w),
				kiss.WithFoldMemo(false)).Check(parse())
			if err != nil {
				t.Fatalf("seed %d workers %d: memo-off reference: %v", seed, w, err)
			}
			if w == 0 && ref.Verdict == kiss.Error {
				totalErrors++
			}
			refTrace := traceText(ref)
			cfg := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithSearchWorkers(w), kiss.WithFoldMemo(true))
			res, err := cfg.Check(parse())
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if res.Verdict != ref.Verdict || res.Pos != ref.Pos || res.Message != ref.Message {
				t.Errorf("seed %d workers %d: memo-on verdict {%v %q %q}, memo-off {%v %q %q}\n%s",
					seed, w, res.Verdict, res.Pos, res.Message, ref.Verdict, ref.Pos, ref.Message, src)
			}
			if res.States != ref.States || res.Steps != ref.Steps ||
				res.Stats.StatesStepped != ref.Stats.StatesStepped {
				t.Errorf("seed %d workers %d: memo-on counters states=%d steps=%d stepped=%d, memo-off states=%d steps=%d stepped=%d",
					seed, w, res.States, res.Steps, res.Stats.StatesStepped,
					ref.States, ref.Steps, ref.Stats.StatesStepped)
			}
			if got := traceText(res); got != refTrace {
				t.Errorf("seed %d workers %d: traces diverge\nmemo-on:\n%s\nmemo-off:\n%s", seed, w, got, refTrace)
			}
			if m := res.Stats.Memo; m != nil {
				totalHits += m.Hits
			}
		}
	}
	if totalErrors == 0 {
		t.Error("no generated program produced an error; the identity was tested only on safe programs")
	}
	if totalHits == 0 {
		t.Error("the memo never hit across any seed; the differential property was tested vacuously")
	}
	t.Logf("compared %d error verdicts; %d memo hits exercised", totalErrors, totalHits)
}

// TestFoldMemoAuditCleanOnRandomPrograms: with audit mode on, every memo
// hit is re-executed and compared byte-for-byte; across random programs
// no replay may ever disagree with execution.
func TestFoldMemoAuditCleanOnRandomPrograms(t *testing.T) {
	var hits int64
	for seed := int64(100); seed < 120; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		prog, err := kiss.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := kiss.NewConfig(kiss.WithMaxTS(2))
		cfg.AuditFoldMemo = true
		res, err := cfg.Check(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m := res.Stats.Memo; m != nil {
			hits += m.Hits
			if m.AuditMismatches != 0 {
				t.Errorf("seed %d: %d audited replays disagreed with execution\n%s",
					seed, m.AuditMismatches, src)
			}
		}
	}
	if hits == 0 {
		t.Error("audit mode never verified a hit; the property was tested vacuously")
	}
	t.Logf("audited %d memo hits, all byte-identical to execution", hits)
}
