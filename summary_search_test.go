package kiss_test

import (
	"testing"

	kiss "repro"
	"repro/internal/randprog"
)

// Under the Figure 4/5 translation every statement of user code is
// preceded by choice{skip [] RAISE}, so no translated user call ever
// runs a whole body deterministically inside one macro step. The calls
// the summary table captures are exactly the generated instrumentation
// — check_r/check_w in race-checking mode, whose straight-line bodies
// carry no scheduling or raise nondeterminism and dominate the step
// count of a race check. The property tests below therefore exercise
// the table through race-mode checks; assertion-mode coverage (where
// the table stays quiescent) rides along in the recursion cross-check.

// TestCallSummariesDifferentialOnRandomPrograms: call-grained procedure
// summaries are a pure wall-time optimization — race-checking random
// concurrent programs with summaries on (fold memo off, to isolate the
// layer) must produce bit-identical results to the summaries-off search
// at every worker count: same verdict, failure position and message,
// stored-state and step counters, and the same reconstructed trace.
func TestCallSummariesDifferentialOnRandomPrograms(t *testing.T) {
	target := kiss.RaceTarget{Global: "g0"}
	var totalHits, totalErrors int64
	for seed := int64(0); seed < 30; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		parse := func() *kiss.Program {
			p, err := kiss.Parse(src)
			if err != nil {
				t.Fatalf("seed %d: generated program does not parse: %v", seed, err)
			}
			return p
		}

		for _, w := range []int{0, 1, 8} {
			// The reference runs at the same worker count: the sequential
			// DFS and the parallel BFS legitimately store different state
			// counts; the summary layer must be invisible within each
			// engine.
			ref, err := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithSearchWorkers(w),
				kiss.WithRaceTarget(target),
				kiss.WithFoldMemo(false), kiss.WithCallSummaries(false)).Check(parse())
			if err != nil {
				t.Fatalf("seed %d workers %d: summaries-off reference: %v", seed, w, err)
			}
			if w == 0 && ref.Verdict == kiss.Error {
				totalErrors++
			}
			refTrace := traceText(ref)
			cfg := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithSearchWorkers(w),
				kiss.WithRaceTarget(target),
				kiss.WithFoldMemo(false), kiss.WithCallSummaries(true))
			res, err := cfg.Check(parse())
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if res.Verdict != ref.Verdict || res.Pos != ref.Pos || res.Message != ref.Message {
				t.Errorf("seed %d workers %d: sum-on verdict {%v %q %q}, sum-off {%v %q %q}\n%s",
					seed, w, res.Verdict, res.Pos, res.Message, ref.Verdict, ref.Pos, ref.Message, src)
			}
			if res.States != ref.States || res.Steps != ref.Steps ||
				res.Stats.StatesStepped != ref.Stats.StatesStepped {
				t.Errorf("seed %d workers %d: sum-on counters states=%d steps=%d stepped=%d, sum-off states=%d steps=%d stepped=%d",
					seed, w, res.States, res.Steps, res.Stats.StatesStepped,
					ref.States, ref.Steps, ref.Stats.StatesStepped)
			}
			if got := traceText(res); got != refTrace {
				t.Errorf("seed %d workers %d: traces diverge\nsum-on:\n%s\nsum-off:\n%s", seed, w, got, refTrace)
			}
			if sm := res.Stats.Summary; sm != nil {
				totalHits += sm.Hits
			}
		}
	}
	if totalErrors == 0 {
		t.Error("no generated program produced a race; the identity was tested only on safe programs")
	}
	if totalHits == 0 {
		t.Error("the summary table never hit across any seed; the differential property was tested vacuously")
	}
	t.Logf("compared %d race verdicts; %d summary hits exercised", totalErrors, totalHits)
}

// TestCallSummariesMemoInterplayOnRandomPrograms: the summary layer and
// the fold memo share the recorder machinery; with both on (the default
// configuration) plus audit mode, race-mode results must stay
// bit-identical to the both-off search at every worker count and no
// audited replay — memo or summary — may ever disagree with execution.
func TestCallSummariesMemoInterplayOnRandomPrograms(t *testing.T) {
	target := kiss.RaceTarget{Global: "g0"}
	var sumHits, memoHits int64
	for seed := int64(0); seed < 30; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		parse := func() *kiss.Program {
			p, err := kiss.Parse(src)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return p
		}
		for _, w := range []int{0, 1, 8} {
			ref, err := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithSearchWorkers(w),
				kiss.WithRaceTarget(target),
				kiss.WithFoldMemo(false), kiss.WithCallSummaries(false)).Check(parse())
			if err != nil {
				t.Fatalf("seed %d workers %d: both-off reference: %v", seed, w, err)
			}
			cfg := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithSearchWorkers(w),
				kiss.WithRaceTarget(target),
				kiss.WithFoldMemo(true), kiss.WithCallSummaries(true))
			cfg.AuditFoldMemo = true
			res, err := cfg.Check(parse())
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if sm := res.Stats.Summary; sm != nil {
				sumHits += sm.Hits
				if sm.AuditMismatches != 0 {
					t.Errorf("seed %d workers %d: %d summary audit mismatches\n%s", seed, w, sm.AuditMismatches, src)
				}
			}
			if m := res.Stats.Memo; m != nil {
				memoHits += m.Hits
				if m.AuditMismatches != 0 {
					t.Errorf("seed %d workers %d: %d memo audit mismatches\n%s", seed, w, m.AuditMismatches, src)
				}
			}
			if res.Verdict != ref.Verdict || res.Pos != ref.Pos || res.Message != ref.Message ||
				res.States != ref.States || res.Steps != ref.Steps ||
				res.Stats.StatesStepped != ref.Stats.StatesStepped {
				t.Errorf("seed %d workers %d: both-on {%v %q states=%d steps=%d stepped=%d}, both-off {%v %q states=%d steps=%d stepped=%d}",
					seed, w, res.Verdict, res.Pos, res.States, res.Steps, res.Stats.StatesStepped,
					ref.Verdict, ref.Pos, ref.States, ref.Steps, ref.Stats.StatesStepped)
			}
			if got, want := traceText(res), traceText(ref); got != want {
				t.Errorf("seed %d workers %d: traces diverge\nboth-on:\n%s\nboth-off:\n%s", seed, w, got, want)
			}
		}
	}
	if sumHits == 0 || memoHits == 0 {
		t.Errorf("interplay tested vacuously: %d summary hits, %d memo hits", sumHits, memoHits)
	}
	t.Logf("interplay exercised %d summary hits and %d memo hits, all audit-clean", sumHits, memoHits)
}

// recursiveSrc is a bounded recursion racing against an async sibling:
// work() recurses three deep over the global n while helper() may run at
// any of the translation's scheduling points.
const recursiveSrc = `
var n;
var done;
func work() {
  if (n > 0) { n = n - 1; work(); } else { skip; }
}
func helper() {
  done = 1;
}
func main() {
  n = 3;
  done = 0;
  async helper();
  work();
  assert(n == 0);
}
`

// TestCallSummariesRecursionCrossCheck runs the bounded recursive
// program three ways in assertion mode — the explicit engine with call
// summaries on (audited), the explicit engine with everything off, and
// the boolcheck summary engine (the independent Bebop/RHS-style
// tabulation selected by Config.Summaries, which owns recursion through
// its own procedure summaries) — and requires all three to agree with
// identical explicit-search counters. boolcheck cannot check the
// race-instrumented program (check_r/check_w take pointer arguments),
// so the summary table's handling of recursion is then exercised in
// race mode on the same program: the check calls inside the recursive
// body must record and replay across interleavings, audit-clean, with
// the explicit race searches agreeing bit-for-bit.
func TestCallSummariesRecursionCrossCheck(t *testing.T) {
	parse := func() *kiss.Program {
		p, err := kiss.Parse(recursiveSrc)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Assertion mode: three engines, one verdict.
	ref, err := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithFoldMemo(false),
		kiss.WithCallSummaries(false)).Check(parse())
	if err != nil {
		t.Fatal(err)
	}
	cfg := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithFoldMemo(false), kiss.WithCallSummaries(true))
	cfg.AuditFoldMemo = true
	res, err := cfg.Check(parse())
	if err != nil {
		t.Fatal(err)
	}
	bool2, err := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithSummaries()).Check(parse())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Verdict != kiss.Safe || res.Verdict != ref.Verdict || bool2.Verdict != ref.Verdict {
		t.Fatalf("engines disagree on bounded recursion: explicit=%v explicit+summaries=%v boolcheck=%v",
			ref.Verdict, res.Verdict, bool2.Verdict)
	}
	if res.States != ref.States || res.Steps != ref.Steps {
		t.Errorf("summaries changed the explicit search: states %d vs %d, steps %d vs %d",
			res.States, ref.States, res.Steps, ref.Steps)
	}
	if sm := res.Stats.Summary; sm != nil && sm.AuditMismatches != 0 {
		t.Errorf("%d audited summary replays disagreed with execution in assertion mode", sm.AuditMismatches)
	}

	// Race mode on n: the recursive body's check calls must summarize.
	target := kiss.RaceTarget{Global: "n"}
	rref, err := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithRaceTarget(target),
		kiss.WithFoldMemo(false), kiss.WithCallSummaries(false)).Check(parse())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := kiss.NewConfig(kiss.WithMaxTS(2), kiss.WithRaceTarget(target),
		kiss.WithFoldMemo(false), kiss.WithCallSummaries(true))
	rcfg.AuditFoldMemo = true
	rres, err := rcfg.Check(parse())
	if err != nil {
		t.Fatal(err)
	}
	if rres.Verdict != rref.Verdict || rres.Pos != rref.Pos || rres.Message != rref.Message ||
		rres.States != rref.States || rres.Steps != rref.Steps {
		t.Errorf("race-mode divergence: sum-on {%v %q states=%d steps=%d}, sum-off {%v %q states=%d steps=%d}",
			rres.Verdict, rres.Message, rres.States, rres.Steps,
			rref.Verdict, rref.Message, rref.States, rref.Steps)
	}
	sm := rres.Stats.Summary
	if sm == nil || sm.Stores == 0 {
		t.Fatalf("no summary entries recorded inside the recursive calls: %+v", sm)
	}
	if sm.Hits == 0 {
		t.Error("no interleaving ever replayed a check from the table")
	}
	if sm.AuditMismatches != 0 {
		t.Errorf("%d audited summary replays disagreed with execution", sm.AuditMismatches)
	}
	t.Logf("recursion cross-check: assertion mode 3-way agree (%v); race mode %d stores, %d hits, %d steps saved",
		ref.Verdict, sm.Stores, sm.Hits, sm.StepsSaved)
}
