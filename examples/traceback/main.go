// Traceback: demonstrate the two halves of the paper's completeness story
// (Section 1): the error trace of the transformed *sequential* program is
// mapped back to an interleaved execution of the original *concurrent*
// program, and the reported error is certified real by replaying the
// original program under full interleaving exploration — "our technique
// never reports false errors".
//
// Run:
//
//	go run ./examples/traceback
package main

import (
	"fmt"
	"log"

	kiss "repro"
)

// A producer/consumer handshake with a publication bug: the producer sets
// the ready flag before writing the data, so a consumer woken by the flag
// can observe the unwritten payload even though the payload accesses
// themselves are lock-protected.
const src = `
record CHANNEL {
  lock;
  data;
  ready;
}

func producer(ch) {
  ch->ready = 1;     // bug: published before the data is written
  atomic { assume(ch->lock == 0); ch->lock = 1; }
  ch->data = 7;
  atomic { ch->lock = 0; }
}

func consumer(ch) {
  assume(ch->ready == 1);
  atomic { assume(ch->lock == 0); ch->lock = 1; }
  assert(ch->data == 7);
  atomic { ch->lock = 0; }
}

func main() {
  var ch;
  ch = new CHANNEL;
  async producer(ch);
  consumer(ch);
}
`

func main() {
	prog, err := kiss.Parse(src)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	res, err := kiss.Check(prog, kiss.WithMaxTS(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KISS verdict: %v\n", res.Verdict)
	if res.Verdict != kiss.Error {
		log.Fatal("expected an assertion violation")
	}
	fmt.Printf("failure at %s: %s\n", res.Pos, res.Message)

	fmt.Println("\nraw sequential counterexample (transformed program):")
	for i, ev := range res.SeqEvents {
		if i >= 12 && i < len(res.SeqEvents)-12 {
			if i == 12 {
				fmt.Printf("  ... %d more events ...\n", len(res.SeqEvents)-24)
			}
			continue
		}
		fmt.Printf("  %s\n", ev)
	}

	fmt.Println("\nreconstructed concurrent trace (original program):")
	fmt.Print(res.Trace.Format())

	// Certification, two ways. First the coarse check: the original
	// concurrent program has *some* failing execution.
	ground, err := kiss.Explore(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nground truth (full interleaving exploration): %v\n", ground.Verdict)

	// Then the exact check: replay the original program along the
	// reconstructed schedule and reach the failure at precisely those
	// context switches.
	certified, err := kiss.NewConfig().Certify(prog, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guided replay of schedule %v: certified=%v — the reconstructed interleaving is real\n",
		res.Trace.Schedule(), certified)
}
