// Bluetooth: the paper's running example (Figure 2, Sections 2.1-2.3 and
// 6), end to end.
//
//  1. Race detection on the stoppingFlag field of the device extension
//     succeeds with ts bound 0 (Section 2.2).
//  2. The reference-counting assertion violation cannot be simulated at ts
//     bound 0 but is found at ts bound 1 (Section 2.3), with the
//     reconstructed concurrent error trace.
//  3. After the driver quality team's fix to BCSP_IoIncrement, KISS
//     reports no errors (Section 6).
//
// Run:
//
//	go run ./examples/bluetooth
package main

import (
	"fmt"
	"log"

	kiss "repro"
	"repro/internal/drivers"
)

func main() {
	buggy, err := kiss.Parse(drivers.BluetoothSource)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	fmt.Println("=== 1. Race on DEVICE_EXTENSION.stoppingFlag, ts=0 (Section 2.2) ===")
	res, err := kiss.Check(buggy,
		kiss.WithRaceTarget(kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: "stoppingFlag"}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %v (states=%d)\n", res.Verdict, res.States)
	if res.Trace != nil {
		fmt.Print(res.Trace.Format())
	}

	fmt.Println("\n=== 2. Assertion checking: the ts knob (Section 2.3) ===")
	for _, ts := range []int{0, 1} {
		res, err := kiss.Check(buggy, kiss.WithMaxTS(ts))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ts=%d: %v (states=%d)\n", ts, res.Verdict, res.States)
		if res.Verdict == kiss.Error {
			fmt.Printf("assertion violated at %s: %s\n", res.Pos, res.Message)
			fmt.Print(res.Trace.Format())
			fmt.Println()
			fmt.Print(res.Trace.FormatColumns())
		}
	}

	fmt.Println("\n=== 3. The fixed driver (Section 6) ===")
	fixed, err := kiss.Parse(drivers.BluetoothFixedSource)
	if err != nil {
		log.Fatalf("parse fixed: %v", err)
	}
	for _, ts := range []int{0, 1, 2} {
		res, err := kiss.Check(fixed, kiss.WithMaxTS(ts))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fixed, ts=%d: %v (states=%d)\n", ts, res.Verdict, res.States)
	}
}
