// Quickstart: check a small concurrent program for an assertion violation
// and a race condition through the public API.
//
// The program forks a worker that publishes a result and sets a done flag,
// while main spins until done and then asserts the result is ready — but
// the flag is set before the result is written, so an interleaving exists
// in which the assertion fails. KISS finds it without ever enumerating
// interleavings: the transformed *sequential* program simulates enough of
// them.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	kiss "repro"
)

const src = `
var result;
var done;

func worker() {
  done = 1;      // bug: the flag is published before the result
  result = 42;
}

func main() {
  result = 0;
  done = 0;
  async worker();
  assume(done == 1);   // wait for the worker
  assert(result == 42);
}
`

func main() {
	prog, err := kiss.Parse(src)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}

	// Assertion checking (Figure 4 transformation). A ts bound of 1 lets
	// the forked worker be deferred and interleaved with main.
	res, err := kiss.Check(prog, kiss.WithMaxTS(1))
	if err != nil {
		log.Fatalf("check: %v", err)
	}
	fmt.Printf("assertion check (ts=1): %v\n", res.Verdict)
	if res.Verdict == kiss.Error {
		fmt.Printf("violation at %s: %s\n\n", res.Pos, res.Message)
		fmt.Print(res.Trace.Format())
	}
	fmt.Printf("\nmetrics: %d states in %s (%.0f states/sec)\n",
		res.Stats.States, res.Stats.Phases.Check, res.Stats.StatesPerSec)

	// Race checking (Figure 5 transformation) on the shared global.
	res, err = kiss.Check(prog,
		kiss.WithRaceTarget(kiss.RaceTarget{Global: "result"}),
		kiss.WithMaxTS(1))
	if err != nil {
		log.Fatalf("race check: %v", err)
	}
	fmt.Printf("\nrace check on `result` (ts=1): %v\n", res.Verdict)
	if res.Verdict == kiss.Error {
		fmt.Printf("conflicting accesses: %s\n", res.Message)
	}

	// The baseline the paper improves on: explore interleavings directly.
	res, err = kiss.Explore(prog)
	if err != nil {
		log.Fatalf("explore: %v", err)
	}
	fmt.Printf("\nbaseline interleaving exploration agrees: %v (%d states)\n",
		res.Verdict, res.States)
}
