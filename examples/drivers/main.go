// Drivers: run the per-field race analysis of the Table 1 experiment on
// one driver of the synthetic Windows-driver corpus and show the effect of
// the refined harness (Table 2).
//
// The default driver is toaster/toastmon, whose DevicePnPState field
// carries the confirmed read/write race of Figure 6: DispatchPnp writes it
// holding a lock, DispatchPower reads it with no protection.
//
// Run:
//
//	go run ./examples/drivers [driver-name]
package main

import (
	"fmt"
	"log"
	"os"

	kiss "repro"
	"repro/internal/drivers"
	"repro/internal/eval"
)

func main() {
	name := "toaster/toastmon"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec := drivers.FindSpec(name)
	if spec == nil {
		log.Fatalf("unknown driver %q (see internal/drivers.Specs for the corpus)", name)
	}

	model := drivers.Generate(spec)
	fmt.Printf("driver %s: %d extension fields, generated model %d LOC (real driver: %.1f KLOC)\n\n",
		spec.Name, len(spec.Fields), model.LOC, spec.KLOC)

	sel := map[string]bool{name: true}
	results, err := eval.RunCorpus(eval.Options{Drivers: sel})
	if err != nil {
		log.Fatal(err)
	}
	dr := results[0]
	fmt.Printf("%-24s %-24s %-10s %8s\n", "Field", "Planted pattern", "Verdict", "States")
	for _, fr := range dr.Fields {
		fmt.Printf("%-24s %-24s %-10s %8d\n", fr.Field, fr.Pattern.String(), fr.Verdict, fr.States)
	}
	fmt.Printf("\nTable 1 row: fields=%d races=%d no-race=%d timeouts=%d (paper: %d/%d/%d/%d)\n",
		len(dr.Fields), dr.Races, dr.NoRace, dr.Timeouts,
		spec.PaperFields, spec.PaperRaces, spec.PaperNoRace, spec.Timeouts())

	// Rerun the raced fields under the refined harness (Table 2).
	raced := eval.RacedFields(results)
	if len(raced[name]) > 0 {
		refined, err := eval.RunCorpus(eval.Options{Drivers: sel, Refined: true, Only: raced})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("refined harness: races %d -> %d (paper Table 2: %d)\n",
			dr.Races, refined[0].Races, spec.PaperRacesRefined)
	}

	// Show a concrete error trace for the first racing field.
	for _, fr := range dr.Fields {
		if fr.Verdict != eval.Race {
			continue
		}
		src := model.HarnessProgram(fr.Field, false)
		prog, err := kiss.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		res, err := kiss.Check(prog,
			kiss.WithRaceTarget(kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: fr.Field}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nerror trace for the race on %s:\n", fr.Field)
		fmt.Print(res.Trace.Format())
		break
	}
}
