// Benign: the annotation proposed as future work in Section 6 of the
// paper. The fakemodem driver's OpenCount field has a deliberate
// unprotected read ("The read operation is atomic already; performing it
// while holding the protecting lock will not reduce the set of values
// that may be read. So the programmer chose to not pay for the overhead
// of locking."), which KISS reports as a race. Annotating the access as
// benign directs KISS not to instrument it, silencing exactly that
// warning while leaving every other access checked.
//
// Run:
//
//	go run ./examples/benign
package main

import (
	"fmt"
	"log"

	kiss "repro"
)

const plain = `
record EXT { lock; OpenCount; }

func DispatchCreate(e) {
  atomic { assume(e->lock == 0); e->lock = 1; }
  e->OpenCount = e->OpenCount + 1;
  atomic { e->lock = 0; }
}

func DispatchCleanup(e) {
  var v;
  v = e->OpenCount;       // deliberate unprotected read
  if (v == 0) { skip; }
}

func main() {
  var e;
  e = new EXT;
  async DispatchCreate(e);
  DispatchCleanup(e);
}
`

const annotated = `
record EXT { lock; OpenCount; }

func DispatchCreate(e) {
  atomic { assume(e->lock == 0); e->lock = 1; }
  e->OpenCount = e->OpenCount + 1;
  atomic { e->lock = 0; }
}

func DispatchCleanup(e) {
  var v;
  benign {
    v = e->OpenCount;     // annotated: do not instrument
  }
  if (v == 0) { skip; }
}

func main() {
  var e;
  e = new EXT;
  async DispatchCreate(e);
  DispatchCleanup(e);
}
`

func main() {
	target := kiss.RaceTarget{Record: "EXT", Field: "OpenCount"}

	check := func(label, src string) {
		prog, err := kiss.Parse(src)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		res, err := kiss.Check(prog, kiss.WithRaceTarget(target))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s -> %v", label, res.Verdict)
		if res.Verdict == kiss.Error {
			fmt.Printf("  (%s)", res.Message)
		}
		fmt.Println()
	}

	check("without annotation", plain)
	check("with benign { ... }", annotated)

	fmt.Println("\nThe annotated program is unchanged at execution level:")
	prog, err := kiss.Parse(annotated)
	if err != nil {
		log.Fatal(err)
	}
	ground, err := kiss.Explore(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full interleaving exploration: %v (%d states)\n", ground.Verdict, ground.States)
}
