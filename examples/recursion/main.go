// Recursion: the two sequential engines side by side.
//
// The paper's complexity claim (Section 4) rests on the decidability of
// sequential model checking for finite-data programs — which holds even
// with unbounded recursion, via procedure summaries (Sharir-Pnueli [37],
// Reps-Horwitz-Sagiv [34]; SLAM's Bebop engine). This example runs a
// concurrent program whose worker recurses to a nondeterministic depth:
//
//   - the summary-based engine (WithSummaries) terminates with
//     a verdict, because the number of (procedure, valuation) path edges
//     is finite even though the stack is unbounded;
//   - the explicit-state engine, which fingerprints whole configurations
//     (stack included), can only exhaust its budget.
//
// Run:
//
//	go run ./examples/recursion
package main

import (
	"fmt"
	"log"

	kiss "repro"
)

const src = `
var work;
var done;

// A worker that processes a nondeterministically deep task tree, then
// signals completion. The recursion depth is unbounded, but the shared
// state is finite.
func process() {
  work = work + 1;
  if (work > 3) { work = 1; }
  choice {
    { skip; }
  []
    { process(); }
  }
}

func worker() {
  process();
  done = 1;
}

func main() {
  work = 0;
  done = 0;
  async worker();
  assume(done == 1);
  assert(work >= 1);
  assert(work <= 3);
}
`

func main() {
	prog, err := kiss.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("summary-based engine (Bebop/RHS architecture):")
	sres, err := kiss.Check(prog, kiss.WithMaxTS(1), kiss.WithSummaries())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %v (%d path edges) — terminates despite unbounded recursion\n",
		sres.Verdict, sres.States)

	fmt.Println("\nexplicit-state engine (whole-configuration fingerprints):")
	eres, err := kiss.Check(prog, kiss.WithMaxTS(1), kiss.WithMaxStates(20000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %v (%d states) — every recursion depth is a distinct configuration\n",
		eres.Verdict, eres.States)
}
