package kiss_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	kiss "repro"
)

// TestConfigWireGolden pins the canonical wire rendering byte-for-byte.
// The kissd wire protocol and the content-addressed cache key both hang
// off this encoding: if this golden changes, every cached result keyed
// under the old bytes is invalidated and old clients speak a different
// dialect — so changing it must be a deliberate act, not a drive-by.
func TestConfigWireGolden(t *testing.T) {
	cfg := kiss.NewConfig(
		kiss.WithMaxTS(2),
		kiss.WithRaceTarget(kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: "stoppingFlag"}),
		kiss.WithMaxStates(40000),
		kiss.WithBFS(),
	)
	const golden = `{"v":1,"max_ts":2,"disable_alias_elision":false,"scheduler":"nondet",` +
		`"race_target":{"record":"DEVICE_EXTENSION","field":"stoppingFlag"},` +
		`"summaries":false,"max_states":40000,"max_steps":0,"max_depth":0,` +
		`"bfs":true,"disable_macro_steps":false,"disable_fold_memo":false,` +
		`"memo_mb":0,"disable_call_summaries":false,"summary_mb":0,` +
		`"search_workers":0,"num_shards":0,"context_bound":-1}`
	got, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Errorf("wire format drifted:\n got: %s\nwant: %s", got, golden)
	}
}

// TestConfigWireGoldenMemoryKnobs: the memory-budget knobs are omitempty
// tail fields — absent from the bytes when unset (so pre-existing cache
// keys survive their introduction), pinned here when set.
func TestConfigWireGoldenMemoryKnobs(t *testing.T) {
	cfg := kiss.NewConfig(
		kiss.WithVisitedMode(kiss.VisitedCompact),
		kiss.WithMemBudgetMB(256),
	)
	const golden = `{"v":1,"max_ts":0,"disable_alias_elision":false,"scheduler":"nondet",` +
		`"summaries":false,"max_states":0,"max_steps":0,"max_depth":0,` +
		`"bfs":false,"disable_macro_steps":false,"disable_fold_memo":false,` +
		`"memo_mb":0,"disable_call_summaries":false,"summary_mb":0,` +
		`"search_workers":0,"num_shards":0,"context_bound":-1,` +
		`"visited_mode":"compact","mem_budget_mb":256}`
	got, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Errorf("wire format drifted:\n got: %s\nwant: %s", got, golden)
	}
}

// TestConfigWireRoundTrip: marshal → unmarshal must reproduce every
// serializable knob, for both default and fully-populated configs.
func TestConfigWireRoundTrip(t *testing.T) {
	cases := []*kiss.Config{
		kiss.NewConfig(),
		kiss.NewConfig(
			kiss.WithMaxTS(3),
			kiss.WithScheduler(kiss.SchedulerDrainAll),
			kiss.WithoutAliasElision(),
			kiss.WithRaceTarget(kiss.RaceTarget{Global: "stopped"}),
			kiss.WithMaxStates(1000),
			kiss.WithMaxSteps(2000),
			kiss.WithMaxDepth(64),
			kiss.WithBFS(),
			kiss.WithMacroSteps(false),
			kiss.WithFoldMemo(false),
			kiss.WithMemoMB(16),
			kiss.WithCallSummaries(false),
			kiss.WithSummaryMB(32),
			kiss.WithSearchWorkers(8),
			kiss.WithContextBound(2),
		),
		kiss.NewConfig(kiss.WithSummaries(), kiss.WithScheduler(kiss.SchedulerAtCallsOnly)),
		kiss.NewConfig(kiss.WithVisitedMode(kiss.VisitedCompact), kiss.WithMemBudgetMB(128)),
	}
	for i, cfg := range cases {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back kiss.Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		redata, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("case %d: re-marshal: %v", i, err)
		}
		if string(data) != string(redata) {
			t.Errorf("case %d: round trip drifted:\n first: %s\nsecond: %s", i, data, redata)
		}
	}
}

// TestConfigWireRejectsUnknownFields: version skew must be loud.
func TestConfigWireRejectsUnknownFields(t *testing.T) {
	var cfg kiss.Config
	if err := json.Unmarshal([]byte(`{"v":1,"max_ts":1,"definitely_not_a_knob":true}`), &cfg); err == nil {
		t.Error("unknown wire field accepted silently")
	}
	if err := json.Unmarshal([]byte(`{"v":1,"scheduler":"round-robin"}`), &cfg); err == nil {
		t.Error("unknown scheduler name accepted silently")
	}
	if err := json.Unmarshal([]byte(`{"v":1,"visited_mode":"lossy"}`), &cfg); err == nil {
		t.Error("unknown visited mode accepted silently")
	}
}

// TestConfigWireVersion: the "v" field is mandatory and must name a
// version this build speaks; failures are the typed *WireVersionError so
// callers can tell version skew from plain JSON garbage.
func TestConfigWireVersion(t *testing.T) {
	var cfg kiss.Config
	var verr *kiss.WireVersionError

	err := json.Unmarshal([]byte(`{"max_ts":1}`), &cfg)
	if err == nil {
		t.Fatal("config without a version field accepted silently")
	}
	if !errors.As(err, &verr) || verr.Got != 0 {
		t.Errorf("missing version: got %v, want *WireVersionError{Got: 0}", err)
	}

	err = json.Unmarshal([]byte(`{"v":2,"max_ts":1}`), &cfg)
	if err == nil {
		t.Fatal("config with an unknown version accepted silently")
	}
	if !errors.As(err, &verr) || verr.Got != 2 {
		t.Errorf("unknown version: got %v, want *WireVersionError{Got: 2}", err)
	}

	// The happy path: an explicit v1 payload decodes.
	if err := json.Unmarshal([]byte(`{"v":1,"max_ts":1}`), &cfg); err != nil {
		t.Errorf("v1 payload rejected: %v", err)
	}
	if cfg.MaxTS != 1 {
		t.Errorf("v1 payload decoded MaxTS=%d, want 1", cfg.MaxTS)
	}
}

// TestConfigCanonicalJSONCarriesVersion: the cache key's config half is
// version-stamped, so a future v2 format can never collide with v1
// entries in a shared cache.
func TestConfigCanonicalJSONCarriesVersion(t *testing.T) {
	cj, err := kiss.NewConfig().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(cj), `{"v":1,`) {
		t.Errorf("canonical form does not lead with the version: %s", cj)
	}
}

// TestConfigCanonicalJSONInvariance: configs differing only in
// result-invariant knobs (search workers, shards, runtime context,
// progress plumbing, Explore-only context bound) must share one
// canonical form — that is what lets a warm cache serve a -search-workers 8
// resubmission of a -search-workers 0 run.
func TestConfigCanonicalJSONInvariance(t *testing.T) {
	base := kiss.NewConfig(kiss.WithMaxStates(500))
	variant := kiss.NewConfig(
		kiss.WithMaxStates(500),
		kiss.WithSearchWorkers(8),
		kiss.WithContextBound(3),
		kiss.WithFoldMemo(false),
		kiss.WithMemoMB(16),
		kiss.WithCallSummaries(false),
		kiss.WithSummaryMB(32),
		kiss.WithProgress(func(kiss.Event) {}),
		kiss.WithProgressCadence(10, 0),
	)
	a, err := base.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := variant.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("result-invariant knobs leaked into the canonical form:\n%s\n%s", a, b)
	}

	// And a knob that does change the result must change the bytes.
	c, err := kiss.NewConfig(kiss.WithMaxStates(501)).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Error("different budgets share a canonical form")
	}
}

// TestConfigCanonicalJSONMemoryKnobs: under an exact visited set the
// memory budget only moves frontier frames between RAM and disk
// (bit-identical results), so it must not leak into the cache key; under
// a compact visited set it sizes the filter, whose false positives are
// part of the result, so it must.
func TestConfigCanonicalJSONMemoryKnobs(t *testing.T) {
	exact, err := kiss.NewConfig().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := kiss.NewConfig(
		kiss.WithMemBudgetMB(64),
		kiss.WithAuditVisited(),
	).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(exact) != string(budgeted) {
		t.Errorf("exact-mode budget or audit leaked into the canonical form:\n%s\n%s", exact, budgeted)
	}

	small, err := kiss.NewConfig(kiss.WithVisitedMode(kiss.VisitedCompact), kiss.WithMemBudgetMB(64)).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	large, err := kiss.NewConfig(kiss.WithVisitedMode(kiss.VisitedCompact), kiss.WithMemBudgetMB(128)).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(small) == string(large) {
		t.Error("compact-mode filter sizes share a canonical form")
	}
	if string(small) == string(exact) {
		t.Error("compact and exact visited modes share a canonical form")
	}
}

// TestConfigWireGoldenSequentialization: the sequentialization knobs are
// omitempty tail fields like the memory knobs — absent for the default
// (KISS) mode so every pre-CB payload and cache key survives their
// introduction byte-for-byte, pinned here when cb is selected.
func TestConfigWireGoldenSequentialization(t *testing.T) {
	cfg := kiss.NewConfig(
		kiss.WithSequentialization(kiss.SeqCB),
		kiss.WithContextSwitches(3),
	)
	const golden = `{"v":1,"max_ts":0,"disable_alias_elision":false,"scheduler":"nondet",` +
		`"summaries":false,"max_states":0,"max_steps":0,"max_depth":0,` +
		`"bfs":false,"disable_macro_steps":false,"disable_fold_memo":false,` +
		`"memo_mb":0,"disable_call_summaries":false,"summary_mb":0,` +
		`"search_workers":0,"num_shards":0,"context_bound":-1,` +
		`"sequentialization":"cb","context_switches":3}`
	got, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Errorf("wire format drifted:\n got: %s\nwant: %s", got, golden)
	}

	// Cache-key stability: a default-mode config must render the exact
	// bytes it rendered before the sequentialization knobs existed.
	const preCB = `{"v":1,"max_ts":0,"disable_alias_elision":false,"scheduler":"nondet",` +
		`"summaries":false,"max_states":0,"max_steps":0,"max_depth":0,` +
		`"bfs":false,"disable_macro_steps":false,"disable_fold_memo":false,` +
		`"memo_mb":0,"disable_call_summaries":false,"summary_mb":0,` +
		`"search_workers":0,"num_shards":0,"context_bound":-1}`
	got, err = json.Marshal(kiss.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != preCB {
		t.Errorf("default-mode bytes drifted from the pre-CB payload:\n got: %s\nwant: %s", got, preCB)
	}
}

// TestConfigWireSequentializationRoundTrip: the new knobs survive a
// marshal/unmarshal cycle, and a v1 payload carrying them decodes on
// this build (DisallowUnknownFields peers reject it only when the
// version is wrong, not because the field is new).
func TestConfigWireSequentializationRoundTrip(t *testing.T) {
	cfg := kiss.NewConfig(
		kiss.WithSequentialization(kiss.SeqCB),
		kiss.WithContextSwitches(4),
		kiss.WithMaxStates(500),
	)
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back kiss.Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Sequentialization != kiss.SeqCB || back.ContextSwitches != 4 {
		t.Errorf("round trip lost the sequentialization knobs: %+v", back)
	}

	// Same payload with a wrong version: rejected as version skew, not
	// as an unknown field.
	skew := []byte(`{"v":2,"sequentialization":"cb","context_switches":4}`)
	var verr *kiss.WireVersionError
	if err := json.Unmarshal(skew, &back); !errors.As(err, &verr) || verr.Got != 2 {
		t.Errorf("versioned-wrong cb payload: got %v, want *WireVersionError{Got: 2}", err)
	}

	// Invalid values are rejected with knob-specific errors.
	if err := json.Unmarshal([]byte(`{"v":1,"sequentialization":"rr"}`), &back); err == nil {
		t.Error("unknown sequentialization accepted silently")
	}
	if err := json.Unmarshal([]byte(`{"v":1,"context_switches":-1}`), &back); err == nil {
		t.Error("negative context-switch bound accepted silently")
	}
}

// TestConfigCanonicalJSONSequentialization: the mode is verdict-affecting
// and must split cache keys; its spelling and ignored side knobs must
// not.
func TestConfigCanonicalJSONSequentialization(t *testing.T) {
	canon := func(c *kiss.Config) string {
		t.Helper()
		b, err := c.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	def := canon(kiss.NewConfig())
	explicitKiss := canon(kiss.NewConfig(kiss.WithSequentialization(kiss.SeqKISS)))
	if def != explicitKiss {
		t.Error("explicit kiss mode and default mode render different canonical forms")
	}
	kissWithK := canon(kiss.NewConfig(kiss.WithContextSwitches(3)))
	if def != kissWithK {
		t.Error("ContextSwitches split the canonical form under KISS, which ignores it")
	}

	cb := canon(kiss.NewConfig(kiss.WithSequentialization(kiss.SeqCB)))
	if cb == def {
		t.Error("cb mode shares the default's canonical form; its verdicts differ")
	}
	cbDefaultK := canon(kiss.NewConfig(
		kiss.WithSequentialization(kiss.SeqCB),
		kiss.WithContextSwitches(kiss.DefaultContextSwitches)))
	if cb != cbDefaultK {
		t.Error("cb with explicit default K and cb with K=0 render different canonical forms")
	}
	cbK3 := canon(kiss.NewConfig(kiss.WithSequentialization(kiss.SeqCB), kiss.WithContextSwitches(3)))
	if cbK3 == cb {
		t.Error("different context-switch bounds share a canonical form")
	}
	cbMaxTS := canon(kiss.NewConfig(kiss.WithSequentialization(kiss.SeqCB), kiss.WithMaxTS(5)))
	if cbMaxTS != cb {
		t.Error("MaxTS split the canonical form under cb, which ignores it")
	}
}
