// Package kiss implements the program transformation at the heart of
// "KISS: Keep It Simple and Sequential" (Qadeer & Wu, PLDI 2004): the
// translation of a concurrent program P into a sequential program P' that
// simulates a large subset of P's behaviors on a single stack.
//
// Two translations are provided, mirroring the paper:
//
//   - Transform (Figure 4) instruments for assertion checking: a fresh
//     global `raise` lets a thread terminate nondeterministically at any
//     control location by raising an exception that pops its stack frames;
//     a bounded multiset `ts` holds forked-but-unscheduled threads; a
//     `schedule` function runs a nondeterministically chosen set of pending
//     threads at every control location.
//
//   - TransformRace (Figure 5) additionally instruments every read and
//     write with check_r/check_w calls that detect conflicting accesses to
//     a distinguished variable r (Section 5), using a unification-based
//     alias analysis to elide checks that provably cannot touch r.
//
// The output is a program in the *sequential* fragment of the language
// (no async, no atomic), to be analyzed by any sequential checker — here
// package seqcheck, standing in for SLAM.
package kiss

import (
	"fmt"
	"strings"

	"repro/internal/alias"
	"repro/internal/ast"
	"repro/internal/lower"
	"repro/internal/sema"
)

// Reserved names introduced by the transformation.
const (
	// RaiseVar is the fresh global boolean `raise` of Section 4.
	RaiseVar = "__kiss_raise"
	// AccessVar is the fresh global `access` in {0,1,2} of Section 5.
	AccessVar = "__kiss_access"
	// ScheduleFn is the generated scheduler function.
	ScheduleFn = "__kiss_schedule"
	// CheckRFn and CheckWFn are the generated race-check functions.
	CheckRFn = "__kiss_check_r"
	CheckWFn = "__kiss_check_w"
	// FnPrefix prefixes every translated function: [[f]] is FnPrefix+f.
	FnPrefix = "__kiss_"
)

// TranslatedName returns the name of the translated version [[f]] of a
// source function f.
func TranslatedName(f string) string { return FnPrefix + f }

// OriginalName inverts TranslatedName; ok is false for generated helpers
// (schedule, check_r, check_w) and non-translated names.
func OriginalName(f string) (string, bool) {
	switch f {
	case ScheduleFn, CheckRFn, CheckWFn:
		return "", false
	}
	if rest, found := strings.CutPrefix(f, FnPrefix); found {
		return rest, true
	}
	return "", false
}

// Scheduler selects the implementation of the generated schedule
// function and the placement of its call sites. Section 4: "The function
// schedule encapsulates the scheduling policy for the concurrent program.
// The implementation of this function presented above assumes a
// completely nondeterministic scheduler. A more sophisticated scheduler
// can be provided by writing a different implementation of schedule."
type Scheduler int

const (
	// SchedulerNondet is the paper's scheduler: at every control location,
	// run a nondeterministically chosen multiset of pending threads.
	SchedulerNondet Scheduler = iota
	// SchedulerDrainAll runs *all* pending threads to completion whenever
	// scheduling happens. Cheaper (no partial-drain nondeterminism) but
	// misses bugs that need one pending thread to run while another stays
	// deferred; still an under-approximation, so reports remain sound.
	SchedulerDrainAll
	// SchedulerAtCallsOnly keeps the nondeterministic scheduler but calls
	// it only before call/async statements and at returns, not before
	// every statement. Cheaper; misses bugs that need a context switch
	// between two straight-line statements.
	SchedulerAtCallsOnly
)

func (s Scheduler) String() string {
	switch s {
	case SchedulerNondet:
		return "nondet"
	case SchedulerDrainAll:
		return "drain-all"
	case SchedulerAtCallsOnly:
		return "at-calls-only"
	}
	return "?"
}

// Options parameterize the transformation.
type Options struct {
	// MaxTS is the bound MAX on the multiset ts (Section 4): "The set ts
	// provides a tuning knob to trade off coverage for computational cost
	// of analysis." With MaxTS = 0 every asynchronous call is replaced by
	// a synchronous call (the configuration used for the Table 1 race
	// experiments); the refcount experiments of Section 6 use MaxTS = 1.
	MaxTS int
	// DisableAliasElision keeps every check_r/check_w call even when the
	// alias analysis proves it cannot touch the race target. Only useful
	// for the ablation benchmarks quantifying how much the elision of
	// Section 5 saves.
	DisableAliasElision bool
	// Scheduler selects the scheduling policy (default: the paper's fully
	// nondeterministic scheduler).
	Scheduler Scheduler
}

// Transform applies the assertion-checking translation of Figure 4 to a
// core-form concurrent program and returns the sequential program
// Check(s) = raise := false; ts := ∅; [[s]]; schedule().
func Transform(p *ast.Program, opts Options) (*ast.Program, error) {
	return transform(p, opts, nil)
}

// TransformRace applies the race-checking translation of Figure 5 for the
// distinguished variable identified by target.
func TransformRace(p *ast.Program, target ast.RaceTarget, opts Options) (*ast.Program, error) {
	return transform(p, opts, &target)
}

func transform(p *ast.Program, opts Options, target *ast.RaceTarget) (*ast.Program, error) {
	if opts.MaxTS < 0 {
		return nil, fmt.Errorf("kiss: negative ts bound %d", opts.MaxTS)
	}
	if err := sema.Check(p, sema.Source); err != nil {
		return nil, fmt.Errorf("kiss: input program ill-formed: %w", err)
	}
	if ok, why := lower.IsCore(p); !ok {
		return nil, fmt.Errorf("kiss: input program not in core form (run lower first): %s", why)
	}
	if err := checkReservedNames(p); err != nil {
		return nil, err
	}
	if target != nil {
		if err := validateTarget(p, target); err != nil {
			return nil, err
		}
	}

	tr := &transformer{src: p, opts: opts, target: target}
	if target != nil {
		tr.alias = alias.Analyze(p)
	}

	out := &ast.Program{MaxTS: opts.MaxTS}
	if target != nil {
		t := *target
		out.RaceTarget = &t
	}
	for _, r := range p.Records {
		out.Records = append(out.Records, &ast.Record{
			Name: r.Name, Fields: append([]string(nil), r.Fields...), Pos: r.Pos,
		})
	}
	for _, g := range p.Globals {
		out.Globals = append(out.Globals, &ast.VarDecl{Name: g.Name, Pos: g.Pos})
	}
	out.Globals = append(out.Globals, &ast.VarDecl{Name: RaiseVar})
	if target != nil {
		out.Globals = append(out.Globals, &ast.VarDecl{Name: AccessVar})
	}

	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, tr.function(f))
	}
	// With MAX = 0, ts is empty in every execution: schedule is a no-op
	// and is elided everywhere, so the function itself is not emitted.
	if opts.MaxTS > 0 {
		out.Funcs = append(out.Funcs, scheduleFunc(opts.Scheduler))
	}
	if target != nil {
		out.Funcs = append(out.Funcs, checkFunc(CheckRFn, false), checkFunc(CheckWFn, true))
	}
	out.Funcs = append(out.Funcs, mainWrapper(target != nil, opts.MaxTS > 0))

	lower.Program(out)
	if err := sema.Check(out, sema.Transformed); err != nil {
		return nil, fmt.Errorf("kiss: internal error: transformed program ill-formed: %w", err)
	}
	return out, nil
}

func checkReservedNames(p *ast.Program) error {
	bad := func(name string) bool { return strings.HasPrefix(name, "__") }
	for _, g := range p.Globals {
		if bad(g.Name) {
			return fmt.Errorf("kiss: global %q uses the reserved '__' prefix", g.Name)
		}
	}
	for _, f := range p.Funcs {
		if bad(f.Name) {
			return fmt.Errorf("kiss: function %q uses the reserved '__' prefix", f.Name)
		}
	}
	return nil
}

func validateTarget(p *ast.Program, t *ast.RaceTarget) error {
	if t.Global != "" {
		if p.FindGlobal(t.Global) == nil {
			return fmt.Errorf("kiss: race target global %q not declared", t.Global)
		}
		return nil
	}
	r := p.FindRecord(t.Record)
	if r == nil {
		return fmt.Errorf("kiss: race target record %q not declared", t.Record)
	}
	if r.FieldIndex(t.Field) < 0 {
		return fmt.Errorf("kiss: race target field %q not in record %q", t.Field, t.Record)
	}
	return nil
}

type transformer struct {
	src    *ast.Program
	opts   Options
	target *ast.RaceTarget
	alias  *alias.Analysis
	curFn  string // original name of the function being translated
	// benignDepth > 0 while translating the body of a benign{} annotation:
	// race checks are suppressed there (Section 6's proposed annotation).
	benignDepth int
}

// function translates one source function f into [[f]].
func (tr *transformer) function(f *ast.Func) *ast.Func {
	tr.curFn = f.Name
	nf := &ast.Func{
		Name:   TranslatedName(f.Name),
		Params: append([]string(nil), f.Params...),
		Pos:    f.Pos,
	}
	for _, l := range f.Locals {
		nf.Locals = append(nf.Locals, &ast.VarDecl{Name: l.Name, Pos: l.Pos})
	}
	nf.Body = tr.block(f.Body)
	return nf
}

func (tr *transformer) block(b *ast.Block) *ast.Block {
	out := &ast.Block{Pos: b.Pos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, tr.stmt(s)...)
	}
	return out
}

// raiseStmts is the paper's RAISE: raise := true; return.
func raiseStmts() []ast.Stmt {
	return []ast.Stmt{ast.Set(RaiseVar, ast.B(true)), ast.Ret(nil)}
}

// prefix builds the instrumentation inserted before a statement:
//
//	schedule(); choice{skip [] ... [] RAISE}
//
// In assertion-checking mode the choice has a single RAISE branch
// (Figure 4). In race-checking mode there is one branch per potential
// access to the distinguished variable, each `check(addr); RAISE`
// (Figure 5); accesses proven by the alias analysis not to touch the
// target contribute a single shared bare-RAISE branch instead, preserving
// the nondeterministic-termination points while omitting the no-effect
// checks.
func (tr *transformer) prefix(accs []access, withSchedule bool) []ast.Stmt {
	branches := []*ast.Block{ast.Blk(ast.Skip())}
	if tr.target == nil {
		branches = append(branches, ast.Blk(raiseStmts()...))
	} else {
		bareRaise := false
		for _, a := range accs {
			if tr.benignDepth == 0 && a.addr != nil && (tr.opts.DisableAliasElision ||
				tr.alias.AccessMayTarget(tr.curFn, a.addr, tr.target)) {
				check := CheckRFn
				if a.write {
					check = CheckWFn
				}
				br := ast.Blk(append([]ast.Stmt{
					ast.CallDirect("", check, ast.CloneExpr(a.addr)),
				}, raiseStmts()...)...)
				branches = append(branches, br)
			} else {
				bareRaise = true
			}
		}
		if bareRaise || len(accs) == 0 {
			branches = append(branches, ast.Blk(raiseStmts()...))
		}
	}
	out := make([]ast.Stmt, 0, 2)
	if tr.opts.MaxTS > 0 && withSchedule {
		out = append(out, ast.CallDirect("", ScheduleFn))
	}
	return append(out, ast.Choice(branches...))
}

// schedHere reports whether the current scheduler policy places a
// schedule() call before a statement of the given kind.
func (tr *transformer) schedHere(isCallLike bool) bool {
	if tr.opts.Scheduler == SchedulerAtCallsOnly {
		return isCallLike
	}
	return true
}

func (tr *transformer) stmt(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.Block:
		return []ast.Stmt{tr.block(s)}

	case *ast.AssignStmt:
		out := tr.prefix(assignAccesses(s), tr.schedHere(false))
		return append(out, &ast.AssignStmt{Lhs: tr.expr(s.Lhs), Rhs: tr.expr(s.Rhs), Pos: s.Pos})

	case *ast.AssertStmt:
		out := tr.prefix(readAccesses(s.Cond), tr.schedHere(false))
		return append(out, &ast.AssertStmt{Cond: tr.expr(s.Cond), Pos: s.Pos})

	case *ast.AssumeStmt:
		out := tr.prefix(readAccesses(s.Cond), tr.schedHere(false))
		return append(out, &ast.AssumeStmt{Cond: tr.expr(s.Cond), Pos: s.Pos})

	case *ast.AtomicStmt:
		// [[atomic{s}]] = schedule(); choice{skip [] RAISE}; s — the body
		// executes uninstrumented (Section 3's restriction guarantees it
		// contains no calls or returns), and the atomic wrapper itself is
		// dropped: in a sequential program nothing can interleave.
		out := tr.prefix(nil, tr.schedHere(false))
		body := ast.CloneBlock(s.Body)
		tr.rewriteFuncLits(body)
		return append(out, body.Stmts...)

	case *ast.CallStmt:
		// [[v = v0()]] = schedule(); choice{...}; v = [[v0]](); if (raise) return
		accs := callAccesses(s)
		out := tr.prefix(accs, tr.schedHere(true))
		call := &ast.CallStmt{
			Result: s.Result,
			Fn:     tr.expr(s.Fn),
			Args:   tr.exprs(s.Args),
			Pos:    s.Pos,
		}
		out = append(out, call)
		out = append(out, ast.If(ast.V(RaiseVar), ast.Blk(ast.Ret(nil)), nil))
		return out

	case *ast.AsyncStmt:
		// [[async v0()]] = schedule(); choice{...};
		//   if (size() < MAX) put(v0) else { [[v0]](); raise := false }
		accs := asyncAccesses(s)
		out := tr.prefix(accs, tr.schedHere(true))
		fn := tr.expr(s.Fn)
		args := tr.exprs(s.Args)
		put := &ast.TsPutStmt{Fn: fn, Args: args, Pos: s.Pos}
		// The inlined synchronous call deliberately carries no source
		// position: trace reconstruction uses the missing position to
		// recognize it as a thread executing inline rather than an
		// ordinary user call.
		syncCall := &ast.CallStmt{Fn: ast.CloneExpr(fn), Args: tr.cloneExprs(args)}
		els := ast.Blk(syncCall, ast.Set(RaiseVar, ast.B(false)))
		if tr.opts.MaxTS == 0 {
			// With MAX = 0, size() < MAX is identically false: every
			// asynchronous call is replaced by a synchronous call
			// (Section 2.2), so the test and the put branch are elided.
			return append(out, els.Stmts...)
		}
		out = append(out, ast.If(
			ast.Bin("<", &ast.TsSizeExpr{}, ast.I(int64(tr.opts.MaxTS))),
			ast.Blk(put),
			els,
		))
		return out

	case *ast.ReturnStmt:
		// [[return]] = schedule(); return
		ret := &ast.ReturnStmt{Value: tr.expr(s.Value), Pos: s.Pos}
		if tr.opts.MaxTS == 0 {
			return []ast.Stmt{ret}
		}
		return []ast.Stmt{ast.CallDirect("", ScheduleFn), ret}

	case *ast.BenignStmt:
		// The annotation disappears in the translation; its body is
		// translated with race checks suppressed.
		tr.benignDepth++
		body := tr.block(s.Body)
		tr.benignDepth--
		return body.Stmts

	case *ast.ChoiceStmt:
		c := &ast.ChoiceStmt{Pos: s.Pos}
		for _, b := range s.Branches {
			c.Branches = append(c.Branches, tr.block(b))
		}
		return []ast.Stmt{c}

	case *ast.IterStmt:
		return []ast.Stmt{&ast.IterStmt{Body: tr.block(s.Body), Pos: s.Pos}}

	case *ast.SkipStmt:
		out := tr.prefix(nil, tr.schedHere(false))
		return append(out, &ast.SkipStmt{Pos: s.Pos})

	case *ast.IfStmt, *ast.WhileStmt:
		panic("kiss: sugar statement in core program")

	default:
		panic(fmt.Sprintf("kiss: cannot translate statement %T", s))
	}
}

// expr clones an expression, rewriting every function-name constant f to
// its translated counterpart [[f]]. Function values originate only from
// constants, so after this rewriting every indirect call and every ts
// entry dispatches to translated code — the paper's [[v0]]().
func (tr *transformer) expr(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	c := ast.CloneExpr(e)
	return rewriteFuncLitsExpr(c)
}

func (tr *transformer) exprs(es []ast.Expr) []ast.Expr {
	out := make([]ast.Expr, len(es))
	for i, e := range es {
		out[i] = tr.expr(e)
	}
	return out
}

func (tr *transformer) cloneExprs(es []ast.Expr) []ast.Expr {
	out := make([]ast.Expr, len(es))
	for i, e := range es {
		out[i] = ast.CloneExpr(e)
	}
	return out
}

// rewriteFuncLits rewrites function constants inside an already-cloned
// statement tree (used for atomic bodies, which are copied wholesale).
func (tr *transformer) rewriteFuncLits(b *ast.Block) {
	ast.WalkStmts(b, func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			s.Lhs = rewriteFuncLitsExpr(s.Lhs)
			s.Rhs = rewriteFuncLitsExpr(s.Rhs)
		case *ast.AssertStmt:
			s.Cond = rewriteFuncLitsExpr(s.Cond)
		case *ast.AssumeStmt:
			s.Cond = rewriteFuncLitsExpr(s.Cond)
		}
		return true
	})
}

func rewriteFuncLitsExpr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.FuncLit:
		return &ast.FuncLit{Name: TranslatedName(e.Name), Pos: e.Pos}
	case *ast.DerefExpr:
		e.X = rewriteFuncLitsExpr(e.X)
	case *ast.FieldExpr:
		e.X = rewriteFuncLitsExpr(e.X)
	case *ast.AddrFieldExpr:
		e.X = rewriteFuncLitsExpr(e.X)
	case *ast.UnaryExpr:
		e.X = rewriteFuncLitsExpr(e.X)
	case *ast.BinaryExpr:
		e.X = rewriteFuncLitsExpr(e.X)
		e.Y = rewriteFuncLitsExpr(e.Y)
	case *ast.RaceCellExpr:
		e.X = rewriteFuncLitsExpr(e.X)
	}
	return e
}

// scheduleFunc generates the scheduler. The paper's nondeterministic
// policy is
//
//	schedule() { var f; iter { if (size() > 0) { f := get(); [[f]](); raise := false } } }
//
// with get-and-call fused into the __ts_dispatch intrinsic. The drain-all
// variant replaces the nondeterministic iteration with a loop that runs
// until ts is empty.
func scheduleFunc(kind Scheduler) *ast.Func {
	var body *ast.Block
	if kind == SchedulerDrainAll {
		body = ast.Blk(
			ast.While(ast.Bin(">", &ast.TsSizeExpr{}, ast.I(0)), ast.Blk(
				&ast.TsDispatchStmt{},
				ast.Set(RaiseVar, ast.B(false)),
			)),
		)
	} else {
		body = ast.Blk(
			ast.Iter(ast.Blk(
				ast.If(ast.Bin(">", &ast.TsSizeExpr{}, ast.I(0)),
					ast.Blk(
						&ast.TsDispatchStmt{},
						ast.Set(RaiseVar, ast.B(false)),
					), nil),
			)),
		)
	}
	return &ast.Func{Name: ScheduleFn, Body: body}
}

// checkFunc generates check_r / check_w (Section 5):
//
//	check_r(x) { if (x == &r) { assert(!(access == 2)); access := 1 } }
//	check_w(x) { if (x == &r) { assert(access == 0);    access := 2 } }
//
// The pointer test x == &r is the __race_cell intrinsic, which matches the
// target global's cell or any (record, field) cell of the target field.
func checkFunc(name string, write bool) *ast.Func {
	var inner []ast.Stmt
	if write {
		inner = []ast.Stmt{
			ast.Assert(ast.Eq(ast.V(AccessVar), ast.I(0))),
			ast.Set(AccessVar, ast.I(2)),
		}
	} else {
		inner = []ast.Stmt{
			ast.Assert(ast.Not(ast.Eq(ast.V(AccessVar), ast.I(2)))),
			ast.Set(AccessVar, ast.I(1)),
		}
	}
	body := ast.Blk(
		ast.If(&ast.RaceCellExpr{X: ast.V("x")}, ast.Blk(inner...), nil),
	)
	return &ast.Func{Name: name, Params: []string{"x"}, Body: body}
}

// mainWrapper generates Check(s): raise := false; [access := 0;] [[main]]();
// raise := false; schedule().
func mainWrapper(race, withSchedule bool) *ast.Func {
	var stmts []ast.Stmt
	stmts = append(stmts, ast.Set(RaiseVar, ast.B(false)))
	if race {
		stmts = append(stmts, ast.Set(AccessVar, ast.I(0)))
	}
	stmts = append(stmts,
		ast.CallDirect("", TranslatedName("main")),
		ast.Set(RaiseVar, ast.B(false)),
	)
	if withSchedule {
		stmts = append(stmts, ast.CallDirect("", ScheduleFn))
	}
	return &ast.Func{Name: "main", Body: ast.Blk(stmts...)}
}
