package kiss

import (
	"repro/internal/ast"
)

// access describes one potential memory access performed by a statement:
// whether it writes, and an address expression (&v, a pointer variable for
// *v, or &p->f) suitable as the argument of check_r/check_w. A nil addr
// marks an access whose address is not expressible in those shapes (deep
// dereference chains inside assume conditions); such accesses keep the
// nondeterministic-termination branch but carry no check, mirroring the
// paper's treatment where all accesses are to the simple Figure 3 shapes.
type access struct {
	write bool
	addr  ast.Expr
}

func readOf(addr ast.Expr) access  { return access{addr: addr} }
func writeOf(addr ast.Expr) access { return access{write: true, addr: addr} }

// operandReads returns the read accesses of a core operand: a variable
// read for VarExpr, nothing for literals.
func operandReads(e ast.Expr) []access {
	if v, ok := e.(*ast.VarExpr); ok {
		return []access{readOf(&ast.AddrOfExpr{Name: v.Name, Pos: v.Pos})}
	}
	return nil
}

// assignAccesses enumerates the accesses of a core-form assignment,
// generalizing the Figure 5 rows:
//
//	v = c           : W(&v)
//	v = &v1         : W(&v)
//	v = *v1         : R(&v1), R(v1), W(&v)
//	*v = v1         : R(&v1), R(&v), W(v)
//	v = v1 op v2    : R(&v1), R(&v2), W(&v)
//
// plus the record-field extensions:
//
//	v = p->f        : R(&p), R(&p->f), W(&v)
//	p->f = v1       : R(&p), R(&v1), W(&p->f)
//	v = &p->f       : R(&p), W(&v)
//	v = new R       : W(&v)
func assignAccesses(s *ast.AssignStmt) []access {
	var accs []access

	// Right-hand side reads.
	switch r := s.Rhs.(type) {
	case *ast.IntLit, *ast.BoolLit, *ast.FuncLit, *ast.NullLit, *ast.NewExpr, *ast.TsSizeExpr:
		// no reads
	case *ast.VarExpr:
		accs = append(accs, operandReads(r)...)
	case *ast.AddrOfExpr:
		// taking an address reads nothing
	case *ast.DerefExpr:
		accs = append(accs, operandReads(r.X)...)
		if v, ok := r.X.(*ast.VarExpr); ok {
			accs = append(accs, readOf(&ast.VarExpr{Name: v.Name, Pos: v.Pos}))
		} else {
			accs = append(accs, access{}) // inexpressible
		}
	case *ast.FieldExpr:
		accs = append(accs, operandReads(r.X)...)
		if v, ok := r.X.(*ast.VarExpr); ok {
			accs = append(accs, readOf(&ast.AddrFieldExpr{X: &ast.VarExpr{Name: v.Name}, Field: r.Field, Pos: r.Pos}))
		} else {
			accs = append(accs, access{})
		}
	case *ast.AddrFieldExpr:
		accs = append(accs, operandReads(r.X)...)
	case *ast.UnaryExpr:
		accs = append(accs, operandReads(r.X)...)
	case *ast.BinaryExpr:
		accs = append(accs, operandReads(r.X)...)
		accs = append(accs, operandReads(r.Y)...)
	case *ast.RaceCellExpr:
		accs = append(accs, operandReads(r.X)...)
	}

	// Left-hand side: base reads plus the write.
	switch l := s.Lhs.(type) {
	case *ast.VarExpr:
		accs = append(accs, writeOf(&ast.AddrOfExpr{Name: l.Name, Pos: l.Pos}))
	case *ast.DerefExpr:
		accs = append(accs, operandReads(l.X)...)
		if v, ok := l.X.(*ast.VarExpr); ok {
			accs = append(accs, writeOf(&ast.VarExpr{Name: v.Name, Pos: v.Pos}))
		} else {
			accs = append(accs, access{write: true})
		}
	case *ast.FieldExpr:
		accs = append(accs, operandReads(l.X)...)
		if v, ok := l.X.(*ast.VarExpr); ok {
			accs = append(accs, writeOf(&ast.AddrFieldExpr{X: &ast.VarExpr{Name: v.Name}, Field: l.Field, Pos: l.Pos}))
		} else {
			accs = append(accs, access{write: true})
		}
	}
	return accs
}

// readAccesses enumerates the reads of an effect-free condition tree
// (assert/assume conditions). Reads whose addresses fit the check shapes
// get address expressions; deeper dereferences contribute inexpressible
// accesses (bare termination branches).
func readAccesses(e ast.Expr) []access {
	var accs []access
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case nil:
		case *ast.VarExpr:
			accs = append(accs, readOf(&ast.AddrOfExpr{Name: e.Name, Pos: e.Pos}))
		case *ast.AddrOfExpr:
			// address-of reads nothing
		case *ast.DerefExpr:
			walk(e.X)
			if v, ok := e.X.(*ast.VarExpr); ok {
				accs = append(accs, readOf(&ast.VarExpr{Name: v.Name, Pos: v.Pos}))
			} else {
				accs = append(accs, access{})
			}
		case *ast.FieldExpr:
			walk(e.X)
			if v, ok := e.X.(*ast.VarExpr); ok {
				accs = append(accs, readOf(&ast.AddrFieldExpr{X: &ast.VarExpr{Name: v.Name}, Field: e.Field, Pos: e.Pos}))
			} else {
				accs = append(accs, access{})
			}
		case *ast.AddrFieldExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.RaceCellExpr:
			walk(e.X)
		}
	}
	walk(e)
	return accs
}

// callAccesses enumerates the accesses of v = v0(a1, ..., an): reads of
// the target variable and the arguments, and a write of the result
// (Figure 5's row for v = v0()).
func callAccesses(s *ast.CallStmt) []access {
	var accs []access
	accs = append(accs, operandReads(s.Fn)...)
	for _, a := range s.Args {
		accs = append(accs, operandReads(a)...)
	}
	if s.Result != "" {
		accs = append(accs, writeOf(&ast.AddrOfExpr{Name: s.Result, Pos: s.Pos}))
	}
	return accs
}

// asyncAccesses enumerates the accesses of async v0(a1, ..., an): reads of
// the target variable and the fork-time argument evaluation.
func asyncAccesses(s *ast.AsyncStmt) []access {
	var accs []access
	accs = append(accs, operandReads(s.Fn)...)
	for _, a := range s.Args {
		accs = append(accs, operandReads(a)...)
	}
	return accs
}
