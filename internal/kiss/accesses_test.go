package kiss

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
)

// renderAccess gives a canonical string for comparing access lists.
func renderAccess(a access) string {
	kind := "R"
	if a.write {
		kind = "W"
	}
	if a.addr == nil {
		return kind + "(?)"
	}
	return kind + "(" + ast.PrintExpr(a.addr) + ")"
}

func renderAll(accs []access) string {
	parts := make([]string, len(accs))
	for i, a := range accs {
		parts[i] = renderAccess(a)
	}
	return strings.Join(parts, " ")
}

// TestAssignAccesses checks the access enumeration against the rows of
// Figure 5 (generalized to fields).
func TestAssignAccesses(t *testing.T) {
	cases := []struct {
		name string
		stmt *ast.AssignStmt
		want string
	}{
		{"v = c", ast.Set("v", ast.I(1)), "W(&v)"},
		{"v = v1", ast.Set("v", ast.V("v1")), "R(&v1) W(&v)"},
		{"v = &v1", ast.Set("v", ast.Addr("v1")), "W(&v)"},
		{"v = *v1", ast.Set("v", ast.Deref(ast.V("v1"))), "R(&v1) R(v1) W(&v)"},
		{"*v = v1", ast.Assign(ast.Deref(ast.V("v")), ast.V("v1")), "R(&v1) R(&v) W(v)"},
		{"v = v1 op v2", ast.Set("v", ast.Add(ast.V("v1"), ast.V("v2"))), "R(&v1) R(&v2) W(&v)"},
		{"v = v1 op c", ast.Set("v", ast.Add(ast.V("v1"), ast.I(3))), "R(&v1) W(&v)"},
		{"v = p->f", ast.Set("v", ast.Field(ast.V("p"), "f")), "R(&p) R(&p->f) W(&v)"},
		{"p->f = v1", ast.Assign(ast.Field(ast.V("p"), "f"), ast.V("v1")), "R(&v1) R(&p) W(&p->f)"},
		{"v = &p->f", ast.Set("v", ast.AddrField(ast.V("p"), "f")), "R(&p) W(&v)"},
		{"v = new R", ast.Set("v", ast.New("R")), "W(&v)"},
		{"v = !v1", ast.Set("v", ast.Not(ast.V("v1"))), "R(&v1) W(&v)"},
	}
	for _, tc := range cases {
		got := renderAll(assignAccesses(tc.stmt))
		if got != tc.want {
			t.Errorf("%s: accesses %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestReadAccessesOfConditions(t *testing.T) {
	cases := []struct {
		cond ast.Expr
		want string
	}{
		{ast.V("v"), "R(&v)"},
		{ast.Eq(ast.V("a"), ast.V("b")), "R(&a) R(&b)"},
		{ast.Deref(ast.V("p")), "R(&p) R(p)"},
		{ast.Field(ast.V("p"), "f"), "R(&p) R(&p->f)"},
		{ast.Not(ast.Eq(ast.Field(ast.V("e"), "flag"), ast.B(true))), "R(&e) R(&e->flag)"},
		{ast.I(1), ""},
	}
	for i, tc := range cases {
		got := renderAll(readAccesses(tc.cond))
		if got != tc.want {
			t.Errorf("case %d (%s): %q, want %q", i, ast.PrintExpr(tc.cond), got, tc.want)
		}
	}
}

// TestDeepConditionYieldsInexpressibleAccess: nested dereference chains in
// assume conditions produce a bare (uncheckable) access, preserving the
// termination point.
func TestDeepConditionYieldsInexpressibleAccess(t *testing.T) {
	// *(p->f) : reading through a field value; the inner read's address is
	// not one of the three checkable shapes.
	cond := ast.Deref(ast.Field(ast.V("p"), "f"))
	accs := readAccesses(cond)
	sawInexpressible := false
	for _, a := range accs {
		if a.addr == nil {
			sawInexpressible = true
		}
	}
	if !sawInexpressible {
		t.Errorf("deep dereference should yield an inexpressible access: %s", renderAll(accs))
	}
}

func TestCallAndAsyncAccesses(t *testing.T) {
	call := ast.Call("r", ast.V("fp"), ast.V("a"), ast.I(2))
	got := renderAll(callAccesses(call))
	want := "R(&fp) R(&a) W(&r)"
	if got != want {
		t.Errorf("call accesses %q, want %q", got, want)
	}

	bare := ast.Call("", ast.Fn("f"), ast.V("a"))
	got = renderAll(callAccesses(bare))
	if got != "R(&a)" {
		t.Errorf("bare call accesses %q, want R(&a)", got)
	}

	as := ast.Async(ast.V("fp"), ast.V("x"))
	got = renderAll(asyncAccesses(as))
	if got != "R(&fp) R(&x)" {
		t.Errorf("async accesses %q", got)
	}
}

// TestPrefixBranchStructure: the generated choice has skip first, then one
// check branch per surviving access (race mode with elision disabled), or
// a single RAISE branch (assertion mode).
func TestPrefixBranchStructure(t *testing.T) {
	p := parseLowered(t, `
var g;
var h;
func main() {
  g = h;
}
`)
	// Assertion mode: choice{skip [] RAISE}.
	out, err := Transform(p, Options{MaxTS: 0})
	if err != nil {
		t.Fatal(err)
	}
	main := out.FindFunc(TranslatedName("main"))
	choice := firstChoice(main.Body)
	if choice == nil || len(choice.Branches) != 2 {
		t.Fatalf("assertion-mode prefix branches = %v", branchCount(choice))
	}

	// Race mode with elision disabled: skip + one branch per access
	// (R(&h), W(&g)) each ending in RAISE.
	out2, err := TransformRace(parseLowered(t, `
var g;
var h;
func main() {
  g = h;
}
`), ast.RaceTarget{Global: "g"}, Options{MaxTS: 0, DisableAliasElision: true})
	if err != nil {
		t.Fatal(err)
	}
	main2 := out2.FindFunc(TranslatedName("main"))
	choice2 := firstChoice(main2.Body)
	if choice2 == nil || len(choice2.Branches) != 3 {
		t.Fatalf("race-mode prefix branches = %s, want 3 (skip + 2 checks)", branchCount(choice2))
	}
	// With elision enabled, the read of h is elided into a shared bare
	// RAISE branch: skip + check_w(&g) + RAISE = 3 as well, but one branch
	// has no check call.
	out3, err := TransformRace(parseLowered(t, `
var g;
var h;
func main() {
  g = h;
}
`), ast.RaceTarget{Global: "g"}, Options{MaxTS: 0})
	if err != nil {
		t.Fatal(err)
	}
	main3 := out3.FindFunc(TranslatedName("main"))
	choice3 := firstChoice(main3.Body)
	checkCalls := 0
	for _, br := range choice3.Branches {
		ast.WalkStmts(br, func(s ast.Stmt) bool {
			if c, ok := s.(*ast.CallStmt); ok {
				if fl, ok := c.Fn.(*ast.FuncLit); ok && (fl.Name == CheckRFn || fl.Name == CheckWFn) {
					checkCalls++
				}
			}
			return true
		})
	}
	if checkCalls != 1 {
		t.Errorf("with elision, want exactly 1 surviving check call, got %d\n%s",
			checkCalls, ast.Print(out3))
	}
}

func firstChoice(b *ast.Block) *ast.ChoiceStmt {
	var out *ast.ChoiceStmt
	ast.WalkStmts(b, func(s ast.Stmt) bool {
		if c, ok := s.(*ast.ChoiceStmt); ok && out == nil {
			out = c
		}
		return out == nil
	})
	return out
}

func branchCount(c *ast.ChoiceStmt) string {
	if c == nil {
		return "no choice found"
	}
	return fmt.Sprint(len(c.Branches))
}
