package kiss

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sema"
)

func parseLowered(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p, sema.Source); err != nil {
		t.Fatalf("sema: %v", err)
	}
	lower.Program(p)
	return p
}

const smallSrc = `
var g;
func worker(v) {
  g = v;
  return v;
}
func main() {
  var r;
  async worker(1);
  r = worker(2);
  assert(g > 0);
}
`

func TestTransformProducesSequentialProgram(t *testing.T) {
	p := parseLowered(t, smallSrc)
	out, err := Transform(p, Options{MaxTS: 1})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	// Output is in the sequential fragment and core form.
	if err := sema.Check(out, sema.Transformed); err != nil {
		t.Fatalf("output ill-formed: %v", err)
	}
	if ok, why := lower.IsCore(out); !ok {
		t.Fatalf("output not core: %s", why)
	}
	if ast.UsesConcurrency(out) {
		t.Fatal("output still contains async/atomic")
	}
	if out.MaxTS != 1 {
		t.Errorf("MaxTS not recorded: %d", out.MaxTS)
	}
}

func TestTransformAddsExpectedDeclarations(t *testing.T) {
	p := parseLowered(t, smallSrc)
	out, err := Transform(p, Options{MaxTS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.FindGlobal(RaiseVar) == nil {
		t.Errorf("missing %s global", RaiseVar)
	}
	if out.FindGlobal(AccessVar) != nil {
		t.Errorf("%s must not exist in assertion mode", AccessVar)
	}
	for _, name := range []string{"main", ScheduleFn, TranslatedName("main"), TranslatedName("worker")} {
		if out.FindFunc(name) == nil {
			t.Errorf("missing function %s", name)
		}
	}
	if out.FindFunc("worker") != nil {
		t.Error("untranslated source function leaked into the output")
	}
}

func TestRaceTransformAddsChecks(t *testing.T) {
	p := parseLowered(t, smallSrc)
	out, err := TransformRace(p, ast.RaceTarget{Global: "g"}, Options{MaxTS: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.FindGlobal(AccessVar) == nil {
		t.Errorf("missing %s global", AccessVar)
	}
	for _, name := range []string{CheckRFn, CheckWFn} {
		if out.FindFunc(name) == nil {
			t.Errorf("missing %s", name)
		}
	}
	// The worker's write g = v must be preceded by a check_w branch.
	src := ast.Print(out)
	if !strings.Contains(src, CheckWFn+"(") || !strings.Contains(src, "&g") {
		t.Errorf("no check_w call on &g in output:\n%s", src)
	}
	if !strings.Contains(src, "__race_cell(x)") {
		t.Errorf("check bodies missing the distinguished-cell test:\n%s", src)
	}
}

// TestRaiseChoiceBeforeStatements: Figure 4 inserts
// choice{skip [] RAISE} before every statement; RAISE is
// raise := true; return.
func TestRaiseInstrumentationShape(t *testing.T) {
	p := parseLowered(t, `var g; func main() { g = 1; }`)
	out, err := Transform(p, Options{MaxTS: 0})
	if err != nil {
		t.Fatal(err)
	}
	tm := out.FindFunc(TranslatedName("main"))
	if tm == nil {
		t.Fatal("no translated main")
	}
	src := ast.Print(out)
	if !strings.Contains(src, RaiseVar+" = true") {
		t.Error("no RAISE assignment in output")
	}
	// With MaxTS == 0 the schedule call is elided as dead code.
	callsSchedule := false
	ast.WalkStmts(tm.Body, func(s ast.Stmt) bool {
		if c, ok := s.(*ast.CallStmt); ok {
			if fl, ok := c.Fn.(*ast.FuncLit); ok && fl.Name == ScheduleFn {
				callsSchedule = true
			}
		}
		return true
	})
	if callsSchedule {
		t.Error("schedule() emitted despite MaxTS == 0")
	}
	outTS1, err := Transform(parseLowered(t, `var g; func main() { g = 1; }`), Options{MaxTS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ast.Print(outTS1), ScheduleFn) {
		t.Error("schedule() missing with MaxTS == 1")
	}
}

func TestAsyncTranslation(t *testing.T) {
	p := parseLowered(t, smallSrc)
	// MaxTS = 0: async becomes a direct synchronous call, no ts ops.
	out0, err := Transform(p, Options{MaxTS: 0})
	if err != nil {
		t.Fatal(err)
	}
	src0 := ast.Print(out0)
	if strings.Contains(src0, "__ts_put") || strings.Contains(src0, "__ts_size") {
		t.Errorf("MaxTS=0 output contains ts operations:\n%s", src0)
	}
	if !strings.Contains(src0, TranslatedName("worker")+"(") {
		t.Errorf("inlined async call missing:\n%s", src0)
	}

	// MaxTS = 1: the size test and put appear.
	out1, err := Transform(parseLowered(t, smallSrc), Options{MaxTS: 1})
	if err != nil {
		t.Fatal(err)
	}
	src1 := ast.Print(out1)
	for _, frag := range []string{"__ts_put(@" + TranslatedName("worker"), "__ts_size()", "__ts_dispatch()"} {
		if !strings.Contains(src1, frag) {
			t.Errorf("MaxTS=1 output missing %q:\n%s", frag, src1)
		}
	}
}

func TestFunctionConstantsRewritten(t *testing.T) {
	p := parseLowered(t, `
var g;
func f() { g = 1; }
func main() {
  var v;
  v = @f;
  v();
}
`)
	out, err := Transform(p, Options{MaxTS: 0})
	if err != nil {
		t.Fatal(err)
	}
	src := ast.Print(out)
	if !strings.Contains(src, "@"+TranslatedName("f")) {
		t.Errorf("function constant not rewritten:\n%s", src)
	}
	// No reference to the untranslated name may remain in expressions.
	if strings.Contains(src, "@f;") || strings.Contains(src, "@f\n") {
		t.Errorf("untranslated function constant leaked:\n%s", src)
	}
}

func TestAtomicBodyNotInstrumented(t *testing.T) {
	p := parseLowered(t, `
var l;
func main() {
  atomic { assume(l == 0); l = 1; }
}
`)
	out, err := Transform(p, Options{MaxTS: 0})
	if err != nil {
		t.Fatal(err)
	}
	tm := out.FindFunc(TranslatedName("main"))
	// Exactly one choice (the prefix); the body's two statements execute
	// with no per-statement instrumentation; the atomic wrapper is gone.
	choices := 0
	atomics := 0
	ast.WalkStmts(tm.Body, func(s ast.Stmt) bool {
		switch s.(type) {
		case *ast.ChoiceStmt:
			choices++
		case *ast.AtomicStmt:
			atomics++
		}
		return true
	})
	if atomics != 0 {
		t.Error("atomic statement survived the translation")
	}
	if choices != 1 {
		t.Errorf("got %d choice statements, want exactly the single prefix", choices)
	}
}

func TestReservedNamesRejected(t *testing.T) {
	p := parseLowered(t, `var g; func main() { g = 1; }`)
	p.Globals = append(p.Globals, &ast.VarDecl{Name: "__kiss_raise"})
	if _, err := Transform(p, Options{MaxTS: 0}); err == nil {
		t.Error("reserved global name accepted")
	}
}

func TestBadTargetsRejected(t *testing.T) {
	p := parseLowered(t, `var g; func main() { g = 1; }`)
	if _, err := TransformRace(p, ast.RaceTarget{Global: "nosuch"}, Options{}); err == nil {
		t.Error("unknown global target accepted")
	}
	if _, err := TransformRace(p, ast.RaceTarget{Record: "R", Field: "f"}, Options{}); err == nil {
		t.Error("unknown record target accepted")
	}
	if _, err := Transform(p, Options{MaxTS: -1}); err == nil {
		t.Error("negative ts bound accepted")
	}
}

func TestInputNotMutated(t *testing.T) {
	p := parseLowered(t, smallSrc)
	before := ast.Print(p)
	if _, err := Transform(p, Options{MaxTS: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := TransformRace(p, ast.RaceTarget{Global: "g"}, Options{MaxTS: 1}); err != nil {
		t.Fatal(err)
	}
	after := ast.Print(p)
	if before != after {
		t.Error("transformation mutated its input program")
	}
}

func TestTranslatedNameRoundTrip(t *testing.T) {
	for _, name := range []string{"main", "f", "BCSP_PnpStop"} {
		orig, ok := OriginalName(TranslatedName(name))
		if !ok || orig != name {
			t.Errorf("round trip failed for %q: got %q, %v", name, orig, ok)
		}
	}
	for _, generated := range []string{ScheduleFn, CheckRFn, CheckWFn, "main", "plain"} {
		if _, ok := OriginalName(generated); ok {
			t.Errorf("OriginalName(%q) should not resolve", generated)
		}
	}
}

// TestTransformedOutputReparses: the printed transformed program parses
// back and checks under Transformed mode — the printer and the intrinsic
// syntax round trip.
func TestTransformedOutputReparses(t *testing.T) {
	p := parseLowered(t, smallSrc)
	out, err := TransformRace(p, ast.RaceTarget{Global: "g"}, Options{MaxTS: 2})
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(out)
	back, err := parser.Parse(printed)
	if err != nil {
		t.Fatalf("transformed output does not reparse: %v\n%s", err, printed)
	}
	back.MaxTS = out.MaxTS
	back.RaceTarget = out.RaceTarget
	if err := sema.Check(back, sema.Transformed); err != nil {
		t.Fatalf("reparsed output ill-formed: %v", err)
	}
}
