package kiss

import (
	"fmt"

	"repro/internal/ast"
)

// Stats quantifies the instrumentation blowup of a transformation, the
// quantities behind the paper's complexity claim (Section 4): "Our
// instrumentation introduces a small constant blowup in the control-flow
// graph of the concurrent program and adds a small constant number of
// global variables. Thus, the complexity of using KISS on a concurrent
// program of a certain size is about the same as using a standard
// interprocedural dataflow analysis or model checking on a sequential
// program of the same size."
type Stats struct {
	// SourceStmts and OutputStmts count statements (|C|, the control-flow
	// graph size) before and after the transformation.
	SourceStmts int
	OutputStmts int
	// SourceGlobals and OutputGlobals count global variables (the g of
	// O(|C| * 2^(g+l))).
	SourceGlobals int
	OutputGlobals int
	// SourceFuncs and OutputFuncs count functions (translated bodies plus
	// the generated schedule/check/wrapper helpers).
	SourceFuncs int
	OutputFuncs int
}

// StmtBlowup is the control-flow-graph growth factor.
func (s Stats) StmtBlowup() float64 {
	if s.SourceStmts == 0 {
		return 0
	}
	return float64(s.OutputStmts) / float64(s.SourceStmts)
}

// AddedGlobals is the number of fresh globals the instrumentation added
// (the paper: raise, ts, and for race checking access — a constant).
func (s Stats) AddedGlobals() int { return s.OutputGlobals - s.SourceGlobals }

func (s Stats) String() string {
	return fmt.Sprintf(
		"statements: %d -> %d (%.2fx)\nglobals:    %d -> %d (+%d)\nfunctions:  %d -> %d",
		s.SourceStmts, s.OutputStmts, s.StmtBlowup(),
		s.SourceGlobals, s.OutputGlobals, s.AddedGlobals(),
		s.SourceFuncs, s.OutputFuncs)
}

// Measure computes the blowup statistics for a source program and its
// transformation output.
func Measure(src, out *ast.Program) Stats {
	return Stats{
		SourceStmts:   ast.CountStmts(src),
		OutputStmts:   ast.CountStmts(out),
		SourceGlobals: len(src.Globals),
		OutputGlobals: len(out.Globals),
		SourceFuncs:   len(src.Funcs),
		OutputFuncs:   len(out.Funcs),
	}
}
