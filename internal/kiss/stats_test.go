package kiss

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/randprog"
)

// TestConstantBlowupClaim machine-checks Section 4's complexity claim on
// the random-program population: the transformation's statement blowup is
// bounded by a constant factor (independent of program size), and the
// number of added globals is a small constant.
func TestConstantBlowupClaim(t *testing.T) {
	// The per-statement instrumentation is schedule();choice{skip[]RAISE}
	// plus call/async epilogues; each source statement maps to a bounded
	// number of output statements. The bound below is generous; the point
	// is that it does not grow with program size.
	const maxFactor = 14.0
	worst := 0.0
	for seed := int64(0); seed < 80; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		lower.Program(p)
		for _, maxTS := range []int{0, 2} {
			out, err := Transform(p, Options{MaxTS: maxTS})
			if err != nil {
				t.Fatal(err)
			}
			st := Measure(p, out)
			if f := st.StmtBlowup(); f > worst {
				worst = f
			}
			if st.StmtBlowup() > maxFactor {
				t.Errorf("seed %d ts %d: statement blowup %.1fx exceeds the constant bound %v\n%s",
					seed, maxTS, st.StmtBlowup(), maxFactor, st)
			}
			// "adds a small constant number of global variables": exactly
			// one (raise) in assertion mode.
			if st.AddedGlobals() != 1 {
				t.Errorf("seed %d: %d globals added, want 1 (raise)", seed, st.AddedGlobals())
			}
		}
	}
	t.Logf("worst statement blowup over the population: %.2fx", worst)
}

// TestRaceModeAddsTwoGlobals: raise + access.
func TestRaceModeAddsTwoGlobals(t *testing.T) {
	p := parseLowered(t, `var g; func main() { g = 1; }`)
	out, err := TransformRace(p, ast.RaceTarget{Global: "g"}, Options{MaxTS: 0})
	if err != nil {
		t.Fatal(err)
	}
	st := Measure(p, out)
	if st.AddedGlobals() != 2 {
		t.Errorf("race mode added %d globals, want 2 (raise + access)", st.AddedGlobals())
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

// TestBlowupIndependentOfSize: the factor on a large program is no worse
// than on a small one (within noise), i.e. the blowup really is constant,
// not size-dependent.
func TestBlowupIndependentOfSize(t *testing.T) {
	factor := func(n int) float64 {
		src := "var g;\n"
		src += "func main() {\n"
		for i := 0; i < n; i++ {
			src += "  g = g + 1;\n"
		}
		src += "}\n"
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		lower.Program(p)
		out, err := Transform(p, Options{MaxTS: 1})
		if err != nil {
			t.Fatal(err)
		}
		return Measure(p, out).StmtBlowup()
	}
	small := factor(5)
	large := factor(500)
	if large > small*1.2 {
		t.Errorf("blowup grows with size: %.2fx at 5 stmts, %.2fx at 500", small, large)
	}
}
