package kiss

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/sema"
)

// FuzzTransform drives the whole front end plus both transformations with
// arbitrary source text: any program that parses and checks must
// transform without panicking, and the output must be a well-formed
// core-form sequential program that compiles.
//
// Run long with: go test -fuzz FuzzTransform ./internal/kiss
func FuzzTransform(f *testing.F) {
	seeds := []string{
		"func main() { skip; }",
		"var g; func w() { g = 1; } func main() { async w(); assert(g == 0); }",
		"record R { f; } func main() { var e; e = new R; e->f = 1; }",
		"var l; func main() { atomic { assume(l == 0); l = 1; } }",
		"func f(a) { return a; } func main() { var v; v = f(3); }",
		"var g; func main() { benign { g = 1; } }",
		"func main() { choice { { skip; } [] { skip; } } }",
	}
	for _, s := range seeds {
		f.Add(s, uint8(1))
	}
	f.Fuzz(func(t *testing.T, src string, tsRaw uint8) {
		p, err := parser.Parse(src)
		if err != nil {
			return
		}
		if sema.Check(p, sema.Source) != nil {
			return
		}
		lower.Program(p)
		maxTS := int(tsRaw % 3)

		out, err := Transform(p, Options{MaxTS: maxTS})
		if err != nil {
			// Only the reserved-name restriction may reject a valid
			// source program.
			if !hasReservedNames(p) {
				t.Fatalf("transform rejected a valid program: %v\n%s", err, src)
			}
			return
		}
		if err := sema.Check(out, sema.Transformed); err != nil {
			t.Fatalf("transformed program ill-formed: %v", err)
		}
		if ok, why := lower.IsCore(out); !ok {
			t.Fatalf("transformed program not core: %s", why)
		}
		if _, err := sem.Compile(out); err != nil {
			t.Fatalf("transformed program does not compile: %v", err)
		}

		// Race mode on the first global, if any.
		if len(p.Globals) > 0 {
			rout, err := TransformRace(p, ast.RaceTarget{Global: p.Globals[0].Name}, Options{MaxTS: maxTS})
			if err != nil {
				return
			}
			if _, err := sem.Compile(rout); err != nil {
				t.Fatalf("race-transformed program does not compile: %v", err)
			}
		}
	})
}

func hasReservedNames(p *ast.Program) bool {
	for _, g := range p.Globals {
		if len(g.Name) >= 2 && g.Name[:2] == "__" {
			return true
		}
	}
	for _, fn := range p.Funcs {
		if len(fn.Name) >= 2 && fn.Name[:2] == "__" {
			return true
		}
	}
	return false
}
