// Package lockset implements a static lockset-based race detector for the
// parallel language — the style of analysis behind the tools the KISS
// paper positions itself against (Section 7: Warlock, RacerX; Section 6.1:
// "Most existing race-detection tools, both static and dynamic, are based
// on the lockset algorithm which can handle only the simplest
// synchronization mechanism of locks").
//
// It serves two purposes in this reproduction:
//
//  1. A baseline for the flexibility comparison of Section 6.1: the
//     lockset discipline cannot model events, interlocked operations, or
//     reference-counting protocols, so it flags fields KISS proves
//     race-free — quantified in the corpus comparison experiment.
//  2. A sound-for-lock-discipline prefilter: fields whose every access
//     holds a common lock need no model checking (related to the paper's
//     plan to use atomicity reasoning to prune warnings).
//
// The analysis is flow-sensitive within a function and syntactic about
// lock identities: a lock is named by the address expression passed to an
// acquire/release routine (&global or &base->field, with the base's
// record types resolved by the alias analysis), or by the atomic
// test-and-set idiom on such an address. Accesses inside atomic blocks
// are treated as self-synchronized (they cannot race under the language
// semantics, matching the KISS instrumentation which skips them).
package lockset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Config names the lock API. The defaults cover the winmodel routines and
// the paper's lock_acquire/lock_release.
type Config struct {
	AcquireFns []string
	ReleaseFns []string
}

// DefaultConfig covers winmodel and the paper's lock names.
var DefaultConfig = Config{
	AcquireFns: []string{"KeAcquireSpinLock", "lock_acquire"},
	ReleaseFns: []string{"KeReleaseSpinLock", "lock_release"},
}

// Lock identifies a lock by its address shape.
type Lock struct {
	Global string // &g
	Record string // &p->f : any record type p may point to
	Field  string
}

func (l Lock) String() string {
	if l.Global != "" {
		return "&" + l.Global
	}
	return "&" + l.Record + "." + l.Field
}

// Access is one field or global access with the lockset held at it.
type Access struct {
	Fn     string
	Pos    ast.Pos
	Write  bool
	Atomic bool // inside an atomic block (self-synchronized)
	Held   []Lock
}

// Target identifies what is being accessed (same shapes as race targets).
type Target struct {
	Global string
	Record string
	Field  string
}

func (t Target) String() string {
	if t.Global != "" {
		return t.Global
	}
	return t.Record + "." + t.Field
}

// Verdict classifies one target.
type Verdict int

const (
	// Unshared: at most one function accesses the target, or it is only
	// read.
	Unshared Verdict = iota
	// Protected: every non-atomic access holds a common lock.
	Protected
	// Racy: conflicting accesses exist with disjoint locksets.
	Racy
)

func (v Verdict) String() string {
	switch v {
	case Unshared:
		return "unshared"
	case Protected:
		return "protected"
	default:
		return "racy"
	}
}

// Report is the analysis result.
type Report struct {
	// Accesses maps each target to its accesses, in program order.
	Accesses map[Target][]Access
	// Verdicts maps each accessed target to its classification.
	Verdicts map[Target]Verdict
}

// Racy returns the targets classified Racy, sorted by name.
func (r *Report) Racy() []Target {
	var out []Target
	for t, v := range r.Verdicts {
		if v == Racy {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// recordsOf resolves the record types a variable may point to, using a
// tiny flow-insensitive local resolution: parameters and locals assigned
// `new R` or flowing from calls are looked up via assignment scanning.
// For the driver models a single pass suffices (extension pointers flow
// directly from new/params); unresolvable bases map to every record that
// has the field, which is conservative toward Racy.
type resolver struct {
	prog *ast.Program
	// varRecs[fn][v] = set of record names v may point to
	varRecs map[string]map[string]map[string]bool
}

func newResolver(p *ast.Program) *resolver {
	r := &resolver{prog: p, varRecs: map[string]map[string]map[string]bool{}}
	for _, f := range p.Funcs {
		r.varRecs[f.Name] = map[string]map[string]bool{}
	}
	// Iterate to a fixpoint: new R, copies, parameter flow from direct
	// calls and asyncs.
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
				switch s := s.(type) {
				case *ast.AssignStmt:
					lhs, ok := s.Lhs.(*ast.VarExpr)
					if !ok {
						return true
					}
					switch rhs := s.Rhs.(type) {
					case *ast.NewExpr:
						changed = r.add(f.Name, lhs.Name, rhs.Record) || changed
					case *ast.VarExpr:
						for rec := range r.recs(f.Name, rhs.Name) {
							changed = r.add(f.Name, lhs.Name, rec) || changed
						}
					}
				case *ast.CallStmt:
					changed = r.flowCall(f.Name, s.Fn, s.Args) || changed
				case *ast.AsyncStmt:
					changed = r.flowCall(f.Name, s.Fn, s.Args) || changed
				}
				return true
			})
		}
	}
	return r
}

func (r *resolver) add(fn, v, rec string) bool {
	m := r.varRecs[fn]
	if m[v] == nil {
		m[v] = map[string]bool{}
	}
	if m[v][rec] {
		return false
	}
	m[v][rec] = true
	return true
}

func (r *resolver) recs(fn, v string) map[string]bool {
	return r.varRecs[fn][v]
}

func (r *resolver) flowCall(caller string, fnExpr ast.Expr, args []ast.Expr) bool {
	fl, ok := fnExpr.(*ast.FuncLit)
	if !ok {
		return false
	}
	callee := r.prog.FindFunc(fl.Name)
	if callee == nil {
		return false
	}
	changed := false
	for i, a := range args {
		if i >= len(callee.Params) {
			break
		}
		v, ok := a.(*ast.VarExpr)
		if !ok {
			continue
		}
		for rec := range r.recs(caller, v.Name) {
			changed = r.add(fl.Name, callee.Params[i], rec) || changed
		}
	}
	return changed
}

// lockOf maps an acquire/release argument to a lock identity.
func (r *resolver) lockOf(fn string, arg ast.Expr) (Lock, bool) {
	switch a := arg.(type) {
	case *ast.AddrOfExpr:
		return Lock{Global: a.Name}, true
	case *ast.AddrFieldExpr:
		base, ok := a.X.(*ast.VarExpr)
		if !ok {
			return Lock{}, false
		}
		recs := r.recs(fn, base.Name)
		if len(recs) != 1 {
			// ambiguous or unknown base: give up on naming this lock
			return Lock{}, false
		}
		for rec := range recs {
			return Lock{Record: rec, Field: a.Field}, true
		}
	case *ast.VarExpr:
		// a variable holding a lock address: not resolved syntactically
		return Lock{}, false
	}
	return Lock{}, false
}

// Analyze runs the lockset analysis.
func Analyze(p *ast.Program, cfg Config) *Report {
	if len(cfg.AcquireFns) == 0 {
		cfg = DefaultConfig
	}
	acquire := map[string]bool{}
	for _, f := range cfg.AcquireFns {
		acquire[f] = true
	}
	release := map[string]bool{}
	for _, f := range cfg.ReleaseFns {
		release[f] = true
	}

	res := newResolver(p)
	rep := &Report{
		Accesses: map[Target][]Access{},
		Verdicts: map[Target]Verdict{},
	}

	for _, f := range p.Funcs {
		a := &analyzer{prog: p, res: res, rep: rep, fn: f.Name,
			acquire: acquire, release: release, held: map[Lock]bool{}}
		a.block(f.Body, false)
	}

	rep.classify()
	return rep
}

type analyzer struct {
	prog             *ast.Program
	res              *resolver
	rep              *Report
	fn               string
	acquire, release map[string]bool
	held             map[Lock]bool
}

func (a *analyzer) heldSnapshot() []Lock {
	out := make([]Lock, 0, len(a.held))
	for l := range a.held {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (a *analyzer) record(t Target, write, atomic bool, pos ast.Pos) {
	a.rep.Accesses[t] = append(a.rep.Accesses[t], Access{
		Fn: a.fn, Pos: pos, Write: write, Atomic: atomic, Held: a.heldSnapshot(),
	})
}

// targetsOf maps an access expression to targets.
func (a *analyzer) targetsOf(e ast.Expr) []Target {
	switch e := e.(type) {
	case *ast.VarExpr:
		if a.prog.FindGlobal(e.Name) != nil && !a.isLocal(e.Name) {
			return []Target{{Global: e.Name}}
		}
	case *ast.FieldExpr:
		base, ok := e.X.(*ast.VarExpr)
		if !ok {
			return nil
		}
		recs := a.res.recs(a.fn, base.Name)
		if len(recs) == 0 {
			// Unknown base: conservatively every record with the field.
			var out []Target
			for _, r := range a.prog.Records {
				if r.FieldIndex(e.Field) >= 0 {
					out = append(out, Target{Record: r.Name, Field: e.Field})
				}
			}
			return out
		}
		var out []Target
		for rec := range recs {
			out = append(out, Target{Record: rec, Field: e.Field})
		}
		return out
	}
	return nil
}

func (a *analyzer) isLocal(name string) bool {
	f := a.prog.FindFunc(a.fn)
	if f == nil {
		return false
	}
	for _, p := range f.Params {
		if p == name {
			return true
		}
	}
	for _, l := range f.Locals {
		if l.Name == name {
			return true
		}
	}
	return false
}

// exprReads records read accesses in an expression tree.
func (a *analyzer) exprReads(e ast.Expr, atomic bool) {
	switch e := e.(type) {
	case nil:
	case *ast.VarExpr:
		for _, t := range a.targetsOf(e) {
			a.record(t, false, atomic, e.Pos)
		}
	case *ast.FieldExpr:
		a.exprReads(e.X, atomic)
		for _, t := range a.targetsOf(e) {
			a.record(t, false, atomic, e.Pos)
		}
	case *ast.DerefExpr:
		a.exprReads(e.X, atomic)
		// Reads through pointers are not tracked by the syntactic lockset
		// analysis (one of its blind spots vs. KISS).
	case *ast.AddrFieldExpr:
		a.exprReads(e.X, atomic)
	case *ast.UnaryExpr:
		a.exprReads(e.X, atomic)
	case *ast.BinaryExpr:
		a.exprReads(e.X, atomic)
		a.exprReads(e.Y, atomic)
	case *ast.CallExpr:
		for _, arg := range e.Args {
			a.exprReads(arg, atomic)
		}
	case *ast.RaceCellExpr:
		a.exprReads(e.X, atomic)
	}
}

func (a *analyzer) block(b *ast.Block, atomic bool) {
	for _, s := range b.Stmts {
		a.stmt(s, atomic)
	}
}

func (a *analyzer) stmt(s ast.Stmt, atomic bool) {
	switch s := s.(type) {
	case *ast.Block:
		a.block(s, atomic)
	case *ast.AssignStmt:
		a.exprReads(s.Rhs, atomic)
		switch l := s.Lhs.(type) {
		case *ast.VarExpr, *ast.FieldExpr:
			if fe, ok := l.(*ast.FieldExpr); ok {
				a.exprReads(fe.X, atomic)
			}
			for _, t := range a.targetsOf(l.(ast.Expr)) {
				a.record(t, true, atomic, s.Pos)
			}
		case *ast.DerefExpr:
			a.exprReads(l.X, atomic)
		}
	case *ast.AssertStmt:
		a.exprReads(s.Cond, atomic)
	case *ast.AssumeStmt:
		a.exprReads(s.Cond, atomic)
	case *ast.AtomicStmt:
		a.block(s.Body, true)
	case *ast.BenignStmt:
		// Benign-annotated accesses are exempt from race reporting, for
		// parity with the KISS instrumentation.
		a.skipBlock(s.Body, atomic)
	case *ast.CallStmt:
		a.call(s.Fn, s.Args, atomic, s.Pos)
	case *ast.AsyncStmt:
		for _, arg := range s.Args {
			a.exprReads(arg, atomic)
		}
	case *ast.ReturnStmt:
		a.exprReads(s.Value, atomic)
	case *ast.IfStmt:
		a.exprReads(s.Cond, atomic)
		a.branchJoin([]*ast.Block{s.Then, s.Else}, atomic)
	case *ast.WhileStmt:
		a.exprReads(s.Cond, atomic)
		a.branchJoin([]*ast.Block{s.Body}, atomic)
	case *ast.ChoiceStmt:
		a.branchJoin(s.Branches, atomic)
	case *ast.IterStmt:
		a.branchJoin([]*ast.Block{s.Body}, atomic)
	}
}

// skipBlock records no accesses but still tracks lock operations inside a
// benign region (the annotation exempts accesses, not synchronization).
func (a *analyzer) skipBlock(b *ast.Block, atomic bool) {
	ast.WalkStmts(b, func(s ast.Stmt) bool {
		if c, ok := s.(*ast.CallStmt); ok {
			a.lockOp(c.Fn, c.Args)
		}
		return true
	})
	_ = atomic
}

// branchJoin analyzes branches with copies of the current lockset and
// joins by intersection (a lock counts as held after the statement only
// if held on every path).
func (a *analyzer) branchJoin(branches []*ast.Block, atomic bool) {
	before := a.heldSnapshot()
	var after []map[Lock]bool
	for _, b := range branches {
		a.held = map[Lock]bool{}
		for _, l := range before {
			a.held[l] = true
		}
		if b != nil {
			a.block(b, atomic)
		}
		after = append(after, a.held)
	}
	joined := map[Lock]bool{}
	if len(after) > 0 {
		for l := range after[0] {
			inAll := true
			for _, m := range after[1:] {
				if !m[l] {
					inAll = false
					break
				}
			}
			if inAll {
				joined[l] = true
			}
		}
	}
	a.held = joined
}

func (a *analyzer) call(fnExpr ast.Expr, args []ast.Expr, atomic bool, pos ast.Pos) {
	if a.lockOp(fnExpr, args) {
		return
	}
	for _, arg := range args {
		a.exprReads(arg, atomic)
	}
	_ = pos
}

// lockOp updates the lockset if the call is an acquire or release;
// reports whether it was one.
func (a *analyzer) lockOp(fnExpr ast.Expr, args []ast.Expr) bool {
	fl, ok := fnExpr.(*ast.FuncLit)
	if !ok || len(args) != 1 {
		return false
	}
	if a.acquire[fl.Name] {
		if l, ok := a.res.lockOf(a.fn, args[0]); ok {
			a.held[l] = true
		}
		return true
	}
	if a.release[fl.Name] {
		if l, ok := a.res.lockOf(a.fn, args[0]); ok {
			delete(a.held, l)
		}
		return true
	}
	return false
}

// classify computes verdicts from the collected accesses, Eraser-style:
// for each target, intersect the locksets of all non-atomic accesses; if
// there is a conflicting pair (>= 1 write, different functions or the
// same function reachable twice) and the intersection is empty, the
// target is Racy.
func (r *Report) classify() {
	for t, accs := range r.Accesses {
		writes, reads := 0, 0
		fns := map[string]bool{}
		var candidate []Access
		for _, a := range accs {
			if a.Atomic {
				continue // self-synchronized
			}
			candidate = append(candidate, a)
			fns[a.Fn] = true
			if a.Write {
				writes++
			} else {
				reads++
			}
		}
		switch {
		case len(candidate) == 0 || writes == 0:
			r.Verdicts[t] = Unshared
			continue
		case len(candidate) == 1:
			r.Verdicts[t] = Unshared
			continue
		}
		// Intersect locksets.
		common := map[Lock]bool{}
		for _, l := range candidate[0].Held {
			common[l] = true
		}
		for _, a := range candidate[1:] {
			next := map[Lock]bool{}
			for _, l := range a.Held {
				if common[l] {
					next[l] = true
				}
			}
			common = next
		}
		if len(common) > 0 {
			r.Verdicts[t] = Protected
		} else {
			r.Verdicts[t] = Racy
		}
	}
}

// Format renders the report.
func (r *Report) Format() string {
	var b strings.Builder
	var targets []Target
	for t := range r.Verdicts {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].String() < targets[j].String() })
	for _, t := range targets {
		fmt.Fprintf(&b, "%-32s %s (%d accesses)\n", t, r.Verdicts[t], len(r.Accesses[t]))
	}
	return b.String()
}
