package lockset

import (
	"testing"

	"repro/internal/parser"
)

func analyze(t *testing.T, src string) *Report {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(p, DefaultConfig)
}

const lockLib = `
func KeAcquireSpinLock(l) { atomic { assume(*l == 0); *l = 1; } }
func KeReleaseSpinLock(l) { atomic { *l = 0; } }
`

func verdictOf(t *testing.T, r *Report, target Target) Verdict {
	t.Helper()
	v, ok := r.Verdicts[target]
	if !ok {
		t.Fatalf("target %s not in report: %s", target, r.Format())
	}
	return v
}

func TestProtectedField(t *testing.T) {
	r := analyze(t, lockLib+`
record EXT { lock; count; }
func a(e) {
  KeAcquireSpinLock(&e->lock);
  e->count = 1;
  KeReleaseSpinLock(&e->lock);
}
func b(e) {
  var v;
  KeAcquireSpinLock(&e->lock);
  v = e->count;
  KeReleaseSpinLock(&e->lock);
}
func main() {
  var e;
  e = new EXT;
  async a(e);
  b(e);
}
`)
	if v := verdictOf(t, r, Target{Record: "EXT", Field: "count"}); v != Protected {
		t.Errorf("count: %v, want protected\n%s", v, r.Format())
	}
}

func TestRacyField(t *testing.T) {
	r := analyze(t, lockLib+`
record EXT { lock; count; }
func a(e) {
  e->count = 1;     // unprotected write
}
func b(e) {
  var v;
  KeAcquireSpinLock(&e->lock);
  v = e->count;
  KeReleaseSpinLock(&e->lock);
}
func main() {
  var e;
  e = new EXT;
  async a(e);
  b(e);
}
`)
	if v := verdictOf(t, r, Target{Record: "EXT", Field: "count"}); v != Racy {
		t.Errorf("count: %v, want racy\n%s", v, r.Format())
	}
}

func TestReadOnlyIsUnshared(t *testing.T) {
	r := analyze(t, `
record EXT { cfg; }
func a(e) { var v; v = e->cfg; }
func b(e) { var v; v = e->cfg; }
func main() {
  var e;
  e = new EXT;
  async a(e);
  b(e);
}
`)
	if v := verdictOf(t, r, Target{Record: "EXT", Field: "cfg"}); v != Unshared {
		t.Errorf("cfg: %v, want unshared (read-only)", v)
	}
}

func TestAtomicAccessesSelfSynchronized(t *testing.T) {
	r := analyze(t, `
var count;
func a() { atomic { count = count + 1; } }
func b() { atomic { count = count - 1; } }
func main() { async a(); b(); }
`)
	if v := verdictOf(t, r, Target{Global: "count"}); v == Racy {
		t.Errorf("atomic-only accesses reported racy\n%s", r.Format())
	}
}

func TestGlobalLockProtectsGlobal(t *testing.T) {
	r := analyze(t, lockLib+`
var lock;
var shared;
func a() {
  KeAcquireSpinLock(&lock);
  shared = 1;
  KeReleaseSpinLock(&lock);
}
func b() {
  var v;
  KeAcquireSpinLock(&lock);
  v = shared;
  KeReleaseSpinLock(&lock);
}
func main() { async a(); b(); }
`)
	if v := verdictOf(t, r, Target{Global: "shared"}); v != Protected {
		t.Errorf("shared: %v, want protected\n%s", v, r.Format())
	}
}

func TestDifferentLocksDoNotProtect(t *testing.T) {
	r := analyze(t, lockLib+`
var lock1;
var lock2;
var shared;
func a() {
  KeAcquireSpinLock(&lock1);
  shared = 1;
  KeReleaseSpinLock(&lock1);
}
func b() {
  var v;
  KeAcquireSpinLock(&lock2);
  v = shared;
  KeReleaseSpinLock(&lock2);
}
func main() { async a(); b(); }
`)
	if v := verdictOf(t, r, Target{Global: "shared"}); v != Racy {
		t.Errorf("shared: %v, want racy (disjoint locksets)", v)
	}
}

func TestBranchJoinIntersectsLocks(t *testing.T) {
	// The lock is only acquired on one branch: after the join it must not
	// count as held.
	r := analyze(t, lockLib+`
var lock;
var cond;
var shared;
func a() {
  if (cond == 1) {
    KeAcquireSpinLock(&lock);
  } else {
    skip;
  }
  shared = 1;
}
func b() {
  var v;
  KeAcquireSpinLock(&lock);
  v = shared;
  KeReleaseSpinLock(&lock);
}
func main() { async a(); b(); }
`)
	if v := verdictOf(t, r, Target{Global: "shared"}); v != Racy {
		t.Errorf("shared: %v, want racy (conditional acquire)", v)
	}
}

func TestBenignAnnotationRespected(t *testing.T) {
	r := analyze(t, lockLib+`
record EXT { lock; OpenCount; }
func a(e) {
  KeAcquireSpinLock(&e->lock);
  e->OpenCount = e->OpenCount + 1;
  KeReleaseSpinLock(&e->lock);
}
func b(e) {
  var v;
  benign {
    v = e->OpenCount;
  }
}
func main() {
  var e;
  e = new EXT;
  async a(e);
  b(e);
}
`)
	if v := verdictOf(t, r, Target{Record: "EXT", Field: "OpenCount"}); v == Racy {
		t.Errorf("benign-annotated read still reported racy\n%s", r.Format())
	}
}

// TestLocksetBlindSpotEvents documents the imprecision the paper
// criticizes: an event-synchronized field is flagged racy by the lockset
// discipline even though KISS proves it safe (the winmodel tests check
// the latter).
func TestLocksetBlindSpotEvents(t *testing.T) {
	r := analyze(t, `
func KeSetEvent(e) { atomic { *e = 1; } }
func KeWaitForSingleObject(e) { assume(*e == 1); }
record EXT { ev; data; }
func producer(e) {
  e->data = 42;
  KeSetEvent(&e->ev);
}
func consumer(e) {
  var v;
  KeWaitForSingleObject(&e->ev);
  v = e->data;
}
func main() {
  var e;
  e = new EXT;
  async producer(e);
  consumer(e);
}
`)
	if v := verdictOf(t, r, Target{Record: "EXT", Field: "data"}); v != Racy {
		t.Errorf("expected the lockset baseline to (spuriously) flag the event-synchronized field, got %v", v)
	}
}
