package lexer

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestKeywordsAndIdentifiers(t *testing.T) {
	got := kinds(t, "record var func assert assume atomic async return if else while choice iter skip new true false null foo _bar x9")
	want := []Kind{KwRecord, KwVar, KwFunc, KwAssert, KwAssume, KwAtomic,
		KwAsync, KwReturn, KwIf, KwElse, KwWhile, KwChoice, KwIter, KwSkip,
		KwNew, KwTrue, KwFalse, KwNull, IDENT, IDENT, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "{ } ( ) ; , = == != < <= > >= + - * ! && || & -> [] @")
	want := []Kind{LBrace, RBrace, LParen, RParen, Semi, Comma, Assign,
		EqEq, NotEq, Lt, Le, Gt, Ge, Plus, Minus, Star, Bang, AndAnd, OrOr,
		Amp, Arrow, ChoiceOr, At, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIntegerLiterals(t *testing.T) {
	toks, err := Tokenize("0 42 123456789")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 42, 123456789}
	for i, w := range want {
		if toks[i].Kind != INT || toks[i].Int != w {
			t.Errorf("token %d: got %v, want INT %d", i, toks[i], w)
		}
	}
}

func TestNegativeNumbersAreMinusThenInt(t *testing.T) {
	got := kinds(t, "-1")
	want := []Kind{Minus, INT, EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\nb /* block\ncomment */ c")
	want := []Kind{IDENT, IDENT, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := Tokenize("a /* never closed"); err == nil {
		t.Fatal("want error for unterminated block comment")
	}
}

func TestArrowVsMinus(t *testing.T) {
	got := kinds(t, "a->b a-b a - >")
	want := []Kind{IDENT, Arrow, IDENT, IDENT, Minus, IDENT, IDENT, Minus, Gt, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Tokenize("abc\n  $")
	if err == nil {
		t.Fatal("want error for '$'")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if le.Pos.Line != 2 || le.Pos.Col != 3 {
		t.Errorf("error at %v, want 2:3", le.Pos)
	}
}

func TestUnexpectedCharacters(t *testing.T) {
	for _, src := range []string{"$", "#", "%", "[x", "|x", "?"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): want error", src)
		}
	}
}

// TestQuickIdentifiersRoundTrip: any generated identifier-shaped string
// lexes to a single IDENT (or keyword) token with the same text.
func TestQuickIdentifiersRoundTrip(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
	digits := "0123456789"
	f := func(seed uint32, length uint8) bool {
		n := int(length%12) + 1
		var b strings.Builder
		x := seed
		for i := 0; i < n; i++ {
			x = x*1664525 + 1013904223
			if i == 0 {
				b.WriteByte(letters[int(x)%len(letters)])
			} else {
				all := letters + digits
				b.WriteByte(all[int(x)%len(all)])
			}
		}
		text := b.String()
		toks, err := Tokenize(text)
		if err != nil || len(toks) != 2 {
			return false
		}
		if toks[0].Kind == IDENT {
			return toks[0].Text == text
		}
		_, isKw := keywords[text]
		return isKw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
