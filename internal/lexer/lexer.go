// Package lexer tokenizes the concrete syntax of the parallel language.
// It is a conventional hand-written scanner with single-token lookahead
// friendliness (the parser pulls tokens one at a time), line/column
// tracking, and support for // line and /* block */ comments.
package lexer

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	// keywords
	KwRecord
	KwVar
	KwFunc
	KwAssert
	KwAssume
	KwAtomic
	KwBenign
	KwAsync
	KwReturn
	KwIf
	KwElse
	KwWhile
	KwChoice
	KwIter
	KwSkip
	KwNew
	KwTrue
	KwFalse
	KwNull
	// punctuation and operators
	LBrace   // {
	RBrace   // }
	LParen   // (
	RParen   // )
	Semi     // ;
	Comma    // ,
	Assign   // =
	EqEq     // ==
	NotEq    // !=
	Lt       // <
	Le       // <=
	Gt       // >
	Ge       // >=
	Plus     // +
	Minus    // -
	Star     // *
	Bang     // !
	AndAnd   // &&
	OrOr     // ||
	Amp      // &
	Arrow    // ->
	ChoiceOr // []
	At       // @
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INT: "integer",
	KwRecord: "'record'", KwVar: "'var'", KwFunc: "'func'", KwAssert: "'assert'",
	KwAssume: "'assume'", KwAtomic: "'atomic'", KwBenign: "'benign'", KwAsync: "'async'",
	KwReturn: "'return'", KwIf: "'if'", KwElse: "'else'", KwWhile: "'while'",
	KwChoice: "'choice'", KwIter: "'iter'", KwSkip: "'skip'", KwNew: "'new'",
	KwTrue: "'true'", KwFalse: "'false'", KwNull: "'null'",
	LBrace: "'{'", RBrace: "'}'", LParen: "'('", RParen: "')'", Semi: "';'",
	Comma: "','", Assign: "'='", EqEq: "'=='", NotEq: "'!='", Lt: "'<'",
	Le: "'<='", Gt: "'>'", Ge: "'>='", Plus: "'+'", Minus: "'-'", Star: "'*'",
	Bang: "'!'", AndAnd: "'&&'", OrOr: "'||'", Amp: "'&'", Arrow: "'->'",
	ChoiceOr: "'[]'", At: "'@'",
}

// String returns a human-readable name for the kind, for error messages.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"record": KwRecord, "var": KwVar, "func": KwFunc, "assert": KwAssert,
	"assume": KwAssume, "atomic": KwAtomic, "benign": KwBenign, "async": KwAsync,
	"return": KwReturn, "if": KwIf, "else": KwElse, "while": KwWhile,
	"choice": KwChoice, "iter": KwIter, "skip": KwSkip, "new": KwNew,
	"true": KwTrue, "false": KwFalse, "null": KwNull,
}

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT; decoded digits for INT
	Int  int64  // value for INT
	Pos  ast.Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INT:
		return fmt.Sprintf("integer %d", t.Int)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical error with position information.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans an input string into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens up to and including
// the EOF token, or the first lexical error.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() ast.Pos { return ast.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByte2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errorf(pos ast.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		return lx.ident(pos), nil
	case c >= '0' && c <= '9':
		return lx.number(pos)
	}
	lx.advance()
	two := func(second byte, withKind, withoutKind Kind) Token {
		if lx.peekByte() == second {
			lx.advance()
			return Token{Kind: withKind, Pos: pos}
		}
		return Token{Kind: withoutKind, Pos: pos}
	}
	switch c {
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case '=':
		return two('=', EqEq, Assign), nil
	case '!':
		return two('=', NotEq, Bang), nil
	case '<':
		return two('=', Le, Lt), nil
	case '>':
		return two('=', Ge, Gt), nil
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		if lx.peekByte() == '>' {
			lx.advance()
			return Token{Kind: Arrow, Pos: pos}, nil
		}
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '&':
		return two('&', AndAnd, Amp), nil
	case '|':
		if lx.peekByte() == '|' {
			lx.advance()
			return Token{Kind: OrOr, Pos: pos}, nil
		}
		return Token{}, lx.errorf(pos, "unexpected character '|'")
	case '[':
		if lx.peekByte() == ']' {
			lx.advance()
			return Token{Kind: ChoiceOr, Pos: pos}, nil
		}
		return Token{}, lx.errorf(pos, "unexpected character '[' (expected '[]')")
	case '@':
		return Token{Kind: At, Pos: pos}, nil
	}
	return Token{}, lx.errorf(pos, "unexpected character %q", string(rune(c)))
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByte2() == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByte2() == '*':
			pos := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByte2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errorf(pos, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (lx *Lexer) ident(pos ast.Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentCont(lx.peekByte()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if k, ok := keywords[text]; ok {
		return Token{Kind: k, Text: text, Pos: pos}
	}
	return Token{Kind: IDENT, Text: text, Pos: pos}
}

func (lx *Lexer) number(pos ast.Pos) (Token, error) {
	start := lx.off
	for lx.off < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, lx.errorf(pos, "integer literal %s out of range", text)
	}
	return Token{Kind: INT, Text: text, Int: v, Pos: pos}, nil
}
