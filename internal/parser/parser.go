// Package parser implements a recursive-descent parser for the concrete
// syntax of the parallel language. The grammar follows Figure 3 of the KISS
// paper, plus record/field/new extensions, if/while sugar, rich expressions
// (hoisted to three-address form by package lower), and the __ts_*/
// __race_cell spellings of the KISS intrinsics so that transformed programs
// printed by ast.Print can be parsed back.
package parser

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
)

// Error is a syntax error with position information.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a complete program from source text. After parsing, bare
// identifiers that name a declared function and are not shadowed by a
// variable are resolved to function-name constants, so direct calls and
// async targets may be written without the explicit '@' sigil.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	resolveFuncNames(prog)
	return prog, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
	// locals of the function currently being parsed; `var` statements
	// anywhere in the body are hoisted here.
	curLocals *[]*ast.VarDecl
	curSeen   map[string]bool
}

func (p *parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *parser) peek() lexer.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k lexer.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return lexer.Token{}, p.errorf("expected %s, found %s", k, p.cur())
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) program() (*ast.Program, error) {
	prog := &ast.Program{}
	for !p.at(lexer.EOF) {
		switch p.cur().Kind {
		case lexer.KwRecord:
			r, err := p.record()
			if err != nil {
				return nil, err
			}
			prog.Records = append(prog.Records, r)
		case lexer.KwVar:
			g, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case lexer.KwFunc:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errorf("expected 'record', 'var' or 'func' at top level, found %s", p.cur())
		}
	}
	return prog, nil
}

func (p *parser) record() (*ast.Record, error) {
	kw := p.next() // 'record'
	name, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LBrace); err != nil {
		return nil, err
	}
	r := &ast.Record{Name: name.Text, Pos: kw.Pos}
	for !p.at(lexer.RBrace) {
		f, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		r.Fields = append(r.Fields, f.Text)
	}
	p.next() // '}'
	return r, nil
}

func (p *parser) varDecl() (*ast.VarDecl, error) {
	kw := p.next() // 'var'
	name, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return &ast.VarDecl{Name: name.Text, Pos: kw.Pos}, nil
}

func (p *parser) funcDecl() (*ast.Func, error) {
	kw := p.next() // 'func'
	name, err := p.expect(lexer.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	f := &ast.Func{Name: name.Text, Pos: kw.Pos}
	for !p.at(lexer.RParen) {
		if len(f.Params) > 0 {
			if _, err := p.expect(lexer.Comma); err != nil {
				return nil, err
			}
		}
		param, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, param.Text)
	}
	p.next() // ')'

	p.curLocals = &f.Locals
	p.curSeen = map[string]bool{}
	defer func() { p.curLocals = nil; p.curSeen = nil }()

	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) block() (*ast.Block, error) {
	lb, err := p.expect(lexer.LBrace)
	if err != nil {
		return nil, err
	}
	b := &ast.Block{Pos: lb.Pos}
	for !p.at(lexer.RBrace) {
		if p.at(lexer.EOF) {
			return nil, p.errorf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil { // var decls hoist and produce no statement
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.next() // '}'
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.KwVar:
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if p.curLocals == nil {
			return nil, &Error{Pos: d.Pos, Msg: "variable declaration outside function"}
		}
		if !p.curSeen[d.Name] {
			p.curSeen[d.Name] = true
			*p.curLocals = append(*p.curLocals, d)
		}
		return nil, nil
	case lexer.KwAssert, lexer.KwAssume:
		p.next()
		if _, err := p.expect(lexer.LParen); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		if tok.Kind == lexer.KwAssert {
			return &ast.AssertStmt{Cond: e, Pos: tok.Pos}, nil
		}
		return &ast.AssumeStmt{Cond: e, Pos: tok.Pos}, nil
	case lexer.KwAtomic:
		p.next()
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ast.AtomicStmt{Body: b, Pos: tok.Pos}, nil
	case lexer.KwBenign:
		p.next()
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ast.BenignStmt{Body: b, Pos: tok.Pos}, nil
	case lexer.KwAsync:
		p.next()
		fn, err := p.postfixExpr()
		if err != nil {
			return nil, err
		}
		call, ok := fn.(*ast.CallExpr)
		if !ok {
			return nil, &Error{Pos: tok.Pos, Msg: "async target must be a call f(args)"}
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.AsyncStmt{Fn: call.Fn, Args: call.Args, Pos: tok.Pos}, nil
	case lexer.KwReturn:
		p.next()
		if p.accept(lexer.Semi) {
			return &ast.ReturnStmt{Pos: tok.Pos}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.ReturnStmt{Value: e, Pos: tok.Pos}, nil
	case lexer.KwIf:
		return p.ifStmt()
	case lexer.KwWhile:
		p.next()
		if _, err := p.expect(lexer.LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ast.WhileStmt{Cond: cond, Body: body, Pos: tok.Pos}, nil
	case lexer.KwChoice:
		p.next()
		if _, err := p.expect(lexer.LBrace); err != nil {
			return nil, err
		}
		c := &ast.ChoiceStmt{Pos: tok.Pos}
		for {
			b, err := p.block()
			if err != nil {
				return nil, err
			}
			c.Branches = append(c.Branches, b)
			if !p.accept(lexer.ChoiceOr) {
				break
			}
		}
		if _, err := p.expect(lexer.RBrace); err != nil {
			return nil, err
		}
		return c, nil
	case lexer.KwIter:
		p.next()
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ast.IterStmt{Body: b, Pos: tok.Pos}, nil
	case lexer.KwSkip:
		p.next()
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.SkipStmt{Pos: tok.Pos}, nil
	case lexer.LBrace:
		return p.block()
	}
	return p.simpleStmt()
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	tok := p.next() // 'if'
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{Cond: cond, Then: then, Pos: tok.Pos}
	if p.accept(lexer.KwElse) {
		if p.at(lexer.KwIf) {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = &ast.Block{Stmts: []ast.Stmt{elif}, Pos: elif.StmtPos()}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

// simpleStmt parses assignments, call statements, and the KISS intrinsic
// statements, all of which begin with an expression.
func (p *parser) simpleStmt() (ast.Stmt, error) {
	tok := p.cur()
	// Intrinsic statements are spelled as calls to reserved names.
	if tok.Kind == lexer.IDENT && p.peek().Kind == lexer.LParen {
		switch tok.Text {
		case "__ts_dispatch":
			p.next()
			p.next()
			if _, err := p.expect(lexer.RParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.Semi); err != nil {
				return nil, err
			}
			return &ast.TsDispatchStmt{Pos: tok.Pos}, nil
		case "__ts_put":
			p.next()
			p.next()
			var args []ast.Expr
			for !p.at(lexer.RParen) {
				if len(args) > 0 {
					if _, err := p.expect(lexer.Comma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.next() // ')'
			if _, err := p.expect(lexer.Semi); err != nil {
				return nil, err
			}
			if len(args) == 0 {
				return nil, &Error{Pos: tok.Pos, Msg: "__ts_put requires a function argument"}
			}
			return &ast.TsPutStmt{Fn: args[0], Args: args[1:], Pos: tok.Pos}, nil
		}
	}

	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(lexer.Assign) {
		if !isLValue(lhs) {
			return nil, &Error{Pos: lhs.ExprPos(), Msg: "left-hand side of assignment must be a variable, *p, or p->f"}
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		// `v = f(args);` at statement level becomes a call statement when
		// the target is a plain variable; other lvalues go through lower.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if v, ok := lhs.(*ast.VarExpr); ok {
				return &ast.CallStmt{Result: v.Name, Fn: call.Fn, Args: call.Args, Pos: tok.Pos}, nil
			}
		}
		return &ast.AssignStmt{Lhs: lhs, Rhs: rhs, Pos: tok.Pos}, nil
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	if call, ok := lhs.(*ast.CallExpr); ok {
		return &ast.CallStmt{Fn: call.Fn, Args: call.Args, Pos: tok.Pos}, nil
	}
	return nil, &Error{Pos: tok.Pos, Msg: "expression statement must be a call"}
}

func isLValue(e ast.Expr) bool {
	switch e.(type) {
	case *ast.VarExpr, *ast.DerefExpr, *ast.FieldExpr:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *parser) expr() (ast.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (ast.Expr, error) {
	return p.binaryLevel([]lexer.Kind{lexer.OrOr}, map[lexer.Kind]string{lexer.OrOr: "||"}, p.andExpr)
}

func (p *parser) andExpr() (ast.Expr, error) {
	return p.binaryLevel([]lexer.Kind{lexer.AndAnd}, map[lexer.Kind]string{lexer.AndAnd: "&&"}, p.eqExpr)
}

func (p *parser) eqExpr() (ast.Expr, error) {
	return p.binaryLevel([]lexer.Kind{lexer.EqEq, lexer.NotEq},
		map[lexer.Kind]string{lexer.EqEq: "==", lexer.NotEq: "!="}, p.relExpr)
}

func (p *parser) relExpr() (ast.Expr, error) {
	return p.binaryLevel([]lexer.Kind{lexer.Lt, lexer.Le, lexer.Gt, lexer.Ge},
		map[lexer.Kind]string{lexer.Lt: "<", lexer.Le: "<=", lexer.Gt: ">", lexer.Ge: ">="}, p.addExpr)
}

func (p *parser) addExpr() (ast.Expr, error) {
	return p.binaryLevel([]lexer.Kind{lexer.Plus, lexer.Minus},
		map[lexer.Kind]string{lexer.Plus: "+", lexer.Minus: "-"}, p.mulExpr)
}

func (p *parser) mulExpr() (ast.Expr, error) {
	return p.binaryLevel([]lexer.Kind{lexer.Star},
		map[lexer.Kind]string{lexer.Star: "*"}, p.unaryExpr)
}

func (p *parser) binaryLevel(kinds []lexer.Kind, ops map[lexer.Kind]string, sub func() (ast.Expr, error)) (ast.Expr, error) {
	x, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, k := range kinds {
			if p.at(k) {
				tok := p.next()
				y, err := sub()
				if err != nil {
					return nil, err
				}
				x = &ast.BinaryExpr{Op: ops[k], X: x, Y: y, Pos: tok.Pos}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.Bang:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: "!", X: x, Pos: tok.Pos}, nil
	case lexer.Minus:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*ast.IntLit); ok {
			return &ast.IntLit{Value: -lit.Value, Pos: tok.Pos}, nil
		}
		return &ast.UnaryExpr{Op: "-", X: x, Pos: tok.Pos}, nil
	case lexer.Star:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.DerefExpr{X: x, Pos: tok.Pos}, nil
	case lexer.Amp:
		p.next()
		x, err := p.postfixExpr()
		if err != nil {
			return nil, err
		}
		switch x := x.(type) {
		case *ast.VarExpr:
			return &ast.AddrOfExpr{Name: x.Name, Pos: tok.Pos}, nil
		case *ast.FieldExpr:
			return &ast.AddrFieldExpr{X: x.X, Field: x.Field, Pos: tok.Pos}, nil
		}
		return nil, &Error{Pos: tok.Pos, Msg: "'&' must be applied to a variable or p->f"}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (ast.Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(lexer.Arrow):
			tok := p.next()
			f, err := p.expect(lexer.IDENT)
			if err != nil {
				return nil, err
			}
			x = &ast.FieldExpr{X: x, Field: f.Text, Pos: tok.Pos}
		case p.at(lexer.LParen):
			tok := p.next()
			var args []ast.Expr
			for !p.at(lexer.RParen) {
				if len(args) > 0 {
					if _, err := p.expect(lexer.Comma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.next() // ')'
			// Intrinsic expressions spelled as calls to reserved names.
			if v, ok := x.(*ast.VarExpr); ok {
				switch v.Name {
				case "__ts_size":
					x = &ast.TsSizeExpr{Pos: v.Pos}
					continue
				case "__race_cell":
					if len(args) != 1 {
						return nil, &Error{Pos: tok.Pos, Msg: "__race_cell takes exactly one argument"}
					}
					x = &ast.RaceCellExpr{X: args[0], Pos: v.Pos}
					continue
				}
			}
			x = &ast.CallExpr{Fn: x, Args: args, Pos: tok.Pos}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (ast.Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case lexer.INT:
		p.next()
		return &ast.IntLit{Value: tok.Int, Pos: tok.Pos}, nil
	case lexer.KwTrue:
		p.next()
		return &ast.BoolLit{Value: true, Pos: tok.Pos}, nil
	case lexer.KwFalse:
		p.next()
		return &ast.BoolLit{Value: false, Pos: tok.Pos}, nil
	case lexer.KwNull:
		p.next()
		return &ast.NullLit{Pos: tok.Pos}, nil
	case lexer.KwNew:
		p.next()
		name, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		return &ast.NewExpr{Record: name.Text, Pos: tok.Pos}, nil
	case lexer.At:
		p.next()
		name, err := p.expect(lexer.IDENT)
		if err != nil {
			return nil, err
		}
		return &ast.FuncLit{Name: name.Text, Pos: tok.Pos}, nil
	case lexer.IDENT:
		p.next()
		return &ast.VarExpr{Name: tok.Text, Pos: tok.Pos}, nil
	case lexer.LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("expected expression, found %s", tok)
}

// ---------------------------------------------------------------------------
// Function-name resolution
// ---------------------------------------------------------------------------

// resolveFuncNames rewrites VarExpr nodes that reference a declared function
// (and are not shadowed by a global, parameter, or local of the enclosing
// function) into FuncLit constants. This lets source programs write direct
// calls `f()` and `async f()` without the '@' sigil.
func resolveFuncNames(p *ast.Program) {
	funcs := map[string]bool{}
	for _, f := range p.Funcs {
		funcs[f.Name] = true
	}
	globals := map[string]bool{}
	for _, g := range p.Globals {
		globals[g.Name] = true
	}
	for _, f := range p.Funcs {
		vars := map[string]bool{}
		for _, param := range f.Params {
			vars[param] = true
		}
		for _, l := range f.Locals {
			vars[l.Name] = true
		}
		isFunc := func(name string) bool {
			return funcs[name] && !vars[name] && !globals[name]
		}
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			ast.WalkExprs(s, func(e ast.Expr) {})
			rewriteStmtExprs(s, func(e ast.Expr) ast.Expr {
				if v, ok := e.(*ast.VarExpr); ok && isFunc(v.Name) {
					return &ast.FuncLit{Name: v.Name, Pos: v.Pos}
				}
				return e
			})
			return true
		})
	}
}

// rewriteStmtExprs applies fn bottom-up to every expression directly held
// by s (not descending into nested statements, which WalkStmts visits).
func rewriteStmtExprs(s ast.Stmt, fn func(ast.Expr) ast.Expr) {
	rw := func(e ast.Expr) ast.Expr { return rewriteExpr(e, fn) }
	switch s := s.(type) {
	case *ast.AssignStmt:
		// An assignment target that is a bare variable must stay a
		// variable reference even when it collides with a function name —
		// rewriting it to a function constant would make the statement
		// unprintable/unparsable. (Semantic checking rejects the
		// undeclared name.) Bases of *p and p->f targets are value reads
		// and are rewritten normally.
		if _, isVar := s.Lhs.(*ast.VarExpr); !isVar {
			s.Lhs = rw(s.Lhs)
		}
		s.Rhs = rw(s.Rhs)
	case *ast.AssertStmt:
		s.Cond = rw(s.Cond)
	case *ast.AssumeStmt:
		s.Cond = rw(s.Cond)
	case *ast.CallStmt:
		s.Fn = rw(s.Fn)
		for i := range s.Args {
			s.Args[i] = rw(s.Args[i])
		}
	case *ast.AsyncStmt:
		s.Fn = rw(s.Fn)
		for i := range s.Args {
			s.Args[i] = rw(s.Args[i])
		}
	case *ast.ReturnStmt:
		if s.Value != nil {
			s.Value = rw(s.Value)
		}
	case *ast.IfStmt:
		s.Cond = rw(s.Cond)
	case *ast.WhileStmt:
		s.Cond = rw(s.Cond)
	case *ast.TsPutStmt:
		s.Fn = rw(s.Fn)
		for i := range s.Args {
			s.Args[i] = rw(s.Args[i])
		}
	}
}

func rewriteExpr(e ast.Expr, fn func(ast.Expr) ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.DerefExpr:
		e.X = rewriteExpr(e.X, fn)
	case *ast.FieldExpr:
		e.X = rewriteExpr(e.X, fn)
	case *ast.AddrFieldExpr:
		e.X = rewriteExpr(e.X, fn)
	case *ast.UnaryExpr:
		e.X = rewriteExpr(e.X, fn)
	case *ast.BinaryExpr:
		e.X = rewriteExpr(e.X, fn)
		e.Y = rewriteExpr(e.Y, fn)
	case *ast.CallExpr:
		e.Fn = rewriteExpr(e.Fn, fn)
		for i := range e.Args {
			e.Args[i] = rewriteExpr(e.Args[i], fn)
		}
	case *ast.RaceCellExpr:
		e.X = rewriteExpr(e.X, fn)
	}
	return fn(e)
}
