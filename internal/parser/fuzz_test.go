package parser

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/lower"
	"repro/internal/sema"
)

// FuzzParse drives the full front end with arbitrary inputs: the parser
// must never panic, and any program it accepts must survive the whole
// front-end pipeline (print/parse fixpoint, well-formedness stability,
// lowering to core form).
//
// Run long with: go test -fuzz FuzzParse ./internal/parser
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func main() { skip; }",
		"record R { f; } var g; func main() { var e; e = new R; e->f = g; }",
		"func main() { if (1 < 2) { skip; } else { skip; } }",
		"func f(a, b) { return a + b; } func main() { var x; x = f(1, 2); }",
		"func w() { return; } func main() { async w(); atomic { skip; } }",
		"func main() { choice { { skip; } [] { skip; } } iter { skip; } }",
		"func main() { benign { skip; } }",
		"var l; func main() { atomic { assume(*(&l) == 0); } }",
		"func main() { __ts_dispatch(); }",
		"record DEVICE_EXTENSION { pendingIo; } func main() { var e; e = new DEVICE_EXTENSION; e->pendingIo = 1; }",
		"func main() { while (true) { skip; } }",
		"func main() { var x; x = -5 * (3 + 2) == 25 && !false || true; }",
		"@#$%^&*",
		"func main() { x = ; }",
		"record R {",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := ast.Print(p)
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted program does not reparse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		printed2 := ast.Print(p2)
		if printed != printed2 {
			t.Fatalf("print/parse not a fixpoint\nfirst:\n%s\nsecond:\n%s", printed, printed2)
		}
		// Lowering must never panic on parsed programs, and its output
		// must be core (lowering runs regardless of semantic validity, as
		// in the production pipeline semantic checking runs first; here we
		// only lower semantically valid programs).
		if sema.Check(p2, sema.Source) == nil {
			lower.Program(p2)
			if ok, why := lower.IsCore(p2); !ok {
				t.Fatalf("lowered program not core: %s", why)
			}
		}
	})
}
