package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestParseDeclarations(t *testing.T) {
	p := parse(t, `
record R { a; b; }
var g;
var h;
func main() { skip; }
func f(x, y) { return x; }
`)
	if len(p.Records) != 1 || p.Records[0].Name != "R" || len(p.Records[0].Fields) != 2 {
		t.Errorf("records parsed wrong: %+v", p.Records)
	}
	if len(p.Globals) != 2 {
		t.Errorf("got %d globals, want 2", len(p.Globals))
	}
	if f := p.FindFunc("f"); f == nil || len(f.Params) != 2 {
		t.Errorf("function f parsed wrong")
	}
}

func TestLocalsHoisted(t *testing.T) {
	p := parse(t, `func main() { var a; a = 1; if (a == 1) { var b; b = 2; } }`)
	main := p.FindFunc("main")
	if len(main.Locals) != 2 {
		t.Fatalf("got locals %v, want a and b hoisted", main.Locals)
	}
}

func TestStatementForms(t *testing.T) {
	p := parse(t, `
var g;
func aux() { return; }
func main() {
  var x;
  var p;
  x = 1;
  x = x + 2 * 3;
  p = &g;
  *p = 4;
  g = *p;
  assert(x == 7);
  assume(g > 0);
  atomic { g = 5; }
  x = aux();
  aux();
  async aux();
  if (x == 1) { skip; } else { skip; }
  while (x < 3) { x = x + 1; }
  choice { { x = 1; } [] { x = 2; } [] { skip; } }
  iter { x = x + 1; }
}
`)
	main := p.FindFunc("main")
	var counts = map[string]int{}
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		switch s.(type) {
		case *ast.AssignStmt:
			counts["assign"]++
		case *ast.AssertStmt:
			counts["assert"]++
		case *ast.AssumeStmt:
			counts["assume"]++
		case *ast.AtomicStmt:
			counts["atomic"]++
		case *ast.CallStmt:
			counts["call"]++
		case *ast.AsyncStmt:
			counts["async"]++
		case *ast.IfStmt:
			counts["if"]++
		case *ast.WhileStmt:
			counts["while"]++
		case *ast.ChoiceStmt:
			counts["choice"]++
		case *ast.IterStmt:
			counts["iter"]++
		}
		return true
	})
	want := map[string]int{"assign": 10, "assert": 1, "assume": 1,
		"atomic": 1, "call": 2, "async": 1, "if": 1, "while": 1, "choice": 1, "iter": 1}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("%s statements: got %d, want %d", k, counts[k], w)
		}
	}
	if c := p.FindFunc("main"); c == nil {
		t.Fatal("no main")
	}
}

func TestPrecedence(t *testing.T) {
	p := parse(t, `var a; var b; var c; func main() { var x; x = a + b * c == a && true || false; }`)
	main := p.FindFunc("main")
	assign := main.Body.Stmts[0].(*ast.AssignStmt)
	// ((a + (b*c)) == a && true) || false
	or, ok := assign.Rhs.(*ast.BinaryExpr)
	if !ok || or.Op != "||" {
		t.Fatalf("top operator: %v, want ||", assign.Rhs)
	}
	and, ok := or.X.(*ast.BinaryExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("second operator: %v, want &&", or.X)
	}
	eq, ok := and.X.(*ast.BinaryExpr)
	if !ok || eq.Op != "==" {
		t.Fatalf("third operator: %v, want ==", and.X)
	}
	add, ok := eq.X.(*ast.BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("fourth operator: %v, want +", eq.X)
	}
	if mul, ok := add.Y.(*ast.BinaryExpr); !ok || mul.Op != "*" {
		t.Fatalf("fifth operator: %v, want *", add.Y)
	}
}

func TestPointerAndFieldSyntax(t *testing.T) {
	p := parse(t, `
record R { f; }
var g;
func main() {
  var e;
  var q;
  e = new R;
  e->f = 1;
  q = &e->f;
  q = &g;
  g = e->f;
  g = *q;
}
`)
	main := p.FindFunc("main")
	s3 := main.Body.Stmts[2].(*ast.AssignStmt)
	if _, ok := s3.Rhs.(*ast.AddrFieldExpr); !ok {
		t.Errorf("&e->f parsed as %T, want AddrFieldExpr", s3.Rhs)
	}
	s4 := main.Body.Stmts[3].(*ast.AssignStmt)
	if _, ok := s4.Rhs.(*ast.AddrOfExpr); !ok {
		t.Errorf("&g parsed as %T, want AddrOfExpr", s4.Rhs)
	}
}

func TestFuncNameResolution(t *testing.T) {
	p := parse(t, `
func helper() { return; }
func main() {
  var f;
  f = helper;      // bare function name -> constant
  f();             // indirect call
  helper();        // direct call
  async helper();
}
`)
	main := p.FindFunc("main")
	assign := main.Body.Stmts[0].(*ast.AssignStmt)
	if fl, ok := assign.Rhs.(*ast.FuncLit); !ok || fl.Name != "helper" {
		t.Errorf("bare function name resolved to %T, want FuncLit helper", assign.Rhs)
	}
	indirect := main.Body.Stmts[1].(*ast.CallStmt)
	if _, ok := indirect.Fn.(*ast.VarExpr); !ok {
		t.Errorf("f() target %T, want VarExpr (f is a local)", indirect.Fn)
	}
	direct := main.Body.Stmts[2].(*ast.CallStmt)
	if fl, ok := direct.Fn.(*ast.FuncLit); !ok || fl.Name != "helper" {
		t.Errorf("helper() target %T, want FuncLit", direct.Fn)
	}
}

func TestShadowingBlocksResolution(t *testing.T) {
	p := parse(t, `
func helper() { return; }
func main() {
  var helper;
  helper = 3;
}
`)
	main := p.FindFunc("main")
	assign := main.Body.Stmts[0].(*ast.AssignStmt)
	if _, ok := assign.Lhs.(*ast.VarExpr); !ok {
		t.Errorf("shadowed name resolved to %T, want VarExpr", assign.Lhs)
	}
}

func TestAtSigilForcesFuncLit(t *testing.T) {
	p := parse(t, `
func f() { return; }
func main() {
  var v;
  v = @f;
}
`)
	main := p.FindFunc("main")
	assign := main.Body.Stmts[0].(*ast.AssignStmt)
	if fl, ok := assign.Rhs.(*ast.FuncLit); !ok || fl.Name != "f" {
		t.Errorf("@f parsed as %T", assign.Rhs)
	}
}

func TestIntrinsics(t *testing.T) {
	p := parse(t, `
func f() { return; }
func main() {
  var n;
  var b;
  __ts_put(@f);
  __ts_dispatch();
  n = __ts_size();
  b = __race_cell(&n);
}
`)
	main := p.FindFunc("main")
	if _, ok := main.Body.Stmts[0].(*ast.TsPutStmt); !ok {
		t.Errorf("stmt 0: %T, want TsPutStmt", main.Body.Stmts[0])
	}
	if _, ok := main.Body.Stmts[1].(*ast.TsDispatchStmt); !ok {
		t.Errorf("stmt 1: %T, want TsDispatchStmt", main.Body.Stmts[1])
	}
	a2 := main.Body.Stmts[2].(*ast.AssignStmt)
	if _, ok := a2.Rhs.(*ast.TsSizeExpr); !ok {
		t.Errorf("stmt 2 rhs: %T, want TsSizeExpr", a2.Rhs)
	}
	a3 := main.Body.Stmts[3].(*ast.AssignStmt)
	if _, ok := a3.Rhs.(*ast.RaceCellExpr); !ok {
		t.Errorf("stmt 3 rhs: %T, want RaceCellExpr", a3.Rhs)
	}
}

func TestElseIfChains(t *testing.T) {
	p := parse(t, `
var x;
func main() {
  if (x == 1) { x = 2; } else if (x == 2) { x = 3; } else { x = 4; }
}
`)
	main := p.FindFunc("main")
	ifst := main.Body.Stmts[0].(*ast.IfStmt)
	if ifst.Else == nil || len(ifst.Else.Stmts) != 1 {
		t.Fatal("else-if not parsed")
	}
	if _, ok := ifst.Else.Stmts[0].(*ast.IfStmt); !ok {
		t.Fatalf("else branch holds %T, want nested IfStmt", ifst.Else.Stmts[0])
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`func main() { x = ; }`,
		`func main() { if x { } }`,
		`func main() { choice { } }`,
		`func main() { async 3; }`,
		`func main() { 1 + 2; }`,          // expression statement must be a call
		`func main() { &x = 1; }`,         // invalid lvalue
		`func main() { x = new; }`,        // new needs a record name
		`func main() `,                    // missing body
		`record R { f }`,                  // missing semicolon
		`func main() { atomic skip; }`,    // atomic needs a block
		`var x`,                           // missing semicolon
		`func main() { skip; } garbage()`, // trailing junk
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want syntax error", src)
		}
	}
}

// TestPrintParseRoundTrip: pretty-printing a parsed program and reparsing
// yields the same printed form (printer/parser fixpoint).
func TestPrintParseRoundTrip(t *testing.T) {
	src := `
record R { f; g; }
var gl;
func helper(a) {
  var t;
  t = a->f + 1;
  if (t == 2) { gl = t; } else { gl = 0; }
  while (t > 0) { t = t - 1; }
  return t;
}
func main() {
  var e;
  var r;
  e = new R;
  atomic { gl = 1; }
  choice { { r = helper(e); } [] { async helper(e); } }
  iter { skip; }
  assert(gl >= 0);
  assume(true);
}
`
	p1 := parse(t, src)
	printed1 := ast.Print(p1)
	p2 := parse(t, printed1)
	printed2 := ast.Print(p2)
	if printed1 != printed2 {
		t.Errorf("print/parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed1, printed2)
	}
	if !strings.Contains(printed1, "async @helper(e)") && !strings.Contains(printed1, "async helper(e)") {
		t.Errorf("printed program lost the async call:\n%s", printed1)
	}
}
