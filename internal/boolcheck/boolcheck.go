// Package boolcheck is a summary-based interprocedural reachability
// checker for the pointer-free, finite-data fragment of the sequential
// language — the architecture of SLAM's Bebop engine and the basis of the
// KISS paper's complexity claim: "For a sequential program with boolean
// variables, the complexity of model checking (or interprocedural dataflow
// analysis) is O(|C| · 2^(g+l))" (Section 4), citing Sharir-Pnueli [37]
// and Reps-Horwitz-Sagiv [34].
//
// Where package seqcheck explores whole configurations (stack included)
// and therefore diverges on unbounded recursion, boolcheck tabulates
// *procedure summaries*: path edges (proc, entry valuation, pc, current
// valuation) and summary edges (proc, entry valuation) -> (exit globals,
// return value). Recursive programs with finite data terminate — the
// decidability result the paper leans on.
//
// Supported fragment: no heap (new/records), no pointers (&v, *p, p->f),
// no async/atomic (i.e. KISS-transformed programs in assertion mode whose
// source is pointer-free — for example every program produced by
// internal/randprog). The ts intrinsics are supported: the pending-call
// multiset travels with the global valuation, and __ts_dispatch is an
// interprocedural call edge like any other.
package boolcheck

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/stats"
)

// Verdict mirrors seqcheck's verdicts.
type Verdict int

const (
	Safe Verdict = iota
	Error
	ResourceBound
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Error:
		return "error"
	default:
		return "resource-bound"
	}
}

// Options bound the tabulation. Zero means unlimited.
type Options struct {
	// MaxPathEdges bounds the number of distinct path edges tabulated
	// (the |C| · 2^(g+l) quantity of the complexity claim).
	MaxPathEdges int
	// Context, when non-nil, is polled during the tabulation; cancellation
	// or deadline expiry stops it with a ResourceBound verdict and the
	// matching Reason (a partial result, not an error).
	Context context.Context
	// Collector, when non-nil, receives progress samples (path edges play
	// the role of states; the worklist length is the frontier).
	Collector *stats.Collector
}

// ctxPollStride amortizes ctx.Err's mutex over the worklist loop.
const ctxPollStride = 512

// Result reports the verdict and tabulation statistics. Summary-based
// search does not retain linear counterexample traces (a path edge
// conflates all call stacks reaching it); use seqcheck when a trace is
// needed.
type Result struct {
	Verdict   Verdict
	Failure   *sem.Failure
	PathEdges int
	Summaries int
	// Reason names which bound ended the tabulation (ResourceBound
	// verdicts): the path-edge budget reports ReasonStates (path edges
	// are this engine's state analogue), context expiry reports
	// ReasonDeadline/ReasonCanceled.
	Reason stats.Reason
}

func (r *Result) String() string {
	switch r.Verdict {
	case Error:
		return fmt.Sprintf("error: %s (path edges=%d summaries=%d)", r.Failure, r.PathEdges, r.Summaries)
	case Safe:
		return fmt.Sprintf("safe (path edges=%d summaries=%d)", r.PathEdges, r.Summaries)
	default:
		return fmt.Sprintf("resource bound exhausted (%s; path edges=%d)", boundName(r.Reason), r.PathEdges)
	}
}

// boundName renders the tripped bound; zero falls back to the generic word.
func boundName(r stats.Reason) string {
	if r == stats.ReasonNone {
		return "budget"
	}
	return r.String()
}

// env is a valuation of the shared state (globals + ts) and the current
// procedure's locals. Values are scalars only.
type env struct {
	globals []sem.Value
	ts      []sem.Pending
	locals  []sem.Value
}

func (e *env) clone() *env {
	n := &env{
		globals: append([]sem.Value(nil), e.globals...),
		locals:  append([]sem.Value(nil), e.locals...),
	}
	if len(e.ts) > 0 {
		n.ts = make([]sem.Pending, len(e.ts))
		for i, p := range e.ts {
			n.ts[i] = sem.Pending{Fn: p.Fn, Args: append([]sem.Value(nil), p.Args...)}
		}
	}
	return n
}

func encodeVal(b *strings.Builder, v sem.Value) {
	switch v.Kind {
	case sem.KInt:
		fmt.Fprintf(b, "i%d,", v.I)
	case sem.KBool:
		fmt.Fprintf(b, "b%d,", v.I)
	case sem.KFunc:
		fmt.Fprintf(b, "f%s,", v.Fn)
	case sem.KNull:
		b.WriteString("n,")
	case sem.KUnit:
		b.WriteString("u,")
	default:
		b.WriteString("?,")
	}
}

// sharedKey encodes globals+ts (the interprocedurally shared part).
func sharedKey(globals []sem.Value, ts []sem.Pending) string {
	var b strings.Builder
	for _, v := range globals {
		encodeVal(&b, v)
	}
	if len(ts) > 0 {
		entries := make([]string, len(ts))
		for i, p := range ts {
			var eb strings.Builder
			eb.WriteString(p.Fn)
			eb.WriteString("(")
			for _, a := range p.Args {
				encodeVal(&eb, a)
			}
			eb.WriteString(")")
			entries[i] = eb.String()
		}
		sort.Strings(entries)
		b.WriteString("T:")
		b.WriteString(strings.Join(entries, "|"))
	}
	return b.String()
}

func localsKey(locals []sem.Value) string {
	var b strings.Builder
	for _, v := range locals {
		encodeVal(&b, v)
	}
	return b.String()
}

// entryKey identifies a procedure instance: name + shared state + actuals.
type entryKey struct {
	fn     string
	shared string
	args   string
}

// exit is one summarized outcome of a procedure instance.
type exit struct {
	globals []sem.Value
	ts      []sem.Pending
	ret     sem.Value
}

func exitKey(x exit) string {
	var b strings.Builder
	b.WriteString(sharedKey(x.globals, x.ts))
	b.WriteString("R:")
	encodeVal(&b, x.ret)
	return b.String()
}

// pathEdge is a tabulated reachability fact.
type pathEdge struct {
	entry entryKey
	pc    int
	e     *env
}

// callSite records a suspended caller waiting on a callee summary.
type callSite struct {
	caller pathEdge // the edge *at* the call instruction
	result string   // variable receiving the return value ("" if none)
}

type checker struct {
	c    *sem.Compiled
	opts Options
	res  *Result

	// visited path edges: entry -> "pc|locals|shared" set
	visited map[entryKey]map[string]bool
	// summaries: entry -> exitKey -> exit
	summaries map[entryKey]map[string]exit
	// callers: callee entry -> suspended call sites
	callers map[entryKey][]callSite

	work []pathEdge
}

// Check runs the tabulation. It returns an error (distinct from an Error
// verdict) when the program falls outside the supported fragment.
func Check(c *sem.Compiled, opts Options) (*Result, error) {
	if err := supported(c); err != nil {
		return nil, err
	}
	ck := &checker{
		c: c, opts: opts,
		res:       &Result{},
		visited:   map[entryKey]map[string]bool{},
		summaries: map[entryKey]map[string]exit{},
		callers:   map[entryKey][]callSite{},
	}

	main := c.Funcs["main"]
	globals := make([]sem.Value, len(c.Globals))
	for i := range globals {
		globals[i] = sem.IntV(0)
	}
	entryEnv := &env{globals: globals, locals: zeroLocals(main, nil)}
	entry := entryKey{fn: "main", shared: sharedKey(globals, nil), args: ""}
	ck.enqueue(pathEdge{entry: entry, pc: 0, e: entryEnv})

	ctxCountdown := 1 // poll the context on the first iteration
	for len(ck.work) > 0 {
		if opts.Context != nil {
			if ctxCountdown--; ctxCountdown <= 0 {
				ctxCountdown = ctxPollStride
				if err := opts.Context.Err(); err != nil {
					ck.res.Verdict = ResourceBound
					if errors.Is(err, context.DeadlineExceeded) {
						ck.res.Reason = stats.ReasonDeadline
					} else {
						ck.res.Reason = stats.ReasonCanceled
					}
					return ck.res, nil
				}
			}
		}
		pe := ck.work[len(ck.work)-1]
		ck.work = ck.work[:len(ck.work)-1]
		opts.Collector.Sample(ck.res.PathEdges, ck.res.PathEdges, len(ck.work), 0, ck.res.PathEdges)
		if fail := ck.step(pe); fail != nil {
			ck.res.Verdict = Error
			ck.res.Failure = fail
			return ck.res, nil
		}
		if ck.opts.MaxPathEdges > 0 && ck.res.PathEdges > ck.opts.MaxPathEdges {
			ck.res.Verdict = ResourceBound
			ck.res.Reason = stats.ReasonStates
			return ck.res, nil
		}
	}
	ck.res.Verdict = Safe
	for _, m := range ck.summaries {
		ck.res.Summaries += len(m)
	}
	return ck.res, nil
}

// supported rejects programs outside the pointer-free fragment.
func supported(c *sem.Compiled) error {
	if len(c.Prog.Records) > 0 {
		return fmt.Errorf("boolcheck: records/heap not supported")
	}
	var bad error
	for _, f := range c.Prog.Funcs {
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			if bad != nil {
				return false
			}
			switch s.(type) {
			case *ast.AsyncStmt:
				bad = fmt.Errorf("boolcheck: %s: async not supported (sequential fragment only)", f.Name)
			case *ast.AtomicStmt:
				bad = fmt.Errorf("boolcheck: %s: atomic not supported (sequential fragment only)", f.Name)
			}
			ast.WalkExprs(s, func(e ast.Expr) {
				switch e.(type) {
				case *ast.AddrOfExpr, *ast.DerefExpr, *ast.FieldExpr, *ast.AddrFieldExpr,
					*ast.NewExpr, *ast.NullLit, *ast.RaceCellExpr:
					if bad == nil {
						bad = fmt.Errorf("boolcheck: %s: pointer/heap expression %s not supported",
							f.Name, ast.PrintExpr(e))
					}
				}
			})
			return bad == nil
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

func zeroLocals(cf *sem.CompiledFunc, args []sem.Value) []sem.Value {
	locals := make([]sem.Value, len(cf.Vars))
	for i := range locals {
		if i < len(args) {
			locals[i] = args[i]
		} else {
			locals[i] = sem.IntV(0)
		}
	}
	return locals
}

func (ck *checker) enqueue(pe pathEdge) {
	key := fmt.Sprintf("%d|%s|%s", pe.pc, localsKey(pe.e.locals), sharedKey(pe.e.globals, pe.e.ts))
	m := ck.visited[pe.entry]
	if m == nil {
		m = map[string]bool{}
		ck.visited[pe.entry] = m
	}
	if m[key] {
		return
	}
	m[key] = true
	ck.res.PathEdges++
	ck.work = append(ck.work, pe)
}

// failf builds a failure.
func failf(kind sem.FailKind, fn string, pos ast.Pos, msg string) *sem.Failure {
	return &sem.Failure{Kind: kind, Pos: pos, Msg: msg, Fn: fn}
}

// step processes one path edge.
func (ck *checker) step(pe pathEdge) *sem.Failure {
	cf := ck.c.Funcs[pe.entry.fn]
	if pe.pc >= len(cf.Code) {
		// implicit bare return
		ck.addSummary(pe, sem.UnitV())
		return nil
	}
	in := &cf.Code[pe.pc]
	switch in.Op {
	case sem.OpSkip:
		ck.advance(pe, 1)
	case sem.OpJump:
		ck.jump(pe, in.Targets[0])
	case sem.OpNondetJump:
		for _, t := range in.Targets {
			ck.jump(pe, t)
		}
	case sem.OpAssign:
		ne := pe.e.clone()
		v, err := ck.eval(cf, ne, in.Rhs)
		if err != nil {
			return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
		}
		if err := ck.store(cf, ne, in.Lhs, v); err != nil {
			return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
		}
		ck.enqueue(pathEdge{entry: pe.entry, pc: pe.pc + 1, e: ne})
	case sem.OpAssert:
		ok, err := ck.evalBool(cf, pe.e, in.Cond)
		if err != nil {
			return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
		}
		if !ok {
			return failf(sem.AssertFail, pe.entry.fn, in.Pos,
				"assertion violated: "+ast.PrintExpr(in.Cond))
		}
		ck.advance(pe, 1)
	case sem.OpAssume:
		ok, err := ck.evalBool(cf, pe.e, in.Cond)
		if err != nil {
			return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
		}
		if ok {
			ck.advance(pe, 1)
		}
	case sem.OpReturn:
		rv := sem.UnitV()
		if in.Value != nil {
			v, err := ck.eval(cf, pe.e, in.Value)
			if err != nil {
				return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
			}
			rv = v
		}
		ck.addSummary(pe, rv)
	case sem.OpCall:
		return ck.call(pe, cf, in)
	case sem.OpTsPut:
		ne := pe.e.clone()
		fv, err := ck.eval(cf, ne, in.Fn)
		if err != nil {
			return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
		}
		args := make([]sem.Value, len(in.Args))
		for i, a := range in.Args {
			av, err := ck.eval(cf, ne, a)
			if err != nil {
				return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
			}
			args[i] = av
		}
		ne.ts = append(ne.ts, sem.Pending{Fn: fv.Fn, Args: args})
		ck.enqueue(pathEdge{entry: pe.entry, pc: pe.pc + 1, e: ne})
	case sem.OpTsDispatch:
		// One call edge per distinct pending entry.
		seen := map[string]bool{}
		for i := range pe.e.ts {
			p := pe.e.ts[i]
			var kb strings.Builder
			kb.WriteString(p.Fn)
			for _, a := range p.Args {
				encodeVal(&kb, a)
			}
			if seen[kb.String()] {
				continue
			}
			seen[kb.String()] = true
			ne := pe.e.clone()
			ne.ts = append(ne.ts[:i:i], ne.ts[i+1:]...)
			if f := ck.callInto(pe, ne, p.Fn, p.Args, ""); f != nil {
				return f
			}
		}
	default:
		return failf(sem.RuntimeFail, pe.entry.fn, in.Pos,
			fmt.Sprintf("boolcheck: unsupported opcode %d", in.Op))
	}
	return nil
}

func (ck *checker) advance(pe pathEdge, delta int) {
	ck.enqueue(pathEdge{entry: pe.entry, pc: pe.pc + delta, e: pe.e})
}

func (ck *checker) jump(pe pathEdge, target int) {
	ck.enqueue(pathEdge{entry: pe.entry, pc: target, e: pe.e})
}

// call handles OpCall.
func (ck *checker) call(pe pathEdge, cf *sem.CompiledFunc, in *sem.Instr) *sem.Failure {
	fv, err := ck.eval(cf, pe.e, in.Fn)
	if err != nil {
		return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
	}
	if fv.Kind != sem.KFunc {
		return failf(sem.RuntimeFail, pe.entry.fn, in.Pos, "call of non-function value "+fv.String())
	}
	args := make([]sem.Value, len(in.Args))
	for i, a := range in.Args {
		av, err := ck.eval(cf, pe.e, a)
		if err != nil {
			return failf(sem.RuntimeFail, pe.entry.fn, err.pos, err.msg)
		}
		args[i] = av
	}
	return ck.callInto(pe, pe.e, fv.Fn, args, in.Result)
}

// callInto creates the interprocedural edge: suspend the caller at pe,
// start (or reuse) the callee instance, and apply any already-computed
// summaries.
func (ck *checker) callInto(pe pathEdge, callerEnv *env, callee string, args []sem.Value, result string) *sem.Failure {
	ccf, ok := ck.c.Funcs[callee]
	if !ok {
		return failf(sem.RuntimeFail, pe.entry.fn, ast.Pos{}, "call of undefined function "+callee)
	}
	if len(args) != ccf.NumParam {
		return failf(sem.RuntimeFail, pe.entry.fn, ast.Pos{},
			fmt.Sprintf("call of %q with %d arguments, want %d", callee, len(args), ccf.NumParam))
	}
	var ab strings.Builder
	for _, a := range args {
		encodeVal(&ab, a)
	}
	calleeEntry := entryKey{
		fn:     callee,
		shared: sharedKey(callerEnv.globals, callerEnv.ts),
		args:   ab.String(),
	}
	site := callSite{
		caller: pathEdge{entry: pe.entry, pc: pe.pc, e: callerEnv},
		result: result,
	}
	ck.callers[calleeEntry] = append(ck.callers[calleeEntry], site)

	// Start the callee instance if new.
	ck.enqueue(pathEdge{
		entry: calleeEntry,
		pc:    0,
		e: &env{
			globals: append([]sem.Value(nil), callerEnv.globals...),
			ts:      cloneTs(callerEnv.ts),
			locals:  zeroLocals(ccf, args),
		},
	})

	// Apply existing summaries.
	for _, x := range ck.summaries[calleeEntry] {
		ck.applySummary(site, x)
	}
	return nil
}

func cloneTs(ts []sem.Pending) []sem.Pending {
	if len(ts) == 0 {
		return nil
	}
	out := make([]sem.Pending, len(ts))
	for i, p := range ts {
		out[i] = sem.Pending{Fn: p.Fn, Args: append([]sem.Value(nil), p.Args...)}
	}
	return out
}

// addSummary records a procedure exit and resumes every suspended caller.
func (ck *checker) addSummary(pe pathEdge, ret sem.Value) {
	x := exit{
		globals: append([]sem.Value(nil), pe.e.globals...),
		ts:      cloneTs(pe.e.ts),
		ret:     ret,
	}
	key := exitKey(x)
	m := ck.summaries[pe.entry]
	if m == nil {
		m = map[string]exit{}
		ck.summaries[pe.entry] = m
	}
	if _, dup := m[key]; dup {
		return
	}
	m[key] = x
	for _, site := range ck.callers[pe.entry] {
		ck.applySummary(site, x)
	}
}

// applySummary resumes a caller after the call with the callee's exit
// effect applied.
func (ck *checker) applySummary(site callSite, x exit) {
	ne := site.caller.e.clone()
	ne.globals = append([]sem.Value(nil), x.globals...)
	ne.ts = cloneTs(x.ts)
	if site.result != "" {
		cf := ck.c.Funcs[site.caller.entry.fn]
		if idx, ok := cf.VarIdx[site.result]; ok {
			ne.locals[idx] = x.ret
		} else if gidx, ok := ck.c.GlobalIdx[site.result]; ok {
			ne.globals[gidx] = x.ret
		}
	}
	ck.enqueue(pathEdge{entry: site.caller.entry, pc: site.caller.pc + 1, e: ne})
}

// ---------------------------------------------------------------------------
// Expression evaluation over env (pointer-free)
// ---------------------------------------------------------------------------

type evalErr struct {
	pos ast.Pos
	msg string
}

func (ck *checker) eval(cf *sem.CompiledFunc, e *env, x ast.Expr) (sem.Value, *evalErr) {
	switch x := x.(type) {
	case *ast.IntLit:
		return sem.IntV(x.Value), nil
	case *ast.BoolLit:
		return sem.BoolV(x.Value), nil
	case *ast.FuncLit:
		return sem.FuncV(x.Name), nil
	case *ast.VarExpr:
		if idx, ok := cf.VarIdx[x.Name]; ok {
			return e.locals[idx], nil
		}
		if gidx, ok := ck.c.GlobalIdx[x.Name]; ok {
			return e.globals[gidx], nil
		}
		return sem.Value{}, &evalErr{x.Pos, "undefined variable " + x.Name}
	case *ast.UnaryExpr:
		v, err := ck.eval(cf, e, x.X)
		if err != nil {
			return sem.Value{}, err
		}
		switch x.Op {
		case "!":
			if v.Kind != sem.KBool {
				return sem.Value{}, &evalErr{x.Pos, "'!' on non-boolean"}
			}
			return sem.BoolV(!v.Bool()), nil
		case "-":
			if v.Kind != sem.KInt {
				return sem.Value{}, &evalErr{x.Pos, "unary '-' on non-integer"}
			}
			return sem.IntV(-v.I), nil
		}
		return sem.Value{}, &evalErr{x.Pos, "unknown unary op"}
	case *ast.BinaryExpr:
		a, err := ck.eval(cf, e, x.X)
		if err != nil {
			return sem.Value{}, err
		}
		b, err := ck.eval(cf, e, x.Y)
		if err != nil {
			return sem.Value{}, err
		}
		return binop(x.Op, a, b, x.Pos)
	case *ast.TsSizeExpr:
		return sem.IntV(int64(len(e.ts))), nil
	}
	return sem.Value{}, &evalErr{x.ExprPos(), fmt.Sprintf("unsupported expression %T", x)}
}

func binop(op string, a, b sem.Value, pos ast.Pos) (sem.Value, *evalErr) {
	bothInt := a.Kind == sem.KInt && b.Kind == sem.KInt
	bothBool := a.Kind == sem.KBool && b.Kind == sem.KBool
	switch op {
	case "+", "-", "*":
		if !bothInt {
			return sem.Value{}, &evalErr{pos, "arithmetic on non-integers"}
		}
		switch op {
		case "+":
			return sem.IntV(a.I + b.I), nil
		case "-":
			return sem.IntV(a.I - b.I), nil
		default:
			return sem.IntV(a.I * b.I), nil
		}
	case "==":
		return sem.BoolV(a.Equal(b)), nil
	case "!=":
		return sem.BoolV(!a.Equal(b)), nil
	case "<", "<=", ">", ">=":
		if !bothInt {
			return sem.Value{}, &evalErr{pos, "comparison on non-integers"}
		}
		switch op {
		case "<":
			return sem.BoolV(a.I < b.I), nil
		case "<=":
			return sem.BoolV(a.I <= b.I), nil
		case ">":
			return sem.BoolV(a.I > b.I), nil
		default:
			return sem.BoolV(a.I >= b.I), nil
		}
	case "&&", "||":
		if !bothBool {
			return sem.Value{}, &evalErr{pos, "boolean op on non-booleans"}
		}
		if op == "&&" {
			return sem.BoolV(a.Bool() && b.Bool()), nil
		}
		return sem.BoolV(a.Bool() || b.Bool()), nil
	}
	return sem.Value{}, &evalErr{pos, "unknown binary op " + op}
}

func (ck *checker) evalBool(cf *sem.CompiledFunc, e *env, x ast.Expr) (bool, *evalErr) {
	v, err := ck.eval(cf, e, x)
	if err != nil {
		return false, err
	}
	if v.Kind != sem.KBool {
		return false, &evalErr{x.ExprPos(), "condition is not boolean"}
	}
	return v.Bool(), nil
}

func (ck *checker) store(cf *sem.CompiledFunc, e *env, lhs ast.Expr, v sem.Value) *evalErr {
	l, ok := lhs.(*ast.VarExpr)
	if !ok {
		return &evalErr{lhs.ExprPos(), "only variable assignment targets supported"}
	}
	if idx, ok := cf.VarIdx[l.Name]; ok {
		e.locals[idx] = v
		return nil
	}
	if gidx, ok := ck.c.GlobalIdx[l.Name]; ok {
		e.globals[gidx] = v
		return nil
	}
	return &evalErr{l.Pos, "undefined variable " + l.Name}
}
