package boolcheck

import (
	"testing"

	ikiss "repro/internal/kiss"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/randprog"
	"repro/internal/sem"
	"repro/internal/seqcheck"
)

func compile(t *testing.T, src string, maxTS int) *sem.Compiled {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p.MaxTS = maxTS
	lower.Program(p)
	c, err := sem.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestStraightLine(t *testing.T) {
	c := compile(t, `
var g;
func main() {
  g = 1;
  g = g + 2;
  assert(g == 3);
}
`, 0)
	r, err := Check(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Safe {
		t.Fatalf("want safe, got %v", r)
	}
}

func TestAssertionViolation(t *testing.T) {
	c := compile(t, `
var g;
func main() {
  choice { { g = 1; } [] { g = 2; } }
  assert(g != 2);
}
`, 0)
	r, err := Check(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Error || r.Failure == nil {
		t.Fatalf("want error, got %v", r)
	}
}

func TestInterproceduralSummaries(t *testing.T) {
	c := compile(t, `
var g;
func inc(n) { return n + 1; }
func main() {
  var a; var b;
  a = inc(1);
  b = inc(1);   // same entry valuation: summary reuse
  assert(a == 2);
  assert(b == 2);
  g = inc(a);
  assert(g == 3);
}
`, 0)
	r, err := Check(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Safe {
		t.Fatalf("want safe, got %v", r)
	}
	if r.Summaries < 2 {
		t.Errorf("expected at least 2 summaries (inc at two entries), got %d", r.Summaries)
	}
}

// TestUnboundedRecursionTerminates is boolcheck's raison d'être: a
// nondeterministically deep recursion has unboundedly many stack
// configurations (so the whole-state explorer can never finish) but only
// finitely many (proc, entry, pc, valuation) path edges.
func TestUnboundedRecursionTerminates(t *testing.T) {
	src := `
var g;
func rec() {
  choice {
    { skip; }
  []
    { rec(); }
  }
}
func main() {
  g = 0;
  rec();
  assert(g == 0);
}
`
	c := compile(t, src, 0)
	r, err := Check(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Safe {
		t.Fatalf("summary checker must verify the recursive program, got %v", r)
	}

	// The whole-configuration explorer cannot: each recursion depth is a
	// distinct state, so it exhausts any finite budget.
	sr := seqcheck.Check(compile(t, src, 0), seqcheck.Options{MaxStates: 2000})
	if sr.Verdict != seqcheck.ResourceBound {
		t.Fatalf("expected the explicit-state checker to hit its budget on recursion, got %v", sr)
	}
}

func TestRecursiveBugFound(t *testing.T) {
	c := compile(t, `
var depth;
func rec() {
  depth = depth + 1;
  assert(depth < 3);
  choice {
    { skip; }
  []
    { rec(); }
  }
}
func main() {
  depth = 0;
  rec();
}
`, 0)
	r, err := Check(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Error {
		t.Fatalf("recursion-depth bug not found: %v", r)
	}
}

func TestMutualRecursion(t *testing.T) {
	c := compile(t, `
var g;
func even(n) {
  if (n == 0) { return true; }
  return odd(n - 1);
}
func odd(n) {
  if (n == 0) { return false; }
  return even(n - 1);
}
func main() {
  var r;
  r = even(6);
  assert(r);
  r = odd(6);
  assert(!r);
}
`, 0)
	r, err := Check(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Safe {
		t.Fatalf("mutual recursion mis-analyzed: %v", r)
	}
}

func TestTsIntrinsicsSupported(t *testing.T) {
	c := compile(t, `
var x;
func f(v) { x = x + v; }
func main() {
  x = 0;
  __ts_put(@f, 2);
  __ts_put(@f, 3);
  __ts_dispatch();
  __ts_dispatch();
  assert(x == 5);
  assert(__ts_size() == 0);
}
`, 2)
	r, err := Check(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Safe {
		t.Fatalf("ts intrinsics mis-analyzed: %v", r)
	}
}

func TestFragmentRejection(t *testing.T) {
	cases := []string{
		`record R { f; } func main() { var p; p = new R; }`,
		`var g; func main() { var p; p = &g; }`,
		`func f() { return; } func main() { async f(); }`,
		`var g; func main() { atomic { g = 1; } }`,
	}
	for _, src := range cases {
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		lower.Program(p)
		c, err := sem.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Check(c, Options{}); err == nil {
			t.Errorf("out-of-fragment program accepted:\n%s", src)
		}
	}
}

func TestPathEdgeBudget(t *testing.T) {
	c := compile(t, `
var x;
func main() {
  x = 0;
  iter { assume(x < 100000); x = x + 1; }
}
`, 0)
	r, err := Check(c, Options{MaxPathEdges: 300})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != ResourceBound {
		t.Fatalf("want resource-bound, got %v", r)
	}
}

// TestAgreesWithSeqcheckOnKissOutputs: on KISS-transformed random
// programs (pointer-free by construction), the summary checker and the
// explicit-state checker reach the same verdict — two independent
// implementations of the sequential analysis role.
func TestAgreesWithSeqcheckOnKissOutputs(t *testing.T) {
	agreeErrors := 0
	for seed := int64(0); seed < 60; seed++ {
		src := randprog.Generate(seed, randprog.Default)
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		lower.Program(p)
		out, err := ikiss.Transform(p, ikiss.Options{MaxTS: 1})
		if err != nil {
			t.Fatal(err)
		}
		c, err := sem.Compile(out)
		if err != nil {
			t.Fatal(err)
		}
		br, err := Check(c, Options{})
		if err != nil {
			t.Fatalf("seed %d: unexpectedly out of fragment: %v", seed, err)
		}
		sr := seqcheck.Check(c, seqcheck.Options{})
		want := Safe
		if sr.Verdict == seqcheck.Error {
			want = Error
			agreeErrors++
		}
		if br.Verdict != want {
			t.Errorf("seed %d: boolcheck %v, seqcheck %v\n%s", seed, br.Verdict, sr.Verdict, src)
		}
	}
	if agreeErrors == 0 {
		t.Error("no erroring programs among seeds; agreement tested vacuously")
	}
	t.Logf("agreed on %d error verdicts", agreeErrors)
}
