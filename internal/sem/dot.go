package sem

import (
	"fmt"
	"strings"
)

// DotCFG renders the control-flow graph of one compiled function in
// Graphviz DOT format — developer tooling for inspecting what the KISS
// instrumentation did to a function (`kiss cfg -fn <name> prog.pl`).
//
// Nodes are instruction indices labeled with the instruction text; edges
// follow fallthrough, jump, and nondeterministic-jump structure. Atomic
// blocks render as single nodes (their internal sub-program executes as
// one step). A synthetic exit node collects returns and the implicit
// end-of-code return.
func DotCFG(c *Compiled, fn string) (string, error) {
	cf, ok := c.Funcs[fn]
	if !ok {
		return "", fmt.Errorf("sem: no function %q", fn)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", fn)
	b.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	fmt.Fprintf(&b, "  entry [shape=oval, label=\"%s(%s)\"];\n",
		fn, strings.Join(cf.Fn.Params, ", "))
	b.WriteString("  exit [shape=oval, label=\"return\"];\n")

	if len(cf.Code) == 0 {
		b.WriteString("  entry -> exit;\n")
		b.WriteString("}\n")
		return b.String(), nil
	}
	fmt.Fprintf(&b, "  entry -> n0;\n")

	for i := range cf.Code {
		in := &cf.Code[i]
		label := escapeDot(in.Text())
		attrs := ""
		switch in.Op {
		case OpNondetJump:
			label = "choice"
			attrs = ", shape=diamond"
		case OpJump:
			label = "goto"
			attrs = ", shape=point"
		case OpAtomic:
			label = fmt.Sprintf("atomic (%d ops)", len(in.Atomic))
			attrs = ", style=bold"
		case OpAssert:
			attrs = ", color=red"
		case OpAssume:
			attrs = ", color=blue"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%d: %s\"%s];\n", i, i, label, attrs)

		switch in.Op {
		case OpJump:
			fmt.Fprintf(&b, "  n%d -> n%d;\n", i, in.Targets[0])
		case OpNondetJump:
			for _, tgt := range in.Targets {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", i, tgt)
			}
		case OpReturn:
			fmt.Fprintf(&b, "  n%d -> exit;\n", i)
		default:
			if i+1 < len(cf.Code) {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", i, i+1)
			} else {
				fmt.Fprintf(&b, "  n%d -> exit;\n", i)
			}
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// FunctionNames lists the compiled functions, sorted by declaration order
// of the source program (generated helpers last, as emitted).
func FunctionNames(c *Compiled) []string {
	out := make([]string, 0, len(c.Prog.Funcs))
	for _, f := range c.Prog.Funcs {
		out = append(out, f.Name)
	}
	return out
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}
