package sem

import (
	"testing"
)

// stepEvents runs the per-statement search of a single-threaded
// deterministic program, returning the event sequence and final state.
func stepEvents(t *testing.T, s *State, ti int) ([]Event, *State) {
	t.Helper()
	var events []Event
	for i := 0; i < MaxMacroRun; i++ {
		if s.Threads[ti].Done() {
			return events, s
		}
		sr := Step(s, ti)
		if sr.Failure != nil || sr.Blocked {
			return events, s
		}
		if len(sr.Outcomes) != 1 {
			t.Fatalf("program is not deterministic: %d outcomes at step %d", len(sr.Outcomes), i)
		}
		events = append(events, sr.Outcomes[0].Event)
		s = sr.Outcomes[0].State
	}
	t.Fatal("runaway execution")
	return nil, nil
}

// TestMacroStepFoldsStraightLine: on a deterministic single-threaded
// program one macro step reproduces the per-statement run exactly — same
// event sequence, same final state, same number of micro steps.
func TestMacroStepFoldsStraightLine(t *testing.T) {
	src := `var x; var y; func main() { x = 1; y = x + 1; x = y * 2; }`
	c := compile(t, src)

	wantEvents, wantFinal := stepEvents(t, NewState(c), 0)

	mr := MacroStep(NewState(c), 0, 0)
	if mr.Failure != nil || mr.Blocked {
		t.Fatalf("unexpected failure/block: %+v", mr.StepResult)
	}
	if len(mr.Outcomes) != 1 {
		t.Fatalf("got %d outcomes, want 1", len(mr.Outcomes))
	}
	got := append(append([]Event{}, mr.Prefix...), mr.Outcomes[0].Event)
	if len(got) != len(wantEvents) {
		t.Fatalf("folded %d events, per-statement run has %d", len(got), len(wantEvents))
	}
	for i := range got {
		if got[i] != wantEvents[i] {
			t.Errorf("event %d: folded %+v, per-statement %+v", i, got[i], wantEvents[i])
		}
	}
	if mr.Stepped != len(wantEvents) {
		t.Errorf("Stepped = %d, want %d", mr.Stepped, len(wantEvents))
	}
	if g, w := mr.Outcomes[0].State.FingerprintString(), wantFinal.FingerprintString(); g != w {
		t.Errorf("final state diverged:\n folded %s\n stepped %s", g, w)
	}
	if !mr.Outcomes[0].State.Threads[0].Done() {
		t.Error("folded run did not reach thread completion")
	}
}

// TestMacroStepPrunesDeadBranch: a concrete if lowers to a choice whose
// infeasible assume-branch is pruned, so the fold runs straight through
// the conditional; PrefixIdx records the surviving branch's unpruned
// index so trace ordering keys stay comparable with the per-statement
// search.
func TestMacroStepPrunesDeadBranch(t *testing.T) {
	src := `var x; func main() { x = 1; if (x == 2) { x = 3; } x = 4; }`
	c := compile(t, src)

	mr := MacroStep(NewState(c), 0, 0)
	if mr.Failure != nil || mr.Blocked {
		t.Fatalf("unexpected failure/block: %+v", mr.StepResult)
	}
	if len(mr.Outcomes) != 1 {
		t.Fatalf("fold stopped at a decision point: %d outcomes", len(mr.Outcomes))
	}
	st := mr.Outcomes[0].State
	if !st.Threads[0].Done() {
		t.Fatal("fold did not consume the whole program")
	}
	if got := st.Globals[0].String(); got != "4" {
		t.Errorf("x = %s after fold, want 4 (else-path taken)", got)
	}
	if len(mr.PrefixIdx) != len(mr.Prefix) {
		t.Fatalf("PrefixIdx len %d != Prefix len %d", len(mr.PrefixIdx), len(mr.Prefix))
	}
	nonZero := false
	for _, idx := range mr.PrefixIdx {
		if idx > 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Error("no folded position records a pruned-branch index > 0; pruning index tracking is broken")
	}
}

// TestMacroStepBlockedEndpoint: a deterministic run into a dead assume
// folds to its blocked endpoint — the block surfaces on the macro step
// (with the prefix up to it) exactly where the per-statement search
// blocks, which is what concheck's deadlock accounting relies on.
func TestMacroStepBlockedEndpoint(t *testing.T) {
	src := `var x; func main() { x = 0; assume(x == 1); }`
	c := compile(t, src)

	mr := MacroStep(NewState(c), 0, 0)
	if mr.Failure != nil {
		t.Fatalf("unexpected failure: %v", mr.Failure)
	}
	if !mr.Blocked {
		t.Fatalf("dead assume did not surface as Blocked: %+v", mr.StepResult)
	}
	if len(mr.Prefix) == 0 {
		t.Error("blocked fold lost the deterministic prefix before the assume")
	}
}

// TestMacroStepFailureEndpoint: an assertion violation inside a
// deterministic run surfaces on the macro step with the prefix intact,
// so the reported trace replays bit-identically.
func TestMacroStepFailureEndpoint(t *testing.T) {
	src := `var x; func main() { x = 1; assert(x == 2); }`
	c := compile(t, src)

	mr := MacroStep(NewState(c), 0, 0)
	if mr.Failure == nil {
		t.Fatalf("assertion violation folded away: %+v", mr.StepResult)
	}
	if len(mr.Prefix) == 0 {
		t.Error("failing fold lost the deterministic prefix before the assert")
	}
}

// TestMacroStepStopsAtSchedulingPoint: once another thread becomes live
// the successor is a scheduling point an interleaving search must store,
// so the fold must stop there rather than run through it.
func TestMacroStepStopsAtSchedulingPoint(t *testing.T) {
	src := `var x; func main() { x = 1; async f(); x = 2; x = 3; } func f() { x = 9; }`
	c := compile(t, src)

	mr := MacroStep(NewState(c), 0, 0)
	if mr.Failure != nil || mr.Blocked {
		t.Fatalf("unexpected failure/block: %+v", mr.StepResult)
	}
	if len(mr.Outcomes) != 1 {
		t.Fatalf("got %d outcomes, want 1", len(mr.Outcomes))
	}
	st := mr.Outcomes[0].State
	if len(st.Threads) < 2 || st.Threads[1].Done() {
		t.Fatal("fold stopped before the async spawned a live thread")
	}
	if st.Threads[0].Done() {
		t.Error("fold ran past the scheduling point to thread completion")
	}
}

// TestMacroStepLimit: limit = 1 degenerates to a single Step.
func TestMacroStepLimit(t *testing.T) {
	src := `var x; func main() { x = 1; x = 2; x = 3; }`
	c := compile(t, src)

	sr := Step(NewState(c), 0)
	mr := MacroStep(NewState(c), 0, 1)
	if mr.Stepped != 1 {
		t.Fatalf("Stepped = %d with limit 1", mr.Stepped)
	}
	if len(mr.Prefix) != 0 {
		t.Errorf("limit-1 macro step folded a prefix: %v", mr.Prefix)
	}
	if len(mr.Outcomes) != len(sr.Outcomes) {
		t.Fatalf("outcome counts differ: macro %d, step %d", len(mr.Outcomes), len(sr.Outcomes))
	}
	for i := range mr.Outcomes {
		if g, w := mr.Outcomes[i].State.FingerprintString(), sr.Outcomes[i].State.FingerprintString(); g != w {
			t.Errorf("outcome %d fingerprints differ", i)
		}
		if mr.OutIdx[i] != int32(i) {
			t.Errorf("OutIdx[%d] = %d, want identity", i, mr.OutIdx[i])
		}
	}
}
