// Package sem implements the operational semantics of the core parallel
// language: runtime values, a compiler from core AST to a flat instruction
// form, program states with multiple threads, a small-step successor
// relation, and canonical state fingerprints for explicit-state search.
//
// The same semantics serves both checkers: package concheck explores
// interleavings of all threads (the concurrent semantics of Section 3),
// while package seqcheck restricts execution to a single thread plus the ts
// intrinsics (the sequential target semantics of Section 4).
package sem

import (
	"fmt"
)

// Kind classifies runtime values. All data is dynamically typed.
type Kind uint8

const (
	KInt  Kind = iota // integer
	KBool             // boolean
	KFunc             // function name (first-class function constant)
	KPtr              // pointer to a cell or object
	KNull             // the null pointer constant
	KUnit             // value of a bare return
)

// Value is a runtime value. Bool is stored in I (0/1).
type Value struct {
	Kind Kind
	I    int64
	Fn   string
	Ptr  Cell
}

// IntV returns an integer value.
func IntV(v int64) Value { return Value{Kind: KInt, I: v} }

// BoolV returns a boolean value.
func BoolV(b bool) Value {
	if b {
		return Value{Kind: KBool, I: 1}
	}
	return Value{Kind: KBool}
}

// FuncV returns a function-name value.
func FuncV(name string) Value { return Value{Kind: KFunc, Fn: name} }

// PtrV returns a pointer value.
func PtrV(c Cell) Value { return Value{Kind: KPtr, Ptr: c} }

// NullV returns the null value.
func NullV() Value { return Value{Kind: KNull} }

// UnitV returns the unit value.
func UnitV() Value { return Value{Kind: KUnit} }

// Bool reports the boolean content; callers must ensure Kind==KBool.
func (v Value) Bool() bool { return v.I != 0 }

// Equal reports value equality. Values of different kinds are unequal,
// except that null compares equal to null only.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KInt, KBool:
		return v.I == w.I
	case KFunc:
		return v.Fn == w.Fn
	case KPtr:
		return v.Ptr == w.Ptr
	case KNull, KUnit:
		return true
	}
	return false
}

func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KFunc:
		return "@" + v.Fn
	case KPtr:
		return v.Ptr.String()
	case KNull:
		return "null"
	case KUnit:
		return "unit"
	}
	return "?"
}

// CellKind classifies pointer targets.
type CellKind uint8

const (
	// CGlobal points at a global variable; Idx is the global index.
	CGlobal CellKind = iota
	// CHeapField points at one field of a heap object; Idx is the object
	// index, Field the field index.
	CHeapField
	// CLocal points at a local variable of a live frame; FrameID is the
	// frame's unique id, Field the local's index.
	CLocal
	// CObject points at a whole heap object (the result of `new`); Idx is
	// the object index. Dereferencing a CObject pointer is an error;
	// fields are accessed with p->f.
	CObject
)

// Cell identifies a memory location (or whole object). Cells are compared
// with ==; heap object indices are stable for the lifetime of a state
// lineage because objects are never deallocated.
type Cell struct {
	Kind    CellKind
	Idx     int // global index or heap object index
	Field   int // field index (CHeapField) or local index (CLocal)
	FrameID int // frame id (CLocal)
}

func (c Cell) String() string {
	switch c.Kind {
	case CGlobal:
		return fmt.Sprintf("&global[%d]", c.Idx)
	case CHeapField:
		return fmt.Sprintf("&obj%d.f%d", c.Idx, c.Field)
	case CLocal:
		return fmt.Sprintf("&frame%d.l%d", c.FrameID, c.Field)
	case CObject:
		return fmt.Sprintf("obj%d", c.Idx)
	}
	return "?cell"
}
