package sem

// Fold memoization: a read-footprint keyed replay cache for macro steps.
//
// PR 4's macro-step compression stores 3.2x fewer states but re-executes
// every folded deterministic run; this table turns a repeated fold into a
// lookup. The soundness argument is the reduction idea itself: a maximal
// deterministic sole-live run is atomic, so its effect is a pure function
// of what it reads. Concretely, a fold of thread ti starting at state s is
// fully determined by
//
//   - the control signature: ti's thread id and frame stack (function,
//     PC, frame id, result variable of every frame) — everything Step
//     consults that is not a store read; and
//   - the read footprint: the ordered list of store locations the run
//     reads before writing them, with their values at s.
//
// Both are taken RAW — real heap indices, real frame ids — not canonical.
// Raw identity is what makes replay exact: if a later state s' matches the
// signature and footprint byte-for-byte, the run from s' executes the very
// same instruction sequence, produces the very same event strings (which
// embed raw indices via Value.String), allocates objects/frames/threads at
// the very same raw positions (the footprint records heap length and the
// id counters whenever the run allocates), and writes the very same
// values. The memo entry therefore stores the final write set as a delta
// against the base state, and a hit clones s' and applies the delta —
// bit-identical to executing the fold, with zero Step calls.
//
// The footprint VALUES are stored in the entry and a lookup compares them
// directly — matching is exact, not hashed, so there is no collision
// channel: a hit replays if and only if the base state agrees with the
// recording base on every location the run read. (An earlier draft folded
// the value stream into a 64-bit FNV-1a hash; profiles showed the
// per-candidate re-hashing dominating the search, and direct comparison
// is both faster — it fails on the first differing value — and strictly
// sounder.) The audit mode (FoldMemo with audit on, wired to the
// checkers' AuditFingerprints and exercised by dedicated differential
// tests) re-executes every hit and verifies the replayed result
// byte-for-byte, counting mismatches and dropping the offending entry;
// with exact matching it is a pure implementation-bug detector.
//
// Sharing and eligibility: entries are recorded and replayed only at
// states where every thread other than ti is done. That makes the
// fold-stop condition (sole-liveness of ti) a function of the run itself —
// a thread that is done never runs again, so no foreign thread can end the
// fold early at one base state and not the other. Multi-live states (the
// scheduling points concheck branches on) fall back to plain MacroStep.
// Runs through multi-path atomic bodies abort recording: a single written
// set cannot filter reads across diverging internal branches.
//
// The table is shared by every engine of a single search (sequential DFS
// and parallel BFS, seqcheck and concheck), sharded by control-signature
// hash exactly like internal/visited, and each shard keeps an intrusive
// LRU under a per-shard byte budget. One FoldMemo serves one Compiled
// program (control signatures compare *CompiledFunc by pointer); kiss.Config
// creates a fresh table per Check.

import (
	"sync"
	"sync/atomic"
)

const (
	// DefaultMemoBytes is the table budget when the caller passes none:
	// 256 MiB, still far below the working set of the searches it
	// accelerates. The old 64 MiB default evicted a quarter-million
	// entries over the driver corpus; eviction churn costs both the
	// removal itself and the hits the removed entries would have served.
	DefaultMemoBytes = 256 << 20
	// memoShards matches visited.DefaultShards.
	memoShards = 64
	// memoMinStepped is the shortest run worth a table entry: one-step
	// folds replay about as fast as they execute.
	memoMinStepped = 2
	// seenWords sizes each shard's warm-up bit array: 1024 words = 64K
	// bits per shard, 4M bits per table — sparse for any single check's
	// control points, and 8 KiB a shard when touched at all.
	seenWords = 1 << 10
)

// memoLocKind enumerates read-footprint location kinds.
type memoLocKind uint8

const (
	locGlobal       memoLocKind = iota // a = global index
	locHeapField                       // a = object index, b = field index
	locHeapRec                         // a = object index (its record name)
	locLocal                           // a = frame id, b = local slot
	locDangling                        // a = frame id, b = slot: load/store found the frame popped
	locTsFull                          // the whole ts multiset, raw order
	locHeapLen                         // a = required heap length (allocation occurred)
	locNextFrameID                     // a = required next frame id (a frame was created)
	locNextThreadID                    // a = required next thread id (a thread was created)
)

// memoLoc is one read-footprint location. Comparable (used as a map key).
type memoLoc struct {
	k    memoLocKind
	a, b int32
}

// memoRead is one recorded footprint read: the location plus the value
// observed at the recording base. locHeapRec carries the record name in
// v.Fn; the structural kinds (dangling, heap length, id counters) encode
// their requirement in the location itself and leave v zero.
type memoRead struct {
	loc memoLoc
	v   Value
}

// readEq is memoRead equality with the value compared first: sibling
// kids of a decision-tree node share their read location and differ in
// the observed value, so the integer compare almost always decides.
// Field-for-field identical to ==, only reordered.
func readEq(a, b memoRead) bool {
	return a.v.I == b.v.I && a.v.Kind == b.v.Kind && a.v.Ptr == b.v.Ptr &&
		a.v.Fn == b.v.Fn && a.loc == b.loc
}

// foldRecorder observes one fold's reads and writes. It is attached to the
// base state and propagated to every clone of the run (see State.rec), so
// all micro steps of the fold feed one recorder. Reads are recorded only
// if the location was not written earlier in the run and does not belong
// to an object/frame the run itself created — such values are determined
// by the footprint already taken, not by the base state.
//
// The recorder is also the fan-out point for call-summary layers (see
// summary.go): every hook feeds the whole-fold footprint when foldActive
// is set AND each open sumLayer, which applies its own baselines and
// normalization. A recorder may serve layers alone (summaries on, fold
// memo cold or off), the fold alone (the original MacroStepMemo path),
// or both.
type foldRecorder struct {
	baseHeapLen    int
	baseNextFrame  int
	baseNextThread int

	reads   []memoRead
	seen    map[memoLoc]struct{}
	written map[memoLoc]struct{}
	ts      []Pending // the base ts, when the run read it

	tsSeen         bool
	tsWritten      bool
	heapLenSeen    bool
	nextFrameSeen  bool
	nextThreadSeen bool
	aborted        bool

	// foldActive gates the whole-fold footprint above; layers holds the
	// open call-summary recording layers, innermost last.
	foldActive bool
	layers     []*sumLayer
}

var recorderPool = sync.Pool{New: func() any {
	return &foldRecorder{
		seen:    make(map[memoLoc]struct{}),
		written: make(map[memoLoc]struct{}),
	}
}}

func (r *foldRecorder) reset(s *State) {
	r.baseHeapLen = len(s.Heap)
	r.baseNextFrame = s.nextFrameID
	r.baseNextThread = s.nextThreadID
	r.reads = r.reads[:0]
	clear(r.seen)
	clear(r.written)
	r.ts = nil
	r.tsSeen, r.tsWritten = false, false
	r.heapLenSeen, r.nextFrameSeen, r.nextThreadSeen = false, false, false
	r.aborted = false
	r.foldActive = false
	r.layers = r.layers[:0]
}

func (r *foldRecorder) abort() {
	r.aborted = true
	for _, l := range r.layers {
		l.aborted = true
	}
}

// note registers loc as a footprint read with the value observed at the
// base, unless the run is aborted, the location was written earlier in
// this run, or it was already read (the first read pins the base value).
func (r *foldRecorder) note(loc memoLoc, v Value) {
	if r.aborted {
		return
	}
	if _, ok := r.written[loc]; ok {
		return
	}
	if _, ok := r.seen[loc]; ok {
		return
	}
	r.seen[loc] = struct{}{}
	r.reads = append(r.reads, memoRead{loc: loc, v: v})
}

func (r *foldRecorder) readGlobal(idx int, v Value) {
	if r.foldActive {
		r.note(memoLoc{k: locGlobal, a: int32(idx)}, v)
	}
	for _, l := range r.layers {
		l.readGlobal(idx, v)
	}
}

func (r *foldRecorder) readHeapField(obj, field int, v Value) {
	// Objects at/after the base heap length were created by this run:
	// their contents are determined by the footprint already taken.
	if r.foldActive && obj < r.baseHeapLen {
		r.note(memoLoc{k: locHeapField, a: int32(obj), b: int32(field)}, v)
	}
	for _, l := range r.layers {
		l.readHeapField(obj, field, v)
	}
}

func (r *foldRecorder) readHeapRec(obj int, rec string) {
	if r.foldActive && obj < r.baseHeapLen {
		r.note(memoLoc{k: locHeapRec, a: int32(obj)}, Value{Fn: rec})
	}
	for _, l := range r.layers {
		l.readHeapRec(obj, rec)
	}
}

func (r *foldRecorder) readLocal(frameID, slot int, v Value) {
	// Frames created by this run are determined; skip them.
	if r.foldActive && frameID < r.baseNextFrame {
		r.note(memoLoc{k: locLocal, a: int32(frameID), b: int32(slot)}, v)
	}
	for _, l := range r.layers {
		l.readLocal(frameID, slot, v)
	}
}

// readDangling records that a load/store addressed a popped frame's local.
// Replay-side matching checks the frame is popped there too; no value.
func (r *foldRecorder) readDangling(frameID, slot int) {
	if r.foldActive && frameID < r.baseNextFrame {
		r.note(memoLoc{k: locDangling, a: int32(frameID), b: int32(slot)}, Value{})
	}
	for _, l := range r.layers {
		l.readDangling(frameID, slot)
	}
}

func (r *foldRecorder) readTs(ts []Pending) {
	if r.foldActive && !r.aborted && !r.tsSeen && !r.tsWritten {
		r.tsSeen = true
		r.reads = append(r.reads, memoRead{loc: memoLoc{k: locTsFull}})
		r.ts = ts
	}
	for _, l := range r.layers {
		l.readTs(ts)
	}
}

func (r *foldRecorder) readHeapLen(n int) {
	if r.foldActive && !r.aborted && !r.heapLenSeen {
		r.heapLenSeen = true
		r.reads = append(r.reads, memoRead{loc: memoLoc{k: locHeapLen, a: int32(n)}})
	}
	for _, l := range r.layers {
		l.readHeapLen(n)
	}
}

func (r *foldRecorder) readNextFrameID(n int) {
	// Layers deliberately do NOT pin the frame-id counter: every call
	// segment pushes a frame, so an absolute pin would make entries
	// instance-specific. They store a relative delta instead (sumDiff).
	if !r.foldActive || r.aborted || r.nextFrameSeen {
		return
	}
	r.nextFrameSeen = true
	r.reads = append(r.reads, memoRead{loc: memoLoc{k: locNextFrameID, a: int32(n)}})
}

func (r *foldRecorder) readNextThreadID(n int) {
	if r.foldActive && !r.aborted && !r.nextThreadSeen {
		r.nextThreadSeen = true
		r.reads = append(r.reads, memoRead{loc: memoLoc{k: locNextThreadID, a: int32(n)}})
	}
	// A new thread ends sole-liveness, so the enclosing fold breaks and
	// any open segment can never close; abort the layers eagerly.
	for _, l := range r.layers {
		l.aborted = true
	}
}

// noteReturn fans a return value to the open layers (see
// sumLayer.noteReturn); the whole-fold footprint is raw and needs no
// check — its events replay only at raw-identical bases.
func (r *foldRecorder) noteReturn(rv Value) {
	for _, l := range r.layers {
		l.noteReturn(rv)
	}
}

func (r *foldRecorder) wroteGlobal(idx int) {
	if r.foldActive && !r.aborted {
		r.written[memoLoc{k: locGlobal, a: int32(idx)}] = struct{}{}
	}
	for _, l := range r.layers {
		l.wroteGlobal(idx)
	}
}

func (r *foldRecorder) wroteHeapField(obj, field int) {
	if r.foldActive && !r.aborted && obj < r.baseHeapLen {
		r.written[memoLoc{k: locHeapField, a: int32(obj), b: int32(field)}] = struct{}{}
	}
	for _, l := range r.layers {
		l.wroteHeapField(obj, field)
	}
}

func (r *foldRecorder) wroteLocal(frameID, slot int) {
	if r.foldActive && !r.aborted && frameID < r.baseNextFrame {
		r.written[memoLoc{k: locLocal, a: int32(frameID), b: int32(slot)}] = struct{}{}
	}
	for _, l := range r.layers {
		l.wroteLocal(frameID, slot)
	}
}

func (r *foldRecorder) wroteTs() {
	r.tsWritten = true
	for _, l := range r.layers {
		l.wroteTs()
	}
}

// Hash mixing helpers over the shared FNV-1a constants.

func mixByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = mixByte(h, s[i])
	}
	return mixByte(h, 0)
}

// ctrlFrame is one frame of a memo group's control signature.
type ctrlFrame struct {
	cf     *CompiledFunc
	pc     int
	id     int
	result string
}

// ctrlHash hashes thread ti's control signature (id + frame stack). The
// function-name component comes precomputed from compile time so a deep
// stack costs a handful of multiplies, not a string walk per frame.
func ctrlHash(s *State, ti int) uint64 {
	t := s.Threads[ti]
	h := uint64(fnvOffset64)
	h = Mix64(h, uint64(t.ID))
	for _, fr := range t.Frames {
		h = Mix64(h, fr.CF.nameHash)
		h = Mix64(h, uint64(fr.PC))
		h = Mix64(h, uint64(fr.ID))
		h = mixString(h, fr.Result)
	}
	return h
}

// Write-delta representation: everything a fold changed, as raw positions
// and values, diffed against the base state after the run.

type slotWrite struct {
	idx int32
	v   Value
}

type objFieldWrite struct {
	obj, field int32
	v          Value
}

type newObjCopy struct {
	rec    string
	fields []Value
}

type frameDiff struct {
	fi    int32 // index in ti's (truncated) frame stack
	pc    int32
	slots []slotWrite
}

type frameCopy struct {
	id     int
	cf     *CompiledFunc
	pc     int
	locals []Value
	result string
}

type threadCopy struct {
	id     int
	frames []frameCopy
}

// outcomeDelta reproduces one outcome state of the final micro step from
// any footprint-matching base state.
type outcomeDelta struct {
	ev           Event
	globals      []slotWrite
	objFields    []objFieldWrite
	newObjs      []newObjCopy
	keepFrames   int32 // ti's surviving base-frame stack prefix length
	frames       []frameDiff
	pushFrames   []frameCopy
	newThreads   []threadCopy
	tsChanged    bool
	ts           []Pending
	nextFrameID  int // -1: untouched by the run
	nextThreadID int
}

// memoGroup collects every entry recorded at one exact control point —
// same thread id, same frame stack — and arranges their footprints as a
// decision tree. The tree shape is the determinism argument made into a
// data structure: from a fixed control point the run's i-th read location
// is a function of the values observed by reads 0..i-1 (frame liveness is
// part of the control signature, so even the dangling/live split of a
// local access is fixed within a group), so entries recorded here share
// read positions exactly as far as they share observed values. A lookup
// therefore reads each location ONCE and descends by the observed value —
// O(footprint depth) total, independent of how many entries the group
// holds — where a linear scan re-walked the shared prefix per candidate.
type memoGroup struct {
	tid    int
	frames []ctrlFrame
	root   memoNode
}

// memoNode is one read position of a group's decision tree. leaves holds
// the entries whose footprint ends here (runs recorded under different
// step limits can end at a prefix of a longer run's footprint); kids
// discriminates the next read by its observed value. All kids of a node
// agree on the location kind — and, for value-carrying kinds, the exact
// location — by the determinism argument above.
//
// kidIdx indexes kids by read once the fan-out crosses kidMapThreshold —
// a location observed with many distinct values (a counter global, a
// loop induction local) would otherwise cost a linear, cache-missing kid
// scan per lookup AND per insert. It is never built over locTsFull kids
// (their ts snapshots need slice comparison and are matched before the
// value descent) and, once built, is maintained across removals rather
// than rebuilt.
type memoNode struct {
	leaves []*memoEntry
	kids   []memoKid
	kidIdx map[memoRead]int32
}

// kidMapThreshold is the fan-out at which a node switches from linear
// kid scans to the kidIdx map. Below it the scan's first-field compares
// beat the map's hashing.
const kidMapThreshold = 16

// memoKid is one decision-tree edge: the full observed read (location +
// value) it stands for, with the ts snapshot spelled out for locTsFull
// edges (a Value cannot carry a multiset).
type memoKid struct {
	r  memoRead
	ts []Pending
	n  *memoNode
}

// find descends the group's decision tree at s and returns the unique
// entry valid under limit, or nil. At most one entry in a group can be
// valid for a given (base, limit): the deterministic run from s has one
// natural length N and one step sequence, so a natural entry is valid iff
// limit >= N and a limit-cut entry iff limit equals its cut — disjoint
// conditions along a single footprint path.
func (g *memoGroup) find(s *State, ti, limit int) *memoEntry {
	n := &g.root
	for {
		for _, e := range n.leaves {
			if e.limitOK(limit) {
				return e
			}
		}
		if len(n.kids) == 0 {
			return nil
		}
		// Build the observed read for this position. A bounds failure
		// means no recorded footprint can match from here on.
		var or memoRead
		switch loc := n.kids[0].r.loc; loc.k {
		case locGlobal:
			if int(loc.a) >= len(s.Globals) {
				return nil
			}
			or = memoRead{loc: loc, v: s.Globals[loc.a]}
		case locHeapField:
			if int(loc.a) >= len(s.Heap) {
				return nil
			}
			o := s.Heap[loc.a]
			if int(loc.b) >= len(o.Fields) {
				return nil
			}
			or = memoRead{loc: loc, v: o.Fields[loc.b]}
		case locHeapRec:
			if int(loc.a) >= len(s.Heap) {
				return nil
			}
			or = memoRead{loc: loc, v: Value{Fn: s.Heap[loc.a].Rec}}
		case locLocal:
			fr := findFrameInThread(s.Threads[ti], int(loc.a))
			if fr == nil || int(loc.b) >= len(fr.Locals) {
				return nil
			}
			or = memoRead{loc: loc, v: fr.Locals[loc.b]}
		case locDangling:
			if findFrameInThread(s.Threads[ti], int(loc.a)) != nil {
				return nil
			}
			or = memoRead{loc: loc}
		case locTsFull:
			next := (*memoNode)(nil)
			for i := range n.kids {
				k := &n.kids[i]
				if k.r.loc.k == locTsFull && tsEqual(s.Ts, k.ts) {
					next = k.n
					break
				}
			}
			if next == nil {
				return nil
			}
			n = next
			continue
		case locHeapLen:
			or = memoRead{loc: memoLoc{k: locHeapLen, a: int32(len(s.Heap))}}
		case locNextFrameID:
			or = memoRead{loc: memoLoc{k: locNextFrameID, a: int32(s.nextFrameID)}}
		case locNextThreadID:
			or = memoRead{loc: memoLoc{k: locNextThreadID, a: int32(s.nextThreadID)}}
		}
		next := (*memoNode)(nil)
		if n.kidIdx != nil {
			if j, ok := n.kidIdx[or]; ok {
				next = n.kids[j].n
			}
		} else {
			for i := range n.kids {
				if readEq(n.kids[i].r, or) {
					next = n.kids[i].n
					break
				}
			}
		}
		if next == nil {
			return nil
		}
		n = next
	}
}

// insert threads e's footprint into the decision tree, returning false if
// an equivalent entry (same path, same stepped/limited) is already there.
func (g *memoGroup) insert(e *memoEntry) bool {
	n := &g.root
	for i := range e.reads {
		r := e.reads[i]
		var next *memoNode
		if r.loc.k == locTsFull {
			for j := range n.kids {
				k := &n.kids[j]
				if k.r.loc.k == locTsFull && tsEqual(e.ts, k.ts) {
					next = k.n
					break
				}
			}
		} else if n.kidIdx != nil {
			if j, ok := n.kidIdx[r]; ok {
				next = n.kids[j].n
			}
		} else {
			for j := range n.kids {
				if readEq(n.kids[j].r, r) {
					next = n.kids[j].n
					break
				}
			}
		}
		if next == nil {
			next = &memoNode{}
			kid := memoKid{r: r, n: next}
			if r.loc.k == locTsFull {
				kid.ts = e.ts
			}
			n.kids = append(n.kids, kid)
			if r.loc.k != locTsFull {
				if n.kidIdx != nil {
					n.kidIdx[r] = int32(len(n.kids) - 1)
				} else if len(n.kids) >= kidMapThreshold {
					n.kidIdx = make(map[memoRead]int32, len(n.kids))
					for j := range n.kids {
						n.kidIdx[n.kids[j].r] = int32(j)
					}
				}
			}
		}
		n = next
	}
	for _, old := range n.leaves {
		if old.stepped == e.stepped && old.limited == e.limited {
			return false
		}
	}
	n.leaves = append(n.leaves, e)
	return true
}

// removeEntry detaches e from the decision tree, pruning emptied nodes.
func (n *memoNode) removeEntry(e *memoEntry, reads []memoRead) {
	if len(reads) == 0 {
		for i, cur := range n.leaves {
			if cur == e {
				n.leaves[i] = n.leaves[len(n.leaves)-1]
				n.leaves[len(n.leaves)-1] = nil
				n.leaves = n.leaves[:len(n.leaves)-1]
				return
			}
		}
		return
	}
	r := reads[0]
	for j := range n.kids {
		k := &n.kids[j]
		var match bool
		if r.loc.k == locTsFull {
			match = k.r.loc.k == locTsFull && tsEqual(e.ts, k.ts)
		} else {
			match = k.r == r
		}
		if !match {
			continue
		}
		k.n.removeEntry(e, reads[1:])
		if len(k.n.leaves) == 0 && len(k.n.kids) == 0 {
			removed := n.kids[j].r
			last := len(n.kids) - 1
			n.kids[j] = n.kids[last]
			n.kids[last] = memoKid{}
			n.kids = n.kids[:last]
			// Maintain the index across the swap-delete: dropping it here
			// instead causes an O(kids) rebuild per insert under eviction
			// churn. Never nil once built, even below the threshold.
			if n.kidIdx != nil {
				delete(n.kidIdx, removed)
				if j < last {
					n.kidIdx[n.kids[j].r] = int32(j)
				}
			}
		}
		return
	}
}

func (g *memoGroup) empty() bool {
	return len(g.root.leaves) == 0 && len(g.root.kids) == 0
}

// memoEntry is one recorded fold. Immutable once stored.
type memoEntry struct {
	// Key (the control signature lives in the owning group).
	ctrl    uint64
	group   *memoGroup
	reads   []memoRead
	ts      []Pending // base ts when the footprint includes locTsFull
	stepped int
	limited bool

	// Replay payload.
	prefix    []Event
	prefixIdx []int32
	blocked   bool
	failure   *Failure
	outs      []outcomeDelta
	outIdx    []int32

	// Table bookkeeping (guarded by the owning shard's mutex).
	bytes      int
	linked     bool // still in the shard's LRU list and group tree
	prev, next *memoEntry
}

// limitOK reports whether a run recorded under some limit replays
// faithfully under limit: a naturally-stopped run is valid at any limit
// that would not have cut it shorter; a limit-stopped run only at exactly
// the limit that cut it.
func (e *memoEntry) limitOK(limit int) bool {
	if e.limited {
		return e.stepped == limit
	}
	return e.stepped <= limit
}

func (g *memoGroup) ctrlMatch(s *State, ti int) bool {
	t := s.Threads[ti]
	if t.ID != g.tid || len(t.Frames) != len(g.frames) {
		return false
	}
	for i, fr := range t.Frames {
		gf := &g.frames[i]
		if fr.CF != gf.cf || fr.PC != gf.pc || fr.ID != gf.id || fr.Result != gf.result {
			return false
		}
	}
	return true
}

// findFrameInThread locates a frame by id on one thread's stack (memo
// lookups run where every other thread is done, so ti's stack holds every
// live frame).
func findFrameInThread(t *Thread, id int) *Frame {
	for _, fr := range t.Frames {
		if fr.ID == id {
			return fr
		}
	}
	return nil
}

// writtenSet is a fold's write set split by location kind, built once
// per store. The force-include checks below then scan these short slices
// instead of probing the write-set map once per compared slot — the map
// probes dominated the store path's profile.
type writtenSet struct {
	globals []memoLoc
	fields  []memoLoc
	locals  []memoLoc
}

func splitWritten(written map[memoLoc]struct{}) writtenSet {
	// One shared backing array, partitioned by kind: the per-kind counts
	// vary per fold, and three growing appends per store showed up in the
	// allocation profile.
	buf := make([]memoLoc, len(written))
	var ng, nf, nl int
	for loc := range written {
		switch loc.k {
		case locGlobal:
			ng++
		case locHeapField:
			nf++
		case locLocal:
			nl++
		}
	}
	ws := writtenSet{
		globals: buf[:0:ng],
		fields:  buf[ng : ng : ng+nf],
		locals:  buf[ng+nf : ng+nf : ng+nf+nl],
	}
	for loc := range written {
		switch loc.k {
		case locGlobal:
			ws.globals = append(ws.globals, loc)
		case locHeapField:
			ws.fields = append(ws.fields, loc)
		case locLocal:
			ws.locals = append(ws.locals, loc)
		}
	}
	return ws
}

// diffOutcome computes the write delta from base to one outcome state.
// ok=false means the outcome does not fit the delta model (something
// outside ti's reach changed); the caller then skips storing the fold.
//
// The delta cannot be a pure value diff: a blind write (no prior read)
// whose value happens to equal the recording base's — `g = 1` when g was
// already 1 — changes nothing here, but the location is not footprint-
// pinned (never read), so the entry also matches bases where g differs
// and the replay must still perform the write. Every location in the
// recorder's write set is therefore forced into the delta: the value
// scans catch writes that changed the value, and each region follows up
// with a pass over the (short) write set for the equal-value remainder.
// That is sound for all outcomes uniformly: slot writes only happen in
// single-outcome micro steps (multi-outcome endpoints are choice and
// dispatch, which write no slots; multi-path atomics abort recording),
// so they are shared prefix effects, and their final values are
// functions of the recorded read footprint.
func diffOutcome(base *State, ti int, out Outcome, ws *writtenSet) (outcomeDelta, bool) {
	d := outcomeDelta{ev: out.Event, nextFrameID: -1, nextThreadID: -1}
	os := out.State

	// Globals: COW shares the slice untouched, so pointer equality is the
	// common fast path (a written array is always a copy).
	if len(os.Globals) != len(base.Globals) {
		return d, false
	}
	if len(base.Globals) > 0 && &os.Globals[0] != &base.Globals[0] {
		for i := range os.Globals {
			if os.Globals[i] != base.Globals[i] {
				d.globals = append(d.globals, slotWrite{int32(i), os.Globals[i]})
			}
		}
		for _, loc := range ws.globals {
			if i := int(loc.a); i < len(os.Globals) && os.Globals[i] == base.Globals[i] {
				d.globals = append(d.globals, slotWrite{loc.a, os.Globals[i]})
			}
		}
	}

	// Heap: base objects diff per field (pointer-equal means untouched);
	// appended objects are fully determined by the run, copy them out.
	if len(os.Heap) < len(base.Heap) {
		return d, false
	}
	for i := 0; i < len(base.Heap); i++ {
		bo, oo := base.Heap[i], os.Heap[i]
		if bo == oo {
			continue
		}
		if oo.Rec != bo.Rec || len(oo.Fields) != len(bo.Fields) {
			return d, false
		}
		for f := range oo.Fields {
			if oo.Fields[f] != bo.Fields[f] {
				d.objFields = append(d.objFields, objFieldWrite{int32(i), int32(f), oo.Fields[f]})
			}
		}
		for _, loc := range ws.fields {
			if int(loc.a) != i {
				continue
			}
			if f := int(loc.b); f < len(oo.Fields) && oo.Fields[f] == bo.Fields[f] {
				d.objFields = append(d.objFields, objFieldWrite{loc.a, loc.b, oo.Fields[f]})
			}
		}
	}
	for i := len(base.Heap); i < len(os.Heap); i++ {
		o := os.Heap[i]
		d.newObjs = append(d.newObjs, newObjCopy{rec: o.Rec, fields: append([]Value(nil), o.Fields...)})
	}

	// Threads: nothing but ti and appended threads may change.
	if len(os.Threads) < len(base.Threads) {
		return d, false
	}
	for j := range base.Threads {
		if j != ti && os.Threads[j] != base.Threads[j] {
			return d, false
		}
	}
	bt, ot := base.Threads[ti], os.Threads[ti]
	// Surviving base frames form a stack prefix: frame ids are never
	// reused and pops only remove the top.
	k := 0
	for k < len(ot.Frames) && k < len(bt.Frames) && ot.Frames[k].ID == bt.Frames[k].ID {
		k++
	}
	for j := k; j < len(ot.Frames); j++ {
		if ot.Frames[j].ID < base.nextFrameID {
			return d, false
		}
	}
	d.keepFrames = int32(k)
	for j := 0; j < k; j++ {
		bf, of := bt.Frames[j], ot.Frames[j]
		if bf == of {
			continue
		}
		if of.CF != bf.CF || of.Result != bf.Result || len(of.Locals) != len(bf.Locals) {
			return d, false
		}
		fd := frameDiff{fi: int32(j), pc: int32(of.PC)}
		for si := range of.Locals {
			if of.Locals[si] != bf.Locals[si] {
				fd.slots = append(fd.slots, slotWrite{int32(si), of.Locals[si]})
			}
		}
		for _, loc := range ws.locals {
			if int(loc.a) != bf.ID {
				continue
			}
			if si := int(loc.b); si < len(of.Locals) && of.Locals[si] == bf.Locals[si] {
				fd.slots = append(fd.slots, slotWrite{loc.b, of.Locals[si]})
			}
		}
		if of.PC != bf.PC || len(fd.slots) > 0 {
			d.frames = append(d.frames, fd)
		}
	}
	for j := k; j < len(ot.Frames); j++ {
		d.pushFrames = append(d.pushFrames, copyFrame(ot.Frames[j]))
	}
	for j := len(base.Threads); j < len(os.Threads); j++ {
		t := os.Threads[j]
		tc := threadCopy{id: t.ID, frames: make([]frameCopy, len(t.Frames))}
		for fi, fr := range t.Frames {
			tc.frames[fi] = copyFrame(fr)
		}
		d.newThreads = append(d.newThreads, tc)
	}

	// ts: full replacement when changed. Any change implies the run read
	// the full multiset first (put checks occupancy, dispatch enumerates),
	// so the base ts is footprint-pinned and the end value is determined.
	if !tsEqual(os.Ts, base.Ts) {
		d.tsChanged = true
		d.ts = append([]Pending(nil), os.Ts...)
	}

	if os.nextFrameID != base.nextFrameID {
		d.nextFrameID = os.nextFrameID
	}
	if os.nextThreadID != base.nextThreadID {
		d.nextThreadID = os.nextThreadID
	}
	return d, true
}

func copyFrame(fr *Frame) frameCopy {
	return frameCopy{
		id:     fr.ID,
		cf:     fr.CF,
		pc:     fr.PC,
		locals: append([]Value(nil), fr.Locals...),
		result: fr.Result,
	}
}

func tsEqual(a, b []Pending) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Fn != b[i].Fn || len(a[i].Args) != len(b[i].Args) {
			return false
		}
		for j := range a[i].Args {
			if a[i].Args[j] != b[i].Args[j] {
				return false
			}
		}
	}
	return true
}

// applyDelta clones s and applies one outcome delta through the COW
// mutation accessors, reproducing the executed outcome state raw-exactly.
func applyDelta(s *State, ti int, d *outcomeDelta) *State {
	ns := s.Clone()
	if len(d.globals) > 0 {
		g := ns.mutableGlobals()
		for _, w := range d.globals {
			g[w.idx] = w.v
		}
	}
	for _, w := range d.objFields {
		ns.mutableObject(int(w.obj)).Fields[w.field] = w.v
	}
	for i := range d.newObjs {
		no := &d.newObjs[i]
		ns.appendObject(&Object{Rec: no.rec, Fields: append([]Value(nil), no.fields...)})
	}
	if t := ns.mutableThread(ti); int(d.keepFrames) < len(t.Frames) {
		t.Frames = t.Frames[:d.keepFrames]
	}
	for i := range d.frames {
		fd := &d.frames[i]
		fr := ns.mutableFrame(ti, int(fd.fi))
		fr.PC = int(fd.pc)
		for _, w := range fd.slots {
			fr.Locals[w.idx] = w.v
		}
	}
	for i := range d.pushFrames {
		ns.pushFrame(ti, newFrameFromCopy(&d.pushFrames[i], ns.gen))
	}
	for i := range d.newThreads {
		tc := &d.newThreads[i]
		nt := &Thread{ID: tc.id, Frames: make([]*Frame, len(tc.frames))}
		for j := range tc.frames {
			nt.Frames[j] = newFrameFromCopy(&tc.frames[j], ns.gen)
		}
		ns.appendThread(nt)
	}
	if d.tsChanged {
		ns.Ts = append([]Pending(nil), d.ts...)
		ns.tsGen = ns.gen
	}
	if d.nextFrameID >= 0 {
		ns.nextFrameID = d.nextFrameID
	}
	if d.nextThreadID >= 0 {
		ns.nextThreadID = d.nextThreadID
	}
	return ns
}

func newFrameFromCopy(pf *frameCopy, gen uint64) *Frame {
	return &Frame{
		ID:     pf.id,
		CF:     pf.cf,
		PC:     pf.pc,
		Locals: append([]Value(nil), pf.locals...),
		Result: pf.result,
		gen:    gen,
	}
}

// FoldMemoStats is a point-in-time snapshot of the table's counters.
type FoldMemoStats struct {
	Hits            int64
	Misses          int64
	Stores          int64
	Evictions       int64
	StepsSaved      int64
	AuditMismatches int64
	Entries         int64
	Bytes           int64
}

// HitRatio returns hits/(hits+misses), or 0 with no lookups.
func (st FoldMemoStats) HitRatio() float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

type memoShard struct {
	mu      sync.Mutex
	m       map[uint64][]*memoGroup
	head    *memoEntry // most recently used
	tail    *memoEntry
	bytes   int64
	entries int64
	// seen marks control hashes that have missed here before (the
	// warm-up gate for recording); allocated on first miss.
	seen []uint64
	// Pad to a cache line so neighbouring shard locks do not false-share.
	_ [24]byte
}

// FoldMemo is the sharded, byte-budgeted fold replay cache. Safe for
// concurrent use by the parallel searches' expansion workers.
type FoldMemo struct {
	shards   []memoShard
	mask     uint64
	perShard int64
	audit    bool

	hits            atomic.Int64
	misses          atomic.Int64
	stores          atomic.Int64
	evictions       atomic.Int64
	stepsSaved      atomic.Int64
	auditMismatches atomic.Int64
}

// NewFoldMemo returns a table with the given byte budget (<= 0 selects
// DefaultMemoBytes). With audit set, every hit is re-executed and the
// replay compared byte-for-byte; mismatches (which exact matching rules
// out short of an implementation bug) are counted, the entry dropped, and
// the executed result returned, so audit runs are always correct and
// measure exactly how often replay would have lied.
func NewFoldMemo(budgetBytes int64, audit bool) *FoldMemo {
	if budgetBytes <= 0 {
		budgetBytes = DefaultMemoBytes
	}
	m := &FoldMemo{
		shards:   make([]memoShard, memoShards),
		mask:     memoShards - 1,
		perShard: budgetBytes / memoShards,
		audit:    audit,
	}
	for i := range m.shards {
		m.shards[i].m = make(map[uint64][]*memoGroup)
	}
	return m
}

// Audit reports whether the table verifies every hit by re-execution.
func (m *FoldMemo) Audit() bool { return m.audit }

func (m *FoldMemo) shardFor(h uint64) *memoShard {
	return &m.shards[(h^h>>32)&m.mask]
}

// Stats returns a snapshot of the table's counters.
func (m *FoldMemo) Stats() FoldMemoStats {
	st := FoldMemoStats{
		Hits:            m.hits.Load(),
		Misses:          m.misses.Load(),
		Stores:          m.stores.Load(),
		Evictions:       m.evictions.Load(),
		StepsSaved:      m.stepsSaved.Load(),
		AuditMismatches: m.auditMismatches.Load(),
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		st.Entries += sh.entries
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// lookup finds a replayable entry for (s, ti) under limit, bumping it to
// the front of its shard's LRU. Returns nil on miss, plus whether the
// control point is warm — seen by an earlier lookup — which is what makes
// a miss worth recording. Most control points of a search are visited
// once; recording them is pure overhead (the recorder hooks on every
// micro step, the delta diff, the table insert, the eventual eviction),
// so a cold miss only marks the point seen and the fold runs bare. The
// mark is one bit in a small per-shard array indexed by the control hash;
// a hash collision can at worst make a cold point look warm and record a
// fold that is never replayed — extra work, never a wrong result. Groups
// in a bucket have pairwise-distinct control signatures, so at most one
// can match s and the scan stops at it either way.
func (m *FoldMemo) lookup(s *State, ti, limit int) (*memoEntry, bool) {
	h := ctrlHash(s, ti)
	sh := m.shardFor(h)
	sh.mu.Lock()
	for _, g := range sh.m[h] {
		if !g.ctrlMatch(s, ti) {
			continue
		}
		if e := g.find(s, ti, limit); e != nil {
			sh.moveFront(e)
			sh.mu.Unlock()
			return e, true
		}
		break
	}
	if sh.seen == nil {
		sh.seen = make([]uint64, seenWords)
	}
	w, bit := (h>>6)&(seenWords-1), uint64(1)<<(h&63)
	warm := sh.seen[w]&bit != 0
	sh.seen[w] |= bit
	sh.mu.Unlock()
	return nil, warm
}

// replay reconstructs the fold's MacroResult from an entry by applying
// its deltas to s. In audit mode the fold is also executed and compared;
// a mismatch drops the entry and returns the executed result.
func (m *FoldMemo) replay(s *State, ti, limit int, e *memoEntry) MacroResult {
	if !m.audit {
		m.hits.Add(1)
		m.stepsSaved.Add(int64(e.stepped))
		return buildReplay(s, ti, e)
	}
	got := buildReplay(s, ti, e)
	want := macroRun(s, ti, limit)
	if !macroResultsEqual(&got, &want) {
		m.auditMismatches.Add(1)
		m.remove(e)
		return want
	}
	m.hits.Add(1)
	m.stepsSaved.Add(int64(e.stepped))
	// Hand back the executed result: it is provably right and its states
	// were verified identical to the replayed ones.
	return want
}

func buildReplay(s *State, ti int, e *memoEntry) MacroResult {
	var mr MacroResult
	mr.Prefix = e.prefix
	mr.PrefixIdx = e.prefixIdx
	mr.Stepped = e.stepped
	mr.Limited = e.limited
	mr.Blocked = e.blocked
	mr.Failure = e.failure
	mr.OutIdx = e.outIdx
	if len(e.outs) > 0 {
		mr.Outcomes = make([]Outcome, len(e.outs))
		for i := range e.outs {
			mr.Outcomes[i] = Outcome{State: applyDelta(s, ti, &e.outs[i]), Event: e.outs[i].ev}
		}
	}
	return mr
}

// store records a completed fold. The MacroResult's slices (prefix,
// indices, failure) are shared with the entry — they are immutable and
// exact-sized, so neither the searches nor future replays can alias into
// each other.
func (m *FoldMemo) store(s *State, ti int, rec *foldRecorder, mr *MacroResult) {
	t := s.Threads[ti]
	e := &memoEntry{
		reads:     append([]memoRead(nil), rec.reads...),
		stepped:   mr.Stepped,
		limited:   mr.Limited,
		prefix:    mr.Prefix,
		prefixIdx: mr.PrefixIdx,
		blocked:   mr.Blocked,
		failure:   mr.Failure,
		outIdx:    mr.OutIdx,
	}
	if rec.tsSeen {
		e.ts = append([]Pending(nil), rec.ts...)
	}
	e.ctrl = ctrlHash(s, ti)
	if len(mr.Outcomes) > 0 {
		ws := splitWritten(rec.written)
		e.outs = make([]outcomeDelta, 0, len(mr.Outcomes))
		for i := range mr.Outcomes {
			d, ok := diffOutcome(s, ti, mr.Outcomes[i], &ws)
			if !ok {
				return
			}
			e.outs = append(e.outs, d)
		}
	}
	e.bytes = entrySize(e)

	sh := m.shardFor(e.ctrl)
	sh.mu.Lock()
	var g *memoGroup
	for _, cand := range sh.m[e.ctrl] {
		if cand.ctrlMatch(s, ti) {
			g = cand
			break
		}
	}
	if g == nil {
		g = &memoGroup{tid: t.ID, frames: make([]ctrlFrame, len(t.Frames))}
		for i, fr := range t.Frames {
			g.frames[i] = ctrlFrame{cf: fr.CF, pc: fr.PC, id: fr.ID, result: fr.Result}
		}
		sh.m[e.ctrl] = append(sh.m[e.ctrl], g)
	}
	// insert dedupes: another worker may have stored the same fold during
	// our execution.
	e.group = g
	if !g.insert(e) {
		sh.mu.Unlock()
		return
	}
	e.linked = true
	sh.pushFront(e)
	sh.bytes += int64(e.bytes)
	sh.entries++
	for sh.bytes > m.perShard && sh.tail != nil && sh.tail != e {
		victim := sh.tail
		sh.unlinkLocked(victim)
		m.evictions.Add(1)
	}
	sh.mu.Unlock()
	m.stores.Add(1)
}

// remove drops an entry (audit mismatch) if it is still in the table.
func (m *FoldMemo) remove(e *memoEntry) {
	sh := m.shardFor(e.ctrl)
	sh.mu.Lock()
	if e.linked {
		sh.unlinkLocked(e)
	}
	sh.mu.Unlock()
}

// LRU maintenance; all callers hold the shard mutex.

func (sh *memoShard) pushFront(e *memoEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *memoShard) moveFront(e *memoEntry) {
	if sh.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
}

// unlinkLocked removes e from both the LRU list and its hash bucket.
func (sh *memoShard) unlinkLocked(e *memoEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
	g := e.group
	g.root.removeEntry(e, e.reads)
	if g.empty() {
		bucket := sh.m[e.ctrl]
		for i, cur := range bucket {
			if cur == g {
				bucket[i] = bucket[len(bucket)-1]
				bucket[len(bucket)-1] = nil
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(sh.m, e.ctrl)
		} else {
			sh.m[e.ctrl] = bucket
		}
	}
	sh.bytes -= int64(e.bytes)
	sh.entries--
}

// entrySize estimates an entry's heap footprint for the byte budget.
// (The owning group's frame signature is shared across its entries and
// small next to the stored values; it is folded into the per-entry base.)
func entrySize(e *memoEntry) int {
	n := 176 + len(e.reads)*80 + len(e.prefixIdx)*4 + len(e.outIdx)*4
	for i := range e.ts {
		n += 40 + len(e.ts[i].Fn) + len(e.ts[i].Args)*64
	}
	for i := range e.prefix {
		n += eventSize(&e.prefix[i])
	}
	for i := range e.outs {
		d := &e.outs[i]
		n += 96 + eventSize(&d.ev)
		n += len(d.globals)*72 + len(d.objFields)*80
		for j := range d.newObjs {
			n += 48 + len(d.newObjs[j].rec) + len(d.newObjs[j].fields)*64
		}
		for j := range d.frames {
			n += 32 + len(d.frames[j].slots)*72
		}
		for j := range d.pushFrames {
			n += frameCopySize(&d.pushFrames[j])
		}
		for j := range d.newThreads {
			n += 32
			for k := range d.newThreads[j].frames {
				n += frameCopySize(&d.newThreads[j].frames[k])
			}
		}
		for j := range d.ts {
			n += 40 + len(d.ts[j].Fn) + len(d.ts[j].Args)*64
		}
	}
	return n
}

func eventSize(ev *Event) int {
	return 72 + len(ev.Fn) + len(ev.Text) + len(ev.Callee)
}

func frameCopySize(fc *frameCopy) int {
	return 64 + len(fc.result) + len(fc.locals)*64
}

// macroResultsEqual compares a replayed MacroResult against an executed
// one byte-for-byte (raw state equality, not canonical). Audit-path only.
func macroResultsEqual(a, b *MacroResult) bool {
	if a.Stepped != b.Stepped || a.Blocked != b.Blocked || a.Limited != b.Limited {
		return false
	}
	if (a.Failure == nil) != (b.Failure == nil) {
		return false
	}
	if a.Failure != nil && *a.Failure != *b.Failure {
		return false
	}
	if len(a.Prefix) != len(b.Prefix) || len(a.PrefixIdx) != len(b.PrefixIdx) ||
		len(a.Outcomes) != len(b.Outcomes) || len(a.OutIdx) != len(b.OutIdx) {
		return false
	}
	for i := range a.Prefix {
		if a.Prefix[i] != b.Prefix[i] {
			return false
		}
	}
	for i := range a.PrefixIdx {
		if a.PrefixIdx[i] != b.PrefixIdx[i] {
			return false
		}
	}
	for i := range a.OutIdx {
		if a.OutIdx[i] != b.OutIdx[i] {
			return false
		}
	}
	for i := range a.Outcomes {
		if a.Outcomes[i].Event != b.Outcomes[i].Event {
			return false
		}
		if !rawStateEqual(a.Outcomes[i].State, b.Outcomes[i].State) {
			return false
		}
	}
	return true
}

// rawStateEqual compares two states raw — exact indices and ids, no
// canonicalization. This is the replay invariant: a memo hit must produce
// states raw-equal to execution, so every downstream fingerprint, event
// string, and counter agrees bit-for-bit.
func rawStateEqual(a, b *State) bool {
	if len(a.Globals) != len(b.Globals) || len(a.Heap) != len(b.Heap) ||
		len(a.Threads) != len(b.Threads) || len(a.Ts) != len(b.Ts) ||
		a.nextFrameID != b.nextFrameID || a.nextThreadID != b.nextThreadID {
		return false
	}
	for i := range a.Globals {
		if a.Globals[i] != b.Globals[i] {
			return false
		}
	}
	for i := range a.Heap {
		ao, bo := a.Heap[i], b.Heap[i]
		if ao.Rec != bo.Rec || len(ao.Fields) != len(bo.Fields) {
			return false
		}
		for f := range ao.Fields {
			if ao.Fields[f] != bo.Fields[f] {
				return false
			}
		}
	}
	for i := range a.Threads {
		at, bt := a.Threads[i], b.Threads[i]
		if at.ID != bt.ID || len(at.Frames) != len(bt.Frames) {
			return false
		}
		for j := range at.Frames {
			af, bf := at.Frames[j], bt.Frames[j]
			if af.ID != bf.ID || af.CF != bf.CF || af.PC != bf.PC || af.Result != bf.Result ||
				len(af.Locals) != len(bf.Locals) {
				return false
			}
			for si := range af.Locals {
				if af.Locals[si] != bf.Locals[si] {
					return false
				}
			}
		}
	}
	if !tsEqual(a.Ts, b.Ts) {
		return false
	}
	return true
}
