package sem

import (
	"testing"
	"testing/quick"
)

// TestQuickSnapshotRoundTrip: a decoded snapshot is indistinguishable
// from the original state — same canonical fingerprint, and stepping both
// yields outcome-for-outcome fingerprint-identical successors (so a
// search that spills and restores a frame explores exactly the subtree it
// would have explored in RAM).
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64, walk uint16) bool {
		c, ok := compileSeed(t, seed)
		if !ok {
			return true
		}
		s := NewState(c)
		steps := int(walk % 64)
		x := uint64(seed)
		for i := 0; i < steps; i++ {
			if s.Threads[0].Done() {
				break
			}
			sr := Step(s, 0)
			if sr.Failure != nil || sr.Blocked || len(sr.Outcomes) == 0 {
				break
			}
			x = x*6364136223846793005 + 1442695040888963407
			s = sr.Outcomes[int(x>>33)%len(sr.Outcomes)].State
		}

		enc := AppendSnapshot(nil, s)
		d, err := DecodeSnapshot(c, enc)
		if err != nil {
			t.Logf("seed %d: decode failed: %v", seed, err)
			return false
		}
		if d.FingerprintString() != s.FingerprintString() {
			t.Logf("seed %d: fingerprint mismatch after round trip", seed)
			return false
		}
		if s.Threads[0].Done() {
			return true
		}
		// Successor-for-successor identity, including failure/block shape.
		srA, srB := Step(s.Clone(), 0), Step(d, 0)
		if (srA.Failure == nil) != (srB.Failure == nil) ||
			srA.Blocked != srB.Blocked ||
			len(srA.Outcomes) != len(srB.Outcomes) {
			t.Logf("seed %d: step shape mismatch after round trip", seed)
			return false
		}
		for i := range srA.Outcomes {
			if srA.Outcomes[i].State.FingerprintString() != srB.Outcomes[i].State.FingerprintString() {
				t.Logf("seed %d: successor %d fingerprint mismatch", seed, i)
				return false
			}
			if srA.Outcomes[i].Event != srB.Outcomes[i].Event {
				t.Logf("seed %d: successor %d event mismatch", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotRejectsCorrupt: truncated or trailing-garbage snapshots
// fail loudly instead of yielding a half-built state.
func TestSnapshotRejectsCorrupt(t *testing.T) {
	c, ok := compileSeed(t, 7)
	if !ok {
		t.Skip("seed 7 does not compile")
	}
	s := NewState(c)
	enc := AppendSnapshot(nil, s)
	if _, err := DecodeSnapshot(c, enc[:len(enc)/2]); err == nil {
		t.Error("truncated snapshot decoded without error")
	}
	if _, err := DecodeSnapshot(c, append(append([]byte{}, enc...), 0, 1, 2)); err == nil {
		t.Error("snapshot with trailing bytes decoded without error")
	}
}
