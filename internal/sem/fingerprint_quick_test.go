package sem

import (
	"testing"
	"testing/quick"
)

// Property tests for the 64-bit fingerprint encoder: FingerprintHash must
// agree with FingerprintString on equality — equal strings always hash
// equal (the encoders share one canonicalization), and unequal strings
// must not collide on the small random states explored here (a 64-bit
// collision among a few thousand states would indicate a structural bug
// in the encoder, not bad luck).

// randomWalk returns a state reached by a pseudo-random path of up to
// steps transitions from the initial state of c.
func randomWalk(c *Compiled, seed int64, steps int) *State {
	s := NewState(c)
	x := uint64(seed)
	for i := 0; i < steps; i++ {
		if s.Threads[0].Done() {
			break
		}
		sr := Step(s, 0)
		if sr.Failure != nil || sr.Blocked || len(sr.Outcomes) == 0 {
			break
		}
		x = x*6364136223846793005 + 1442695040888963407
		s = sr.Outcomes[int(x>>33)%len(sr.Outcomes)].State
	}
	return s
}

// TestQuickHashMatchesString: across pairs of reachable states of random
// programs, hash equality must coincide with string equality.
func TestQuickHashMatchesString(t *testing.T) {
	f := func(seed int64, walkA, walkB uint16) bool {
		c, ok := compileSeed(t, seed)
		if !ok {
			return true
		}
		sA := randomWalk(c, seed, int(walkA%64))
		sB := randomWalk(c, seed+int64(walkB%2), int(walkB%64))
		strEq := sA.FingerprintString() == sB.FingerprintString()
		hashEq := sA.FingerprintHash() == sB.FingerprintHash()
		return strEq == hashEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickHashCloneIdentity: cloning never changes the hash, and a reused
// hasher agrees with a fresh one (the scratch maps leak no state between
// calls).
func TestQuickHashCloneIdentity(t *testing.T) {
	h := NewFPHasher()
	f := func(seed int64, walk uint16) bool {
		c, ok := compileSeed(t, seed)
		if !ok {
			return true
		}
		s := randomWalk(c, seed, int(walk%64))
		fresh := s.FingerprintHash()
		return h.Hash(s) == fresh && s.Clone().FingerprintHash() == fresh && h.Hash(s.Clone()) == fresh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHashCanonicalization mirrors TestFingerprintCanonicalization for the
// hash encoder: ts multiset order and unreachable heap garbage must not
// affect the hash, while genuine state differences must.
func TestHashCanonicalization(t *testing.T) {
	c := compile(t, `
record R { f; }
var keep;
func main() {
  var a; var b;
  a = new R;
  b = new R;
  keep = 0;
}
`)
	s1 := NewState(c)
	s1.Ts = []Pending{{Fn: "main"}, {Fn: "other"}}
	s2 := s1.Clone()
	s2.Ts = []Pending{{Fn: "other"}, {Fn: "main"}}
	if s1.FingerprintHash() != s2.FingerprintHash() {
		t.Error("ts multiset order affects hash")
	}

	s3 := s1.Clone()
	s3.Heap = append(s3.Heap, &Object{Rec: "R", Fields: []Value{IntV(99)}})
	if s1.FingerprintHash() != s3.FingerprintHash() {
		t.Error("unreachable heap garbage affects hash")
	}

	s4 := s1.Clone()
	s4.mutableGlobals()[0] = IntV(7)
	if s1.FingerprintHash() == s4.FingerprintHash() {
		t.Error("different global values collide")
	}
	s5 := s1.Clone()
	s5.MutableTopFrame(0).PC = 1
	if s1.FingerprintHash() == s5.FingerprintHash() {
		t.Error("different PCs collide")
	}
}

// TestMix64 sanity: mixing extra context changes the key and is
// order/value sensitive.
func TestMix64(t *testing.T) {
	base := uint64(0x12345678)
	if Mix64(base, 1) == base {
		t.Error("Mix64 is a no-op")
	}
	if Mix64(base, 1) == Mix64(base, 2) {
		t.Error("Mix64 ignores its argument")
	}
	if Mix64(Mix64(base, 1), 2) == Mix64(Mix64(base, 2), 1) {
		t.Error("Mix64 is order-insensitive")
	}
}
