package sem

// 64-bit state fingerprints for the visited sets of the explicit-state
// searches. The encoder mirrors FingerprintString's canonicalization
// exactly — same object renumbering by first-reach order, same frame-id
// canonicalization, same ts multiset ordering (via appendTsOrder) — but
// feeds the canonical byte sequence into an incremental FNV-1a hash
// instead of materializing a string, so the hot loop performs no
// per-state allocation beyond the two small scratch maps, which an
// FPHasher reuses across states.
//
// Soundness note: a 64-bit collision makes a search treat a genuinely new
// state as visited, so a collision can only cause a *missed* state (and
// hence a missed error), never a false alarm — the same direction of
// unsoundness as the KISS reduction itself. The string encoder remains
// available as FingerprintString, and the checkers' audit modes
// cross-check the two on demand.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Mix64 folds v into the running FNV-1a hash h. Exported so searches that
// key their visited sets on (state, extra context) — e.g. concheck's
// context-bounded mode — can extend a state hash without re-encoding.
func Mix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// FPHasher computes 64-bit state fingerprints, reusing its canonicalization
// scratch (object-numbering and frame maps, ts order slice) across calls.
// An FPHasher is not safe for concurrent use; each search owns one.
type FPHasher struct {
	objOrder   map[int]int // heap index -> canonical number
	objList    []int       // heap indices in canonical order (worklist)
	frameCanon map[int]int // frame id -> canonical number
	tsOrder    []int
	h          uint64
}

// NewFPHasher returns a hasher with empty scratch.
func NewFPHasher() *FPHasher {
	return &FPHasher{objOrder: map[int]int{}, frameCanon: map[int]int{}}
}

// FingerprintHash returns the 64-bit canonical fingerprint of the state
// using a throwaway hasher. Searches should allocate one FPHasher and call
// its Hash method instead.
func (s *State) FingerprintHash() uint64 {
	return NewFPHasher().Hash(s)
}

func (e *FPHasher) byte(b byte) {
	e.h ^= uint64(b)
	e.h *= fnvPrime64
}

func (e *FPHasher) int64(v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		e.byte(byte(u))
		u >>= 8
	}
}

// str hashes the bytes of s followed by a 0 terminator, so adjacent names
// cannot be re-segmented into each other.
func (e *FPHasher) str(s string) {
	for i := 0; i < len(s); i++ {
		e.byte(s[i])
	}
	e.byte(0)
}

func (e *FPHasher) touchObj(idx int) int {
	if n, ok := e.objOrder[idx]; ok {
		return n
	}
	n := len(e.objOrder)
	e.objOrder[idx] = n
	e.objList = append(e.objList, idx)
	return n
}

// val mirrors fpEncoder.val byte-for-case: each case writes a distinct tag
// so values of different kinds cannot hash-alias structurally.
func (e *FPHasher) val(v Value) {
	switch v.Kind {
	case KInt:
		e.byte('i')
		e.int64(v.I)
	case KBool:
		e.byte('b')
		e.int64(v.I)
	case KFunc:
		e.byte('f')
		e.str(v.Fn)
	case KNull:
		e.byte('n')
	case KUnit:
		e.byte('u')
	case KPtr:
		c := v.Ptr
		switch c.Kind {
		case CGlobal:
			e.byte('g')
			e.int64(int64(c.Idx))
		case CHeapField:
			e.byte('h')
			e.int64(int64(e.touchObj(c.Idx)))
			e.int64(int64(c.Field))
		case CObject:
			e.byte('o')
			e.int64(int64(e.touchObj(c.Idx)))
		case CLocal:
			if n, ok := e.frameCanon[c.FrameID]; ok {
				e.byte('l')
				e.int64(int64(n))
			} else {
				e.byte('L') // dangling
			}
			e.int64(int64(c.Field))
		}
	}
}

// Hash returns the canonical 64-bit fingerprint of s. Two states with equal
// FingerprintString always hash equal; the converse holds up to 64-bit
// collisions.
func (e *FPHasher) Hash(s *State) uint64 {
	clear(e.objOrder)
	clear(e.frameCanon)
	e.objList = e.objList[:0]
	e.h = fnvOffset64

	for ti, t := range s.Threads {
		for d, fr := range t.Frames {
			e.frameCanon[fr.ID] = ti<<16 | d
		}
	}

	e.byte('G')
	for _, v := range s.Globals {
		e.val(v)
	}
	e.byte('T')
	for _, t := range s.Threads {
		e.byte('[')
		for _, fr := range t.Frames {
			e.byte('(')
			e.str(fr.CF.Fn.Name)
			e.int64(int64(fr.PC))
			for _, v := range fr.Locals {
				e.val(v)
			}
			e.byte('r')
			e.str(fr.Result)
			e.byte(')')
		}
		e.byte(']')
	}

	if len(s.Ts) > 0 {
		e.tsOrder = s.appendTsOrder(e.tsOrder[:0])
		e.byte('S')
		for _, i := range e.tsOrder {
			p := s.Ts[i]
			e.str(p.Fn)
			e.byte('(')
			for _, a := range p.Args {
				e.val(a)
			}
			e.byte(')')
		}
	}

	// Heap contents of reached objects in canonical order; hashing may
	// discover further objects, so iterate as a worklist.
	e.byte('H')
	for i := 0; i < len(e.objList); i++ {
		o := s.Heap[e.objList[i]]
		e.byte('O')
		e.int64(int64(i))
		e.str(o.Rec)
		e.byte('{')
		for _, v := range o.Fields {
			e.val(v)
		}
		e.byte('}')
	}
	return e.h
}
