package sem

// Call-grained procedure summaries: fold memoization lifted to call
// boundaries, in the Sharir–Pnueli/RHS style that internal/boolcheck
// already uses for its decidability argument — but exact-value and
// bit-identical, like FoldMemo, rather than abstract.
//
// FoldMemo keys a whole fold by the thread's FULL raw frame stack, so a
// recorded fold replays only when the entire calling context recurs with
// the same raw frame ids — hit ratio 0.373 on the corpus, because the
// KISS transformation calls the same small helpers (check_r, check_w,
// the unwinding tests) from many sites and every call instance allocates
// fresh frame ids. A summary instead covers exactly one CALL: the
// segment from the OpCall instruction to the matching return, keyed by
// (thread id, caller function, caller PC) — no frame ids, no caller
// stack — plus the call's exact read footprint. That makes the entry
// transfer across call instances and across checks of the same program.
//
// What makes the transfer sound is a single normalization: the only
// instance-dependent names a call segment can observe are (a) the
// caller's frame id, and (b) ids of frames the segment itself creates.
// For (a), reads of the caller's locals are recorded as locCallerLocal
// (slot only) and every recorded value that is a pointer into the caller
// frame is rewritten to a marker frame id (markerFrameID), mapped back
// to the live caller at replay. For (b), the segment's own frames are
// all popped by the time it closes (depth returns to the caller), so
// they can only leak as dangling pointers in surviving values or in
// return-event text — entries are REJECTED (or the recording layer
// aborted) when that happens, and nextFrameID advances by a stored
// relative delta rather than a pinned absolute value. Everything else —
// heap indices, globals, deeper frames reached through pointer
// arguments, the ts multiset — is raw and exact, pinned by the footprint
// just as in FoldMemo, so replay stays bit-identical: same events, same
// raw successor state, same counters.
//
// Composition: while a fold is recording (FoldMemo's recorder and/or
// enclosing summary layers), a summary hit does not execute the call —
// so the hit FEEDS its footprint reads and write marks through the
// standard recorder hooks, denormalized to the current instance, before
// its delta is applied. Each sink's own filters then reproduce exactly
// what execution would have recorded (an enclosing layer re-normalizes
// to ITS caller), which is what lets an outer call's summary subsume
// inner calls — replay of the outer entry replays the nested calls in
// O(footprint) without consulting them.
//
// The table has the same shape as FoldMemo: exact-value decision trees
// per call site, 64 shards, per-shard intrusive LRU under a byte budget,
// per-site warm-up bits (first miss runs bare). Unlike FoldMemo it may
// OUTLIVE a check: kissd keys a table by program identity and hands it
// to every check of that program, so BindCompile caches the compiled
// program alongside (entries compare *CompiledFunc by pointer).
// Config.AuditFoldMemo covers summaries too: every hit re-executes the
// segment and compares, counting mismatches and dropping bad entries.

import (
	"sync"
	"sync/atomic"
)

const (
	// DefaultSummaryBytes is the table budget when the caller passes
	// none; sized like DefaultMemoBytes to keep warm tables resident.
	DefaultSummaryBytes = 256 << 20
	// sumShards matches memoShards.
	sumShards = 64
	// summaryMinStepped is the shortest segment worth an entry: a call
	// plus its matching return is already two micro steps.
	summaryMinStepped = 2
)

const (
	// maxOpenLayers caps the recording-layer stack (the composition
	// depth cap of DESIGN.md decision 16): deeper nests still record
	// their outermost layers, inner calls ride along inside them.
	maxOpenLayers = 16
	// markerFrameID stands for "the caller's frame" in normalized values.
	markerFrameID = -1
)

// locCallerLocal extends the memoLoc kinds: a read of the caller frame's
// local slot b, normalized so the entry transfers across call instances.
const locCallerLocal memoLocKind = locNextThreadID + 1

// sumSite identifies a call site: the thread id, the caller function,
// and the PC of the OpCall instruction. CompiledFunc pointers tie the
// site to one Compiled program (see SummaryTable.BindCompile).
type sumSite struct {
	tid int
	cf  *CompiledFunc
	pc  int
}

func siteHash(tid int, cf *CompiledFunc, pc int) uint64 {
	h := uint64(fnvOffset64)
	h = Mix64(h, cf.nameHash)
	h = Mix64(h, uint64(pc))
	h = Mix64(h, uint64(tid))
	return h
}

// deepFrameWrite is a write delta against a pre-existing frame below the
// caller, reached through a pointer argument. The raw frame id is sound:
// the pointer that reached it is footprint-pinned.
type deepFrameWrite struct {
	frameID int32
	slots   []slotWrite
}

// sumDelta reproduces the segment's effect from any footprint-matching
// base. Values are stored normalized (markerFrameID for caller-frame
// pointers) and denormalized against the live caller at replay. There
// are no pushed frames, new threads, or absolute id counters: the
// segment's frames are all popped by close, async breaks sole-liveness
// (discarding the layer), and nextFrameID advances by the relative
// frameIDDelta.
type sumDelta struct {
	callerPC     int32
	callerSlots  []slotWrite
	deepFrames   []deepFrameWrite
	globals      []slotWrite
	objFields    []objFieldWrite
	newObjs      []newObjCopy
	tsChanged    bool
	ts           []Pending
	frameIDDelta int32
}

// sumEntry is one recorded call segment. Immutable once stored.
type sumEntry struct {
	site     sumSite
	siteHash uint64
	group    *sumGroup
	reads    []memoRead // normalized footprint
	ts       []Pending  // normalized base ts when the footprint includes locTsFull
	stepped  int
	events   []Event // every segment event, the matching return last
	idx      []int32 // unpruned successor index taken at each segment step
	delta    sumDelta

	bytes      int
	linked     bool
	prev, next *sumEntry
}

// sumGroup collects the entries of one call site as an exact-value
// decision tree over the normalized read stream — the same determinism
// argument as memoGroup: from a fixed site, the segment's i-th read
// location is a function of the values observed by reads 0..i-1, so a
// lookup reads each location once and descends by value. Natural-close
// entries only, so complete footprints are never proper prefixes of each
// other and each tree path holds at most one entry.
type sumGroup struct {
	site sumSite
	root sumNode
}

// sumNode mirrors memoNode, including the kidIdx map built over
// non-locTsFull kids once fan-out crosses kidMapThreshold (see memo.go).
type sumNode struct {
	leaf   *sumEntry
	kids   []sumKid
	kidIdx map[memoRead]int32
}

type sumKid struct {
	r  memoRead
	ts []Pending
	n  *sumNode
}

// normVal rewrites pointers into the caller's frame to the marker id.
// ok=false flags a value embedding an in-segment frame id (>= baseNext),
// which no transferable entry may contain.
func normVal(v Value, callerID, baseNext int) (Value, bool) {
	if v.Kind != KPtr || v.Ptr.Kind != CLocal {
		return v, true
	}
	if v.Ptr.FrameID == callerID {
		v.Ptr.FrameID = markerFrameID
		return v, true
	}
	if v.Ptr.FrameID >= baseNext {
		return v, false
	}
	return v, true
}

// denormVal maps the marker back to the live caller's frame id.
func denormVal(v Value, callerID int) Value {
	if v.Kind == KPtr && v.Ptr.Kind == CLocal && v.Ptr.FrameID == markerFrameID {
		v.Ptr.FrameID = callerID
	}
	return v
}

// sumLayer records one open call segment. Layers stack with nesting and
// are fed by the foldRecorder hook fan-out; each keeps its own
// baselines, so values and locations normalize against ITS caller.
type sumLayer struct {
	site     sumSite
	siteHash uint64
	callerID int
	d0       int // caller frame depth; the segment closes when ti returns here
	base     *State

	baseHeapLen   int
	baseNextFrame int

	startEv      int
	startStepped int

	reads   []memoRead
	seen    map[memoLoc]struct{}
	written map[memoLoc]struct{}
	ts      []Pending

	tsSeen      bool
	tsWritten   bool
	heapLenSeen bool
	aborted     bool
}

var layerPool = sync.Pool{New: func() any {
	return &sumLayer{
		seen:    make(map[memoLoc]struct{}),
		written: make(map[memoLoc]struct{}),
	}
}}

func (l *sumLayer) reset(s *State, ti int, fr *Frame, startEv, startStepped int) {
	l.site = sumSite{tid: s.Threads[ti].ID, cf: fr.CF, pc: fr.PC}
	l.siteHash = siteHash(l.site.tid, l.site.cf, l.site.pc)
	l.callerID = fr.ID
	l.d0 = len(s.Threads[ti].Frames)
	l.base = s
	l.baseHeapLen = len(s.Heap)
	l.baseNextFrame = s.nextFrameID
	l.startEv = startEv
	l.startStepped = startStepped
	l.reads = l.reads[:0]
	clear(l.seen)
	clear(l.written)
	l.ts = nil
	l.tsSeen, l.tsWritten, l.heapLenSeen = false, false, false
	l.aborted = false
}

func (l *sumLayer) note(loc memoLoc, v Value) {
	if l.aborted {
		return
	}
	if _, ok := l.written[loc]; ok {
		return
	}
	if _, ok := l.seen[loc]; ok {
		return
	}
	l.seen[loc] = struct{}{}
	l.reads = append(l.reads, memoRead{loc: loc, v: v})
}

// noteNorm normalizes the value first, aborting the layer on the
// (impossible short of a bug) in-segment pointer read.
func (l *sumLayer) noteNorm(loc memoLoc, v Value) {
	nv, ok := normVal(v, l.callerID, l.baseNextFrame)
	if !ok {
		l.aborted = true
		return
	}
	l.note(loc, nv)
}

func (l *sumLayer) readGlobal(idx int, v Value) {
	l.noteNorm(memoLoc{k: locGlobal, a: int32(idx)}, v)
}

func (l *sumLayer) readHeapField(obj, field int, v Value) {
	if obj >= l.baseHeapLen {
		return
	}
	l.noteNorm(memoLoc{k: locHeapField, a: int32(obj), b: int32(field)}, v)
}

func (l *sumLayer) readHeapRec(obj int, rec string) {
	if obj >= l.baseHeapLen {
		return
	}
	l.note(memoLoc{k: locHeapRec, a: int32(obj)}, Value{Fn: rec})
}

func (l *sumLayer) localLoc(frameID, slot int) (memoLoc, bool) {
	if frameID >= l.baseNextFrame {
		return memoLoc{}, false // created by the segment: determined
	}
	if frameID == l.callerID {
		return memoLoc{k: locCallerLocal, b: int32(slot)}, true
	}
	return memoLoc{k: locLocal, a: int32(frameID), b: int32(slot)}, true
}

func (l *sumLayer) readLocal(frameID, slot int, v Value) {
	loc, ok := l.localLoc(frameID, slot)
	if !ok {
		return
	}
	l.noteNorm(loc, v)
}

func (l *sumLayer) readDangling(frameID, slot int) {
	if frameID >= l.baseNextFrame {
		return
	}
	l.note(memoLoc{k: locDangling, a: int32(frameID), b: int32(slot)}, Value{})
}

func (l *sumLayer) readTs(ts []Pending) {
	if l.aborted || l.tsSeen || l.tsWritten {
		return
	}
	nts, ok := normTs(ts, l.callerID, l.baseNextFrame)
	if !ok {
		l.aborted = true
		return
	}
	l.tsSeen = true
	l.reads = append(l.reads, memoRead{loc: memoLoc{k: locTsFull}})
	l.ts = nts
}

func (l *sumLayer) readHeapLen(n int) {
	if l.aborted || l.heapLenSeen {
		return
	}
	l.heapLenSeen = true
	l.reads = append(l.reads, memoRead{loc: memoLoc{k: locHeapLen, a: int32(n)}})
}

// noteReturn inspects a return value about to become event text
// ("return " + rv.String() is the one dynamic event rendering): a
// pointer into the caller frame or into a segment-created frame would
// bake an instance-specific id into the stored event, so the layer
// aborts.
func (l *sumLayer) noteReturn(rv Value) {
	if rv.Kind == KPtr && rv.Ptr.Kind == CLocal &&
		(rv.Ptr.FrameID == l.callerID || rv.Ptr.FrameID >= l.baseNextFrame) {
		l.aborted = true
	}
}

func (l *sumLayer) wroteGlobal(idx int) {
	if l.aborted {
		return
	}
	l.written[memoLoc{k: locGlobal, a: int32(idx)}] = struct{}{}
}

func (l *sumLayer) wroteHeapField(obj, field int) {
	if l.aborted || obj >= l.baseHeapLen {
		return
	}
	l.written[memoLoc{k: locHeapField, a: int32(obj), b: int32(field)}] = struct{}{}
}

func (l *sumLayer) wroteLocal(frameID, slot int) {
	if l.aborted {
		return
	}
	loc, ok := l.localLoc(frameID, slot)
	if !ok {
		return
	}
	l.written[loc] = struct{}{}
}

func (l *sumLayer) wroteTs() { l.tsWritten = true }

// normTs returns a copy of ts with every argument normalized.
func normTs(ts []Pending, callerID, baseNext int) ([]Pending, bool) {
	out := make([]Pending, len(ts))
	for i, p := range ts {
		args := make([]Value, len(p.Args))
		for j, a := range p.Args {
			na, ok := normVal(a, callerID, baseNext)
			if !ok {
				return nil, false
			}
			args[j] = na
		}
		out[i] = Pending{Fn: p.Fn, Args: args}
	}
	return out, true
}

// sumTsMatch compares a stored (normalized) ts snapshot against the raw
// observed multiset of a lookup base, normalizing on the fly.
func sumTsMatch(stored []Pending, obs []Pending, callerID int) bool {
	if len(stored) != len(obs) {
		return false
	}
	for i := range stored {
		if stored[i].Fn != obs[i].Fn || len(stored[i].Args) != len(obs[i].Args) {
			return false
		}
		for j := range stored[i].Args {
			ov := obs[i].Args[j]
			if ov.Kind == KPtr && ov.Ptr.Kind == CLocal && ov.Ptr.FrameID == callerID {
				ov.Ptr.FrameID = markerFrameID
			}
			if stored[i].Args[j] != ov {
				return false
			}
		}
	}
	return true
}

// SummaryStats is a point-in-time snapshot of the table's counters.
type SummaryStats struct {
	Hits            int64
	Misses          int64
	Stores          int64
	Evictions       int64
	StepsSaved      int64
	Composed        int64
	MaxDepth        int64
	AuditMismatches int64
	Entries         int64
	Bytes           int64
}

// HitRatio returns hits/(hits+misses), or 0 with no lookups.
func (st SummaryStats) HitRatio() float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// Sub returns the counter deltas st − prev; Entries/Bytes stay absolute
// (they describe the table now, not an interval).
func (st SummaryStats) Sub(prev SummaryStats) SummaryStats {
	return SummaryStats{
		Hits:            st.Hits - prev.Hits,
		Misses:          st.Misses - prev.Misses,
		Stores:          st.Stores - prev.Stores,
		Evictions:       st.Evictions - prev.Evictions,
		StepsSaved:      st.StepsSaved - prev.StepsSaved,
		Composed:        st.Composed - prev.Composed,
		MaxDepth:        st.MaxDepth,
		AuditMismatches: st.AuditMismatches - prev.AuditMismatches,
		Entries:         st.Entries,
		Bytes:           st.Bytes,
	}
}

type sumShard struct {
	mu      sync.Mutex
	m       map[uint64][]*sumGroup
	head    *sumEntry
	tail    *sumEntry
	bytes   int64
	entries int64
	seen    []uint64
	_       [24]byte
}

// SummaryTable is the sharded, byte-budgeted call-summary cache. Safe
// for concurrent use by a search's workers, and — unlike FoldMemo —
// safe to hand to a SEQUENCE of checks of the same program (kissd does):
// entries carry no per-check state, and BindCompile pins the one
// Compiled program the sites refer to.
type SummaryTable struct {
	shards   []sumShard
	mask     uint64
	perShard int64
	audit    bool

	compileMu sync.Mutex
	compiled  *Compiled

	hits            atomic.Int64
	misses          atomic.Int64
	stores          atomic.Int64
	evictions       atomic.Int64
	stepsSaved      atomic.Int64
	composed        atomic.Int64
	maxDepth        atomic.Int64
	auditMismatches atomic.Int64
}

// NewSummaryTable returns a table with the given byte budget (<= 0
// selects DefaultSummaryBytes). With audit set, every hit re-executes
// the segment and compares byte-for-byte, dropping mismatching entries.
func NewSummaryTable(budgetBytes int64, audit bool) *SummaryTable {
	if budgetBytes <= 0 {
		budgetBytes = DefaultSummaryBytes
	}
	t := &SummaryTable{
		shards:   make([]sumShard, sumShards),
		mask:     sumShards - 1,
		perShard: budgetBytes / sumShards,
		audit:    audit,
	}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64][]*sumGroup)
	}
	return t
}

// Audit reports whether the table verifies every hit by re-execution.
func (t *SummaryTable) Audit() bool { return t.audit }

// BindCompile returns the one Compiled program this table serves,
// compiling it on first use. A persistent table's entries hold
// *CompiledFunc pointers, so every check reusing the table must run the
// SAME compiled object — the service keys tables by program content
// hash, and this pins the pointer identity to match.
func (t *SummaryTable) BindCompile(f func() (*Compiled, error)) (*Compiled, error) {
	t.compileMu.Lock()
	defer t.compileMu.Unlock()
	if t.compiled != nil {
		return t.compiled, nil
	}
	c, err := f()
	if err != nil {
		return nil, err
	}
	t.compiled = c
	return c, nil
}

func (t *SummaryTable) shardFor(h uint64) *sumShard {
	return &t.shards[(h^h>>32)&t.mask]
}

// Stats returns a snapshot of the table's counters.
func (t *SummaryTable) Stats() SummaryStats {
	st := SummaryStats{
		Hits:            t.hits.Load(),
		Misses:          t.misses.Load(),
		Stores:          t.stores.Load(),
		Evictions:       t.evictions.Load(),
		StepsSaved:      t.stepsSaved.Load(),
		Composed:        t.composed.Load(),
		MaxDepth:        t.maxDepth.Load(),
		AuditMismatches: t.auditMismatches.Load(),
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		st.Entries += sh.entries
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// lookup probes the table at a call site (ti's next instruction is the
// OpCall at fr.PC; fr is ti's top frame). Returns the matching entry or
// nil, plus whether the site is warm — missed before — which gates
// opening a recording layer (first visits run bare, as in FoldMemo).
func (t *SummaryTable) lookup(s *State, ti int, fr *Frame) (*sumEntry, bool) {
	h := siteHash(s.Threads[ti].ID, fr.CF, fr.PC)
	sh := t.shardFor(h)
	sh.mu.Lock()
	for _, g := range sh.m[h] {
		if g.site.cf != fr.CF || g.site.pc != fr.PC || g.site.tid != s.Threads[ti].ID {
			continue
		}
		if e := g.find(s, ti, fr.ID); e != nil {
			sh.moveFront(e)
			sh.mu.Unlock()
			return e, true
		}
		break
	}
	if sh.seen == nil {
		sh.seen = make([]uint64, seenWords)
	}
	w, bit := (h>>6)&(seenWords-1), uint64(1)<<(h&63)
	warm := sh.seen[w]&bit != 0
	sh.seen[w] |= bit
	sh.mu.Unlock()
	t.misses.Add(1)
	return nil, warm
}

// find descends the site's decision tree at s, normalizing each observed
// read against the live caller (id callerID) before comparing.
func (g *sumGroup) find(s *State, ti, callerID int) *sumEntry {
	n := &g.root
	for {
		if n.leaf != nil {
			return n.leaf
		}
		if len(n.kids) == 0 {
			return nil
		}
		var or memoRead
		switch loc := n.kids[0].r.loc; loc.k {
		case locGlobal:
			if int(loc.a) >= len(s.Globals) {
				return nil
			}
			v, ok := normVal(s.Globals[loc.a], callerID, s.nextFrameID)
			if !ok {
				return nil
			}
			or = memoRead{loc: loc, v: v}
		case locHeapField:
			if int(loc.a) >= len(s.Heap) {
				return nil
			}
			o := s.Heap[loc.a]
			if int(loc.b) >= len(o.Fields) {
				return nil
			}
			v, ok := normVal(o.Fields[loc.b], callerID, s.nextFrameID)
			if !ok {
				return nil
			}
			or = memoRead{loc: loc, v: v}
		case locHeapRec:
			if int(loc.a) >= len(s.Heap) {
				return nil
			}
			or = memoRead{loc: loc, v: Value{Fn: s.Heap[loc.a].Rec}}
		case locCallerLocal:
			fr := findFrameInThread(s.Threads[ti], callerID)
			if fr == nil || int(loc.b) >= len(fr.Locals) {
				return nil
			}
			v, ok := normVal(fr.Locals[loc.b], callerID, s.nextFrameID)
			if !ok {
				return nil
			}
			or = memoRead{loc: loc, v: v}
		case locLocal:
			fr := findFrameInThread(s.Threads[ti], int(loc.a))
			if fr == nil || int(loc.b) >= len(fr.Locals) {
				return nil
			}
			v, ok := normVal(fr.Locals[loc.b], callerID, s.nextFrameID)
			if !ok {
				return nil
			}
			or = memoRead{loc: loc, v: v}
		case locDangling:
			if findFrameInThread(s.Threads[ti], int(loc.a)) != nil {
				return nil
			}
			or = memoRead{loc: loc}
		case locTsFull:
			next := (*sumNode)(nil)
			for i := range n.kids {
				k := &n.kids[i]
				if k.r.loc.k == locTsFull && sumTsMatch(k.ts, s.Ts, callerID) {
					next = k.n
					break
				}
			}
			if next == nil {
				return nil
			}
			n = next
			continue
		case locHeapLen:
			or = memoRead{loc: memoLoc{k: locHeapLen, a: int32(len(s.Heap))}}
		default:
			return nil
		}
		next := (*sumNode)(nil)
		if n.kidIdx != nil {
			if j, ok := n.kidIdx[or]; ok {
				next = n.kids[j].n
			}
		} else {
			for i := range n.kids {
				if readEq(n.kids[i].r, or) {
					next = n.kids[i].n
					break
				}
			}
		}
		if next == nil {
			return nil
		}
		n = next
	}
}

// insert threads e's footprint into the tree; false if an entry already
// occupies the path (another worker recorded the same segment).
func (g *sumGroup) insert(e *sumEntry) bool {
	n := &g.root
	for i := range e.reads {
		r := e.reads[i]
		var next *sumNode
		if r.loc.k == locTsFull {
			for j := range n.kids {
				k := &n.kids[j]
				if k.r.loc.k == locTsFull && tsEqual(e.ts, k.ts) {
					next = k.n
					break
				}
			}
		} else if n.kidIdx != nil {
			if j, ok := n.kidIdx[r]; ok {
				next = n.kids[j].n
			}
		} else {
			for j := range n.kids {
				if readEq(n.kids[j].r, r) {
					next = n.kids[j].n
					break
				}
			}
		}
		if next == nil {
			next = &sumNode{}
			kid := sumKid{r: r, n: next}
			if r.loc.k == locTsFull {
				kid.ts = e.ts
			}
			n.kids = append(n.kids, kid)
			if r.loc.k != locTsFull {
				if n.kidIdx != nil {
					n.kidIdx[r] = int32(len(n.kids) - 1)
				} else if len(n.kids) >= kidMapThreshold {
					n.kidIdx = make(map[memoRead]int32, len(n.kids))
					for j := range n.kids {
						n.kidIdx[n.kids[j].r] = int32(j)
					}
				}
			}
		}
		n = next
	}
	if n.leaf != nil {
		return false
	}
	n.leaf = e
	return true
}

func (n *sumNode) removeEntry(e *sumEntry, reads []memoRead) {
	if len(reads) == 0 {
		if n.leaf == e {
			n.leaf = nil
		}
		return
	}
	r := reads[0]
	for j := range n.kids {
		k := &n.kids[j]
		var match bool
		if r.loc.k == locTsFull {
			match = k.r.loc.k == locTsFull && tsEqual(e.ts, k.ts)
		} else {
			match = k.r == r
		}
		if !match {
			continue
		}
		k.n.removeEntry(e, reads[1:])
		if k.n.leaf == nil && len(k.n.kids) == 0 {
			removed := n.kids[j].r
			last := len(n.kids) - 1
			n.kids[j] = n.kids[last]
			n.kids[last] = sumKid{}
			n.kids = n.kids[:last]
			// Maintained in place, as in memoNode.removeEntry.
			if n.kidIdx != nil {
				delete(n.kidIdx, removed)
				if j < last {
					n.kidIdx[n.kids[j].r] = int32(j)
				}
			}
		}
		return
	}
}

func (g *sumGroup) empty() bool {
	return g.root.leaf == nil && len(g.root.kids) == 0
}

// feed replays the entry's footprint and write set through the standard
// recorder hooks, denormalized to the current call instance, so every
// active sink (the fold recorder, enclosing layers) records exactly what
// executing the segment would have fed it. Reads go first in recorded
// order (they are pre-write by construction), then the write marks; a
// frame-consuming segment feeds the id counter to the fold part only
// (layers track it relatively via their own diff).
func feed(rec *foldRecorder, s *State, ti int, e *sumEntry) {
	callerID := s.Threads[ti].Top().ID
	for _, r := range e.reads {
		switch r.loc.k {
		case locGlobal:
			rec.readGlobal(int(r.loc.a), denormVal(r.v, callerID))
		case locHeapField:
			rec.readHeapField(int(r.loc.a), int(r.loc.b), denormVal(r.v, callerID))
		case locHeapRec:
			rec.readHeapRec(int(r.loc.a), r.v.Fn)
		case locCallerLocal:
			rec.readLocal(callerID, int(r.loc.b), denormVal(r.v, callerID))
		case locLocal:
			rec.readLocal(int(r.loc.a), int(r.loc.b), denormVal(r.v, callerID))
		case locDangling:
			rec.readDangling(int(r.loc.a), int(r.loc.b))
		case locTsFull:
			rec.readTs(s.Ts)
		case locHeapLen:
			rec.readHeapLen(len(s.Heap))
		}
	}
	d := &e.delta
	if d.frameIDDelta != 0 {
		rec.readNextFrameID(s.nextFrameID)
	}
	for _, w := range d.globals {
		rec.wroteGlobal(int(w.idx))
	}
	for _, w := range d.objFields {
		rec.wroteHeapField(int(w.obj), int(w.field))
	}
	for _, w := range d.callerSlots {
		rec.wroteLocal(callerID, int(w.idx))
	}
	for i := range d.deepFrames {
		df := &d.deepFrames[i]
		for _, w := range df.slots {
			rec.wroteLocal(int(df.frameID), int(w.idx))
		}
	}
	if d.tsChanged {
		rec.wroteTs()
	}
}

// applySumDelta clones s and applies the entry's delta through the COW
// accessors, denormalizing values against the live caller — raw-exactly
// what executing the segment from s would have produced.
func applySumDelta(s *State, ti int, e *sumEntry) *State {
	callerID := s.Threads[ti].Top().ID
	d := &e.delta
	ns := s.Clone()
	if len(d.globals) > 0 {
		g := ns.mutableGlobals()
		for _, w := range d.globals {
			g[w.idx] = denormVal(w.v, callerID)
		}
	}
	for _, w := range d.objFields {
		ns.mutableObject(int(w.obj)).Fields[w.field] = denormVal(w.v, callerID)
	}
	for i := range d.newObjs {
		no := &d.newObjs[i]
		fields := make([]Value, len(no.fields))
		for j, v := range no.fields {
			fields[j] = denormVal(v, callerID)
		}
		ns.appendObject(&Object{Rec: no.rec, Fields: fields})
	}
	fr := ns.MutableTopFrame(ti)
	fr.PC = int(d.callerPC)
	for _, w := range d.callerSlots {
		fr.Locals[w.idx] = denormVal(w.v, callerID)
	}
	for i := range d.deepFrames {
		df := &d.deepFrames[i]
		dti, fi := ns.findFrameIndex(int(df.frameID))
		if dti < 0 {
			continue // unreachable: the diff verified the frame live
		}
		dfr := ns.mutableFrame(dti, fi)
		for _, w := range df.slots {
			dfr.Locals[w.idx] = denormVal(w.v, callerID)
		}
	}
	if d.tsChanged {
		ts := make([]Pending, len(d.ts))
		for i, p := range d.ts {
			args := make([]Value, len(p.Args))
			for j, a := range p.Args {
				args[j] = denormVal(a, callerID)
			}
			ts[i] = Pending{Fn: p.Fn, Args: args}
		}
		ns.Ts = ts
		ns.tsGen = ns.gen
	}
	ns.nextFrameID += int(d.frameIDDelta)
	return ns
}

// replay produces the post-segment state for a hit. Without audit it
// feeds active sinks and applies the delta — zero Step calls. With audit
// it executes the segment for real (hooks feed sinks naturally),
// compares state and events byte-for-byte, and returns the executed
// result; mismatches drop the entry and report !ok so the caller falls
// back to plain stepping.
func (t *SummaryTable) replay(s *State, ti int, rec *foldRecorder, e *sumEntry) (*State, bool) {
	if !t.audit {
		if rec != nil && (rec.foldActive || len(rec.layers) > 0) {
			feed(rec, s, ti, e)
			if len(rec.layers) > 0 {
				t.composed.Add(1)
			}
		}
		t.hits.Add(1)
		t.stepsSaved.Add(int64(e.stepped))
		return applySumDelta(s, ti, e), true
	}
	final, ok := t.execSegment(s, ti, e)
	if !ok {
		t.auditMismatches.Add(1)
		t.remove(e)
		return nil, false
	}
	t.hits.Add(1)
	t.stepsSaved.Add(int64(e.stepped))
	return final, true
}

// execSegment re-executes a summarized segment step by step (the audit
// path), verifying each event, index, and the final state against the
// entry. Returns the executed final state so audit hits are correct by
// construction.
func (t *SummaryTable) execSegment(s *State, ti int, e *sumEntry) (*State, bool) {
	cur := s
	for i := 0; i < e.stepped; i++ {
		sr := Step(cur, ti)
		if sr.Failure != nil || sr.Blocked {
			return nil, false
		}
		outs := sr.Outcomes
		var idxs []int32
		if len(outs) > 1 {
			outs, idxs = pruneInfeasible(sr.Outcomes, ti)
		}
		if len(outs) != 1 || !soleLive(outs[0].State, ti) {
			return nil, false
		}
		idx0 := int32(0)
		if idxs != nil {
			idx0 = idxs[0]
		}
		if outs[0].Event != e.events[i] || idx0 != e.idx[i] {
			return nil, false
		}
		cur = outs[0].State
	}
	want := applySumDelta(s, ti, e)
	want.rec = nil
	if !rawStateEqual(cur, want) {
		return nil, false
	}
	return cur, true
}

// remove drops an entry (audit mismatch) if it is still in the table.
func (t *SummaryTable) remove(e *sumEntry) {
	sh := t.shardFor(e.siteHash)
	sh.mu.Lock()
	if e.linked {
		sh.unlinkLocked(e)
	}
	sh.mu.Unlock()
}

// store builds and inserts the entry for a closed layer. events/idx are
// owned by the entry (exact-size copies made by the caller).
func (t *SummaryTable) store(l *sumLayer, end *State, ti int, events []Event, idx []int32, stepped int) {
	if l.aborted || stepped < summaryMinStepped {
		return
	}
	d, ok := sumDiff(l, end, ti)
	if !ok {
		return
	}
	e := &sumEntry{
		site:     l.site,
		siteHash: l.siteHash,
		reads:    append([]memoRead(nil), l.reads...),
		stepped:  stepped,
		events:   events,
		idx:      idx,
		delta:    d,
	}
	if l.tsSeen {
		e.ts = l.ts
	}
	e.bytes = sumEntrySize(e)

	sh := t.shardFor(e.siteHash)
	sh.mu.Lock()
	var g *sumGroup
	for _, cand := range sh.m[e.siteHash] {
		if cand.site == e.site {
			g = cand
			break
		}
	}
	if g == nil {
		g = &sumGroup{site: e.site}
		sh.m[e.siteHash] = append(sh.m[e.siteHash], g)
	}
	e.group = g
	if !g.insert(e) {
		sh.mu.Unlock()
		return
	}
	e.linked = true
	sh.pushFront(e)
	sh.bytes += int64(e.bytes)
	sh.entries++
	for sh.bytes > t.perShard && sh.tail != nil && sh.tail != e {
		sh.unlinkLocked(sh.tail)
		t.evictions.Add(1)
	}
	sh.mu.Unlock()
	t.stores.Add(1)
}

// sumDiff computes the normalized write delta of a closed segment.
// ok=false rejects segments whose effect does not fit the transferable
// model: surviving threads/frames outside the caller's reach, a value
// embedding a segment-created frame id, or a consumed thread id.
func sumDiff(l *sumLayer, end *State, ti int) (sumDelta, bool) {
	base := l.base
	d := sumDelta{frameIDDelta: int32(end.nextFrameID - base.nextFrameID)}
	if end.nextThreadID != base.nextThreadID || len(end.Threads) != len(base.Threads) {
		return d, false
	}
	// As in diffOutcome: value scans plus an equal-value force pass over
	// the short write set, instead of a map probe per compared slot.
	var wGlobals, wFields, wCaller, wLocals []memoLoc
	for loc := range l.written {
		switch loc.k {
		case locGlobal:
			wGlobals = append(wGlobals, loc)
		case locHeapField:
			wFields = append(wFields, loc)
		case locCallerLocal:
			wCaller = append(wCaller, loc)
		case locLocal:
			wLocals = append(wLocals, loc)
		}
	}
	norm := func(v Value) (Value, bool) {
		return normVal(v, l.callerID, l.baseNextFrame)
	}

	if len(end.Globals) != len(base.Globals) {
		return d, false
	}
	if len(base.Globals) > 0 && &end.Globals[0] != &base.Globals[0] {
		for i := range end.Globals {
			if end.Globals[i] == base.Globals[i] {
				continue
			}
			nv, ok := norm(end.Globals[i])
			if !ok {
				return d, false
			}
			d.globals = append(d.globals, slotWrite{int32(i), nv})
		}
		for _, loc := range wGlobals {
			if i := int(loc.a); i < len(end.Globals) && end.Globals[i] == base.Globals[i] {
				nv, ok := norm(end.Globals[i])
				if !ok {
					return d, false
				}
				d.globals = append(d.globals, slotWrite{loc.a, nv})
			}
		}
	}

	if len(end.Heap) < len(base.Heap) {
		return d, false
	}
	for i := 0; i < len(base.Heap); i++ {
		bo, oo := base.Heap[i], end.Heap[i]
		if bo == oo {
			continue
		}
		if oo.Rec != bo.Rec || len(oo.Fields) != len(bo.Fields) {
			return d, false
		}
		for f := range oo.Fields {
			if oo.Fields[f] == bo.Fields[f] {
				continue
			}
			nv, ok := norm(oo.Fields[f])
			if !ok {
				return d, false
			}
			d.objFields = append(d.objFields, objFieldWrite{int32(i), int32(f), nv})
		}
		for _, loc := range wFields {
			if int(loc.a) != i {
				continue
			}
			if f := int(loc.b); f < len(oo.Fields) && oo.Fields[f] == bo.Fields[f] {
				nv, ok := norm(oo.Fields[f])
				if !ok {
					return d, false
				}
				d.objFields = append(d.objFields, objFieldWrite{loc.a, loc.b, nv})
			}
		}
	}
	for i := len(base.Heap); i < len(end.Heap); i++ {
		o := end.Heap[i]
		fields := make([]Value, len(o.Fields))
		for f, v := range o.Fields {
			nv, ok := norm(v)
			if !ok {
				return d, false
			}
			fields[f] = nv
		}
		d.newObjs = append(d.newObjs, newObjCopy{rec: o.Rec, fields: fields})
	}

	for j := range base.Threads {
		if j != ti && end.Threads[j] != base.Threads[j] {
			return d, false
		}
	}
	bt, ot := base.Threads[ti], end.Threads[ti]
	if len(ot.Frames) != l.d0 || len(bt.Frames) != l.d0 {
		return d, false
	}
	for j := 0; j < l.d0; j++ {
		bf, of := bt.Frames[j], ot.Frames[j]
		if of.ID != bf.ID {
			return d, false
		}
		isCaller := j == l.d0-1
		if bf == of {
			if isCaller {
				return d, false // the OpCall step always advances the caller PC
			}
			continue
		}
		if of.CF != bf.CF || of.Result != bf.Result || len(of.Locals) != len(bf.Locals) {
			return d, false
		}
		if isCaller {
			d.callerPC = int32(of.PC)
			for si := range of.Locals {
				if of.Locals[si] == bf.Locals[si] {
					continue
				}
				nv, ok := norm(of.Locals[si])
				if !ok {
					return d, false
				}
				d.callerSlots = append(d.callerSlots, slotWrite{int32(si), nv})
			}
			for _, loc := range wCaller {
				if si := int(loc.b); si < len(of.Locals) && of.Locals[si] == bf.Locals[si] {
					nv, ok := norm(of.Locals[si])
					if !ok {
						return d, false
					}
					d.callerSlots = append(d.callerSlots, slotWrite{loc.b, nv})
				}
			}
			continue
		}
		if of.PC != bf.PC {
			return d, false
		}
		df := deepFrameWrite{frameID: int32(bf.ID)}
		for si := range of.Locals {
			if of.Locals[si] == bf.Locals[si] {
				continue
			}
			nv, ok := norm(of.Locals[si])
			if !ok {
				return d, false
			}
			df.slots = append(df.slots, slotWrite{int32(si), nv})
		}
		for _, loc := range wLocals {
			if int(loc.a) != bf.ID {
				continue
			}
			if si := int(loc.b); si < len(of.Locals) && of.Locals[si] == bf.Locals[si] {
				nv, ok := norm(of.Locals[si])
				if !ok {
					return d, false
				}
				df.slots = append(df.slots, slotWrite{loc.b, nv})
			}
		}
		if len(df.slots) > 0 {
			d.deepFrames = append(d.deepFrames, df)
		}
	}

	if !tsEqual(end.Ts, base.Ts) {
		nts, ok := normTs(end.Ts, l.callerID, l.baseNextFrame)
		if !ok {
			return d, false
		}
		d.tsChanged = true
		d.ts = nts
	}
	return d, true
}

// sumEntrySize estimates an entry's heap footprint for the byte budget.
func sumEntrySize(e *sumEntry) int {
	n := 208 + len(e.reads)*80 + len(e.idx)*4
	for i := range e.ts {
		n += 40 + len(e.ts[i].Fn) + len(e.ts[i].Args)*64
	}
	for i := range e.events {
		n += eventSize(&e.events[i])
	}
	d := &e.delta
	n += len(d.globals)*72 + len(d.objFields)*80 + len(d.callerSlots)*72
	for j := range d.deepFrames {
		n += 24 + len(d.deepFrames[j].slots)*72
	}
	for j := range d.newObjs {
		n += 48 + len(d.newObjs[j].rec) + len(d.newObjs[j].fields)*64
	}
	for j := range d.ts {
		n += 40 + len(d.ts[j].Fn) + len(d.ts[j].Args)*64
	}
	return n
}

// LRU maintenance; callers hold the shard mutex.

func (sh *sumShard) pushFront(e *sumEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *sumShard) moveFront(e *sumEntry) {
	if sh.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
}

func (sh *sumShard) unlinkLocked(e *sumEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
	g := e.group
	g.root.removeEntry(e, e.reads)
	if g.empty() {
		bucket := sh.m[e.siteHash]
		for i, cur := range bucket {
			if cur == g {
				bucket[i] = bucket[len(bucket)-1]
				bucket[len(bucket)-1] = nil
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(sh.m, e.siteHash)
		} else {
			sh.m[e.siteHash] = bucket
		}
	}
	sh.bytes -= int64(e.bytes)
	sh.entries--
}
