package sem

import (
	"fmt"

	"repro/internal/ast"
)

// FailKind classifies how a program "goes wrong".
type FailKind int

const (
	// AssertFail is a violated assert statement. Under the race-checking
	// instrumentation, the asserts inside check_r/check_w fail exactly on
	// conflicting accesses, so races also surface as AssertFail.
	AssertFail FailKind = iota
	// RuntimeFail is a dynamic type or memory error (null dereference,
	// arithmetic on non-integers, call of a non-function, ...).
	RuntimeFail
)

func (k FailKind) String() string {
	if k == AssertFail {
		return "assertion failure"
	}
	return "runtime error"
}

// Failure describes a step that goes wrong.
type Failure struct {
	Kind     FailKind
	Pos      ast.Pos
	Msg      string
	ThreadID int
	// Fn is the function executing the failing statement.
	Fn string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("%s: %s: %s (thread %d)", f.Pos, f.Kind, f.Msg, f.ThreadID)
}

// EventKind classifies trace events.
type EventKind int

const (
	EvStmt EventKind = iota
	EvCall
	EvReturn
	EvAsync
	EvDispatch // sequential semantics: a pending thread scheduled from ts
)

// Event describes one executed step, for counterexample traces.
type Event struct {
	Kind     EventKind
	ThreadID int
	Fn       string // function executing the step
	Pos      ast.Pos
	Text     string
	Callee   string // EvCall/EvAsync/EvDispatch: target function
}

func (e Event) String() string {
	return fmt.Sprintf("[t%d %s %s] %s", e.ThreadID, e.Fn, e.Pos, e.Text)
}

// Outcome is one successor configuration together with the event that
// produced it.
type Outcome struct {
	State *State
	Event Event
}

// StepResult is the set of successors of one thread's next instruction.
type StepResult struct {
	Outcomes []Outcome
	// Failure, if non-nil, means some execution of the instruction goes
	// wrong (assertion failure or runtime error). Other branches may still
	// produce Outcomes.
	Failure *Failure
	// Blocked means the thread cannot currently proceed (a false assume,
	// or an atomic statement all of whose internal paths block). In the
	// concurrent semantics another thread may later unblock it.
	Blocked bool
}

// MaxAtomicSteps bounds the internal path exploration of a single atomic
// statement, guarding against iter-divergence inside atomic bodies.
const MaxAtomicSteps = 100000

// resolveJumps slides the frame's PC over consecutive unconditional jumps
// so that pure control transfers do not surface as scheduling points.
func resolveJumps(fr *Frame) {
	for fr.PC < len(fr.CF.Code) && fr.CF.Code[fr.PC].Op == OpJump {
		fr.PC = fr.CF.Code[fr.PC].Targets[0]
	}
}

// Step computes the successors of thread ti in state s. The input state is
// never mutated. A terminated thread yields an empty result.
func Step(s *State, ti int) StepResult {
	t := s.Threads[ti]
	fr := t.Top()
	if fr == nil {
		return StepResult{}
	}
	tid := t.ID

	// Implicit bare return at the end of the code.
	if fr.PC >= len(fr.CF.Code) {
		return doReturn(s, ti, UnitV(), ast.Pos{}, fr.CF.Fn.Name)
	}

	in := &fr.CF.Code[fr.PC]
	ev := Event{Kind: EvStmt, ThreadID: tid, Fn: fr.CF.Fn.Name, Pos: in.Pos, Text: in.Text()}

	// clone returns a COW successor together with its top frame already
	// owned, so the per-opcode bodies below may mutate the frame in place.
	// A frame pointer is invalidated by any further Clone of ns (the clone
	// revokes in-place write rights); none of the bodies clone ns again.
	clone := func() (*State, *Frame) {
		ns := s.Clone()
		return ns, ns.MutableTopFrame(ti)
	}
	fail := func(kind FailKind, pos ast.Pos, msg string) StepResult {
		return StepResult{Failure: &Failure{Kind: kind, Pos: pos, Msg: msg, ThreadID: tid, Fn: fr.CF.Fn.Name}}
	}

	switch in.Op {
	case OpSkip:
		ns, nfr := clone()
		nfr.PC++
		resolveJumps(nfr)
		return StepResult{Outcomes: []Outcome{{State: ns, Event: ev}}}

	case OpAssign:
		ns, nfr := clone()
		v, err := ns.Eval(nfr, in.Rhs)
		if err != nil {
			return fail(RuntimeFail, err.Pos, err.Msg)
		}
		cell, err := ns.lvalueCell(nfr, in.Lhs)
		if err != nil {
			return fail(RuntimeFail, err.Pos, err.Msg)
		}
		if err := ns.Store(cell, v, in.Pos); err != nil {
			return fail(RuntimeFail, err.Pos, err.Msg)
		}
		nfr.PC++
		resolveJumps(nfr)
		return StepResult{Outcomes: []Outcome{{State: ns, Event: ev}}}

	case OpAssert:
		ok, err := s.evalBool(fr, in.Cond)
		if err != nil {
			return fail(RuntimeFail, err.Pos, err.Msg)
		}
		if !ok {
			return fail(AssertFail, in.Pos, "assertion violated: "+ast.PrintExpr(in.Cond))
		}
		ns, nfr := clone()
		nfr.PC++
		resolveJumps(nfr)
		return StepResult{Outcomes: []Outcome{{State: ns, Event: ev}}}

	case OpAssume:
		ok, err := s.evalBool(fr, in.Cond)
		if err != nil {
			return fail(RuntimeFail, err.Pos, err.Msg)
		}
		if !ok {
			return StepResult{Blocked: true}
		}
		ns, nfr := clone()
		nfr.PC++
		resolveJumps(nfr)
		return StepResult{Outcomes: []Outcome{{State: ns, Event: ev}}}

	case OpJump:
		// Normally slid over by resolveJumps; can only be the entry
		// instruction of a function whose body begins with control flow.
		ns, nfr := clone()
		nfr.PC = in.Targets[0]
		resolveJumps(nfr)
		return StepResult{Outcomes: []Outcome{{State: ns, Event: ev}}}

	case OpNondetJump:
		var outs []Outcome
		for _, target := range in.Targets {
			ns, nfr := clone()
			nfr.PC = target
			resolveJumps(nfr)
			outs = append(outs, Outcome{State: ns, Event: ev})
		}
		return StepResult{Outcomes: outs}

	case OpCall:
		ns, nfr := clone()
		fv, err := ns.Eval(nfr, in.Fn)
		if err != nil {
			return fail(RuntimeFail, err.Pos, err.Msg)
		}
		if fv.Kind != KFunc {
			return fail(RuntimeFail, in.Pos, fmt.Sprintf("call of non-function value %s", fv))
		}
		callee, ok := ns.C.Funcs[fv.Fn]
		if !ok {
			return fail(RuntimeFail, in.Pos, fmt.Sprintf("call of undefined function %q", fv.Fn))
		}
		if len(in.Args) != callee.NumParam {
			return fail(RuntimeFail, in.Pos,
				fmt.Sprintf("call of %q with %d arguments, want %d", fv.Fn, len(in.Args), callee.NumParam))
		}
		args := make([]Value, len(in.Args))
		for i, a := range in.Args {
			av, err := ns.Eval(nfr, a)
			if err != nil {
				return fail(RuntimeFail, err.Pos, err.Msg)
			}
			args[i] = av
		}
		nfr.PC++ // resume after the call on return
		resolveJumps(nfr)
		ns.pushFrame(ti, ns.newFrame(callee, args, in.Result))
		cev := ev
		cev.Kind = EvCall
		cev.Callee = fv.Fn
		return StepResult{Outcomes: []Outcome{{State: ns, Event: cev}}}

	case OpAsync:
		ns, nfr := clone()
		fv, err := ns.Eval(nfr, in.Fn)
		if err != nil {
			return fail(RuntimeFail, err.Pos, err.Msg)
		}
		if fv.Kind != KFunc {
			return fail(RuntimeFail, in.Pos, fmt.Sprintf("async call of non-function value %s", fv))
		}
		callee, ok := ns.C.Funcs[fv.Fn]
		if !ok {
			return fail(RuntimeFail, in.Pos, fmt.Sprintf("async call of undefined function %q", fv.Fn))
		}
		if len(in.Args) != callee.NumParam {
			return fail(RuntimeFail, in.Pos,
				fmt.Sprintf("async call of %q with %d arguments, want %d", fv.Fn, len(in.Args), callee.NumParam))
		}
		args := make([]Value, len(in.Args))
		for i, a := range in.Args {
			av, err := ns.Eval(nfr, a)
			if err != nil {
				return fail(RuntimeFail, err.Pos, err.Msg)
			}
			args[i] = av
		}
		nfr.PC++
		resolveJumps(nfr)
		if ns.rec != nil {
			ns.rec.readNextThreadID(ns.nextThreadID)
		}
		newT := &Thread{ID: ns.nextThreadID, Frames: []*Frame{ns.newFrame(callee, args, "")}}
		ns.nextThreadID++
		ns.appendThread(newT)
		aev := ev
		aev.Kind = EvAsync
		aev.Callee = fv.Fn
		return StepResult{Outcomes: []Outcome{{State: ns, Event: aev}}}

	case OpReturn:
		var rv Value = UnitV()
		if in.Value != nil {
			v, err := s.Eval(fr, in.Value)
			if err != nil {
				return fail(RuntimeFail, err.Pos, err.Msg)
			}
			rv = v
		}
		return doReturn(s, ti, rv, in.Pos, fr.CF.Fn.Name)

	case OpAtomic:
		return stepAtomic(s, ti, in, ev)

	case OpTsPut:
		ns, nfr := clone()
		fv, err := ns.Eval(nfr, in.Fn)
		if err != nil {
			return fail(RuntimeFail, err.Pos, err.Msg)
		}
		if fv.Kind != KFunc {
			return fail(RuntimeFail, in.Pos, fmt.Sprintf("__ts_put of non-function value %s", fv))
		}
		args := make([]Value, len(in.Args))
		for i, a := range in.Args {
			av, err := ns.Eval(nfr, a)
			if err != nil {
				return fail(RuntimeFail, err.Pos, err.Msg)
			}
			args[i] = av
		}
		if ns.rec != nil {
			ns.rec.readTs(ns.Ts) // the occupancy check reads the multiset
		}
		if len(ns.Ts) >= ns.C.Prog.MaxTS {
			return fail(RuntimeFail, in.Pos, "__ts_put on full ts (transformation invariant violated)")
		}
		ns.appendTs(Pending{Fn: fv.Fn, Args: args})
		nfr.PC++
		resolveJumps(nfr)
		pev := ev
		pev.Callee = fv.Fn
		return StepResult{Outcomes: []Outcome{{State: ns, Event: pev}}}

	case OpTsDispatch:
		if s.rec != nil {
			s.rec.readTs(s.Ts) // dispatch enumerates the whole multiset
		}
		if len(s.Ts) == 0 {
			return fail(RuntimeFail, in.Pos, "__ts_dispatch on empty ts (transformation invariant violated)")
		}
		// Deduplicate identical pending entries: dispatching either of two
		// equal entries yields the same successor.
		var outs []Outcome
		seen := map[string]bool{}
		for i := range s.Ts {
			key := s.Ts[i].String()
			if seen[key] {
				continue
			}
			seen[key] = true
			ns, nfr := clone()
			p := ns.removeTs(i)
			callee, ok := ns.C.Funcs[p.Fn]
			if !ok {
				return fail(RuntimeFail, in.Pos, fmt.Sprintf("__ts_dispatch of undefined function %q", p.Fn))
			}
			nfr.PC++
			resolveJumps(nfr)
			ns.pushFrame(ti, ns.newFrame(callee, p.Args, ""))
			dev := ev
			dev.Kind = EvDispatch
			dev.Callee = p.Fn
			outs = append(outs, Outcome{State: ns, Event: dev})
		}
		return StepResult{Outcomes: outs}
	}
	return fail(RuntimeFail, in.Pos, fmt.Sprintf("unknown opcode %d", in.Op))
}

// doReturn pops the top frame of thread ti, delivering the return value to
// the caller's result variable if any.
func doReturn(s *State, ti int, rv Value, pos ast.Pos, fnName string) StepResult {
	tid := s.Threads[ti].ID
	ns := s.Clone()
	if ns.rec != nil {
		// The return event's text embeds rv raw ("return " + rv.String());
		// summary layers must reject values naming instance-specific frames.
		ns.rec.noteReturn(rv)
	}
	top := ns.popFrame(ti)
	result := top.Result
	if caller := ns.Threads[ti].Top(); caller != nil && result != "" {
		cell, err := ns.lookupVar(caller, result, pos)
		if err != nil {
			return StepResult{Failure: &Failure{Kind: RuntimeFail, Pos: pos, Msg: err.Msg, ThreadID: tid, Fn: fnName}}
		}
		if err := ns.Store(cell, rv, pos); err != nil {
			return StepResult{Failure: &Failure{Kind: RuntimeFail, Pos: pos, Msg: err.Msg, ThreadID: tid, Fn: fnName}}
		}
	}
	ev := Event{Kind: EvReturn, ThreadID: tid, Fn: fnName, Pos: pos, Text: "return " + rv.String()}
	return StepResult{Outcomes: []Outcome{{State: ns, Event: ev}}}
}

// stepAtomic executes an atomic block as a single step: all internal paths
// (atomic bodies may contain choice and iter) are explored; each completed
// path yields one successor. A path reaching a false assume blocks; if all
// paths block, the whole atomic blocks and the thread retries later, which
// gives atomic{assume(*l == 0); *l = 1} the intended test-and-set
// semantics. A path that fails an assert or goes wrong dynamically
// surfaces as the step's Failure.
func stepAtomic(s *State, ti int, in *Instr, ev Event) StepResult {
	tid := s.Threads[ti].ID
	fnName := s.Threads[ti].Top().CF.Fn.Name
	type workItem struct {
		st *State
		pc int
	}
	start := s.Clone()
	work := []workItem{{st: start, pc: 0}}
	var outs []Outcome
	var failure *Failure
	steps := 0
	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		st, pc := item.st, item.pc
		// Own the top frame for the whole path so Stores through CLocal
		// cells and the commit below hit it in place. Re-acquired after
		// any mid-path Clone, which revokes the ownership.
		fr := st.MutableTopFrame(ti)
		for {
			steps++
			if steps > MaxAtomicSteps {
				return StepResult{Failure: &Failure{Kind: RuntimeFail, Pos: in.Pos,
					Msg: "atomic body exceeds step bound (divergent iter inside atomic?)", ThreadID: tid, Fn: fnName}}
			}
			if pc >= len(in.Atomic) {
				// Path complete: commit by advancing past the atomic.
				fr.PC++
				resolveJumps(fr)
				outs = append(outs, Outcome{State: st, Event: ev})
				break
			}
			sub := &in.Atomic[pc]
			switch sub.Op {
			case OpSkip:
				pc++
				continue
			case OpJump:
				pc = sub.Targets[0]
				continue
			case OpNondetJump:
				// Multi-path atomics defeat the fold recorder's written-set
				// filtering (branch A's writes would suppress recording branch
				// B's reads of pre-run values), so give up on memoizing this
				// fold; single-path atomics (test-and-set) stay memoizable.
				if st.rec != nil {
					st.rec.abort()
				}
				for _, tgt := range sub.Targets[1:] {
					work = append(work, workItem{st: st.Clone(), pc: tgt})
				}
				fr = st.MutableTopFrame(ti)
				pc = sub.Targets[0]
				continue
			case OpAssign:
				v, err := st.Eval(fr, sub.Rhs)
				if err != nil {
					failure = &Failure{Kind: RuntimeFail, Pos: err.Pos, Msg: err.Msg, ThreadID: tid, Fn: fnName}
				} else if cell, err := st.lvalueCell(fr, sub.Lhs); err != nil {
					failure = &Failure{Kind: RuntimeFail, Pos: err.Pos, Msg: err.Msg, ThreadID: tid, Fn: fnName}
				} else if err := st.Store(cell, v, sub.Pos); err != nil {
					failure = &Failure{Kind: RuntimeFail, Pos: err.Pos, Msg: err.Msg, ThreadID: tid, Fn: fnName}
				} else {
					pc++
					continue
				}
			case OpAssert:
				ok, err := st.evalBool(fr, sub.Cond)
				if err != nil {
					failure = &Failure{Kind: RuntimeFail, Pos: err.Pos, Msg: err.Msg, ThreadID: tid, Fn: fnName}
				} else if !ok {
					failure = &Failure{Kind: AssertFail, Pos: sub.Pos,
						Msg: "assertion violated: " + ast.PrintExpr(sub.Cond), ThreadID: tid, Fn: fnName}
				} else {
					pc++
					continue
				}
			case OpAssume:
				ok, err := st.evalBool(fr, sub.Cond)
				if err != nil {
					failure = &Failure{Kind: RuntimeFail, Pos: err.Pos, Msg: err.Msg, ThreadID: tid, Fn: fnName}
				} else if !ok {
					// This path blocks; abandon it.
					break
				} else {
					pc++
					continue
				}
			default:
				failure = &Failure{Kind: RuntimeFail, Pos: sub.Pos,
					Msg: "illegal statement inside atomic (call/return/async)", ThreadID: tid, Fn: fnName}
			}
			break
		}
		if failure != nil {
			return StepResult{Outcomes: outs, Failure: failure}
		}
	}
	if len(outs) == 0 {
		return StepResult{Blocked: true}
	}
	return StepResult{Outcomes: outs}
}
