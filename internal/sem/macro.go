package sem

import "sync"

// Macro-step compression: the SPIN-style statement-merging optimization.
//
// The KISS transformation inflates every statement with instrumentation
// (the choice{skip [] RAISE} prefix, raise-flag tests, unwinding returns),
// so most transitions of the transformed program have exactly one
// successor. A search that stores and fingerprints a state after every
// micro-statement pays clone, hash, and visited-set costs for states that
// carry no decision. MacroStep folds a maximal deterministic run into a
// single transition: it repeatedly applies Step while the transition is
// deterministic and accumulates the intermediate Event log so error traces
// replay bit-identically.
//
// A run keeps folding only while, after each micro step:
//
//   - the step neither failed nor blocked (failures and blocks must
//     surface exactly where the per-statement search surfaces them);
//   - exactly one successor branch is live (see the infeasible-branch
//     pruning below);
//   - thread ti is the sole live thread of the successor (any other live
//     thread makes the successor a scheduling point that an interleaving
//     search must store and branch on).
//
// Infeasible-branch pruning: the lowering of if/iter produces
// choice{assume(c);...}[]{assume(!c);...}, so a nondeterministic jump
// routinely has branches that are dead on arrival. When a step has more
// than one successor, a branch is pruned if its next instruction is an
// assume whose condition cleanly evaluates to false and no other thread is
// live to change it — stepping such a state
// can only ever block, so the per-statement search stores it, steps it
// once, and discards it without any observable effect. Branches whose
// assume condition fails to evaluate are kept: the per-statement search
// would report that evaluation error as a failure, and pruning them would
// lose it. When pruning leaves exactly one live branch (the common case
// for the raise-flag unwinding tests), the run keeps folding through it.
const (
	// MaxMacroRun caps the number of micro steps folded into one macro
	// step. It guards against deterministic infinite loops (which the
	// per-statement search would also never finish, but would at least
	// keep hitting budget checks); it is set far above the deterministic
	// run lengths real programs produce so that loop-free programs never
	// hit it, keeping the set of stored states independent of fold-entry
	// points.
	MaxMacroRun = 4096
)

// MacroResult is the outcome of one macro step. The embedded StepResult
// carries the final micro step's failure/block/outcome information, with
// Outcomes reduced to the live branches; OutIdx maps each surviving
// outcome to its index in the unpruned outcome list (searches that need
// the per-statement successor order — the parallel BFS — use it as the
// tie-breaking key). Prefix holds the events of the folded deterministic
// run, in order, and PrefixIdx the unpruned successor index taken at each
// folded position. Stepped counts Step invocations, including the final
// one. Limited reports that the run stopped only because it hit the
// caller's limit — it would have kept folding otherwise — which the memo
// table uses to decide at which limits a recorded run may be replayed.
type MacroResult struct {
	StepResult
	OutIdx    []int32
	Prefix    []Event
	PrefixIdx []int32
	Stepped   int
	Limited   bool
}

// prefixScratch is the reusable Event-prefix accumulator of a fold. The
// growth reallocations of a long run land in the pooled buffers; the
// caller-visible Prefix/PrefixIdx are exact-size copies, so appending to
// them can never clobber a shared backing array and ownership passes to
// the search (which retains them in trace nodes) without aliasing.
type prefixScratch struct {
	ev  []Event
	idx []int32
}

var prefixPool = sync.Pool{New: func() any { return new(prefixScratch) }}

// MacroStep folds a maximal deterministic run of thread ti starting at s
// into one transition. limit bounds the number of micro steps taken
// (callers cap it with the remaining depth/step budget); limit <= 0 means
// MaxMacroRun. The thread must not be done. s is not mutated; ownership of
// the returned outcome states passes to the caller exactly as with Step.
func MacroStep(s *State, ti, limit int) MacroResult {
	if limit <= 0 || limit > MaxMacroRun {
		limit = MaxMacroRun
	}
	return macroRun(s, ti, limit)
}

// MacroStepMemo is MacroStep with fold memoization: if memo is non-nil and
// holds a recorded run whose control point and read footprint match s, the
// fold is replayed by applying the stored write delta — no Step executes.
// A miss at a control point that has missed before runs the fold under a
// read/write recorder and stores the result; a first-visit miss runs it
// bare (most control points are never revisited, so recording them would
// be pure overhead — see FoldMemo.lookup). The replayed MacroResult is
// bit-identical to the executed one (outcome states raw-equal, same
// events, counters, and successor indices): matching is exact, and the
// memo's audit mode re-checks each hit against execution; see memo.go.
func MacroStepMemo(s *State, ti, limit int, memo *FoldMemo) MacroResult {
	if limit <= 0 || limit > MaxMacroRun {
		limit = MaxMacroRun
	}
	if memo == nil || !othersDone(s, ti) {
		// Memo entries are recorded and replayed only at states where every
		// other thread is done (sole-live folding), so the fold-stop
		// condition is invariant across base and replay states.
		return macroRun(s, ti, limit)
	}
	e, warm := memo.lookup(s, ti, limit)
	if e != nil {
		return memo.replay(s, ti, limit, e)
	}
	memo.misses.Add(1)
	if !warm {
		return macroRun(s, ti, limit)
	}
	rec := recorderPool.Get().(*foldRecorder)
	rec.reset(s)
	s.rec = rec
	mr := macroRun(s, ti, limit)
	// Clear the recorder from every state that escapes to the search.
	s.rec = nil
	for i := range mr.Outcomes {
		mr.Outcomes[i].State.rec = nil
	}
	if !rec.aborted && mr.Stepped >= memoMinStepped {
		memo.store(s, ti, rec, &mr)
	}
	recorderPool.Put(rec)
	return mr
}

// macroRun is the folding loop shared by MacroStep and MacroStepMemo;
// limit has been normalized by the caller.
func macroRun(s *State, ti, limit int) MacroResult {
	var mr MacroResult
	ps := prefixPool.Get().(*prefixScratch)
	evs, pidx := ps.ev[:0], ps.idx[:0]
	cur := s
	for {
		sr := Step(cur, ti)
		mr.Stepped++
		if sr.Failure != nil || sr.Blocked {
			mr.StepResult = sr
			break
		}
		outs := sr.Outcomes
		var idxs []int32
		if len(outs) > 1 {
			// Only choice branches are pruned: a deterministic continuation
			// into a dead assume instead folds to its blocked endpoint, so
			// the block (and concheck's deadlock accounting) surfaces
			// exactly as in the per-statement search.
			outs, idxs = pruneInfeasible(sr.Outcomes, ti)
		}
		if len(outs) != 1 || !soleLive(outs[0].State, ti) || mr.Stepped >= limit {
			if idxs == nil {
				idxs = identityIdx(len(outs))
			}
			mr.StepResult = sr
			mr.Outcomes = outs
			mr.OutIdx = idxs
			// Limited only when the limit alone stopped the run: with one
			// live sole-live successor it would have kept folding.
			mr.Limited = len(outs) == 1 && soleLive(outs[0].State, ti)
			break
		}
		idx0 := int32(0)
		if idxs != nil {
			idx0 = idxs[0]
		}
		evs = append(evs, outs[0].Event)
		pidx = append(pidx, idx0)
		cur = outs[0].State
	}
	if len(evs) > 0 {
		mr.Prefix = make([]Event, len(evs))
		copy(mr.Prefix, evs)
		mr.PrefixIdx = make([]int32, len(pidx))
		copy(mr.PrefixIdx, pidx)
	}
	clear(evs) // drop Event string/state references held by the pooled buffer
	ps.ev, ps.idx = evs, pidx
	prefixPool.Put(ps)
	return mr
}

// othersDone reports whether every thread of s other than ti is done.
func othersDone(s *State, ti int) bool {
	for i := range s.Threads {
		if i != ti && !s.Threads[i].Done() {
			return false
		}
	}
	return true
}

// identityIdx returns [0, 1, ..., n-1].
func identityIdx(n int) []int32 {
	idxs := make([]int32, n)
	for i := range idxs {
		idxs[i] = int32(i)
	}
	return idxs
}

// pruneInfeasible drops outcomes that are dead on arrival: the stepped
// thread is the sole live thread and sits at an assume whose condition
// cleanly evaluates to false. The returned index slice maps survivors to
// their original positions.
func pruneInfeasible(outs []Outcome, ti int) ([]Outcome, []int32) {
	live := outs[:0:0]
	idxs := make([]int32, 0, len(outs))
	for i, out := range outs {
		if soleLive(out.State, ti) && nextIsFalseAssume(out.State, ti) {
			continue
		}
		live = append(live, out)
		idxs = append(idxs, int32(i))
	}
	return live, idxs
}

// soleLive reports whether thread ti is live and every other thread of s
// is done.
func soleLive(s *State, ti int) bool {
	for i := range s.Threads {
		if i == ti {
			if s.Threads[i].Done() {
				return false
			}
		} else if !s.Threads[i].Done() {
			return false
		}
	}
	return true
}

// nextIsFalseAssume reports whether thread ti's next instruction is an
// assume whose condition cleanly evaluates to false in s. Evaluation is
// read-only (Step itself evaluates assume conditions before cloning); an
// evaluation error reports false so the branch is kept and the error
// surfaces exactly where the per-statement search would report it.
func nextIsFalseAssume(s *State, ti int) bool {
	fr := s.Threads[ti].Top()
	if fr == nil || fr.PC >= len(fr.CF.Code) {
		return false
	}
	in := &fr.CF.Code[fr.PC]
	if in.Op != OpAssume {
		return false
	}
	ok, err := s.evalBool(fr, in.Cond)
	return err == nil && !ok
}
