package sem

import "sync"

// Macro-step compression: the SPIN-style statement-merging optimization.
//
// The KISS transformation inflates every statement with instrumentation
// (the choice{skip [] RAISE} prefix, raise-flag tests, unwinding returns),
// so most transitions of the transformed program have exactly one
// successor. A search that stores and fingerprints a state after every
// micro-statement pays clone, hash, and visited-set costs for states that
// carry no decision. MacroStep folds a maximal deterministic run into a
// single transition: it repeatedly applies Step while the transition is
// deterministic and accumulates the intermediate Event log so error traces
// replay bit-identically.
//
// A run keeps folding only while, after each micro step:
//
//   - the step neither failed nor blocked (failures and blocks must
//     surface exactly where the per-statement search surfaces them);
//   - exactly one successor branch is live (see the infeasible-branch
//     pruning below);
//   - thread ti is the sole live thread of the successor (any other live
//     thread makes the successor a scheduling point that an interleaving
//     search must store and branch on).
//
// Infeasible-branch pruning: the lowering of if/iter produces
// choice{assume(c);...}[]{assume(!c);...}, so a nondeterministic jump
// routinely has branches that are dead on arrival. When a step has more
// than one successor, a branch is pruned if its next instruction is an
// assume whose condition cleanly evaluates to false and no other thread is
// live to change it — stepping such a state
// can only ever block, so the per-statement search stores it, steps it
// once, and discards it without any observable effect. Branches whose
// assume condition fails to evaluate are kept: the per-statement search
// would report that evaluation error as a failure, and pruning them would
// lose it. When pruning leaves exactly one live branch (the common case
// for the raise-flag unwinding tests), the run keeps folding through it.
const (
	// MaxMacroRun caps the number of micro steps folded into one macro
	// step. It guards against deterministic infinite loops (which the
	// per-statement search would also never finish, but would at least
	// keep hitting budget checks); it is set far above the deterministic
	// run lengths real programs produce so that loop-free programs never
	// hit it, keeping the set of stored states independent of fold-entry
	// points.
	MaxMacroRun = 4096
)

// MacroResult is the outcome of one macro step. The embedded StepResult
// carries the final micro step's failure/block/outcome information, with
// Outcomes reduced to the live branches; OutIdx maps each surviving
// outcome to its index in the unpruned outcome list (searches that need
// the per-statement successor order — the parallel BFS — use it as the
// tie-breaking key). Prefix holds the events of the folded deterministic
// run, in order, and PrefixIdx the unpruned successor index taken at each
// folded position. Stepped counts Step invocations, including the final
// one. Limited reports that the run stopped only because it hit the
// caller's limit — it would have kept folding otherwise — which the memo
// table uses to decide at which limits a recorded run may be replayed.
type MacroResult struct {
	StepResult
	OutIdx    []int32
	Prefix    []Event
	PrefixIdx []int32
	Stepped   int
	Limited   bool
}

// prefixScratch is the reusable Event-prefix accumulator of a fold. The
// growth reallocations of a long run land in the pooled buffers; the
// caller-visible Prefix/PrefixIdx are exact-size copies, so appending to
// them can never clobber a shared backing array and ownership passes to
// the search (which retains them in trace nodes) without aliasing.
type prefixScratch struct {
	ev  []Event
	idx []int32
}

var prefixPool = sync.Pool{New: func() any { return new(prefixScratch) }}

// MacroStep folds a maximal deterministic run of thread ti starting at s
// into one transition. limit bounds the number of micro steps taken
// (callers cap it with the remaining depth/step budget); limit <= 0 means
// MaxMacroRun. The thread must not be done. s is not mutated; ownership of
// the returned outcome states passes to the caller exactly as with Step.
func MacroStep(s *State, ti, limit int) MacroResult {
	if limit <= 0 || limit > MaxMacroRun {
		limit = MaxMacroRun
	}
	return macroRun(s, ti, limit)
}

// MacroStepMemo is MacroStep with fold memoization: if memo is non-nil and
// holds a recorded run whose control point and read footprint match s, the
// fold is replayed by applying the stored write delta — no Step executes.
// A miss at a control point that has missed before runs the fold under a
// read/write recorder and stores the result; a first-visit miss runs it
// bare (most control points are never revisited, so recording them would
// be pure overhead — see FoldMemo.lookup). The replayed MacroResult is
// bit-identical to the executed one (outcome states raw-equal, same
// events, counters, and successor indices): matching is exact, and the
// memo's audit mode re-checks each hit against execution; see memo.go.
func MacroStepMemo(s *State, ti, limit int, memo *FoldMemo) MacroResult {
	if limit <= 0 || limit > MaxMacroRun {
		limit = MaxMacroRun
	}
	if memo == nil || !othersDone(s, ti) {
		// Memo entries are recorded and replayed only at states where every
		// other thread is done (sole-live folding), so the fold-stop
		// condition is invariant across base and replay states.
		return macroRun(s, ti, limit)
	}
	e, warm := memo.lookup(s, ti, limit)
	if e != nil {
		return memo.replay(s, ti, limit, e)
	}
	memo.misses.Add(1)
	if !warm {
		return macroRun(s, ti, limit)
	}
	rec := recorderPool.Get().(*foldRecorder)
	rec.reset(s)
	rec.foldActive = true
	s.rec = rec
	mr := macroRun(s, ti, limit)
	// Clear the recorder from every state that escapes to the search.
	s.rec = nil
	for i := range mr.Outcomes {
		mr.Outcomes[i].State.rec = nil
	}
	if !rec.aborted && mr.Stepped >= memoMinStepped {
		memo.store(s, ti, rec, &mr)
	}
	recorderPool.Put(rec)
	return mr
}

// MacroStepMemoSum is MacroStepMemo with call-grained procedure
// summaries layered on: on a fold-memo miss, the folding loop probes the
// summary table before every OpCall it is about to fold through and, on
// a footprint match, splices the whole call's recorded events and write
// delta into the fold — the call (nested calls included) costs
// O(footprint) instead of O(steps). Warm summary misses open recording
// layers so the segment is stored for next time. Either table may be
// nil; with both nil this is MacroStep. The result remains bit-identical
// to execution (see summary.go for the transfer/normalization argument;
// the tables' audit mode re-executes and compares every hit).
func MacroStepMemoSum(s *State, ti, limit int, memo *FoldMemo, sum *SummaryTable) MacroResult {
	if limit <= 0 || limit > MaxMacroRun {
		limit = MaxMacroRun
	}
	soleHere := othersDone(s, ti)
	if memo != nil && soleHere {
		e, warm := memo.lookup(s, ti, limit)
		if e != nil {
			return memo.replay(s, ti, limit, e)
		}
		memo.misses.Add(1)
		if warm {
			return macroRunSum(s, ti, limit, memo, sum, true)
		}
	}
	if sum != nil && soleHere {
		// No fold recording (memo off, cold, or multi-live base is ruled
		// out above), but summaries still replay and record call layers.
		return macroRunSum(s, ti, limit, nil, sum, false)
	}
	return macroRun(s, ti, limit)
}

// macroRunSum is the folding loop with summary lookup/record and
// optional whole-fold recording. The caller guarantees the base is
// sole-live when sum != nil or recordFold is set.
func macroRunSum(s *State, ti, limit int, memo *FoldMemo, sum *SummaryTable, recordFold bool) MacroResult {
	var mr MacroResult
	rec := recorderPool.Get().(*foldRecorder)
	rec.reset(s)
	rec.foldActive = recordFold
	// A bare fold (summaries only) runs hook-free until a layer opens:
	// states carry no recorder, so the 0-layer common case pays nothing
	// per read/write. Fold recording needs the footprint from step one.
	if recordFold {
		s.rec = rec
	}
	ps := prefixPool.Get().(*prefixScratch)
	evs, pidx := ps.ev[:0], ps.idx[:0]
	cur := s
	for {
		// Summary fast path: the next instruction is a call. (Sole-
		// liveness holds inductively: the base is sole-live and the loop
		// below only continues through sole-live successors.)
		if sum != nil {
			if fr := cur.Threads[ti].Top(); fr != nil && fr.PC < len(fr.CF.Code) && fr.CF.Code[fr.PC].Op == OpCall {
				if e, warm := sum.lookup(cur, ti, fr); e != nil && mr.Stepped+e.stepped <= limit {
					if ns, ok := sum.replay(cur, ti, rec, e); ok {
						mr.Stepped += e.stepped
						n := len(e.events)
						if mr.Stepped >= limit {
							// The segment's final return becomes the fold's
							// endpoint, exactly as if the limit had cut the
							// run there: post-return the caller is live and
							// every other thread done, so Limited holds.
							evs = append(evs, e.events[:n-1]...)
							pidx = append(pidx, e.idx[:n-1]...)
							mr.Outcomes = []Outcome{{State: ns, Event: e.events[n-1]}}
							mr.OutIdx = []int32{e.idx[n-1]}
							mr.Limited = true
							break
						}
						evs = append(evs, e.events...)
						pidx = append(pidx, e.idx...)
						cur = ns
						continue
					}
				} else if e == nil && warm && len(rec.layers) < maxOpenLayers {
					l := layerPool.Get().(*sumLayer)
					l.reset(cur, ti, fr, len(evs), mr.Stepped)
					rec.layers = append(rec.layers, l)
					if d := int64(len(rec.layers)); d > sum.maxDepth.Load() {
						sum.maxDepth.Store(d)
					}
					if cur.rec == nil {
						cur.rec = rec // lazy attach: first layer of a bare fold
					}
				}
			}
		}
		sr := Step(cur, ti)
		mr.Stepped++
		if sr.Failure != nil || sr.Blocked {
			mr.StepResult = sr
			break
		}
		outs := sr.Outcomes
		var idxs []int32
		if len(outs) > 1 {
			outs, idxs = pruneInfeasible(sr.Outcomes, ti)
		}
		if len(outs) != 1 || !soleLive(outs[0].State, ti) || mr.Stepped >= limit {
			if idxs == nil {
				idxs = identityIdx(len(outs))
			}
			mr.StepResult = sr
			mr.Outcomes = outs
			mr.OutIdx = idxs
			mr.Limited = len(outs) == 1 && soleLive(outs[0].State, ti)
			break
		}
		idx0 := int32(0)
		if idxs != nil {
			idx0 = idxs[0]
		}
		// A return to a layer's base depth closes that layer: the step we
		// just folded was its segment's matching return.
		for len(rec.layers) > 0 {
			top := rec.layers[len(rec.layers)-1]
			if len(outs[0].State.Threads[ti].Frames) != top.d0 {
				break
			}
			rec.layers = rec.layers[:len(rec.layers)-1]
			if !top.aborted {
				stepped := mr.Stepped - top.startStepped
				segEvents := make([]Event, 0, len(evs)-top.startEv+1)
				segEvents = append(segEvents, evs[top.startEv:]...)
				segEvents = append(segEvents, outs[0].Event)
				segIdx := make([]int32, 0, len(pidx)-top.startEv+1)
				segIdx = append(segIdx, pidx[top.startEv:]...)
				segIdx = append(segIdx, idx0)
				sum.store(top, outs[0].State, ti, segEvents, segIdx, stepped)
			}
			top.base = nil
			layerPool.Put(top)
		}
		if len(rec.layers) == 0 && !recordFold {
			outs[0].State.rec = nil // last layer closed: back to hook-free
		}
		evs = append(evs, outs[0].Event)
		pidx = append(pidx, idx0)
		cur = outs[0].State
	}
	// Clear the recorder from every state that escapes to the search and
	// discard layers left open by the fold's end.
	s.rec = nil
	for i := range mr.Outcomes {
		mr.Outcomes[i].State.rec = nil
	}
	for _, l := range rec.layers {
		l.base = nil
		layerPool.Put(l)
	}
	rec.layers = rec.layers[:0]
	if len(evs) > 0 {
		mr.Prefix = make([]Event, len(evs))
		copy(mr.Prefix, evs)
		mr.PrefixIdx = make([]int32, len(pidx))
		copy(mr.PrefixIdx, pidx)
	}
	// The fold is stored only after Prefix is materialized: memo entries
	// keep a reference to the exact-size copy, not the pooled scratch.
	if recordFold && !rec.aborted && mr.Stepped >= memoMinStepped {
		memo.store(s, ti, rec, &mr)
	}
	recorderPool.Put(rec)
	clear(evs)
	ps.ev, ps.idx = evs, pidx
	prefixPool.Put(ps)
	return mr
}

// macroRun is the folding loop shared by MacroStep and MacroStepMemo;
// limit has been normalized by the caller.
func macroRun(s *State, ti, limit int) MacroResult {
	var mr MacroResult
	ps := prefixPool.Get().(*prefixScratch)
	evs, pidx := ps.ev[:0], ps.idx[:0]
	cur := s
	for {
		sr := Step(cur, ti)
		mr.Stepped++
		if sr.Failure != nil || sr.Blocked {
			mr.StepResult = sr
			break
		}
		outs := sr.Outcomes
		var idxs []int32
		if len(outs) > 1 {
			// Only choice branches are pruned: a deterministic continuation
			// into a dead assume instead folds to its blocked endpoint, so
			// the block (and concheck's deadlock accounting) surfaces
			// exactly as in the per-statement search.
			outs, idxs = pruneInfeasible(sr.Outcomes, ti)
		}
		if len(outs) != 1 || !soleLive(outs[0].State, ti) || mr.Stepped >= limit {
			if idxs == nil {
				idxs = identityIdx(len(outs))
			}
			mr.StepResult = sr
			mr.Outcomes = outs
			mr.OutIdx = idxs
			// Limited only when the limit alone stopped the run: with one
			// live sole-live successor it would have kept folding.
			mr.Limited = len(outs) == 1 && soleLive(outs[0].State, ti)
			break
		}
		idx0 := int32(0)
		if idxs != nil {
			idx0 = idxs[0]
		}
		evs = append(evs, outs[0].Event)
		pidx = append(pidx, idx0)
		cur = outs[0].State
	}
	if len(evs) > 0 {
		mr.Prefix = make([]Event, len(evs))
		copy(mr.Prefix, evs)
		mr.PrefixIdx = make([]int32, len(pidx))
		copy(mr.PrefixIdx, pidx)
	}
	clear(evs) // drop Event string/state references held by the pooled buffer
	ps.ev, ps.idx = evs, pidx
	prefixPool.Put(ps)
	return mr
}

// othersDone reports whether every thread of s other than ti is done.
func othersDone(s *State, ti int) bool {
	for i := range s.Threads {
		if i != ti && !s.Threads[i].Done() {
			return false
		}
	}
	return true
}

// identityIdx returns [0, 1, ..., n-1].
func identityIdx(n int) []int32 {
	idxs := make([]int32, n)
	for i := range idxs {
		idxs[i] = int32(i)
	}
	return idxs
}

// pruneInfeasible drops outcomes that are dead on arrival: the stepped
// thread is the sole live thread and sits at an assume whose condition
// cleanly evaluates to false. The returned index slice maps survivors to
// their original positions.
func pruneInfeasible(outs []Outcome, ti int) ([]Outcome, []int32) {
	live := outs[:0:0]
	idxs := make([]int32, 0, len(outs))
	for i, out := range outs {
		if soleLive(out.State, ti) && nextIsFalseAssume(out.State, ti) {
			continue
		}
		live = append(live, out)
		idxs = append(idxs, int32(i))
	}
	return live, idxs
}

// soleLive reports whether thread ti is live and every other thread of s
// is done.
func soleLive(s *State, ti int) bool {
	for i := range s.Threads {
		if i == ti {
			if s.Threads[i].Done() {
				return false
			}
		} else if !s.Threads[i].Done() {
			return false
		}
	}
	return true
}

// nextIsFalseAssume reports whether thread ti's next instruction is an
// assume whose condition cleanly evaluates to false in s. Evaluation is
// read-only (Step itself evaluates assume conditions before cloning); an
// evaluation error reports false so the branch is kept and the error
// surfaces exactly where the per-statement search would report it.
func nextIsFalseAssume(s *State, ti int) bool {
	fr := s.Threads[ti].Top()
	if fr == nil || fr.PC >= len(fr.CF.Code) {
		return false
	}
	in := &fr.CF.Code[fr.PC]
	if in.Op != OpAssume {
		return false
	}
	ok, err := s.evalBool(fr, in.Cond)
	return err == nil && !ok
}
