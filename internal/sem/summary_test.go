package sem

import (
	"testing"
)

// sumTreeLeaves collects every entry in a site group's decision tree.
func sumTreeLeaves(n *sumNode) []*sumEntry {
	var out []*sumEntry
	if n.leaf != nil {
		out = append(out, n.leaf)
	}
	for i := range n.kids {
		out = append(out, sumTreeLeaves(n.kids[i].n)...)
	}
	return out
}

// soleSumEntry returns the table's single entry, failing unless there is
// exactly one. In-package test helper for corrupting stored segments.
func soleSumEntry(t *testing.T, tab *SummaryTable) *sumEntry {
	t.Helper()
	var found *sumEntry
	for i := range tab.shards {
		sh := &tab.shards[i]
		sh.mu.Lock()
		for _, gs := range sh.m {
			for _, g := range gs {
				for _, e := range sumTreeLeaves(&g.root) {
					if found != nil {
						sh.mu.Unlock()
						t.Fatal("summary table holds more than one entry")
					}
					found = e
				}
			}
		}
		sh.mu.Unlock()
	}
	if found == nil {
		t.Fatal("summary table holds no entries")
	}
	return found
}

// sumSrc has one call site whose body reads and writes a global: the
// site is cold on the first fold, records on the second, and replays on
// the third (each fold starts from a fresh initial state, so the
// footprint b=0 repeats exactly).
const sumSrc = `var a; var b; func set() { b = b + 5; } func main() { a = 1; set(); a = 2; }`

// TestSummaryHitReplaysExactly: after the warm-up miss and the recording
// fold, a third fold over the same values replays the call segment and
// the whole MacroResult stays bit-identical to the executed one.
func TestSummaryHitReplaysExactly(t *testing.T) {
	c := compile(t, sumSrc)
	sum := NewSummaryTable(0, false)

	first := MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	if first.Failure != nil || first.Blocked {
		t.Fatalf("unexpected failure/block: %+v", first.StepResult)
	}
	if st := sum.Stats(); st.Stores != 0 {
		t.Fatalf("cold site recorded an entry: %+v", st)
	}

	second := MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	if st := sum.Stats(); st.Stores != 1 || st.Hits != 0 {
		t.Fatalf("after the recording fold: %+v, want 1 store / 0 hits", st)
	}
	if !macroResultsEqual(&first, &second) {
		t.Fatal("recording fold diverged from the bare one")
	}

	third := MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	st := sum.Stats()
	if st.Hits != 1 {
		t.Fatalf("after the replaying fold: %+v, want 1 hit", st)
	}
	if st.StepsSaved == 0 {
		t.Error("a replayed call saved no steps")
	}
	if !macroResultsEqual(&first, &third) {
		t.Fatal("replayed MacroResult differs from the executed one")
	}
	fin := third.Outcomes[0].State
	if g := fin.Globals[1]; !g.Equal(IntV(5)) {
		t.Errorf("replayed b = %v, want 5", g)
	}
}

// TestSummaryAuditCatchesCorruptEntry: a stored segment whose key still
// matches but whose write delta is wrong — what a recorder or
// normalization bug would produce — is detected by audit mode: the
// mismatch is counted, the executed (correct) result is returned, and
// the poisoned entry is dropped from the table.
func TestSummaryAuditCatchesCorruptEntry(t *testing.T) {
	c := compile(t, sumSrc)
	sum := NewSummaryTable(0, true)

	first := MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	if first.Failure != nil || first.Blocked {
		t.Fatalf("unexpected failure/block: %+v", first.StepResult)
	}
	second := MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	if st := sum.Stats(); st.Stores != 1 {
		t.Fatalf("recording fold: %+v, want 1 store", st)
	}
	if !macroResultsEqual(&first, &second) {
		t.Fatal("recording fold diverged from the bare one")
	}

	// Corrupt the stored write delta in place, leaving the key (site and
	// read footprint) untouched.
	e := soleSumEntry(t, sum)
	if len(e.delta.globals) == 0 {
		t.Fatalf("entry has no global writes to corrupt: %+v", e.delta)
	}
	e.delta.globals[0].v = IntV(999)

	got := MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	st := sum.Stats()
	if st.AuditMismatches != 1 {
		t.Fatalf("AuditMismatches = %d, want 1", st.AuditMismatches)
	}
	if st.Hits != 0 {
		t.Errorf("a refuted replay still counted as a hit: %+v", st)
	}
	if !macroResultsEqual(&first, &got) {
		t.Fatal("audit mode did not return the executed result after the mismatch")
	}
	if g := got.Outcomes[0].State.Globals[1]; !g.Equal(IntV(5)) {
		t.Errorf("post-audit b = %v, want the executed 5", g)
	}

	// The poisoned entry is gone: the next fold records afresh.
	_ = MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	if st := sum.Stats(); st.Stores != 2 {
		t.Fatalf("after the dropped entry: %+v, want 2 stores", st)
	}
}

// TestSummaryAuditPassesOnHonestEntry: with an uncorrupted table, audit
// mode verifies and admits the replay — hits count, no mismatches.
func TestSummaryAuditPassesOnHonestEntry(t *testing.T) {
	c := compile(t, sumSrc)
	sum := NewSummaryTable(0, true)

	first := MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	_ = MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	third := MacroStepMemoSum(NewState(c), 0, 0, nil, sum)
	st := sum.Stats()
	if st.Hits != 1 || st.AuditMismatches != 0 {
		t.Fatalf("honest audit hit: %+v, want 1 hit / 0 mismatches", st)
	}
	if !macroResultsEqual(&first, &third) {
		t.Fatal("audited replay differs from the executed fold")
	}
}
