package sem

import (
	"fmt"
	"sort"
	"strings"
)

// Object is a heap-allocated record instance.
type Object struct {
	Rec    string // record type name
	Fields []Value

	// gen is the copy-on-write stamp: the State.gen of the state that
	// allocated or last copied this object. See the COW invariant on
	// State.Clone.
	gen uint64
}

// Pending is a forked-but-unscheduled thread in the ts multiset of the
// sequential semantics (Section 4): a starting function plus the argument
// values captured at fork time.
type Pending struct {
	Fn   string
	Args []Value
}

func (p Pending) String() string {
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return p.Fn + "(" + strings.Join(parts, ",") + ")"
}

// Frame is one activation record.
type Frame struct {
	ID     int // unique within a state lineage; used for &local identity
	CF     *CompiledFunc
	PC     int
	Locals []Value
	// Result names the variable in the caller's scope that receives this
	// frame's return value ("" if the call discards it).
	Result string

	// gen is the copy-on-write stamp (see State.Clone).
	gen uint64
}

// Thread is one thread of control: a stack of frames, top last. A thread
// with no frames has terminated.
type Thread struct {
	ID     int
	Frames []*Frame

	// gen is the copy-on-write stamp guarding the Frames spine (see
	// State.Clone).
	gen uint64
}

// Top returns the active frame, or nil for a terminated thread.
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// Done reports whether the thread has terminated.
func (t *Thread) Done() bool { return len(t.Frames) == 0 }

// State is a complete program configuration: global store, heap, all
// threads, and (in the sequential semantics) the ts multiset.
//
// States clone copy-on-write: Clone shares every component with its
// source, and the mutable* accessors path-copy a component the first time
// the new state writes it. Read access through the exported fields is
// always safe; writers inside this package must go through the accessors
// (external callers mutate states only via Step, which does). The public
// fields continue to describe the complete configuration — sharing is
// invisible except through the allocation profile.
type State struct {
	C       *Compiled // shared, immutable
	Globals []Value
	Heap    []*Object
	Threads []*Thread
	Ts      []Pending

	nextFrameID  int
	nextThreadID int

	// gen is this state's copy-on-write generation. A component (globals
	// slice, heap spine, object, threads spine, thread, frame, ts slice)
	// carries the gen of the state that created its current version; the
	// component may be mutated in place iff its stamp equals the state's
	// gen. Clone hands the child gen+1 and bumps the parent to gen+2, so
	// after a clone *both* sides copy before writing anything shared.
	//
	// Soundness of the stamp comparison: a structure stamped g by state s
	// is shared only with states cloned (transitively) from s after the
	// stamping; every such clone receives a gen strictly greater than g,
	// and gens never decrease, so stamp==gen identifies the stamping state
	// uniquely. Stamps are written only before a structure is shared, so
	// concurrent readers in a parallel search never race on them.
	gen        uint64
	globalsGen uint64 // ownership stamp of the Globals slice
	heapGen    uint64 // ownership stamp of the Heap spine
	threadsGen uint64 // ownership stamp of the Threads spine
	tsGen      uint64 // ownership stamp of the Ts slice

	// rec, when non-nil, is the fold recorder observing this state's reads
	// and writes for the fold-memoization table (see memo.go). It is
	// attached by MacroStepMemo to the base state of a fold, propagated to
	// clones so the whole deterministic run is observed, and cleared from
	// every state the macro step returns — states the searches hold never
	// carry a recorder.
	rec *foldRecorder
}

// NewState returns the initial state: globals zero-initialized, an empty
// heap, and a single thread about to execute main.
func NewState(c *Compiled) *State {
	s := &State{C: c}
	s.Globals = make([]Value, len(c.Globals))
	for i := range s.Globals {
		s.Globals[i] = IntV(0)
	}
	main := c.Funcs["main"]
	s.Threads = []*Thread{{ID: 0, Frames: []*Frame{s.newFrame(main, nil, "")}}}
	s.nextThreadID = 1
	return s
}

func (s *State) newFrame(cf *CompiledFunc, args []Value, result string) *Frame {
	if s.rec != nil {
		s.rec.readNextFrameID(s.nextFrameID)
	}
	f := &Frame{ID: s.nextFrameID, CF: cf, Locals: make([]Value, len(cf.Vars)), Result: result, gen: s.gen}
	s.nextFrameID++
	for i := range f.Locals {
		if i < len(args) {
			f.Locals[i] = args[i]
		} else {
			f.Locals[i] = IntV(0)
		}
	}
	return f
}

// Clone returns a copy-on-write copy of s: every component is shared
// with s, and either side copies a component before its next write to it
// (the gen bump below revokes both sides' in-place write rights). For
// the ~90% of transitions that touch one frame and at most one heap
// object this replaces the old O(|heap|+|stack|) deep copy with a few
// small copies proportional to what actually changes.
//
// Clone writes s.gen, so concurrent Clones of the same state are not
// safe; a state handed to another goroutine (e.g. through a search
// frontier) must be owned by one worker at a time, which frontier
// queues provide by construction.
func (s *State) Clone() *State {
	n := &State{
		C:            s.C,
		Globals:      s.Globals,
		Heap:         s.Heap,
		Threads:      s.Threads,
		Ts:           s.Ts,
		nextFrameID:  s.nextFrameID,
		nextThreadID: s.nextThreadID,
		gen:          s.gen + 1,
		globalsGen:   s.globalsGen,
		heapGen:      s.heapGen,
		threadsGen:   s.threadsGen,
		tsGen:        s.tsGen,
		rec:          s.rec,
	}
	s.gen += 2
	return n
}

// DeepClone returns an eager deep copy of s sharing only the immutable
// Compiled program and instruction slices — the pre-COW Clone. It remains
// the reference implementation: property tests assert that a Step over a
// COW clone and over a deep clone produce fingerprint-identical
// successors, and the clone microbenchmarks compare the two.
func (s *State) DeepClone() *State {
	n := &State{
		C:            s.C,
		Globals:      append([]Value(nil), s.Globals...),
		nextFrameID:  s.nextFrameID,
		nextThreadID: s.nextThreadID,
	}
	n.Heap = make([]*Object, len(s.Heap))
	for i, o := range s.Heap {
		n.Heap[i] = &Object{Rec: o.Rec, Fields: append([]Value(nil), o.Fields...)}
	}
	n.Threads = make([]*Thread, len(s.Threads))
	for i, t := range s.Threads {
		nt := &Thread{ID: t.ID, Frames: make([]*Frame, len(t.Frames))}
		for j, fr := range t.Frames {
			nt.Frames[j] = &Frame{
				ID: fr.ID, CF: fr.CF, PC: fr.PC,
				Locals: append([]Value(nil), fr.Locals...),
				Result: fr.Result,
			}
		}
		n.Threads[i] = nt
	}
	if len(s.Ts) > 0 {
		n.Ts = make([]Pending, len(s.Ts))
		for i, p := range s.Ts {
			n.Ts[i] = Pending{Fn: p.Fn, Args: append([]Value(nil), p.Args...)}
		}
	}
	// The deep copy owns every component it built (gen 0 == stamp 0).
	return n
}

// mutableGlobals returns the Globals slice with write access, copying it
// first if it is shared with other states of the lineage.
func (s *State) mutableGlobals() []Value {
	if s.globalsGen != s.gen {
		s.Globals = append([]Value(nil), s.Globals...)
		s.globalsGen = s.gen
	}
	return s.Globals
}

// mutableHeap returns the heap spine with write access (replacing object
// pointers, appending), copying the spine first if shared.
func (s *State) mutableHeap() []*Object {
	if s.heapGen != s.gen {
		s.Heap = append([]*Object(nil), s.Heap...)
		s.heapGen = s.gen
	}
	return s.Heap
}

// mutableObject returns heap object idx with write access, path-copying
// the spine and the object if either is shared.
func (s *State) mutableObject(idx int) *Object {
	o := s.Heap[idx]
	// stamp==gen implies s created this object version after its last
	// Clone, so both the object and the spine slot are exclusively s's.
	if o.gen == s.gen {
		return o
	}
	no := &Object{Rec: o.Rec, Fields: append([]Value(nil), o.Fields...), gen: s.gen}
	s.mutableHeap()[idx] = no
	return no
}

// appendObject allocates o at the end of the heap and returns its index.
func (s *State) appendObject(o *Object) int {
	if s.rec != nil {
		s.rec.readHeapLen(len(s.Heap))
	}
	o.gen = s.gen
	s.Heap = append(s.mutableHeap(), o)
	return len(s.Heap) - 1
}

// mutableThreadsSpine returns the Threads slice with write access.
func (s *State) mutableThreadsSpine() []*Thread {
	if s.threadsGen != s.gen {
		s.Threads = append([]*Thread(nil), s.Threads...)
		s.threadsGen = s.gen
	}
	return s.Threads
}

// mutableThread returns thread ti with write access to its Frames spine
// (push/pop/replace frame pointers), path-copying as needed.
func (s *State) mutableThread(ti int) *Thread {
	t := s.Threads[ti]
	if t.gen == s.gen {
		return t
	}
	nt := &Thread{ID: t.ID, Frames: append([]*Frame(nil), t.Frames...), gen: s.gen}
	s.mutableThreadsSpine()[ti] = nt
	return nt
}

// mutableFrame returns frame fi of thread ti with write access.
func (s *State) mutableFrame(ti, fi int) *Frame {
	t := s.mutableThread(ti)
	fr := t.Frames[fi]
	if fr.gen == s.gen {
		return fr
	}
	nf := &Frame{
		ID: fr.ID, CF: fr.CF, PC: fr.PC,
		Locals: append([]Value(nil), fr.Locals...),
		Result: fr.Result,
		gen:    s.gen,
	}
	t.Frames[fi] = nf
	return nf
}

// MutableTopFrame returns the active frame of thread ti with write
// access. Step acquires it once per successor; a frame pointer obtained
// here is invalidated by a subsequent Clone of the state (the clone
// revokes in-place write rights), after which it must be re-acquired.
func (s *State) MutableTopFrame(ti int) *Frame {
	return s.mutableFrame(ti, len(s.Threads[ti].Frames)-1)
}

// appendThread adds a freshly created thread.
func (s *State) appendThread(t *Thread) {
	t.gen = s.gen
	s.Threads = append(s.mutableThreadsSpine(), t)
}

// pushFrame pushes a freshly created frame onto thread ti.
func (s *State) pushFrame(ti int, fr *Frame) {
	t := s.mutableThread(ti)
	fr.gen = s.gen
	t.Frames = append(t.Frames, fr)
}

// popFrame removes and returns the top frame of thread ti.
func (s *State) popFrame(ti int) *Frame {
	t := s.mutableThread(ti)
	fr := t.Frames[len(t.Frames)-1]
	t.Frames = t.Frames[:len(t.Frames)-1]
	return fr
}

// appendTs adds a pending entry to the ts multiset.
func (s *State) appendTs(p Pending) {
	if s.rec != nil {
		s.rec.wroteTs()
	}
	if s.tsGen != s.gen {
		ns := make([]Pending, len(s.Ts), len(s.Ts)+1)
		copy(ns, s.Ts)
		s.Ts = ns
		s.tsGen = s.gen
	}
	s.Ts = append(s.Ts, p)
}

// removeTs removes and returns entry i of the ts multiset. The backing
// array may be shared, so the entry is removed by rebuilding the slice;
// Pending entries themselves are immutable and stay shared.
func (s *State) removeTs(i int) Pending {
	if s.rec != nil {
		s.rec.readTs(s.Ts) // no-op if the run already saw or wrote ts
		s.rec.wroteTs()
	}
	p := s.Ts[i]
	ns := make([]Pending, 0, len(s.Ts)-1)
	ns = append(ns, s.Ts[:i]...)
	ns = append(ns, s.Ts[i+1:]...)
	s.Ts = ns
	s.tsGen = s.gen
	return p
}

// findFrameIndex locates a live frame by id across all threads, returning
// its (thread, frame) position for the mutable accessors. Returns (-1, -1)
// if the frame has been popped.
func (s *State) findFrameIndex(id int) (int, int) {
	for ti, t := range s.Threads {
		for fi, fr := range t.Frames {
			if fr.ID == id {
				return ti, fi
			}
		}
	}
	return -1, -1
}

// findFrame locates a live frame by id across all threads (for CLocal
// pointer access). Returns nil if the frame has been popped.
func (s *State) findFrame(id int) *Frame {
	for _, t := range s.Threads {
		for _, fr := range t.Frames {
			if fr.ID == id {
				return fr
			}
		}
	}
	return nil
}

// AllDone reports whether every thread has terminated and (in the
// sequential semantics) ts has been drained.
func (s *State) AllDone() bool {
	for _, t := range s.Threads {
		if !t.Done() {
			return false
		}
	}
	return len(s.Ts) == 0
}

// fpEncoder canonicalizes a state into a string key. Heap objects are
// renumbered in the order they are first reached from globals, thread
// stacks, and ts, so states differing only in allocation history collide
// as intended, and unreachable (garbage) objects are excluded. Frame ids
// are canonicalized to (thread position, depth).
type fpEncoder struct {
	s          *State
	objOrder   map[int]int // heap index -> canonical number
	objList    []int       // heap indices in canonical order (worklist)
	frameCanon map[int]int // frame id -> canonical number
}

func (e *fpEncoder) touchObj(idx int) int {
	if n, ok := e.objOrder[idx]; ok {
		return n
	}
	n := len(e.objOrder)
	e.objOrder[idx] = n
	e.objList = append(e.objList, idx)
	return n
}

func (e *fpEncoder) val(b *strings.Builder, v Value) {
	switch v.Kind {
	case KInt:
		fmt.Fprintf(b, "i%d,", v.I)
	case KBool:
		fmt.Fprintf(b, "b%d,", v.I)
	case KFunc:
		fmt.Fprintf(b, "f%s,", v.Fn)
	case KNull:
		b.WriteString("n,")
	case KUnit:
		b.WriteString("u,")
	case KPtr:
		c := v.Ptr
		switch c.Kind {
		case CGlobal:
			fmt.Fprintf(b, "pg%d,", c.Idx)
		case CHeapField:
			fmt.Fprintf(b, "ph%d.%d,", e.touchObj(c.Idx), c.Field)
		case CObject:
			fmt.Fprintf(b, "po%d,", e.touchObj(c.Idx))
		case CLocal:
			if n, ok := e.frameCanon[c.FrameID]; ok {
				fmt.Fprintf(b, "pl%d.%d,", n, c.Field)
			} else {
				fmt.Fprintf(b, "pl!.%d,", c.Field) // dangling
			}
		}
	}
}

// appendTsOrder appends the indices of s.Ts to order in canonical multiset
// order (sorted by a structure-only key, stably). Both fingerprint encoders
// use it so the string and hash canonicalizations can never diverge.
func (s *State) appendTsOrder(order []int) []int {
	for i := range s.Ts {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, c int) bool {
		return s.Ts[order[a]].String() < s.Ts[order[c]].String()
	})
	return order
}

// FingerprintString returns the canonical string encoding of the state.
// The explicit-state searches key their visited sets on the 64-bit
// FingerprintHash instead; the string form remains the debug/verification
// API (audit modes cross-check the two, see seqcheck.Options).
func (s *State) FingerprintString() string {
	e := &fpEncoder{s: s, objOrder: map[int]int{}, frameCanon: map[int]int{}}
	for ti, t := range s.Threads {
		for d, fr := range t.Frames {
			e.frameCanon[fr.ID] = ti<<16 | d
		}
	}

	var b strings.Builder
	b.WriteString("G:")
	for _, v := range s.Globals {
		e.val(&b, v)
	}
	b.WriteString("T:")
	for _, t := range s.Threads {
		b.WriteString("[")
		for _, fr := range t.Frames {
			fmt.Fprintf(&b, "(%s@%d:", fr.CF.Fn.Name, fr.PC)
			for _, v := range fr.Locals {
				e.val(&b, v)
			}
			fmt.Fprintf(&b, "r%s)", fr.Result)
		}
		b.WriteString("]")
	}

	// ts is a multiset: canonicalize by sorting encoded entries. Note that
	// encoding may touch (and thus canonically number) heap objects; the
	// numbering depends only on first-reach order, and the per-entry
	// encodings are sorted afterwards, so two states with the same
	// multiset and same reachable heap produce equal keys as long as their
	// entries reach objects in the same first-touch order. To make the
	// ordering independent of ts slice order entirely, entries are first
	// sorted by a structure-only key before encoding.
	if len(s.Ts) > 0 {
		order := s.appendTsOrder(make([]int, 0, len(s.Ts)))
		b.WriteString("S:")
		for _, i := range order {
			p := s.Ts[i]
			fmt.Fprintf(&b, "%s(", p.Fn)
			for _, a := range p.Args {
				e.val(&b, a)
			}
			b.WriteString(")")
		}
	}

	// Heap contents of reached objects in canonical order; serialization
	// may discover further objects, so iterate as a worklist.
	b.WriteString("H:")
	for i := 0; i < len(e.objList); i++ {
		idx := e.objList[i]
		o := s.Heap[idx]
		fmt.Fprintf(&b, "o%d=%s{", i, o.Rec)
		for _, v := range o.Fields {
			e.val(&b, v)
		}
		b.WriteString("}")
	}
	return b.String()
}
