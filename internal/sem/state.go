package sem

import (
	"fmt"
	"sort"
	"strings"
)

// Object is a heap-allocated record instance.
type Object struct {
	Rec    string // record type name
	Fields []Value
}

// Pending is a forked-but-unscheduled thread in the ts multiset of the
// sequential semantics (Section 4): a starting function plus the argument
// values captured at fork time.
type Pending struct {
	Fn   string
	Args []Value
}

func (p Pending) String() string {
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return p.Fn + "(" + strings.Join(parts, ",") + ")"
}

// Frame is one activation record.
type Frame struct {
	ID     int // unique within a state lineage; used for &local identity
	CF     *CompiledFunc
	PC     int
	Locals []Value
	// Result names the variable in the caller's scope that receives this
	// frame's return value ("" if the call discards it).
	Result string
}

// Thread is one thread of control: a stack of frames, top last. A thread
// with no frames has terminated.
type Thread struct {
	ID     int
	Frames []*Frame
}

// Top returns the active frame, or nil for a terminated thread.
func (t *Thread) Top() *Frame {
	if len(t.Frames) == 0 {
		return nil
	}
	return t.Frames[len(t.Frames)-1]
}

// Done reports whether the thread has terminated.
func (t *Thread) Done() bool { return len(t.Frames) == 0 }

// State is a complete program configuration: global store, heap, all
// threads, and (in the sequential semantics) the ts multiset.
type State struct {
	C       *Compiled // shared, immutable
	Globals []Value
	Heap    []*Object
	Threads []*Thread
	Ts      []Pending

	nextFrameID  int
	nextThreadID int
}

// NewState returns the initial state: globals zero-initialized, an empty
// heap, and a single thread about to execute main.
func NewState(c *Compiled) *State {
	s := &State{C: c}
	s.Globals = make([]Value, len(c.Globals))
	for i := range s.Globals {
		s.Globals[i] = IntV(0)
	}
	main := c.Funcs["main"]
	s.Threads = []*Thread{{ID: 0, Frames: []*Frame{s.newFrame(main, nil, "")}}}
	s.nextThreadID = 1
	return s
}

func (s *State) newFrame(cf *CompiledFunc, args []Value, result string) *Frame {
	f := &Frame{ID: s.nextFrameID, CF: cf, Locals: make([]Value, len(cf.Vars)), Result: result}
	s.nextFrameID++
	for i := range f.Locals {
		if i < len(args) {
			f.Locals[i] = args[i]
		} else {
			f.Locals[i] = IntV(0)
		}
	}
	return f
}

// Clone returns a deep copy of s sharing only the immutable Compiled
// program and instruction slices.
func (s *State) Clone() *State {
	n := &State{
		C:            s.C,
		Globals:      append([]Value(nil), s.Globals...),
		nextFrameID:  s.nextFrameID,
		nextThreadID: s.nextThreadID,
	}
	n.Heap = make([]*Object, len(s.Heap))
	for i, o := range s.Heap {
		n.Heap[i] = &Object{Rec: o.Rec, Fields: append([]Value(nil), o.Fields...)}
	}
	n.Threads = make([]*Thread, len(s.Threads))
	for i, t := range s.Threads {
		nt := &Thread{ID: t.ID, Frames: make([]*Frame, len(t.Frames))}
		for j, fr := range t.Frames {
			nt.Frames[j] = &Frame{
				ID: fr.ID, CF: fr.CF, PC: fr.PC,
				Locals: append([]Value(nil), fr.Locals...),
				Result: fr.Result,
			}
		}
		n.Threads[i] = nt
	}
	if len(s.Ts) > 0 {
		n.Ts = make([]Pending, len(s.Ts))
		for i, p := range s.Ts {
			n.Ts[i] = Pending{Fn: p.Fn, Args: append([]Value(nil), p.Args...)}
		}
	}
	return n
}

// findFrame locates a live frame by id across all threads (for CLocal
// pointer access). Returns nil if the frame has been popped.
func (s *State) findFrame(id int) *Frame {
	for _, t := range s.Threads {
		for _, fr := range t.Frames {
			if fr.ID == id {
				return fr
			}
		}
	}
	return nil
}

// AllDone reports whether every thread has terminated and (in the
// sequential semantics) ts has been drained.
func (s *State) AllDone() bool {
	for _, t := range s.Threads {
		if !t.Done() {
			return false
		}
	}
	return len(s.Ts) == 0
}

// fpEncoder canonicalizes a state into a string key. Heap objects are
// renumbered in the order they are first reached from globals, thread
// stacks, and ts, so states differing only in allocation history collide
// as intended, and unreachable (garbage) objects are excluded. Frame ids
// are canonicalized to (thread position, depth).
type fpEncoder struct {
	s          *State
	objOrder   map[int]int // heap index -> canonical number
	objList    []int       // heap indices in canonical order (worklist)
	frameCanon map[int]int // frame id -> canonical number
}

func (e *fpEncoder) touchObj(idx int) int {
	if n, ok := e.objOrder[idx]; ok {
		return n
	}
	n := len(e.objOrder)
	e.objOrder[idx] = n
	e.objList = append(e.objList, idx)
	return n
}

func (e *fpEncoder) val(b *strings.Builder, v Value) {
	switch v.Kind {
	case KInt:
		fmt.Fprintf(b, "i%d,", v.I)
	case KBool:
		fmt.Fprintf(b, "b%d,", v.I)
	case KFunc:
		fmt.Fprintf(b, "f%s,", v.Fn)
	case KNull:
		b.WriteString("n,")
	case KUnit:
		b.WriteString("u,")
	case KPtr:
		c := v.Ptr
		switch c.Kind {
		case CGlobal:
			fmt.Fprintf(b, "pg%d,", c.Idx)
		case CHeapField:
			fmt.Fprintf(b, "ph%d.%d,", e.touchObj(c.Idx), c.Field)
		case CObject:
			fmt.Fprintf(b, "po%d,", e.touchObj(c.Idx))
		case CLocal:
			if n, ok := e.frameCanon[c.FrameID]; ok {
				fmt.Fprintf(b, "pl%d.%d,", n, c.Field)
			} else {
				fmt.Fprintf(b, "pl!.%d,", c.Field) // dangling
			}
		}
	}
}

// appendTsOrder appends the indices of s.Ts to order in canonical multiset
// order (sorted by a structure-only key, stably). Both fingerprint encoders
// use it so the string and hash canonicalizations can never diverge.
func (s *State) appendTsOrder(order []int) []int {
	for i := range s.Ts {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, c int) bool {
		return s.Ts[order[a]].String() < s.Ts[order[c]].String()
	})
	return order
}

// FingerprintString returns the canonical string encoding of the state.
// The explicit-state searches key their visited sets on the 64-bit
// FingerprintHash instead; the string form remains the debug/verification
// API (audit modes cross-check the two, see seqcheck.Options).
func (s *State) FingerprintString() string {
	e := &fpEncoder{s: s, objOrder: map[int]int{}, frameCanon: map[int]int{}}
	for ti, t := range s.Threads {
		for d, fr := range t.Frames {
			e.frameCanon[fr.ID] = ti<<16 | d
		}
	}

	var b strings.Builder
	b.WriteString("G:")
	for _, v := range s.Globals {
		e.val(&b, v)
	}
	b.WriteString("T:")
	for _, t := range s.Threads {
		b.WriteString("[")
		for _, fr := range t.Frames {
			fmt.Fprintf(&b, "(%s@%d:", fr.CF.Fn.Name, fr.PC)
			for _, v := range fr.Locals {
				e.val(&b, v)
			}
			fmt.Fprintf(&b, "r%s)", fr.Result)
		}
		b.WriteString("]")
	}

	// ts is a multiset: canonicalize by sorting encoded entries. Note that
	// encoding may touch (and thus canonically number) heap objects; the
	// numbering depends only on first-reach order, and the per-entry
	// encodings are sorted afterwards, so two states with the same
	// multiset and same reachable heap produce equal keys as long as their
	// entries reach objects in the same first-touch order. To make the
	// ordering independent of ts slice order entirely, entries are first
	// sorted by a structure-only key before encoding.
	if len(s.Ts) > 0 {
		order := s.appendTsOrder(make([]int, 0, len(s.Ts)))
		b.WriteString("S:")
		for _, i := range order {
			p := s.Ts[i]
			fmt.Fprintf(&b, "%s(", p.Fn)
			for _, a := range p.Args {
				e.val(&b, a)
			}
			b.WriteString(")")
		}
	}

	// Heap contents of reached objects in canonical order; serialization
	// may discover further objects, so iterate as a worklist.
	b.WriteString("H:")
	for i := 0; i < len(e.objList); i++ {
		idx := e.objList[i]
		o := s.Heap[idx]
		fmt.Fprintf(&b, "o%d=%s{", i, o.Rec)
		for _, v := range o.Fields {
			e.val(&b, v)
		}
		b.WriteString("}")
	}
	return b.String()
}
