package sem

import (
	"testing"
	"testing/quick"

	"repro/internal/randprog"
)

// Property tests (testing/quick) over the core data structures of the
// semantics: canonical fingerprints and state cloning.

// TestQuickCloneFingerprintIdentity: cloning never changes the
// fingerprint, at any reachable state of a random program.
func TestQuickCloneFingerprintIdentity(t *testing.T) {
	f := func(seed int64, walk uint16) bool {
		c, ok := compileSeed(t, seed)
		if !ok {
			return true
		}
		s := NewState(c)
		// Walk a pseudo-random path for up to `walk % 64` steps.
		steps := int(walk % 64)
		x := uint64(seed)
		for i := 0; i < steps; i++ {
			if s.Threads[0].Done() {
				break
			}
			sr := Step(s, 0)
			if sr.Failure != nil || sr.Blocked || len(sr.Outcomes) == 0 {
				break
			}
			x = x*6364136223846793005 + 1442695040888963407
			s = sr.Outcomes[int(x>>33)%len(sr.Outcomes)].State
		}
		return s.Clone().FingerprintString() == s.FingerprintString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickStepDoesNotMutateInput: Step must never mutate the state it is
// given (fingerprint unchanged across a Step call).
func TestQuickStepDoesNotMutateInput(t *testing.T) {
	f := func(seed int64) bool {
		c, ok := compileSeed(t, seed)
		if !ok {
			return true
		}
		s := NewState(c)
		for i := 0; i < 40; i++ {
			if s.Threads[0].Done() {
				break
			}
			before := s.FingerprintString()
			sr := Step(s, 0)
			if s.FingerprintString() != before {
				return false
			}
			if sr.Failure != nil || sr.Blocked || len(sr.Outcomes) == 0 {
				break
			}
			s = sr.Outcomes[0].State
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFingerprintSeparatesGlobals: distinct global valuations yield
// distinct fingerprints.
func TestQuickFingerprintSeparatesGlobals(t *testing.T) {
	c, ok := compileSeed(t, 1)
	if !ok {
		t.Skip("seed program unavailable")
	}
	f := func(a, b int32) bool {
		s1 := NewState(c)
		s2 := NewState(c)
		s1.Globals[0] = IntV(int64(a))
		s2.Globals[0] = IntV(int64(b))
		same := s1.FingerprintString() == s2.FingerprintString()
		return same == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// compileSeed compiles a random generated program (they are sequentialized
// here by simply never stepping the forked threads, which is fine for
// state-structure properties).
func compileSeed(t *testing.T, seed int64) (*Compiled, bool) {
	t.Helper()
	src := randprog.Generate(seed, randprog.Default)
	c := compile(t, src)
	if len(c.Globals) == 0 {
		return nil, false
	}
	return c, true
}
