package sem

import (
	"encoding/binary"
	"fmt"
)

// State snapshots: a compact binary encoding of a complete program
// configuration, used by the disk-spilling search frontier
// (internal/frontier) to serialize frames past the in-RAM budget and
// restore them later in the search.
//
// The encoding is verbatim, not canonical: heap indices, frame ids, and
// the nextFrameID/nextThreadID counters round-trip exactly, so a restored
// state is indistinguishable from the original to Step, MacroStep, and
// both fingerprint encoders — successors allocate the same heap slots and
// frame ids, and fingerprints (which canonicalize reachable objects and
// frame ids themselves) are bit-identical. Garbage heap objects are
// included for exactly this reason: dropping them would shift the indices
// of later allocations and change successor fingerprints.
//
// Code references (Frame.CF) are encoded by function name and resolved
// against the Compiled program at decode time; the program itself is
// shared and never serialized. A decoded state owns every component it
// holds (all COW stamps zero, like DeepClone) and never carries a fold
// recorder.

// AppendSnapshot appends the snapshot encoding of s to buf and returns
// the extended slice. s must not carry a fold recorder (states held by
// search frontiers never do).
func AppendSnapshot(buf []byte, s *State) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s.Globals)))
	for _, v := range s.Globals {
		buf = appendValue(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Heap)))
	for _, o := range s.Heap {
		buf = appendString(buf, o.Rec)
		buf = binary.AppendUvarint(buf, uint64(len(o.Fields)))
		for _, v := range o.Fields {
			buf = appendValue(buf, v)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Threads)))
	for _, t := range s.Threads {
		buf = binary.AppendUvarint(buf, uint64(t.ID))
		buf = binary.AppendUvarint(buf, uint64(len(t.Frames)))
		for _, fr := range t.Frames {
			buf = binary.AppendUvarint(buf, uint64(fr.ID))
			buf = appendString(buf, fr.CF.Fn.Name)
			buf = binary.AppendUvarint(buf, uint64(fr.PC))
			buf = appendString(buf, fr.Result)
			buf = binary.AppendUvarint(buf, uint64(len(fr.Locals)))
			for _, v := range fr.Locals {
				buf = appendValue(buf, v)
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Ts)))
	for _, p := range s.Ts {
		buf = appendString(buf, p.Fn)
		buf = binary.AppendUvarint(buf, uint64(len(p.Args)))
		for _, v := range p.Args {
			buf = appendValue(buf, v)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(s.nextFrameID))
	buf = binary.AppendUvarint(buf, uint64(s.nextThreadID))
	return buf
}

// DecodeSnapshot rebuilds a state of program c from a snapshot produced
// by AppendSnapshot. The returned state owns all of its components.
func DecodeSnapshot(c *Compiled, data []byte) (*State, error) {
	d := &snapDecoder{data: data}
	s := &State{C: c}
	n := d.uvarint()
	s.Globals = make([]Value, n)
	for i := range s.Globals {
		s.Globals[i] = d.value()
	}
	n = d.uvarint()
	if n > 0 {
		s.Heap = make([]*Object, n)
		for i := range s.Heap {
			o := &Object{Rec: d.str()}
			o.Fields = make([]Value, d.uvarint())
			for j := range o.Fields {
				o.Fields[j] = d.value()
			}
			s.Heap[i] = o
		}
	}
	n = d.uvarint()
	s.Threads = make([]*Thread, n)
	for i := range s.Threads {
		t := &Thread{ID: int(d.uvarint())}
		nf := d.uvarint()
		if nf > 0 {
			t.Frames = make([]*Frame, nf)
			for j := range t.Frames {
				fr := &Frame{ID: int(d.uvarint())}
				name := d.str()
				fr.CF = c.Funcs[name]
				if fr.CF == nil && d.err == nil {
					d.err = fmt.Errorf("sem: snapshot references unknown function %q", name)
				}
				fr.PC = int(d.uvarint())
				fr.Result = d.str()
				fr.Locals = make([]Value, d.uvarint())
				for k := range fr.Locals {
					fr.Locals[k] = d.value()
				}
				t.Frames[j] = fr
			}
		}
		s.Threads[i] = t
	}
	n = d.uvarint()
	if n > 0 {
		s.Ts = make([]Pending, n)
		for i := range s.Ts {
			p := Pending{Fn: d.str()}
			p.Args = make([]Value, d.uvarint())
			for j := range p.Args {
				p.Args[j] = d.value()
			}
			s.Ts[i] = p
		}
	}
	s.nextFrameID = int(d.uvarint())
	s.nextThreadID = int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("sem: snapshot has %d trailing bytes", len(d.data)-d.pos)
	}
	return s, nil
}

// MemSize estimates the resident bytes of s for frontier budget
// accounting. The estimate charges every component to the state even when
// copy-on-write shares it with siblings — an overcount that makes the
// budget conservative (the frontier spills no later than a precise count
// would allow).
func (s *State) MemSize() int {
	const valueBytes = 56 // unsafe.Sizeof(Value{}) rounded up
	n := 160 + valueBytes*len(s.Globals)
	for _, o := range s.Heap {
		n += 64 + len(o.Rec) + valueBytes*len(o.Fields)
	}
	for _, t := range s.Threads {
		n += 48
		for _, fr := range t.Frames {
			n += 96 + len(fr.Result) + valueBytes*len(fr.Locals)
		}
	}
	for _, p := range s.Ts {
		n += 32 + len(p.Fn) + valueBytes*len(p.Args)
	}
	return n
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case KInt, KBool:
		buf = binary.AppendVarint(buf, v.I)
	case KFunc:
		buf = appendString(buf, v.Fn)
	case KPtr:
		buf = append(buf, byte(v.Ptr.Kind))
		buf = binary.AppendUvarint(buf, uint64(v.Ptr.Idx))
		buf = binary.AppendUvarint(buf, uint64(v.Ptr.Field))
		buf = binary.AppendUvarint(buf, uint64(v.Ptr.FrameID))
	case KNull, KUnit:
	}
	return buf
}

// snapDecoder reads the snapshot encoding with sticky error handling:
// after the first malformed read every accessor returns zero values and
// the error surfaces once at the end.
type snapDecoder struct {
	data []byte
	pos  int
	err  error
}

func (d *snapDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("sem: truncated snapshot at byte %d", d.pos)
	}
}

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *snapDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *snapDecoder) str() string {
	n := int(d.uvarint())
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.data) {
		d.fail()
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *snapDecoder) value() Value {
	if d.err != nil {
		return Value{}
	}
	if d.pos >= len(d.data) {
		d.fail()
		return Value{}
	}
	k := Kind(d.data[d.pos])
	d.pos++
	v := Value{Kind: k}
	switch k {
	case KInt, KBool:
		v.I = d.varint()
	case KFunc:
		v.Fn = d.str()
	case KPtr:
		if d.pos >= len(d.data) {
			d.fail()
			return Value{}
		}
		v.Ptr.Kind = CellKind(d.data[d.pos])
		d.pos++
		v.Ptr.Idx = int(d.uvarint())
		v.Ptr.Field = int(d.uvarint())
		v.Ptr.FrameID = int(d.uvarint())
	case KNull, KUnit:
	default:
		if d.err == nil {
			d.err = fmt.Errorf("sem: snapshot has unknown value kind %d", k)
		}
	}
	return v
}
