package sem

import (
	"testing"
)

// treeLeaves collects every entry in a group's decision tree.
func treeLeaves(n *memoNode) []*memoEntry {
	out := append([]*memoEntry(nil), n.leaves...)
	for i := range n.kids {
		out = append(out, treeLeaves(n.kids[i].n)...)
	}
	return out
}

// warm primes the warm-up gate for the program's initial control point:
// a first miss at a control point runs bare and records nothing, so tests
// fold once and discard before exercising store and replay.
func warm(c *Compiled, memo *FoldMemo) {
	MacroStepMemo(NewState(c), 0, 0, memo)
}

// soleEntry returns the table's single entry, failing unless there is
// exactly one. In-package test helper for corrupting stored folds.
func soleEntry(t *testing.T, m *FoldMemo) *memoEntry {
	t.Helper()
	var found *memoEntry
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, gs := range sh.m {
			for _, g := range gs {
				for _, e := range treeLeaves(&g.root) {
					if found != nil {
						sh.mu.Unlock()
						t.Fatal("table holds more than one entry")
					}
					found = e
				}
			}
		}
		sh.mu.Unlock()
	}
	if found == nil {
		t.Fatal("table holds no entries")
	}
	return found
}

// TestFoldMemoHitReplaysExactly: the second fold of an identical
// (control point, read footprint) pair is served from the table and the
// replayed MacroResult is bit-identical to the executed one — same
// events, counters, successor indices, and raw outcome states.
func TestFoldMemoHitReplaysExactly(t *testing.T) {
	src := `var x; var y; func main() { x = 1; y = x + 1; x = y * 2; }`
	c := compile(t, src)
	memo := NewFoldMemo(0, false)
	warm(c, memo)

	first := MacroStepMemo(NewState(c), 0, 0, memo)
	if first.Failure != nil || first.Blocked {
		t.Fatalf("unexpected failure/block: %+v", first.StepResult)
	}
	if st := memo.Stats(); st.Hits != 0 || st.Misses != 2 || st.Stores != 1 {
		t.Fatalf("after the recording fold: %+v, want 0 hits / 2 misses / 1 store", st)
	}

	second := MacroStepMemo(NewState(c), 0, 0, memo)
	st := memo.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("after the replayed fold: %+v, want 1 hit / 2 misses", st)
	}
	if st.StepsSaved != int64(first.Stepped) {
		t.Errorf("StepsSaved = %d, want the fold's %d micro steps", st.StepsSaved, first.Stepped)
	}
	if !macroResultsEqual(&first, &second) {
		t.Fatal("replayed MacroResult differs from the executed one")
	}
	fin := second.Outcomes[0].State
	if !fin.Threads[0].Done() {
		t.Error("replayed run did not reach thread completion")
	}
	if g := fin.Globals[0]; !g.Equal(IntV(4)) {
		t.Errorf("replayed x = %v, want 4", g)
	}
}

// TestFoldMemoMissOnDifferentFootprint: same control point, different
// read values — the lookup must re-read the footprint in the new state
// and miss, not replay a stale delta.
func TestFoldMemoMissOnDifferentFootprint(t *testing.T) {
	// main's fold reads g before writing, so g's initial value is in the
	// footprint.
	src := `var g; var out; func main() { out = g + 1; out = out + g; }`
	c := compile(t, src)
	memo := NewFoldMemo(0, false)
	warm(c, memo)

	s1 := NewState(c)
	first := MacroStepMemo(s1, 0, 0, memo)
	if first.Failure != nil || first.Blocked {
		t.Fatalf("unexpected failure/block: %+v", first.StepResult)
	}

	s2 := NewState(c)
	s2.Globals[0] = IntV(41) // perturb the footprint value
	second := MacroStepMemo(s2, 0, 0, memo)
	st := memo.Stats()
	if st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("perturbed footprint: %+v, want 0 hits / 3 misses", st)
	}
	if g := second.Outcomes[0].State.Globals[1]; !g.Equal(IntV(83)) {
		t.Errorf("out = %v after the perturbed fold, want 83", g)
	}
}

// TestFoldMemoBlindWriteReplays: a blind constant write whose value
// happens to equal the recording base's value changes nothing there, and
// the location is not footprint-pinned (it was never read) — so the
// entry also matches bases where the location differs, and the delta
// must still carry the write or the replay silently drops it.
func TestFoldMemoBlindWriteReplays(t *testing.T) {
	src := `var g; var sink; func main() { sink = 0; g = 1; sink = 2; }`
	c := compile(t, src)
	memo := NewFoldMemo(0, false)
	warm(c, memo)

	// Record at a base where g is already 1: the write is a no-op diff.
	s1 := NewState(c)
	s1.Globals[0] = IntV(1)
	first := MacroStepMemo(s1, 0, 0, memo)
	if first.Failure != nil || first.Blocked {
		t.Fatalf("unexpected failure/block: %+v", first.StepResult)
	}

	// Replay at a base where g is 0. The fold never reads g, so the
	// footprint matches; the replayed outcome must still set g = 1.
	second := MacroStepMemo(NewState(c), 0, 0, memo)
	if st := memo.Stats(); st.Hits != 1 {
		t.Fatalf("blind-write fold was not replayed: %+v", st)
	}
	if g := second.Outcomes[0].State.Globals[0]; !g.Equal(IntV(1)) {
		t.Errorf("replay dropped the blind write: g = %v, want 1", g)
	}
}

// TestFoldMemoAuditCatchesCorruptEntry: a stored entry whose key still
// matches but whose payload is wrong — what an implementation bug in the
// recorder or delta model would produce — is detected by audit mode: the
// mismatch is counted, the executed (correct) result is returned, and the
// poisoned entry is dropped from the table.
func TestFoldMemoAuditCatchesCorruptEntry(t *testing.T) {
	src := `var x; var y; func main() { x = 1; y = x + 1; x = y * 2; }`
	c := compile(t, src)
	memo := NewFoldMemo(0, true)
	warm(c, memo)

	first := MacroStepMemo(NewState(c), 0, 0, memo)
	if first.Failure != nil || first.Blocked {
		t.Fatalf("unexpected failure/block: %+v", first.StepResult)
	}

	// Corrupt the stored write delta in place, leaving the key (control
	// signature and read footprint) untouched.
	e := soleEntry(t, memo)
	if len(e.outs) != 1 || len(e.outs[0].globals) == 0 {
		t.Fatalf("entry has no global writes to corrupt: %+v", e.outs)
	}
	e.outs[0].globals[0].v = IntV(999)

	got := MacroStepMemo(NewState(c), 0, 0, memo)
	st := memo.Stats()
	if st.AuditMismatches != 1 {
		t.Fatalf("AuditMismatches = %d, want 1", st.AuditMismatches)
	}
	if st.Hits != 0 {
		t.Errorf("a refuted replay still counted as a hit: %+v", st)
	}
	if !macroResultsEqual(&first, &got) {
		t.Fatal("audit mode did not return the executed result after the mismatch")
	}

	// The poisoned entry is gone: the next fold is a fresh miss + store
	// (the refuted lookup itself counts as neither hit nor miss).
	_ = MacroStepMemo(NewState(c), 0, 0, memo)
	if st := memo.Stats(); st.Misses != 3 || st.Stores != 2 {
		t.Fatalf("after the dropped entry: %+v, want 3 misses / 2 stores", st)
	}
}

// TestFoldMemoAuditPassesOnHonestEntry: with an uncorrupted table, audit
// mode verifies and admits the replay — hits count, no mismatches.
func TestFoldMemoAuditPassesOnHonestEntry(t *testing.T) {
	src := `var x; var y; func main() { x = 1; y = x + 1; x = y * 2; }`
	c := compile(t, src)
	memo := NewFoldMemo(0, true)
	warm(c, memo)

	first := MacroStepMemo(NewState(c), 0, 0, memo)
	second := MacroStepMemo(NewState(c), 0, 0, memo)
	st := memo.Stats()
	if st.Hits != 1 || st.AuditMismatches != 0 {
		t.Fatalf("honest audit hit: %+v, want 1 hit / 0 mismatches", st)
	}
	if !macroResultsEqual(&first, &second) {
		t.Fatal("audited replay differs from the executed fold")
	}
}

// TestFoldMemoFailureEndpointReplays: a fold ending in an assertion
// violation replays with the same failure and prefix.
func TestFoldMemoFailureEndpointReplays(t *testing.T) {
	src := `var x; func main() { x = 1; x = x + 1; assert(x == 3); }`
	c := compile(t, src)
	memo := NewFoldMemo(0, false)
	warm(c, memo)

	first := MacroStepMemo(NewState(c), 0, 0, memo)
	if first.Failure == nil {
		t.Fatalf("assertion violation folded away: %+v", first.StepResult)
	}
	second := MacroStepMemo(NewState(c), 0, 0, memo)
	if st := memo.Stats(); st.Hits != 1 {
		t.Fatalf("failing fold was not replayed: %+v", st)
	}
	if !macroResultsEqual(&first, &second) {
		t.Fatal("replayed failing fold differs from the executed one")
	}
}

// TestFoldMemoLimitedRunReplayValidity: a limit-stopped fold replays only
// at exactly the limit that cut it; a naturally-stopped fold replays at
// any limit that would not have cut it shorter.
func TestFoldMemoLimitedRunReplayValidity(t *testing.T) {
	src := `var x; func main() { x = 1; x = 2; x = 3; x = 4; x = 5; }`
	c := compile(t, src)
	memo := NewFoldMemo(0, false)
	warm(c, memo)

	mr := MacroStepMemo(NewState(c), 0, 3, memo) // cut at 3 of the run's >3 steps
	if !mr.Limited || mr.Stepped != 3 {
		t.Fatalf("limit-3 fold: Stepped=%d Limited=%v", mr.Stepped, mr.Limited)
	}
	// Different limit: the stored limited run must NOT replay.
	_ = MacroStepMemo(NewState(c), 0, 4, memo)
	if st := memo.Stats(); st.Hits != 0 {
		t.Fatalf("limit-3 entry replayed under limit 4: %+v", st)
	}
	// Same limit: replays.
	again := MacroStepMemo(NewState(c), 0, 3, memo)
	if st := memo.Stats(); st.Hits != 1 {
		t.Fatalf("limit-3 entry did not replay under limit 3: %+v", st)
	}
	if !macroResultsEqual(&mr, &again) {
		t.Fatal("replayed limited fold differs from the executed one")
	}
}
