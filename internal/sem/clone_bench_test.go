package sem

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lower"
	"repro/internal/parser"
)

// benchSource builds a program whose mid-execution states carry a heap of
// roughly n objects, live globals, and a call in flight — the shape whose
// per-transition Clone cost the copy-on-write representation targets.
func benchSource(n int) string {
	var b strings.Builder
	b.WriteString("record Node { val; next; }\n")
	b.WriteString("var g0; var g1; var g2; var g3;\n")
	b.WriteString("func alloc(v) { var p; p = new Node; p->val = v; return p; }\n")
	b.WriteString("func main() {\n\tvar p;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tp = alloc(%d); g%d = p;\n", i, i%4)
	}
	b.WriteString("\tassert(g0 != null);\n}\n")
	return b.String()
}

// compileBench is the TB-friendly twin of compile (benchmarks cannot use
// the *testing.T helper).
func compileBench(tb testing.TB, src string) *Compiled {
	tb.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	lower.Program(p)
	c, err := Compile(p)
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	return c
}

// benchState walks the bench program to the first state whose heap holds
// at least n objects.
func benchState(tb testing.TB, n int) *State {
	tb.Helper()
	c := compileBench(tb, benchSource(n))
	s := NewState(c)
	for i := 0; i < 100000 && !s.Threads[0].Done(); i++ {
		sr := Step(s, 0)
		if sr.Failure != nil {
			tb.Fatalf("bench program failed: %v", sr.Failure.Msg)
		}
		if sr.Blocked || len(sr.Outcomes) == 0 {
			break
		}
		s = sr.Outcomes[0].State
		if len(s.Heap) >= n {
			return s
		}
	}
	tb.Fatalf("bench program never reached %d heap objects", n)
	return nil
}

// sinkState keeps benchmark results heap-allocated so the numbers reflect
// what the search pays.
var sinkState *State

// BenchmarkClone measures the copy-on-write Clone: O(1) regardless of
// heap and stack size. Compare with BenchmarkDeepClone, the eager copy it
// replaced.
func BenchmarkClone(b *testing.B) {
	s := benchState(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkState = s.Clone()
	}
}

// BenchmarkDeepClone is the pre-COW eager copy, kept as the reference
// implementation; the gap to BenchmarkClone is the per-transition win.
func BenchmarkDeepClone(b *testing.B) {
	s := benchState(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkState = s.DeepClone()
	}
}

// BenchmarkSuccessors measures a full successor computation (Step) at a
// mid-execution state: clone + execute one atomic item. Under COW the
// clone no longer scales with |heap|+|stack|, so this is dominated by the
// instructions actually executed.
func BenchmarkSuccessors(b *testing.B) {
	s := benchState(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := Step(s, 0)
		if sr.Failure != nil || len(sr.Outcomes) == 0 {
			b.Fatal("unexpected step result")
		}
	}
}

// outcomeKey renders a step result as a canonical string: failure,
// blockedness, and the sorted multiset of successor fingerprints.
func outcomeKey(sr StepResult) string {
	var b strings.Builder
	if sr.Failure != nil {
		fmt.Fprintf(&b, "fail:%s;", sr.Failure.Msg)
	}
	if sr.Blocked {
		b.WriteString("blocked;")
	}
	fps := make([]string, len(sr.Outcomes))
	for i, out := range sr.Outcomes {
		fps[i] = out.State.FingerprintString()
	}
	sort.Strings(fps)
	b.WriteString(strings.Join(fps, ","))
	return b.String()
}

// TestQuickCOWStepMatchesDeepClone: stepping a copy-on-write clone and
// stepping an eager deep copy of the same state yield fingerprint-
// identical successor multisets, and neither leaves a trace on the parent
// — the COW representation is observationally equal to the copy it
// replaced, along random walks of random programs.
func TestQuickCOWStepMatchesDeepClone(t *testing.T) {
	f := func(seed int64, walk uint16) bool {
		c, ok := compileSeed(t, seed)
		if !ok {
			return true
		}
		s := NewState(c)
		steps := int(walk % 48)
		x := uint64(seed)
		for i := 0; i < steps; i++ {
			if s.Threads[0].Done() {
				return true
			}
			parentBefore := s.FingerprintString()
			cow := s.Clone()
			deep := s.DeepClone()
			if outcomeKey(Step(cow, 0)) != outcomeKey(Step(deep, 0)) {
				return false
			}
			if s.FingerprintString() != parentBefore {
				return false
			}
			sr := Step(s, 0)
			if sr.Failure != nil || sr.Blocked || len(sr.Outcomes) == 0 {
				return true
			}
			x = x*6364136223846793005 + 1442695040888963407
			s = sr.Outcomes[int(x>>33)%len(sr.Outcomes)].State
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
