package sem

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/lower"
	"repro/internal/parser"
)

// compile parses, lowers, and compiles a program.
func compile(t *testing.T, src string) *Compiled {
	t.Helper()
	return compileTS(t, src, 0)
}

// compileTS is compile with an explicit ts bound for programs that use the
// __ts_put intrinsic directly.
func compileTS(t *testing.T, src string, maxTS int) *Compiled {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p.MaxTS = maxTS
	lower.Program(p)
	c, err := Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// run executes the program depth-first until all paths finish, fail, or
// block, returning the first failure (if any) and the set of final global
// valuations rendered as strings.
func run(t *testing.T, c *Compiled) (*Failure, map[string]bool) {
	t.Helper()
	finals := map[string]bool{}
	stack := []*State{NewState(c)}
	seen := map[string]bool{}
	steps := 0
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if steps++; steps > 200000 {
			t.Fatal("runaway execution")
		}
		progress := false
		for ti := range s.Threads {
			if s.Threads[ti].Done() {
				continue
			}
			sr := Step(s, ti)
			if sr.Failure != nil {
				return sr.Failure, finals
			}
			for _, o := range sr.Outcomes {
				fp := o.State.FingerprintString()
				if !seen[fp] {
					seen[fp] = true
					stack = append(stack, o.State)
				}
			}
			if len(sr.Outcomes) > 0 {
				progress = true
			}
		}
		if !progress && allThreadsDone(s) {
			var b strings.Builder
			for i, g := range s.Globals {
				b.WriteString(c.Globals[i] + "=" + g.String() + ";")
			}
			finals[b.String()] = true
		}
	}
	return nil, finals
}

func allThreadsDone(s *State) bool {
	for _, t := range s.Threads {
		if !t.Done() {
			return false
		}
	}
	return true
}

func TestArithmeticAndComparison(t *testing.T) {
	c := compile(t, `
var r;
func main() {
  var a; var b;
  a = 6; b = 7;
  r = a * b + 1 - 3;
  assert(r == 40);
  assert(a < b);
  assert(b >= a);
  assert(a != b);
  assert(!(a == b));
  assert(a <= 6 && b > 0 || false);
}
`)
	fail, finals := run(t, c)
	if fail != nil {
		t.Fatalf("unexpected failure: %v", fail)
	}
	if len(finals) != 1 || !finals["r=40;"] {
		t.Errorf("final globals: %v", finals)
	}
}

func TestPointersAndHeap(t *testing.T) {
	c := compile(t, `
record PAIR { a; b; }
var out;
func main() {
  var p; var q; var f;
  p = new PAIR;
  p->a = 1;
  p->b = 2;
  q = &p->a;
  *q = 10;
  f = &out;
  *f = p->a + p->b;
  assert(out == 12);
}
`)
	if fail, _ := run(t, c); fail != nil {
		t.Fatalf("unexpected failure: %v", fail)
	}
}

func TestCallsReturnValues(t *testing.T) {
	c := compile(t, `
var r;
func add(a, b) { return a + b; }
func twice(x) { var s; s = add(x, x); return s; }
func main() { r = twice(21); assert(r == 42); }
`)
	if fail, _ := run(t, c); fail != nil {
		t.Fatalf("unexpected failure: %v", fail)
	}
}

func TestImplicitReturnYieldsUnit(t *testing.T) {
	c := compile(t, `
var r;
func noret() { r = 1; }
func main() {
  var u;
  u = noret();
  assert(u == u);
}
`)
	if fail, _ := run(t, c); fail != nil {
		t.Fatalf("unexpected failure: %v", fail)
	}
}

func TestAssertFailureReported(t *testing.T) {
	c := compile(t, `func main() { assert(false); }`)
	fail, _ := run(t, c)
	if fail == nil || fail.Kind != AssertFail {
		t.Fatalf("want assertion failure, got %v", fail)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, fragment string
	}{
		{"null deref", `var p; func main() { var x; p = null; x = *p; }`, "null pointer"},
		{"null field", `record R { f; } func main() { var p; var x; p = null; x = p->f; }`, "null pointer"},
		{"non-pointer deref", `func main() { var x; var y; x = 3; y = *x; }`, "non-pointer"},
		{"bad arithmetic", `func main() { var x; x = true + 1; }`, "non-integer"},
		{"bad condition", `func main() { assert(3); }`, "non-boolean"},
		{"call non-function", `func main() { var f; f = 3; f(); }`, "non-function"},
		{"store to object", `record R { f; } func main() { var p; p = new R; *p = 1; }`, "whole object"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compile(t, tc.src)
			fail, _ := run(t, c)
			if fail == nil {
				t.Fatalf("want runtime error containing %q", tc.fragment)
			}
			if fail.Kind != RuntimeFail || !strings.Contains(fail.Msg, tc.fragment) {
				t.Errorf("failure %v does not mention %q", fail, tc.fragment)
			}
		})
	}
}

func TestChoiceExploresAllBranches(t *testing.T) {
	c := compile(t, `
var r;
func main() {
  choice { { r = 1; } [] { r = 2; } [] { r = 3; } }
}
`)
	_, finals := run(t, c)
	if len(finals) != 3 {
		t.Errorf("choice produced %d final states, want 3: %v", len(finals), finals)
	}
}

func TestIterExploresAllCounts(t *testing.T) {
	c := compile(t, `
var r;
func main() {
  r = 0;
  iter { assume(r < 3); r = r + 1; }
}
`)
	_, finals := run(t, c)
	// r in {0,1,2,3}
	if len(finals) != 4 {
		t.Errorf("iter produced %d final valuations, want 4: %v", len(finals), finals)
	}
}

// TestAtomicAllOrNothing: the lock idiom — if the atomic's assume fails,
// the whole atomic does not execute, and it retries later.
func TestAtomicLockIdiom(t *testing.T) {
	c := compile(t, `
var l;
var r;
func locker() {
  atomic { assume(l == 0); l = 1; }
  r = r + 1;
  atomic { l = 0; }
}
func main() {
  l = 0; r = 0;
  async locker();
  async locker();
}
`)
	fail, finals := run(t, c)
	if fail != nil {
		t.Fatalf("unexpected failure: %v", fail)
	}
	// Both lockers complete under every interleaving: r == 2, l == 0.
	if len(finals) != 1 || !finals["l=0;r=2;"] {
		t.Errorf("final states: %v, want exactly l=0;r=2;", finals)
	}
}

// TestAtomicNoInterleaving: a non-atomic read-modify-write loses updates,
// the atomic one never does.
func TestAtomicPreventsLostUpdate(t *testing.T) {
	racy := compile(t, `
var x;
func inc() { var t; t = x; x = t + 1; }
func main() { x = 0; async inc(); async inc(); }
`)
	_, finals := run(t, racy)
	if !finals["x=1;"] || !finals["x=2;"] {
		t.Errorf("racy increments should reach both x=1 and x=2: %v", finals)
	}

	safe := compile(t, `
var x;
func inc() { atomic { x = x + 1; } }
func main() { x = 0; async inc(); async inc(); }
`)
	_, finals = run(t, safe)
	if len(finals) != 1 || !finals["x=2;"] {
		t.Errorf("atomic increments must always reach x=2: %v", finals)
	}
}

func TestAtomicWithChoice(t *testing.T) {
	c := compile(t, `
var r;
func main() {
  atomic { choice { { r = 1; } [] { r = 2; } } }
}
`)
	_, finals := run(t, c)
	if len(finals) != 2 {
		t.Errorf("atomic choice: %v, want 2 outcomes", finals)
	}
}

func TestAtomicBlockedWhenAllPathsBlock(t *testing.T) {
	c := compile(t, `
var l;
func main() {
  l = 1;
  atomic { assume(l == 0); l = 2; }
}
`)
	s := NewState(c)
	// step main: l = 1
	sr := Step(s, 0)
	if len(sr.Outcomes) != 1 {
		t.Fatalf("setup step: %+v", sr)
	}
	sr = Step(sr.Outcomes[0].State, 0)
	if !sr.Blocked {
		t.Fatalf("atomic with false assume should block, got %+v", sr)
	}
}

func TestAsyncCreatesThread(t *testing.T) {
	c := compile(t, `
func f() { return; }
func main() { async f(); }
`)
	s := NewState(c)
	sr := Step(s, 0)
	if len(sr.Outcomes) != 1 {
		t.Fatalf("async step: %+v", sr)
	}
	ns := sr.Outcomes[0].State
	if len(ns.Threads) != 2 {
		t.Fatalf("got %d threads after async, want 2", len(ns.Threads))
	}
	if ns.Threads[1].Top().CF.Fn.Name != "f" {
		t.Errorf("new thread runs %s, want f", ns.Threads[1].Top().CF.Fn.Name)
	}
}

func TestBlockedAssumeUnblocksViaOtherThread(t *testing.T) {
	c := compile(t, `
var flag;
var done;
func waiter() { assume(flag == 1); done = 1; }
func main() { flag = 0; done = 0; async waiter(); flag = 1; }
`)
	fail, finals := run(t, c)
	if fail != nil {
		t.Fatalf("failure: %v", fail)
	}
	if !finals["flag=1;done=1;"] {
		t.Errorf("waiter never completed: %v", finals)
	}
}

func TestTsIntrinsics(t *testing.T) {
	c := compileTS(t, `
var r;
func f(v) { r = r + v; }
func main() {
  r = 0;
  __ts_put(@f, 1);
  __ts_put(@f, 2);
  assert(__ts_size() == 2);
  __ts_dispatch();
  __ts_dispatch();
  assert(__ts_size() == 0);
  assert(r == 3);
}
`, 2)
	fail, _ := run(t, c)
	if fail != nil {
		t.Fatalf("ts intrinsics failed: %v", fail)
	}
}

func TestTsDispatchDeduplicatesEqualEntries(t *testing.T) {
	c := compileTS(t, `
var r;
func f() { r = r + 1; }
func main() {
  __ts_put(@f);
  __ts_put(@f);
  __ts_dispatch();
}
`, 2)
	s := NewState(c)
	// run until the dispatch instruction
	var disp *State
	stack := []*State{s}
	for len(stack) > 0 && disp == nil {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(cur.Ts) == 2 {
			fr := cur.Threads[0].Top()
			if fr != nil && fr.PC < len(fr.CF.Code) && fr.CF.Code[fr.PC].Op == OpTsDispatch {
				disp = cur
				break
			}
		}
		sr := Step(cur, 0)
		stack = append(stack, statesOf(sr)...)
	}
	if disp == nil {
		t.Fatal("never reached dispatch with full ts")
	}
	sr := Step(disp, 0)
	if len(sr.Outcomes) != 1 {
		t.Errorf("dispatch of two identical entries produced %d successors, want 1 (deduplicated)", len(sr.Outcomes))
	}
}

func statesOf(sr StepResult) []*State {
	out := make([]*State, 0, len(sr.Outcomes))
	for _, o := range sr.Outcomes {
		out = append(out, o.State)
	}
	return out
}

// TestFingerprintCanonicalHeap: states that differ only in allocation
// order of unreachable garbage or in ts entry order have equal
// fingerprints.
func TestFingerprintCanonicalization(t *testing.T) {
	c := compile(t, `
record R { f; }
var keep;
func main() {
  var a; var b;
  a = new R;
  b = new R;
  keep = 0;
}
`)
	// Two different paths to "two objects allocated": same program here,
	// so instead check ts multiset order directly.
	s1 := NewState(c)
	s1.Ts = []Pending{{Fn: "main"}, {Fn: "other"}}
	s2 := s1.Clone()
	s2.Ts = []Pending{{Fn: "other"}, {Fn: "main"}}
	if s1.FingerprintString() != s2.FingerprintString() {
		t.Error("ts multiset order affects fingerprint")
	}

	// Garbage objects are excluded: allocate an unreachable object.
	s3 := s1.Clone()
	s3.Heap = append(s3.Heap, &Object{Rec: "R", Fields: []Value{IntV(99)}})
	if s1.FingerprintString() != s3.FingerprintString() {
		t.Error("unreachable heap garbage affects fingerprint")
	}
}

func TestFingerprintDistinguishesStates(t *testing.T) {
	c := compile(t, `var g; func main() { g = 1; }`)
	s1 := NewState(c)
	s2 := s1.Clone()
	s2.mutableGlobals()[0] = IntV(7)
	if s1.FingerprintString() == s2.FingerprintString() {
		t.Error("different global values collide")
	}
	s3 := s1.Clone()
	s3.MutableTopFrame(0).PC = 1
	if s1.FingerprintString() == s3.FingerprintString() {
		t.Error("different PCs collide")
	}
}

func TestValueEquality(t *testing.T) {
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{IntV(1), IntV(1), true},
		{IntV(1), IntV(2), false},
		{BoolV(true), BoolV(true), true},
		{BoolV(true), IntV(1), false},
		{FuncV("f"), FuncV("f"), true},
		{FuncV("f"), FuncV("g"), false},
		{NullV(), NullV(), true},
		{NullV(), IntV(0), false},
		{PtrV(Cell{Kind: CGlobal, Idx: 1}), PtrV(Cell{Kind: CGlobal, Idx: 1}), true},
		{PtrV(Cell{Kind: CGlobal, Idx: 1}), PtrV(Cell{Kind: CGlobal, Idx: 2}), false},
		{UnitV(), UnitV(), true},
	}
	for i, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.eq {
			t.Errorf("case %d: %s == %s is %v, want %v", i, tc.a, tc.b, got, tc.eq)
		}
		if got := tc.b.Equal(tc.a); got != tc.eq {
			t.Errorf("case %d: equality not symmetric", i)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	c := compile(t, `
record R { f; }
var g;
func main() { var p; p = new R; p->f = 1; g = 2; }
`)
	s := NewState(c)
	// advance two steps so there is heap content
	for i := 0; i < 2; i++ {
		sr := Step(s, 0)
		s = sr.Outcomes[0].State
	}
	clone := s.Clone()
	// Mutations go through the COW accessors (as Step's do); the clone
	// must observe none of them.
	s.mutableGlobals()[0] = IntV(99)
	if len(s.Heap) > 0 {
		s.mutableObject(0).Fields[0] = IntV(42)
	}
	s.MutableTopFrame(0).PC = 999
	if clone.Globals[0].Equal(IntV(99)) {
		t.Error("clone shares globals")
	}
	if len(clone.Heap) > 0 && clone.Heap[0].Fields[0].Equal(IntV(42)) {
		t.Error("clone shares heap objects")
	}
	if clone.Threads[0].Top().PC == 999 {
		t.Error("clone shares frames")
	}
}

func TestDotCFG(t *testing.T) {
	c := compile(t, `
var g;
func main() {
  g = 1;
  choice { { g = 2; } [] { g = 3; } }
  iter { assume(g < 5); g = g + 1; }
  atomic { g = 0; }
  return;
}
`)
	dot, err := DotCFG(c, "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"digraph", "entry ->", "-> exit", "choice", "atomic ("} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
	if _, err := DotCFG(c, "nosuch"); err == nil {
		t.Error("unknown function accepted")
	}
	// Every referenced node must be defined (n<i> both declared and used).
	for i := 0; ; i++ {
		ref := fmt.Sprintf("n%d", i)
		if !strings.Contains(dot, ref+" [") {
			if strings.Contains(dot, "-> "+ref+";") || strings.Contains(dot, "-> "+ref+" [") {
				t.Errorf("edge references undefined node %s", ref)
			}
			break
		}
	}
	names := FunctionNames(c)
	if len(names) != 1 || names[0] != "main" {
		t.Errorf("FunctionNames = %v", names)
	}
}
