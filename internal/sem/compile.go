package sem

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lower"
)

// Op is an instruction opcode.
type Op uint8

// Instruction opcodes.
const (
	OpAssign Op = iota
	OpAssert
	OpAssume
	OpCall
	OpAsync
	OpReturn
	OpJump       // unconditional jump to Targets[0]
	OpNondetJump // nondeterministic jump to one of Targets
	OpSkip
	OpAtomic // execute Atomic sub-instructions without interruption
	OpTsPut
	OpTsDispatch
)

// Instr is one flat instruction. Instructions are immutable after
// compilation and shared by all states.
type Instr struct {
	Op      Op
	Lhs     ast.Expr   // OpAssign
	Rhs     ast.Expr   // OpAssign
	Cond    ast.Expr   // OpAssert, OpAssume
	Result  string     // OpCall: variable receiving the return value ("" if none)
	Fn      ast.Expr   // OpCall, OpAsync, OpTsPut
	Args    []ast.Expr // OpCall, OpAsync, OpTsPut
	Value   ast.Expr   // OpReturn (nil for bare return)
	Targets []int      // OpJump (1), OpNondetJump (>=2)
	Atomic  []Instr    // OpAtomic: sub-program; jump targets index into it
	Pos     ast.Pos
	text    string // rendering cache, filled once after compilation
}

// Text returns a short human-readable rendering for traces. Compiled
// programs carry the rendering precomputed (Step builds an event per
// executed instruction; rendering there would put fmt on the hot path);
// hand-built instructions fall back to rendering on demand.
func (in *Instr) Text() string {
	if in.text != "" {
		return in.text
	}
	return in.render()
}

func (in *Instr) render() string {
	switch in.Op {
	case OpAssign:
		return ast.PrintExpr(in.Lhs) + " = " + ast.PrintExpr(in.Rhs)
	case OpAssert:
		return "assert(" + ast.PrintExpr(in.Cond) + ")"
	case OpAssume:
		return "assume(" + ast.PrintExpr(in.Cond) + ")"
	case OpCall:
		s := ast.PrintExpr(in.Fn) + "(...)"
		if in.Result != "" {
			s = in.Result + " = " + s
		}
		return s
	case OpAsync:
		return "async " + ast.PrintExpr(in.Fn) + "(...)"
	case OpReturn:
		if in.Value != nil {
			return "return " + ast.PrintExpr(in.Value)
		}
		return "return"
	case OpJump:
		return fmt.Sprintf("jump %d", in.Targets[0])
	case OpNondetJump:
		return fmt.Sprintf("nondet %v", in.Targets)
	case OpSkip:
		return "skip"
	case OpAtomic:
		return "atomic{...}"
	case OpTsPut:
		return "__ts_put(" + ast.PrintExpr(in.Fn) + ", ...)"
	case OpTsDispatch:
		return "__ts_dispatch()"
	}
	return "?"
}

// CompiledFunc is a function lowered to instruction form. Execution starts
// at Code[0]; "falling off the end" (PC == len(Code)) is an implicit bare
// return.
type CompiledFunc struct {
	Fn       *ast.Func
	Code     []Instr
	Vars     []string       // parameters first, then locals
	VarIdx   map[string]int // name -> index into Vars
	NumParam int
	nameHash uint64 // FNV of Fn.Name, precomputed for the memo/summary keys
}

// Compiled is a whole program in instruction form, shared immutably by all
// states derived from it.
type Compiled struct {
	Prog      *ast.Program
	Funcs     map[string]*CompiledFunc
	Globals   []string
	GlobalIdx map[string]int
	Records   map[string]*ast.Record
	// RaceGlobalIdx is the global index of a global race target, or -1.
	RaceGlobalIdx int
}

// Compile translates a core-form program into instruction form. The
// program must be in core form (lower.Program output); Compile verifies
// this and returns an error otherwise.
func Compile(p *ast.Program) (*Compiled, error) {
	if ok, why := lower.IsCore(p); !ok {
		return nil, fmt.Errorf("sem: program not in core form: %s", why)
	}
	c := &Compiled{
		Prog:          p,
		Funcs:         make(map[string]*CompiledFunc, len(p.Funcs)),
		GlobalIdx:     make(map[string]int, len(p.Globals)),
		Records:       make(map[string]*ast.Record, len(p.Records)),
		RaceGlobalIdx: -1,
	}
	for i, g := range p.Globals {
		c.Globals = append(c.Globals, g.Name)
		c.GlobalIdx[g.Name] = i
	}
	for _, r := range p.Records {
		c.Records[r.Name] = r
	}
	if t := p.RaceTarget; t != nil && t.Global != "" {
		if idx, ok := c.GlobalIdx[t.Global]; ok {
			c.RaceGlobalIdx = idx
		}
	}
	for _, f := range p.Funcs {
		cf, err := compileFunc(f)
		if err != nil {
			return nil, err
		}
		c.Funcs[f.Name] = cf
	}
	if _, ok := c.Funcs["main"]; !ok {
		return nil, fmt.Errorf("sem: program has no main function")
	}
	return c, nil
}

func compileFunc(f *ast.Func) (*CompiledFunc, error) {
	cf := &CompiledFunc{
		Fn:       f,
		VarIdx:   map[string]int{},
		NumParam: len(f.Params),
		nameHash: mixString(fnvOffset64, f.Name),
	}
	for _, p := range f.Params {
		cf.VarIdx[p] = len(cf.Vars)
		cf.Vars = append(cf.Vars, p)
	}
	for _, l := range f.Locals {
		if _, dup := cf.VarIdx[l.Name]; dup {
			return nil, fmt.Errorf("sem: function %s: duplicate variable %s", f.Name, l.Name)
		}
		cf.VarIdx[l.Name] = len(cf.Vars)
		cf.Vars = append(cf.Vars, l.Name)
	}
	fc := &funcCompiler{cf: cf}
	fc.block(f.Body)
	cf.Code = fc.code
	cacheText(cf.Code)
	return cf, nil
}

// cacheText fills the rendering cache. Must run after jump targets are
// patched — OpJump/OpNondetJump render their targets.
func cacheText(code []Instr) {
	for i := range code {
		cacheText(code[i].Atomic)
		code[i].text = code[i].render()
	}
}

type funcCompiler struct {
	cf   *CompiledFunc
	code []Instr
}

func (fc *funcCompiler) emit(in Instr) int {
	fc.code = append(fc.code, in)
	return len(fc.code) - 1
}

func (fc *funcCompiler) block(b *ast.Block) {
	for _, s := range b.Stmts {
		fc.stmt(s)
	}
}

func (fc *funcCompiler) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		fc.block(s)
	case *ast.AssignStmt:
		fc.emit(Instr{Op: OpAssign, Lhs: s.Lhs, Rhs: s.Rhs, Pos: s.Pos})
	case *ast.AssertStmt:
		fc.emit(Instr{Op: OpAssert, Cond: s.Cond, Pos: s.Pos})
	case *ast.AssumeStmt:
		fc.emit(Instr{Op: OpAssume, Cond: s.Cond, Pos: s.Pos})
	case *ast.AtomicStmt:
		sub := &funcCompiler{cf: fc.cf}
		sub.block(s.Body)
		fc.emit(Instr{Op: OpAtomic, Atomic: sub.code, Pos: s.Pos})
	case *ast.BenignStmt:
		// The benign annotation affects only race instrumentation; at
		// execution level it is its body.
		fc.block(s.Body)
	case *ast.CallStmt:
		fc.emit(Instr{Op: OpCall, Result: s.Result, Fn: s.Fn, Args: s.Args, Pos: s.Pos})
	case *ast.AsyncStmt:
		fc.emit(Instr{Op: OpAsync, Fn: s.Fn, Args: s.Args, Pos: s.Pos})
	case *ast.ReturnStmt:
		fc.emit(Instr{Op: OpReturn, Value: s.Value, Pos: s.Pos})
	case *ast.ChoiceStmt:
		// nondet -> branch starts; each branch ends with jump to join.
		nd := fc.emit(Instr{Op: OpNondetJump, Pos: s.Pos})
		starts := make([]int, len(s.Branches))
		var exits []int
		for i, b := range s.Branches {
			starts[i] = len(fc.code)
			fc.block(b)
			exits = append(exits, fc.emit(Instr{Op: OpJump, Pos: s.Pos}))
		}
		join := len(fc.code)
		fc.code[nd].Targets = starts
		for _, e := range exits {
			fc.code[e].Targets = []int{join}
		}
	case *ast.IterStmt:
		// L: nondet {body, join}; body; jump L; join:
		nd := fc.emit(Instr{Op: OpNondetJump, Pos: s.Pos})
		bodyStart := len(fc.code)
		fc.block(s.Body)
		fc.emit(Instr{Op: OpJump, Targets: []int{nd}, Pos: s.Pos})
		join := len(fc.code)
		fc.code[nd].Targets = []int{bodyStart, join}
	case *ast.SkipStmt:
		fc.emit(Instr{Op: OpSkip, Pos: s.Pos})
	case *ast.TsPutStmt:
		fc.emit(Instr{Op: OpTsPut, Fn: s.Fn, Args: s.Args, Pos: s.Pos})
	case *ast.TsDispatchStmt:
		fc.emit(Instr{Op: OpTsDispatch, Pos: s.Pos})
	case *ast.IfStmt, *ast.WhileStmt:
		panic("sem: sugar statement survived lowering")
	default:
		panic(fmt.Sprintf("sem: unknown statement %T", s))
	}
}
