package sem

import (
	"fmt"

	"repro/internal/ast"
)

// RuntimeError describes a dynamic type or memory error ("the program goes
// wrong" in a way other than an assertion failure).
type RuntimeError struct {
	Pos ast.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

func rterrf(pos ast.Pos, format string, args ...any) *RuntimeError {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lookupVar finds the cell for a variable name in the given frame's scope:
// frame-local first, then global.
func (s *State) lookupVar(fr *Frame, name string, pos ast.Pos) (Cell, *RuntimeError) {
	if idx, ok := fr.CF.VarIdx[name]; ok {
		return Cell{Kind: CLocal, FrameID: fr.ID, Field: idx}, nil
	}
	if idx, ok := s.C.GlobalIdx[name]; ok {
		return Cell{Kind: CGlobal, Idx: idx}, nil
	}
	return Cell{}, rterrf(pos, "undefined variable %q", name)
}

// Load reads the value stored in a cell.
func (s *State) Load(c Cell, pos ast.Pos) (Value, *RuntimeError) {
	switch c.Kind {
	case CGlobal:
		v := s.Globals[c.Idx]
		if s.rec != nil {
			s.rec.readGlobal(c.Idx, v)
		}
		return v, nil
	case CHeapField:
		v := s.Heap[c.Idx].Fields[c.Field]
		if s.rec != nil {
			s.rec.readHeapField(c.Idx, c.Field, v)
		}
		return v, nil
	case CLocal:
		fr := s.findFrame(c.FrameID)
		if fr == nil {
			if s.rec != nil {
				s.rec.readDangling(c.FrameID, c.Field)
			}
			return Value{}, rterrf(pos, "dangling pointer to local of a popped frame")
		}
		v := fr.Locals[c.Field]
		if s.rec != nil {
			s.rec.readLocal(c.FrameID, c.Field, v)
		}
		return v, nil
	case CObject:
		return Value{}, rterrf(pos, "cannot load a whole object; use p->field")
	}
	return Value{}, rterrf(pos, "bad cell")
}

// Store writes a value into a cell, path-copying any component still
// shared with other states of the lineage (see State.Clone).
func (s *State) Store(c Cell, v Value, pos ast.Pos) *RuntimeError {
	switch c.Kind {
	case CGlobal:
		if s.rec != nil {
			s.rec.wroteGlobal(c.Idx)
		}
		s.mutableGlobals()[c.Idx] = v
		return nil
	case CHeapField:
		if s.rec != nil {
			s.rec.wroteHeapField(c.Idx, c.Field)
		}
		s.mutableObject(c.Idx).Fields[c.Field] = v
		return nil
	case CLocal:
		ti, fi := s.findFrameIndex(c.FrameID)
		if ti < 0 {
			if s.rec != nil {
				s.rec.readDangling(c.FrameID, c.Field)
			}
			return rterrf(pos, "dangling pointer to local of a popped frame")
		}
		if s.rec != nil {
			s.rec.wroteLocal(c.FrameID, c.Field)
		}
		s.mutableFrame(ti, fi).Locals[c.Field] = v
		return nil
	case CObject:
		return rterrf(pos, "cannot store to a whole object; use p->field")
	}
	return rterrf(pos, "bad cell")
}

// fieldCell resolves p->field for a pointer value p to the cell of that
// field.
func (s *State) fieldCell(pv Value, field string, pos ast.Pos) (Cell, *RuntimeError) {
	if pv.Kind == KNull {
		return Cell{}, rterrf(pos, "null pointer dereference (->%s)", field)
	}
	if pv.Kind != KPtr || pv.Ptr.Kind != CObject {
		return Cell{}, rterrf(pos, "->%s applied to non-object value %s", field, pv)
	}
	obj := s.Heap[pv.Ptr.Idx]
	if s.rec != nil {
		s.rec.readHeapRec(pv.Ptr.Idx, obj.Rec)
	}
	rec := s.C.Records[obj.Rec]
	fi := rec.FieldIndex(field)
	if fi < 0 {
		return Cell{}, rterrf(pos, "record %s has no field %q", obj.Rec, field)
	}
	return Cell{Kind: CHeapField, Idx: pv.Ptr.Idx, Field: fi}, nil
}

// Eval evaluates a core expression in the scope of frame fr. `new`
// allocates in s. Eval never blocks; blocking is handled by OpAssume.
func (s *State) Eval(fr *Frame, e ast.Expr) (Value, *RuntimeError) {
	switch e := e.(type) {
	case *ast.IntLit:
		return IntV(e.Value), nil
	case *ast.BoolLit:
		return BoolV(e.Value), nil
	case *ast.FuncLit:
		return FuncV(e.Name), nil
	case *ast.NullLit:
		return NullV(), nil
	case *ast.VarExpr:
		c, err := s.lookupVar(fr, e.Name, e.Pos)
		if err != nil {
			return Value{}, err
		}
		return s.Load(c, e.Pos)
	case *ast.AddrOfExpr:
		c, err := s.lookupVar(fr, e.Name, e.Pos)
		if err != nil {
			return Value{}, err
		}
		return PtrV(c), nil
	case *ast.DerefExpr:
		pv, err := s.Eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if pv.Kind == KNull {
			return Value{}, rterrf(e.Pos, "null pointer dereference")
		}
		if pv.Kind != KPtr {
			return Value{}, rterrf(e.Pos, "dereference of non-pointer value %s", pv)
		}
		return s.Load(pv.Ptr, e.Pos)
	case *ast.FieldExpr:
		pv, err := s.Eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		c, err := s.fieldCell(pv, e.Field, e.Pos)
		if err != nil {
			return Value{}, err
		}
		return s.Load(c, e.Pos)
	case *ast.AddrFieldExpr:
		pv, err := s.Eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		c, err := s.fieldCell(pv, e.Field, e.Pos)
		if err != nil {
			return Value{}, err
		}
		return PtrV(c), nil
	case *ast.UnaryExpr:
		x, err := s.Eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case "!":
			if x.Kind != KBool {
				return Value{}, rterrf(e.Pos, "'!' applied to non-boolean %s", x)
			}
			return BoolV(!x.Bool()), nil
		case "-":
			if x.Kind != KInt {
				return Value{}, rterrf(e.Pos, "unary '-' applied to non-integer %s", x)
			}
			return IntV(-x.I), nil
		}
		return Value{}, rterrf(e.Pos, "unknown unary operator %q", e.Op)
	case *ast.BinaryExpr:
		x, err := s.Eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		y, err := s.Eval(fr, e.Y)
		if err != nil {
			return Value{}, err
		}
		return binop(e.Op, x, y, e.Pos)
	case *ast.NewExpr:
		rec, ok := s.C.Records[e.Record]
		if !ok {
			return Value{}, rterrf(e.Pos, "new of unknown record %q", e.Record)
		}
		o := &Object{Rec: rec.Name, Fields: make([]Value, len(rec.Fields))}
		for i := range o.Fields {
			o.Fields[i] = IntV(0)
		}
		idx := s.appendObject(o)
		return PtrV(Cell{Kind: CObject, Idx: idx}), nil
	case *ast.TsSizeExpr:
		if s.rec != nil {
			s.rec.readTs(s.Ts)
		}
		return IntV(int64(len(s.Ts))), nil
	case *ast.RaceCellExpr:
		x, err := s.Eval(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		return BoolV(s.isRaceCell(x)), nil
	}
	return Value{}, rterrf(e.ExprPos(), "cannot evaluate expression %T", e)
}

// isRaceCell implements the distinguished-cell test of the race-checking
// instrumentation (Section 5): the pointer x addresses the race target —
// the target global's cell, or a field named Field of an object of record
// type Record.
func (s *State) isRaceCell(x Value) bool {
	t := s.C.Prog.RaceTarget
	if t == nil || x.Kind != KPtr {
		return false
	}
	c := x.Ptr
	if t.Global != "" {
		return c.Kind == CGlobal && c.Idx == s.C.RaceGlobalIdx
	}
	if c.Kind != CHeapField {
		return false
	}
	obj := s.Heap[c.Idx]
	if s.rec != nil {
		s.rec.readHeapRec(c.Idx, obj.Rec)
	}
	if obj.Rec != t.Record {
		return false
	}
	rec := s.C.Records[obj.Rec]
	return rec.FieldIndex(t.Field) == c.Field
}

func binop(op string, x, y Value, pos ast.Pos) (Value, *RuntimeError) {
	switch op {
	case "+", "-", "*":
		if x.Kind != KInt || y.Kind != KInt {
			return Value{}, rterrf(pos, "arithmetic %q on non-integers %s, %s", op, x, y)
		}
		switch op {
		case "+":
			return IntV(x.I + y.I), nil
		case "-":
			return IntV(x.I - y.I), nil
		default:
			return IntV(x.I * y.I), nil
		}
	case "==":
		return BoolV(x.Equal(y)), nil
	case "!=":
		return BoolV(!x.Equal(y)), nil
	case "<", "<=", ">", ">=":
		if x.Kind != KInt || y.Kind != KInt {
			return Value{}, rterrf(pos, "comparison %q on non-integers %s, %s", op, x, y)
		}
		switch op {
		case "<":
			return BoolV(x.I < y.I), nil
		case "<=":
			return BoolV(x.I <= y.I), nil
		case ">":
			return BoolV(x.I > y.I), nil
		default:
			return BoolV(x.I >= y.I), nil
		}
	case "&&", "||":
		if x.Kind != KBool || y.Kind != KBool {
			return Value{}, rterrf(pos, "boolean %q on non-booleans %s, %s", op, x, y)
		}
		if op == "&&" {
			return BoolV(x.Bool() && y.Bool()), nil
		}
		return BoolV(x.Bool() || y.Bool()), nil
	}
	return Value{}, rterrf(pos, "unknown binary operator %q", op)
}

// evalBool evaluates a condition and requires a boolean result.
func (s *State) evalBool(fr *Frame, e ast.Expr) (bool, *RuntimeError) {
	v, err := s.Eval(fr, e)
	if err != nil {
		return false, err
	}
	if v.Kind != KBool {
		return false, rterrf(e.ExprPos(), "condition evaluated to non-boolean %s", v)
	}
	return v.Bool(), nil
}

// lvalueCell resolves a core-form assignment target to a cell.
func (s *State) lvalueCell(fr *Frame, lhs ast.Expr) (Cell, *RuntimeError) {
	switch l := lhs.(type) {
	case *ast.VarExpr:
		return s.lookupVar(fr, l.Name, l.Pos)
	case *ast.DerefExpr:
		pv, err := s.Eval(fr, l.X)
		if err != nil {
			return Cell{}, err
		}
		if pv.Kind == KNull {
			return Cell{}, rterrf(l.Pos, "null pointer dereference in assignment")
		}
		if pv.Kind != KPtr {
			return Cell{}, rterrf(l.Pos, "assignment through non-pointer value %s", pv)
		}
		return pv.Ptr, nil
	case *ast.FieldExpr:
		pv, err := s.Eval(fr, l.X)
		if err != nil {
			return Cell{}, err
		}
		return s.fieldCell(pv, l.Field, l.Pos)
	}
	return Cell{}, rterrf(lhs.ExprPos(), "invalid assignment target %T", lhs)
}
