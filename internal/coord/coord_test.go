package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	kiss "repro"
	"repro/internal/service"
)

// --- ring -------------------------------------------------------------

func namedBackends(names ...string) []*backend {
	var out []*backend
	for _, n := range names {
		out = append(out, &backend{name: n})
	}
	return out
}

// TestRingRouting: routing must be deterministic, reasonably balanced,
// and minimally disruptive — removing one member moves only the keys it
// owned.
func TestRingRouting(t *testing.T) {
	members := namedBackends("a", "b", "c")
	r1 := buildRing(members)
	r2 := buildRing(members)

	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r1.owner(key), r2.owner(key)
		if o1 != o2 {
			t.Fatalf("owner(%q) not deterministic across rebuilds: %s vs %s", key, o1.name, o2.name)
		}
		counts[o1.name]++
	}
	for name, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("backend %s owns %.0f%% of keys; want a rough third", name, 100*frac)
		}
	}

	// Successors: distinct, complete, led by the owner.
	succ := r1.successors("key-42")
	if len(succ) != 3 {
		t.Fatalf("successors: got %d backends, want 3", len(succ))
	}
	if succ[0] != r1.owner("key-42") {
		t.Fatalf("successors[0] != owner")
	}

	// Minimal disruption: drop b; keys owned by a or c must not move.
	shrunk := buildRing(namedBackends("a", "c"))
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := r1.owner(key).name
		after := shrunk.owner(key).name
		if before != "b" && before != after {
			t.Fatalf("key %q moved %s -> %s though its owner stayed in the ring", key, before, after)
		}
		if before == "b" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by b; distribution is broken")
	}

	if buildRing(nil).owner("x") != nil || buildRing(nil).successors("x") != nil {
		t.Fatal("empty ring must route to nothing")
	}
}

// --- tenant buckets ---------------------------------------------------

func TestTenantBucket(t *testing.T) {
	tt := newTenantTable(1, 5) // 1 token/s, burst 5
	clock := time.Unix(1000, 0)
	tt.now = func() time.Time { return clock }

	if ok, _ := tt.take("acme", 5); !ok {
		t.Fatal("burst-sized batch must be admitted")
	}
	ok, retry := tt.take("acme", 1)
	if ok {
		t.Fatal("empty bucket must refuse")
	}
	if retry != time.Second {
		t.Fatalf("retry-after = %v, want 1s", retry)
	}

	// A big deficit rounds up: 3 needed at 1/s -> 3s.
	if _, retry = tt.take("acme", 3); retry != 3*time.Second {
		t.Fatalf("retry-after = %v, want 3s", retry)
	}

	// Tenants are independent.
	if ok, _ := tt.take("globex", 5); !ok {
		t.Fatal("fresh tenant must have a full bucket")
	}

	// Refill at rate: after 2s, 2 tokens.
	clock = clock.Add(2 * time.Second)
	if ok, _ := tt.take("acme", 2); !ok {
		t.Fatal("2s at 1 token/s must refill 2 tokens")
	}
	if ok, _ := tt.take("acme", 1); ok {
		t.Fatal("bucket must be empty again")
	}

	// Refill caps at burst.
	clock = clock.Add(time.Hour)
	if ok, _ := tt.take("acme", 6); ok {
		t.Fatal("refill must cap at burst (5), not admit 6")
	}
	if ok, _ := tt.take("acme", 5); !ok {
		t.Fatal("capped bucket must still hold burst tokens")
	}
}

// --- cluster fixtures -------------------------------------------------

// flakyBackend fronts one kissd, with a kill switch (connections abort,
// as if the process died) and a revive that swaps in a fresh server —
// fresh cache, as a restarted process would have.
type flakyBackend struct {
	down atomic.Bool
	h    atomic.Pointer[http.Handler]
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		panic(http.ErrAbortHandler)
	}
	(*f.h.Load()).ServeHTTP(w, r)
}

func (f *flakyBackend) serve(s *service.Server) {
	h := s.Handler()
	f.h.Store(&h)
}

type cluster struct {
	t        *testing.T
	co       *Coordinator
	cl       *service.Client
	flaky    map[string]*flakyBackend
	backends map[string]*service.Server
}

func newCluster(t *testing.T, cfg Config, names ...string) *cluster {
	t.Helper()
	c := &cluster{t: t, flaky: map[string]*flakyBackend{}, backends: map[string]*service.Server{}}
	for _, name := range names {
		f := &flakyBackend{}
		c.flaky[name] = f
		c.newBackend(name)
		ts := httptest.NewServer(f)
		t.Cleanup(ts.Close)
		cfg.Backends = append(cfg.Backends, BackendSpec{Name: name, URL: ts.URL})
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	c.co = co
	front := httptest.NewServer(co.Handler())
	t.Cleanup(front.Close)
	c.cl = service.NewClient(front.URL)
	return c
}

// newBackend swaps a freshly started kissd (empty cache) behind name.
func (c *cluster) newBackend(name string) {
	s := service.New(service.Config{Workers: 2, QueueSize: 64})
	c.t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	c.backends[name] = s
	c.flaky[name].serve(s)
}

func (c *cluster) kill(name string)   { c.flaky[name].down.Store(true) }
func (c *cluster) revive(name string) { c.newBackend(name); c.flaky[name].down.Store(false) }

func (c *cluster) waitHealthy(name string, want bool) {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, b := range c.co.Health().Backends {
			if b.Name == name && b.Healthy == want {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatalf("backend %s never became healthy=%v", name, want)
}

// metric reads one label-free counter/gauge from the coordinator text
// exposition.
func (c *cluster) metric(name string) float64 {
	c.t.Helper()
	text, err := c.cl.Metrics(context.Background())
	if err != nil {
		c.t.Fatal(err)
	}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				c.t.Fatalf("parsing %s: %v", line, err)
			}
			return v
		}
	}
	c.t.Fatalf("metric %s not exposed", name)
	return 0
}

// --- corpus -----------------------------------------------------------

// chaosSrc generates distinct programs: every third has a reachable
// assertion violation through the reduction (fast to refute), the rest
// are safe with a state space big enough — tens of milliseconds — that
// a mid-batch kill lands while work is genuinely in flight.
func chaosSrc(i int) string {
	if i%3 == 0 {
		return fmt.Sprintf(`
var x;
func worker() { x = %d; }
func main() {
  x = 0;
  async worker();
  assert(x == 0);
}
`, i+1)
	}
	bound := 50 + i
	return fmt.Sprintf(`
var a;
var b;
func main() {
  a = 0; b = 0;
  iter { choice { { a = a + 1; assume(a < %d); } [] { b = b + 1; assume(b < %d); } } }
  assert(a + b >= 0);
}
`, bound, bound)
}

// localWire runs one job in-process the way kissd does (normalized
// config) and shapes the result like the wire Result.
func localWire(t *testing.T, src string) *service.Result {
	t.Helper()
	prog, err := kiss.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kiss.NewConfig().Normalized()
	res, err := cfg.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := &service.Result{
		Verdict: res.Verdict.String(),
		Message: res.Message,
		States:  res.States,
		Steps:   res.Steps,
		Stats:   res.Stats,
	}
	if res.Verdict == kiss.Error {
		out.Pos = res.Pos.String()
		if res.Trace != nil {
			out.Trace = res.Trace.Format()
			out.Schedule = res.Trace.Schedule()
		}
	}
	return out
}

// normalize renders a wire Result with timing stripped, for byte
// comparison between cluster and local runs.
func normalize(t *testing.T, r *service.Result) string {
	t.Helper()
	if r == nil {
		return "<nil>"
	}
	cp := *r
	cp.Stats.StripTiming()
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func keyOf(t *testing.T, src string) string {
	t.Helper()
	prog, err := kiss.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	key, err := service.CacheKey(prog.Source(), kiss.NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// collect drains a batch stream into an index-keyed map, failing on
// duplicate or missing indices.
func collect(t *testing.T, stream *service.BatchStream, n int, onItem func(*service.BatchItem)) map[int]*service.BatchItem {
	t.Helper()
	defer stream.Close()
	items := map[int]*service.BatchItem{}
	for {
		item, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("reading batch stream: %v", err)
		}
		if items[item.Index] != nil {
			t.Fatalf("duplicate item for index %d", item.Index)
		}
		items[item.Index] = item
		if onItem != nil {
			onItem(item)
		}
	}
	if len(items) != n {
		t.Fatalf("stream delivered %d items, want %d", len(items), n)
	}
	return items
}

// --- cluster behavior -------------------------------------------------

// TestProxyCheckAndShardedCache: /v1/check is a transparent proxy, and
// resubmitting an identical job hits the owning shard's cache.
func TestProxyCheckAndShardedCache(t *testing.T) {
	c := newCluster(t, Config{HealthEvery: 50 * time.Millisecond}, "a", "b")
	ctx := context.Background()

	src := chaosSrc(1)
	first, err := c.cl.Do(ctx, service.CheckRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if first.State != service.StateDone || first.Cached {
		t.Fatalf("first check: state=%s cached=%v, want done/uncached", first.State, first.Cached)
	}
	second, err := c.cl.Do(ctx, service.CheckRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical resubmission must be served from the shard cache")
	}
	if got, want := normalize(t, second.Result), normalize(t, localWire(t, src)); got != want {
		t.Fatalf("cluster result differs from local run:\n got %s\nwant %s", got, want)
	}
	if c.metric("kiss_coord_owner_cache_hits_total") < 1 {
		t.Fatal("owner-cache hit not counted")
	}

	// Async submission has no home on a coordinator.
	wait := false
	_, err = c.cl.Do(ctx, service.CheckRequest{Source: src, Wait: &wait})
	var se *service.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("wait=false: got %v, want 400", err)
	}
}

// TestTenantAdmission: named tenants draw from their bucket and get 429
// + Retry-After when it runs dry; unnamed tenants are not charged.
func TestTenantAdmission(t *testing.T) {
	c := newCluster(t, Config{HealthEvery: 50 * time.Millisecond, TenantRate: 0.001, TenantBurst: 2}, "a")
	ctx := context.Background()
	src := chaosSrc(2)

	for i := 0; i < 2; i++ {
		if _, err := c.cl.Do(ctx, service.CheckRequest{Source: src}, service.WithTenant("acme")); err != nil {
			t.Fatalf("within-burst check %d: %v", i, err)
		}
	}
	_, err := c.cl.Do(ctx, service.CheckRequest{Source: src}, service.WithTenant("acme"))
	var se *service.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota check: got %v, want 429", err)
	}
	if d, ok := se.RetryAfterDuration(); !ok || d < time.Second {
		t.Fatalf("429 must carry Retry-After, got %q", se.RetryAfter)
	}
	if c.metric("kiss_coord_rate_limited_total") < 1 {
		t.Fatal("rate-limit rejection not counted")
	}

	// A batch is charged as a whole: 3 jobs against an empty bucket.
	_, err = c.cl.Batch(ctx, service.BatchRequest{
		Jobs: []service.BatchJob{{Source: src}, {Source: src}, {Source: src}},
	}, service.WithTenant("acme"))
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch: got %v, want 429", err)
	}

	// No tenant, no quota.
	for i := 0; i < 4; i++ {
		if _, err := c.cl.Do(ctx, service.CheckRequest{Source: src}); err != nil {
			t.Fatalf("unnamed check %d: %v", i, err)
		}
	}
}

// TestClusterChaos is the acceptance scenario: a 3-backend cluster
// works a corpus while one backend is killed mid-batch. The verdict set
// must match a local single-process run exactly (after StripTiming),
// with no lost or duplicated items; after the backend comes back empty,
// a second pass must be answered from the surviving caches — owner hits
// where the key never moved, peer hits where it did — recomputing only
// the results that died with the killed backend's cache.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("explores real state spaces across two batch passes; skipped in -short")
	}
	const jobs = 36
	// The health cadence is deliberately slower than the job dispatch
	// cadence so the kill is discovered at request time (a failed probe
	// or compute), not absorbed by a health tick before any job notices.
	c := newCluster(t, Config{HealthEvery: 250 * time.Millisecond, BatchWorkers: 4}, "a", "b", "c")
	ctx := context.Background()

	req := service.BatchRequest{}
	local := map[int]string{}
	keys := map[int]string{}
	for i := 0; i < jobs; i++ {
		src := chaosSrc(i)
		req.Jobs = append(req.Jobs, service.BatchJob{Source: src})
		local[i] = normalize(t, localWire(t, src))
		keys[i] = keyOf(t, src)
	}

	// The ring is deterministic, so b's ownership share is a property of
	// the corpus, not of the run. The kill fires after the first item,
	// with at most BatchWorkers jobs in flight, so b owning comfortably
	// more keys than that guarantees reroutes (and later peer hits).
	probeRing := buildRing(namedBackends("a", "b", "c"))
	bOwned := 0
	for i := 0; i < jobs; i++ {
		if probeRing.owner(keys[i]).name == "b" {
			bOwned++
		}
	}
	bOwnedSlow := 0
	for i := 0; i < jobs; i++ {
		if i%3 != 0 && probeRing.owner(keys[i]).name == "b" {
			bOwnedSlow++
		}
	}
	if bOwned < 7 || bOwnedSlow < 4 {
		t.Fatalf("corpus gives b %d keys (%d slow); regenerate the corpus", bOwned, bOwnedSlow)
	}

	// Pass 1: kill b as soon as the first result streams back.
	stream, err := c.cl.Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	killed := false
	items := collect(t, stream, jobs, func(*service.BatchItem) {
		if !killed {
			killed = true
			c.kill("b")
		}
	})

	// Every verdict matches the local run; none lost, none duplicated
	// (collect enforces index uniqueness and count).
	lostWithB := map[string]bool{}
	for i := 0; i < jobs; i++ {
		item := items[i]
		if item.State != service.StateDone {
			t.Fatalf("pass 1 item %d: state=%s error=%q", i, item.State, item.Error)
		}
		if got := normalize(t, item.Result); got != local[i] {
			t.Fatalf("pass 1 item %d differs from local run:\n got %s\nwant %s", i, got, local[i])
		}
		if item.Key != keys[i] {
			t.Fatalf("pass 1 item %d routed by key %s, want %s", i, item.Key, keys[i])
		}
		if item.Backend == "b" {
			// Computed on b before (or as) it died: that cache is gone.
			lostWithB[item.Key] = true
		}
	}
	if len(lostWithB) == jobs {
		t.Fatal("every job landed on b; the kill did nothing")
	}

	c.waitHealthy("b", false)
	if c.metric("kiss_coord_reroutes_total") < 1 {
		t.Fatal("killing a backend mid-batch must force at least one reroute")
	}

	// Revive b with an empty cache and let the ring take it back.
	c.revive("b")
	c.waitHealthy("b", true)
	if epoch := c.co.Health().RingEpoch; epoch < 2 {
		t.Fatalf("ring epoch = %d after a down/up cycle, want >= 2", epoch)
	}

	// Pass 2: same corpus. Keys that stayed put hit their owner's cache;
	// keys that moved back to b are found in the peers' caches (they
	// were computed on a survivor during the failover window); only
	// results whose sole copy died with b's cache may be recomputed.
	stream, err = c.cl.Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	items = collect(t, stream, jobs, nil)
	peerHits := 0
	for i := 0; i < jobs; i++ {
		item := items[i]
		if item.State != service.StateDone {
			t.Fatalf("pass 2 item %d: state=%s error=%q", i, item.State, item.Error)
		}
		if got := normalize(t, item.Result); got != local[i] {
			t.Fatalf("pass 2 item %d differs from local run:\n got %s\nwant %s", i, got, local[i])
		}
		if item.PeerCache {
			peerHits++
		}
		if !item.Cached && !item.PeerCache && !lostWithB[item.Key] {
			t.Fatalf("pass 2 item %d (key %s, backend %s) was recomputed though a live cache held it", i, item.Key, item.Backend)
		}
	}
	if peerHits == 0 {
		t.Fatal("pass 2 must see peer-cache hits for keys that failed over while b was down")
	}
	if c.metric("kiss_coord_peer_cache_hits_total") < 1 {
		t.Fatal("peer-cache hits not counted")
	}
	ownerHits := 0
	for i := 0; i < jobs; i++ {
		if items[i].Cached {
			ownerHits++
		}
	}
	t.Logf("pass 2: %d/%d owner-cache hits, %d peer-cache hits, %d recomputed (of %d results lost with b); reroutes=%v",
		ownerHits, jobs, peerHits, jobs-ownerHits-peerHits, len(lostWithB), c.metric("kiss_coord_reroutes_total"))
}
