package coord

import (
	"math"
	"sync"
	"time"
)

// tenantTable holds one token bucket per tenant (the X-Kiss-Tenant
// header value). Buckets refill at rate tokens/second up to burst;
// a submission costs one token per job, so a batch of N draws N at
// once. A request from an unnamed tenant is not charged — the quota
// protects shared clusters from named noisy neighbors, not the
// single-user localhost setup.
type tenantTable struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu  sync.Mutex
	m   map[string]*bucket
	now func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantTable(rate float64, burst int) *tenantTable {
	return &tenantTable{rate: rate, burst: float64(burst), m: map[string]*bucket{}, now: time.Now}
}

// take withdraws n tokens from tenant's bucket. On refusal it returns
// the wait after which the bucket will have refilled enough, rounded up
// to whole seconds for the Retry-After header (minimum 1s).
func (t *tenantTable) take(tenant string, n int) (ok bool, retryAfter time.Duration) {
	need := float64(n)
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	b := t.m[tenant]
	if b == nil {
		b = &bucket{tokens: t.burst, last: now}
		t.m[tenant] = b
	}
	b.tokens = math.Min(t.burst, b.tokens+t.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	deficit := need - b.tokens
	secs := math.Ceil(deficit / t.rate)
	if secs < 1 {
		secs = 1
	}
	return false, time.Duration(secs) * time.Second
}
