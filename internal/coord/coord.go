// Package coord is the cluster coordinator behind cmd/kiss-coord: an
// HTTP front end that shards checking work across a fleet of kissd
// backends.
//
// The KISS reduction makes every checking problem an independent,
// deterministic (source, config) pair, so a cluster needs no consensus
// and no shared state: the coordinator consistent-hashes each job's
// content address (service.CacheKey) onto a ring of healthy backends,
// making each backend's LRU result cache a shard of one distributed
// cache. Identical work lands on the same backend and is answered from
// its cache; after a membership change (a backend died or came back)
// the coordinator probes the other members' caches before recomputing,
// so a rebalance costs lookups, not re-exploration.
//
// Endpoints:
//
//	POST /v1/check  transparent single-check proxy (synchronous only)
//	POST /v1/batch  fan a corpus of jobs out; stream JSONL results back
//	GET  /healthz   coordinator + per-backend health (JSON)
//	GET  /metrics   Prometheus text exposition
//
// Admission is per tenant (X-Kiss-Tenant): each named tenant draws from
// a token bucket, one token per job, and an empty bucket rejects with
// 429 + Retry-After — the same backpressure idiom kissd uses for its
// queue, lifted to the cluster edge.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	kiss "repro"
	"repro/internal/service"
	"repro/internal/stats"
)

// BackendSpec names one kissd backend.
type BackendSpec struct {
	Name string
	URL  string
}

// Config parameterizes a Coordinator. Zero values get defaults in New.
type Config struct {
	// Version is reported by /healthz.
	Version string
	// Backends is the fleet (at least one).
	Backends []BackendSpec
	// HealthEvery is the backend health-poll cadence. Default 2s.
	HealthEvery time.Duration
	// ProbeTimeout bounds each health poll and cache probe. Default 2s.
	ProbeTimeout time.Duration
	// TenantRate and TenantBurst parameterize the per-tenant token
	// buckets: TenantRate jobs/second sustained, TenantBurst jobs of
	// burst. Defaults 50/s and 200.
	TenantRate  float64
	TenantBurst int
	// BatchWorkers bounds how many jobs of one batch run concurrently
	// across the fleet. Default 4 x len(Backends).
	BatchWorkers int
	// MaxBodyBytes bounds request bodies. Default 64 MiB (batches carry
	// whole corpora).
	MaxBodyBytes int64
}

// backend is one kissd plus its routing state. healthy is flipped by
// the health loop and by request-time failures; the last health poll's
// queue depth and jobs-done counters feed the coordinator gauges.
type backend struct {
	name string
	url  string
	cl   *service.Client

	healthy    atomic.Bool
	queueDepth atomic.Int64
	jobsDone   atomic.Int64
}

// Coordinator routes checks across the backend fleet. Create with New,
// serve Handler(), stop with Close.
type Coordinator struct {
	cfg      Config
	backends []*backend
	ringPtr  atomic.Pointer[ring]
	// fullRing hashes over every configured backend regardless of
	// health: it defines each key's home shard, against which reroutes
	// are counted.
	fullRing *ring
	// epoch counts ring membership changes. It gates peer-cache probing:
	// at epoch 0 no key has ever moved, so a miss on the owner is a miss
	// everywhere and probing peers would only add latency.
	epoch   atomic.Int64
	tenants *tenantTable
	reg     *stats.Registry

	mu       sync.Mutex // serializes ring rebuilds
	flightMu sync.Mutex
	flights  map[string]*flight

	stop chan struct{}
	wg   sync.WaitGroup

	reroutes    *stats.Counter
	peerHits    *stats.Counter
	ownerHits   *stats.Counter
	computes    *stats.Counter
	rateLimited *stats.Counter
	batches     *stats.Counter
}

// New builds a Coordinator over the configured backends and starts the
// health loops. Backends start optimistically healthy; the first failed
// poll (or failed request) takes one out of the ring.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("coord: no backends configured")
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.TenantRate <= 0 {
		cfg.TenantRate = 50
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 200
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = 4 * len(cfg.Backends)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	c := &Coordinator{
		cfg:     cfg,
		tenants: newTenantTable(cfg.TenantRate, cfg.TenantBurst),
		reg:     stats.NewRegistry(),
		flights: map[string]*flight{},
		stop:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, spec := range cfg.Backends {
		if spec.Name == "" || spec.URL == "" {
			return nil, fmt.Errorf("coord: backend needs name and url, got %+v", spec)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("coord: duplicate backend name %q", spec.Name)
		}
		seen[spec.Name] = true
		b := &backend{name: spec.Name, url: spec.URL, cl: service.NewClient(spec.URL)}
		b.healthy.Store(true)
		c.backends = append(c.backends, b)
	}
	c.rebuildRing()
	c.fullRing = buildRing(c.backends)
	c.epoch.Store(0) // the initial build is not a membership *change*
	c.registerMetrics()
	for _, b := range c.backends {
		c.wg.Add(1)
		go c.healthLoop(b)
	}
	return c, nil
}

// Close stops the health loops.
func (c *Coordinator) Close() {
	close(c.stop)
	c.wg.Wait()
}

// Registry exposes the metrics registry (cmd/kiss-coord adds process
// gauges).
func (c *Coordinator) Registry() *stats.Registry { return c.reg }

// Handler returns the HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", c.handleCheck)
	mux.HandleFunc("POST /v1/batch", c.handleBatch)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func (c *Coordinator) registerMetrics() {
	r := c.reg
	for _, b := range c.backends {
		b := b
		labels := map[string]string{"backend": b.name}
		r.GaugeFunc("kiss_coord_backend_queue_depth",
			"Admission-queue depth of each backend at its last health poll.", labels,
			func() float64 { return float64(b.queueDepth.Load()) })
		r.GaugeFunc("kiss_coord_backend_up",
			"Whether each backend is in the routing ring (1) or out (0).", labels,
			func() float64 {
				if b.healthy.Load() {
					return 1
				}
				return 0
			})
	}
	r.GaugeFunc("kiss_coord_ring_epoch",
		"Ring membership changes since start; >0 enables peer-cache probing.", nil,
		func() float64 { return float64(c.epoch.Load()) })
	c.reroutes = r.Counter("kiss_coord_reroutes_total",
		"Jobs computed away from their home shard because it failed or left the ring.", nil)
	c.peerHits = r.Counter("kiss_coord_peer_cache_hits_total",
		"Results found in a non-owner backend's cache after a rebalance.", nil)
	c.ownerHits = r.Counter("kiss_coord_owner_cache_hits_total",
		"Results found in the owning backend's cache by probe.", nil)
	c.computes = r.Counter("kiss_coord_computed_total",
		"Jobs dispatched to a backend for computation.", nil)
	c.rateLimited = r.Counter("kiss_coord_rate_limited_total",
		"Submissions rejected with 429 by per-tenant admission quotas.", nil)
	c.batches = r.Counter("kiss_coord_batches_total",
		"Batch submissions accepted.", nil)
}

// healthLoop polls one backend's /healthz on the configured cadence,
// updating its gauges and flipping it in or out of the ring on status
// transitions.
func (c *Coordinator) healthLoop(b *backend) {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
		h, err := b.cl.Health(ctx)
		cancel()
		if err != nil || h.Status != "ok" {
			c.markDown(b)
			continue
		}
		b.queueDepth.Store(int64(h.QueueDepth))
		b.jobsDone.Store(h.JobsDone)
		c.markUp(b)
	}
}

// markDown takes a backend out of the ring (idempotent); markUp puts it
// back. Both bump the ring epoch on an actual transition, which turns
// peer-cache probing on for all later lookups.
func (c *Coordinator) markDown(b *backend) {
	if b.healthy.CompareAndSwap(true, false) {
		c.mu.Lock()
		c.rebuildRing()
		c.epoch.Add(1)
		c.mu.Unlock()
	}
}

func (c *Coordinator) markUp(b *backend) {
	if b.healthy.CompareAndSwap(false, true) {
		c.mu.Lock()
		c.rebuildRing()
		c.epoch.Add(1)
		c.mu.Unlock()
	}
}

func (c *Coordinator) rebuildRing() {
	var members []*backend
	for _, b := range c.backends {
		if b.healthy.Load() {
			members = append(members, b)
		}
	}
	c.ringPtr.Store(buildRing(members))
}

// outcome is one job's resolved result, shared between the proxy and
// batch paths.
type outcome struct {
	key     string
	backend string
	cached  bool // served from the owner's cache (probe or backend-side hit)
	peer    bool // served from a non-owner peer's cache after a rebalance
	result  *service.Result
	errMsg  string // pipeline failure reported by the backend (state "failed")
}

// requestError marks a job the cluster cannot accept (bad source, bad
// config): a 400 on the proxy path, a failed item on the batch path —
// never a reroute.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

// errNoBackends: every backend is out of the ring.
var errNoBackends = errors.New("coord: no healthy backends")

// flight deduplicates concurrent executions of the same cache key
// (identical jobs inside one batch, or racing batches): one flight
// computes, the rest wait and share the outcome — the "zero duplicate
// executions" half of the batch contract.
type flight struct {
	done chan struct{}
	out  *outcome
	err  error
}

// execute resolves one job: parse and address it, then probe the
// owner's cache, then (after any membership change) the peers' caches,
// and only then dispatch the computation to the owner — failing over
// around dead backends as it goes.
func (c *Coordinator) execute(ctx context.Context, src string, cfg *kiss.Config, timeoutMS int64) (*outcome, error) {
	prog, err := kiss.Parse(src)
	if err != nil {
		return nil, &requestError{msg: fmt.Sprintf("parsing source: %v", err)}
	}
	if cfg == nil {
		cfg = kiss.NewConfig()
	}
	key, err := service.CacheKey(prog.Source(), cfg)
	if err != nil {
		return nil, &requestError{msg: fmt.Sprintf("canonicalizing config: %v", err)}
	}

	c.flightMu.Lock()
	if f, ok := c.flights[key]; ok {
		c.flightMu.Unlock()
		select {
		case <-f.done:
			return f.out, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.flightMu.Unlock()

	f.out, f.err = c.resolve(ctx, key, src, cfg, timeoutMS)
	c.flightMu.Lock()
	delete(c.flights, key)
	c.flightMu.Unlock()
	close(f.done)
	return f.out, f.err
}

func (c *Coordinator) resolve(ctx context.Context, key, src string, cfg *kiss.Config, timeoutMS int64) (*outcome, error) {
	succ := c.ringPtr.Load().successors(key)
	if len(succ) == 0 {
		return nil, errNoBackends
	}
	owner := succ[0]

	// 1. The owner's cache: the common warm path — same key, same shard.
	if resp, ok := c.probe(ctx, owner, key); ok {
		c.ownerHits.Inc()
		return &outcome{key: key, backend: owner.name, cached: true, result: resp.Result}, nil
	}

	// 2. The peers' caches, but only once membership has ever changed:
	// before the first change no key has moved, so an owner miss is a
	// cluster miss. After a change, a key's previous owner (or the
	// successor that computed it during a failover window) may still
	// hold the result — a lookup there is cheap against re-exploring a
	// state space.
	if c.epoch.Load() > 0 {
		for _, p := range succ[1:] {
			if resp, ok := c.probe(ctx, p, key); ok {
				c.peerHits.Inc()
				return &outcome{key: key, backend: p.name, peer: true, result: resp.Result}, nil
			}
		}
	}

	// 3. Compute on the owner, failing over around dead backends. The
	// successor order is recomputed each attempt (failures shrink the
	// ring). A job computed by anyone but its home shard — the owner in
	// the full-membership ring — counts as a reroute, whether the
	// compute call failed over live or the home was already out of the
	// ring when the job arrived.
	home := c.fullRing.owner(key)
	tried := map[string]bool{}
	for {
		var b *backend
		for _, s := range c.ringPtr.Load().successors(key) {
			if !tried[s.name] {
				b = s
				break
			}
		}
		if b == nil {
			return nil, errNoBackends
		}
		tried[b.name] = true
		resp, err := b.cl.Do(ctx, service.CheckRequest{Source: src, Config: cfg, TimeoutMS: timeoutMS},
			service.WithRetry(3), service.WithRetryBackoff(50*time.Millisecond))
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			var se *service.StatusError
			if errors.As(err, &se) {
				switch {
				case se.Code == http.StatusTooManyRequests:
					// Persistent backpressure with a healthy backend:
					// surface it, don't reroute (the key's shard is here).
					return nil, err
				case se.Code < 500:
					// The job itself is unacceptable (e.g. body too big).
					return nil, &requestError{msg: se.Message}
				}
			}
			// Transport failure or 5xx (draining/dying): out of the ring,
			// next successor picks the job up.
			c.markDown(b)
			continue
		}
		if b != home {
			c.reroutes.Inc()
		}
		if resp.State == service.StateFailed {
			return &outcome{key: key, backend: b.name, errMsg: resp.Error}, nil
		}
		if resp.State != service.StateDone || resp.Result == nil {
			return nil, fmt.Errorf("coord: backend %s returned state %q for a synchronous check", b.name, resp.State)
		}
		c.computes.Inc()
		return &outcome{key: key, backend: b.name, cached: resp.Cached, result: resp.Result}, nil
	}
}

// probe asks one backend's content-addressed cache for key. A transport
// failure takes the backend out of the ring and reads as a miss.
func (c *Coordinator) probe(ctx context.Context, b *backend, key string) (*service.CheckResponse, bool) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	resp, ok, err := b.cl.CacheLookup(pctx, key)
	if err != nil {
		if ctx.Err() == nil {
			c.markDown(b)
		}
		return nil, false
	}
	return resp, ok
}

// tenantOf resolves the tenant identity: header wins over body.
func tenantOf(r *http.Request, body string) string {
	if t := r.Header.Get(service.TenantHeader); t != "" {
		return t
	}
	return body
}

// admit charges the tenant n tokens, writing the 429 itself on refusal.
func (c *Coordinator) admit(w http.ResponseWriter, tenant string, n int) bool {
	if tenant == "" {
		return true
	}
	ok, retryAfter := c.tenants.take(tenant, n)
	if !ok {
		c.rateLimited.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over admission quota; retry later", tenant))
		return false
	}
	return true
}

// handleCheck is POST /v1/check: a transparent synchronous proxy. Async
// submissions (wait=false) are refused — a polled job id would pin the
// client to one backend, which is exactly what the coordinator hides.
func (c *Coordinator) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req service.CheckRequest
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if err := kiss.CheckWireV("check request", req.V); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Wait != nil && !*req.Wait {
		writeErr(w, http.StatusBadRequest, "wait=false is not supported by the coordinator; submit to a backend directly")
		return
	}
	if req.Source == "" {
		writeErr(w, http.StatusBadRequest, "empty source")
		return
	}
	if !c.admit(w, tenantOf(r, req.Tenant), 1) {
		return
	}
	out, err := c.execute(r.Context(), req.Source, req.Config, req.TimeoutMS)
	if err != nil {
		c.writeExecErr(w, err)
		return
	}
	resp := service.CheckResponse{V: kiss.WireV, State: service.StateDone,
		Cached: out.cached || out.peer, Result: out.result}
	if out.errMsg != "" {
		resp.State, resp.Error, resp.Result = service.StateFailed, out.errMsg, nil
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) writeExecErr(w http.ResponseWriter, err error) {
	var re *requestError
	var se *service.StatusError
	switch {
	case errors.As(err, &re):
		writeErr(w, http.StatusBadRequest, re.msg)
	case errors.As(err, &se) && se.Code == http.StatusTooManyRequests:
		if se.RetryAfter != "" {
			w.Header().Set("Retry-After", se.RetryAfter)
		}
		writeErr(w, http.StatusTooManyRequests, se.Message)
	case errors.Is(err, errNoBackends):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeErr(w, http.StatusBadGateway, err.Error())
	}
}

// handleBatch is POST /v1/batch: fan the jobs out across the fleet and
// stream one BatchItem per job back as JSON Lines in completion order.
// The whole batch is admitted (or refused) up front: one token per job.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req service.BatchRequest
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if err := kiss.CheckWireV("batch request", req.V); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Jobs) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	if !c.admit(w, tenantOf(r, req.Tenant), len(req.Jobs)) {
		return
	}
	c.batches.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx := r.Context()
	sem := make(chan struct{}, c.cfg.BatchWorkers)
	items := make(chan service.BatchItem)
	var wg sync.WaitGroup
	for i, job := range req.Jobs {
		wg.Add(1)
		go func(i int, job service.BatchJob) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			item := service.BatchItem{V: kiss.WireV, Index: i, State: service.StateDone}
			out, err := c.execute(ctx, job.Source, job.Config, job.TimeoutMS)
			switch {
			case err != nil:
				if ctx.Err() != nil {
					return // client gone; nobody is reading
				}
				item.State, item.Error = service.StateFailed, err.Error()
			case out.errMsg != "":
				item.State, item.Error = service.StateFailed, out.errMsg
				item.Key, item.Backend = out.key, out.backend
			default:
				item.Key, item.Backend = out.key, out.backend
				item.Cached, item.PeerCache = out.cached, out.peer
				item.Result = out.result
			}
			select {
			case items <- item:
			case <-ctx.Done():
			}
		}(i, job)
	}
	go func() {
		wg.Wait()
		close(items)
	}()

	enc := json.NewEncoder(w)
	for item := range items {
		if err := enc.Encode(item); err != nil {
			return // client went away; workers drain via ctx
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// BackendHealth is one backend's row in the coordinator /healthz body.
type BackendHealth struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	QueueDepth int64  `json:"queue_depth"`
	JobsDone   int64  `json:"jobs_done"`
}

// Health is the GET /healthz body.
type Health struct {
	Status    string          `json:"status"` // "ok" while >=1 backend is healthy
	Version   string          `json:"version"`
	RingEpoch int64           `json:"ring_epoch"`
	Backends  []BackendHealth `json:"backends"`
}

// Health snapshots the cluster state.
func (c *Coordinator) Health() Health {
	h := Health{Status: "degraded", Version: c.cfg.Version, RingEpoch: c.epoch.Load()}
	for _, b := range c.backends {
		healthy := b.healthy.Load()
		if healthy {
			h.Status = "ok"
		}
		h.Backends = append(h.Backends, BackendHealth{
			Name: b.name, URL: b.url, Healthy: healthy,
			QueueDepth: b.queueDepth.Load(), JobsDone: b.jobsDone.Load(),
		})
	}
	return h
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.reg.WriteText(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: msg})
}
