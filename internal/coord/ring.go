package coord

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodes is the number of ring points per backend. More points smooth
// the key distribution while the ring stays small enough to rebuild on
// every membership change.
const vnodes = 128

// ring is an immutable consistent-hash ring over the healthy backends.
// Keys (service.CacheKey strings) map to the first point clockwise from
// their hash, so each backend's LRU cache becomes a shard of one
// distributed cache and a membership change moves only the keys owned
// by the departed (or arrived) member. The coordinator swaps in a fresh
// ring on every change rather than mutating in place — readers route
// lock-free off whatever ring they loaded.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	b    *backend
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// buildRing lays the members' virtual nodes on the ring. An empty
// member list yields an empty ring (owner returns nil).
func buildRing(members []*backend) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, b := range members {
		// Chain the vnode hashes (each point hashes the previous point's
		// hex) — hashing short "name#i" labels directly leaves fnv64a
		// points clumped and the shards badly skewed.
		h := hash64(b.name)
		for i := 0; i < vnodes; i++ {
			h = hash64(strconv.FormatUint(h, 16) + "#" + b.name)
			r.points = append(r.points, ringPoint{hash: h, b: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// owner returns the backend owning key, or nil on an empty ring.
func (r *ring) owner(key string) *backend {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].b
}

// successors returns the distinct backends in ring order starting at
// key's owner — the failover order: if the owner is unreachable the
// coordinator reroutes to the next member, and so on.
func (r *ring) successors(key string) []*backend {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[*backend]bool{}
	var out []*backend
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.b] {
			seen[p.b] = true
			out = append(out, p.b)
		}
	}
	return out
}
