// Package frontier provides the depth-bucketed, disk-spilling frontier
// queue shared by the breadth-first search engines (seqcheck and concheck,
// both the per-statement level queues and the macro-step bucket queues).
//
// The queue holds frames in per-depth buckets. Past a configurable in-RAM
// byte budget it serializes the largest bucket's frames (order key + state
// snapshot payload, both supplied by an engine codec) to an on-disk run
// and frees the RAM copies; a bucket may accumulate several runs. Draining
// a bucket streams its frames back in the engine's processing order:
//
//   - Ordered buckets (the macro engines' micro-depth buckets) sort the
//     resident frames by key and k-way merge them with the runs, each of
//     which was sorted before it was written. Keys encode the padded
//     successor-index path such that bytes.Compare reproduces the
//     engine's path order, so the merged stream is byte-identical to
//     sorting the whole bucket in RAM — which is what keeps shortest
//     traces and first-error-wins bit-identical at every worker count
//     and every budget.
//
//   - FIFO buckets (the per-statement engines' level queues) preserve
//     arrival order: a run holds a contiguous arrival-order prefix of the
//     bucket (a spill always flushes the whole resident portion), so runs
//     concatenated in creation order followed by the resident tail *is*
//     arrival order.
//
// Spilling is strictly an eviction policy: it never reorders, drops, or
// duplicates frames, so a search with spilling enabled returns the same
// Result as one with the budget disabled. Spill write failures (disk
// full, unwritable dir) degrade the queue to pure in-RAM operation — the
// search keeps its answer and loses only the memory bound. Read failures
// on a successfully written run would lose frames silently, so they
// panic instead.
package frontier

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Codec adapts the queue to one engine's frame type. Key and Encode
// append to buf and return the extended slice (buf may be nil).
type Codec[T any] struct {
	// Key appends the frame's within-bucket order key. In Ordered mode
	// keys must be unique within a bucket and bytes.Compare on them must
	// reproduce the engine's processing order; in FIFO mode the key is
	// not compared but still spilled and handed back (the engines store
	// the padded successor-index path here, which trace reconstruction
	// of a restored frame needs).
	Key func(item T, buf []byte) []byte
	// Encode appends the frame's payload (everything except the key).
	Encode func(item T, buf []byte) []byte
	// Decode rebuilds a frame of bucket depth `depth` from its key and
	// payload. The byte slices are only valid during the call.
	Decode func(key, payload []byte, depth int) T
	// Size estimates the frame's resident bytes for budget accounting.
	Size func(item T) int
}

// Config configures a Queue.
type Config struct {
	// BudgetBytes is the in-RAM budget; pushing past it spills. <= 0
	// disables spilling entirely: the queue is then a plain in-memory
	// bucket map and never calls Key/Encode/Size.
	BudgetBytes int64
	// Dir is where spill runs are created (a private temp directory
	// underneath it); empty selects the system temp directory.
	Dir string
	// Ordered selects key-ordered draining (macro bucket queues); false
	// selects arrival-order draining (per-statement level queues).
	Ordered bool
}

// Stats are the queue's cumulative spill metrics. All fields are
// deterministic for a fixed config: spill decisions depend only on the
// push sequence and the codec's size estimates, both of which the
// engines' single-threaded commit loops make identical at every worker
// count.
type Stats struct {
	SpilledBytes  int64 // run bytes written
	SpilledFrames int64 // frames serialized to runs
	Runs          int64 // runs written (merge outputs included)
	MergePasses   int64 // pre-merge passes run to respect the fan-in cap
	PeakRAMBytes  int64 // resident-byte high-water mark
}

// maxFanIn caps how many runs a drain merges at once; buckets that
// accumulated more are pre-merged (oldest first) until they fit.
const maxFanIn = 16

// runWriterBuf sizes the bufio layer of run writers and readers.
const runWriterBuf = 256 << 10

type run struct {
	f      *os.File
	frames int
}

type bucket[T any] struct {
	items []T
	ram   int64
	runs  []*run
	n     int // total frames, resident + spilled
}

// Queue is a depth-bucketed frontier with optional disk spilling. Not
// safe for concurrent use: the engines push only from their
// single-threaded commit loops.
type Queue[T any] struct {
	cfg    Config
	codec  Codec[T]
	bks    map[int]*bucket[T]
	n      int
	ram    int64
	dir    string // private spill dir, created on first spill
	st     Stats
	broken bool // a spill write failed: stay in RAM from now on
	encBuf []byte
	// drained buckets that own run files; Close closes them too so an
	// engine returning early mid-stream never leaks file handles.
	drained []*Bucket[T]
}

// New returns an empty queue.
func New[T any](cfg Config, codec Codec[T]) *Queue[T] {
	return &Queue[T]{cfg: cfg, codec: codec, bks: map[int]*bucket[T]{}}
}

// Len returns the number of queued frames (drained buckets excluded).
func (q *Queue[T]) Len() int { return q.n }

// MinDepth returns the shallowest non-empty bucket's depth.
func (q *Queue[T]) MinDepth() (int, bool) {
	depth, ok := 0, false
	for d := range q.bks {
		if !ok || d < depth {
			depth, ok = d, true
		}
	}
	return depth, ok
}

// Stats returns the cumulative spill metrics.
func (q *Queue[T]) Stats() Stats { return q.st }

// Push appends a frame to the bucket at depth.
func (q *Queue[T]) Push(depth int, item T) {
	b := q.bks[depth]
	if b == nil {
		b = &bucket[T]{}
		q.bks[depth] = b
	}
	b.items = append(b.items, item)
	b.n++
	q.n++
	if q.cfg.BudgetBytes <= 0 || q.broken {
		return
	}
	sz := int64(q.codec.Size(item))
	b.ram += sz
	q.ram += sz
	if q.ram > q.st.PeakRAMBytes {
		q.st.PeakRAMBytes = q.ram
	}
	for q.ram > q.cfg.BudgetBytes && !q.broken {
		v := q.victim()
		if v == nil {
			return
		}
		q.spill(v)
	}
}

// victim picks the bucket to spill: the one holding the most resident
// bytes (deepest on ties — deeper buckets are drained last).
func (q *Queue[T]) victim() *bucket[T] {
	var v *bucket[T]
	vd := 0
	for d, b := range q.bks {
		if len(b.items) == 0 {
			continue
		}
		if v == nil || b.ram > v.ram || (b.ram == v.ram && d > vd) {
			v, vd = b, d
		}
	}
	return v
}

// spill writes b's resident frames as one run and frees them. On a write
// failure the resident frames stay in RAM, the partial run file is
// discarded, and the queue degrades to in-RAM operation.
func (q *Queue[T]) spill(b *bucket[T]) {
	if q.dir == "" {
		dir, err := os.MkdirTemp(q.cfg.Dir, "kiss-frontier-")
		if err != nil {
			q.broken = true
			return
		}
		q.dir = dir
	}
	keys := make([][]byte, len(b.items))
	for i := range b.items {
		keys[i] = q.codec.Key(b.items[i], nil)
	}
	if q.cfg.Ordered {
		sort.Sort(&spillSort[T]{items: b.items, keys: keys})
	}
	f, err := os.CreateTemp(q.dir, "run-")
	if err != nil {
		q.broken = true
		return
	}
	w := bufio.NewWriterSize(f, runWriterBuf)
	var werr error
	var hdr [2 * binary.MaxVarintLen64]byte
	written := int64(0)
	for i := range b.items {
		q.encBuf = q.codec.Encode(b.items[i], q.encBuf[:0])
		n := binary.PutUvarint(hdr[:], uint64(len(keys[i])))
		n += binary.PutUvarint(hdr[n:], uint64(len(q.encBuf)))
		if _, werr = w.Write(hdr[:n]); werr != nil {
			break
		}
		if _, werr = w.Write(keys[i]); werr != nil {
			break
		}
		if _, werr = w.Write(q.encBuf); werr != nil {
			break
		}
		written += int64(n + len(keys[i]) + len(q.encBuf))
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr != nil {
		f.Close()
		os.Remove(f.Name())
		q.broken = true
		return
	}
	b.runs = append(b.runs, &run{f: f, frames: len(b.items)})
	q.st.SpilledBytes += written
	q.st.SpilledFrames += int64(len(b.items))
	q.st.Runs++
	q.ram -= b.ram
	b.ram = 0
	clear(b.items)
	b.items = b.items[:0]
}

// Drain removes and returns the bucket at depth as a streaming cursor.
// The bucket's frames stop counting toward Len and the RAM budget; the
// engine processes them chunk by chunk while pushing successors back
// into the queue. Draining an absent depth returns an empty bucket.
func (q *Queue[T]) Drain(depth int) *Bucket[T] {
	b := q.bks[depth]
	if b == nil {
		return &Bucket[T]{}
	}
	delete(q.bks, depth)
	q.n -= b.n
	q.ram -= b.ram
	out := &Bucket[T]{q: q, depth: depth, items: b.items, n: b.n, runs: b.runs}
	if q.cfg.Ordered {
		out.sortResident()
	}
	if len(b.runs) == 0 {
		return out
	}
	// Respect the merge fan-in cap: pre-merge the oldest runs into one
	// until at most maxFanIn remain. FIFO runs are concatenated (they
	// are disjoint arrival-order segments, oldest first); ordered runs
	// are k-way merged.
	for len(out.runs) > maxFanIn {
		merged := q.mergeRuns(depth, out.runs[:maxFanIn])
		out.runs = append([]*run{merged}, out.runs[maxFanIn:]...)
		q.st.MergePasses++
	}
	out.open()
	q.drained = append(q.drained, out)
	return out
}

// mergeRuns merges rs into one new run file and deletes the inputs.
func (q *Queue[T]) mergeRuns(depth int, rs []*run) *run {
	f, err := os.CreateTemp(q.dir, "merge-")
	if err != nil {
		panic(fmt.Sprintf("frontier: cannot create merge run: %v", err))
	}
	w := bufio.NewWriterSize(f, runWriterBuf)
	frames := 0
	written := int64(0)
	if !q.cfg.Ordered {
		// Arrival order: straight concatenation, oldest run first.
		for _, r := range rs {
			if _, err := r.f.Seek(0, io.SeekStart); err != nil {
				panic(fmt.Sprintf("frontier: merge seek failed: %v", err))
			}
			n, err := io.Copy(w, bufio.NewReaderSize(r.f, runWriterBuf))
			if err != nil {
				panic(fmt.Sprintf("frontier: merge copy failed: %v", err))
			}
			written += n
			frames += r.frames
		}
	} else {
		readers := make([]*runReader, len(rs))
		for i, r := range rs {
			readers[i] = newRunReader(r)
		}
		var hdr [2 * binary.MaxVarintLen64]byte
		for {
			min := -1
			for i, rd := range readers {
				if rd == nil {
					continue
				}
				if min < 0 || bytes.Compare(rd.key, readers[min].key) < 0 {
					min = i
				}
			}
			if min < 0 {
				break
			}
			rd := readers[min]
			n := binary.PutUvarint(hdr[:], uint64(len(rd.key)))
			n += binary.PutUvarint(hdr[n:], uint64(len(rd.payload)))
			w.Write(hdr[:n])
			w.Write(rd.key)
			if _, err := w.Write(rd.payload); err != nil {
				panic(fmt.Sprintf("frontier: merge write failed: %v", err))
			}
			written += int64(n + len(rd.key) + len(rd.payload))
			frames++
			if !rd.next() {
				readers[min] = nil
			}
		}
	}
	if err := w.Flush(); err != nil {
		panic(fmt.Sprintf("frontier: merge flush failed: %v", err))
	}
	for _, r := range rs {
		r.f.Close()
		os.Remove(r.f.Name())
	}
	q.st.SpilledBytes += written
	q.st.Runs++
	return &run{f: f, frames: frames}
}

// Close releases the spill directory and every run in it. Buckets not yet
// drained are discarded; drained buckets still streaming are closed.
func (q *Queue[T]) Close() {
	for _, b := range q.bks {
		for _, r := range b.runs {
			r.f.Close()
		}
	}
	for _, b := range q.drained {
		b.Close()
	}
	q.drained = nil
	q.bks = map[int]*bucket[T]{}
	q.n, q.ram = 0, 0
	if q.dir != "" {
		os.RemoveAll(q.dir)
		q.dir = ""
	}
}

// spillSort sorts a bucket's resident frames and their keys together.
type spillSort[T any] struct {
	items []T
	keys  [][]byte
}

func (s *spillSort[T]) Len() int           { return len(s.items) }
func (s *spillSort[T]) Less(i, j int) bool { return bytes.Compare(s.keys[i], s.keys[j]) < 0 }
func (s *spillSort[T]) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// runReader streams one run's records; key/payload are valid until the
// next call to next.
type runReader struct {
	r       *bufio.Reader
	f       *os.File
	left    int
	key     []byte
	payload []byte
}

func newRunReader(r *run) *runReader {
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		panic(fmt.Sprintf("frontier: run seek failed: %v", err))
	}
	rd := &runReader{r: bufio.NewReaderSize(r.f, runWriterBuf), f: r.f, left: r.frames}
	if !rd.next() {
		return nil
	}
	return rd
}

// next advances to the next record, reporting false at end of run.
func (rd *runReader) next() bool {
	if rd.left == 0 {
		return false
	}
	rd.left--
	kn, err := binary.ReadUvarint(rd.r)
	if err != nil {
		panic(fmt.Sprintf("frontier: corrupt spill run: %v", err))
	}
	pn, err := binary.ReadUvarint(rd.r)
	if err != nil {
		panic(fmt.Sprintf("frontier: corrupt spill run: %v", err))
	}
	rd.key = grow(rd.key, int(kn))
	rd.payload = grow(rd.payload, int(pn))
	if _, err := io.ReadFull(rd.r, rd.key); err != nil {
		panic(fmt.Sprintf("frontier: corrupt spill run: %v", err))
	}
	if _, err := io.ReadFull(rd.r, rd.payload); err != nil {
		panic(fmt.Sprintf("frontier: corrupt spill run: %v", err))
	}
	return true
}

func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// Bucket streams one drained bucket's frames in processing order.
type Bucket[T any] struct {
	q       *Queue[T]
	depth   int
	items   []T
	keys    [][]byte // resident keys, Ordered mode only
	pos     int
	n       int
	runs    []*run
	readers []*runReader // Ordered: one per run; FIFO: current run only
	runIdx  int          // FIFO: next run to open
	out     []T
	outKeys [][]byte
}

// Len returns the bucket's total frame count (resident + spilled).
func (b *Bucket[T]) Len() int { return b.n }

// sortResident computes the resident frames' keys and, in Ordered mode,
// sorts frames and keys together.
func (b *Bucket[T]) sortResident() {
	if b.q == nil || len(b.items) == 0 {
		return
	}
	b.keys = make([][]byte, len(b.items))
	for i := range b.items {
		b.keys[i] = b.q.codec.Key(b.items[i], nil)
	}
	if b.q.cfg.Ordered {
		sort.Sort(&spillSort[T]{items: b.items, keys: b.keys})
	}
}

// open prepares the run readers for streaming.
func (b *Bucket[T]) open() {
	if b.q.cfg.Ordered {
		for _, r := range b.runs {
			if rd := newRunReader(r); rd != nil {
				b.readers = append(b.readers, rd)
			}
		}
		return
	}
	// FIFO: runs are consumed one at a time, oldest first; the resident
	// tail follows the last run.
	b.runIdx = 0
	b.advanceFIFO()
}

func (b *Bucket[T]) advanceFIFO() {
	b.readers = b.readers[:0]
	for b.runIdx < len(b.runs) {
		r := b.runs[b.runIdx]
		b.runIdx++
		if rd := newRunReader(r); rd != nil {
			b.readers = append(b.readers, rd)
			return
		}
	}
}

// Next returns the next chunk of up to max frames in processing order,
// along with their order keys (Ordered buckets only; nil otherwise).
// Both slices are reused by the following Next call; the engines copy
// anything they retain. A fully resident bucket is returned as a single
// chunk regardless of max — with spilling disabled this makes the
// engines' chunk loop degenerate to exactly one whole-bucket pass.
func (b *Bucket[T]) Next(max int) ([]T, [][]byte) {
	if len(b.runs) == 0 {
		if b.pos > 0 || len(b.items) == 0 {
			return nil, nil
		}
		b.pos = len(b.items)
		return b.items, b.keys
	}
	b.out = b.out[:0]
	b.outKeys = b.outKeys[:0]
	if b.q.cfg.Ordered {
		for len(b.out) < max {
			// Pick the smallest key among the run heads and the resident
			// cursor. Keys are unique, so ties cannot happen.
			min := -1
			for i, rd := range b.readers {
				if rd == nil {
					continue
				}
				if min < 0 || bytes.Compare(rd.key, b.readers[min].key) < 0 {
					min = i
				}
			}
			if b.pos < len(b.items) &&
				(min < 0 || bytes.Compare(b.keys[b.pos], b.readers[min].key) < 0) {
				b.out = append(b.out, b.items[b.pos])
				b.outKeys = append(b.outKeys, b.keys[b.pos])
				b.pos++
				continue
			}
			if min < 0 {
				break
			}
			rd := b.readers[min]
			b.out = append(b.out, b.q.codec.Decode(rd.key, rd.payload, b.depth))
			b.outKeys = append(b.outKeys, append([]byte(nil), rd.key...))
			if !rd.next() {
				b.readers[min] = nil
			}
		}
		return b.out, b.outKeys
	}
	// FIFO: drain runs in creation order, then the resident tail.
	for len(b.out) < max {
		if len(b.readers) > 0 && b.readers[0] != nil {
			rd := b.readers[0]
			b.out = append(b.out, b.q.codec.Decode(rd.key, rd.payload, b.depth))
			if !rd.next() {
				b.advanceFIFO()
			}
			continue
		}
		if b.pos >= len(b.items) {
			break
		}
		b.out = append(b.out, b.items[b.pos])
		b.pos++
	}
	return b.out, nil
}

// Close deletes the bucket's runs.
func (b *Bucket[T]) Close() {
	for _, r := range b.runs {
		r.f.Close()
		os.Remove(r.f.Name())
	}
	b.runs = nil
	b.readers = nil
	b.items = nil
	b.keys = nil
	b.out = nil
	b.outKeys = nil
}
