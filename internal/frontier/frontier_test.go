package frontier

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// rec is a synthetic frame: an order key plus a payload blob.
type rec struct {
	key     []byte
	payload []byte
}

func recCodec() Codec[rec] {
	return Codec[rec]{
		Key:    func(r rec, buf []byte) []byte { return append(buf, r.key...) },
		Encode: func(r rec, buf []byte) []byte { return append(buf, r.payload...) },
		Decode: func(key, payload []byte, depth int) rec {
			return rec{key: append([]byte(nil), key...), payload: append([]byte(nil), payload...)}
		},
		Size: func(r rec) int { return len(r.key) + len(r.payload) + 48 },
	}
}

// genRecs builds n records with unique keys in random push order.
func genRecs(rng *rand.Rand, n int) []rec {
	out := make([]rec, n)
	for i := range out {
		var key [12]byte
		binary.BigEndian.PutUint32(key[:4], uint32(rng.Intn(1<<20)))
		binary.BigEndian.PutUint64(key[4:], uint64(i)) // uniqueness
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		out[i] = rec{key: key[:], payload: payload}
	}
	return out
}

func drainAll(t *testing.T, q *Queue[rec], depth, chunk int) []rec {
	t.Helper()
	b := q.Drain(depth)
	var got []rec
	for {
		items, keys := b.Next(chunk)
		if len(items) == 0 {
			break
		}
		for i, it := range items {
			if keys != nil && !bytes.Equal(keys[i], it.key) {
				t.Fatalf("returned key %x does not match item key %x", keys[i], it.key)
			}
			got = append(got, rec{
				key:     append([]byte(nil), it.key...),
				payload: append([]byte(nil), it.payload...),
			})
		}
	}
	b.Close()
	return got
}

// TestOrderedSpillRoundTrip: an ordered bucket drained through spilled
// runs yields the byte-identical sequence the pure in-RAM queue yields,
// across a range of budgets (none, tiny, partial) and chunk sizes.
func TestOrderedSpillRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := genRecs(rng, 1200)

	ram := New(Config{Ordered: true}, recCodec())
	for _, r := range recs {
		ram.Push(5, r)
	}
	want := drainAll(t, ram, 5, 1<<30)
	ram.Close()

	for _, budget := range []int64{1, 1 << 10, 32 << 10, 1 << 20} {
		for _, chunk := range []int{1, 7, 256, 1 << 30} {
			q := New(Config{Ordered: true, BudgetBytes: budget, Dir: t.TempDir()}, recCodec())
			for _, r := range recs {
				q.Push(5, r)
			}
			got := drainAll(t, q, 5, chunk)
			if len(got) != len(want) {
				t.Fatalf("budget %d chunk %d: got %d records, want %d", budget, chunk, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i].key, want[i].key) || !bytes.Equal(got[i].payload, want[i].payload) {
					t.Fatalf("budget %d chunk %d: record %d differs", budget, chunk, i)
				}
			}
			st := q.Stats()
			if budget < 32<<10 && st.SpilledFrames == 0 {
				t.Fatalf("budget %d: expected spilling, got none", budget)
			}
			q.Close()
		}
	}
}

// TestFIFOSpillRoundTrip: a FIFO bucket preserves arrival order exactly
// through spills.
func TestFIFOSpillRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	recs := genRecs(rng, 1000)

	for _, budget := range []int64{0, 1, 4 << 10, 64 << 10} {
		q := New(Config{Ordered: false, BudgetBytes: budget, Dir: t.TempDir()}, recCodec())
		for _, r := range recs {
			q.Push(0, r)
		}
		got := drainAll(t, q, 0, 97)
		if len(got) != len(recs) {
			t.Fatalf("budget %d: got %d records, want %d", budget, len(got), len(recs))
		}
		for i := range got {
			if !bytes.Equal(got[i].key, recs[i].key) || !bytes.Equal(got[i].payload, recs[i].payload) {
				t.Fatalf("budget %d: record %d out of arrival order", budget, i)
			}
		}
		q.Close()
	}
}

// TestMergeFanIn: a bucket with more runs than the fan-in cap pre-merges
// and still drains in exact order.
func TestMergeFanIn(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	recs := genRecs(rng, 1500)
	// A 1-byte budget spills on nearly every push, producing far more
	// runs than maxFanIn.
	q := New(Config{Ordered: true, BudgetBytes: 1, Dir: t.TempDir()}, recCodec())
	for _, r := range recs {
		q.Push(2, r)
	}
	if runs := q.Stats().Runs; runs <= maxFanIn {
		t.Skipf("only %d runs; cannot exercise fan-in", runs)
	}
	got := drainAll(t, q, 2, 33)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1].key, got[i].key) >= 0 {
			t.Fatalf("record %d not in strictly ascending key order", i)
		}
	}
	if q.Stats().MergePasses == 0 {
		t.Fatal("expected at least one merge pass")
	}
	q.Close()
}

// TestMultiBucketAccounting: Len/MinDepth track pushes and drains across
// buckets, spilled or not.
func TestMultiBucketAccounting(t *testing.T) {
	q := New(Config{Ordered: true, BudgetBytes: 256, Dir: t.TempDir()}, recCodec())
	rng := rand.New(rand.NewSource(3))
	perDepth := map[int][]rec{}
	for d := 3; d <= 7; d++ {
		rs := genRecs(rng, 50*d)
		perDepth[d] = rs
		for _, r := range rs {
			q.Push(d, r)
		}
	}
	total := 0
	for _, rs := range perDepth {
		total += len(rs)
	}
	if q.Len() != total {
		t.Fatalf("Len = %d, want %d", q.Len(), total)
	}
	for d := 3; d <= 7; d++ {
		md, ok := q.MinDepth()
		if !ok || md != d {
			t.Fatalf("MinDepth = %d,%v, want %d", md, ok, d)
		}
		got := drainAll(t, q, d, 11)
		if len(got) != len(perDepth[d]) {
			t.Fatalf("depth %d: got %d records, want %d", d, len(got), len(perDepth[d]))
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining everything", q.Len())
	}
	if _, ok := q.MinDepth(); ok {
		t.Fatal("MinDepth reports a bucket after draining everything")
	}
	q.Close()
}

// TestBrokenSpillDegradesToRAM: an unwritable spill dir must not lose
// frames — the queue keeps everything resident.
func TestBrokenSpillDegradesToRAM(t *testing.T) {
	q := New(Config{Ordered: true, BudgetBytes: 1, Dir: fmt.Sprintf("%s/no/such/dir", t.TempDir())}, recCodec())
	rng := rand.New(rand.NewSource(9))
	recs := genRecs(rng, 500)
	for _, r := range recs {
		q.Push(1, r)
	}
	if got := drainAll(t, q, 1, 64); len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	if q.Stats().SpilledFrames != 0 {
		t.Fatal("spilled despite unwritable dir")
	}
	q.Close()
}
