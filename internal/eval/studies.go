package eval

import (
	"fmt"
	"strings"

	kiss "repro"
)

// BlowupRow compares the interleaving-exploring baseline with the KISS
// pipeline on the same N-thread program.
type BlowupRow struct {
	Threads        int
	ConcheckStates int
	KissStates     int
}

// blowupProgram builds a concurrent program with n worker threads, each
// performing a read-modify-write on a shared counter — the classic
// workload on which the set of reachable control states "grows
// exponentially with the number of threads" (Section 1).
func blowupProgram(n int) string {
	var b strings.Builder
	b.WriteString("var x;\n")
	b.WriteString("func worker() {\n  var t;\n  t = x;\n  x = t + 1;\n}\n")
	b.WriteString("func main() {\n  x = 0;\n")
	for i := 0; i < n; i++ {
		b.WriteString("  async worker();\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// RunBlowup quantifies the paper's motivating claim: explicit interleaving
// exploration scales exponentially in the thread count, while the KISS
// sequential analysis of the same program (with ts bound = thread count,
// enough to defer every fork) stays polynomial.
func RunBlowup(maxThreads int) ([]BlowupRow, error) {
	var rows []BlowupRow
	for n := 1; n <= maxThreads; n++ {
		src := blowupProgram(n)

		prog, err := kiss.Parse(src)
		if err != nil {
			return nil, err
		}
		con, err := kiss.Explore(prog)
		if err != nil {
			return nil, err
		}

		prog2, err := kiss.Parse(src)
		if err != nil {
			return nil, err
		}
		seq, err := kiss.Check(prog2, kiss.WithMaxTS(n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, BlowupRow{Threads: n, ConcheckStates: con.States, KissStates: seq.States})
	}
	return rows, nil
}

// FormatBlowup renders the study.
func FormatBlowup(rows []BlowupRow) string {
	var b strings.Builder
	b.WriteString("Interleaving blowup study: states explored, N-thread shared counter\n")
	fmt.Fprintf(&b, "%8s %18s %14s %8s\n", "Threads", "Interleaving MC", "KISS (seq)", "Ratio")
	for _, r := range rows {
		ratio := float64(r.ConcheckStates) / float64(max(1, r.KissStates))
		fmt.Fprintf(&b, "%8d %18d %14d %8.2f\n", r.Threads, r.ConcheckStates, r.KissStates, ratio)
	}
	return b.String()
}

// CoverageRow reports whether a bug requiring k deferred threads is found
// at a given ts bound, and at what cost.
type CoverageRow struct {
	BugDepth int // number of deferred threads the error trace needs
	MaxTS    int
	Found    bool
	States   int
}

// coverageProgram builds a program whose single assertion violation
// requires depth worker threads to all be deferred past main's final
// assignment: each worker blocks until y == 1 and the violation needs all
// depth increments. With ts bound < depth, some fork is forced to run
// inline (ts full), where it either blocks before y = 1 (path pruned) or
// is terminated by RAISE without contributing — so the bug is missed,
// exactly the coverage/cost trade-off of Section 4.
func coverageProgram(depth int) string {
	var b strings.Builder
	b.WriteString("var x;\nvar y;\n")
	fmt.Fprintf(&b, "func f() {\n  assume(y == 1);\n  x = x + 1;\n  assert(x < %d);\n}\n", depth)
	b.WriteString("func main() {\n  x = 0;\n  y = 0;\n")
	for i := 0; i < depth; i++ {
		b.WriteString("  async f();\n")
	}
	b.WriteString("  y = 1;\n}\n")
	return b.String()
}

// RunCoverage sweeps the ts bound against bugs of increasing depth,
// producing the tuning-knob ablation: "Increasing the size of ts increases
// the number of simulated behaviors at the cost of increasing the global
// state space of the translated sequential program" (Section 2).
func RunCoverage(maxDepth, maxTS int) ([]CoverageRow, error) {
	var rows []CoverageRow
	for depth := 1; depth <= maxDepth; depth++ {
		src := coverageProgram(depth)
		for ts := 0; ts <= maxTS; ts++ {
			prog, err := kiss.Parse(src)
			if err != nil {
				return nil, err
			}
			res, err := kiss.Check(prog, kiss.WithMaxTS(ts))
			if err != nil {
				return nil, err
			}
			rows = append(rows, CoverageRow{
				BugDepth: depth,
				MaxTS:    ts,
				Found:    res.Verdict == kiss.Error,
				States:   res.States,
			})
		}
	}
	return rows, nil
}

// FormatCoverage renders the study as a depth x ts grid.
func FormatCoverage(rows []CoverageRow) string {
	var b strings.Builder
	b.WriteString("ts coverage/cost study: bug of depth k found at ts bound MAX? (cell: verdict/states)\n")
	maxTS := 0
	maxDepth := 0
	for _, r := range rows {
		if r.MaxTS > maxTS {
			maxTS = r.MaxTS
		}
		if r.BugDepth > maxDepth {
			maxDepth = r.BugDepth
		}
	}
	fmt.Fprintf(&b, "%8s", "depth\\MAX")
	for ts := 0; ts <= maxTS; ts++ {
		fmt.Fprintf(&b, " %12d", ts)
	}
	b.WriteString("\n")
	grid := map[[2]int]CoverageRow{}
	for _, r := range rows {
		grid[[2]int{r.BugDepth, r.MaxTS}] = r
	}
	for d := 1; d <= maxDepth; d++ {
		fmt.Fprintf(&b, "%8d", d)
		for ts := 0; ts <= maxTS; ts++ {
			r := grid[[2]int{d, ts}]
			mark := "miss"
			if r.Found {
				mark = "FOUND"
			}
			fmt.Fprintf(&b, " %6s/%-5d", mark, r.States)
		}
		b.WriteString("\n")
	}
	return b.String()
}
