package eval

import "testing"

// TestContextBoundStudy: KISS at ts=1 finds exactly the errors reachable
// within 2 context switches on 2-thread programs; error counts are
// monotone in the bound and the unbounded column dominates.
func TestContextBoundStudy(t *testing.T) {
	s, err := RunContextBound(80, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatContextBound(s))
	for i := 1; i < len(s.Rows); i++ {
		if s.Rows[i].Errors < s.Rows[i-1].Errors {
			t.Errorf("error counts not monotone in the context bound: %v", s.Rows)
		}
	}
	var cb2 int
	for _, r := range s.Rows {
		if r.Bound == 2 {
			cb2 = r.Errors
		}
	}
	if s.KissErrors != cb2 {
		t.Errorf("KISS ts=1 found %d errors, CB=2 found %d; they must coincide on 2-thread programs",
			s.KissErrors, cb2)
	}
	unbounded := s.Rows[len(s.Rows)-1].Errors
	if unbounded < cb2 {
		t.Errorf("unbounded (%d) below CB=2 (%d)", unbounded, cb2)
	}
	if cb2 == 0 {
		t.Error("no errors found at CB=2; study is vacuous")
	}
}
