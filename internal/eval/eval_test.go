package eval

import (
	"testing"

	"repro/internal/drivers"
)

// TestSpecsMatchPaper validates the corpus calibration statically: the
// planted field patterns of every driver imply exactly the verdict counts
// of Tables 1 and 2.
func TestSpecsMatchPaper(t *testing.T) {
	specs := drivers.Specs()
	if len(specs) != 18 {
		t.Fatalf("corpus has %d drivers, want 18", len(specs))
	}
	totFields, totRaces, totNoRace, totTimeout, totRefined := 0, 0, 0, 0, 0
	for _, s := range specs {
		if len(s.Fields) != s.PaperFields {
			t.Errorf("%s: %d fields planted, paper has %d", s.Name, len(s.Fields), s.PaperFields)
		}
		races, noRace, timeouts, refined := 0, 0, 0, 0
		for _, f := range s.Fields {
			switch {
			case f.Pattern.RacesPermissive():
				races++
			case f.Pattern.TimesOut():
				timeouts++
			default:
				noRace++
			}
			if f.Pattern.RacesPermissive() && f.Pattern.RacesRefined(s.IoctlSerialized) {
				refined++
			}
		}
		if races != s.PaperRaces {
			t.Errorf("%s: %d racy fields planted, paper reports %d", s.Name, races, s.PaperRaces)
		}
		if noRace != s.PaperNoRace {
			t.Errorf("%s: %d no-race fields planted, paper reports %d", s.Name, noRace, s.PaperNoRace)
		}
		if timeouts != s.Timeouts() {
			t.Errorf("%s: %d hard fields planted, paper implies %d", s.Name, timeouts, s.Timeouts())
		}
		if s.PaperRacesRefined >= 0 && refined != s.PaperRacesRefined {
			t.Errorf("%s: %d refined-racy fields planted, paper reports %d", s.Name, refined, s.PaperRacesRefined)
		}
		totFields += len(s.Fields)
		totRaces += races
		totNoRace += noRace
		totTimeout += timeouts
		totRefined += refined
	}
	if totFields != 481 || totRaces != 71 || totNoRace != 346 || totTimeout != 64 {
		t.Errorf("corpus totals %d/%d/%d/%d, paper totals 481/71/346/64",
			totFields, totRaces, totNoRace, totTimeout)
	}
	if totRefined != 30 {
		t.Errorf("corpus refined total %d, paper total 30", totRefined)
	}
}

// TestCorpusModelsWellFormed generates every driver model and checks each
// per-field harness parses and passes semantic checking (via kiss.Parse in
// checkField's path), without running the full model checking.
func TestCorpusModelsWellFormed(t *testing.T) {
	for _, spec := range drivers.Specs() {
		model := drivers.Generate(spec)
		if model.LOC < 100 {
			t.Errorf("%s: model suspiciously small (%d LOC)", spec.Name, model.LOC)
		}
		for _, f := range spec.Fields {
			accessors := model.FieldRoutines[f.Name]
			if f.Pattern != drivers.FieldLock && len(accessors) == 0 {
				t.Errorf("%s.%s (%v): no accessor routines planted", spec.Name, f.Name, f.Pattern)
			}
		}
	}
}

// TestTable1Reproduction runs the full permissive-harness corpus and
// requires the per-driver verdict counts to equal Table 1 exactly.
// Skipped in -short mode (the full run takes over a minute).
func TestTable1Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run; skipped in -short mode")
	}
	results, err := RunCorpus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatTable1(results))
	for _, m := range CompareTable1(results) {
		t.Errorf("table 1 mismatch: %s", m)
	}
}

// TestTable2Reproduction feeds the Table 1 raced fields into the refined
// harness and requires the remaining race counts to equal Table 2 exactly.
func TestTable2Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run; skipped in -short mode")
	}
	t1, err := RunCorpus(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunCorpus(Options{Refined: true, Only: RacedFields(t1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatTable2(t2))
	for _, m := range CompareTable2(t2) {
		t.Errorf("table 2 mismatch: %s", m)
	}
}

// TestTable1SingleDriverFast exercises the full pipeline on the three
// smallest drivers even in -short mode, checking their exact rows.
func TestTable1SingleDriverFast(t *testing.T) {
	sel := map[string]bool{"tracedrv": true, "imca": true, "toaster/toastmon": true}
	results, err := RunCorpus(Options{Drivers: sel})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d driver results, want 3", len(results))
	}
	for _, m := range CompareTable1(results) {
		t.Errorf("mismatch: %s", m)
	}
}

// TestRacedFieldsRoundTrip checks the Table1 -> Table2 plumbing.
func TestRacedFieldsRoundTrip(t *testing.T) {
	sel := map[string]bool{"moufiltr": true}
	t1, err := RunCorpus(Options{Drivers: sel})
	if err != nil {
		t.Fatal(err)
	}
	raced := RacedFields(t1)
	if got := len(raced["moufiltr"]); got != 7 {
		t.Fatalf("moufiltr raced fields = %d, want 7", got)
	}
	t2, err := RunCorpus(Options{Drivers: sel, Refined: true, Only: raced})
	if err != nil {
		t.Fatal(err)
	}
	if t2[0].Races != 0 {
		t.Errorf("moufiltr refined races = %d, want 0 (Ioctls serialized)", t2[0].Races)
	}
	if len(t2[0].Fields) != 7 {
		t.Errorf("refined rerun checked %d fields, want 7", len(t2[0].Fields))
	}
}
