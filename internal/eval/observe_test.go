package eval

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	kiss "repro"
)

// corpusSel keeps observability tests fast: three drivers, ~25 fields.
var corpusSel = map[string]bool{"tracedrv": true, "moufiltr": true, "toaster/toastmon": true}

// TestRunCorpusContextCancellation: canceling the corpus context mid-run
// returns partial results without error; the untouched fields are marked
// Canceled (never silently reported as no-race), and the counts say so.
func TestRunCorpusContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var events atomic.Int64
	res, err := RunCorpus(Options{
		Workers: 2,
		Context: ctx,
		Progress: func(e FieldEvent) {
			// Cancel once the run is demonstrably underway.
			if events.Add(1) == 3 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("canceled corpus run returned an error: %v", err)
	}
	if res == nil {
		t.Fatal("canceled corpus run returned no results")
	}
	canceled := 0
	for _, dr := range res {
		canceled += dr.Canceled
		if dr.Canceled+dr.Races+dr.NoRace+dr.Timeouts != len(dr.Fields) {
			t.Errorf("%s: verdict counts do not cover all %d fields", dr.Spec.Name, len(dr.Fields))
		}
	}
	if canceled == 0 {
		t.Error("no fields marked canceled after mid-run cancellation")
	}
	if table := FormatTable1(res); !bytes.Contains([]byte(table), []byte("canceled")) {
		t.Errorf("Table 1 does not flag the partial run:\n%s", table)
	}
}

// TestRunCorpusCancellationNoGoroutineLeak: after a canceled run returns,
// the worker pool is fully drained (no lingering checker goroutines).
// goleak is unavailable, so count goroutines with a settle loop.
func TestRunCorpusCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := RunCorpus(Options{
		Drivers: corpusSel,
		Workers: 4,
		Context: ctx,
		Progress: func(e FieldEvent) {
			once.Do(cancel)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// Give any straggler a moment to exit before declaring a leak.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunCorpusRerunAfterCancellationIsDeterministic: a canceled run must
// not perturb a subsequent complete run — same verdicts and counts as a
// run that was never preceded by cancellation.
func TestRunCorpusRerunAfterCancellationIsDeterministic(t *testing.T) {
	sel := map[string]bool{"tracedrv": true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := RunCorpus(Options{Drivers: sel, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	for _, dr := range partial {
		if dr.Canceled != len(dr.Fields) {
			t.Errorf("%s: pre-canceled run checked %d of %d fields", dr.Spec.Name, len(dr.Fields)-dr.Canceled, len(dr.Fields))
		}
	}

	full1, err := RunCorpus(Options{Drivers: sel})
	if err != nil {
		t.Fatal(err)
	}
	full2, err := RunCorpus(Options{Drivers: sel})
	if err != nil {
		t.Fatal(err)
	}
	stripTiming(full1)
	stripTiming(full2)
	if !reflect.DeepEqual(full1, full2) {
		t.Errorf("reruns after cancellation differ:\n1: %+v\n2: %+v", full1[0], full2[0])
	}
}

// TestProgressEventsDuringCorpus: the per-field progress hook fires during
// a corpus run and tags events with the driver and field they came from.
func TestProgressEventsDuringCorpus(t *testing.T) {
	var mu sync.Mutex
	var events []FieldEvent
	res, err := RunCorpus(Options{
		Drivers: map[string]bool{"tracedrv": true},
		Progress: func(e FieldEvent) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events during corpus run")
	}
	finals := map[string]bool{}
	for _, e := range events {
		if e.Driver != "tracedrv" || e.Field == "" {
			t.Errorf("event missing corpus tag: %+v", e)
		}
		if e.Event.Final {
			finals[e.Field] = true
		}
	}
	// Finalize guarantees at least one (final) event per checked field.
	for _, dr := range res {
		for _, fr := range dr.Fields {
			if !finals[fr.Field] {
				t.Errorf("field %s produced no final progress event", fr.Field)
			}
		}
	}
}

// TestJSONRecords: WriteJSON emits one record per corpus entry carrying
// the full metrics payload, parseable line by line.
func TestJSONRecords(t *testing.T) {
	res, err := RunCorpus(Options{Drivers: map[string]bool{"tracedrv": true}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, dr := range res {
		want += len(dr.Fields)
	}
	sc := bufio.NewScanner(&buf)
	got := 0
	for sc.Scan() {
		got++
		var rec struct {
			Driver  string `json:"driver"`
			Field   string `json:"field"`
			Verdict string `json:"verdict"`
			Stats   struct {
				States       int     `json:"states"`
				Visited      int     `json:"visited"`
				PeakFrontier int     `json:"peak_frontier"`
				StatesPerSec float64 `json:"states_per_sec"`
				Phases       struct {
					Check float64 `json:"check_s"`
					Total float64 `json:"total_s"`
				} `json:"phases"`
			} `json:"stats"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record %d does not parse: %v\n%s", got, err, sc.Text())
		}
		if rec.Driver == "" || rec.Field == "" || rec.Verdict == "" {
			t.Errorf("record %d incomplete: %s", got, sc.Text())
		}
		if rec.Stats.States == 0 || rec.Stats.Visited == 0 {
			t.Errorf("record %d missing search metrics: %s", got, sc.Text())
		}
		if rec.Stats.Phases.Total <= 0 {
			t.Errorf("record %d missing phase times: %s", got, sc.Text())
		}
	}
	if got != want {
		t.Errorf("emitted %d records for %d corpus entries", got, want)
	}
}

// TestJSONRecordsNameTrippedBound: a field that exhausts its budget emits
// its specific trip reason ("max-states") in the JSON record.
func TestJSONRecordsNameTrippedBound(t *testing.T) {
	res, err := RunCorpus(Options{
		Drivers:   map[string]bool{"tracedrv": true},
		MaxStates: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawTrip bool
	for _, r := range Records(res) {
		if r.Verdict == "timeout" {
			sawTrip = true
			if r.Stats.Reason != kiss.ReasonStates {
				t.Errorf("%s.%s: timeout record reason = %v, want max-states", r.Driver, r.Field, r.Stats.Reason)
			}
		}
	}
	if !sawTrip {
		t.Fatal("no field tripped a 100-state budget")
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"reason":"max-states"`)) {
		t.Error("JSON output does not name the tripped bound")
	}
}
