package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	kiss "repro"
	"repro/internal/cbseq"
	"repro/internal/drivers"
	"repro/internal/randprog"
)

// The sequentialization ablation (PR 10): KISS vs CB(K) vs the
// interleaving-exploring ground truth, over the assertion scenarios of
// drivers.Scenarios plus a random-program population. Each subject runs
// four-plus arms in one slot:
//
//   - truth: the concurrent explorer, unbounded context switches — the
//     oracle every sequentialization is judged against;
//   - kiss: the KISS translation at a generous ts bound — finds exactly
//     the bugs reachable without resuming an interrupted thread;
//   - cb(K) for each configured K: the guessed-snapshot translation —
//     finds exactly the bugs reachable within K context switches, at the
//     price of branching on the guess domains.
//
// The report checks two structural properties across the population —
// soundness (no CB arm reports a bug the oracle refutes) and
// monotonicity (raising K never loses a bug) — and counts the headline
// quantity: subjects where some CB(K) finds a bug KISS misses.

// SeqAblationOptions configure RunSeqAblation.
type SeqAblationOptions struct {
	// Bounds are the CB context-switch bounds to run (nil = {2, 3, 4}).
	Bounds []int
	// Programs is the random-program population size (0 = 24; negative
	// skips the random sweep and runs the scenarios only).
	Programs int
	// MaxStates is the per-arm state bound (0 = 300000).
	MaxStates int
	// MaxTS is the KISS arm's ts bound (0 = 2, enough to dispatch every
	// fork the scenarios make).
	MaxTS int
	// Workers bounds concurrently running subjects; the arms of one
	// subject always share a slot, so the report is deterministic at any
	// setting (0 = one subject per CPU).
	Workers int
	// SearchWorkers is the per-arm search parallelism (kiss.Config.
	// SearchWorkers); verdicts are independent of it.
	SearchWorkers int
}

// SeqAblationArm is one checker's outcome on one subject.
type SeqAblationArm struct {
	Verdict string `json:"verdict"`
	States  int    `json:"states"`
}

// SeqAblationRow is one subject's record across all arms.
type SeqAblationRow struct {
	// Subject is "scenario:<name>" or "rand:<seed>".
	Subject string `json:"subject"`

	Truth SeqAblationArm `json:"truth"`
	Kiss  SeqAblationArm `json:"kiss"`
	// CB is aligned with the report's Bounds. Empty when Unsupported.
	CB []SeqAblationArm `json:"cb,omitempty"`

	// Unsupported carries the cbseq rejection reason for subjects outside
	// the CB fragment; the other arms still run.
	Unsupported string `json:"unsupported,omitempty"`

	// CBOnly: some CB arm found the bug, the oracle confirms it, and the
	// KISS arm completed without finding it.
	CBOnly bool `json:"cb_only,omitempty"`
}

// SeqAblationReport is the study result.
type SeqAblationReport struct {
	BoundList []int `json:"bounds"`
	MaxStates int   `json:"max_states"`
	MaxTS     int   `json:"max_ts"`
	Subjects  int   `json:"subjects"`

	Rows []SeqAblationRow `json:"rows"`

	TruthErrors int   `json:"truth_errors"`
	KissErrors  int   `json:"kiss_errors"`
	CBErrors    []int `json:"cb_errors"` // aligned with bounds
	CBOnly      int   `json:"cb_only"`
	Unsupported int   `json:"unsupported"`

	// Sound: no CB arm reported a bug on a subject the oracle exhausted
	// as safe. Monotone: no subject where CB(k) errored and a completed
	// CB(k') with k' > k did not. Violations lists the offending
	// subjects (empty on a correct build).
	Sound      bool     `json:"sound"`
	Monotone   bool     `json:"monotone"`
	Violations []string `json:"violations,omitempty"`
}

// seqRandConfig keeps the random population inside the CB fragment's
// comfort zone: few globals bound the guess-domain branching, shallow
// nesting keeps the oracle's interleaving count small.
var seqRandConfig = randprog.Config{Globals: 2, Funcs: 2, MaxStmts: 4, MaxAsyncs: 2, Depth: 2}

// RunSeqAblation runs every arm on every subject and aggregates the
// soundness/monotonicity verdicts.
func RunSeqAblation(opts SeqAblationOptions) (*SeqAblationReport, error) {
	bounds := opts.Bounds
	if len(bounds) == 0 {
		bounds = []int{2, 3, 4}
	}
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 300000
	}
	maxTS := opts.MaxTS
	if maxTS == 0 {
		maxTS = 2
	}
	programs := opts.Programs
	if programs == 0 {
		programs = 24
	}
	if programs < 0 {
		programs = 0
	}

	type subject struct {
		name string
		src  string
	}
	var subjects []subject
	for _, sc := range drivers.Scenarios() {
		subjects = append(subjects, subject{name: "scenario:" + sc.Name, src: sc.Source})
	}
	for seed := int64(0); seed < int64(programs); seed++ {
		subjects = append(subjects, subject{
			name: fmt.Sprintf("rand:%d", seed),
			src:  randprog.Generate(seed, seqRandConfig),
		})
	}

	rep := &SeqAblationReport{
		BoundList: bounds,
		MaxStates: maxStates,
		MaxTS:     maxTS,
		Subjects:  len(subjects),
		Rows:      make([]SeqAblationRow, len(subjects)),
		CBErrors:  make([]int, len(bounds)),
	}

	arm := func(res *kiss.Result) SeqAblationArm {
		return SeqAblationArm{Verdict: res.Verdict.String(), States: res.States}
	}
	run := func(i int) error {
		s := subjects[i]
		row := SeqAblationRow{Subject: s.name}

		prog, err := kiss.Parse(s.src)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		truth, err := (&kiss.Config{ContextBound: -1, MaxStates: maxStates, SearchWorkers: opts.SearchWorkers}).Explore(prog)
		if err != nil {
			return fmt.Errorf("%s: truth: %w", s.name, err)
		}
		row.Truth = arm(truth)

		kres, err := (&kiss.Config{MaxTS: maxTS, MaxStates: maxStates, SearchWorkers: opts.SearchWorkers}).Check(prog)
		if err != nil {
			return fmt.Errorf("%s: kiss: %w", s.name, err)
		}
		row.Kiss = arm(kres)

		for _, k := range bounds {
			cfg := &kiss.Config{
				Sequentialization: kiss.SeqCB,
				ContextSwitches:   k,
				MaxStates:         maxStates,
				SearchWorkers:     opts.SearchWorkers,
			}
			cres, err := cfg.Check(prog)
			if err != nil {
				if cbseq.IsUnsupported(err) {
					row.Unsupported = err.Error()
					row.CB = nil
					break
				}
				return fmt.Errorf("%s: cb(%d): %w", s.name, k, err)
			}
			row.CB = append(row.CB, arm(cres))
		}

		cbFound := false
		for _, a := range row.CB {
			if a.Verdict == kiss.Error.String() {
				cbFound = true
			}
		}
		row.CBOnly = cbFound &&
			row.Truth.Verdict == kiss.Error.String() &&
			row.Kiss.Verdict == kiss.Safe.String()
		rep.Rows[i] = row
		return nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if opts.SearchWorkers > 1 {
			workers = max(1, workers/opts.SearchWorkers)
		}
	}
	if workers > len(subjects) {
		workers = len(subjects)
	}
	if workers <= 1 {
		for i := range subjects {
			if err := run(i); err != nil {
				return nil, err
			}
		}
	} else {
		var (
			next     atomic.Int64
			wg       sync.WaitGroup
			failOnce sync.Once
			firstErr error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(subjects) {
						return
					}
					if err := run(i); err != nil {
						failOnce.Do(func() { firstErr = err })
						return
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	rep.Sound, rep.Monotone = true, true
	errStr, safeStr := kiss.Error.String(), kiss.Safe.String()
	for _, row := range rep.Rows {
		if row.Truth.Verdict == errStr {
			rep.TruthErrors++
		}
		if row.Kiss.Verdict == errStr {
			rep.KissErrors++
		}
		if row.Unsupported != "" {
			rep.Unsupported++
			continue
		}
		for i, a := range row.CB {
			if a.Verdict == errStr {
				rep.CBErrors[i]++
			}
			// Soundness: a CB-reported bug on a subject the oracle
			// *exhausted* as safe is a false positive. A resource-bounded
			// oracle is no evidence either way.
			if a.Verdict == errStr && row.Truth.Verdict == safeStr {
				rep.Sound = false
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s: cb(%d) reports a bug the oracle refutes", row.Subject, rep.BoundList[i]))
			}
			// Monotonicity: a completed higher bound must keep every bug a
			// lower bound found (resource-bounded arms are excluded).
			for j := i + 1; j < len(row.CB); j++ {
				if a.Verdict == errStr && row.CB[j].Verdict == safeStr {
					rep.Monotone = false
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("%s: cb(%d) finds a bug cb(%d) loses", row.Subject, rep.BoundList[i], rep.BoundList[j]))
				}
			}
		}
		if row.CBOnly {
			rep.CBOnly++
		}
	}
	return rep, nil
}

// FormatSeqAblation renders the study as the EXPERIMENTS.md table.
func FormatSeqAblation(rep *SeqAblationReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sequentialization ablation: %d subjects, state bound %d\n", rep.Subjects, rep.MaxStates)
	header := fmt.Sprintf("%-24s %-18s %-18s", "Subject", "Truth", "KISS ts="+fmt.Sprint(rep.MaxTS))
	for _, k := range rep.BoundList {
		header += fmt.Sprintf(" %-18s", fmt.Sprintf("CB(%d)", k))
	}
	b.WriteString(header + "\n")
	cell := func(a SeqAblationArm) string {
		return fmt.Sprintf("%s/%d", a.Verdict, a.States)
	}
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-24s %-18s %-18s", r.Subject, cell(r.Truth), cell(r.Kiss))
		if r.Unsupported != "" {
			b.WriteString(" unsupported")
		} else {
			for _, a := range r.CB {
				fmt.Fprintf(&b, " %-18s", cell(a))
			}
		}
		if r.CBOnly {
			b.WriteString("  <- CB-only")
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "errors: truth=%d kiss=%d", rep.TruthErrors, rep.KissErrors)
	for i, k := range rep.BoundList {
		fmt.Fprintf(&b, " cb(%d)=%d", k, rep.CBErrors[i])
	}
	fmt.Fprintf(&b, "; cb-only=%d unsupported=%d sound=%v monotone=%v\n",
		rep.CBOnly, rep.Unsupported, rep.Sound, rep.Monotone)
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	return b.String()
}

// WriteSeqAblation emits the report as one indented JSON document.
func WriteSeqAblation(w io.Writer, rep *SeqAblationReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
