package eval

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// stripTiming zeroes the wall-clock fields (phase durations, states/sec)
// in-place so results can be compared for search determinism.
func stripTiming(drs []*DriverResult) {
	for _, dr := range drs {
		for i := range dr.Fields {
			dr.Fields[i].Stats.StripTiming()
		}
	}
}

// TestRunCorpusParallelDeterminism: the worker pool must be invisible in
// the output — Workers: 1 and Workers: 8 produce identical result slices
// (driver order, field slots, verdicts, state and step counts).
func TestRunCorpusParallelDeterminism(t *testing.T) {
	sel := map[string]bool{"tracedrv": true, "moufiltr": true, "toaster/toastmon": true}
	seq, err := RunCorpus(Options{Drivers: sel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCorpus(Options{Drivers: sel, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("driver count differs: %d vs %d", len(seq), len(par))
	}
	stripTiming(seq)
	stripTiming(par)
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("driver %s: sequential and parallel results differ:\nseq: %+v\npar: %+v",
				seq[i].Spec.Name, seq[i], par[i])
		}
	}
	if FormatTable1(seq) != FormatTable1(par) {
		t.Error("rendered Table 1 differs between worker counts")
	}
}

// TestRunCorpusParallelRefined covers the refined/Only path under the pool.
func TestRunCorpusParallelRefined(t *testing.T) {
	sel := map[string]bool{"moufiltr": true}
	t1, err := RunCorpus(Options{Drivers: sel, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	raced := RacedFields(t1)
	seq, err := RunCorpus(Options{Drivers: sel, Refined: true, Only: raced, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCorpus(Options{Drivers: sel, Refined: true, Only: raced, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	stripTiming(seq)
	stripTiming(par)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("refined rerun differs between worker counts:\nseq: %+v\npar: %+v", seq[0], par[0])
	}
}

// TestRunCorpusCancellation: when a field check fails, the pool must
// surface the error and stop handing out jobs promptly — at most the
// checks already in flight may still start, not the rest of the corpus.
func TestRunCorpusCancellation(t *testing.T) {
	const workers = 4
	boom := errors.New("injected field failure")
	var started atomic.Int64
	checkFieldHook = func(driver, field string) error {
		if started.Add(1) == 1 {
			return boom
		}
		return nil
	}
	defer func() { checkFieldHook = nil }()

	res, err := RunCorpus(Options{Workers: workers})
	if err == nil {
		t.Fatal("RunCorpus returned nil error after injected failure")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the injected failure", err)
	}
	if res != nil {
		t.Error("RunCorpus returned partial results alongside an error")
	}
	// 481 jobs exist; after the first job fails, each of the other workers
	// may finish the job it was already running (plus a small scheduling
	// margin), but the rest of the corpus must never be handed out.
	if n := started.Load(); n > 2*workers {
		t.Errorf("%d field checks started after cancellation (want <= %d)", n, 2*workers)
	}
}
