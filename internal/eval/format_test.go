package eval

import (
	"strings"
	"testing"

	"repro/internal/drivers"
)

func TestFieldVerdictStrings(t *testing.T) {
	if NoRace.String() != "no-race" || Race.String() != "race" || Timeout.String() != "timeout" {
		t.Error("verdict strings wrong")
	}
}

func TestFormatTable1Layout(t *testing.T) {
	spec := drivers.FindSpec("tracedrv")
	results := []*DriverResult{{
		Spec:     spec,
		ModelLOC: 250,
		Fields: []FieldResult{
			{Field: "SpinLock", Verdict: NoRace},
			{Field: "StopEvent", Verdict: NoRace},
			{Field: "RefCount", Verdict: NoRace},
		},
		NoRace: 3,
	}}
	out := FormatTable1(results)
	for _, frag := range []string{"Table 1", "tracedrv", "Driver", "Races", "Timeouts", "Total"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 1 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFormatTable2SkipsEmptyDrivers(t *testing.T) {
	specA := drivers.FindSpec("imca")
	specB := drivers.FindSpec("startio")
	results := []*DriverResult{
		{Spec: specA, Fields: []FieldResult{{Field: "x", Verdict: Race}}, Races: 1},
		{Spec: specB}, // no rerun fields: omitted from Table 2
	}
	out := FormatTable2(results)
	if !strings.Contains(out, "imca") {
		t.Errorf("imca missing:\n%s", out)
	}
	if strings.Contains(out, "startio") {
		t.Errorf("driver with no rerun fields should be omitted:\n%s", out)
	}
}

func TestCompareTable1ReportsMismatches(t *testing.T) {
	spec := drivers.FindSpec("imca") // paper: 5 fields, 1 race, 4 no-race
	wrong := []*DriverResult{{
		Spec:   spec,
		Fields: make([]FieldResult, 5),
		Races:  0, NoRace: 5,
	}}
	ms := CompareTable1(wrong)
	if len(ms) == 0 {
		t.Fatal("mismatching result not reported")
	}
	right := []*DriverResult{{
		Spec:   spec,
		Fields: make([]FieldResult, 5),
		Races:  1, NoRace: 4,
	}}
	if ms := CompareTable1(right); len(ms) != 0 {
		t.Errorf("matching result flagged: %v", ms)
	}
}

func TestCompareTable2IgnoresAbsentDrivers(t *testing.T) {
	spec := drivers.FindSpec("tracedrv") // PaperRacesRefined == -1
	results := []*DriverResult{{Spec: spec, Races: 99}}
	if ms := CompareTable2(results); len(ms) != 0 {
		t.Errorf("driver absent from Table 2 compared anyway: %v", ms)
	}
}

func TestFormatStudiesMentionKeyFacts(t *testing.T) {
	bl := FormatBlowup([]BlowupRow{{Threads: 2, ConcheckStates: 10, KissStates: 5}})
	if !strings.Contains(bl, "Ratio") || !strings.Contains(bl, "2") {
		t.Errorf("blowup format:\n%s", bl)
	}
	cv := FormatCoverage([]CoverageRow{{BugDepth: 1, MaxTS: 1, Found: true, States: 10}})
	if !strings.Contains(cv, "FOUND") {
		t.Errorf("coverage format:\n%s", cv)
	}
	rc := FormatRefcount([]RefcountResult{{Driver: "bt", Verdict: 0, Expected: 0, States: 1}})
	if !strings.Contains(rc, "bt") {
		t.Errorf("refcount format:\n%s", rc)
	}
}
