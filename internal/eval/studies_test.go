package eval

import (
	"testing"

	"repro/internal/drivers"
)

// TestRefcountExperiment reproduces the Section 6 reference-counting
// results: bluetooth buggy found only at ts=1, fixed clean, fakemodem
// clean.
func TestRefcountExperiment(t *testing.T) {
	rows, err := RunRefcount()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatRefcount(rows))
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Verdict != r.Expected {
			t.Errorf("%s: verdict %v, want %v (%s)", r.Driver, r.Verdict, r.Expected, r.Message)
		}
	}
}

// TestBlowupStudy checks the motivating claim quantitatively: on the
// N-thread shared-counter family, the interleaving explorer's state count
// grows by a larger factor per added thread than the KISS sequential
// analysis's, and the baseline overtakes KISS in absolute cost.
func TestBlowupStudy(t *testing.T) {
	n := 5
	rows, err := RunBlowup(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatBlowup(rows))
	last := rows[len(rows)-1]
	if last.ConcheckStates <= last.KissStates {
		t.Errorf("at %d threads, interleaving MC explored %d states <= KISS's %d; expected blowup",
			last.Threads, last.ConcheckStates, last.KissStates)
	}
	// Per-thread growth factor over the last step.
	prev := rows[len(rows)-2]
	conGrowth := float64(last.ConcheckStates) / float64(prev.ConcheckStates)
	kissGrowth := float64(last.KissStates) / float64(prev.KissStates)
	if conGrowth <= kissGrowth {
		t.Errorf("per-thread growth: interleaving %.1fx <= KISS %.1fx; expected exponential separation",
			conGrowth, kissGrowth)
	}
}

// TestCoverageStudy checks the ts knob end to end: a bug requiring k
// deferred threads is found exactly when MAX >= k, and the cost (states)
// is monotone in MAX for a fixed program.
func TestCoverageStudy(t *testing.T) {
	rows, err := RunCoverage(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatCoverage(rows))
	for _, r := range rows {
		want := r.MaxTS >= r.BugDepth
		if r.Found != want {
			t.Errorf("depth=%d MAX=%d: found=%v, want %v", r.BugDepth, r.MaxTS, r.Found, want)
		}
	}
	// Cost grows with MAX until the bug is found (error runs stop early,
	// so compare only the miss cells).
	byDepth := map[int][]CoverageRow{}
	for _, r := range rows {
		byDepth[r.BugDepth] = append(byDepth[r.BugDepth], r)
	}
	for depth, rs := range byDepth {
		for i := 1; i < len(rs); i++ {
			if rs[i].Found || rs[i-1].Found {
				continue
			}
			if rs[i].States < rs[i-1].States {
				t.Errorf("depth=%d: states not monotone in MAX (%d at MAX=%d, %d at MAX=%d)",
					depth, rs[i-1].States, rs[i-1].MaxTS, rs[i].States, rs[i].MaxTS)
			}
		}
	}
}

// TestDefaultBudgetSeparation verifies the calibration invariant behind
// the Table 1 timeouts: a hard field exceeds the default budget while a
// protected field of the same driver finishes inside it.
func TestDefaultBudgetSeparation(t *testing.T) {
	sel := map[string]bool{"mouclass": true}
	res, err := RunCorpus(Options{Drivers: sel})
	if err != nil {
		t.Fatal(err)
	}
	var sawHardTimeout, sawEasySafe bool
	for _, fr := range res[0].Fields {
		if fr.Pattern.TimesOut() && fr.Verdict == Timeout {
			sawHardTimeout = true
			if fr.States <= DefaultMaxStates {
				t.Errorf("hard field %s stopped at %d states, expected to exceed budget %d",
					fr.Field, fr.States, DefaultMaxStates)
			}
		}
		if fr.Pattern == drivers.FieldProtected && fr.Verdict == NoRace {
			sawEasySafe = true
		}
	}
	if !sawHardTimeout {
		t.Error("no hard field timed out in mouclass")
	}
	if !sawEasySafe {
		t.Error("no protected field verified safe in mouclass")
	}
}
