package eval

import (
	kiss "repro"
	"testing"
)

// TestSchedulerStudy: the nondeterministic scheduler dominates the
// restricted policies in coverage and costs at least as many states.
func TestSchedulerStudy(t *testing.T) {
	s, err := RunSchedulerStudy(60)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatSchedulerStudy(s))
	byPolicy := map[kiss.Scheduler]SchedulerRow{}
	for _, r := range s.Rows {
		byPolicy[r.Scheduler] = r
	}
	nd := byPolicy[kiss.SchedulerNondet]
	for _, p := range []kiss.Scheduler{kiss.SchedulerDrainAll, kiss.SchedulerAtCallsOnly} {
		r := byPolicy[p]
		if r.BugsFound > nd.BugsFound {
			t.Errorf("%v found more bugs (%d) than nondet (%d)", p, r.BugsFound, nd.BugsFound)
		}
		if r.TotalStates > nd.TotalStates {
			t.Errorf("%v explored more states (%d) than nondet (%d)", p, r.TotalStates, nd.TotalStates)
		}
	}
	if nd.BugsFound == 0 {
		t.Error("no bugs found; study vacuous")
	}
}
