package eval

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestMacroAblationSmallCorpus: the ablation harness on two small
// drivers — verdicts and failure positions identical across arms at
// every worker count, stored states strictly compressed, and the JSON
// payload carrying the documented keys.
func TestMacroAblationSmallCorpus(t *testing.T) {
	rep, err := RunMacroAblation(AblationOptions{
		Drivers:      map[string]bool{"kbfiltr": true, "moufiltr": true},
		WorkerCounts: []int{0, 1, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatalf("arms disagree: %v", rep.Mismatches)
	}
	if rep.On.Races != rep.Off.Races || rep.On.NoRaces != rep.Off.NoRaces || rep.On.Timeouts != rep.Off.Timeouts {
		t.Errorf("verdict counts diverged: on %+v, off %+v", rep.On, rep.Off)
	}
	if rep.On.StatesStored >= rep.Off.StatesStored {
		t.Errorf("no compression: stored on=%d off=%d", rep.On.StatesStored, rep.Off.StatesStored)
	}
	if rep.CompressionRatio <= 1 {
		t.Errorf("compression ratio %.2f not > 1", rep.CompressionRatio)
	}
	if rep.On.StatesStepped < rep.On.StatesStored {
		t.Errorf("stepped %d < stored %d in the compressed arm", rep.On.StatesStepped, rep.On.StatesStored)
	}
	// The memo arm replays bit-identically: same stored/stepped counts as
	// the plain macro arm, and the replay cache must actually engage.
	if rep.Memo.StatesStored != rep.On.StatesStored || rep.Memo.StatesStepped != rep.On.StatesStepped {
		t.Errorf("memo arm counters diverged from macro arm: memo %+v, on %+v", rep.Memo, rep.On)
	}
	if rep.Memo.MemoHits == 0 {
		t.Error("memo arm recorded zero hits on a corpus with repeated folds")
	}
	if rep.Memo.MemoStepsSaved == 0 {
		t.Error("memo arm saved zero steps despite hits")
	}
	// The summary arm replays bit-identically on top of the memo: same
	// stored/stepped counts again, and the summary table must engage.
	if rep.Sum.StatesStored != rep.On.StatesStored || rep.Sum.StatesStepped != rep.On.StatesStepped {
		t.Errorf("summary arm counters diverged from macro arm: sum %+v, on %+v", rep.Sum, rep.On)
	}
	if rep.Sum.SumHits == 0 {
		t.Error("summary arm recorded zero hits on a corpus with repeated calls")
	}
	if rep.Sum.SumStepsSaved == 0 {
		t.Error("summary arm saved zero steps despite hits")
	}
	t.Logf("compression ratio on kbfiltr+moufiltr: %.2fx, memo hit ratio %.1f%%, summary hit ratio %.1f%%",
		rep.CompressionRatio, rep.Memo.MemoHitRatio*100, rep.Sum.SumHitRatio*100)

	var buf bytes.Buffer
	if err := WriteMacroAblation(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if rep.CompletedFields == 0 {
		t.Error("no completed fields on drivers without hard fields")
	}
	for _, key := range []string{`"states_stored"`, `"states_stepped"`, `"compression_ratio"`, `"aggregate_ratio"`, `"search_workers"`, `"identical": true`, `"memo_hit_ratio"`, `"memo_steps_saved"`, `"call_summaries"`, `"summary_hit_ratio"`, `"summary_steps_saved"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON payload missing %s:\n%s", key, buf.String())
		}
	}
	var round MacroAblation
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("payload does not round-trip: %v", err)
	}
	if round.CompressionRatio != rep.CompressionRatio {
		t.Errorf("round-trip ratio %v != %v", round.CompressionRatio, rep.CompressionRatio)
	}

	out := FormatMacroAblation(rep)
	for _, want := range []string{"macro-steps", "macro+memo", "macro+memo+sum", "per-statement", "compression ratio", "hit ratio", "summaries:"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
}
