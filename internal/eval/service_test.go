package eval

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// startDaemon spins up an in-process kissd (service handler over
// httptest) and returns its base URL plus the server for counter
// inspection.
func startDaemon(t *testing.T) (*service.Server, string) {
	t.Helper()
	s := service.New(service.Config{Workers: 2, QueueSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, ts.URL
}

// TestRunCorpusServiceBackedMatchesLocal: the service-backed execution
// path must reproduce the local corpus verdicts exactly — same drivers,
// same per-field verdicts, same deterministic search counters — and a
// second identical corpus run must be answered from the daemon's
// content-addressed cache without exploring new states.
func TestRunCorpusServiceBackedMatchesLocal(t *testing.T) {
	sel := map[string]bool{"tracedrv": true}
	local, err := RunCorpus(Options{Drivers: sel})
	if err != nil {
		t.Fatal(err)
	}

	srv, url := startDaemon(t)
	remote, err := RunCorpus(Options{Drivers: sel, Server: url})
	if err != nil {
		t.Fatal(err)
	}

	if len(remote) != len(local) {
		t.Fatalf("driver rows: remote %d, local %d", len(remote), len(local))
	}
	for i := range local {
		ld, rd := local[i], remote[i]
		if ld.Races != rd.Races || ld.NoRace != rd.NoRace || ld.Timeouts != rd.Timeouts {
			t.Errorf("%s: remote %d/%d/%d, local %d/%d/%d (races/no-race/timeouts)",
				ld.Spec.Name, rd.Races, rd.NoRace, rd.Timeouts, ld.Races, ld.NoRace, ld.Timeouts)
		}
		for j := range ld.Fields {
			lf, rf := ld.Fields[j], rd.Fields[j]
			if lf.Verdict != rf.Verdict || lf.States != rf.States || lf.Steps != rf.Steps ||
				lf.Message != rf.Message || lf.Pos != rf.Pos {
				t.Errorf("%s.%s: remote {%v %d %d %q %q}, local {%v %d %d %q %q}",
					lf.Driver, lf.Field, rf.Verdict, rf.States, rf.Steps, rf.Message, rf.Pos,
					lf.Verdict, lf.States, lf.Steps, lf.Message, lf.Pos)
			}
		}
	}

	// The warm re-run: every field is an identical (source, config)
	// problem, so the second pass must be all cache hits.
	h1 := srv.Health()
	again, err := RunCorpus(Options{Drivers: sel, Server: url})
	if err != nil {
		t.Fatal(err)
	}
	h2 := srv.Health()
	fields := 0
	for _, dr := range again {
		fields += len(dr.Fields)
	}
	hits := h2.Cache.Hits - h1.Cache.Hits
	if hits != int64(fields) {
		t.Errorf("warm pass: %d cache hits for %d fields", hits, fields)
	}
	if h2.Cache.Misses != h1.Cache.Misses {
		t.Errorf("warm pass took %d misses", h2.Cache.Misses-h1.Cache.Misses)
	}
	for i := range local {
		for j := range local[i].Fields {
			if again[i].Fields[j].Verdict != local[i].Fields[j].Verdict {
				t.Errorf("warm verdict drifted for %s.%s", local[i].Fields[j].Driver, local[i].Fields[j].Field)
			}
		}
	}
}

// TestRunCorpusServiceBackedCancellation: canceling the corpus context
// mid-run must mark fields Canceled and return without error, like the
// local path.
func TestRunCorpusServiceBackedCancellation(t *testing.T) {
	_, url := startDaemon(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: every field should come back Canceled
	res, err := RunCorpus(Options{Drivers: map[string]bool{"tracedrv": true}, Server: url, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	for _, dr := range res {
		if dr.Canceled != len(dr.Fields) {
			t.Errorf("%s: %d of %d fields canceled", dr.Spec.Name, dr.Canceled, len(dr.Fields))
		}
	}
}
