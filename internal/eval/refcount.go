package eval

import (
	"fmt"
	"strings"

	kiss "repro"
	"repro/internal/drivers"
)

// RefcountResult is one row of the Section 6 reference-counting
// experiment: KISS run in assertion-checking mode with ts bound 1 on a
// driver instrumented with the auxiliary `stopped` variable.
type RefcountResult struct {
	Driver   string
	MaxTS    int
	Verdict  kiss.Verdict
	Message  string
	States   int
	Expected kiss.Verdict
}

// RunRefcount reproduces the reference-counting experiment of Section 6:
//
//   - the Bluetooth driver's assertion violation is found at ts = 1 (and,
//     for completeness, is not simulable at ts = 0, Section 2.3);
//   - after the fix, KISS reports no errors;
//   - the fakemodem driver follows the fixed discipline and is clean.
func RunRefcount() ([]RefcountResult, error) {
	cases := []struct {
		name     string
		src      string
		maxTS    int
		expected kiss.Verdict
	}{
		{"bluetooth (buggy), ts=0", drivers.BluetoothSource, 0, kiss.Safe},
		{"bluetooth (buggy), ts=1", drivers.BluetoothSource, 1, kiss.Error},
		{"bluetooth (fixed), ts=1", drivers.BluetoothFixedSource, 1, kiss.Safe},
		{"fakemodem refcount, ts=1", drivers.FakemodemRefcountSource, 1, kiss.Safe},
	}
	var out []RefcountResult
	for _, c := range cases {
		prog, err := kiss.Parse(c.src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		res, err := kiss.Check(prog, kiss.WithMaxTS(c.maxTS))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		out = append(out, RefcountResult{
			Driver:   c.name,
			MaxTS:    c.maxTS,
			Verdict:  res.Verdict,
			Message:  res.Message,
			States:   res.States,
			Expected: c.expected,
		})
	}
	return out, nil
}

// FormatRefcount renders the experiment.
func FormatRefcount(rows []RefcountResult) string {
	var b strings.Builder
	b.WriteString("Reference-counting experiment (Section 6; assertion mode)\n")
	fmt.Fprintf(&b, "%-28s %-10s %-10s %8s\n", "Driver", "Verdict", "Expected", "States")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %-10s %-10s %8d\n", r.Driver, r.Verdict, r.Expected, r.States)
	}
	return b.String()
}
