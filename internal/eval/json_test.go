package eval

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteJSONDeterministicAcrossWorkers: the JSON Lines stream must be
// byte-for-byte identical between a sequential corpus run and a heavily
// parallel one. Record order is fixed by construction (every field owns
// a slot assigned before the pool starts); the deterministic writer also
// strips the wall-clock Stats fields, leaving nothing scheduling-
// dependent in the bytes.
func TestWriteJSONDeterministicAcrossWorkers(t *testing.T) {
	sel := map[string]bool{"kbfiltr": true, "moufiltr": true}

	seq, err := RunCorpus(Options{Drivers: sel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCorpus(Options{Drivers: sel, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := WriteJSONDeterministic(&a, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONDeterministic(&b, par); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty JSON stream")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("workers=1 and workers=8 streams differ:\n--- w1 ---\n%s\n--- w8 ---\n%s",
			firstDiffLine(a.Bytes(), b.Bytes()), firstDiffLine(b.Bytes(), a.Bytes()))
	}

	// The plain writer keeps wall-clock metrics, so its bytes may differ —
	// but the record identities and order must not.
	var pa, pb bytes.Buffer
	if err := WriteJSON(&pa, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&pb, par); err != nil {
		t.Fatal(err)
	}
	ra, rb := decodeRecords(t, &pa), decodeRecords(t, &pb)
	if len(ra) != len(rb) || len(ra) == 0 {
		t.Fatalf("record counts: w1 %d, w8 %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Driver != rb[i].Driver || ra[i].Field != rb[i].Field || ra[i].Verdict != rb[i].Verdict {
			t.Errorf("record %d: w1 %s.%s=%s, w8 %s.%s=%s", i,
				ra[i].Driver, ra[i].Field, ra[i].Verdict, rb[i].Driver, rb[i].Field, rb[i].Verdict)
		}
	}
}

func decodeRecords(t *testing.T, buf *bytes.Buffer) []Record {
	t.Helper()
	var out []Record
	dec := json.NewDecoder(buf)
	for dec.More() {
		var r Record
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

// firstDiffLine returns the first line of a that differs from b's
// corresponding line, for a readable failure message.
func firstDiffLine(a, b []byte) string {
	sa := bufio.NewScanner(bytes.NewReader(a))
	sb := bufio.NewScanner(bytes.NewReader(b))
	sa.Buffer(make([]byte, 1<<20), 1<<20)
	sb.Buffer(make([]byte, 1<<20), 1<<20)
	for sa.Scan() {
		if !sb.Scan() || sa.Text() != sb.Text() {
			return sa.Text()
		}
	}
	return "(streams are a prefix of each other)"
}
