package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	kiss "repro"
	"repro/internal/drivers"
	"repro/internal/stats"
)

// The memory-budget study (PR 9): the corpus's hard fields stop at
// MaxStates because the bound is really RAM — every frontier frame and
// every visited fingerprint lives in memory for the whole search. This
// study runs each hard field twice under one configured memory budget:
//
//   - arm A (exact): the exact visited set at the classic per-field
//     state budget — the run that trips ReasonStates;
//   - arm B (compact+spill): the compact visited filter plus the
//     disk-spilling frontier, at a 10x state ceiling and the *same*
//     MemBudgetMB.
//
// A field counts as improved when arm A tripped MaxStates and arm B
// either completed the search or explored at least 10x the states —
// the record behind "raise the state ceiling without raising the memory
// budget".

// MemBudgetOptions configure RunMemBudget.
type MemBudgetOptions struct {
	// MaxStates is arm A's per-field state budget (0 = DefaultMaxStates).
	MaxStates int
	// Multiplier scales arm B's state ceiling (0 = 10).
	Multiplier int
	// MemBudgetMB is the memory budget both arms run under (0 = 64).
	MemBudgetMB int
	// Drivers restricts to a subset of driver names (nil = all).
	Drivers map[string]bool
	// Workers bounds concurrent field pairs (0 = one per CPU, halved so
	// the two arms of a pair never oversubscribe).
	Workers int
	// SearchWorkers parallelizes each search (0 engages the sequential
	// bucket BFS; the spilling frontier requires a BFS engine either way).
	SearchWorkers int
	// SpillDir is where arm B's frontier spills ("" = system temp).
	SpillDir string
}

// MemBudgetRow is one hard field's A/B record.
type MemBudgetRow struct {
	Driver string `json:"driver"`
	Field  string `json:"field"`

	ExactVerdict string `json:"exact_verdict"`
	ExactReason  string `json:"exact_reason,omitempty"`
	ExactStates  int    `json:"exact_states"`

	CompactVerdict string `json:"compact_verdict"`
	CompactReason  string `json:"compact_reason,omitempty"`
	CompactStates  int    `json:"compact_states"`

	// Completed: arm B exhausted the state space inside the raised
	// ceiling. Improved: arm A tripped MaxStates and arm B completed or
	// explored >= Multiplier x the old ceiling.
	Completed bool `json:"completed"`
	Improved  bool `json:"improved"`

	// Memory is arm B's full memory-policy record: filter size,
	// occupancy, estimated false-positive rate, spilled bytes/frames/
	// runs, merge passes, and the frontier's resident high-water mark.
	Memory *stats.Memory `json:"memory,omitempty"`
	// PeakRAMBytes approximates arm B's search-owned peak RSS: the
	// frontier's resident high-water mark plus the visited filter.
	PeakRAMBytes int64 `json:"peak_ram_bytes"`
}

// MemBudgetReport is the study result.
type MemBudgetReport struct {
	MaxStates     int             `json:"max_states"`
	CeilingStates int             `json:"ceiling_states"`
	MemBudgetMB   int             `json:"mem_budget_mb"`
	Rows          []MemBudgetRow  `json:"rows"`
	// Tripped counts fields where arm A hit MaxStates; Improved counts
	// those arm B completed or pushed >= Multiplier x further.
	Tripped  int `json:"tripped"`
	Improved int `json:"improved"`
}

func memBudgetConfig(field string, maxStates int, opts MemBudgetOptions, compact bool) *kiss.Config {
	cfg := &kiss.Config{
		MaxTS:         0,
		RaceTarget:    &kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: field},
		MaxStates:     maxStates,
		MemBudgetMB:   opts.MemBudgetMB,
		SpillDir:      opts.SpillDir,
		SearchWorkers: opts.SearchWorkers,
		// The spilling frontier lives in the BFS engines; the sequential
		// default (DFS) would silently ignore the budget.
		BFS: true,
	}
	if compact {
		cfg.VisitedMode = kiss.VisitedCompact
	}
	return cfg
}

// RunMemBudget runs the A/B study over every hard field of the selected
// drivers. Field pairs run concurrently; both arms of a pair run in the
// same slot, so the report is deterministic at any worker count.
func RunMemBudget(opts MemBudgetOptions) (*MemBudgetReport, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	mult := opts.Multiplier
	if mult <= 0 {
		mult = 10
	}
	if opts.MemBudgetMB == 0 {
		opts.MemBudgetMB = 64
	}
	rep := &MemBudgetReport{
		MaxStates:     maxStates,
		CeilingStates: maxStates * mult,
		MemBudgetMB:   opts.MemBudgetMB,
	}

	type job struct {
		model *drivers.Model
		field drivers.FieldSpec
	}
	var jobs []job
	for _, spec := range drivers.Specs() {
		if opts.Drivers != nil && !opts.Drivers[spec.Name] {
			continue
		}
		model := modelFor(spec)
		for _, f := range spec.Fields {
			if f.Pattern.TimesOut() {
				jobs = append(jobs, job{model: model, field: f})
			}
		}
	}
	rep.Rows = make([]MemBudgetRow, len(jobs))

	check := func(j job, maxStates int, compact bool) (*kiss.Result, error) {
		prog, err := parseHarness(j.model.HarnessProgram(j.field.Name, false))
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", j.model.Spec.Name, j.field.Name, err)
		}
		return memBudgetConfig(j.field.Name, maxStates, opts, compact).Check(prog)
	}
	run := func(i int) error {
		j := jobs[i]
		exact, err := check(j, maxStates, false)
		if err != nil {
			return err
		}
		compact, err := check(j, maxStates*mult, true)
		if err != nil {
			return err
		}
		row := MemBudgetRow{
			Driver:         j.model.Spec.Name,
			Field:          j.field.Name,
			ExactVerdict:   exact.Verdict.String(),
			ExactStates:    exact.States,
			CompactVerdict: compact.Verdict.String(),
			CompactStates:  compact.States,
			Completed:      compact.Verdict != kiss.ResourceBound,
			Memory:         compact.Stats.Memory,
		}
		if exact.Verdict == kiss.ResourceBound {
			row.ExactReason = stats.BoundName(exact.Stats.Reason)
		}
		if compact.Verdict == kiss.ResourceBound {
			row.CompactReason = stats.BoundName(compact.Stats.Reason)
		}
		if m := row.Memory; m != nil {
			row.PeakRAMBytes = m.FrontierPeakRAM + m.VisitedBytes
		}
		tripped := exact.Verdict == kiss.ResourceBound && exact.Stats.Reason == kiss.ReasonStates
		row.Improved = tripped && (row.Completed || compact.States >= mult*maxStates)
		rep.Rows[i] = row
		return nil
	}

	workers := opts.Workers
	if workers <= 0 {
		// Each pair runs two searches back to back; halving keeps the
		// default pool from oversubscribing alongside spill I/O.
		workers = max(1, runtime.GOMAXPROCS(0)/2)
		if opts.SearchWorkers > 1 {
			workers = max(1, workers/opts.SearchWorkers)
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			if err := run(i); err != nil {
				return nil, err
			}
		}
	} else {
		var (
			next     atomic.Int64
			wg       sync.WaitGroup
			failOnce sync.Once
			firstErr error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					if err := run(i); err != nil {
						failOnce.Do(func() { firstErr = err })
						return
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	for _, row := range rep.Rows {
		if row.ExactReason == stats.BoundName(kiss.ReasonStates) {
			rep.Tripped++
		}
		if row.Improved {
			rep.Improved++
		}
	}
	return rep, nil
}

// FormatMemBudget renders the study as the EXPERIMENTS.md table: field,
// old verdict at MaxStates, new verdict, peak search RAM, spilled bytes.
func FormatMemBudget(rep *MemBudgetReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory-budget study: hard fields at MaxStates=%d (exact) vs ceiling=%d (compact+spill, %d MiB budget)\n",
		rep.MaxStates, rep.CeilingStates, rep.MemBudgetMB)
	fmt.Fprintf(&b, "%-28s %-22s %-22s %10s %12s %8s\n",
		"Field", "Exact verdict", "Compact verdict", "PeakRAM", "Spilled", "FP rate")
	for _, r := range rep.Rows {
		name := r.Driver + "." + r.Field
		ev, cv := r.ExactVerdict, r.CompactVerdict
		if r.ExactReason != "" {
			ev += "(" + r.ExactReason + ")"
		}
		if r.CompactReason != "" {
			cv += "(" + r.CompactReason + ")"
		}
		cv += fmt.Sprintf(" %d states", r.CompactStates)
		spilled, fp := int64(0), 0.0
		if r.Memory != nil {
			spilled = r.Memory.SpilledBytes
			fp = r.Memory.VisitedFPRate
		}
		fmt.Fprintf(&b, "%-28s %-22s %-22s %9.1fM %11.1fM %8.5f\n",
			name, ev, cv, float64(r.PeakRAMBytes)/(1<<20), float64(spilled)/(1<<20), fp)
	}
	fmt.Fprintf(&b, "%d/%d MaxStates-tripped fields improved (completed or >=%dx states) under the unchanged budget\n",
		rep.Improved, rep.Tripped, rep.CeilingStates/max(1, rep.MaxStates))
	return b.String()
}

// WriteMemBudget emits the report as one indented JSON document.
func WriteMemBudget(w io.Writer, rep *MemBudgetReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
