package eval

import "testing"

// TestLocksetComparison validates the Section 6.1 flexibility study: the
// lockset baseline flags exactly the fields with conflicting unprotected
// accesses (the permissive-harness race set), and cannot benefit from the
// harness refinement that takes KISS from 71 to 30 warnings.
func TestLocksetComparison(t *testing.T) {
	rows, err := RunLocksetComparison()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatLocksetComparison(rows))
	totalLockset, totalRefined := 0, 0
	for _, r := range rows {
		if r.LocksetRacy != r.KissRaces {
			t.Errorf("%s: lockset flags %d fields, KISS permissive finds %d",
				r.Driver, r.LocksetRacy, r.KissRaces)
		}
		totalLockset += r.LocksetRacy
		if r.PaperRefined >= 0 {
			totalRefined += r.KissRefined
		}
	}
	if totalLockset != 71 {
		t.Errorf("lockset total %d, want 71", totalLockset)
	}
	if totalRefined != 30 {
		t.Errorf("refined total %d, want 30", totalRefined)
	}
}
