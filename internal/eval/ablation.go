package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	kiss "repro"
)

// This file holds the macro-step compression ablation: the driver corpus
// run twice — compression on (the default) and off (the seed's
// per-statement search) — with verdict/position identity verified at
// several SearchWorkers settings and the stored-state/throughput deltas
// measured. kissbench -macrobench is its command-line front end; `make
// bench` archives its JSON next to the earlier PR benchmark records.

// AblationOptions configure RunMacroAblation.
type AblationOptions struct {
	// Budget is the per-field resource bound (zero = DefaultBudget).
	Budget kiss.Budget
	// Drivers restricts the corpus subset (nil = all 18 drivers).
	Drivers map[string]bool
	// Workers bounds the corpus field-check pool per arm (0 = auto).
	Workers int
	// WorkerCounts are the SearchWorkers settings at which the
	// compressed arm must reproduce the uncompressed arm's verdicts and
	// failure positions field by field. Default: 0, 1, 8.
	WorkerCounts []int
}

// MacroArm is one measured arm of the ablation.
type MacroArm struct {
	MacroSteps bool `json:"macro_steps"`
	// StatesStored counts fingerprinted-and-stored states summed over the
	// corpus; StatesStepped counts executed transitions including the ones
	// folded inside macro steps. With compression off the two coincide.
	StatesStored  int     `json:"states_stored"`
	StatesStepped int     `json:"states_stepped"`
	Steps         int     `json:"steps"`
	Races         int     `json:"races"`
	NoRaces       int     `json:"no_races"`
	Timeouts      int     `json:"timeouts"`
	Seconds       float64 `json:"seconds"`
	StatesPerSec  float64 `json:"states_per_sec"`
	AllocBytes    uint64  `json:"alloc_bytes"`
}

// MacroAblation is the full report of RunMacroAblation.
type MacroAblation struct {
	WorkerCounts []int    `json:"search_workers"`
	Off          MacroArm `json:"off"`
	On           MacroArm `json:"on"`
	// CompressionRatio is off/on stored states over the fields that
	// completed (no budget trip) in both arms — the fields whose two runs
	// covered the same state space. Budget-tripped fields store exactly
	// MaxStates states in either arm while covering *different* amounts
	// of the space (the compressed arm explores several times more states
	// before tripping), so including them dilutes the ratio without
	// measuring compression; AggregateRatio includes them anyway for the
	// whole-corpus storage picture.
	CompressionRatio float64 `json:"compression_ratio"`
	AggregateRatio   float64 `json:"aggregate_ratio"`
	CompletedFields  int     `json:"completed_fields"`
	BoundedFields    int     `json:"bounded_fields"`
	// Identical reports that every (driver, field) produced the same
	// verdict and failure position in both arms at every worker count.
	Identical  bool     `json:"identical"`
	Mismatches []string `json:"mismatches,omitempty"`
}

func defaultWorkerCounts() []int { return []int{0, 1, 8} }

// runArm runs one corpus arm and folds its results into a MacroArm with
// wall time and allocation deltas around the run.
func runArm(opts Options, macroOff bool) (MacroArm, []*DriverResult, error) {
	opts.DisableMacroSteps = macroOff
	arm := MacroArm{MacroSteps: !macroOff}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	results, err := RunCorpus(opts)
	arm.Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	arm.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
	if err != nil {
		return arm, nil, err
	}
	for _, dr := range results {
		arm.Races += dr.Races
		arm.NoRaces += dr.NoRace
		arm.Timeouts += dr.Timeouts
		for _, fr := range dr.Fields {
			arm.StatesStored += fr.Stats.States
			arm.Steps += fr.Stats.Steps
			stepped := fr.Stats.StatesStepped
			if stepped <= 0 {
				stepped = fr.Stats.States
			}
			arm.StatesStepped += stepped
		}
	}
	if arm.Seconds > 0 {
		arm.StatesPerSec = float64(arm.StatesStored) / arm.Seconds
	}
	return arm, results, nil
}

// verdictKeys flattens a corpus run into "driver.field -> verdict@pos"
// for the cross-arm identity comparison. States/steps are deliberately
// excluded: those are exactly what compression changes.
func verdictKeys(results []*DriverResult) map[string]string {
	out := map[string]string{}
	for _, dr := range results {
		for _, fr := range dr.Fields {
			key := fr.Driver + "." + fr.Field
			v := fr.Verdict.String()
			if fr.Pos != "" {
				v += "@" + fr.Pos
			}
			out[key] = v
		}
	}
	return out
}

// RunMacroAblation measures macro-step compression on the driver corpus.
// The uncompressed arm (run once, sequentially searched) is the
// reference; the compressed arm is run at every opts.WorkerCounts
// setting and each run's per-field verdicts and failure positions must
// match the reference exactly. (Cross-worker-count identity of the
// uncompressed search is already enforced by the parallel-search tests.)
// The timed/allocation comparison uses the WorkerCounts[0] runs of both
// arms so the two measurements exercise the same search engine shape.
func RunMacroAblation(opts AblationOptions) (*MacroAblation, error) {
	wcs := opts.WorkerCounts
	if len(wcs) == 0 {
		wcs = defaultWorkerCounts()
	}
	base := Options{Budget: opts.Budget, Drivers: opts.Drivers, Workers: opts.Workers, SearchWorkers: wcs[0]}

	rep := &MacroAblation{WorkerCounts: wcs, Identical: true}
	var err error
	var refResults, onResults []*DriverResult
	rep.Off, refResults, err = runArm(base, true)
	if err != nil {
		return nil, fmt.Errorf("uncompressed arm: %w", err)
	}
	ref := verdictKeys(refResults)

	for i, sw := range wcs {
		onOpts := base
		onOpts.SearchWorkers = sw
		arm, results, err := runArm(onOpts, false)
		if err != nil {
			return nil, fmt.Errorf("compressed arm (search-workers=%d): %w", sw, err)
		}
		if i == 0 {
			rep.On = arm
			onResults = results
		}
		got := verdictKeys(results)
		var keys []string
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if got[k] != ref[k] {
				rep.Identical = false
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("%s (search-workers=%d): on=%s off=%s", k, sw, got[k], ref[k]))
			}
		}
	}

	rep.AggregateRatio = 1
	if rep.On.StatesStored > 0 {
		rep.AggregateRatio = float64(rep.Off.StatesStored) / float64(rep.On.StatesStored)
	}

	// Completed-fields ratio: restrict to fields neither arm bounded.
	offStored, onStored := fieldStored(refResults), fieldStored(onResults)
	var offSum, onSum int
	for key, off := range offStored {
		on, ok := onStored[key]
		if !ok {
			continue
		}
		if off.bounded || on.bounded {
			rep.BoundedFields++
			continue
		}
		rep.CompletedFields++
		offSum += off.stored
		onSum += on.stored
	}
	rep.CompressionRatio = 1
	if onSum > 0 {
		rep.CompressionRatio = float64(offSum) / float64(onSum)
	}
	return rep, nil
}

type fieldStorage struct {
	stored  int
	bounded bool
}

func fieldStored(results []*DriverResult) map[string]fieldStorage {
	out := map[string]fieldStorage{}
	for _, dr := range results {
		for _, fr := range dr.Fields {
			out[fr.Driver+"."+fr.Field] = fieldStorage{
				stored:  fr.Stats.States,
				bounded: fr.Verdict == Timeout || fr.Verdict == Canceled,
			}
		}
	}
	return out
}

// WriteMacroAblation emits the report as a single JSON object — the
// BENCH_PR4.json payload.
func WriteMacroAblation(w io.Writer, rep *MacroAblation) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatMacroAblation renders the report for terminals.
func FormatMacroAblation(rep *MacroAblation) string {
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("Macro-step compression ablation (search-workers identity set %v)\n", rep.WorkerCounts)
	add("%-14s %13s %14s %10s %8s %9s %11s %11s\n",
		"arm", "states-stored", "states-stepped", "steps", "races", "sec", "states/s", "alloc-MB")
	for _, arm := range []MacroArm{rep.Off, rep.On} {
		name := "per-statement"
		if arm.MacroSteps {
			name = "macro-steps"
		}
		add("%-14s %13d %14d %10d %8d %9.2f %11.0f %11.1f\n",
			name, arm.StatesStored, arm.StatesStepped, arm.Steps, arm.Races,
			arm.Seconds, arm.StatesPerSec, float64(arm.AllocBytes)/(1<<20))
	}
	add("compression ratio (stored off/on, %d completed fields): %.2fx\n", rep.CompletedFields, rep.CompressionRatio)
	add("aggregate stored ratio (incl. %d budget-bounded fields): %.2fx\n", rep.BoundedFields, rep.AggregateRatio)
	if rep.Identical {
		add("verdicts and failure positions identical across arms and worker counts\n")
	} else {
		add("IDENTITY MISMATCHES:\n")
		for _, m := range rep.Mismatches {
			add("  %s\n", m)
		}
	}
	return string(b)
}
