package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// This file holds the macro-step ablation: the driver corpus run across
// four arms — compression off (the seed's per-statement search),
// compression on with fold memoization off (the PR 4 configuration),
// compression + memoization with call summaries off (the PR 6
// configuration), and compression + memoization + call-grained procedure
// summaries (the default) — with verdict/position identity verified at
// several SearchWorkers settings and the stored-state/throughput/
// allocation deltas measured. kissbench -macrobench is its command-line
// front end; `make bench` archives its JSON next to the earlier PR
// benchmark records.

// AblationOptions configure RunMacroAblation.
type AblationOptions struct {
	// MaxStates is the per-field state bound (zero = DefaultMaxStates).
	MaxStates int
	// Drivers restricts the corpus subset (nil = all 18 drivers).
	Drivers map[string]bool
	// Workers bounds the corpus field-check pool per arm (0 = auto).
	Workers int
	// WorkerCounts are the SearchWorkers settings at which both macro
	// arms must reproduce the per-statement arm's verdicts and failure
	// positions field by field. Default: 0, 1, 8.
	WorkerCounts []int
	// MemoMB overrides the memo arm's table budget in MiB (0: default).
	MemoMB int
	// SummaryMB overrides the summary arm's table budget in MiB
	// (0: default).
	SummaryMB int
}

// MacroArm is one measured arm of the ablation.
type MacroArm struct {
	MacroSteps    bool `json:"macro_steps"`
	FoldMemo      bool `json:"fold_memo"`
	CallSummaries bool `json:"call_summaries"`
	// StatesStored counts fingerprinted-and-stored states summed over the
	// corpus; StatesStepped counts executed transitions including the ones
	// folded inside macro steps. With compression off the two coincide.
	StatesStored  int     `json:"states_stored"`
	StatesStepped int     `json:"states_stepped"`
	Steps         int     `json:"steps"`
	Races         int     `json:"races"`
	NoRaces       int     `json:"no_races"`
	Timeouts      int     `json:"timeouts"`
	Seconds       float64 `json:"seconds"`
	StatesPerSec  float64 `json:"states_per_sec"`
	// SteppedPerSec is StatesStepped over wall time — the traversal rate,
	// the only throughput number comparable across arms (stored-state
	// rates divide by compression).
	SteppedPerSec float64 `json:"stepped_per_sec"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	// Memo table totals summed over the corpus (memo arm only).
	MemoHits       int64   `json:"memo_hits,omitempty"`
	MemoMisses     int64   `json:"memo_misses,omitempty"`
	MemoHitRatio   float64 `json:"memo_hit_ratio,omitempty"`
	MemoStepsSaved int64   `json:"memo_steps_saved,omitempty"`
	MemoEvictions  int64   `json:"memo_evictions,omitempty"`
	// Summary table totals summed over the corpus (summary arm only).
	SumHits       int64   `json:"summary_hits,omitempty"`
	SumMisses     int64   `json:"summary_misses,omitempty"`
	SumHitRatio   float64 `json:"summary_hit_ratio,omitempty"`
	SumStepsSaved int64   `json:"summary_steps_saved,omitempty"`
	SumComposed   int64   `json:"summary_composed,omitempty"`
	SumEvictions  int64   `json:"summary_evictions,omitempty"`
}

// MacroAblation is the full report of RunMacroAblation.
type MacroAblation struct {
	WorkerCounts []int    `json:"search_workers"`
	Off          MacroArm `json:"off"`
	On           MacroArm `json:"on"`
	Memo         MacroArm `json:"memo"`
	Sum          MacroArm `json:"sum"`
	// CompressionRatio is off/memo stored states over the fields that
	// completed (no budget trip) in both runs — the fields whose runs
	// covered the same state space. Budget-tripped fields store exactly
	// MaxStates states in either arm while covering *different* amounts
	// of the space (the compressed arm explores several times more states
	// before tripping), so including them dilutes the ratio without
	// measuring compression; AggregateRatio includes them anyway for the
	// whole-corpus storage picture. The memo arm stores exactly the
	// states the plain macro arm stores (replay is bit-identical), so the
	// ratio measures compression for both.
	CompressionRatio float64 `json:"compression_ratio"`
	AggregateRatio   float64 `json:"aggregate_ratio"`
	CompletedFields  int     `json:"completed_fields"`
	BoundedFields    int     `json:"bounded_fields"`
	// Identical reports that every (driver, field) produced the same
	// verdict and failure position in all three arms at every worker
	// count.
	Identical  bool     `json:"identical"`
	Mismatches []string `json:"mismatches,omitempty"`
}

func defaultWorkerCounts() []int { return []int{0, 1, 8} }

// runArm runs one corpus arm and folds its results into a MacroArm with
// wall time and allocation deltas around the run.
func runArm(opts Options, macroOff, memoOff, sumOff bool) (MacroArm, []*DriverResult, error) {
	opts.DisableMacroSteps = macroOff
	opts.DisableFoldMemo = memoOff
	opts.DisableCallSummaries = sumOff
	arm := MacroArm{
		MacroSteps:    !macroOff,
		FoldMemo:      !macroOff && !memoOff,
		CallSummaries: !macroOff && !sumOff,
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	results, err := RunCorpus(opts)
	arm.Seconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	arm.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
	if err != nil {
		return arm, nil, err
	}
	for _, dr := range results {
		arm.Races += dr.Races
		arm.NoRaces += dr.NoRace
		arm.Timeouts += dr.Timeouts
		for _, fr := range dr.Fields {
			arm.StatesStored += fr.Stats.States
			arm.Steps += fr.Stats.Steps
			stepped := fr.Stats.StatesStepped
			if stepped <= 0 {
				stepped = fr.Stats.States
			}
			arm.StatesStepped += stepped
			if m := fr.Stats.Memo; m != nil {
				arm.MemoHits += m.Hits
				arm.MemoMisses += m.Misses
				arm.MemoStepsSaved += m.StepsSaved
				arm.MemoEvictions += m.Evictions
			}
			if sm := fr.Stats.Summary; sm != nil {
				arm.SumHits += sm.Hits
				arm.SumMisses += sm.Misses
				arm.SumStepsSaved += sm.StepsSaved
				arm.SumComposed += sm.Composed
				arm.SumEvictions += sm.Evictions
			}
		}
	}
	if arm.Seconds > 0 {
		arm.StatesPerSec = float64(arm.StatesStored) / arm.Seconds
		arm.SteppedPerSec = float64(arm.StatesStepped) / arm.Seconds
	}
	if total := arm.MemoHits + arm.MemoMisses; total > 0 {
		arm.MemoHitRatio = float64(arm.MemoHits) / float64(total)
	}
	if total := arm.SumHits + arm.SumMisses; total > 0 {
		arm.SumHitRatio = float64(arm.SumHits) / float64(total)
	}
	return arm, results, nil
}

// verdictKeys flattens a corpus run into "driver.field -> verdict@pos"
// for the cross-arm identity comparison. States/steps are deliberately
// excluded: those are exactly what compression changes.
func verdictKeys(results []*DriverResult) map[string]string {
	out := map[string]string{}
	for _, dr := range results {
		for _, fr := range dr.Fields {
			key := fr.Driver + "." + fr.Field
			v := fr.Verdict.String()
			if fr.Pos != "" {
				v += "@" + fr.Pos
			}
			out[key] = v
		}
	}
	return out
}

// RunMacroAblation measures macro-step compression, fold memoization,
// and call-grained procedure summaries on the driver corpus. The
// uncompressed arm (run once, sequentially searched) is the reference;
// the macro, macro+memo, and macro+memo+sum arms run at every
// opts.WorkerCounts setting and each run's per-field verdicts and
// failure positions must match the reference exactly. (Cross-worker-count
// identity of the uncompressed search is already enforced by the
// parallel-search tests.) The timed/allocation comparison uses the
// WorkerCounts[0] runs of all arms so the measurements exercise the same
// search engine shape.
func RunMacroAblation(opts AblationOptions) (*MacroAblation, error) {
	wcs := opts.WorkerCounts
	if len(wcs) == 0 {
		wcs = defaultWorkerCounts()
	}
	base := Options{
		MaxStates: opts.MaxStates, Drivers: opts.Drivers, Workers: opts.Workers,
		SearchWorkers: wcs[0], MemoMB: opts.MemoMB, SummaryMB: opts.SummaryMB,
	}

	rep := &MacroAblation{WorkerCounts: wcs, Identical: true}
	var err error
	var refResults, memoResults []*DriverResult
	rep.Off, refResults, err = runArm(base, true, true, true)
	if err != nil {
		return nil, fmt.Errorf("uncompressed arm: %w", err)
	}
	ref := verdictKeys(refResults)

	compare := func(results []*DriverResult, label string, sw int) {
		got := verdictKeys(results)
		var keys []string
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if got[k] != ref[k] {
				rep.Identical = false
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("%s (%s, search-workers=%d): got=%s off=%s", k, label, sw, got[k], ref[k]))
			}
		}
	}

	for i, sw := range wcs {
		armOpts := base
		armOpts.SearchWorkers = sw
		arm, results, err := runArm(armOpts, false, true, true)
		if err != nil {
			return nil, fmt.Errorf("macro arm (search-workers=%d): %w", sw, err)
		}
		if i == 0 {
			rep.On = arm
		}
		compare(results, "macro", sw)

		arm, results, err = runArm(armOpts, false, false, true)
		if err != nil {
			return nil, fmt.Errorf("macro+memo arm (search-workers=%d): %w", sw, err)
		}
		if i == 0 {
			rep.Memo = arm
			memoResults = results
		}
		compare(results, "macro+memo", sw)

		arm, results, err = runArm(armOpts, false, false, false)
		if err != nil {
			return nil, fmt.Errorf("macro+memo+sum arm (search-workers=%d): %w", sw, err)
		}
		if i == 0 {
			rep.Sum = arm
		}
		compare(results, "macro+memo+sum", sw)
	}

	rep.AggregateRatio = 1
	if rep.Memo.StatesStored > 0 {
		rep.AggregateRatio = float64(rep.Off.StatesStored) / float64(rep.Memo.StatesStored)
	}

	// Completed-fields ratio: restrict to fields neither run bounded.
	offStored, memoStored := fieldStored(refResults), fieldStored(memoResults)
	var offSum, memoSum int
	for key, off := range offStored {
		on, ok := memoStored[key]
		if !ok {
			continue
		}
		if off.bounded || on.bounded {
			rep.BoundedFields++
			continue
		}
		rep.CompletedFields++
		offSum += off.stored
		memoSum += on.stored
	}
	rep.CompressionRatio = 1
	if memoSum > 0 {
		rep.CompressionRatio = float64(offSum) / float64(memoSum)
	}
	return rep, nil
}

type fieldStorage struct {
	stored  int
	bounded bool
}

func fieldStored(results []*DriverResult) map[string]fieldStorage {
	out := map[string]fieldStorage{}
	for _, dr := range results {
		for _, fr := range dr.Fields {
			out[fr.Driver+"."+fr.Field] = fieldStorage{
				stored:  fr.Stats.States,
				bounded: fr.Verdict == Timeout || fr.Verdict == Canceled,
			}
		}
	}
	return out
}

// WriteMacroAblation emits the report as a single JSON object — the
// BENCH_PR6.json payload.
func WriteMacroAblation(w io.Writer, rep *MacroAblation) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatMacroAblation renders the report for terminals.
func FormatMacroAblation(rep *MacroAblation) string {
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	add("Macro-step ablation (search-workers identity set %v)\n", rep.WorkerCounts)
	add("%-14s %13s %14s %10s %8s %9s %11s %11s %11s\n",
		"arm", "states-stored", "states-stepped", "steps", "races", "sec", "states/s", "stepped/s", "alloc-MB")
	for _, arm := range []MacroArm{rep.Off, rep.On, rep.Memo, rep.Sum} {
		name := "per-statement"
		switch {
		case arm.CallSummaries:
			name = "macro+memo+sum"
		case arm.MacroSteps && arm.FoldMemo:
			name = "macro+memo"
		case arm.MacroSteps:
			name = "macro-steps"
		}
		add("%-14s %13d %14d %10d %8d %9.2f %11.0f %11.0f %11.1f\n",
			name, arm.StatesStored, arm.StatesStepped, arm.Steps, arm.Races,
			arm.Seconds, arm.StatesPerSec, arm.SteppedPerSec, float64(arm.AllocBytes)/(1<<20))
	}
	add("compression ratio (stored off/memo, %d completed fields): %.2fx\n", rep.CompletedFields, rep.CompressionRatio)
	add("aggregate stored ratio (incl. %d budget-bounded fields): %.2fx\n", rep.BoundedFields, rep.AggregateRatio)
	add("memo: hit ratio %.1f%% (%d hits / %d misses), %d steps saved, %d evictions\n",
		rep.Memo.MemoHitRatio*100, rep.Memo.MemoHits, rep.Memo.MemoMisses,
		rep.Memo.MemoStepsSaved, rep.Memo.MemoEvictions)
	add("summaries: hit ratio %.1f%% (%d hits / %d misses), %d steps saved, %d composed, %d evictions\n",
		rep.Sum.SumHitRatio*100, rep.Sum.SumHits, rep.Sum.SumMisses,
		rep.Sum.SumStepsSaved, rep.Sum.SumComposed, rep.Sum.SumEvictions)
	if rep.Identical {
		add("verdicts and failure positions identical across arms and worker counts\n")
	} else {
		add("IDENTITY MISMATCHES:\n")
		for _, m := range rep.Mismatches {
			add("  %s\n", m)
		}
	}
	return string(b)
}
