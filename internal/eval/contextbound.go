package eval

import (
	"fmt"
	"strings"

	kiss "repro"
	"repro/internal/randprog"
)

// ContextBoundRow aggregates, over a population of random 2-thread
// programs, how many errors each analysis finds: the concurrent explorer
// at increasing context-switch bounds, and KISS at ts bound 1.
//
// This study quantifies the observation that seeded the context-bounded
// analysis line of work: for a 2-threaded program, the KISS-transformed
// sequential program covers exactly the executions with at most two
// context switches (Section 2), so its detection count must sit between
// the CB=2 and CB=unbounded columns — and equal CB=2 exactly.
type ContextBoundRow struct {
	Bound  int // -1 = unbounded
	Errors int
}

// ContextBoundStudy is the full result.
type ContextBoundStudy struct {
	Programs   int
	Rows       []ContextBoundRow
	KissErrors int // KISS at ts=1 over the same population
}

// RunContextBound evaluates bounds 0..maxBound plus unbounded over
// `programs` random two-threaded programs.
func RunContextBound(programs int, maxBound int) (*ContextBoundStudy, error) {
	study := &ContextBoundStudy{Programs: programs}
	counts := make([]int, maxBound+2) // [0..maxBound] + unbounded

	for seed := int64(0); seed < int64(programs); seed++ {
		src := randprog.GenerateTwoThreaded(seed, randprog.Default)

		for b := 0; b <= maxBound; b++ {
			prog, err := kiss.Parse(src)
			if err != nil {
				return nil, err
			}
			res, err := kiss.Explore(prog, kiss.WithMaxStates(300000), kiss.WithContextBound(b))
			if err != nil {
				return nil, err
			}
			if res.Verdict == kiss.Error {
				counts[b]++
			}
		}
		prog, err := kiss.Parse(src)
		if err != nil {
			return nil, err
		}
		unb, err := kiss.Explore(prog, kiss.WithMaxStates(300000))
		if err != nil {
			return nil, err
		}
		if unb.Verdict == kiss.Error {
			counts[maxBound+1]++
		}

		kprog, err := kiss.Parse(src)
		if err != nil {
			return nil, err
		}
		kres, err := kiss.Check(kprog, kiss.WithMaxTS(1), kiss.WithMaxStates(300000))
		if err != nil {
			return nil, err
		}
		if kres.Verdict == kiss.Error {
			study.KissErrors++
		}
	}

	for b := 0; b <= maxBound; b++ {
		study.Rows = append(study.Rows, ContextBoundRow{Bound: b, Errors: counts[b]})
	}
	study.Rows = append(study.Rows, ContextBoundRow{Bound: -1, Errors: counts[maxBound+1]})
	return study, nil
}

// FormatContextBound renders the study.
func FormatContextBound(s *ContextBoundStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Context-bound study over %d random 2-thread programs: errors found\n", s.Programs)
	fmt.Fprintf(&b, "%14s %8s\n", "analysis", "errors")
	for _, r := range s.Rows {
		label := fmt.Sprintf("CB=%d", r.Bound)
		if r.Bound < 0 {
			label = "CB=unbounded"
		}
		fmt.Fprintf(&b, "%14s %8d\n", label, r.Errors)
	}
	fmt.Fprintf(&b, "%14s %8d\n", "KISS ts=1", s.KissErrors)
	b.WriteString("\nKISS at ts=1 matches the 2-context-switch bound exactly on 2-thread\n")
	b.WriteString("programs — the coverage characterization of Section 2 and the seed of\n")
	b.WriteString("context-bounded model checking.\n")
	return b.String()
}
