package eval

import (
	"encoding/json"
	"fmt"
	"io"

	kiss "repro"
)

// Record is the machine-readable form of one field check: the flat
// per-corpus-entry metrics record emitted by kissbench -json. Stats embeds
// the full observability payload (per-phase wall time in seconds,
// states/sec, peak frontier and depth, visited-set size, and the specific
// budget-trip reason when the check was bounded).
type Record struct {
	Driver  string     `json:"driver"`
	Field   string     `json:"field"`
	Pattern string     `json:"pattern"`
	Verdict string     `json:"verdict"`
	Message string     `json:"message,omitempty"`
	Stats   kiss.Stats `json:"stats"`
}

// Records flattens per-driver results into corpus-order records.
func Records(results []*DriverResult) []Record {
	var out []Record
	for _, dr := range results {
		for _, fr := range dr.Fields {
			out = append(out, Record{
				Driver:  fr.Driver,
				Field:   fr.Field,
				Pattern: fr.Pattern.String(),
				Verdict: fr.Verdict.String(),
				Message: fr.Message,
				Stats:   fr.Stats,
			})
		}
	}
	return out
}

// WriteJSON emits one JSON object per corpus entry (JSON Lines), the
// format behind kissbench -json. Records come out in fixed corpus order
// — every field owns a result slot assigned before the worker pool
// starts — so the stream's record and field order is identical at every
// worker count; only the wall-clock numbers inside Stats vary.
func WriteJSON(w io.Writer, results []*DriverResult) error {
	return writeRecords(w, Records(results))
}

// WriteJSONDeterministic is WriteJSON with the wall-clock-dependent
// Stats fields zeroed (per-phase times, states/sec, parallel-search
// diagnostics — see stats.StripTiming). Everything left is a
// deterministic function of (source, config), so two corpus runs at any
// worker counts produce byte-for-byte identical streams — the mode for
// diffing runs and for determinism regression tests.
func WriteJSONDeterministic(w io.Writer, results []*DriverResult) error {
	recs := Records(results)
	for i := range recs {
		recs[i].Stats.StripTiming()
	}
	return writeRecords(w, recs)
}

func writeRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("encoding %s.%s: %w", rec.Driver, rec.Field, err)
		}
	}
	return nil
}
