package eval

// Throwaway profiling harness: run one ablation arm over a mid-size
// driver slice so `go test -cpuprofile` captures that arm's hot path
// in isolation. Gated behind KISS_PROFILE_ARM so the normal test run
// never pays for it.
//
//	KISS_PROFILE_ARM=sum go test ./internal/eval -run TestProfileArm -cpuprofile /tmp/sum.prof
//	KISS_PROFILE_ARM=on  go test ./internal/eval -run TestProfileArm -cpuprofile /tmp/on.prof

import (
	"os"
	"testing"
)

func TestProfileArm(t *testing.T) {
	arm := os.Getenv("KISS_PROFILE_ARM")
	if arm == "" {
		t.Skip("set KISS_PROFILE_ARM=on|memo|sum to profile")
	}
	sel := map[string]bool{
		"gameenum": true, "serenum": true, "toaster/func": true,
		"mouclass": true, "kbdclass": true, "mouser": true, "fdc": true,
	}
	opts := Options{Drivers: sel, Workers: 1}
	switch arm {
	case "on":
		opts.DisableFoldMemo = true
		opts.DisableCallSummaries = true
	case "memo":
		opts.DisableCallSummaries = true
	case "sum":
	default:
		t.Fatalf("unknown arm %q", arm)
	}
	if _, err := RunCorpus(opts); err != nil {
		t.Fatal(err)
	}
}
