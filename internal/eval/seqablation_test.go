package eval

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	kiss "repro"
	"repro/internal/ast"
	"repro/internal/cbseq"
	"repro/internal/drivers"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/seqcheck"
	"repro/internal/sema"
)

// parseCore parses and lowers a source into the core form the cbseq
// transform consumes.
func parseCore(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p, sema.Source); err != nil {
		t.Fatalf("sema: %v", err)
	}
	lower.Program(p)
	return p
}

// The scenario metadata is ground truth for the ablation: every
// scenario's MinSwitches and KissFinds must match what the checkers
// actually report, or the study would grade arms against a wrong key.
func TestScenarioMetadataMatchesCheckers(t *testing.T) {
	t.Parallel()
	for _, sc := range drivers.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := kiss.Parse(sc.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			truth, err := (&kiss.Config{ContextBound: -1, MaxStates: 300000}).Explore(prog)
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			wantBug := sc.MinSwitches >= 0
			if got := truth.Verdict == kiss.Error; got != wantBug {
				t.Fatalf("oracle verdict %v, metadata says buggy=%v", truth.Verdict, wantBug)
			}

			kres, err := (&kiss.Config{MaxTS: 2, MaxStates: 300000}).Check(prog)
			if err != nil {
				t.Fatalf("kiss: %v", err)
			}
			if got := kres.Verdict == kiss.Error; got != sc.KissFinds {
				t.Fatalf("kiss verdict %v, metadata says KissFinds=%v", kres.Verdict, sc.KissFinds)
			}

			// CB(K) finds the bug iff K >= MinSwitches. Probe one bound
			// below the frontier and the frontier itself. The probe runs
			// the transform directly: Config.ContextSwitches treats 0 as
			// "use the default", so it cannot express a K=0 run.
			probe := func(k int) kiss.Verdict {
				out, err := cbseq.Transform(parseCore(t, sc.Source), cbseq.Options{ContextSwitches: k})
				if err != nil {
					t.Fatalf("cb(%d) transform: %v", k, err)
				}
				c, err := sem.Compile(out)
				if err != nil {
					t.Fatalf("cb(%d) compile: %v", k, err)
				}
				r := seqcheck.Check(c, seqcheck.Options{MaxStates: 2_000_000})
				switch r.Verdict {
				case seqcheck.Safe:
					return kiss.Safe
				case seqcheck.Error:
					return kiss.Error
				default:
					t.Fatalf("cb(%d): resource bound tripped", k)
					return kiss.ResourceBound
				}
			}
			if wantBug {
				if v := probe(sc.MinSwitches); v != kiss.Error {
					t.Fatalf("cb(%d) = %v, want Error at the frontier", sc.MinSwitches, v)
				}
				if sc.MinSwitches > 0 {
					if v := probe(sc.MinSwitches - 1); v != kiss.Safe {
						t.Fatalf("cb(%d) = %v, want Safe below the frontier", sc.MinSwitches-1, v)
					}
				}
			} else {
				if v := probe(2); v != kiss.Safe {
					t.Fatalf("cb(2) = %v, want Safe on a safe scenario", v)
				}
			}
		})
	}
}

// The scenarios-only study must come back sound and monotone, with the
// headline CB-only count covering the resumption scenarios KISS misses.
func TestRunSeqAblationScenarios(t *testing.T) {
	t.Parallel()
	rep, err := RunSeqAblation(SeqAblationOptions{Programs: -1, Bounds: []int{1, 3}})
	if err != nil {
		t.Fatalf("RunSeqAblation: %v", err)
	}
	if !rep.Sound || !rep.Monotone {
		t.Fatalf("sound=%v monotone=%v, violations: %v", rep.Sound, rep.Monotone, rep.Violations)
	}
	// resume-once, resume-twice, two-workers: truth-confirmed bugs KISS
	// misses, all within 3 switches.
	if rep.CBOnly < 3 {
		t.Fatalf("CBOnly = %d, want >= 3", rep.CBOnly)
	}
	if rep.KissErrors >= rep.CBErrors[1] {
		t.Fatalf("kiss errors %d should trail cb(3) errors %d", rep.KissErrors, rep.CBErrors[1])
	}

	out := FormatSeqAblation(rep)
	if !strings.Contains(out, "scenario:resume-once") || !strings.Contains(out, "CB-only") {
		t.Fatalf("format output missing expected rows:\n%s", out)
	}

	var buf bytes.Buffer
	if err := WriteSeqAblation(&buf, rep); err != nil {
		t.Fatalf("write: %v", err)
	}
	var back SeqAblationReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.CBOnly != rep.CBOnly || len(back.Rows) != len(rep.Rows) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, rep)
	}
}

// The race-target corpus is outside the CB fragment; a CB-mode corpus
// run must say so per field, not abort or fake verdicts.
func TestCorpusUnderCBReportsUnsupported(t *testing.T) {
	t.Parallel()
	results, err := RunCorpus(Options{
		Sequentialization: kiss.SeqCB,
		ContextSwitches:   2,
		Drivers:           map[string]bool{"tracedrv": true},
	})
	if err != nil {
		t.Fatalf("RunCorpus: %v", err)
	}
	if len(results) != 1 || len(results[0].Fields) == 0 {
		t.Fatalf("unexpected result shape: %+v", results)
	}
	dr := results[0]
	if dr.Unsupported != len(dr.Fields) {
		t.Fatalf("Unsupported = %d, want all %d fields", dr.Unsupported, len(dr.Fields))
	}
	for _, fr := range dr.Fields {
		if fr.Verdict != Unsupported || fr.Message == "" {
			t.Fatalf("field %s: verdict %v message %q", fr.Field, fr.Verdict, fr.Message)
		}
	}
	if out := FormatTable1(results); !strings.Contains(out, "outside the configured sequentialization") {
		t.Fatalf("Table 1 output hides unsupported fields:\n%s", out)
	}
}

// A small random population sweeps the differential property through the
// study path as well: sound and monotone over generated programs.
func TestRunSeqAblationRandom(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := RunSeqAblation(SeqAblationOptions{Programs: 8, Bounds: []int{2, 3}})
	if err != nil {
		t.Fatalf("RunSeqAblation: %v", err)
	}
	if !rep.Sound || !rep.Monotone {
		t.Fatalf("sound=%v monotone=%v, violations: %v", rep.Sound, rep.Monotone, rep.Violations)
	}
	if rep.Subjects != len(drivers.Scenarios())+8 {
		t.Fatalf("subjects = %d", rep.Subjects)
	}
}
