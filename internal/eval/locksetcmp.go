package eval

import (
	"fmt"
	"strings"

	"repro/internal/drivers"
	"repro/internal/lockset"
	"repro/internal/parser"
)

// LocksetRow compares the static lockset baseline against KISS on one
// driver, quantifying the flexibility discussion of Section 6.1: the
// lockset discipline cannot model the refined harness's environment
// constraints (rules A1-A3, driver-specific Ioctl serialization), so its
// warning count stays at the permissive level, while KISS's flexible
// harness eliminates the spurious warnings.
type LocksetRow struct {
	Driver       string
	LocksetRacy  int // fields the lockset baseline flags
	KissRaces    int // Table 1 (permissive) races
	KissRefined  int // Table 2 (refined) races, -1 if not in Table 2
	PaperRaces   int
	PaperRefined int
}

// RunLocksetComparison runs the lockset analyzer over every corpus driver
// model and compares its per-driver warning counts to the KISS results
// (taken from the planted calibration, which RunCorpus validates against
// the paper).
func RunLocksetComparison() ([]LocksetRow, error) {
	var rows []LocksetRow
	for _, spec := range drivers.Specs() {
		model := drivers.Generate(spec)
		src := locksetHarness(model)
		p, err := parser.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("%s: lockset harness does not parse: %w", spec.Name, err)
		}
		rep := lockset.Analyze(p, lockset.DefaultConfig)

		racy := 0
		for _, t := range rep.Racy() {
			if t.Record == "DEVICE_EXTENSION" {
				racy++
			}
		}
		refined := 0
		for _, f := range spec.Fields {
			if f.Pattern.RacesPermissive() && f.Pattern.RacesRefined(spec.IoctlSerialized) {
				refined++
			}
		}
		rows = append(rows, LocksetRow{
			Driver:       spec.Name,
			LocksetRacy:  racy,
			KissRaces:    spec.PaperRaces,
			KissRefined:  refined,
			PaperRaces:   spec.PaperRaces,
			PaperRefined: spec.PaperRacesRefined,
		})
	}
	return rows, nil
}

// locksetHarness builds a whole-program view for the static analysis: the
// model plus a main that allocates the extension and launches every
// dispatch routine (lockset analyses assume any two routines may run
// concurrently — exactly the permissive environment).
func locksetHarness(m *drivers.Model) string {
	var b strings.Builder
	b.WriteString(m.Text)
	b.WriteString("\nfunc main() {\n  var e;\n  e = new DEVICE_EXTENSION;\n")
	seen := map[string]bool{}
	for _, routines := range m.FieldRoutines {
		for _, r := range routines {
			if !seen[r] {
				seen[r] = true
				fmt.Fprintf(&b, "  async %s(e);\n", r)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// FormatLocksetComparison renders the study.
func FormatLocksetComparison(rows []LocksetRow) string {
	var b strings.Builder
	b.WriteString("Lockset baseline vs KISS (Section 6.1 flexibility comparison)\n")
	fmt.Fprintf(&b, "%-18s %9s %16s %14s\n", "Driver", "Lockset", "KISS permissive", "KISS refined")
	tl, tp, tr := 0, 0, 0
	for _, r := range rows {
		refined := "-"
		if r.PaperRefined >= 0 {
			refined = fmt.Sprint(r.KissRefined)
			tr += r.KissRefined
		}
		fmt.Fprintf(&b, "%-18s %9d %16d %14s\n", r.Driver, r.LocksetRacy, r.KissRaces, refined)
		tl += r.LocksetRacy
		tp += r.KissRaces
	}
	fmt.Fprintf(&b, "%-18s %9d %16d %14d\n", "Total", tl, tp, tr)
	b.WriteString("\nThe lockset discipline cannot model the OS's dispatch constraints\n")
	b.WriteString("(rules A1-A3, serialized Ioctls) or non-lock synchronization, so its\n")
	b.WriteString("warning count stays at the permissive level; KISS's refinable harness\n")
	b.WriteString("eliminates the spurious warnings (71 -> 30 in the paper).\n")
	return b.String()
}
