package eval

import (
	"fmt"
	"strings"

	kiss "repro"
	"repro/internal/randprog"
)

// SchedulerRow aggregates one scheduling policy's coverage and cost over
// the random-program population.
type SchedulerRow struct {
	Scheduler   kiss.Scheduler
	BugsFound   int
	TotalStates int
}

// SchedulerStudy compares the paper's fully nondeterministic scheduler
// with the cheaper drain-all and at-calls-only policies (Section 4: "A
// more sophisticated scheduler can be provided by writing a different
// implementation of schedule"), measuring bugs found and total states
// explored over `programs` random concurrent programs at ts bound 2.
type SchedulerStudy struct {
	Programs int
	Rows     []SchedulerRow
}

// RunSchedulerStudy executes the comparison.
func RunSchedulerStudy(programs int) (*SchedulerStudy, error) {
	study := &SchedulerStudy{Programs: programs}
	policies := []kiss.Scheduler{kiss.SchedulerNondet, kiss.SchedulerDrainAll, kiss.SchedulerAtCallsOnly}
	rows := make([]SchedulerRow, len(policies))
	for i, p := range policies {
		rows[i].Scheduler = p
	}
	for seed := int64(0); seed < int64(programs); seed++ {
		src := randprog.Generate(seed, randprog.Default)
		for i, policy := range policies {
			prog, err := kiss.Parse(src)
			if err != nil {
				return nil, err
			}
			res, err := kiss.Check(prog, kiss.WithMaxTS(2), kiss.WithScheduler(policy), kiss.WithMaxStates(300000))
			if err != nil {
				return nil, err
			}
			if res.Verdict == kiss.Error {
				rows[i].BugsFound++
			}
			rows[i].TotalStates += res.States
		}
	}
	study.Rows = rows
	return study, nil
}

// FormatSchedulerStudy renders the study.
func FormatSchedulerStudy(s *SchedulerStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduler-policy study over %d random programs (ts bound 2)\n", s.Programs)
	fmt.Fprintf(&b, "%-16s %10s %14s\n", "scheduler", "bugs", "total states")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-16s %10d %14d\n", r.Scheduler, r.BugsFound, r.TotalStates)
	}
	b.WriteString("\nRestricted schedulers trade coverage for cost; hand-crafted programs\n")
	b.WriteString("separating them are in scheduler_test.go (staged and straight-line bugs).\n")
	return b.String()
}
