// Package eval regenerates the experimental results of the KISS paper:
// Table 1 (per-driver race counts under the permissive harness), Table 2
// (counts under the refined harness), the reference-counting experiments
// of Section 6, and two ablation studies quantifying claims of Sections 1
// and 4 (interleaving blowup avoided; the ts coverage/cost knob).
package eval

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	kiss "repro"
	"repro/internal/cbseq"
	"repro/internal/drivers"
	"repro/internal/service"
)

// FieldVerdict is the per-field outcome of a race-checking run.
type FieldVerdict int

const (
	// NoRace: the sequential state space was exhausted with no violation.
	NoRace FieldVerdict = iota
	// Race: a conflicting-access pair was found.
	Race
	// Timeout: the per-field resource bound was exhausted first.
	Timeout
	// Canceled: the corpus run's context was canceled (or its deadline
	// expired) before or during this field's check. Distinct from Timeout,
	// which is the paper's per-field budget; a canceled corpus returns
	// partial results without error.
	Canceled
	// Unsupported: the configured sequentialization cannot express this
	// field's check (the CB transform rejects race targets and heap-shaped
	// programs). The field is reported, not silently dropped, so a CB-mode
	// corpus run stays honest about its coverage.
	Unsupported
)

func (v FieldVerdict) String() string {
	switch v {
	case NoRace:
		return "no-race"
	case Race:
		return "race"
	case Canceled:
		return "canceled"
	case Unsupported:
		return "unsupported"
	default:
		return "timeout"
	}
}

// FieldResult is the outcome for one device-extension field.
type FieldResult struct {
	Driver  string
	Field   string
	Pattern drivers.FieldPattern
	Verdict FieldVerdict
	States  int
	Steps   int
	Message string
	// Pos is the failing statement's source position (Race verdicts only) —
	// the identity key the macro-step ablation compares across arms.
	Pos string
	// Stats is the full per-field metrics record (per-phase wall time,
	// states/sec, peaks, visited set, budget-trip reason). Its timing
	// fields are wall-clock-dependent; determinism comparisons strip them
	// (Stats.StripTiming).
	Stats kiss.Stats
}

// DriverResult aggregates one driver's row.
type DriverResult struct {
	Spec        *drivers.DriverSpec
	ModelLOC    int
	Fields      []FieldResult
	Races       int
	NoRace      int
	Timeouts    int
	Canceled    int
	Unsupported int
}

// Options configure a corpus run.
type Options struct {
	// MaxStates is the per-field state bound, the analogue of the paper's
	// "20 minutes of CPU time and 800MB of memory" per run. The default
	// (zero) is DefaultMaxStates.
	MaxStates int
	// Refined selects the refined harness (rules A1-A3 + driver-specific).
	Refined bool
	// Only restricts the run to the given driver->fields subset (Table 2
	// reruns only the fields that raced in Table 1). Nil means all fields.
	Only map[string]map[string]bool
	// Drivers restricts to a subset of driver names (nil = all).
	Drivers map[string]bool
	// Workers bounds the number of concurrently running field checks. Each
	// field is an independent transform-then-check problem (the reduction's
	// whole point), so the fan-out is embarrassingly parallel. 0 means
	// runtime.GOMAXPROCS(0); results are deterministic — identical to the
	// Workers: 1 run — at any setting, because every field has a fixed slot
	// in the output and aggregation happens after the pool drains.
	Workers int
	// SearchWorkers is the per-field search parallelism: each field check
	// runs its state-space search with this many workers (kiss.Config.
	// SearchWorkers). The two axes compose under one core budget: when
	// Workers is left 0 (auto) and SearchWorkers > 1, the field-level pool
	// shrinks to GOMAXPROCS/SearchWorkers so the run does not oversubscribe
	// total cores. Verdicts are independent of both settings. 0 keeps the
	// sequential per-field search.
	SearchWorkers int
	// DisableMacroSteps turns off macro-step compression for every field
	// check (ablation arm; see kiss.Config.DisableMacroSteps). Verdicts are
	// identical either way; only stored-state counts and speed differ.
	DisableMacroSteps bool
	// DisableFoldMemo turns off fold memoization for every field check
	// (ablation arm; see kiss.Config.DisableFoldMemo). Results are
	// bit-identical either way; only wall time and the Stats.Memo
	// diagnostics differ.
	DisableFoldMemo bool
	// MemoMB is the per-field fold-memo byte budget in MiB (0: default).
	MemoMB int
	// DisableCallSummaries turns off call-grained procedure summaries for
	// every field check (ablation arm; see kiss.Config.
	// DisableCallSummaries). Results are bit-identical either way; only
	// wall time and the Stats.Summary diagnostics differ.
	DisableCallSummaries bool
	// SummaryMB is the per-field summary-table byte budget in MiB
	// (0: default).
	SummaryMB int
	// VisitedMode selects the visited-set representation for every field
	// check (kiss.Config.VisitedMode): "" or kiss.VisitedExact keeps the
	// exact fingerprint set; kiss.VisitedCompact stores fingerprints in a
	// blocked Bloom filter, which can only shrink the explored set.
	VisitedMode string
	// MemBudgetMB caps each field check's search memory in MiB
	// (kiss.Config.MemBudgetMB): the BFS frontier spills to disk past its
	// share and a compact filter is sized to the rest. 0 = unlimited.
	MemBudgetMB int
	// Sequentialization selects the transform for every field check
	// (kiss.Config.Sequentialization): "" or kiss.SeqKISS keeps the KISS
	// translation; kiss.SeqCB runs the context-bounded transform. The
	// race-target corpus is outside the CB fragment, so under SeqCB the
	// fields come back with the Unsupported verdict — the knob exists so
	// corpus sweeps report that honestly rather than aborting.
	Sequentialization string
	// ContextSwitches is the CB bound (kiss.Config.ContextSwitches;
	// 0 = kiss.DefaultContextSwitches). Ignored unless Sequentialization
	// is kiss.SeqCB.
	ContextSwitches int
	// AuditVisited shadow-checks compact-filter hits against an exact set,
	// counting measured false positives in each field's Stats.Memory.
	AuditVisited bool
	// Server, when non-empty, is the base URL of a running kissd
	// (cmd/kissd): field checks are submitted over HTTP instead of run
	// in-process, so repeated corpus runs hit the daemon's content-
	// addressed result cache — the warm-cache CI/re-run path. Verdicts
	// and the deterministic search counters are identical to a local
	// run (the service runs the same kiss.Check); the Workers pool then
	// bounds concurrent HTTP submissions rather than local checks, and
	// per-field Progress events do not stream (the search runs remotely).
	Server string
	// Batch, with Server set, submits the whole corpus as one
	// POST /v1/batch and fills the result slots from the streamed JSONL
	// items instead of one /v1/check round trip per field. The batch
	// endpoint is served by the kiss-coord coordinator (cmd/kiss-coord),
	// not by a single kissd; the coordinator shards the jobs across its
	// backends by cache key. Verdicts and counters are identical to the
	// per-field path.
	Batch bool
	// Context, when non-nil, makes the corpus run cancelable: on
	// cancellation (or deadline expiry) the in-flight checks stop at their
	// next poll, the remaining fields are marked Canceled, and RunCorpus
	// returns the partial results without error.
	Context context.Context
	// Progress, when non-nil, receives per-field progress events streamed
	// from inside the checkers (plus one final event per field). With
	// Workers > 1 the hook is called concurrently and must be safe for
	// concurrent use.
	Progress func(FieldEvent)
}

// FieldEvent tags a progress event with the corpus entry it came from.
type FieldEvent struct {
	Driver string
	Field  string
	Event  kiss.Event
}

// DefaultMaxStates is calibrated so that FieldHard runs (whose
// hard-worker loops explore >= AmplifierBound counter states) exceed it
// while every other pattern completes well inside it.
const DefaultMaxStates = 40000

// modelCache memoizes drivers.Generate per spec name: generation is
// deterministic, so the model (text, routine maps, LOC) is computed once
// per process instead of once per RunCorpus call.
var modelCache sync.Map // spec name -> *drivers.Model

func modelFor(spec *drivers.DriverSpec) *drivers.Model {
	if m, ok := modelCache.Load(spec.Name); ok {
		return m.(*drivers.Model)
	}
	m, _ := modelCache.LoadOrStore(spec.Name, drivers.Generate(spec))
	return m.(*drivers.Model)
}

// harnessCache memoizes kiss.Parse keyed by harness source. Fields sharing
// an accessor-pair set produce byte-identical harness programs (only the
// race target — which is not part of the source — differs), so the model
// source is parsed once per distinct harness instead of once per field.
// Parsed programs are immutable (the KISS transformation clones its input),
// so a cached program may be transformed concurrently by many workers. The
// cache is bounded by the number of distinct harnesses in the corpus.
var harnessCache sync.Map // source -> *harnessEntry

type harnessEntry struct {
	once sync.Once
	prog *kiss.Program
	err  error
}

func parseHarness(src string) (*kiss.Program, error) {
	e, _ := harnessCache.LoadOrStore(src, &harnessEntry{})
	entry := e.(*harnessEntry)
	entry.once.Do(func() {
		entry.prog, entry.err = kiss.Parse(src)
	})
	return entry.prog, entry.err
}

// checkFieldHook, when non-nil, runs before each field check; a non-nil
// error aborts the corpus run. Test instrumentation for pool cancellation.
var checkFieldHook func(driver, field string) error

// fieldJob is one unit of corpus work: a field check writing into a fixed
// slot of its driver's result row.
type fieldJob struct {
	dr    *DriverResult
	slot  int
	model *drivers.Model
	field drivers.FieldSpec
}

// RunCorpus checks every selected field of every selected driver and
// returns per-driver results in corpus order. Field checks are dispatched
// to a pool of opts.Workers goroutines; the output is independent of the
// worker count.
func RunCorpus(opts Options) ([]*DriverResult, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	var cl *service.Client
	if opts.Server != "" {
		cl = service.NewClient(opts.Server)
	}

	// Lay out the result skeleton and the flat job list up front: every
	// selected field owns a fixed slot, so workers never contend on a
	// shared append and ordering is deterministic by construction.
	var out []*DriverResult
	var jobs []fieldJob
	for _, spec := range drivers.Specs() {
		if opts.Drivers != nil && !opts.Drivers[spec.Name] {
			continue
		}
		model := modelFor(spec)
		dr := &DriverResult{Spec: spec, ModelLOC: model.LOC}
		for _, f := range spec.Fields {
			if opts.Only != nil {
				only := opts.Only[spec.Name]
				if only == nil || !only[f.Name] {
					continue
				}
			}
			dr.Fields = append(dr.Fields, FieldResult{})
			jobs = append(jobs, fieldJob{dr: dr, slot: len(dr.Fields) - 1, model: model, field: f})
		}
		out = append(out, dr)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		// Field-level x search-level parallelism share one core budget:
		// auto-sized pools divide the cores by the per-check worker count.
		if opts.SearchWorkers > 1 {
			workers = max(1, workers/opts.SearchWorkers)
		}
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	run := func(j fieldJob) error {
		// A canceled corpus context skips the remaining fields outright,
		// marking them rather than leaving zero-valued (NoRace) slots.
		if opts.Context != nil && opts.Context.Err() != nil {
			j.dr.Fields[j.slot] = FieldResult{
				Driver: j.dr.Spec.Name, Field: j.field.Name,
				Pattern: j.field.Pattern, Verdict: Canceled,
			}
			return nil
		}
		fr, err := checkField(j.model, j.field, opts, maxStates, cl)
		if err != nil {
			return fmt.Errorf("%s.%s: %w", j.dr.Spec.Name, j.field.Name, err)
		}
		j.dr.Fields[j.slot] = fr
		return nil
	}

	if cl != nil && opts.Batch {
		if err := runBatch(cl, jobs, opts, maxStates); err != nil {
			return nil, err
		}
	} else if workers <= 1 {
		for _, j := range jobs {
			if err := run(j); err != nil {
				return nil, err
			}
		}
	} else {
		var (
			next     atomic.Int64
			stop     = make(chan struct{})
			failOnce sync.Once
			firstErr error
			wg       sync.WaitGroup
		)
		fail := func(err error) {
			failOnce.Do(func() {
				firstErr = err
				close(stop) // cancel: idle workers exit before their next job
			})
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					if err := run(jobs[i]); err != nil {
						fail(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	for _, dr := range out {
		for i := range dr.Fields {
			switch dr.Fields[i].Verdict {
			case Race:
				dr.Races++
			case NoRace:
				dr.NoRace++
			case Timeout:
				dr.Timeouts++
			case Canceled:
				dr.Canceled++
			case Unsupported:
				dr.Unsupported++
			}
		}
	}
	return out, nil
}

// fieldConfig is the per-field check configuration, shared by the
// local, per-field-remote, and batch paths. Table 1/2 configuration
// (Section 6): "Guided by the intuition of the Bluetooth driver example
// in Section 2.2, we set the size of ts to 0."
func fieldConfig(f drivers.FieldSpec, opts Options, maxStates int) *kiss.Config {
	return &kiss.Config{
		MaxTS:                0,
		RaceTarget:           &kiss.RaceTarget{Record: "DEVICE_EXTENSION", Field: f.Name},
		MaxStates:            maxStates,
		DisableMacroSteps:    opts.DisableMacroSteps,
		DisableFoldMemo:      opts.DisableFoldMemo,
		MemoMB:               opts.MemoMB,
		DisableCallSummaries: opts.DisableCallSummaries,
		SummaryMB:            opts.SummaryMB,
		VisitedMode:          opts.VisitedMode,
		MemBudgetMB:          opts.MemBudgetMB,
		AuditVisited:         opts.AuditVisited,
		SearchWorkers:        opts.SearchWorkers,
		Sequentialization:    opts.Sequentialization,
		ContextSwitches:      opts.ContextSwitches,
		Context:              opts.Context,
	}
}

func checkField(model *drivers.Model, f drivers.FieldSpec, opts Options, maxStates int, cl *service.Client) (FieldResult, error) {
	fr := FieldResult{Driver: model.Spec.Name, Field: f.Name, Pattern: f.Pattern}
	if checkFieldHook != nil {
		if err := checkFieldHook(model.Spec.Name, f.Name); err != nil {
			return fr, err
		}
	}
	src := model.HarnessProgram(f.Name, opts.Refined)
	cfg := fieldConfig(f, opts, maxStates)
	if cl != nil {
		return checkFieldRemote(cl, fr, src, cfg, opts.Context)
	}
	prog, err := parseHarness(src)
	if err != nil {
		return fr, fmt.Errorf("generated model does not parse: %w", err)
	}
	if opts.Progress != nil {
		driver, field := model.Spec.Name, f.Name
		cfg.Progress = func(e kiss.Event) {
			opts.Progress(FieldEvent{Driver: driver, Field: field, Event: e})
		}
	}
	res, err := cfg.Check(prog)
	if err != nil {
		if cbseq.IsUnsupported(err) {
			fr.Verdict = Unsupported
			fr.Message = err.Error()
			return fr, nil
		}
		return fr, err
	}
	fr.States, fr.Steps = res.States, res.Steps
	fr.Stats = res.Stats
	switch res.Verdict {
	case kiss.Error:
		fr.Verdict = Race
		fr.Message = res.Message
		fr.Pos = fmt.Sprint(res.Pos)
	case kiss.Safe:
		fr.Verdict = NoRace
	case kiss.ResourceBound:
		// The corpus context stopping the run is cancellation, not the
		// paper's per-field resource bound.
		if res.Stats.Reason == kiss.ReasonCanceled || res.Stats.Reason == kiss.ReasonDeadline {
			fr.Verdict = Canceled
		} else {
			fr.Verdict = Timeout
		}
	}
	return fr, nil
}

// checkFieldRemote is the service-backed arm of checkField: the harness
// and config travel to a kissd over the wire (the config's functional
// knobs survive via kiss.Config's stable JSON form), the daemon runs —
// or cache-serves — the same kiss.Check, and the wire result maps back
// onto the FieldResult exactly like a local verdict. Cancellation of the
// corpus context marks the field Canceled, mirroring the local path.
func checkFieldRemote(cl *service.Client, fr FieldResult, src string, cfg *kiss.Config, ctx context.Context) (FieldResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := cl.Do(ctx, service.CheckRequest{Source: src, Config: cfg})
	if err != nil {
		if ctx.Err() != nil {
			fr.Verdict = Canceled
			return fr, nil
		}
		return fr, fmt.Errorf("kissd check: %w", err)
	}
	if resp.State != service.StateDone || resp.Result == nil {
		return fr, fmt.Errorf("kissd check: job %s ended %s: %s", resp.JobID, resp.State, resp.Error)
	}
	return fieldFromWire(fr, resp.Result), nil
}

// fieldFromWire maps a wire Result onto a FieldResult exactly like a
// local verdict.
func fieldFromWire(fr FieldResult, r *service.Result) FieldResult {
	fr.States, fr.Steps = r.States, r.Steps
	fr.Stats = r.Stats
	switch r.Verdict {
	case kiss.Error.String():
		fr.Verdict = Race
		fr.Message = r.Message
		fr.Pos = r.Pos
	case kiss.Safe.String():
		fr.Verdict = NoRace
	default:
		if r.Stats.Reason == kiss.ReasonCanceled || r.Stats.Reason == kiss.ReasonDeadline {
			fr.Verdict = Canceled
		} else {
			fr.Verdict = Timeout
		}
	}
	return fr
}

// runBatch is the coordinator-backed arm of RunCorpus: the whole job
// list travels as one BatchRequest, the coordinator shards it across
// its backends, and the streamed items land in their fixed slots by
// index — completion order does not matter. A canceled corpus context
// marks whatever has not streamed back yet as Canceled, mirroring the
// per-field paths.
func runBatch(cl *service.Client, jobs []fieldJob, opts Options, maxStates int) error {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	req := service.BatchRequest{}
	for _, j := range jobs {
		if checkFieldHook != nil {
			if err := checkFieldHook(j.dr.Spec.Name, j.field.Name); err != nil {
				return err
			}
		}
		req.Jobs = append(req.Jobs, service.BatchJob{
			Source: j.model.HarnessProgram(j.field.Name, opts.Refined),
			Config: fieldConfig(j.field, opts, maxStates),
		})
	}

	markCanceled := func(filled []bool) {
		for i, j := range jobs {
			if !filled[i] {
				j.dr.Fields[j.slot] = FieldResult{
					Driver: j.dr.Spec.Name, Field: j.field.Name,
					Pattern: j.field.Pattern, Verdict: Canceled,
				}
			}
		}
	}

	filled := make([]bool, len(jobs))
	stream, err := cl.Batch(ctx, req)
	if err != nil {
		if ctx.Err() != nil {
			markCanceled(filled)
			return nil
		}
		return fmt.Errorf("batch submit: %w", err)
	}
	defer stream.Close()
	for {
		item, err := stream.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			if ctx.Err() != nil {
				markCanceled(filled)
				return nil
			}
			return fmt.Errorf("batch stream: %w", err)
		}
		if item.Index < 0 || item.Index >= len(jobs) || filled[item.Index] {
			return fmt.Errorf("batch stream: bad item index %d", item.Index)
		}
		j := jobs[item.Index]
		fr := FieldResult{Driver: j.dr.Spec.Name, Field: j.field.Name, Pattern: j.field.Pattern}
		if item.State != service.StateDone || item.Result == nil {
			return fmt.Errorf("batch: %s.%s ended %s: %s", fr.Driver, fr.Field, item.State, item.Error)
		}
		j.dr.Fields[j.slot] = fieldFromWire(fr, item.Result)
		filled[item.Index] = true
	}
	for i := range jobs {
		if !filled[i] {
			if ctx.Err() != nil {
				markCanceled(filled)
				return nil
			}
			return fmt.Errorf("batch stream ended with %s.%s missing",
				jobs[i].dr.Spec.Name, jobs[i].field.Name)
		}
	}
	return nil
}

// RacedFields extracts the driver->field set that raced, for feeding a
// Table 1 run into the Table 2 rerun.
func RacedFields(results []*DriverResult) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, dr := range results {
		for _, fr := range dr.Fields {
			if fr.Verdict == Race {
				if out[dr.Spec.Name] == nil {
					out[dr.Spec.Name] = map[string]bool{}
				}
				out[dr.Spec.Name][fr.Field] = true
			}
		}
	}
	return out
}

// FormatTable1 renders results in the layout of Table 1.
func FormatTable1(results []*DriverResult) string {
	var b strings.Builder
	b.WriteString("Table 1: race detection under the permissive harness (ts size 0)\n")
	fmt.Fprintf(&b, "%-18s %6s %8s %7s %6s %9s %9s\n",
		"Driver", "KLOC", "ModelLOC", "Fields", "Races", "No Races", "Timeouts")
	var tKloc float64
	var tFields, tRaces, tNoRace, tTimeout, tCanceled, tUnsupported int
	for _, dr := range results {
		fields := len(dr.Fields)
		fmt.Fprintf(&b, "%-18s %6.1f %8d %7d %6d %9d %9d\n",
			dr.Spec.Name, dr.Spec.KLOC, dr.ModelLOC, fields, dr.Races, dr.NoRace, dr.Timeouts)
		tKloc += dr.Spec.KLOC
		tFields += fields
		tRaces += dr.Races
		tNoRace += dr.NoRace
		tTimeout += dr.Timeouts
		tCanceled += dr.Canceled
		tUnsupported += dr.Unsupported
	}
	fmt.Fprintf(&b, "%-18s %6.1f %8s %7d %6d %9d %9d\n",
		"Total", tKloc, "", tFields, tRaces, tNoRace, tTimeout)
	if tCanceled > 0 {
		fmt.Fprintf(&b, "(%d field checks canceled before completion; counts above are partial)\n", tCanceled)
	}
	if tUnsupported > 0 {
		fmt.Fprintf(&b, "(%d field checks outside the configured sequentialization's fragment)\n", tUnsupported)
	}
	return b.String()
}

// FormatTable2 renders results in the layout of Table 2 (drivers that had
// races in Table 1, rerun under the refined harness).
func FormatTable2(results []*DriverResult) string {
	var b strings.Builder
	b.WriteString("Table 2: races remaining under the refined harness (rules A1-A3 + driver-specific)\n")
	fmt.Fprintf(&b, "%-18s %6s\n", "Driver", "Races")
	total := 0
	for _, dr := range results {
		if len(dr.Fields) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-18s %6d\n", dr.Spec.Name, dr.Races)
		total += dr.Races
	}
	fmt.Fprintf(&b, "%-18s %6d\n", "Total", total)
	return b.String()
}

// CompareTable1 checks a Table 1 run against the paper's rows, returning a
// list of mismatches (empty = exact reproduction of the verdict counts).
func CompareTable1(results []*DriverResult) []string {
	var bad []string
	for _, dr := range results {
		s := dr.Spec
		if len(dr.Fields) != s.PaperFields {
			bad = append(bad, fmt.Sprintf("%s: checked %d fields, paper has %d", s.Name, len(dr.Fields), s.PaperFields))
		}
		if dr.Races != s.PaperRaces {
			bad = append(bad, fmt.Sprintf("%s: %d races, paper reports %d", s.Name, dr.Races, s.PaperRaces))
		}
		if dr.NoRace != s.PaperNoRace {
			bad = append(bad, fmt.Sprintf("%s: %d no-race, paper reports %d", s.Name, dr.NoRace, s.PaperNoRace))
		}
		if dr.Timeouts != s.Timeouts() {
			bad = append(bad, fmt.Sprintf("%s: %d timeouts, paper implies %d", s.Name, dr.Timeouts, s.Timeouts()))
		}
	}
	return bad
}

// CompareTable2 checks a Table 2 rerun against the paper's rows.
func CompareTable2(results []*DriverResult) []string {
	var bad []string
	for _, dr := range results {
		s := dr.Spec
		if s.PaperRacesRefined < 0 {
			continue
		}
		if dr.Races != s.PaperRacesRefined {
			bad = append(bad, fmt.Sprintf("%s: %d races refined, paper reports %d", s.Name, dr.Races, s.PaperRacesRefined))
		}
	}
	return bad
}
