package service

import (
	"context"
	"strings"
	"testing"

	kiss "repro"
)

// recurSrc exercises the summary table through the daemon: race-checking
// it makes the translation emit check_r/check_w calls whose segments the
// table records and replays.
const recurSrc = `
var n;
var done;
func work() {
  if (n > 0) { n = n - 1; work(); } else { skip; }
}
func helper() {
  done = 1;
}
func main() {
  n = 3;
  done = 0;
  async helper();
  work();
  assert(n == 0);
}
`

func raceCfg(maxStates int) *kiss.Config {
	return kiss.NewConfig(
		kiss.WithMaxTS(2),
		kiss.WithMaxStates(maxStates),
		kiss.WithRaceTarget(kiss.RaceTarget{Global: "n"}),
	)
}

// TestSummaryKeyExcludesBudgets: the program key is a function of the
// source and the shaping knobs only — budget changes map to the same
// table, shaping changes and source changes to different ones.
func TestSummaryKeyExcludesBudgets(t *testing.T) {
	base, err := SummaryKey(recurSrc, raceCfg(10000))
	if err != nil {
		t.Fatal(err)
	}
	sameTable, err := SummaryKey(recurSrc, raceCfg(9999))
	if err != nil {
		t.Fatal(err)
	}
	if sameTable != base {
		t.Error("a budget knob changed the summary key")
	}
	otherShape, err := SummaryKey(recurSrc, kiss.NewConfig(kiss.WithMaxTS(1),
		kiss.WithRaceTarget(kiss.RaceTarget{Global: "n"})))
	if err != nil {
		t.Fatal(err)
	}
	if otherShape == base {
		t.Error("changing MaxTS did not change the summary key")
	}
	otherSrc, err := SummaryKey(strings.Replace(recurSrc, "n = 3;", "n = 2;", 1), raceCfg(10000))
	if err != nil {
		t.Fatal(err)
	}
	if otherSrc == base {
		t.Error("changing the source did not change the summary key")
	}
}

// TestSummaryStoreLifecycle: the persistent summary table outlives the
// result cache — a resubmission with a changed budget knob misses the
// cache but replays warm from the program's table, storing nothing new —
// while a changed source gets a fresh table under a fresh key.
func TestSummaryStoreLifecycle(t *testing.T) {
	s, cl := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	first, err := cl.Check(ctx, recurSrc, raceCfg(100000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission claims cached")
	}
	agg1, tables1, _ := s.summaries.stats()
	if tables1 != 1 {
		t.Fatalf("after the first check: %d live tables, want 1", tables1)
	}
	if agg1.Stores == 0 {
		t.Fatalf("the cold check recorded no summaries: %+v", agg1)
	}

	// Same source, different state budget: the result cache must miss
	// (a different problem) but the summary table must already be warm —
	// replays happen. (A handful of fresh stores is fine: sites first
	// seen during check one pass the warm-up gate and record now.)
	second, err := cl.Check(ctx, recurSrc, raceCfg(99999), 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("budget-shifted resubmission was served from the result cache")
	}
	if second.Result.Verdict != first.Result.Verdict {
		t.Errorf("budget shift changed the verdict: %v vs %v", second.Result.Verdict, first.Result.Verdict)
	}
	agg2, tables2, _ := s.summaries.stats()
	if tables2 != 1 {
		t.Fatalf("the budget-shifted re-check did not reuse the table: %d live tables", tables2)
	}
	if agg2.Hits <= agg1.Hits {
		t.Errorf("a warm re-check never replayed from the table: hits %d -> %d", agg1.Hits, agg2.Hits)
	}

	// A semantically changed source is a different program: fresh key,
	// fresh table, populated cold. (Comment/formatting edits canonicalize
	// away and would still hit the result cache.)
	changed := strings.Replace(recurSrc, "n = 3;", "n = 2;", 1)
	third, err := cl.Check(ctx, changed, raceCfg(100000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("changed source was served from the result cache")
	}
	agg3, tables3, _ := s.summaries.stats()
	if tables3 != 2 {
		t.Fatalf("changed source did not get its own table: %d live tables", tables3)
	}
	if agg3.Stores <= agg2.Stores {
		t.Errorf("the new program's table was not populated: stores %d -> %d", agg2.Stores, agg3.Stores)
	}
}

// TestSummaryKeySplitsOnSequentialization: the KISS and CB translations
// of the same source are different sequential programs, so their summary
// tables must live under different keys — while spelling variants of the
// same transform (explicit "kiss", default K, cb-ignored MaxTS) share
// one.
func TestSummaryKeySplitsOnSequentialization(t *testing.T) {
	key := func(opts ...kiss.Option) string {
		t.Helper()
		k, err := SummaryKey(recurSrc, kiss.NewConfig(opts...))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key()
	if key(kiss.WithSequentialization(kiss.SeqKISS)) != base {
		t.Error("explicit kiss mode split the summary key")
	}
	cb := key(kiss.WithSequentialization(kiss.SeqCB))
	if cb == base {
		t.Error("cb mode shares the kiss summary key; the transformed programs differ")
	}
	if key(kiss.WithSequentialization(kiss.SeqCB),
		kiss.WithContextSwitches(kiss.DefaultContextSwitches)) != cb {
		t.Error("explicit default K split the cb summary key")
	}
	if key(kiss.WithSequentialization(kiss.SeqCB), kiss.WithContextSwitches(4)) == cb {
		t.Error("a different context-switch bound shares the cb summary key")
	}
	if key(kiss.WithSequentialization(kiss.SeqCB), kiss.WithMaxTS(3)) != cb {
		t.Error("MaxTS split the cb summary key; cb ignores it")
	}
}
