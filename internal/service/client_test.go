package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryAfterDuration: both header forms the spec allows must parse —
// the delta-seconds the service emits and the HTTP-date form — and
// anything else must report ok=false so callers fall back to their own
// backoff.
func TestRetryAfterDuration(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
		ok     bool
	}{
		{"3", 3 * time.Second, true},
		{" 10 ", 10 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"", 0, false},
		{"soon", 0, false},
		{"2029-01-01", 0, false}, // not an HTTP-date format
		{time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), 0, true}, // past date: wait 0
	}
	for _, c := range cases {
		se := &StatusError{Code: 429, RetryAfter: c.header}
		d, ok := se.RetryAfterDuration()
		if ok != c.ok || d != c.want {
			t.Errorf("RetryAfterDuration(%q) = (%v, %v), want (%v, %v)", c.header, d, ok, c.want, c.ok)
		}
	}

	// Future HTTP-date: the wait is the remaining time, within slack.
	se := &StatusError{Code: 429, RetryAfter: time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)}
	d, ok := se.RetryAfterDuration()
	if !ok || d < 59*time.Minute || d > time.Hour {
		t.Errorf("future HTTP-date: got (%v, %v), want about an hour", d, ok)
	}
}

// scriptedServer answers each request with the next scripted status; a
// 200 carries a minimal valid done-response. Requests beyond the script
// repeat the last entry.
func scriptedServer(t *testing.T, calls *atomic.Int64, script ...int) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(calls.Add(1)) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		switch code := script[i]; code {
		case http.StatusOK:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"v":1,"state":"done","result":{"verdict":"safe"}}`)
		default:
			w.WriteHeader(code)
			fmt.Fprintln(w, `{"error":"scripted rejection"}`)
		}
	}))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

// TestRetryTemporaryRejections: 429 and 503 retry with doubling backoff
// until the server relents; the check request that eventually lands must
// succeed transparently.
func TestRetryTemporaryRejections(t *testing.T) {
	var calls atomic.Int64
	cl := scriptedServer(t, &calls, 429, 503, 200)
	resp, err := cl.Do(context.Background(), CheckRequest{Source: safeSrc},
		WithRetry(3), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("Do with retries: %v", err)
	}
	if resp.State != StateDone {
		t.Fatalf("state = %s, want done", resp.State)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (429, 503, 200)", n)
	}
}

// TestRetryHonorsRetryAfter: with the header present the client sleeps
// what the server asked, not its own backoff.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"busy"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"v":1,"state":"done","result":{"verdict":"safe"}}`)
	}))
	t.Cleanup(ts.Close)
	start := time.Now()
	_, err := cl(ts).Do(context.Background(), CheckRequest{Source: safeSrc},
		WithRetry(1), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v; Retry-After: 1 must impose a 1s wait", elapsed)
	}
}

func cl(ts *httptest.Server) *Client { return NewClient(ts.URL) }

// TestRetryGivesUp: the retry budget bounds the attempts, and the final
// error is the typed rejection with its Retry-After attached.
func TestRetryGivesUp(t *testing.T) {
	var calls atomic.Int64
	client := scriptedServer(t, &calls, 429)
	_, err := client.Do(context.Background(), CheckRequest{Source: safeSrc},
		WithRetry(2), WithRetryBackoff(time.Millisecond))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("got %v, want a 429 StatusError", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", n)
	}
}

// TestNoRetryOnRequestErrors: a 400 is a property of the request; no
// retry budget may touch it.
func TestNoRetryOnRequestErrors(t *testing.T) {
	var calls atomic.Int64
	client := scriptedServer(t, &calls, 400)
	_, err := client.Do(context.Background(), CheckRequest{Source: safeSrc},
		WithRetry(5), WithRetryBackoff(time.Millisecond))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("got %v, want a 400 StatusError", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want exactly 1", n)
	}
}

// TestRetryRespectsContext: a canceled context cuts the backoff sleep
// short instead of serving it out.
func TestRetryRespectsContext(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"busy"}`)
	}))
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl(ts).Do(ctx, CheckRequest{Source: safeSrc}, WithRetry(3))
	if err == nil {
		t.Fatal("Do must fail when the context expires mid-backoff")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do slept %v into a 30s Retry-After despite a 50ms context", elapsed)
	}
}

// batchServer streams the given raw lines as a /v1/batch response and
// then ends the body the way the script says: cleanly, or cut mid-line.
func batchServer(t *testing.T, lines []string, abort bool) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		f := w.(http.Flusher)
		for _, line := range lines {
			fmt.Fprint(w, line)
			f.Flush()
		}
		if abort {
			panic(http.ErrAbortHandler) // cut the connection mid-stream
		}
	}))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

// TestBatchStreamCleanEOF: a complete stream yields every item and then
// a clean io.EOF — the signal that the batch finished.
func TestBatchStreamCleanEOF(t *testing.T) {
	client := batchServer(t, []string{
		`{"v":1,"index":0,"state":"done","result":{"verdict":"safe"}}` + "\n",
		`{"v":1,"index":1,"state":"done","result":{"verdict":"error"}}` + "\n",
	}, false)
	stream, err := client.Batch(context.Background(), BatchRequest{Jobs: []BatchJob{{Source: safeSrc}}})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	for want := 0; want < 2; want++ {
		item, err := stream.Next()
		if err != nil {
			t.Fatalf("item %d: %v", want, err)
		}
		if item.Index != want {
			t.Fatalf("item order: got %d, want %d", item.Index, want)
		}
	}
	if _, err := stream.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after the last item: got %v, want io.EOF", err)
	}
}

// TestBatchStreamTruncated: a JSON line cut short must surface as a
// decode error, never as a silent io.EOF — callers must be able to tell
// "finished" from "the coordinator died mid-batch".
func TestBatchStreamTruncated(t *testing.T) {
	client := batchServer(t, []string{
		`{"v":1,"index":0,"state":"done","result":{"verdict":"safe"}}` + "\n",
		`{"v":1,"index":1,"sta`, // cut mid-token, then clean close
	}, false)
	stream, err := client.Batch(context.Background(), BatchRequest{Jobs: []BatchJob{{Source: safeSrc}}})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := stream.Next(); err != nil {
		t.Fatalf("first item: %v", err)
	}
	_, err = stream.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated line: got %v, want a decode error distinct from io.EOF", err)
	}
	if !strings.Contains(err.Error(), "decoding batch stream") {
		t.Fatalf("truncated line: error %q does not identify the stream decode", err)
	}
}

// TestBatchStreamConnectionCut: the connection dying mid-stream is also
// a truncation, not an EOF.
func TestBatchStreamConnectionCut(t *testing.T) {
	client := batchServer(t, []string{
		`{"v":1,"index":0,"state":"done","result":{"verdict":"safe"}}` + "\n",
	}, true)
	stream, err := client.Batch(context.Background(), BatchRequest{Jobs: []BatchJob{{Source: safeSrc}}})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := stream.Next(); err != nil {
		t.Fatalf("first item: %v", err)
	}
	_, err = stream.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("cut connection: got %v, want a decode error distinct from io.EOF", err)
	}
}

// TestBatchStreamVersionCheck: an item with the wrong envelope version
// is refused before any field of it is trusted.
func TestBatchStreamVersionCheck(t *testing.T) {
	client := batchServer(t, []string{
		`{"v":99,"index":0,"state":"done","result":{"verdict":"safe"}}` + "\n",
	}, false)
	stream, err := client.Batch(context.Background(), BatchRequest{Jobs: []BatchJob{{Source: safeSrc}}})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := stream.Next(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong-version item: got %v, want a version error", err)
	}
}
