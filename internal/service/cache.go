package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
	"sync/atomic"

	kiss "repro"
)

// CacheKey derives the content address of one checking problem: the
// SHA-256 of the *canonicalized* source and the *normalized* config.
//
// The source half is the parsed program rendered back to concrete syntax
// (Program.Source), so submissions differing only in whitespace or
// formatting address the same entry. The config half is
// Config.CanonicalJSON, which strips runtime plumbing and the
// result-invariant parallelism knobs — a -search-workers 8 resubmission
// of a sequential run is, by the PR 3 bit-identity invariant, the same
// problem and hits the same entry. The canonical form is version-stamped
// ("v":1), so entries from incompatible wire formats can never collide.
//
// The key is exported because it is also the cluster's unit of routing:
// internal/coord consistent-hashes it to pick the owning backend, making
// each backend's LRU a shard of one distributed cache, and uses it
// verbatim for GET /v1/cache/{key} peer lookups.
func CacheKey(canonSource string, cfg *kiss.Config) (string, error) {
	cj, err := cfg.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(canonSource))
	h.Write([]byte{0}) // unambiguous separator: 0 never appears in source text
	h.Write(cj)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// entryOverhead approximates the per-entry bookkeeping bytes (map slot,
// list element, key copies) charged against the byte budget on top of
// the serialized result size.
const entryOverhead = 256

// resultCache is a content-addressed LRU cache of wire Results under a
// byte budget. Entries are immutable once stored: readers serialize
// them, nobody writes through them. Hit/miss/eviction counters are
// plain atomics so the metrics registry can sample them at scrape time
// without taking the cache lock.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  string
	res  *Result
	size int64
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{maxBytes: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached result for key, counting the hit or miss and
// refreshing recency on hit.
func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	c.mu.Unlock()
	c.hits.Add(1)
	return res, true
}

// put stores res under key, evicting least-recently-used entries until
// the byte budget holds. A result bigger than the whole budget is not
// stored (it would evict everything and then still not fit). Storing an
// existing key refreshes the entry.
func (c *resultCache) put(key string, res *Result) {
	size := resultSize(res) + entryOverhead
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes += size - old.size
		old.res, old.size = res, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, size: size})
		c.bytes += size
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ev.key)
		c.bytes -= ev.size
		c.evictions.Add(1)
	}
}

// stats snapshots the counters for /healthz and tests.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.items), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
		MaxBytes:  c.maxBytes,
	}
}

// hitRatio is hits/(hits+misses), 0 before any lookup.
func (c *resultCache) hitRatio() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// resultSize charges an entry by its serialized length — the honest
// measure of what a hit saves the network, and a stable proxy for heap
// footprint (the dominant fields, trace text and schedule, serialize
// near their in-memory size).
func resultSize(res *Result) int64 {
	b, err := json.Marshal(res)
	if err != nil {
		// Wire results are always marshalable (built from marshalable
		// parts); be conservative if that ever breaks.
		return 1 << 20
	}
	return int64(len(b))
}
