package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	kiss "repro"
)

// Client is the Go client for a running kissd. It is what `kiss -server`
// and the service-backed eval.RunCorpus path speak; any HTTP client can
// do the same with curl (see README, "Running kissd").
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the daemon at base (e.g.
// "http://localhost:8344"). Requests are bounded by the per-call
// context, not a client-wide timeout — checks legitimately run long.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// StatusError is a non-2xx daemon response. Callers distinguishing
// backpressure (429) from drain (503) switch on Code.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter string // the Retry-After header, when present
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("kissd: HTTP %d: %s", e.Code, e.Message)
}

// Check submits source under cfg and waits for the verdict. A zero
// timeout leaves the job on the server's default deadline. The returned
// response carries the wire result and whether it was served from the
// content-addressed cache.
func (c *Client) Check(ctx context.Context, source string, cfg *kiss.Config, timeout time.Duration) (*CheckResponse, error) {
	req := CheckRequest{Source: source, Config: cfg}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	return c.post(ctx, "/v1/check", req)
}

// Submit enqueues source without waiting; poll the returned JobID with
// Job.
func (c *Client) Submit(ctx context.Context, source string, cfg *kiss.Config, timeout time.Duration) (*CheckResponse, error) {
	wait := false
	req := CheckRequest{Source: source, Config: cfg, Wait: &wait}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	return c.post(ctx, "/v1/check", req)
}

// Job polls an async submission.
func (c *Client) Job(ctx context.Context, id string) (*CheckResponse, error) {
	var out CheckResponse
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(b))}
	}
	return string(b), nil
}

func (c *Client) post(ctx context.Context, path string, body CheckRequest) (*CheckResponse, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeErr(resp)
	}
	var out CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("kissd: decoding response: %w", err)
	}
	return &out, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("kissd: decoding response: %w", err)
	}
	return nil
}

// decodeErr lifts a non-2xx response into a StatusError, preferring the
// JSON error body.
func decodeErr(resp *http.Response) error {
	e := &StatusError{Code: resp.StatusCode, RetryAfter: resp.Header.Get("Retry-After")}
	var b errorBody
	if err := json.NewDecoder(resp.Body).Decode(&b); err == nil && b.Error != "" {
		e.Message = b.Error
	} else {
		e.Message = http.StatusText(resp.StatusCode)
	}
	return e
}
