package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	kiss "repro"
)

// Client is the Go client for a running kissd or kiss-coord. It is what
// `kiss -server` and the service-backed eval.RunCorpus path speak; any
// HTTP client can do the same with curl (see README, "Running kissd" and
// "Running a cluster").
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the daemon at base (e.g.
// "http://localhost:8344"). Requests are bounded by the per-call
// context, not a client-wide timeout — checks legitimately run long.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// StatusError is a non-2xx daemon response. Callers distinguishing
// backpressure (429) from drain (503) switch on Code.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter string // the Retry-After header, when present
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("kissd: HTTP %d: %s", e.Code, e.Message)
}

// Temporary reports whether the rejection is worth retrying: 429
// (backpressure: a full queue or an exhausted tenant quota) and 503
// (draining) both clear with time; everything else is a property of the
// request.
func (e *StatusError) Temporary() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

// RetryAfterDuration parses the Retry-After header into a wait, handling
// both the delta-seconds form the service emits and the HTTP-date form
// the spec also allows. ok is false when the header is absent or
// unparseable — callers fall back to their own backoff.
func (e *StatusError) RetryAfterDuration() (d time.Duration, ok bool) {
	v := strings.TrimSpace(e.RetryAfter)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// callSettings is the resolved form of a CallOption list.
type callSettings struct {
	wait      *bool
	timeout   time.Duration
	tenant    string
	retries   int
	retryBase time.Duration
}

// CallOption adjusts one Do/Batch call: synchronous vs async semantics,
// the server-side deadline, the tenant identity, and retry policy.
type CallOption func(*callSettings)

// WithWait selects synchronous (true, the default) or asynchronous
// (false: poll the returned JobID with Job) semantics.
func WithWait(wait bool) CallOption {
	return func(s *callSettings) { s.wait = &wait }
}

// WithTimeout sets the job's server-side wall-time bound, measured from
// submission (queue wait included). Zero leaves the server default.
func WithTimeout(d time.Duration) CallOption {
	return func(s *callSettings) { s.timeout = d }
}

// WithTenant names the submitting tenant for per-tenant admission quotas
// (sent as the X-Kiss-Tenant header and the wire Tenant field; the
// coordinator's token buckets key on it).
func WithTenant(tenant string) CallOption {
	return func(s *callSettings) { s.tenant = tenant }
}

// WithRetry retries temporary rejections (429 backpressure, 503 drain)
// up to attempts extra times, sleeping the server's Retry-After when
// given and doubling from a base backoff otherwise — the client half of
// the service's backpressure idiom. Non-temporary errors never retry.
func WithRetry(attempts int) CallOption {
	return func(s *callSettings) { s.retries = attempts }
}

// WithRetryBackoff sets the base sleep WithRetry doubles from when the
// server sends no Retry-After (default 100ms).
func WithRetryBackoff(base time.Duration) CallOption {
	return func(s *callSettings) { s.retryBase = base }
}

func resolve(opts []CallOption) callSettings {
	s := callSettings{retryBase: 100 * time.Millisecond}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// Do submits one check — the single client path for every caller (the
// kiss CLI, kissbench, eval). The request's V is stamped, the options
// fill the envelope (WithWait, WithTimeout, WithTenant) and retry policy
// (WithRetry), and the response envelope's version is verified before
// any field is trusted.
func (c *Client) Do(ctx context.Context, req CheckRequest, opts ...CallOption) (*CheckResponse, error) {
	s := resolve(opts)
	req.V = kiss.WireV
	if s.wait != nil {
		req.Wait = s.wait
	}
	if s.timeout > 0 {
		req.TimeoutMS = s.timeout.Milliseconds()
	}
	if s.tenant != "" {
		req.Tenant = s.tenant
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out CheckResponse
	err = c.withRetry(ctx, s, func() error {
		out = CheckResponse{}
		return c.postJSON(ctx, "/v1/check", data, s.tenant, &out)
	})
	if err != nil {
		return nil, err
	}
	if err := kiss.CheckWireV("check response", out.V); err != nil {
		return nil, err
	}
	return &out, nil
}

// Check submits source under cfg and waits for the verdict.
//
// Deprecated: use Do with WithTimeout.
func (c *Client) Check(ctx context.Context, source string, cfg *kiss.Config, timeout time.Duration) (*CheckResponse, error) {
	return c.Do(ctx, CheckRequest{Source: source, Config: cfg}, WithTimeout(timeout))
}

// Submit enqueues source without waiting; poll the returned JobID with
// Job.
//
// Deprecated: use Do with WithWait(false).
func (c *Client) Submit(ctx context.Context, source string, cfg *kiss.Config, timeout time.Duration) (*CheckResponse, error) {
	return c.Do(ctx, CheckRequest{Source: source, Config: cfg}, WithWait(false), WithTimeout(timeout))
}

// withRetry runs fn, retrying temporary rejections per the settings.
func (c *Client) withRetry(ctx context.Context, s callSettings, fn func() error) error {
	backoff := s.retryBase
	for attempt := 0; ; attempt++ {
		err := fn()
		var se *StatusError
		if err == nil || attempt >= s.retries || !errors.As(err, &se) || !se.Temporary() {
			return err
		}
		wait := backoff
		if d, ok := se.RetryAfterDuration(); ok {
			wait = d
		} else {
			backoff *= 2
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return err
		}
	}
}

// Job polls an async submission.
func (c *Client) Job(ctx context.Context, id string) (*CheckResponse, error) {
	var out CheckResponse
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CacheLookup probes the daemon's content-addressed result cache for key
// (a service.CacheKey) without ever triggering computation. ok is false
// on a clean miss; err reports transport or protocol failures only. The
// coordinator's peer lookup is built on this.
func (c *Client) CacheLookup(ctx context.Context, key string) (res *CheckResponse, ok bool, err error) {
	var out CheckResponse
	if err := c.getJSON(ctx, "/v1/cache/"+key, &out); err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	if err := kiss.CheckWireV("cache response", out.V); err != nil {
		return nil, false, err
	}
	return &out, true, nil
}

// Batch submits a whole corpus of jobs in one request and returns the
// JSONL result stream (one BatchItem per job, completion order). The
// caller must drain or Close the stream. Retry options apply to the
// initial submission only — once the stream is open, results flow.
func (c *Client) Batch(ctx context.Context, req BatchRequest, opts ...CallOption) (*BatchStream, error) {
	s := resolve(opts)
	req.V = kiss.WireV
	if s.tenant != "" {
		req.Tenant = s.tenant
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var stream *BatchStream
	err = c.withRetry(ctx, s, func() error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(data))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		if s.tenant != "" {
			hreq.Header.Set(TenantHeader, s.tenant)
		}
		resp, err := c.hc.Do(hreq)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			return decodeErr(resp)
		}
		stream = &BatchStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return stream, nil
}

// BatchStream decodes the /v1/batch JSONL response incrementally: one
// BatchItem per Next call, io.EOF on clean end of stream. A connection
// cut mid-stream (the coordinator died, a proxy gave up) surfaces as a
// decode error, never a silent short read — callers distinguish "batch
// finished" from "batch truncated" by io.EOF versus anything else.
type BatchStream struct {
	body io.Closer
	dec  *json.Decoder
}

// Next returns the next completed job's item, or io.EOF when the server
// finished the batch and closed the stream cleanly.
func (s *BatchStream) Next() (*BatchItem, error) {
	var item BatchItem
	if err := s.dec.Decode(&item); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("kissd: decoding batch stream: %w", err)
	}
	if err := kiss.CheckWireV("batch item", item.V); err != nil {
		return nil, err
	}
	return &item, nil
}

// Close releases the underlying response body; safe to call after EOF.
func (s *BatchStream) Close() error { return s.body.Close() }

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(b))}
	}
	return string(b), nil
}

func (c *Client) postJSON(ctx context.Context, path string, body []byte, tenant string, out *CheckResponse) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return decodeErr(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("kissd: decoding response: %w", err)
	}
	return nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("kissd: decoding response: %w", err)
	}
	return nil
}

// decodeErr lifts a non-2xx response into a StatusError, preferring the
// JSON error body.
func decodeErr(resp *http.Response) error {
	e := &StatusError{Code: resp.StatusCode, RetryAfter: resp.Header.Get("Retry-After")}
	var b errorBody
	if err := json.NewDecoder(resp.Body).Decode(&b); err == nil && b.Error != "" {
		e.Message = b.Error
	} else {
		e.Message = http.StatusText(resp.StatusCode)
	}
	return e
}
