// Package service is the long-running checking service behind cmd/kissd:
// an HTTP API over the kiss.Check pipeline with a bounded job queue,
// a worker scheduler multiplexing checks under one core budget, a
// content-addressed result cache, and Prometheus-text metrics.
//
// The KISS reduction turns every checking problem into an independent
// sequential search over a (source, config) pair — deterministic, shared-
// nothing, and therefore perfectly suited to being served: identical
// submissions (the common case for corpus re-runs and CI) are answered
// from the cache without re-exploration, distinct submissions queue up
// behind a fixed worker pool, and overload surfaces as backpressure
// (HTTP 429 + Retry-After) instead of memory growth.
//
// Endpoints:
//
//	POST /v1/check       submit {v, source, config, wait?, timeout_ms?}
//	POST /v1/batch       submit {v, jobs: [...]}; stream JSONL results
//	GET  /v1/jobs/{id}   poll an async submission
//	GET  /v1/cache/{key} content-addressed cache probe (kiss-coord peers)
//	GET  /healthz        liveness + version + queue/cache counters (JSON)
//	GET  /metrics        Prometheus text exposition
//
// Every request and response envelope carries the explicit wire version
// "v" (kiss.WireV); a missing or unknown version is rejected with 400
// before any field is interpreted.
package service

import (
	kiss "repro"
)

// TenantHeader is the HTTP header naming the submitting tenant for
// admission accounting (kiss-coord's per-tenant token buckets). The
// CheckRequest/BatchRequest Tenant field is the in-body equivalent; when
// both are set the header wins.
const TenantHeader = "X-Kiss-Tenant"

// CheckRequest is the POST /v1/check body. V is the wire version
// (kiss.WireV; required). Config uses kiss.Config's stable wire format
// (config_wire.go); nil means the default config. Wait selects
// synchronous semantics (the response carries the result); nil defaults
// to true. TimeoutMS bounds this job's wall time from submission —
// expiry yields a ResourceBound result with reason "deadline", never an
// HTTP error. Tenant names the submitting tenant for per-tenant
// admission quotas (coordinator only; kissd ignores it).
type CheckRequest struct {
	V         int          `json:"v"`
	Source    string       `json:"source"`
	Config    *kiss.Config `json:"config,omitempty"`
	Wait      *bool        `json:"wait,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
	Tenant    string       `json:"tenant,omitempty"`
}

// wait reports the effective wait flag (default true).
func (r *CheckRequest) wait() bool { return r.Wait == nil || *r.Wait }

// Result is the wire form of a kiss.Result: everything a remote caller
// can use, in serializable shape. The reconstructed concurrent trace
// travels pre-formatted plus as the replayable schedule; Stats embeds
// the full observability payload (kiss.Stats round-trips via the
// internal/stats JSON codecs).
type Result struct {
	Verdict  string     `json:"verdict"`
	Message  string     `json:"message,omitempty"`
	Pos      string     `json:"pos,omitempty"`
	States   int        `json:"states"`
	Steps    int        `json:"steps"`
	Trace    string     `json:"trace,omitempty"`
	Schedule []int      `json:"schedule,omitempty"`
	Stats    kiss.Stats `json:"stats"`
}

// wireResult lowers a kiss.Result to the wire shape.
func wireResult(res *kiss.Result) *Result {
	out := &Result{
		Verdict: res.Verdict.String(),
		Message: res.Message,
		States:  res.States,
		Steps:   res.Steps,
		Stats:   res.Stats,
	}
	if res.Verdict == kiss.Error {
		out.Pos = res.Pos.String()
		if res.Trace != nil {
			out.Trace = res.Trace.Format()
			out.Schedule = res.Trace.Schedule()
		}
	}
	return out
}

// Job states reported by CheckResponse.State.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// CheckResponse is the body of POST /v1/check, GET /v1/jobs/{id}, and
// GET /v1/cache/{key}. V is the wire version (kiss.WireV). Cached marks
// results served from the content-addressed cache; Error carries
// pipeline errors (e.g. the transformation rejecting a program), which
// put the job in StateFailed.
type CheckResponse struct {
	V      int     `json:"v"`
	JobID  string  `json:"job_id,omitempty"`
	State  string  `json:"state"`
	Cached bool    `json:"cached,omitempty"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// BatchRequest is the POST /v1/batch body: a whole corpus of independent
// {source, config} jobs submitted in one request. The coordinator
// (internal/coord) fans the jobs out across its backends and streams one
// BatchItem per job back as JSON Lines, in completion order. Tenant
// names the submitting tenant for admission quotas (the TenantHeader
// wins when both are set).
type BatchRequest struct {
	V      int        `json:"v"`
	Jobs   []BatchJob `json:"jobs"`
	Tenant string     `json:"tenant,omitempty"`
}

// BatchJob is one job of a BatchRequest — the Check fields minus the
// envelope (batches are always synchronous; the stream is the wait).
type BatchJob struct {
	Source    string       `json:"source"`
	Config    *kiss.Config `json:"config,omitempty"`
	TimeoutMS int64        `json:"timeout_ms,omitempty"`
}

// BatchItem is one line of the /v1/batch JSONL response stream: the
// outcome of Jobs[Index]. Key is the job's content address (the
// consistent-hash routing key); Backend names the backend that produced
// the result. Cached marks a result served from the owner's cache;
// PeerCache marks one found on a non-owner peer after a rebalance (see
// internal/coord). State/Result/Error mirror CheckResponse.
type BatchItem struct {
	V         int     `json:"v"`
	Index     int     `json:"index"`
	Key       string  `json:"key,omitempty"`
	Backend   string  `json:"backend,omitempty"`
	State     string  `json:"state"`
	Cached    bool    `json:"cached,omitempty"`
	PeerCache bool    `json:"peer_cache,omitempty"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// CacheStats is a point-in-time snapshot of the result cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// Health is the GET /healthz body.
type Health struct {
	Status        string     `json:"status"` // "ok" or "draining"
	Version       string     `json:"version"`
	Workers       int        `json:"workers"`
	SearchWorkers int        `json:"search_workers"`
	MemBudgetMB   int        `json:"mem_budget_mb,omitempty"`
	QueueDepth    int        `json:"queue_depth"`
	QueueCapacity int        `json:"queue_capacity"`
	InFlight      int        `json:"inflight"`
	JobsDone      int64      `json:"jobs_done"`
	Cache         CacheStats `json:"cache"`
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}
