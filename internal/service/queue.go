package service

import (
	"context"
	"sync"

	kiss "repro"
)

// job is one unit of queued work: a parsed program plus the effective
// run config, flowing from the admission handler through the bounded
// queue to a scheduler worker. The handler owns creation; exactly one
// worker (or the cache fast path) calls finish; any number of pollers
// read status.
type job struct {
	id  string
	key string // content address (cache key)

	prog *kiss.Program
	cfg  *kiss.Config // normalized request config + server-side overrides

	// ctx carries the per-job deadline, measured from submission so
	// queue wait counts against it; cancel releases the timer and is
	// called by the worker when the job finishes.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	state  string
	cached bool
	result *Result
	errMsg string
	done   chan struct{}
}

func newJob(id, key string, prog *kiss.Program, cfg *kiss.Config, ctx context.Context, cancel context.CancelFunc) *job {
	return &job{
		id: id, key: key, prog: prog, cfg: cfg,
		ctx: ctx, cancel: cancel,
		state: StateQueued, done: make(chan struct{}),
	}
}

// doneJob builds an already-completed job (the cache-hit fast path).
func doneJob(id, key string, res *Result, cached bool) *job {
	j := &job{id: id, key: key, state: StateDone, cached: cached, result: res, done: make(chan struct{})}
	close(j.done)
	return j
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
}

// finish records the outcome and releases waiters. A non-empty errMsg
// marks the job failed (a pipeline error, distinct from any verdict).
func (j *job) finish(res *Result, errMsg string) {
	j.mu.Lock()
	if errMsg != "" {
		j.state, j.errMsg = StateFailed, errMsg
	} else {
		j.state, j.result = StateDone, res
	}
	j.mu.Unlock()
	close(j.done)
}

// status snapshots the job as a wire response.
func (j *job) status() CheckResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return CheckResponse{
		V:      kiss.WireV,
		JobID:  j.id,
		State:  j.state,
		Cached: j.cached,
		Result: j.result,
		Error:  j.errMsg,
	}
}

// maxRetainedJobs bounds the job table of a long-running daemon: once
// exceeded, the oldest *completed* jobs are forgotten (their results
// remain reachable through the cache; only the job-id handle expires).
const maxRetainedJobs = 4096

// jobTable is the id -> job registry behind GET /v1/jobs/{id}.
type jobTable struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string // insertion order, for retention pruning
}

func newJobTable() *jobTable {
	return &jobTable{jobs: map[string]*job{}}
}

func (t *jobTable) add(j *job) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	if len(t.order) <= maxRetainedJobs {
		return
	}
	// Prune the oldest completed jobs; never drop one still queued or
	// running — its submitter may be waiting on the handle.
	keep := t.order[:0]
	pruned := 0
	for _, id := range t.order {
		over := len(t.order)-pruned > maxRetainedJobs
		jj := t.jobs[id]
		if over && jj != nil {
			jj.mu.Lock()
			finished := jj.state == StateDone || jj.state == StateFailed
			jj.mu.Unlock()
			if finished {
				delete(t.jobs, id)
				pruned++
				continue
			}
		}
		keep = append(keep, id)
	}
	t.order = keep
}

// cancelAll fires every retained job's context (Drain's deadline-expiry
// path). Finished jobs' cancels are released no-ops; queued and running
// ones see their checker loop stop with a ResourceBound partial result.
func (t *jobTable) cancelAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, j := range t.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}
