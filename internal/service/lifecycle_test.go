package service

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	kiss "repro"
)

// parkWorkers installs a checkHook that blocks every worker until
// release is closed, making queue-occupancy deterministic.
func parkWorkers(t *testing.T) (release chan struct{}, running chan string) {
	t.Helper()
	release = make(chan struct{})
	running = make(chan string, 16)
	checkHook = func(j *job) {
		running <- j.id
		<-release
	}
	t.Cleanup(func() { checkHook = nil })
	return release, running
}

// TestQueueFullBackpressure: with one parked worker and a one-slot
// queue, the third submission must be rejected with 429 + Retry-After,
// the rejection counter must tick, and — after the worker is released —
// the accepted jobs must still complete normally.
func TestQueueFullBackpressure(t *testing.T) {
	release, running := parkWorkers(t)
	s, cl := newTestServer(t, Config{Workers: 1, QueueSize: 1})
	ctx := context.Background()

	// Job 1 occupies the worker (blocked in the hook), job 2 the queue.
	j1, err := cl.Submit(ctx, safeSrc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-running // worker holds job 1
	j2, err := cl.Submit(ctx, racySrc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Job 3 finds the queue full.
	_, err = cl.Submit(ctx, bigSrc, nil, 0)
	se, ok := err.(*StatusError)
	if !ok || se.Code != 429 {
		t.Fatalf("expected 429, got %v", err)
	}
	if se.RetryAfter == "" {
		t.Error("429 without Retry-After header")
	}
	if got := s.jobsRejected.Value(); got != 1 {
		t.Errorf("rejected counter = %v, want 1", got)
	}

	// Backpressure rejected the overflow, not the accepted work.
	close(release)
	for _, id := range []string{j1.JobID, j2.JobID} {
		waitDone(t, cl, id)
	}
}

// TestDrainCompletesInFlight: SIGTERM semantics — Drain must refuse new
// work immediately but run accepted jobs (in-flight AND queued) to
// completion before returning.
func TestDrainCompletesInFlight(t *testing.T) {
	release, running := parkWorkers(t)
	s := New(Config{Workers: 1, QueueSize: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := context.Background()

	inflight, err := cl.Submit(ctx, racySrc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-running
	queued, err := cl.Submit(ctx, safeSrc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain must wait for the parked job, not abandon it.
	select {
	case err := <-drained:
		t.Fatalf("drain returned before in-flight job finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New submissions are refused while draining.
	if _, err := cl.Submit(ctx, bigSrc, nil, 0); !isStatus(err, 503) {
		t.Fatalf("submission during drain: got %v, want 503", err)
	}
	if h, err := cl.Health(ctx); err != nil || h.Status != "draining" {
		t.Errorf("health during drain: %+v, %v", h, err)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Both accepted jobs completed with real results.
	for id, wantVerdict := range map[string]string{inflight.JobID: "error", queued.JobID: "safe"} {
		st, err := cl.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone || st.Result == nil || st.Result.Verdict != wantVerdict {
			t.Errorf("job %s after drain: %+v, want done/%s", id, st, wantVerdict)
		}
	}

	// Drain is idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestJobDeadlineTripsReasonDeadline: a per-job timeout must surface as
// a ResourceBound result with reason "deadline" — a verdict, not an
// HTTP error — and must NOT poison the cache with the partial result.
func TestJobDeadlineTripsReasonDeadline(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	resp, err := cl.Check(ctx, bigSrc, nil, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != StateDone || resp.Result == nil {
		t.Fatalf("deadline did not produce a done job: %+v", resp)
	}
	if resp.Result.Verdict != kiss.ResourceBound.String() {
		t.Fatalf("verdict %q, want resource-bound", resp.Result.Verdict)
	}
	if resp.Result.Stats.Reason != kiss.ReasonDeadline {
		t.Fatalf("reason %v, want deadline", resp.Result.Stats.Reason)
	}

	// The partial exploration is not the answer to the untimed problem:
	// a resubmission without the timeout must run fresh, not hit cache.
	fresh, err := cl.Check(ctx, bigSrc, kiss.NewConfig(kiss.WithMaxStates(200)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Error("budget variant unexpectedly cached")
	}
	again, err := cl.Check(ctx, bigSrc, nil, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Error("deadline-partial result was cached")
	}
}

// TestNoGoroutineLeakAfterShutdown: a full serve-check-drain cycle must
// leave no goroutines behind (workers, per-job timers, handlers).
// goleak is unavailable; count with a settle loop like the PR 2/PR 3
// leak tests.
func TestNoGoroutineLeakAfterShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 2, QueueSize: 8})
	ts := httptest.NewServer(s.Handler())
	cl := NewClient(ts.URL)
	ctx := context.Background()
	for _, src := range []string{safeSrc, racySrc, safeSrc} {
		if _, err := cl.Check(ctx, src, nil, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func waitDone(t *testing.T, cl *Client, id string) *CheckResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
