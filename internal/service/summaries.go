package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	kiss "repro"
	"repro/internal/sem"
)

// The summary store: cross-check persistence for call-grained procedure
// summaries. A sem.SummaryTable is only sound for one compiled program —
// its entries compare compiled-function pointers — so the store keys
// tables by a *program key*: the SHA-256 of the canonical source and the
// shaping half of the config (the knobs that change what sequential
// program the transformation emits). Budget knobs (max-states, max-steps,
// BFS, worker counts) are deliberately absent: a re-check of the same
// source with a different budget misses the result cache but hits the
// summary table, which is exactly the warm-service pattern the store
// exists for. Eviction is whole-table LRU under a byte budget: partial
// tables stay internally consistent, and a program not checked recently
// ages out as one unit.

// SummaryKey derives the program key a persistent summary table is stored
// under: SHA-256 of the canonical source and the shaping config subset
// (MaxTS, alias elision, scheduler, race target, sequentialization mode
// and context-switch bound — everything that changes the transformed
// program), version-stamped via the config wire format. The
// sequentialization knobs are load-bearing: the KISS and CB translations
// of the same source are different sequential programs, so sharing a
// summary table across modes would replay the wrong program's segments.
// The subset is normalized (via Config.Normalized's shape rules embedded
// here) so spelling variants of the same transform share a table.
func SummaryKey(canonSource string, cfg *kiss.Config) (string, error) {
	shape := kiss.Config{
		MaxTS:               cfg.MaxTS,
		DisableAliasElision: cfg.DisableAliasElision,
		Scheduler:           cfg.Scheduler,
		RaceTarget:          cfg.RaceTarget,
		Sequentialization:   cfg.Sequentialization,
		ContextSwitches:     cfg.ContextSwitches,
	}
	if shape.Sequentialization == kiss.SeqKISS {
		shape.Sequentialization = ""
	}
	if shape.Sequentialization == kiss.SeqCB {
		shape.ContextSwitches = shape.EffectiveContextSwitches()
		shape.MaxTS = 0
		shape.Scheduler = kiss.SchedulerNondet
		shape.DisableAliasElision = false
	} else {
		shape.ContextSwitches = 0
	}
	sj, err := shape.MarshalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(canonSource))
	h.Write([]byte{0})
	h.Write(sj)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// summaryStore is the program-keyed LRU of persistent summary tables.
type summaryStore struct {
	mu       sync.Mutex
	maxBytes int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	// retired accumulates the counters of evicted tables so the fleet
	// totals survive whole-table eviction.
	retired       sem.SummaryStats
	tablesCreated int64
	tablesEvicted int64
}

type summaryStoreEntry struct {
	key   string
	table *sem.SummaryTable
}

func newSummaryStore(maxBytes int64) *summaryStore {
	if maxBytes <= 0 {
		maxBytes = sem.DefaultSummaryBytes
	}
	return &summaryStore{maxBytes: maxBytes, ll: list.New(), items: map[string]*list.Element{}}
}

// table returns the summary table for key, creating it on first use and
// refreshing recency. Each table gets the full store budget as its own
// internal cap; the store-level LRU below keeps the sum in bounds.
func (st *summaryStore) table(key string) *sem.SummaryTable {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.items[key]; ok {
		st.ll.MoveToFront(el)
		return el.Value.(*summaryStoreEntry).table
	}
	t := sem.NewSummaryTable(st.maxBytes, false)
	st.items[key] = st.ll.PushFront(&summaryStoreEntry{key: key, table: t})
	st.tablesCreated++
	return t
}

// trim evicts least-recently-used tables until the byte budget holds.
// Called after each check (table sizes only grow while a check runs).
// The most recent table always stays, even oversized — its own internal
// LRU bounds it.
func (st *summaryStore) trim() {
	st.mu.Lock()
	defer st.mu.Unlock()
	total := int64(0)
	for el := st.ll.Front(); el != nil; el = el.Next() {
		total += el.Value.(*summaryStoreEntry).table.Stats().Bytes
	}
	for total > st.maxBytes && st.ll.Len() > 1 {
		back := st.ll.Back()
		ev := back.Value.(*summaryStoreEntry)
		s := ev.table.Stats()
		total -= s.Bytes
		st.retired = addSummaryStats(st.retired, s)
		st.ll.Remove(back)
		delete(st.items, ev.key)
		st.tablesEvicted++
	}
}

// stats aggregates live tables plus the retired baseline. Entries/Bytes
// cover live tables only (evicted ones hold nothing).
func (st *summaryStore) stats() (agg sem.SummaryStats, tables int, evicted int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	agg = st.retired
	agg.Entries, agg.Bytes = 0, 0
	for el := st.ll.Front(); el != nil; el = el.Next() {
		agg = addSummaryStats(agg, el.Value.(*summaryStoreEntry).table.Stats())
	}
	return agg, st.ll.Len(), st.tablesEvicted
}

// addSummaryStats sums counters; MaxDepth takes the max.
func addSummaryStats(a, b sem.SummaryStats) sem.SummaryStats {
	out := sem.SummaryStats{
		Hits:            a.Hits + b.Hits,
		Misses:          a.Misses + b.Misses,
		Stores:          a.Stores + b.Stores,
		Evictions:       a.Evictions + b.Evictions,
		StepsSaved:      a.StepsSaved + b.StepsSaved,
		Composed:        a.Composed + b.Composed,
		MaxDepth:        a.MaxDepth,
		AuditMismatches: a.AuditMismatches + b.AuditMismatches,
		Entries:         a.Entries + b.Entries,
		Bytes:           a.Bytes + b.Bytes,
	}
	if b.MaxDepth > out.MaxDepth {
		out.MaxDepth = b.MaxDepth
	}
	return out
}
