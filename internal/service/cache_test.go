package service

import (
	"fmt"
	"strings"
	"testing"

	kiss "repro"
)

// entry builds a wire Result whose serialized size is roughly n bytes.
func entry(n int) *Result {
	return &Result{Verdict: "safe", Message: strings.Repeat("x", n)}
}

// TestCacheLRUEviction: inserts beyond the byte budget must evict in
// least-recently-used order, counting evictions.
func TestCacheLRUEviction(t *testing.T) {
	payload := 1000
	per := resultSize(entry(payload)) + entryOverhead
	c := newResultCache(3 * per) // room for three entries

	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), entry(payload))
	}
	if s := c.stats(); s.Entries != 3 || s.Evictions != 0 {
		t.Fatalf("warmup: %+v", s)
	}

	// Touch k0 so k1 becomes LRU, then overflow.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", entry(payload))

	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived eviction despite being LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if s := c.stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Errorf("after eviction: %+v", s)
	}
}

// TestCacheOversizeEntryNotStored: one result larger than the whole
// budget must be dropped, not evict the world.
func TestCacheOversizeEntryNotStored(t *testing.T) {
	c := newResultCache(2048)
	c.put("small", entry(100))
	c.put("huge", entry(1<<20))
	if _, ok := c.get("huge"); ok {
		t.Error("over-budget entry stored")
	}
	if _, ok := c.get("small"); !ok {
		t.Error("small entry evicted by rejected oversize put")
	}
}

// TestCacheUpdateExistingKey: re-putting a key replaces the value and
// adjusts the byte accounting instead of double-counting.
func TestCacheUpdateExistingKey(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put("k", entry(100))
	b1 := c.stats().Bytes
	c.put("k", entry(5000))
	s := c.stats()
	if s.Entries != 1 {
		t.Errorf("entries = %d, want 1", s.Entries)
	}
	if s.Bytes <= b1 {
		t.Errorf("bytes not adjusted upward: %d -> %d", b1, s.Bytes)
	}
	res, ok := c.get("k")
	if !ok || len(res.Message) != 5000 {
		t.Error("update did not replace the value")
	}
}

// TestCacheKeyStability: the content address must be invariant under
// config normalization noise and sensitive to result-relevant knobs.
func TestCacheKeyStability(t *testing.T) {
	src := "canonical source text"
	a, err := CacheKey(src, kiss.NewConfig(kiss.WithMaxStates(100)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CacheKey(src, kiss.NewConfig(kiss.WithMaxStates(100), kiss.WithSearchWorkers(8)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("search-workers changed the content address")
	}
	cDiff, err := CacheKey(src, kiss.NewConfig(kiss.WithMaxStates(101)))
	if err != nil {
		t.Fatal(err)
	}
	if a == cDiff {
		t.Error("budget change did not change the content address")
	}
	dDiff, err := CacheKey(src+" ", kiss.NewConfig(kiss.WithMaxStates(100)))
	if err != nil {
		t.Fatal(err)
	}
	if a == dDiff {
		t.Error("source change did not change the content address")
	}
}
