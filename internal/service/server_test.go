package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	kiss "repro"
)

// Test programs. racySrc has a reachable assertion failure through the
// KISS reduction; safeSrc does not; bigSrc explores enough states for
// budgets and deadlines to trip mid-search.
const racySrc = `
var x;
func worker() { x = 1; }
func main() {
  x = 0;
  async worker();
  assert(x == 0);
}
`

const safeSrc = `
var x;
func main() {
  x = 1;
  assert(x == 1);
}
`

const bigSrc = `
var a;
var b;
func main() {
  a = 0; b = 0;
  iter { choice { { a = a + 1; assume(a < 400); } [] { b = b + 1; assume(b < 400); } } }
  assert(a >= 0);
}
`

// newTestServer builds a service plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, NewClient(ts.URL)
}

// TestCheckMatchesLocal: the daemon must return exactly what a local
// kiss.Check returns — verdict, message, and the deterministic search
// counters — for every verdict class.
func TestCheckMatchesLocal(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		name string
		src  string
		opts []kiss.Option
	}{
		{"racy", racySrc, nil},
		{"safe", safeSrc, nil},
		{"budget-bound", bigSrc, []kiss.Option{kiss.WithMaxStates(500)}},
		{"race-target", racySrc, []kiss.Option{kiss.WithRaceTarget(kiss.RaceTarget{Global: "x"})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := kiss.Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			local, err := kiss.Check(prog, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := cl.Check(context.Background(), tc.src, kiss.NewConfig(tc.opts...), 0)
			if err != nil {
				t.Fatal(err)
			}
			if resp.State != StateDone || resp.Result == nil {
				t.Fatalf("job not done: %+v", resp)
			}
			r := resp.Result
			if r.Verdict != local.Verdict.String() {
				t.Errorf("verdict: server %q, local %q", r.Verdict, local.Verdict)
			}
			if r.Message != local.Message {
				t.Errorf("message: server %q, local %q", r.Message, local.Message)
			}
			if r.States != local.States || r.Steps != local.Steps {
				t.Errorf("counters: server %d/%d, local %d/%d", r.States, r.Steps, local.States, local.Steps)
			}
			want, got := local.Stats, r.Stats
			want.StripTiming()
			got.StripTiming()
			if got.Visited != want.Visited || got.PeakDepth != want.PeakDepth ||
				got.Reason != want.Reason || got.StatesStepped != want.StatesStepped {
				t.Errorf("stats: server %+v, local %+v", got, want)
			}
			if local.Verdict == kiss.Error {
				if r.Trace == "" || len(r.Schedule) == 0 {
					t.Errorf("error result missing trace/schedule: %+v", r)
				}
				if r.Trace != local.Trace.Format() {
					t.Errorf("trace differs:\nserver:\n%s\nlocal:\n%s", r.Trace, local.Trace.Format())
				}
			}
		})
	}
}

// TestCacheHitOnResubmit: an identical second submission must be served
// from the cache — hit counter up, cached flag set, identical result,
// and not a single new state explored fleet-wide.
func TestCacheHitOnResubmit(t *testing.T) {
	s, cl := newTestServer(t, Config{Workers: 1})
	cfg := kiss.NewConfig(kiss.WithMaxStates(10000))

	first, err := cl.Check(context.Background(), racySrc, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission claims cached")
	}
	statesAfterFirst := s.statesTotal.Value()

	second, err := cl.Check(context.Background(), racySrc, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical resubmission missed the cache")
	}
	if second.Result.Verdict != first.Result.Verdict || second.Result.States != first.Result.States {
		t.Errorf("cached result differs: %+v vs %+v", second.Result, first.Result)
	}
	if got := s.statesTotal.Value(); got != statesAfterFirst {
		t.Errorf("cache hit explored states: fleet total went %v -> %v", statesAfterFirst, got)
	}
	cs := s.cache.stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache counters: %+v, want hits=1 misses=1", cs)
	}

	// Content addressing is modulo formatting: reformatted source and a
	// result-invariant config knob (search workers) still hit.
	reformatted := "\n\n" + strings.ReplaceAll(racySrc, "  ", "\t") + "\n"
	cfg2 := kiss.NewConfig(kiss.WithMaxStates(10000), kiss.WithSearchWorkers(4))
	third, err := cl.Check(context.Background(), reformatted, cfg2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Error("reformatted source + search-workers variant missed the cache")
	}

	// A different budget is a different problem.
	fourth, err := cl.Check(context.Background(), racySrc, kiss.NewConfig(kiss.WithMaxStates(9999)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Cached {
		t.Error("different budget served from cache")
	}
}

// TestAsyncJobLifecycle: wait=false returns 202/queued immediately; the
// job id polls through to done.
func TestAsyncJobLifecycle(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	resp, err := cl.Submit(context.Background(), safeSrc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.JobID == "" {
		t.Fatalf("no job id: %+v", resp)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Job(context.Background(), resp.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone {
			if st.Result == nil || st.Result.Verdict != "safe" {
				t.Fatalf("bad final state: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsExposition: /metrics must expose queue depth, cache hit
// ratio, and per-phase timing histograms in Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	for i := 0; i < 2; i++ { // miss then hit
		if _, err := cl.Check(context.Background(), safeSrc, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	text, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE kissd_queue_depth gauge",
		"kissd_queue_depth 0",
		"kissd_cache_hits_total 1",
		"kissd_cache_misses_total 1",
		"kissd_cache_hit_ratio 0.5",
		`kissd_jobs_total{outcome="safe"} 1`,
		`kissd_phase_seconds_bucket{phase="check",le="+Inf"} 1`,
		`kissd_phase_seconds_count{phase="transform"} 1`,
		"# TYPE kissd_states_per_sec gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBadRequests: malformed JSON, empty and unparsable source, version-
// skewed configs, and unknown job ids all fail loudly with 4xx.
func TestBadRequests(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	if _, err := cl.Check(ctx, "func main( {", nil, 0); !isStatus(err, 400) {
		t.Errorf("unparsable source: got %v, want 400", err)
	}
	if _, err := cl.Check(ctx, "", nil, 0); !isStatus(err, 400) {
		t.Errorf("empty source: got %v, want 400", err)
	}
	if _, err := cl.Job(ctx, "j-nope-1"); !isStatus(err, 404) {
		t.Errorf("unknown job: got %v, want 404", err)
	}
}

func isStatus(err error, code int) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == code
}

// TestMemBudgetCeiling: the scheduler clamps each job's memory budget to
// the server ceiling before the cache key is computed, so the cache is
// always keyed on the config the check actually ran under.
func TestMemBudgetCeiling(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1, MemBudgetMB: 8})
	ctx := context.Background()

	// A compact-mode job asking for 512 MiB runs under the 8 MiB ceiling:
	// half the budget sizes the visited filter.
	big := kiss.NewConfig(kiss.WithBFS(), kiss.WithMaxStates(2000),
		kiss.WithVisitedMode(kiss.VisitedCompact), kiss.WithMemBudgetMB(512))
	resp, err := cl.Check(ctx, bigSrc, big, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := resp.Result.Stats.Memory
	if mem == nil {
		t.Fatal("budgeted check reported no memory record")
	}
	if want := int64(8<<20) / 2; mem.VisitedBytes != want {
		t.Errorf("visited filter sized %d bytes, want %d (the clamped ceiling's half)", mem.VisitedBytes, want)
	}

	// An explicit request at the ceiling is the same effective problem —
	// it must hit the cache entry the clamped job wrote.
	atCeiling := kiss.NewConfig(kiss.WithBFS(), kiss.WithMaxStates(2000),
		kiss.WithVisitedMode(kiss.VisitedCompact), kiss.WithMemBudgetMB(8))
	again, err := cl.Check(ctx, bigSrc, atCeiling, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("compact job at the ceiling missed the cache entry the clamped job wrote")
	}

	// Exact-mode jobs: the budget only moves frontier frames between RAM
	// and disk (bit-identical results), so the clamp never splits the
	// cache — budgeted and unbudgeted submissions share one key.
	exact := kiss.NewConfig(kiss.WithBFS(), kiss.WithMaxStates(2000))
	if _, err := cl.Check(ctx, bigSrc, exact, 0); err != nil {
		t.Fatal(err)
	}
	exactBudgeted := kiss.NewConfig(kiss.WithBFS(), kiss.WithMaxStates(2000), kiss.WithMemBudgetMB(512))
	hit, err := cl.Check(ctx, bigSrc, exactBudgeted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error("exact-mode budgeted submission missed the unbudgeted job's cache entry")
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.MemBudgetMB != 8 {
		t.Errorf("healthz mem_budget_mb = %d, want 8", h.MemBudgetMB)
	}
}

// TestHealthz: version and counters surface through /healthz.
func TestHealthz(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 1, Version: "v1.2.3-test"})
	if _, err := cl.Check(context.Background(), safeSrc, nil, 0); err != nil {
		t.Fatal(err)
	}
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != "v1.2.3-test" {
		t.Errorf("health: %+v", h)
	}
	if h.JobsDone != 1 || h.Cache.Misses != 1 {
		t.Errorf("health counters: %+v", h)
	}
}
