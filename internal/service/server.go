package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	kiss "repro"
	"repro/internal/stats"
)

// Config parameterizes a Server. The zero value is usable: defaults are
// filled in by New.
type Config struct {
	// Version is reported by /healthz (ldflags-injected in cmd/kissd).
	Version string
	// QueueSize bounds the admission queue; a full queue rejects
	// submissions with 429 + Retry-After. Default 64.
	QueueSize int
	// Workers is the scheduler pool width — how many checks run
	// concurrently. 0 sizes it from the core count and SearchWorkers so
	// Workers x max(1, SearchWorkers) ~= GOMAXPROCS.
	Workers int
	// SearchWorkers is the per-check parallel-search width handed to
	// kiss.Config.SearchWorkers (0 = classic sequential search).
	// Verdicts are identical at every setting.
	SearchWorkers int
	// CacheBytes is the result-cache byte budget. Default 64 MiB.
	CacheBytes int64
	// SummaryBytes is the persistent call-summary store's byte budget
	// (whole-table LRU across programs; see summaries.go). Default
	// sem.DefaultSummaryBytes. Negative disables cross-check summary
	// persistence (each check still builds its own per-run table).
	SummaryBytes int64
	// DefaultTimeout bounds each job's wall time (from submission,
	// queue wait included) when the request doesn't set timeout_ms.
	// 0 means no default deadline.
	DefaultTimeout time.Duration
	// MemBudgetMB is the per-job memory ceiling in MiB: a submission
	// asking for more (or for no budget at all) is clamped before the
	// cache key is computed — the scheduler owns the machine's RAM the
	// same way it owns its cores, and an unbudgeted frontier on a busy
	// daemon is an OOM, not a policy. The clamp changes the key only
	// under a compact visited set (where the budget sizes the filter and
	// so shapes the result); a fleet behind one coordinator should run a
	// uniform ceiling, or peer cache lookups for compact-mode jobs miss
	// across nodes (never corrupt — keys always reflect the effective
	// config). 0 = no ceiling.
	MemBudgetMB int
	// MaxSourceBytes bounds the request body. Default 8 MiB.
	MaxSourceBytes int64
}

// Server is the checking service: admission control in front of a
// bounded queue, a worker pool running kiss.Check, a content-addressed
// result cache, and a metrics registry. Create with New, serve
// Handler(), stop with Drain.
type Server struct {
	cfg       Config
	cache     *resultCache
	summaries *summaryStore // nil when SummaryBytes < 0
	jobs      *jobTable
	queue     chan *job
	reg       *stats.Registry

	mu       sync.Mutex // guards draining vs. queue close
	draining bool
	wg       sync.WaitGroup // worker pool

	inflight atomic.Int64
	jobsDone atomic.Int64
	idSeq    atomic.Int64
	instance string

	// metrics (populated by registerMetrics)
	outcomes          map[string]*stats.Counter
	jobsFailed        *stats.Counter
	jobsRejected      *stats.Counter
	statesTotal       *stats.Counter
	stepsTotal        *stats.Counter
	memoHits          *stats.Counter
	memoMisses        *stats.Counter
	memoStepsSaved    *stats.Counter
	summaryHits       *stats.Counter
	summaryMisses     *stats.Counter
	summaryStepsSaved *stats.Counter
	summaryStores     *stats.Counter
	spilledBytes      *stats.Counter
	spilledFrames     *stats.Counter
	spilledRuns       *stats.Counter
	mergePasses       *stats.Counter
	visitedFPs        *stats.Counter
	phaseParse        *stats.Histogram
	phaseTransform    *stats.Histogram
	phaseCheck        *stats.Histogram
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers(cfg.SearchWorkers)
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 8 << 20
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	var inst [4]byte
	rand.Read(inst[:])
	s := &Server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheBytes),
		jobs:     newJobTable(),
		queue:    make(chan *job, cfg.QueueSize),
		reg:      stats.NewRegistry(),
		instance: hex.EncodeToString(inst[:]),
	}
	if cfg.SummaryBytes >= 0 {
		s.summaries = newSummaryStore(cfg.SummaryBytes)
	}
	s.registerMetrics()
	s.startWorkers()
	return s
}

// Registry exposes the metrics registry (cmd/kissd adds process-level
// gauges next to the service ones).
func (s *Server) Registry() *stats.Registry { return s.reg }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheProbe)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Health snapshots the service state.
func (s *Server) Health() Health {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.mu.Unlock()
	return Health{
		Status:        status,
		Version:       s.cfg.Version,
		Workers:       s.cfg.Workers,
		SearchWorkers: s.cfg.SearchWorkers,
		MemBudgetMB:   s.cfg.MemBudgetMB,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		InFlight:      int(s.inflight.Load()),
		JobsDone:      s.jobsDone.Load(),
		Cache:         s.cache.stats(),
	}
}

// Sentinel admission errors.
var (
	errQueueFull = errors.New("queue full")
	errDraining  = errors.New("server draining")
)

// submit admits a job into the bounded queue. The mutex makes admission
// atomic with respect to Drain's queue close: no send can race the
// close, and after draining starts every submission is refused.
func (s *Server) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// Drain gracefully shuts the scheduler down: admission closes (new
// submissions get 503), the queue is closed, and the workers run every
// already-accepted job — queued and in-flight — to completion. The
// context bounds the wait: when it expires, the remaining jobs are
// canceled through their own contexts instead of abandoned, so each
// returns a partial ResourceBound result through the normal completion
// path and its counters still reach the kissd_memo_* / kissd_summary_*
// totals (a job cut off mid-check did real work the fleet metrics must
// not lose). Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.jobs.cancelAll()
		<-done
		return ctx.Err()
	}
}

// newJobID mints a process-unique job id.
func (s *Server) newJobID() string {
	return fmt.Sprintf("j-%s-%d", s.instance, s.idSeq.Add(1))
}

// handleCheck is POST /v1/check: parse, address, cache-probe, admit.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if err := kiss.CheckWireV("check request", req.V); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Source == "" {
		writeErr(w, http.StatusBadRequest, "empty source")
		return
	}
	prog, err := kiss.Parse(req.Source)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("parsing source: %v", err))
		return
	}
	cfg := req.Config
	if cfg == nil {
		cfg = kiss.NewConfig()
	}
	// Apply the per-job memory ceiling before the key is computed, so the
	// cache is always keyed on the config the check actually ran under.
	if s.cfg.MemBudgetMB > 0 && (cfg.MemBudgetMB == 0 || cfg.MemBudgetMB > s.cfg.MemBudgetMB) {
		clamped := *cfg
		clamped.MemBudgetMB = s.cfg.MemBudgetMB
		cfg = &clamped
	}
	key, err := CacheKey(prog.Source(), cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("canonicalizing config: %v", err))
		return
	}

	// The content-addressed fast path: an identical problem — same
	// canonical source, same normalized config — was already solved;
	// answer without touching the queue or exploring a single state.
	if res, ok := s.cache.get(key); ok {
		j := doneJob(s.newJobID(), key, res, true)
		s.jobs.add(j)
		writeJSON(w, http.StatusOK, j.status())
		return
	}

	// Effective run config: the normalized request knobs (runtime
	// plumbing stripped) plus the server's execution policy — the
	// scheduler owns parallelism and deadlines, not the submitter.
	runCfg := cfg.Normalized()
	runCfg.SearchWorkers = s.cfg.SearchWorkers
	// Cross-check summary persistence: hand the job the program's live
	// summary table. The key excludes budget knobs, so a resubmission
	// with a changed budget (a result-cache miss) still replays warm.
	if s.summaries != nil && !runCfg.DisableMacroSteps && !runCfg.DisableCallSummaries && !runCfg.Summaries {
		if skey, kerr := SummaryKey(prog.Source(), &runCfg); kerr == nil {
			runCfg.SummaryTable = s.summaries.table(skey)
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	// Always cancelable, deadline or not: Drain uses the job contexts to
	// cut off in-flight checks when its own wait expires.
	ctx, cancel := context.WithCancel(context.Background())
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
	}
	runCfg.Context = ctx

	j := newJob(s.newJobID(), key, prog, &runCfg, ctx, cancel)
	if err := s.submit(j); err != nil {
		cancel()
		switch err {
		case errQueueFull:
			s.jobsRejected.Inc()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "queue full; retry later")
		default:
			writeErr(w, http.StatusServiceUnavailable, "server draining")
		}
		return
	}
	s.jobs.add(j)

	if !req.wait() {
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.status())
	case <-r.Context().Done():
		// Client gave up; the job keeps running and stays pollable.
		writeJSON(w, http.StatusAccepted, j.status())
	}
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleCacheProbe is GET /v1/cache/{key}: a pure content-addressed
// lookup that never computes. The coordinator uses it for peer lookup —
// after a rebalance moves a key to a backend that has not computed it,
// the peer that has answers from its LRU shard instead of the new owner
// re-exploring the state space. Probes count in the hit/miss telemetry
// like any other lookup.
func (s *Server) handleCacheProbe(w http.ResponseWriter, r *http.Request) {
	res, ok := s.cache.get(r.PathValue("key"))
	if !ok {
		writeErr(w, http.StatusNotFound, "key not cached")
		return
	}
	writeJSON(w, http.StatusOK, CheckResponse{V: kiss.WireV, State: StateDone, Cached: true, Result: res})
}

// handleHealth is GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// handleMetrics is GET /metrics (Prometheus text exposition).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}
