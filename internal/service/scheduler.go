package service

import (
	"runtime"

	kiss "repro"
	"repro/internal/stats"
)

// The scheduler half of the Server: a fixed pool of workers draining the
// bounded queue. Parallelism composes the same way eval.RunCorpus does
// it (PR 3): the pool width times the per-check SearchWorkers is held at
// the machine's core count, so concurrent jobs multiplex the hardware
// instead of oversubscribing it. Workers run jobs to completion — drain
// closes the queue and waits, so SIGTERM never abandons an accepted job.

// defaultWorkers sizes the pool for a per-check search width: enough
// workers to cover the cores once searchWorkers-wide checks are running.
func defaultWorkers(searchWorkers int) int {
	cores := runtime.GOMAXPROCS(0)
	if searchWorkers > 1 {
		return max(1, cores/searchWorkers)
	}
	return max(1, cores)
}

// checkHook, when non-nil, runs in the worker just before kiss.Check.
// Test instrumentation: lifecycle tests park a worker here to make
// queue-full and drain timing deterministic.
var checkHook func(*job)

// startWorkers launches the pool; each worker exits when the queue is
// closed and empty (Drain).
func (s *Server) startWorkers() {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.inflight.Add(1)
				s.runJob(j)
				s.inflight.Add(-1)
			}
		}()
	}
}

// runJob executes one check and publishes the outcome: result into the
// job (waking sync waiters), wire form into the cache, counters and
// phase timings into the metrics registry.
func (s *Server) runJob(j *job) {
	j.setRunning()
	if hook := checkHook; hook != nil {
		hook(j)
	}
	defer j.cancel() // release the deadline timer

	res, err := j.cfg.Check(j.prog)
	if err != nil {
		// A pipeline error (the transformation rejecting the program,
		// compilation failing) — a property of the submission, reported
		// on the job, not a server failure.
		s.jobsFailed.Inc()
		j.finish(nil, err.Error())
		return
	}

	wres := wireResult(res)
	// Deadline/cancellation trims the explored space, so a partial
	// result is NOT the answer to the (source, config) problem — only
	// completed verdicts are cacheable. Budget-tripped results (states/
	// steps) ARE deterministic for the config and cache fine.
	reason := res.Stats.Reason
	if reason != kiss.ReasonDeadline && reason != kiss.ReasonCanceled {
		s.cache.put(j.key, wres)
	}

	s.observe(res)
	if s.summaries != nil {
		// Tables only grow while a check runs; re-check the store budget
		// now that this job's growth is final.
		s.summaries.trim()
	}
	j.finish(wres, "")
	s.jobsDone.Add(1)
}

// observe folds one completed check into the fleet metrics.
func (s *Server) observe(res *kiss.Result) {
	if c, ok := s.outcomes[res.Verdict.String()]; ok {
		c.Inc()
	}
	s.statesTotal.Add(float64(res.States))
	s.stepsTotal.Add(float64(res.Steps))
	if m := res.Stats.Memo; m != nil {
		s.memoHits.Add(float64(m.Hits))
		s.memoMisses.Add(float64(m.Misses))
		s.memoStepsSaved.Add(float64(m.StepsSaved))
	}
	if sm := res.Stats.Summary; sm != nil {
		s.summaryHits.Add(float64(sm.Hits))
		s.summaryMisses.Add(float64(sm.Misses))
		s.summaryStepsSaved.Add(float64(sm.StepsSaved))
		s.summaryStores.Add(float64(sm.Stores))
	}
	if mem := res.Stats.Memory; mem != nil {
		s.spilledBytes.Add(float64(mem.SpilledBytes))
		s.spilledFrames.Add(float64(mem.SpilledFrames))
		s.spilledRuns.Add(float64(mem.SpilledRuns))
		s.mergePasses.Add(float64(mem.MergePasses))
		s.visitedFPs.Add(float64(mem.VisitedFalsePositives))
	}
	s.phaseParse.Observe(res.Stats.Phases.Parse.Seconds())
	s.phaseTransform.Observe(res.Stats.Phases.Transform.Seconds())
	s.phaseCheck.Observe(res.Stats.Phases.Check.Seconds())
}

// registerMetrics populates the registry with the service fleet metrics:
// queue and worker gauges, job outcome counters, cache counters and hit
// ratio, per-phase wall-time histograms, and fleet-wide states/sec.
func (s *Server) registerMetrics() {
	r := s.reg
	r.GaugeFunc("kissd_queue_depth", "Jobs waiting in the admission queue.", nil,
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("kissd_queue_capacity", "Admission queue capacity.", nil,
		func() float64 { return float64(cap(s.queue)) })
	r.GaugeFunc("kissd_inflight_jobs", "Jobs currently being checked.", nil,
		func() float64 { return float64(s.inflight.Load()) })
	r.GaugeFunc("kissd_workers", "Scheduler worker-pool size.", nil,
		func() float64 { return float64(s.cfg.Workers) })

	s.outcomes = map[string]*stats.Counter{}
	for _, outcome := range []string{"safe", "error", "resource-bound"} {
		s.outcomes[outcome] = r.Counter("kissd_jobs_total",
			"Completed jobs by verdict.", map[string]string{"outcome": outcome})
	}
	s.jobsFailed = r.Counter("kissd_jobs_total",
		"Completed jobs by verdict.", map[string]string{"outcome": "failed"})
	s.jobsRejected = r.Counter("kissd_rejected_total",
		"Submissions rejected with 429 because the queue was full.", nil)

	r.CounterFunc("kissd_cache_hits_total", "Result-cache hits.", nil,
		func() float64 { return float64(s.cache.hits.Load()) })
	r.CounterFunc("kissd_cache_misses_total", "Result-cache misses.", nil,
		func() float64 { return float64(s.cache.misses.Load()) })
	r.CounterFunc("kissd_cache_evictions_total", "Result-cache LRU evictions.", nil,
		func() float64 { return float64(s.cache.evictions.Load()) })
	r.GaugeFunc("kissd_cache_bytes", "Bytes held by the result cache.", nil,
		func() float64 { return float64(s.cache.stats().Bytes) })
	r.GaugeFunc("kissd_cache_entries", "Entries in the result cache.", nil,
		func() float64 { return float64(s.cache.stats().Entries) })
	r.GaugeFunc("kissd_cache_hit_ratio", "Lifetime cache hits / lookups.", nil,
		s.cache.hitRatio)

	s.statesTotal = r.Counter("kissd_states_total",
		"States stored across all completed checks.", nil)
	s.stepsTotal = r.Counter("kissd_steps_total",
		"Transitions executed across all completed checks.", nil)
	s.memoHits = r.Counter("kissd_memo_hits_total",
		"Fold-memo replay hits across all completed checks.", nil)
	s.memoMisses = r.Counter("kissd_memo_misses_total",
		"Fold-memo lookup misses across all completed checks.", nil)
	s.memoStepsSaved = r.Counter("kissd_memo_steps_saved_total",
		"Micro steps replayed from the fold memo instead of executing.", nil)
	r.GaugeFunc("kissd_memo_hit_ratio", "Fleet-wide fold-memo hits / lookups.", nil,
		func() float64 {
			hits, misses := s.memoHits.Value(), s.memoMisses.Value()
			if total := hits + misses; total > 0 {
				return hits / total
			}
			return 0
		})

	s.summaryHits = r.Counter("kissd_summary_hits_total",
		"Call-summary replay hits across all completed checks.", nil)
	s.summaryMisses = r.Counter("kissd_summary_misses_total",
		"Call-summary lookup misses across all completed checks.", nil)
	s.summaryStepsSaved = r.Counter("kissd_summary_steps_saved_total",
		"Micro steps replayed from call summaries instead of executing.", nil)
	s.summaryStores = r.Counter("kissd_summary_stores_total",
		"Call segments recorded into summary tables.", nil)
	r.GaugeFunc("kissd_summary_hit_ratio", "Fleet-wide call-summary hits / lookups.", nil,
		func() float64 {
			hits, misses := s.summaryHits.Value(), s.summaryMisses.Value()
			if total := hits + misses; total > 0 {
				return hits / total
			}
			return 0
		})
	if s.summaries != nil {
		r.GaugeFunc("kissd_summary_tables", "Live persistent summary tables (one per program key).", nil,
			func() float64 { _, tables, _ := s.summaries.stats(); return float64(tables) })
		r.GaugeFunc("kissd_summary_bytes", "Bytes held by live persistent summary tables.", nil,
			func() float64 { agg, _, _ := s.summaries.stats(); return float64(agg.Bytes) })
		r.GaugeFunc("kissd_summary_entries", "Entries across live persistent summary tables.", nil,
			func() float64 { agg, _, _ := s.summaries.stats(); return float64(agg.Entries) })
		r.CounterFunc("kissd_summary_entry_evictions_total",
			"Summary entries dropped by per-table byte-budget LRUs.", nil,
			func() float64 { agg, _, _ := s.summaries.stats(); return float64(agg.Evictions) })
		r.CounterFunc("kissd_summary_tables_evicted_total",
			"Whole summary tables evicted by the store's byte budget.", nil,
			func() float64 { _, _, ev := s.summaries.stats(); return float64(ev) })
	}
	s.spilledBytes = r.Counter("kissd_spilled_bytes_total",
		"Frontier frame bytes spilled to sorted disk runs under the memory budget.", nil)
	s.spilledFrames = r.Counter("kissd_spilled_frames_total",
		"Frontier frames spilled to disk under the memory budget.", nil)
	s.spilledRuns = r.Counter("kissd_spilled_runs_total",
		"Sorted on-disk runs written by budgeted frontiers.", nil)
	s.mergePasses = r.Counter("kissd_merge_passes_total",
		"K-way merge passes streaming spilled runs back into dequeue order.", nil)
	s.visitedFPs = r.Counter("kissd_visited_false_positives_total",
		"Compact visited-set false positives observed by audited checks.", nil)
	s.phaseParse = r.Histogram("kissd_phase_seconds", "Per-phase wall time of completed checks.",
		map[string]string{"phase": "parse"}, nil)
	s.phaseTransform = r.Histogram("kissd_phase_seconds", "Per-phase wall time of completed checks.",
		map[string]string{"phase": "transform"}, nil)
	s.phaseCheck = r.Histogram("kissd_phase_seconds", "Per-phase wall time of completed checks.",
		map[string]string{"phase": "check"}, nil)
	r.GaugeFunc("kissd_states_per_sec", "Fleet-wide average states/sec (states total / check seconds total).", nil,
		func() float64 {
			if secs := s.phaseCheck.Sum(); secs > 0 {
				return s.statesTotal.Value() / secs
			}
			return 0
		})
}
