// Package cbseq implements context-bounded sequentialization: the
// Lal–Reps-style source-to-source translation of a concurrent program
// into a sequential program whose executions simulate every round-robin
// schedule with at most K context switches (CB(K)).
//
// The encoding divides an execution into R = K+1 rounds. Each thread runs
// to completion exactly once, in creation order, carrying a private view
// of the shared globals for whichever round it is currently in. When a
// thread (nondeterministically) advances from round r to round r+1, the
// values the shared globals will hold at its re-entry are *guessed* from
// a finite, statically derived value domain; at the end of the whole run
// a linking check assumes that the final round-r values produced by the
// last thread equal the round-(r+1) values that were guessed. Runs whose
// guesses do not link up are infeasible and are silently pruned by the
// assume, so every surviving run corresponds to a real interleaving:
// reported errors are sound. Assertion failures observed before the
// linking check are deferred through an error flag and only reported by a
// final assert after linking, for the same reason.
//
// Like package kiss, the output is a program in the sequential fragment,
// checked by package seqcheck unchanged. Unlike KISS's ts-multiset
// discipline — where a killed thread never resumes — CB(K) lets every
// thread resume K times, making a strictly richer class of interleavings
// reachable as K grows (the guess domain does not depend on K, so the
// bugs found are monotone nondecreasing in K).
package cbseq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/lower"
	"repro/internal/sema"
)

// Reserved names introduced by the translation.
const (
	// RoundVar is the current round counter, 1..R.
	RoundVar = "__cb_round"
	// RaiseVar lets a thread retire nondeterministically at any control
	// location (the paper's RAISE, reused unchanged): a retired thread
	// simply makes no further steps, which is always a feasible schedule.
	RaiseVar = "__cb_raise"
	// ErrVar defers assertion failures until after the linking check.
	ErrVar = "__cb_err"
	// FnPrefix prefixes every translated function: [[f]] is FnPrefix+f.
	FnPrefix = "__cbf_"
	// WrapperPrefix prefixes the per-entry thread wrappers that restore
	// the creation round before running a deferred thread's body.
	WrapperPrefix = "__cbt_"
	// Generated helper functions.
	SaveFn    = "__cb_save"    // active globals -> cur[round]
	LoadFn    = "__cb_loadcur" // cur[round] -> active globals
	AdvanceFn = "__cb_advance" // round -> round+1 (guess + swap)
	YieldFn   = "__cb_yield"   // nondet sequence of advances
	FinFn     = "__cb_fin"     // linking assumes + deferred assert
	// GuessFnPrefix prefixes the per-round snapshot guessers.
	GuessFnPrefix = "__cb_guess_"
)

// curVar is the saved copy of shared global g for round r; guessVar is the
// immutable guessed round-entry snapshot; usedVar flags that round r was
// entered (and hence guessed).
func curVar(r int, g string) string   { return fmt.Sprintf("__cbv_%d_%s", r, g) }
func guessVar(r int, g string) string { return fmt.Sprintf("__cbk_%d_%s", r, g) }
func usedVar(r int) string            { return fmt.Sprintf("__cbu_%d", r) }

// TranslatedName returns the name of the translated version [[f]] of a
// source function f.
func TranslatedName(f string) string { return FnPrefix + f }

// WrapperName returns the name of the thread wrapper for async target f.
func WrapperName(f string) string { return WrapperPrefix + f }

// OriginalName inverts TranslatedName/WrapperName; ok is false for
// generated helpers.
func OriginalName(f string) (string, bool) {
	if rest, found := strings.CutPrefix(f, FnPrefix); found {
		return rest, true
	}
	if rest, found := strings.CutPrefix(f, WrapperPrefix); found {
		return rest, true
	}
	return "", false
}

// DefaultMaxPending bounds the multiset of forked-but-unscheduled threads
// in the translated program; a fork past the bound runs inline at the
// fork point instead (a zero-switch schedule for the child — sound).
const DefaultMaxPending = 8

// Options parameterize the translation.
type Options struct {
	// ContextSwitches is K: the number of guessed round boundaries. The
	// translated program simulates every round-robin schedule with K+1
	// rounds, which covers all executions with at most K context switches
	// (and many with more). K = 0 runs each thread to completion once, in
	// creation order, with no resumption.
	ContextSwitches int
	// MaxPending bounds the pending-thread multiset (0 = DefaultMaxPending).
	MaxPending int
	// ExtraValues widens every int guess domain with the given candidates.
	// Useful when the ±1-closure heuristic misses a reachable snapshot
	// value; a missing value only shrinks coverage, never soundness.
	ExtraValues []int64
}

func (o Options) rounds() int { return o.ContextSwitches + 1 }

func (o Options) maxPending() int {
	if o.MaxPending > 0 {
		return o.MaxPending
	}
	return DefaultMaxPending
}

// Transform applies the CB(K) translation to a core-form concurrent
// program, producing a sequential program for seqcheck. Programs outside
// the supported fragment (heap or pointer operations, indirect asyncs,
// shared globals without a kind-stable finite guess domain) are rejected
// with an *UnsupportedError.
func Transform(p *ast.Program, opts Options) (*ast.Program, error) {
	if opts.ContextSwitches < 0 {
		return nil, fmt.Errorf("cbseq: negative context-switch bound %d", opts.ContextSwitches)
	}
	if err := sema.Check(p, sema.Source); err != nil {
		return nil, fmt.Errorf("cbseq: input program ill-formed: %w", err)
	}
	if ok, why := lower.IsCore(p); !ok {
		return nil, fmt.Errorf("cbseq: input program not in core form (run lower first): %s", why)
	}
	if err := checkReservedNames(p); err != nil {
		return nil, err
	}
	if err := checkSupported(p); err != nil {
		return nil, err
	}
	shared := sharedGlobals(p)
	domains, err := inferDomains(p, shared, opts.ExtraValues)
	if err != nil {
		return nil, err
	}
	var vg []string // versioned (shared) globals, deterministic order
	for _, g := range p.Globals {
		if shared[g.Name] {
			vg = append(vg, g.Name)
		}
	}
	sort.Strings(vg)

	tr := &transformer{src: p, opts: opts, R: opts.rounds(), vg: vg, domains: domains}

	out := &ast.Program{MaxTS: opts.maxPending()}
	for _, g := range p.Globals {
		out.Globals = append(out.Globals, &ast.VarDecl{Name: g.Name, Pos: g.Pos})
	}
	out.Globals = append(out.Globals,
		&ast.VarDecl{Name: RoundVar},
		&ast.VarDecl{Name: RaiseVar},
		&ast.VarDecl{Name: ErrVar},
	)
	for r := 1; r <= tr.R; r++ {
		for _, g := range vg {
			out.Globals = append(out.Globals, &ast.VarDecl{Name: curVar(r, g)})
		}
	}
	for r := 2; r <= tr.R; r++ {
		out.Globals = append(out.Globals, &ast.VarDecl{Name: usedVar(r)})
		for _, g := range vg {
			out.Globals = append(out.Globals, &ast.VarDecl{Name: guessVar(r, g)})
		}
	}

	asyncTargets := map[string]bool{}
	for _, f := range p.Funcs {
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			if a, ok := s.(*ast.AsyncStmt); ok {
				asyncTargets[a.Fn.(*ast.FuncLit).Name] = true
			}
			return true
		})
	}

	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, tr.function(f))
		if asyncTargets[f.Name] {
			out.Funcs = append(out.Funcs, tr.wrapper(f))
		}
	}
	out.Funcs = append(out.Funcs, tr.saveFunc(), tr.loadFunc())
	if tr.R > 1 {
		for r := 2; r <= tr.R; r++ {
			out.Funcs = append(out.Funcs, tr.guessFunc(r))
		}
		out.Funcs = append(out.Funcs, tr.advanceFunc(), tr.yieldFunc())
	}
	out.Funcs = append(out.Funcs, tr.finFunc(), tr.driver())

	lower.Program(out)
	if err := sema.Check(out, sema.Transformed); err != nil {
		return nil, fmt.Errorf("cbseq: internal error: transformed program ill-formed: %w", err)
	}
	return out, nil
}

func checkReservedNames(p *ast.Program) error {
	bad := func(name string) bool { return strings.HasPrefix(name, "__") }
	for _, g := range p.Globals {
		if bad(g.Name) {
			return fmt.Errorf("cbseq: global %q uses the reserved '__' prefix", g.Name)
		}
	}
	for _, f := range p.Funcs {
		if bad(f.Name) {
			return fmt.Errorf("cbseq: function %q uses the reserved '__' prefix", f.Name)
		}
	}
	return nil
}

type transformer struct {
	src     *ast.Program
	opts    Options
	R       int
	vg      []string // versioned globals, sorted
	domains map[string]domain
}

// function translates one source function f into [[f]].
func (tr *transformer) function(f *ast.Func) *ast.Func {
	nf := &ast.Func{
		Name:   TranslatedName(f.Name),
		Params: append([]string(nil), f.Params...),
		Pos:    f.Pos,
	}
	for _, l := range f.Locals {
		nf.Locals = append(nf.Locals, &ast.VarDecl{Name: l.Name, Pos: l.Pos})
	}
	nf.Body = tr.block(f.Body)
	return nf
}

func (tr *transformer) block(b *ast.Block) *ast.Block {
	out := &ast.Block{Pos: b.Pos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, tr.stmt(s)...)
	}
	return out
}

// prefix is the instrumentation before every statement:
//
//	__cb_yield(); choice{skip [] RAISE}
//
// The yield performs zero or more round advances (each guessing the next
// round's snapshot); the choice lets the thread retire for good.
func (tr *transformer) prefix() []ast.Stmt {
	out := make([]ast.Stmt, 0, 2)
	if tr.R > 1 {
		out = append(out, ast.CallDirect("", YieldFn))
	}
	out = append(out, ast.Choice(
		ast.Blk(ast.Skip()),
		ast.Blk(ast.Set(RaiseVar, ast.B(true)), ast.Ret(nil)),
	))
	return out
}

func (tr *transformer) stmt(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.Block:
		return []ast.Stmt{tr.block(s)}

	case *ast.AssignStmt:
		out := tr.prefix()
		return append(out, &ast.AssignStmt{Lhs: tr.expr(s.Lhs), Rhs: tr.expr(s.Rhs), Pos: s.Pos})

	case *ast.AssertStmt:
		// Deferred: a failure observed now might live on a run whose
		// snapshot guesses never link up. Record it and let __cb_fin
		// report it only after the linking assumes validate the run.
		out := tr.prefix()
		return append(out, deferAssert(s))

	case *ast.AssumeStmt:
		out := tr.prefix()
		return append(out, &ast.AssumeStmt{Cond: tr.expr(s.Cond), Pos: s.Pos})

	case *ast.AtomicStmt:
		// One yield point before the body, none inside: nothing can
		// interleave with an atomic section, and in the sequential output
		// the wrapper itself is dropped. Asserts inside are still deferred.
		out := tr.prefix()
		body := tr.atomicBody(s.Body)
		return append(out, body.Stmts...)

	case *ast.CallStmt:
		out := tr.prefix()
		out = append(out, &ast.CallStmt{
			Result: s.Result,
			Fn:     tr.expr(s.Fn),
			Args:   tr.exprs(s.Args),
			Pos:    s.Pos,
		})
		return append(out, ast.If(ast.V(RaiseVar), ast.Blk(ast.Ret(nil)), nil))

	case *ast.AsyncStmt:
		// [[async f()]] = prefix;
		//   if (size() < MAX) put(__cbt_f, args..., round)
		//   else { [[f]](args...); raise := false }
		// The wrapper re-enters the creation round before running the
		// body; the inline fallback runs the child entirely at the fork
		// point (a feasible zero-switch schedule for it).
		out := tr.prefix()
		target := s.Fn.(*ast.FuncLit).Name
		putArgs := append(tr.exprs(s.Args), ast.V(RoundVar))
		put := &ast.TsPutStmt{Fn: ast.Fn(WrapperName(target)), Args: putArgs, Pos: s.Pos}
		inline := &ast.CallStmt{Fn: ast.Fn(TranslatedName(target)), Args: tr.exprs(s.Args)}
		els := ast.Blk(inline, ast.Set(RaiseVar, ast.B(false)))
		out = append(out, ast.If(
			ast.Bin("<", &ast.TsSizeExpr{}, ast.I(int64(tr.opts.maxPending()))),
			ast.Blk(put),
			els,
		))
		return out

	case *ast.ReturnStmt:
		// A return is itself a context-switch point but never a useful
		// retirement point, so: yield; return.
		var out []ast.Stmt
		if tr.R > 1 {
			out = append(out, ast.CallDirect("", YieldFn))
		}
		return append(out, &ast.ReturnStmt{Value: tr.expr(s.Value), Pos: s.Pos})

	case *ast.BenignStmt:
		// Race-mode annotation; cb checks assertions only, so the body is
		// translated and the annotation disappears.
		return tr.block(s.Body).Stmts

	case *ast.ChoiceStmt:
		c := &ast.ChoiceStmt{Pos: s.Pos}
		for _, b := range s.Branches {
			c.Branches = append(c.Branches, tr.block(b))
		}
		return []ast.Stmt{c}

	case *ast.IterStmt:
		return []ast.Stmt{&ast.IterStmt{Body: tr.block(s.Body), Pos: s.Pos}}

	case *ast.SkipStmt:
		out := tr.prefix()
		return append(out, &ast.SkipStmt{Pos: s.Pos})

	case *ast.IfStmt, *ast.WhileStmt:
		panic("cbseq: sugar statement in core program")

	default:
		panic(fmt.Sprintf("cbseq: cannot translate statement %T", s))
	}
}

// atomicBody copies an atomic body without yield/retire instrumentation,
// still deferring asserts and rewriting function constants.
func (tr *transformer) atomicBody(b *ast.Block) *ast.Block {
	out := &ast.Block{Pos: b.Pos}
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.Block:
			out.Stmts = append(out.Stmts, tr.atomicBody(s))
		case *ast.AssertStmt:
			out.Stmts = append(out.Stmts, deferAssert(s))
		case *ast.ChoiceStmt:
			c := &ast.ChoiceStmt{Pos: s.Pos}
			for _, br := range s.Branches {
				c.Branches = append(c.Branches, tr.atomicBody(br))
			}
			out.Stmts = append(out.Stmts, c)
		case *ast.IterStmt:
			out.Stmts = append(out.Stmts, &ast.IterStmt{Body: tr.atomicBody(s.Body), Pos: s.Pos})
		default:
			c := ast.CloneStmt(s)
			rewriteFuncLitsStmt(c)
			out.Stmts = append(out.Stmts, c)
		}
	}
	return out
}

// deferAssert turns assert(c) into if (!c) { err := 1 }.
func deferAssert(s *ast.AssertStmt) ast.Stmt {
	cond := rewriteFuncLitsExpr(ast.CloneExpr(s.Cond))
	ifs := ast.If(ast.Not(cond), ast.Blk(ast.Set(ErrVar, ast.I(1))), nil)
	ifs.Pos = s.Pos
	return ifs
}

// expr clones an expression, rewriting every function-name constant f to
// [[f]], so indirect calls through variables dispatch to translated code.
func (tr *transformer) expr(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	return rewriteFuncLitsExpr(ast.CloneExpr(e))
}

func (tr *transformer) exprs(es []ast.Expr) []ast.Expr {
	out := make([]ast.Expr, len(es))
	for i, e := range es {
		out[i] = tr.expr(e)
	}
	return out
}

func rewriteFuncLitsStmt(s ast.Stmt) {
	ast.WalkStmts(s, func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			s.Lhs = rewriteFuncLitsExpr(s.Lhs)
			s.Rhs = rewriteFuncLitsExpr(s.Rhs)
		case *ast.AssertStmt:
			s.Cond = rewriteFuncLitsExpr(s.Cond)
		case *ast.AssumeStmt:
			s.Cond = rewriteFuncLitsExpr(s.Cond)
		}
		return true
	})
}

func rewriteFuncLitsExpr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.FuncLit:
		return &ast.FuncLit{Name: TranslatedName(e.Name), Pos: e.Pos}
	case *ast.UnaryExpr:
		e.X = rewriteFuncLitsExpr(e.X)
	case *ast.BinaryExpr:
		e.X = rewriteFuncLitsExpr(e.X)
		e.Y = rewriteFuncLitsExpr(e.Y)
	}
	return e
}

// wrapper generates __cbt_f, the ts entry for async target f: it parks
// the interrupted thread's view, re-enters the child's creation round,
// runs the body, and clears any retirement raise.
func (tr *transformer) wrapper(f *ast.Func) *ast.Func {
	params := append(append([]string(nil), f.Params...), "__cb_t0")
	var args []ast.Expr
	for _, p := range f.Params {
		args = append(args, ast.V(p))
	}
	body := ast.Blk(
		ast.CallDirect("", SaveFn),
		ast.Set(RoundVar, ast.V("__cb_t0")),
		ast.CallDirect("", LoadFn),
		ast.Call("", ast.Fn(TranslatedName(f.Name)), args...),
		ast.Set(RaiseVar, ast.B(false)),
	)
	return &ast.Func{Name: WrapperName(f.Name), Params: params, Body: body}
}

// roundSwitch builds if (round == 1) {arm(1)} else if (round == 2) ... for
// rounds lo..hi, with an empty final else.
func (tr *transformer) roundSwitch(lo, hi int, arm func(r int) []ast.Stmt) ast.Stmt {
	if lo > hi {
		return ast.Skip()
	}
	stmts := arm(lo)
	if len(stmts) == 0 {
		stmts = []ast.Stmt{ast.Skip()}
	}
	if lo == hi {
		return ast.If(ast.Eq(ast.V(RoundVar), ast.I(int64(lo))), ast.Blk(stmts...), nil)
	}
	return ast.If(ast.Eq(ast.V(RoundVar), ast.I(int64(lo))),
		ast.Blk(stmts...),
		ast.Blk(tr.roundSwitch(lo+1, hi, arm)))
}

// saveFunc: active shared globals -> cur[round].
func (tr *transformer) saveFunc() *ast.Func {
	body := ast.Blk(tr.roundSwitch(1, tr.R, func(r int) []ast.Stmt {
		var out []ast.Stmt
		for _, g := range tr.vg {
			out = append(out, ast.Set(curVar(r, g), ast.V(g)))
		}
		return out
	}))
	return &ast.Func{Name: SaveFn, Body: body}
}

// loadFunc: cur[round] -> active shared globals.
func (tr *transformer) loadFunc() *ast.Func {
	body := ast.Blk(tr.roundSwitch(1, tr.R, func(r int) []ast.Stmt {
		var out []ast.Stmt
		for _, g := range tr.vg {
			out = append(out, ast.Set(g, ast.V(curVar(r, g))))
		}
		return out
	}))
	return &ast.Func{Name: LoadFn, Body: body}
}

// guessFunc generates __cb_guess_r: on the first entry into round r,
// nondeterministically pick round r's entry snapshot for every shared
// global from its finite domain. The guess is stored twice — once
// immutably for the final linking check, once as the evolving round-r
// view. Guessing lazily (only for rounds actually entered) keeps runs
// that never reach round r free of its branching entirely.
func (tr *transformer) guessFunc(r int) *ast.Func {
	var inner []ast.Stmt
	inner = append(inner, ast.Set(usedVar(r), ast.I(1)))
	for _, g := range tr.vg {
		vals := tr.domains[g].values()
		if len(vals) == 1 {
			inner = append(inner, ast.Set(guessVar(r, g), vals[0]))
			continue
		}
		var branches []*ast.Block
		for _, v := range vals {
			branches = append(branches, ast.Blk(ast.Set(guessVar(r, g), v)))
		}
		inner = append(inner, ast.Choice(branches...))
	}
	for _, g := range tr.vg {
		inner = append(inner, ast.Set(curVar(r, g), ast.V(guessVar(r, g))))
	}
	body := ast.Blk(ast.If(ast.Eq(ast.V(usedVar(r)), ast.I(0)), ast.Blk(inner...), nil))
	return &ast.Func{Name: GuessFnPrefix + fmt.Sprint(r), Body: body}
}

// advanceFunc: one round advance — park the current view, materialize the
// next round's snapshot if this is its first entry, switch to it.
func (tr *transformer) advanceFunc() *ast.Func {
	body := ast.Blk(
		ast.CallDirect("", SaveFn),
		tr.roundSwitch(1, tr.R-1, func(r int) []ast.Stmt {
			return []ast.Stmt{ast.CallDirect("", GuessFnPrefix+fmt.Sprint(r+1))}
		}),
		ast.Set(RoundVar, ast.Add(ast.V(RoundVar), ast.I(1))),
		ast.CallDirect("", LoadFn),
	)
	return &ast.Func{Name: AdvanceFn, Body: body}
}

// yieldFunc: a nondeterministic number of round advances (zero or more,
// never past round R).
func (tr *transformer) yieldFunc() *ast.Func {
	body := ast.Blk(ast.Iter(ast.Blk(
		ast.Assume(ast.Bin("<", ast.V(RoundVar), ast.I(int64(tr.R)))),
		ast.CallDirect("", AdvanceFn),
	)))
	return &ast.Func{Name: YieldFn, Body: body}
}

// finFunc generates __cb_fin, run after every thread has completed: park
// the last view, then for every round that was entered assume its guessed
// entry snapshot equals the final values the previous round actually
// produced. Runs with wrong guesses die here — before the deferred
// assert — so only real interleavings can report a failure. (Entered
// rounds form a contiguous prefix 2..max, since guessing happens on
// advance.)
func (tr *transformer) finFunc() *ast.Func {
	var stmts []ast.Stmt
	stmts = append(stmts, ast.CallDirect("", SaveFn))
	for r := 2; r <= tr.R; r++ {
		var links []ast.Stmt
		for _, g := range tr.vg {
			links = append(links, ast.Assume(ast.Eq(ast.V(curVar(r-1, g)), ast.V(guessVar(r, g)))))
		}
		if len(links) == 0 {
			continue
		}
		stmts = append(stmts, ast.If(ast.Eq(ast.V(usedVar(r)), ast.I(1)), ast.Blk(links...), nil))
	}
	stmts = append(stmts, ast.Assert(ast.Eq(ast.V(ErrVar), ast.I(0))))
	return &ast.Func{Name: FinFn, Body: ast.Blk(stmts...)}
}

// driver generates the output's main: run [[main]], drain every deferred
// thread (each resuming at its creation round), then link and report.
func (tr *transformer) driver() *ast.Func {
	body := ast.Blk(
		ast.Set(RoundVar, ast.I(1)),
		// The raise flag must be a bool before the first `if (__cb_raise)`
		// check runs: globals start life as int 0, and lowering negates the
		// flag, which is a runtime error on a non-boolean.
		ast.Set(RaiseVar, ast.B(false)),
		ast.CallDirect("", TranslatedName("main")),
		ast.Set(RaiseVar, ast.B(false)),
		ast.While(ast.Bin(">", &ast.TsSizeExpr{}, ast.I(0)), ast.Blk(
			&ast.TsDispatchStmt{},
			ast.Set(RaiseVar, ast.B(false)),
		)),
		ast.CallDirect("", FinFn),
	)
	return &ast.Func{Name: "main", Body: body}
}
