package cbseq

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/kiss"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/seqcheck"
	"repro/internal/sema"
)

func parseLowered(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p, sema.Source); err != nil {
		t.Fatalf("sema: %v", err)
	}
	lower.Program(p)
	return p
}

// checkCB transforms under CB(K) and runs seqcheck, returning the verdict.
func checkCB(t *testing.T, src string, k int) seqcheck.Verdict {
	t.Helper()
	out, err := Transform(parseLowered(t, src), Options{ContextSwitches: k})
	if err != nil {
		t.Fatalf("cb(%d) transform: %v", k, err)
	}
	c, err := sem.Compile(out)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r := seqcheck.Check(c, seqcheck.Options{MaxStates: 2_000_000})
	if r.Verdict == seqcheck.ResourceBound {
		t.Fatalf("cb(%d): resource bound tripped on a test program", k)
	}
	return r.Verdict
}

// checkKISS runs the KISS pipeline (ts bound 2) on the same source.
func checkKISS(t *testing.T, src string) seqcheck.Verdict {
	t.Helper()
	out, err := kiss.Transform(parseLowered(t, src), kiss.Options{MaxTS: 2})
	if err != nil {
		t.Fatalf("kiss transform: %v", err)
	}
	c, err := sem.Compile(out)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r := seqcheck.Check(c, seqcheck.Options{MaxStates: 2_000_000})
	if r.Verdict == seqcheck.ResourceBound {
		t.Fatalf("kiss: resource bound tripped on a test program")
	}
	return r.Verdict
}

const smallSrc = `
var g;
func worker(v) {
  g = v;
  return v;
}
func main() {
  var r;
  async worker(1);
  r = worker(2);
  assert(g > 0);
}
`

func TestTransformProducesSequentialProgram(t *testing.T) {
	p := parseLowered(t, smallSrc)
	out, err := Transform(p, Options{ContextSwitches: 2})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if err := sema.Check(out, sema.Transformed); err != nil {
		t.Fatalf("output ill-formed: %v", err)
	}
	if ok, why := lower.IsCore(out); !ok {
		t.Fatalf("output not core: %s", why)
	}
	if ast.UsesConcurrency(out) {
		t.Fatal("output still contains async/atomic")
	}
	if out.MaxTS != DefaultMaxPending {
		t.Errorf("MaxTS not recorded: %d", out.MaxTS)
	}
}

func TestTransformedOutputReparses(t *testing.T) {
	p := parseLowered(t, smallSrc)
	out, err := Transform(p, Options{ContextSwitches: 1})
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	back, err := parser.Parse(ast.Print(out))
	if err != nil {
		t.Fatalf("printed output does not reparse: %v", err)
	}
	if err := sema.Check(back, sema.Transformed); err != nil {
		t.Fatalf("reparsed output ill-formed: %v", err)
	}
}

// resume2Src needs the forked worker to be suspended once and resumed:
// main and worker hand a phase token back and forth (M W M W). KISS's
// ts discipline kills a dispatched thread at its first yield, so the
// worker can never reach its assert; one guessed context switch (CB(1))
// is enough to simulate the handshake.
const resume2Src = `
var phase;
func worker() {
  assume(phase == 1);
  phase = 2;
  assume(phase == 3);
  assert(false);
}
func main() {
  async worker();
  phase = 1;
  assume(phase == 2);
  phase = 3;
}
`

func TestWorkerResumptionFoundAtK1MissedByKiss(t *testing.T) {
	if v := checkKISS(t, resume2Src); v != seqcheck.Safe {
		t.Fatalf("kiss verdict = %v, want Safe (ts discipline cannot resume the worker)", v)
	}
	if v := checkCB(t, resume2Src, 0); v != seqcheck.Safe {
		t.Fatalf("cb(0) verdict = %v, want Safe (no switches, handshake cannot complete)", v)
	}
	for k := 1; k <= 3; k++ {
		if v := checkCB(t, resume2Src, k); v != seqcheck.Error {
			t.Fatalf("cb(%d) verdict = %v, want Error", k, v)
		}
	}
}

// resume3Src is the three-phase variant (M W M W M): main needs three
// contexts, so two guessed switches (CB(2)) are required and CB(1) must
// still miss it — the monotone frontier in K.
const resume3Src = `
var phase;
func worker() {
  assume(phase == 1);
  phase = 2;
  assume(phase == 3);
  phase = 4;
}
func main() {
  async worker();
  phase = 1;
  assume(phase == 2);
  phase = 3;
  assume(phase == 4);
  assert(false);
}
`

func TestThreePhaseHandshakeNeedsTwoSwitches(t *testing.T) {
	if v := checkKISS(t, resume3Src); v != seqcheck.Safe {
		t.Fatalf("kiss verdict = %v, want Safe", v)
	}
	if v := checkCB(t, resume3Src, 1); v != seqcheck.Safe {
		t.Fatalf("cb(1) verdict = %v, want Safe", v)
	}
	for k := 2; k <= 4; k++ {
		if v := checkCB(t, resume3Src, k); v != seqcheck.Error {
			t.Fatalf("cb(%d) verdict = %v, want Error", k, v)
		}
	}
}

// A safe program stays safe: per-statement increments cannot be lost, so
// the assert holds under every interleaving, and no combination of
// guessed snapshots may survive linking and report it.
func TestSafeProgramStaysSafe(t *testing.T) {
	src := `
var g;
func worker() { g = g + 1; }
func main() {
  async worker();
  g = g + 1;
  assert(g <= 2);
}
`
	for k := 0; k <= 3; k++ {
		if v := checkCB(t, src, k); v != seqcheck.Safe {
			t.Fatalf("cb(%d) verdict = %v, want Safe", k, v)
		}
	}
}

// The guess domain contains a transient value (2) that no linkable
// snapshot can hold: the atomic writes 2 then 1 without an observable
// point between them. The deferred-error flag plus the linking assumes
// must prune the run where main guesses g == 2, not report it.
func TestTransientValueGuessDoesNotLink(t *testing.T) {
	src := `
var g;
func worker() {
  atomic {
    g = 2;
    g = 1;
  }
}
func main() {
  async worker();
  assert(g != 2);
}
`
	for k := 0; k <= 3; k++ {
		if v := checkCB(t, src, k); v != seqcheck.Safe {
			t.Fatalf("cb(%d) verdict = %v, want Safe (guess g=2 must not link)", k, v)
		}
	}
}

// A tight pending bound falls back to inlining forks synchronously —
// still sound, still able to find the straight write-after-fork bug.
func TestPendingOverflowInlinesForks(t *testing.T) {
	src := `
var g;
func worker() { g = g + 1; }
func main() {
  async worker();
  async worker();
  async worker();
  assert(g < 3);
}
`
	out, err := Transform(parseLowered(t, src), Options{ContextSwitches: 2, MaxPending: 1})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	c, err := sem.Compile(out)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r := seqcheck.Check(c, seqcheck.Options{MaxStates: 2_000_000})
	if r.Verdict != seqcheck.Error {
		t.Fatalf("verdict = %v, want Error (three increments reach g == 3)", r.Verdict)
	}
}

// A synchronous call in checked code exercises the post-call raise
// check; the driver must have initialized the raise flag to a bool by
// then (globals start life as int 0, and negating an int is a runtime
// error the checker would report as a spurious bug).
func TestSyncCallRaiseCheckDoesNotMisfire(t *testing.T) {
	src := `
var g;
func helper() { g = g + 1; }
func main() {
  helper();
  async helper();
  assert(g <= 2);
}
`
	for k := 0; k <= 2; k++ {
		if v := checkCB(t, src, k); v != seqcheck.Safe {
			t.Fatalf("cb(%d) verdict = %v, want Safe", k, v)
		}
	}
}

func TestUnsupportedHeapProgram(t *testing.T) {
	src := `
record R { f; }
var p;
func main() {
  p = new R;
  p->f = 1;
  assert(p->f == 1);
}
`
	_, err := Transform(parseLowered(t, src), Options{ContextSwitches: 2})
	if err == nil || !IsUnsupported(err) {
		t.Fatalf("want UnsupportedError for heap program, got %v", err)
	}
}

func TestUnsupportedMixedKindSharedGlobal(t *testing.T) {
	src := `
var flag;
func worker() { flag = true; }
func main() {
  async worker();
  flag = 1;
  assert(flag == 1);
}
`
	_, err := Transform(parseLowered(t, src), Options{ContextSwitches: 2})
	if err == nil || !IsUnsupported(err) {
		t.Fatalf("want UnsupportedError for mixed-kind shared global, got %v", err)
	}
}

func TestBoolSharedGlobalSupported(t *testing.T) {
	src := `
var done;
func worker() { done = true; }
func main() {
  async worker();
  assume(done);
  assert(false);
}
`
	if v := checkCB(t, src, 1); v != seqcheck.Error {
		t.Fatalf("cb(1) verdict = %v, want Error (done can be observed true)", v)
	}
}

func TestReservedNamesRejected(t *testing.T) {
	src := `var __cb_x; func main() { __cb_x = 1; }`
	if _, err := Transform(parseLowered(t, src), Options{}); err == nil {
		t.Fatal("want error for reserved '__' prefix")
	}
}

func TestNegativeBoundRejected(t *testing.T) {
	if _, err := Transform(parseLowered(t, smallSrc), Options{ContextSwitches: -1}); err == nil {
		t.Fatal("want error for negative context-switch bound")
	}
}

func TestOriginalNameRoundTrip(t *testing.T) {
	if got, ok := OriginalName(TranslatedName("f")); !ok || got != "f" {
		t.Errorf("OriginalName(TranslatedName(f)) = %q, %v", got, ok)
	}
	if got, ok := OriginalName(WrapperName("f")); !ok || got != "f" {
		t.Errorf("OriginalName(WrapperName(f)) = %q, %v", got, ok)
	}
	if _, ok := OriginalName(YieldFn); ok {
		t.Errorf("OriginalName(%s) should not resolve", YieldFn)
	}
}
