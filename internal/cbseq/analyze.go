package cbseq

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ast"
)

// UnsupportedError reports a program construct outside the CB transform's
// supported fragment. The fragment is deliberately narrow: threads may
// share only scalar (int- or bool-valued) globals, because the round
// snapshots are guessed from a finite value domain and a guessed value of
// the wrong kind could fabricate a runtime error that no real execution
// exhibits (arithmetic on a bool, call of a non-function), which would
// break the transform's soundness.
type UnsupportedError struct {
	Reason string
	Pos    ast.Pos
}

func (e *UnsupportedError) Error() string {
	if (e.Pos != ast.Pos{}) {
		return fmt.Sprintf("cbseq: unsupported program: %s (at %s)", e.Reason, e.Pos)
	}
	return fmt.Sprintf("cbseq: unsupported program: %s", e.Reason)
}

func unsup(pos ast.Pos, format string, args ...any) *UnsupportedError {
	return &UnsupportedError{Reason: fmt.Sprintf(format, args...), Pos: pos}
}

// IsUnsupported reports whether err (or anything it wraps) is an
// *UnsupportedError — a program outside the CB fragment, as opposed to an
// ill-formed program or an internal failure. Callers running corpus
// sweeps use it to report "unsupported" honestly instead of aborting.
func IsUnsupported(err error) bool {
	var u *UnsupportedError
	return errors.As(err, &u)
}

// checkSupported rejects programs outside the CB fragment: any heap or
// pointer operation (objects reachable from several threads would need
// versioned snapshots of unbounded shape), and asynchronous calls through
// a variable (the creation round must be attached to a statically known
// thread wrapper).
func checkSupported(p *ast.Program) error {
	var bad *UnsupportedError
	for _, f := range p.Funcs {
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			if bad != nil {
				return false
			}
			if a, ok := s.(*ast.AsyncStmt); ok {
				if _, direct := a.Fn.(*ast.FuncLit); !direct {
					bad = unsup(a.StmtPos(), "async through a variable; cb needs a statically known thread entry")
					return false
				}
			}
			ast.WalkExprs(s, func(e ast.Expr) {
				if bad != nil {
					return
				}
				switch e := e.(type) {
				case *ast.NewExpr:
					bad = unsup(s.StmtPos(), "heap allocation (new %s); cb versions only scalar globals", e.Record)
				case *ast.DerefExpr, *ast.FieldExpr, *ast.AddrFieldExpr, *ast.AddrOfExpr:
					bad = unsup(s.StmtPos(), "pointer or heap access; cb versions only scalar globals")
				}
			})
			return bad == nil
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

// sharedGlobals returns the names of globals accessed by code reachable
// from any async target — the globals whose value can change between two
// contexts of the same thread and therefore need per-round versions and
// guesses. Globals touched only by main keep their single unversioned
// cell: no other thread can observe or modify them, so their value
// legitimately persists across round boundaries.
//
// Reachability is over the static call graph of direct calls; if any call
// goes through a variable, every function is conservatively reachable.
func sharedGlobals(p *ast.Program) map[string]bool {
	calls := map[string][]string{} // direct call edges
	indirect := false
	entries := map[string]bool{} // async targets
	for _, f := range p.Funcs {
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			switch s := s.(type) {
			case *ast.CallStmt:
				if fl, ok := s.Fn.(*ast.FuncLit); ok {
					calls[f.Name] = append(calls[f.Name], fl.Name)
				} else {
					indirect = true
				}
			case *ast.AsyncStmt:
				if fl, ok := s.Fn.(*ast.FuncLit); ok {
					entries[fl.Name] = true
					calls[f.Name] = append(calls[f.Name], fl.Name)
				}
			}
			return true
		})
	}

	reach := map[string]bool{}
	if indirect {
		if len(entries) > 0 {
			for _, f := range p.Funcs {
				reach[f.Name] = true
			}
		}
	} else {
		var visit func(string)
		visit = func(name string) {
			if reach[name] {
				return
			}
			reach[name] = true
			for _, callee := range calls[name] {
				visit(callee)
			}
		}
		for e := range entries {
			visit(e)
		}
	}

	globals := map[string]bool{}
	for _, g := range p.Globals {
		globals[g.Name] = true
	}
	shared := map[string]bool{}
	for _, f := range p.Funcs {
		if !reach[f.Name] {
			continue
		}
		local := map[string]bool{}
		for _, v := range f.Params {
			local[v] = true
		}
		for _, v := range f.Locals {
			local[v.Name] = true
		}
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			ast.WalkExprs(s, func(e ast.Expr) {
				if v, ok := e.(*ast.VarExpr); ok && globals[v.Name] && !local[v.Name] {
					shared[v.Name] = true
				}
			})
			return true
		})
	}
	return shared
}

// valset is the abstract value set of one variable in the flow-insensitive
// constant-propagation pass that derives guess domains.
type valset struct {
	ints   map[int64]bool
	bools  bool // some bool constant flows here
	funcs  bool // some function constant flows here
	null   bool // the null constant flows here
	arith  bool // an int-producing expression (arithmetic) flows here
	boolex bool // a bool-producing expression (comparison, !, &&, ||) flows here
	top    bool // an unknowable value (indirect-call result) flows here
}

func newValset() *valset { return &valset{ints: map[int64]bool{}} }

// mergeFrom unions src into dst, reporting whether dst changed.
func (dst *valset) mergeFrom(src *valset) bool {
	changed := false
	for v := range src.ints {
		if !dst.ints[v] {
			dst.ints[v] = true
			changed = true
		}
	}
	set := func(d *bool, s bool) {
		if s && !*d {
			*d = true
			changed = true
		}
	}
	set(&dst.bools, src.bools)
	set(&dst.funcs, src.funcs)
	set(&dst.null, src.null)
	set(&dst.arith, src.arith)
	set(&dst.boolex, src.boolex)
	set(&dst.top, src.top)
	return changed
}

// domain is the finite guess domain inferred for one shared global.
type domain struct {
	boolKind bool    // {false, true}
	ints     []int64 // int kind: sorted candidate values
}

func (d domain) values() []ast.Expr {
	if d.boolKind {
		return []ast.Expr{ast.B(false), ast.B(true)}
	}
	out := make([]ast.Expr, len(d.ints))
	for i, v := range d.ints {
		out[i] = ast.I(v)
	}
	return out
}

// domainCap bounds the number of int candidates guessed per global per
// round: each extra value multiplies the branching at a round's first
// entry, and a domain that misses a reachable value only shrinks coverage
// (the linking assume prunes the run), never soundness.
const domainCap = 16

// inferDomains runs a flow-insensitive dataflow over assignments, call
// argument bindings, and returns to compute, for every shared global, a
// kind-stable finite set of candidate snapshot values. Kind stability is
// load-bearing: guessing an int where the program stores bools (or a
// function, or null) could manufacture runtime type errors on paths no
// real execution takes. Globals whose kind cannot be pinned to int or
// bool are rejected as unsupported.
func inferDomains(p *ast.Program, shared map[string]bool, extra []int64) (map[string]domain, error) {
	sets := map[string]*valset{}
	at := func(key string) *valset {
		s := sets[key]
		if s == nil {
			s = newValset()
			sets[key] = s
		}
		return s
	}
	var edges [][2]string // value flow: from key -> to key
	edge := func(from, to string) { edges = append(edges, [2]string{from, to}) }

	globals := map[string]bool{}
	for _, g := range p.Globals {
		globals[g.Name] = true
	}
	funcByName := map[string]*ast.Func{}
	for _, f := range p.Funcs {
		funcByName[f.Name] = f
	}

	// programInts collects every int literal in the program; it widens the
	// domain of globals fed by arithmetic.
	programInts := map[int64]bool{0: true}

	for _, f := range p.Funcs {
		local := map[string]bool{}
		for _, v := range f.Params {
			local[v] = true
		}
		for _, v := range f.Locals {
			local[v.Name] = true
		}
		key := func(name string) string {
			if local[name] || !globals[name] {
				return "l:" + f.Name + ":" + name
			}
			return "g:" + name
		}
		retKey := "r:" + f.Name

		// classify records the value of expression e flowing into dst.
		classify := func(dst string, e ast.Expr) {
			switch e := e.(type) {
			case *ast.IntLit:
				at(dst).ints[e.Value] = true
			case *ast.BoolLit:
				at(dst).bools = true
			case *ast.NullLit:
				at(dst).null = true
			case *ast.FuncLit:
				at(dst).funcs = true
			case *ast.VarExpr:
				edge(key(e.Name), dst)
			case *ast.UnaryExpr:
				if e.Op == "!" {
					at(dst).boolex = true
				} else if il, ok := e.X.(*ast.IntLit); ok && e.Op == "-" {
					at(dst).ints[-il.Value] = true
				} else {
					at(dst).arith = true
				}
			case *ast.BinaryExpr:
				switch e.Op {
				case "+", "-", "*":
					at(dst).arith = true
				default:
					at(dst).boolex = true
				}
			default:
				at(dst).top = true
			}
		}
		bindArgs := func(callee string, args []ast.Expr) {
			cf := funcByName[callee]
			if cf == nil {
				return
			}
			for i, a := range args {
				if i < len(cf.Params) {
					classify("l:"+callee+":"+cf.Params[i], a)
				}
			}
		}

		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			ast.WalkExprs(s, func(e ast.Expr) {
				if il, ok := e.(*ast.IntLit); ok {
					programInts[il.Value] = true
				}
			})
			switch s := s.(type) {
			case *ast.AssignStmt:
				if lv, ok := s.Lhs.(*ast.VarExpr); ok {
					classify(key(lv.Name), s.Rhs)
				}
			case *ast.CallStmt:
				if fl, ok := s.Fn.(*ast.FuncLit); ok {
					bindArgs(fl.Name, s.Args)
					if s.Result != "" {
						edge("r:"+fl.Name, key(s.Result))
					}
				} else if s.Result != "" {
					at(key(s.Result)).top = true
				}
			case *ast.AsyncStmt:
				if fl, ok := s.Fn.(*ast.FuncLit); ok {
					bindArgs(fl.Name, s.Args)
				}
			case *ast.ReturnStmt:
				if s.Value != nil {
					classify(retKey, s.Value)
				}
			}
			return true
		})
	}

	// Fixpoint over the flow edges.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			src := sets[e[0]]
			if src == nil {
				continue
			}
			if at(e[1]).mergeFrom(src) {
				changed = true
			}
		}
	}

	out := map[string]domain{}
	var names []string
	for g := range shared {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		s := sets["g:"+g]
		if s == nil {
			s = newValset()
		}
		if s.top {
			return nil, unsup(ast.Pos{}, "shared global %q takes values cb cannot enumerate (indirect-call result)", g)
		}
		if s.funcs || s.null {
			return nil, unsup(ast.Pos{}, "shared global %q holds function or null values; cb guesses only int/bool snapshots", g)
		}
		boolKind := s.bools || s.boolex
		intKind := len(s.ints) > 0 || s.arith
		if boolKind && intKind {
			return nil, unsup(ast.Pos{}, "shared global %q mixes int and bool values; cb needs a kind-stable guess domain", g)
		}
		if boolKind {
			out[g] = domain{boolKind: true}
			continue
		}
		ints := map[int64]bool{0: true}
		for v := range s.ints {
			ints[v] = true
		}
		if s.arith {
			// Fed by arithmetic: widen with every literal in the program
			// plus one ±1 closure step, which covers single increments and
			// decrements around the constants the program compares against.
			for v := range programInts {
				ints[v] = true
			}
			base := make([]int64, 0, len(ints))
			for v := range ints {
				base = append(base, v)
			}
			for _, v := range base {
				ints[v+1] = true
				ints[v-1] = true
			}
		}
		for _, v := range extra {
			ints[v] = true
		}
		vals := make([]int64, 0, len(ints))
		for v := range ints {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if len(vals) > domainCap {
			vals = vals[:domainCap]
		}
		out[g] = domain{ints: vals}
	}
	return out, nil
}
