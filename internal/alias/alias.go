// Package alias implements a unification-based (Steensgaard-style),
// flow-insensitive, context-insensitive may-alias analysis for the parallel
// language. It plays the role of the pointer analysis of Das [12] in the
// KISS paper (Section 5): "We use a static alias analysis to optimize away
// most of the calls to check_r and check_w. If the alias analysis
// determines that the variable v being accessed cannot be aliased to the
// distinguished variable r, then the call to check_r (or check_w) has no
// effect and is therefore omitted in the instrumentation."
//
// Abstract locations are: one node per global, one node per (function,
// local) pair, one node per (record, field) pair, and one synthetic node
// per function return. Each equivalence class (union-find) carries a single
// points-to class and the set of record type names it may reference, as in
// Steensgaard's typed treatment of allocation.
package alias

import (
	"repro/internal/ast"
)

// node is a union-find element.
type node struct {
	parent *node
	rank   int
	// pts is the class this class points to (nil until first needed).
	pts *node
	// recs is the set of record type names objects in this class may have.
	recs map[string]bool
}

func (n *node) find() *node {
	for n.parent != nil {
		if n.parent.parent != nil {
			n.parent = n.parent.parent // path halving
		}
		n = n.parent
	}
	return n
}

// Analysis holds the solved constraint system.
type Analysis struct {
	prog    *ast.Program
	globals map[string]*node
	locals  map[string]map[string]*node // function -> var -> node
	fields  map[string]*node            // "record.field" -> node
	returns map[string]*node            // function -> return-value node

	// addressTaken lists functions whose name appears as a constant
	// anywhere other than a direct call target; indirect calls are
	// resolved conservatively against this set.
	addressTaken map[string]bool
}

// Analyze runs the analysis on a core-form program. (Running it on surface
// programs also works: it simply treats the same expression shapes.)
func Analyze(p *ast.Program) *Analysis {
	a := &Analysis{
		prog:         p,
		globals:      map[string]*node{},
		locals:       map[string]map[string]*node{},
		fields:       map[string]*node{},
		returns:      map[string]*node{},
		addressTaken: map[string]bool{},
	}
	for _, g := range p.Globals {
		a.globals[g.Name] = &node{}
	}
	for _, r := range p.Records {
		for _, f := range r.Fields {
			a.fields[r.Name+"."+f] = &node{}
		}
	}
	for _, f := range p.Funcs {
		m := map[string]*node{}
		for _, prm := range f.Params {
			m[prm] = &node{}
		}
		for _, l := range f.Locals {
			m[l.Name] = &node{}
		}
		a.locals[f.Name] = m
		a.returns[f.Name] = &node{}
	}
	a.collectAddressTaken()
	// Unification with evolving recs sets and indirect-call resolution is
	// iterated to a fixpoint; each pass only merges classes, so the
	// process terminates (the lattice of partitions is finite).
	for {
		if !a.pass() {
			break
		}
	}
	return a
}

// varNode returns the node of a variable in fn's scope (local first, then
// global); nil for unknown names (malformed programs).
func (a *Analysis) varNode(fn, name string) *node {
	if m, ok := a.locals[fn]; ok {
		if n, ok := m[name]; ok {
			return n
		}
	}
	return a.globals[name]
}

// tgt returns (creating if needed) the points-to class of n's class.
func tgt(n *node) *node {
	r := n.find()
	if r.pts == nil {
		r.pts = &node{}
	}
	return r.pts.find()
}

// union merges two classes, recursively unifying their points-to classes
// (Steensgaard's conditional join). Returns true if a merge happened.
func union(x, y *node) bool {
	x, y = x.find(), y.find()
	if x == y {
		return false
	}
	if x.rank < y.rank {
		x, y = y, x
	}
	y.parent = x
	if x.rank == y.rank {
		x.rank++
	}
	// merge record sets
	if y.recs != nil {
		if x.recs == nil {
			x.recs = map[string]bool{}
		}
		for r := range y.recs {
			x.recs[r] = true
		}
	}
	// unify points-to classes
	if y.pts != nil {
		if x.pts == nil {
			x.pts = y.pts
		} else {
			union(x.pts, y.pts)
		}
	}
	return true
}

func (a *Analysis) addRec(n *node, rec string) bool {
	r := n.find()
	if r.recs == nil {
		r.recs = map[string]bool{}
	}
	if r.recs[rec] {
		return false
	}
	r.recs[rec] = true
	return true
}

func (a *Analysis) recsOf(n *node) []string {
	r := n.find()
	out := make([]string, 0, len(r.recs))
	for name := range r.recs {
		out = append(out, name)
	}
	return out
}

func (a *Analysis) collectAddressTaken() {
	for _, f := range a.prog.Funcs {
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			skipDirect := map[ast.Expr]bool{}
			switch s := s.(type) {
			case *ast.CallStmt:
				skipDirect[s.Fn] = true
			case *ast.AsyncStmt:
				skipDirect[s.Fn] = true
			case *ast.TsPutStmt:
				skipDirect[s.Fn] = true
			}
			ast.WalkExprs(s, func(e ast.Expr) {
				if ce, ok := e.(*ast.CallExpr); ok {
					skipDirect[ce.Fn] = true
				}
			})
			ast.WalkExprs(s, func(e ast.Expr) {
				if fl, ok := e.(*ast.FuncLit); ok && !skipDirect[e] {
					a.addressTaken[fl.Name] = true
				}
			})
			return true
		})
	}
}

// pass runs all constraints once; reports whether anything changed.
func (a *Analysis) pass() bool {
	changed := false
	for _, f := range a.prog.Funcs {
		fn := f.Name
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			switch s := s.(type) {
			case *ast.AssignStmt:
				changed = a.assign(fn, s.Lhs, s.Rhs) || changed
			case *ast.CallStmt:
				changed = a.call(fn, s.Result, s.Fn, s.Args) || changed
			case *ast.AsyncStmt:
				changed = a.call(fn, "", s.Fn, s.Args) || changed
			case *ast.TsPutStmt:
				changed = a.call(fn, "", s.Fn, s.Args) || changed
			case *ast.ReturnStmt:
				if s.Value != nil {
					if rn := a.exprClass(fn, s.Value); rn != nil {
						changed = union(tgt(a.returns[fn]), tgt(rn)) || changed
					}
					changed = a.flowRecs(fn, s.Value, a.returns[fn]) || changed
				}
			}
			return true
		})
	}
	return changed
}

// exprClass returns the variable-like node whose *contents* correspond to
// evaluating e, or nil when e's value carries no pointers we track through
// variables (constants, arithmetic).
func (a *Analysis) exprClass(fn string, e ast.Expr) *node {
	switch e := e.(type) {
	case *ast.VarExpr:
		return a.varNode(fn, e.Name)
	case *ast.DerefExpr:
		if base := a.exprClass(fn, e.X); base != nil {
			return tgt(base)
		}
		return nil
	case *ast.FieldExpr:
		return a.fieldClassOf(fn, e.X, e.Field)
	}
	return nil
}

// fieldClassOf returns a node standing for base->field. When the base's
// record set is still empty the result is nil (no objects yet).
func (a *Analysis) fieldClassOf(fn string, base ast.Expr, field string) *node {
	bn := a.exprClass(fn, base)
	if bn == nil {
		return nil
	}
	// Merge the field nodes of every record the base may point to into a
	// single representative by unioning them (sound, possibly imprecise).
	var rep *node
	for _, rec := range a.recsOf(tgt(bn)) {
		fnode, ok := a.fields[rec+"."+field]
		if !ok {
			continue
		}
		if rep == nil {
			rep = fnode
		} else {
			union(rep, fnode)
		}
	}
	return rep
}

// assign processes lhs = rhs.
func (a *Analysis) assign(fn string, lhs, rhs ast.Expr) bool {
	changed := false

	// Resolve the class holding the assigned-to contents.
	var dst *node
	switch l := lhs.(type) {
	case *ast.VarExpr:
		dst = a.varNode(fn, l.Name)
	case *ast.DerefExpr:
		if base := a.exprClass(fn, l.X); base != nil {
			dst = tgt(base)
		}
	case *ast.FieldExpr:
		dst = a.fieldClassOf(fn, l.X, l.Field)
	}
	if dst == nil {
		return false
	}

	switch r := rhs.(type) {
	case *ast.VarExpr, *ast.DerefExpr, *ast.FieldExpr:
		if src := a.exprClass(fn, r.(ast.Expr)); src != nil {
			changed = union(tgt(dst), tgt(src)) || changed
			changed = a.flowRecs(fn, r.(ast.Expr), dst) || changed
		}
	case *ast.AddrOfExpr:
		if vn := a.varNode(fn, r.Name); vn != nil {
			changed = union(tgt(dst), vn) || changed
		}
	case *ast.AddrFieldExpr:
		if fnode := a.fieldClassOf(fn, r.X, r.Field); fnode != nil {
			changed = union(tgt(dst), fnode) || changed
		}
	case *ast.NewExpr:
		changed = a.addRec(tgt(dst), r.Record) || changed
	case *ast.CallExpr:
		changed = a.call(fn, "", r.Fn, r.Args) || changed
		// result flows handled in call via result name only for CallStmt;
		// core programs have no CallExpr, so this is best-effort.
	}
	return changed
}

// flowRecs propagates record-type sets when pointer values flow from src
// expression to dst class.
func (a *Analysis) flowRecs(fn string, src ast.Expr, dst *node) bool {
	sn := a.exprClass(fn, src)
	if sn == nil {
		return false
	}
	changed := false
	for _, rec := range a.recsOf(tgt(sn)) {
		changed = a.addRec(tgt(dst), rec) || changed
	}
	return changed
}

// call connects arguments to parameters and the result to the return node.
func (a *Analysis) call(fn, result string, fnExpr ast.Expr, args []ast.Expr) bool {
	changed := false
	var callees []*ast.Func
	switch t := fnExpr.(type) {
	case *ast.FuncLit:
		if f := a.prog.FindFunc(t.Name); f != nil {
			callees = append(callees, f)
		}
	case *ast.VarExpr:
		// Indirect call: conservatively any address-taken function with a
		// matching arity.
		for _, f := range a.prog.Funcs {
			if a.addressTaken[f.Name] && len(f.Params) == len(args) {
				callees = append(callees, f)
			}
		}
	}
	for _, callee := range callees {
		params := a.locals[callee.Name]
		for i, arg := range args {
			if i >= len(callee.Params) {
				break
			}
			an := a.exprClass(fn, arg)
			if an == nil {
				continue
			}
			pn := params[callee.Params[i]]
			changed = union(tgt(pn), tgt(an)) || changed
			changed = a.flowRecs(fn, arg, pn) || changed
		}
		if result != "" {
			if rn := a.varNode(fn, result); rn != nil {
				ret := a.returns[callee.Name]
				changed = union(tgt(rn), tgt(ret)) || changed
				for _, rec := range a.recsOf(tgt(ret)) {
					changed = a.addRec(tgt(rn), rec) || changed
				}
			}
		}
	}
	return changed
}

// AccessMayTarget reports whether an access through the given address
// expression, occurring in function fn, may touch the distinguished race
// target. addr takes the shapes the race instrumentation uses:
//
//   - &v            (read/write of variable v)
//   - v             (a pointer variable whose referent is read/written, *v)
//   - &p->f         (read/write of a record field)
//
// A false answer is a proof of non-aliasing, licensing check elision.
func (a *Analysis) AccessMayTarget(fn string, addr ast.Expr, t *ast.RaceTarget) bool {
	if t == nil {
		return false
	}
	switch e := addr.(type) {
	case *ast.AddrOfExpr:
		if t.Global != "" {
			// Direct access to a variable: aliases the target global iff
			// it is that global (locals shadow; varNode resolves scope).
			if m, ok := a.locals[fn]; ok {
				if _, isLocal := m[e.Name]; isLocal {
					return false
				}
			}
			return e.Name == t.Global
		}
		return false // a named variable is never a record field
	case *ast.VarExpr:
		// Dereference through pointer variable: may the variable point to
		// the target cell?
		vn := a.varNode(fn, e.Name)
		if vn == nil {
			return false
		}
		return a.classMayBeTarget(tgt(vn), t)
	case *ast.AddrFieldExpr:
		if t.Global != "" {
			return false
		}
		if e.Field != t.Field {
			return false
		}
		bn := a.exprClass(fn, e.X)
		if bn == nil {
			return false
		}
		for _, rec := range a.recsOf(tgt(bn)) {
			if rec == t.Record {
				return true
			}
		}
		return false
	}
	// Unknown shape: be conservative.
	return true
}

// classMayBeTarget reports whether the points-to class n may contain the
// target cell.
func (a *Analysis) classMayBeTarget(n *node, t *ast.RaceTarget) bool {
	if t.Global != "" {
		g := a.globals[t.Global]
		return g != nil && g.find() == n.find()
	}
	f, ok := a.fields[t.Record+"."+t.Field]
	return ok && f.find() == n.find()
}
