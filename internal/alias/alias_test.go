package alias

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/lower"
	"repro/internal/parser"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lower.Program(p)
	return Analyze(p)
}

func global(name string) *ast.RaceTarget { return &ast.RaceTarget{Global: name} }
func field(rec, f string) *ast.RaceTarget {
	return &ast.RaceTarget{Record: rec, Field: f}
}

func TestDirectGlobalAccess(t *testing.T) {
	a := analyze(t, `
var g;
var h;
func main() { g = 1; h = 2; }
`)
	if !a.AccessMayTarget("main", ast.Addr("g"), global("g")) {
		t.Error("&g must alias target g")
	}
	if a.AccessMayTarget("main", ast.Addr("h"), global("g")) {
		t.Error("&h must not alias target g")
	}
}

func TestLocalShadowsGlobal(t *testing.T) {
	a := analyze(t, `
var g;
func main() { var g; g = 1; }
`)
	if a.AccessMayTarget("main", ast.Addr("g"), global("g")) {
		t.Error("local g shadows the global; its accesses cannot touch the target")
	}
}

func TestPointerToGlobal(t *testing.T) {
	a := analyze(t, `
var g;
var h;
func main() {
  var p; var q; var x;
  p = &g;
  q = &h;
  x = *p;
  x = *q;
}
`)
	if !a.AccessMayTarget("main", ast.V("p"), global("g")) {
		t.Error("*p may touch g")
	}
	if a.AccessMayTarget("main", ast.V("q"), global("g")) {
		t.Error("*q cannot touch g (points only to h)")
	}
}

func TestUnificationMergesOnAssignment(t *testing.T) {
	a := analyze(t, `
var g;
var h;
func main() {
  var p; var q;
  p = &g;
  q = p;      // q now may point to g
}
`)
	if !a.AccessMayTarget("main", ast.V("q"), global("g")) {
		t.Error("q = p must propagate the points-to set")
	}
}

func TestFieldSensitivity(t *testing.T) {
	a := analyze(t, `
record R { f; g; }
func main() {
  var e;
  e = new R;
  e->f = 1;
  e->g = 2;
}
`)
	base := ast.V("e")
	if !a.AccessMayTarget("main", ast.AddrField(base, "f"), field("R", "f")) {
		t.Error("&e->f must alias target R.f")
	}
	if a.AccessMayTarget("main", ast.AddrField(base, "g"), field("R", "f")) {
		t.Error("&e->g must not alias target R.f (distinct fields)")
	}
}

func TestRecordTypeSeparation(t *testing.T) {
	a := analyze(t, `
record A { f; }
record B { f; }
func main() {
  var pa; var pb;
  pa = new A;
  pb = new B;
  pa->f = 1;
  pb->f = 2;
}
`)
	if !a.AccessMayTarget("main", ast.AddrField(ast.V("pa"), "f"), field("A", "f")) {
		t.Error("&pa->f must alias A.f")
	}
	if a.AccessMayTarget("main", ast.AddrField(ast.V("pb"), "f"), field("A", "f")) {
		t.Error("&pb->f must not alias A.f (different record type)")
	}
}

func TestFlowThroughCalls(t *testing.T) {
	a := analyze(t, `
record R { f; }
func use(e) {
  e->f = 1;
}
func main() {
  var x;
  x = new R;
  use(x);
}
`)
	// Inside use, the parameter e may point to an R, so &e->f may be R.f.
	if !a.AccessMayTarget("use", ast.AddrField(ast.V("e"), "f"), field("R", "f")) {
		t.Error("parameter flow lost: e in use() may point to an R")
	}
}

func TestFlowThroughReturn(t *testing.T) {
	a := analyze(t, `
var g;
func getp() {
  var p;
  p = &g;
  return p;
}
func main() {
  var q; var x;
  q = getp();
  x = *q;
}
`)
	if !a.AccessMayTarget("main", ast.V("q"), global("g")) {
		t.Error("return-value flow lost: q may point to g")
	}
}

func TestIndirectCallConservative(t *testing.T) {
	a := analyze(t, `
record R { f; }
func h1(e) { e->f = 1; }
func h2(e) { e->f = 2; }
func main() {
  var v; var x;
  x = new R;
  choice { { v = @h1; } [] { v = @h2; } }
  v(x);
}
`)
	for _, fn := range []string{"h1", "h2"} {
		if !a.AccessMayTarget(fn, ast.AddrField(ast.V("e"), "f"), field("R", "f")) {
			t.Errorf("indirect call to %s: argument flow lost", fn)
		}
	}
}

func TestFieldAddressFlow(t *testing.T) {
	a := analyze(t, `
record R { lock; data; }
func main() {
  var e; var l; var x;
  e = new R;
  l = &e->lock;
  x = *l;
}
`)
	if !a.AccessMayTarget("main", ast.V("l"), field("R", "lock")) {
		t.Error("*l may touch R.lock")
	}
	if a.AccessMayTarget("main", ast.V("l"), field("R", "data")) {
		t.Error("*l must not touch R.data")
	}
}

func TestVariableNeverFieldTarget(t *testing.T) {
	a := analyze(t, `
record R { f; }
var g;
func main() { g = 1; }
`)
	if a.AccessMayTarget("main", ast.Addr("g"), field("R", "f")) {
		t.Error("a named variable access can never be a record-field target")
	}
}

func TestDriverShapedElision(t *testing.T) {
	// The pattern the Table 1 instrumentation relies on: accesses to other
	// fields of the extension are elided, accesses to the target survive,
	// including through the lock routine's pointer parameter.
	a := analyze(t, `
record EXT { SpinLock; Flags; Count; }
func KeAcquireSpinLock(l) { atomic { assume(*l == 0); *l = 1; } }
func DispatchA(e) {
  var v;
  KeAcquireSpinLock(&e->SpinLock);
  v = e->Flags;
}
func DispatchB(e) {
  e->Count = 1;
}
func main() {
  var x;
  x = new EXT;
  async DispatchA(x);
  DispatchB(x);
}
`)
	target := field("EXT", "Flags")
	if !a.AccessMayTarget("DispatchA", ast.AddrField(ast.V("e"), "Flags"), target) {
		t.Error("target access in DispatchA wrongly elided")
	}
	if a.AccessMayTarget("DispatchB", ast.AddrField(ast.V("e"), "Count"), target) {
		t.Error("Count access should be elided for target Flags")
	}
	// The lock routine's parameter only ever receives &e->SpinLock.
	if a.AccessMayTarget("KeAcquireSpinLock", ast.V("l"), target) {
		t.Error("lock-word pointer should not alias Flags")
	}
	if !a.AccessMayTarget("KeAcquireSpinLock", ast.V("l"), field("EXT", "SpinLock")) {
		t.Error("lock-word pointer must alias SpinLock")
	}
}

func TestUnknownShapeConservative(t *testing.T) {
	a := analyze(t, `var g; func main() { g = 1; }`)
	// An expression shape the analysis does not model must be treated as
	// possibly aliasing.
	if !a.AccessMayTarget("main", ast.Deref(ast.V("g")), global("g")) {
		t.Error("unknown address shape must be conservative")
	}
}
