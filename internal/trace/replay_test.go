package trace

import (
	"testing"

	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
)

func compileOriginal(t *testing.T, src string) *sem.Compiled {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lower.Program(p)
	c, err := sem.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestScheduleCollapsesRuns(t *testing.T) {
	tr := &Trace{Steps: []Step{
		{ThreadID: 0}, {ThreadID: 0}, {ThreadID: 1}, {ThreadID: 1}, {ThreadID: 0},
	}}
	got := tr.Schedule()
	want := []int{0, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule %v, want %v", got, want)
		}
	}
}

// TestReplayCertifiesReconstructedTrace: end to end — KISS finds a bug,
// the trace is reconstructed, and the original concurrent program
// replayed along the reconstructed schedule reaches the failure.
func TestReplayCertifiesReconstructedTrace(t *testing.T) {
	events := checkSeq(t, forkSrc, 2)
	tr := Reconstruct(events)
	sched := tr.Schedule()
	if len(sched) < 2 {
		t.Fatalf("suspicious schedule %v for an interleaved bug", sched)
	}
	c := compileOriginal(t, forkSrc)
	rr := Replay(c, sched, 200000)
	if !rr.Certified {
		t.Fatalf("reconstructed schedule %v does not replay to a failure (%d states explored)",
			sched, rr.States)
	}
	if rr.Failure == nil || rr.Failure.Kind != sem.AssertFail {
		t.Errorf("replay failure: %v", rr.Failure)
	}
}

// TestReplayRejectsWrongSchedule: a schedule that never runs the forked
// threads cannot reach the failure.
func TestReplayRejectsWrongSchedule(t *testing.T) {
	c := compileOriginal(t, forkSrc)
	rr := Replay(c, []int{0}, 200000)
	if rr.Certified {
		t.Fatal("main-only schedule certified an interleaved bug")
	}
}

// TestReplaySafeProgramNeverCertifies.
func TestReplaySafeProgramNeverCertifies(t *testing.T) {
	src := `
var x;
func f() { x = 1; }
func main() { x = 0; async f(); }
`
	c := compileOriginal(t, src)
	for _, sched := range [][]int{{0}, {0, 1}, {0, 1, 0}} {
		rr := Replay(c, sched, 100000)
		if rr.Certified {
			t.Errorf("safe program certified under schedule %v", sched)
		}
	}
}
