package trace

import (
	"fmt"
	"sort"
	"strings"
)

// FormatColumns renders the trace as an interleaving diagram, one column
// per thread — the layout concurrency papers use for error traces, which
// makes the context-switch structure visible at a glance:
//
//	T0 main                  | T1 BCSP_PnpStop
//	------------------------ + ------------------------
//	18:3  call BCSP_PnpAdd   |
//	                         | 32:3  e->stoppingFlag = 1
//	23:3  status = ...       |
func (t *Trace) FormatColumns() string {
	if len(t.Steps) == 0 {
		return "(empty trace)\n"
	}

	// Stable column order: thread ids ascending.
	idSet := map[int]bool{}
	for _, s := range t.Steps {
		idSet[s.ThreadID] = true
	}
	ids := make([]int, 0, len(idSet))
	for id := range idSet {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	col := map[int]int{}
	for i, id := range ids {
		col[id] = i
	}

	// Column headers: thread id plus the first function seen on it.
	firstFn := map[int]string{}
	for _, s := range t.Steps {
		if _, ok := firstFn[s.ThreadID]; !ok && s.Func != "" {
			firstFn[s.ThreadID] = s.Func
		}
	}

	const width = 34
	clip := func(s string) string {
		if len(s) > width-2 {
			return s[:width-5] + "..."
		}
		return s
	}
	pad := func(s string) string {
		if len(s) < width {
			return s + strings.Repeat(" ", width-len(s))
		}
		return s
	}

	var b strings.Builder
	fmt.Fprintf(&b, "interleaving diagram (%d threads, %d context switches):\n",
		t.Threads, t.ContextSwitches)
	headers := make([]string, len(ids))
	for i, id := range ids {
		headers[i] = pad(clip(fmt.Sprintf("T%d %s", id, firstFn[id])))
	}
	b.WriteString(strings.Join(headers, "| "))
	b.WriteString("\n")
	rule := make([]string, len(ids))
	for i := range rule {
		rule[i] = strings.Repeat("-", width)
	}
	b.WriteString(strings.Join(rule, "+-"))
	b.WriteString("\n")

	for _, s := range t.Steps {
		cells := make([]string, len(ids))
		for i := range cells {
			cells[i] = pad("")
		}
		text := s.Text
		if s.Pos.IsValid() {
			text = fmt.Sprintf("%-7s %s", s.Pos.String(), s.Text)
		}
		cells[col[s.ThreadID]] = pad(clip(text))
		b.WriteString(strings.Join(cells, "| "))
		b.WriteString("\n")
	}
	return b.String()
}
