package trace

import (
	"strings"
	"testing"

	ikiss "repro/internal/kiss"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/seqcheck"
)

// checkSeq transforms src and model-checks it, returning the sequential
// counterexample events.
func checkSeq(t *testing.T, src string, maxTS int) []sem.Event {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lower.Program(p)
	out, err := ikiss.Transform(p, ikiss.Options{MaxTS: maxTS})
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	c, err := sem.Compile(out)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r := seqcheck.Check(c, seqcheck.Options{})
	if r.Verdict != seqcheck.Error {
		t.Fatalf("expected error, got %v", r)
	}
	return r.Trace
}

const forkSrc = `
var x;
var y;
func child() {
  assume(y == 1);
  x = x + 1;
  assert(x < 2);
}
func main() {
  x = 0;
  y = 0;
  async child();
  async child();
  y = 1;
}
`

func TestReconstructAssignsThreadIDsInForkOrder(t *testing.T) {
	events := checkSeq(t, forkSrc, 2)
	tr := Reconstruct(events)
	if tr.Threads != 3 {
		t.Errorf("got %d threads, want 3 (main + 2 children)", tr.Threads)
	}
	// Fork steps must appear on thread 0 and mention child thread ids.
	var forks []Step
	for _, s := range tr.Steps {
		if strings.Contains(s.Text, "fork thread") {
			forks = append(forks, s)
		}
	}
	if len(forks) != 2 {
		t.Fatalf("got %d fork steps, want 2:\n%s", len(forks), tr.Format())
	}
	for _, f := range forks {
		if f.ThreadID != 0 {
			t.Errorf("fork attributed to thread %d, want 0", f.ThreadID)
		}
	}
}

func TestReconstructHidesInstrumentation(t *testing.T) {
	events := checkSeq(t, forkSrc, 2)
	tr := Reconstruct(events)
	for _, s := range tr.Steps {
		if strings.Contains(s.Text, "__kiss") || strings.Contains(s.Func, "__kiss") {
			t.Errorf("instrumentation leaked into the reconstructed trace: %s", s)
		}
		if strings.Contains(s.Text, "raise") {
			t.Errorf("raise bookkeeping leaked: %s", s)
		}
	}
}

func TestReconstructTracksContextSwitches(t *testing.T) {
	events := checkSeq(t, forkSrc, 2)
	tr := Reconstruct(events)
	if tr.ContextSwitches == 0 {
		t.Error("an interleaved failure needs at least one context switch")
	}
	// Recompute from the step sequence and compare.
	count := 0
	for i := 1; i < len(tr.Steps); i++ {
		if tr.Steps[i].ThreadID != tr.Steps[i-1].ThreadID {
			count++
			if !tr.Steps[i].Switch {
				t.Errorf("step %d changes thread but is not marked", i)
			}
		} else if tr.Steps[i].Switch {
			t.Errorf("step %d marked as switch without thread change", i)
		}
	}
	if count != tr.ContextSwitches {
		t.Errorf("ContextSwitches = %d, recomputed %d", tr.ContextSwitches, count)
	}
}

func TestReconstructUserPositionsPreserved(t *testing.T) {
	events := checkSeq(t, forkSrc, 2)
	tr := Reconstruct(events)
	valid := 0
	for _, s := range tr.Steps {
		if s.Pos.IsValid() {
			valid++
		}
	}
	if valid < 3 {
		t.Errorf("too few steps carry source positions: %d\n%s", valid, tr.Format())
	}
}

// TestInlinedAsyncBecomesThread: with MaxTS = 0 the async call runs
// inline; the reconstruction must still attribute its steps to a fresh
// thread.
func TestInlinedAsyncBecomesThread(t *testing.T) {
	src := `
var x;
func child() {
  x = 1;
}
func main() {
  x = 0;
  async child();
  assert(x == 0);
}
`
	events := checkSeq(t, src, 0)
	tr := Reconstruct(events)
	if tr.Threads < 2 {
		t.Fatalf("inlined async not attributed to its own thread:\n%s", tr.Format())
	}
	// The child's assignment must be on a non-zero thread.
	foundChildStep := false
	for _, s := range tr.Steps {
		if s.Func == "child" && s.ThreadID != 0 {
			foundChildStep = true
		}
		if s.Func == "child" && s.ThreadID == 0 {
			t.Errorf("child step attributed to main: %s", s)
		}
	}
	if !foundChildStep {
		t.Errorf("no child steps in trace:\n%s", tr.Format())
	}
}

func TestFormatMentionsThreadsAndSwitches(t *testing.T) {
	events := checkSeq(t, forkSrc, 2)
	tr := Reconstruct(events)
	out := tr.Format()
	if !strings.Contains(out, "threads") || !strings.Contains(out, "context switches") {
		t.Errorf("format missing summary: %s", out)
	}
}

func TestFormatColumns(t *testing.T) {
	events := checkSeq(t, forkSrc, 2)
	tr := Reconstruct(events)
	out := tr.FormatColumns()
	if !strings.Contains(out, "T0 main") {
		t.Errorf("missing main column header:\n%s", out)
	}
	if !strings.Contains(out, "T1 child") {
		t.Errorf("missing child column header:\n%s", out)
	}
	if !strings.Contains(out, "interleaving diagram") {
		t.Errorf("missing summary line:\n%s", out)
	}
	// Every body line has the same number of column separators.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	sep := strings.Count(lines[1], "| ")
	for i, line := range lines[1:] {
		if strings.HasPrefix(line, "---") || strings.Contains(line, "-+-") {
			continue
		}
		if strings.Count(line, "| ") != sep {
			t.Errorf("line %d has inconsistent columns: %q", i+1, line)
		}
	}
	empty := (&Trace{}).FormatColumns()
	if !strings.Contains(empty, "empty") {
		t.Errorf("empty trace: %q", empty)
	}
}
