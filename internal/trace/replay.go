package trace

import (
	"repro/internal/sem"
)

// Schedule returns the trace's thread sequence with adjacent repeats
// collapsed: the order in which thread blocks execute, e.g. [0, 1, 0] for
// "main, then the forked thread, then main again". This is the scheduling
// skeleton of the paper's stack-discipline executions.
func (t *Trace) Schedule() []int {
	var out []int
	for _, s := range t.Steps {
		if len(out) == 0 || out[len(out)-1] != s.ThreadID {
			out = append(out, s.ThreadID)
		}
	}
	return out
}

// ReplayResult reports a guided replay.
type ReplayResult struct {
	// Certified is true when the original concurrent program reaches a
	// failure under the reconstructed schedule.
	Certified bool
	Failure   *sem.Failure
	States    int
}

// Replay drives the *original concurrent* program (compiled in c) along
// the given thread schedule: at any point only the current block's thread
// may step, or the schedule may advance to the next block's thread. If a
// failure is reachable under this discipline, the reconstructed trace's
// interleaving is certified — the strongest form of the paper's
// completeness statement ("the error trace leading to the assertion
// failure in P is easily constructed from the error trace in P'"), since
// it demonstrates a concrete failing execution that context-switches
// exactly where the reconstruction says it does.
//
// Thread ids follow creation order in both the reconstruction and the
// concurrent semantics (main is 0, forks count up), so the schedules
// align by construction. maxStates bounds the guided search (0 =
// unlimited).
func Replay(c *sem.Compiled, schedule []int, maxStates int) *ReplayResult {
	res := &ReplayResult{}
	if len(schedule) == 0 {
		return res
	}

	type node struct {
		st  *sem.State
		blk int // index into schedule
	}
	init := sem.NewState(c)
	stack := []node{{st: init, blk: 0}}
	visited := map[string]bool{}

	threadIndex := func(s *sem.State, id int) int {
		for i, th := range s.Threads {
			if th.ID == id {
				return i
			}
		}
		return -1
	}

	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// Two moves: step the current block's thread, or advance to the
		// next block (without stepping — the next iteration steps it).
		moves := []int{cur.blk}
		if cur.blk+1 < len(schedule) {
			moves = append(moves, cur.blk+1)
		}
		for _, blk := range moves {
			ti := threadIndex(cur.st, schedule[blk])
			if ti < 0 || cur.st.Threads[ti].Done() {
				continue
			}
			sr := sem.Step(cur.st, ti)
			if sr.Failure != nil {
				res.Certified = true
				res.Failure = sr.Failure
				return res
			}
			for _, out := range sr.Outcomes {
				key := out.State.FingerprintString()
				// The same state may recur at different schedule
				// positions; key on both.
				key = key + "#" + itoa(blk)
				if visited[key] {
					continue
				}
				visited[key] = true
				res.States++
				if maxStates > 0 && res.States > maxStates {
					return res
				}
				stack = append(stack, node{st: out.State, blk: blk})
			}
		}
	}
	return res
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
