// Package trace maps counterexample traces of the transformed sequential
// program back to interleaved executions of the original concurrent
// program: "the error trace leading to the assertion failure in P is
// easily constructed from the error trace in P'" (Section 1).
//
// The sequential trace interleaves three kinds of events: steps of
// translated user code (carrying original source positions), steps of the
// generated instrumentation (schedule, RAISE, check_r/check_w, ts
// bookkeeping — all at the zero position), and the dispatch events at
// which a pending thread from ts begins executing on top of the stack.
// Reconstruction tracks the stack-block structure the paper describes:
// "At any point in time, the frames on the unique stack can be partitioned
// into contiguous blocks. Each contiguous block is the stack of one of the
// threads executing currently." Each block is attributed to a thread id;
// instrumentation events are consumed for bookkeeping and dropped from the
// reconstructed trace.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/kiss"
	"repro/internal/sem"
)

// Step is one step of the reconstructed concurrent error trace.
type Step struct {
	ThreadID int
	Func     string // original (untranslated) function name
	Pos      ast.Pos
	Text     string
	// Switch marks the first step of a thread after a context switch.
	Switch bool
}

func (s Step) String() string {
	sw := "  "
	if s.Switch {
		sw = "=>"
	}
	return fmt.Sprintf("%s T%d %-20s %-8s %s", sw, s.ThreadID, s.Func, s.Pos, s.Text)
}

// Trace is a reconstructed concurrent error trace.
type Trace struct {
	Steps []Step
	// ContextSwitches counts adjacent step pairs with different threads.
	ContextSwitches int
	// Threads is the number of distinct threads appearing in the trace.
	Threads int
}

// Format renders the trace for human consumption.
func (t *Trace) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reconstructed concurrent error trace (%d threads, %d context switches):\n",
		t.Threads, t.ContextSwitches)
	for _, s := range t.Steps {
		b.WriteString(s.String())
		b.WriteString("\n")
	}
	return b.String()
}

// blockState tracks one contiguous stack block (= one simulated thread).
type blockState struct {
	threadID int
	depth    int // frames belonging to this block still on the stack
}

// Reconstruct converts a sequential error trace produced by seqcheck on a
// KISS-transformed program into a concurrent trace of the original
// program. Thread ids are assigned in fork order: the main thread is 0,
// and each asynchronous fork (a ts put, or an inlined synchronous
// execution when ts is full) allocates the next id.
func Reconstruct(events []sem.Event) *Trace {
	t := &Trace{}
	nextThread := 1
	// Pending fork ids per starting function, FIFO: a __ts_put allocates
	// an id; the matching dispatch activates it.
	pendingIDs := map[string][]int{}

	blocks := []blockState{{threadID: 0, depth: 1}} // main's block
	top := func() *blockState { return &blocks[len(blocks)-1] }

	threadsSeen := map[int]bool{0: true}
	lastThread := -1

	for _, ev := range events {
		inInstrumentation := false
		origFn, isUser := kiss.OriginalName(ev.Fn)
		if !isUser && ev.Fn != "main" {
			inInstrumentation = true // schedule, check_r, check_w
		}

		switch ev.Kind {
		case sem.EvCall:
			callee := ev.Callee
			if callee == kiss.ScheduleFn || callee == kiss.CheckRFn || callee == kiss.CheckWFn {
				// Instrumentation call: frames of schedule/checks are not
				// counted in any block; their returns are matched below by
				// name.
				continue
			}
			if _, ok := kiss.OriginalName(callee); ok {
				if ev.Fn == "main" {
					// wrapper main calling [[main]]: main block already open
					continue
				}
				if !ev.Pos.IsValid() && isUser {
					// A generated call inside user code is the inlined
					// synchronous execution of an async statement (ts was
					// full): a fresh thread runs here to completion.
					id := nextThread
					nextThread++
					threadsSeen[id] = true
					blocks = append(blocks, blockState{threadID: id, depth: 1})
					continue
				}
				// Ordinary user-level synchronous call.
				top().depth++
				origCallee, _ := kiss.OriginalName(callee)
				t.appendStep(&lastThread, Step{
					ThreadID: top().threadID, Func: origFn, Pos: ev.Pos,
					Text: "call " + origCallee,
				})
			}

		case sem.EvDispatch:
			// A pending thread from ts begins executing on top of the stack.
			callee := ev.Callee
			orig, _ := kiss.OriginalName(callee)
			var id int
			if q := pendingIDs[orig]; len(q) > 0 {
				id = q[0]
				pendingIDs[orig] = q[1:]
			} else {
				id = nextThread
				nextThread++
			}
			threadsSeen[id] = true
			blocks = append(blocks, blockState{threadID: id, depth: 1})
			t.appendStep(&lastThread, Step{
				ThreadID: id, Func: orig, Pos: ev.Pos,
				Text: "thread scheduled (starts " + orig + ")",
			})

		case sem.EvReturn:
			if inInstrumentation {
				continue
			}
			if ev.Fn == "main" {
				continue
			}
			top().depth--
			if top().depth == 0 {
				if len(blocks) > 1 {
					blocks = blocks[:len(blocks)-1]
				} else {
					blocks[0].depth = 0 // main finished
				}
			}

		case sem.EvStmt:
			if inInstrumentation {
				continue
			}
			if strings.HasPrefix(ev.Text, "__ts_put(") {
				// A fork: the async call added a pending thread to ts.
				// Allocate its id now, in fork order; the matching
				// dispatch activates it.
				orig := ev.Callee
				if o, ok := kiss.OriginalName(orig); ok {
					orig = o
				}
				id := nextThread
				nextThread++
				threadsSeen[id] = true
				pendingIDs[orig] = append(pendingIDs[orig], id)
				t.appendStep(&lastThread, Step{
					ThreadID: top().threadID, Func: origFn, Pos: ev.Pos,
					Text: "fork thread " + fmt.Sprint(id) + " (async " + orig + ")",
				})
				continue
			}
			if !ev.Pos.IsValid() {
				// Other generated bookkeeping inside user code (RAISE,
				// raise tests, ts size tests) is dropped.
				continue
			}
			if strings.HasPrefix(ev.Text, "nondet ") {
				// Internal control decision of a lowered choice/iter; the
				// branch taken is visible from the following assume.
				continue
			}
			t.appendStep(&lastThread, Step{
				ThreadID: top().threadID, Func: origFn, Pos: ev.Pos, Text: ev.Text,
			})

		case sem.EvAsync:
			// Cannot occur in a transformed program.
			continue
		}
	}
	t.Threads = len(threadsSeen)
	return t
}

func (t *Trace) appendStep(lastThread *int, s Step) {
	if *lastThread >= 0 && *lastThread != s.ThreadID {
		t.ContextSwitches++
		s.Switch = true
	}
	*lastThread = s.ThreadID
	t.Steps = append(t.Steps, s)
}
