// Package winmodel provides parallel-language models of the Windows NT
// synchronization routines the device drivers of the KISS evaluation use.
// The paper (Section 6): "SLAM already provided stubs for these calls; we
// augmented them to model the synchronization operations accurately. Some
// of the synchronization routines we modeled were KeAcquireSpinLock,
// KeWaitForSingleObject, InterlockedCompareExchange, InterlockedIncrement,
// etc."
//
// Each routine is modeled with the atomic/assume idiom of Section 3; for
// example the paper's own lock model:
//
//	lock_acquire(l) = atomic{assume(*l == 0); *l = 1}
//	lock_release(l) = atomic{*l = 0}
//
// The models operate on pointers to integer cells (lock words, event
// states, reference counts) so a driver passes &ext->lockField.
package winmodel

// Source is the library text prepended to every driver model. Drivers
// call these routines by name.
const Source = `
// --- Windows synchronization models (winmodel) ---

// KeAcquireSpinLock: spin until the lock word is 0, then take it, in one
// atomic action.
func KeAcquireSpinLock(l) {
  atomic {
    assume(*l == 0);
    *l = 1;
  }
}

// KeReleaseSpinLock: clear the lock word.
func KeReleaseSpinLock(l) {
  atomic {
    *l = 0;
  }
}

// KeInitializeEvent: reset the event cell (0 = not signaled, 1 =
// signaled; cells allocated by new are already 0).
func KeInitializeEvent(e) {
  atomic {
    *e = 0;
  }
}

// KeSetEvent: signal the event. The write is atomic: the kernel's event
// object update is not an ordinary data access, so the race
// instrumentation rightly does not treat it as one.
func KeSetEvent(e) {
  atomic {
    *e = 1;
  }
}

// KeWaitForSingleObject: block until the event is signaled. Modeled on a
// notification (manual-reset) event, the kind drivers use for stop/remove
// synchronization.
func KeWaitForSingleObject(e) {
  assume(*e == 1);
}

// InterlockedIncrement: atomically increment the integer cell and return
// the new value.
func InterlockedIncrement(p) {
  var v;
  atomic {
    v = *p + 1;
    *p = v;
  }
  return v;
}

// InterlockedDecrement: atomically decrement the integer cell and return
// the new value.
func InterlockedDecrement(p) {
  var v;
  atomic {
    v = *p - 1;
    *p = v;
  }
  return v;
}

// InterlockedExchange: atomically store a new value and return the old.
func InterlockedExchange(p, newv) {
  var old;
  atomic {
    old = *p;
    *p = newv;
  }
  return old;
}

// InterlockedCompareExchange: atomically compare the cell with comparand
// and, if equal, store newv; returns the original value either way.
func InterlockedCompareExchange(p, newv, comparand) {
  var old;
  atomic {
    old = *p;
    if (old == comparand) {
      *p = newv;
    }
  }
  return old;
}

// IoAcquireRemoveLock: take a reference preventing device removal. Returns
// 0 (STATUS_SUCCESS) while the device is not being removed, -1 otherwise.
// The remove-lock state is a pair of cells: a reference count and a
// removing flag.
func IoAcquireRemoveLock(count, removing) {
  var r;
  atomic {
    r = *removing;
    if (r == 0) {
      *count = *count + 1;
    }
  }
  if (r == 0) {
    return 0;
  }
  return -1;
}

// IoReleaseRemoveLock: drop a reference taken by IoAcquireRemoveLock.
func IoReleaseRemoveLock(count, removing) {
  atomic {
    *count = *count - 1;
  }
}

// IoReleaseRemoveLockAndWait: mark the device removing and wait for all
// outstanding references to drain.
func IoReleaseRemoveLockAndWait(count, removing) {
  atomic {
    *removing = 1;
  }
  atomic {
    *count = *count - 1;
  }
  assume(*count == 0);
}
`
