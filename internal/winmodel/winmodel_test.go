package winmodel

import (
	"testing"

	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/sema"
)

// compileWith compiles the winmodel library together with a driver
// snippet.
func compileWith(t *testing.T, driver string) *sem.Compiled {
	t.Helper()
	p, err := parser.Parse(Source + driver)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p, sema.Source); err != nil {
		t.Fatalf("sema: %v", err)
	}
	lower.Program(p)
	c, err := sem.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

// explore runs all interleavings, returning the first failure and final
// global-store strings.
func explore(t *testing.T, c *sem.Compiled) *sem.Failure {
	t.Helper()
	stack := []*sem.State{sem.NewState(c)}
	seen := map[string]bool{}
	for steps := 0; len(stack) > 0; steps++ {
		if steps > 500000 {
			t.Fatal("state explosion in winmodel test")
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for ti := range s.Threads {
			if s.Threads[ti].Done() {
				continue
			}
			sr := sem.Step(s, ti)
			if sr.Failure != nil {
				return sr.Failure
			}
			for _, o := range sr.Outcomes {
				fp := o.State.FingerprintString()
				if !seen[fp] {
					seen[fp] = true
					stack = append(stack, o.State)
				}
			}
		}
	}
	return nil
}

func TestSpinLockMutualExclusion(t *testing.T) {
	c := compileWith(t, `
var lock;
var inCS;
func worker() {
  KeAcquireSpinLock(&lock);
  inCS = inCS + 1;
  assert(inCS == 1);
  inCS = inCS - 1;
  KeReleaseSpinLock(&lock);
}
func main() {
  lock = 0; inCS = 0;
  async worker();
  async worker();
}
`)
	if f := explore(t, c); f != nil {
		t.Fatalf("mutual exclusion violated: %v", f)
	}
}

func TestEventSignaling(t *testing.T) {
	c := compileWith(t, `
var ev;
var data;
func producer() { data = 42; KeSetEvent(&ev); }
func consumer() { KeWaitForSingleObject(&ev); assert(data == 42); }
func main() {
  KeInitializeEvent(&ev);
  data = 0;
  async producer();
  async consumer();
}
`)
	if f := explore(t, c); f != nil {
		t.Fatalf("event signaling broken: %v", f)
	}
}

func TestInterlockedIncrementAtomicity(t *testing.T) {
	c := compileWith(t, `
var count;
var done;
func worker() {
  var v;
  v = InterlockedIncrement(&count);
  done = done + 1;
}
func checker() {
  assume(done == 2);
  assert(count == 2);
}
func main() {
  count = 0; done = 0;
  async worker();
  async worker();
  async checker();
}
`)
	if f := explore(t, c); f != nil {
		t.Fatalf("interlocked increment lost an update: %v", f)
	}
}

func TestInterlockedIncrementReturnsNewValue(t *testing.T) {
	c := compileWith(t, `
var count;
func main() {
  var v;
  count = 5;
  v = InterlockedIncrement(&count);
  assert(v == 6);
  v = InterlockedDecrement(&count);
  assert(v == 5);
}
`)
	if f := explore(t, c); f != nil {
		t.Fatalf("interlocked return value wrong: %v", f)
	}
}

func TestInterlockedExchange(t *testing.T) {
	c := compileWith(t, `
var cell;
func main() {
  var old;
  cell = 3;
  old = InterlockedExchange(&cell, 9);
  assert(old == 3);
  assert(cell == 9);
}
`)
	if f := explore(t, c); f != nil {
		t.Fatalf("exchange wrong: %v", f)
	}
}

func TestInterlockedCompareExchange(t *testing.T) {
	c := compileWith(t, `
var cell;
func main() {
  var old;
  cell = 3;
  old = InterlockedCompareExchange(&cell, 9, 4);
  assert(old == 3);
  assert(cell == 3);    // comparand mismatch: no store
  old = InterlockedCompareExchange(&cell, 9, 3);
  assert(old == 3);
  assert(cell == 9);    // comparand match: stored
}
`)
	if f := explore(t, c); f != nil {
		t.Fatalf("compare-exchange wrong: %v", f)
	}
}

func TestRemoveLockDrain(t *testing.T) {
	c := compileWith(t, `
var count;
var removing;
var inDriver;
func worker() {
  var st;
  st = IoAcquireRemoveLock(&count, &removing);
  if (st == 0) {
    inDriver = 1;
    inDriver = 0;
    IoReleaseRemoveLock(&count, &removing);
  }
}
func remover() {
  IoReleaseRemoveLockAndWait(&count, &removing);
  assert(inDriver == 0);
}
func main() {
  count = 1; removing = 0; inDriver = 0;
  async worker();
  async remover();
}
`)
	if f := explore(t, c); f != nil {
		t.Fatalf("remove-lock drain violated: %v", f)
	}
}

func TestCompareExchangeSpinLockIdiom(t *testing.T) {
	// Drivers sometimes build locks from InterlockedCompareExchange; the
	// model must make that correct.
	c := compileWith(t, `
var word;
var cs;
func worker() {
  var got;
  got = 1;
  iter {
    assume(got != 0);
    got = InterlockedCompareExchange(&word, 1, 0);
  }
  assume(got == 0);
  cs = cs + 1;
  assert(cs == 1);
  cs = cs - 1;
  word = 0;
}
func main() {
  word = 0; cs = 0;
  async worker();
  async worker();
}
`)
	if f := explore(t, c); f != nil {
		t.Fatalf("CAS lock idiom violated: %v", f)
	}
}
