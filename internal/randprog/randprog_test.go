package randprog

import (
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/sema"
)

// TestGeneratedProgramsWellFormed: every generated program parses, passes
// semantic checking, lowers to core form, and compiles.
func TestGeneratedProgramsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		src := Generate(seed, Default)
		p, err := parser.Parse(src)
		if err != nil {
			t.Logf("seed %d parse error: %v\n%s", seed, err, src)
			return false
		}
		if err := sema.Check(p, sema.Source); err != nil {
			t.Logf("seed %d sema error: %v\n%s", seed, err, src)
			return false
		}
		lower.Program(p)
		if ok, why := lower.IsCore(p); !ok {
			t.Logf("seed %d not core: %s", seed, why)
			return false
		}
		if _, err := sem.Compile(p); err != nil {
			t.Logf("seed %d compile error: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeterministic: same seed, same program.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		if Generate(seed, Default) != Generate(seed, Default) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
}

// TestSeedsDiffer: different seeds produce different programs (almost
// always; check a sample).
func TestSeedsDiffer(t *testing.T) {
	seen := map[string]int64{}
	dups := 0
	for seed := int64(0); seed < 50; seed++ {
		src := Generate(seed, Default)
		if _, ok := seen[src]; ok {
			dups++
		}
		seen[src] = seed
	}
	if dups > 5 {
		t.Errorf("%d/50 duplicate programs; generator too degenerate", dups)
	}
}

// TestTwoThreadedHasExactlyOneAsync.
func TestTwoThreadedHasExactlyOneAsync(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		src := GenerateTwoThreaded(seed, Default)
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		asyncs := 0
		for _, f := range p.Funcs {
			ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
				if _, ok := s.(*ast.AsyncStmt); ok {
					asyncs++
				}
				return true
			})
		}
		if asyncs != 1 {
			t.Errorf("seed %d: %d async calls, want 1\n%s", seed, asyncs, src)
		}
	}
}
