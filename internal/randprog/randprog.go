// Package randprog generates small random concurrent programs in the
// parallel language, for property-based testing of the KISS pipeline
// against the interleaving-exploring ground truth:
//
//   - No false errors (the paper's completeness direction, Section 4): if
//     the transformed sequential program fails, the concurrent program has
//     a failing execution.
//   - Context-switch coverage (Section 2/4): for a 2-thread program, the
//     sequential program simulates all executions with at most two context
//     switches, so any failure the bounded concurrent explorer finds with
//     ContextBound = 2 must also be found by KISS with a sufficient ts
//     bound.
//
// Programs are deterministic functions of the seed, loop-free (so all
// state spaces are finite and small), and draw from assignments on a few
// int-valued globals, if/choice branching, asserts over globals, atomic
// blocks, assumes, and async/sync calls in a DAG call structure.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program's shape.
type Config struct {
	Globals   int // number of int globals (>= 1)
	Funcs     int // number of auxiliary functions (>= 1)
	MaxStmts  int // max statements per function body (>= 1)
	MaxAsyncs int // max async calls in main (>= 0)
	// AssertBias makes asserts plausibly falsifiable: conditions compare
	// globals against small constants.
	Depth int // max nesting depth of if/choice
}

// Default is a configuration that keeps full interleaving exploration
// under ~10^5 states.
var Default = Config{Globals: 3, Funcs: 3, MaxStmts: 5, MaxAsyncs: 2, Depth: 2}

// Generate returns the source of a random program for the given seed.
func Generate(seed int64, cfg Config) string {
	if cfg.Globals < 1 {
		cfg = Default
	}
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	return g.program()
}

// GenerateTwoThreaded returns a program whose concurrency is exactly one
// async fork in main (two threads total), for the context-bound coverage
// property.
func GenerateTwoThreaded(seed int64, cfg Config) string {
	if cfg.Globals < 1 {
		cfg = Default
	}
	cfg.MaxAsyncs = 1
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg, forceAsyncs: 1}
	return g.program()
}

type gen struct {
	rng         *rand.Rand
	cfg         Config
	buf         strings.Builder
	forceAsyncs int
}

func (g *gen) global(i int) string { return fmt.Sprintf("g%d", i) }
func (g *gen) fn(i int) string     { return fmt.Sprintf("aux%d", i) }

func (g *gen) randGlobal() string { return g.global(g.rng.Intn(g.cfg.Globals)) }

func (g *gen) program() string {
	for i := 0; i < g.cfg.Globals; i++ {
		fmt.Fprintf(&g.buf, "var %s;\n", g.global(i))
	}
	// Auxiliary functions form a DAG: aux_i may call aux_j for j > i.
	for i := 0; i < g.cfg.Funcs; i++ {
		fmt.Fprintf(&g.buf, "func %s() {\n", g.fn(i))
		n := 1 + g.rng.Intn(g.cfg.MaxStmts)
		for s := 0; s < n; s++ {
			g.stmt(1, i, false)
		}
		g.buf.WriteString("}\n")
	}
	g.buf.WriteString("func main() {\n")
	asyncs := 0
	if g.cfg.MaxAsyncs > 0 {
		asyncs = g.rng.Intn(g.cfg.MaxAsyncs + 1)
	}
	if g.forceAsyncs > 0 {
		asyncs = g.forceAsyncs
	}
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	// Interleave asyncs among main's statements.
	asyncAt := map[int]bool{}
	for a := 0; a < asyncs; a++ {
		asyncAt[g.rng.Intn(n)] = true
	}
	for s := 0; s < n; s++ {
		if asyncAt[s] {
			fmt.Fprintf(&g.buf, "  async %s();\n", g.fn(g.rng.Intn(g.cfg.Funcs)))
		}
		g.stmt(1, -1, true)
	}
	g.buf.WriteString("}\n")
	return g.buf.String()
}

// stmt emits one random statement at the given nesting depth. callerIdx is
// the index of the enclosing aux function (-1 for main); calls target only
// higher indices so the call graph is acyclic.
func (g *gen) stmt(depth, callerIdx int, inMain bool) {
	ind := strings.Repeat("  ", depth)
	const kinds = 10
	k := g.rng.Intn(kinds)
	switch {
	case k <= 2: // assignment of a constant
		fmt.Fprintf(&g.buf, "%s%s = %d;\n", ind, g.randGlobal(), g.rng.Intn(3))
	case k == 3: // increment / copy
		if g.rng.Intn(2) == 0 {
			x := g.randGlobal()
			fmt.Fprintf(&g.buf, "%s%s = %s + 1;\n", ind, x, x)
		} else {
			fmt.Fprintf(&g.buf, "%s%s = %s;\n", ind, g.randGlobal(), g.randGlobal())
		}
	case k == 4: // assert over a global
		fmt.Fprintf(&g.buf, "%sassert(%s %s %d);\n", ind, g.randGlobal(), g.cmpOp(), g.rng.Intn(3))
	case k == 5 && depth < g.cfg.Depth: // if
		fmt.Fprintf(&g.buf, "%sif (%s %s %d) {\n", ind, g.randGlobal(), g.cmpOp(), g.rng.Intn(3))
		g.stmt(depth+1, callerIdx, inMain)
		fmt.Fprintf(&g.buf, "%s} else {\n", ind)
		g.stmt(depth+1, callerIdx, inMain)
		fmt.Fprintf(&g.buf, "%s}\n", ind)
	case k == 6 && depth < g.cfg.Depth: // choice
		fmt.Fprintf(&g.buf, "%schoice {\n%s  {\n", ind, ind)
		g.stmt(depth+2, callerIdx, inMain)
		fmt.Fprintf(&g.buf, "%s  }\n%s[]\n%s  {\n", ind, ind, ind)
		g.stmt(depth+2, callerIdx, inMain)
		fmt.Fprintf(&g.buf, "%s  }\n%s}\n", ind, ind)
	case k == 7: // atomic read-modify-write
		x := g.randGlobal()
		fmt.Fprintf(&g.buf, "%satomic { %s = %s + 1; }\n", ind, x, x)
	case k == 8: // synchronous call along the DAG
		if callee, ok := g.calleeFor(callerIdx); ok {
			fmt.Fprintf(&g.buf, "%s%s();\n", ind, callee)
		} else {
			fmt.Fprintf(&g.buf, "%s%s = %d;\n", ind, g.randGlobal(), g.rng.Intn(3))
		}
	default: // guarded assume that cannot block forever on its own thread
		// (assume of a comparison that is sometimes true keeps deadlocks
		// interesting without making every run vacuous)
		fmt.Fprintf(&g.buf, "%sif (%s %s %d) { skip; } else { skip; }\n",
			ind, g.randGlobal(), g.cmpOp(), g.rng.Intn(3))
	}
}

func (g *gen) cmpOp() string {
	return []string{"==", "!=", "<", "<=", ">", ">="}[g.rng.Intn(6)]
}

// calleeFor picks a callee with a strictly larger index than the caller to
// keep the call graph acyclic; main (-1) may call any aux function.
func (g *gen) calleeFor(callerIdx int) (string, bool) {
	lo := callerIdx + 1
	if lo >= g.cfg.Funcs {
		return "", false
	}
	return g.fn(lo + g.rng.Intn(g.cfg.Funcs-lo)), true
}
