package lower

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func lowered(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	Program(p)
	if ok, why := IsCore(p); !ok {
		t.Fatalf("lowered program not core: %s\n%s", why, ast.Print(p))
	}
	return p
}

func TestIfDesugarsToChoice(t *testing.T) {
	p := lowered(t, `var x; func main() { if (x == 1) { x = 2; } else { x = 3; } }`)
	main := p.FindFunc("main")
	var choice *ast.ChoiceStmt
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		if c, ok := s.(*ast.ChoiceStmt); ok && choice == nil {
			choice = c
		}
		if _, ok := s.(*ast.IfStmt); ok {
			t.Error("IfStmt survived lowering")
		}
		return true
	})
	if choice == nil {
		t.Fatal("no choice statement produced")
	}
	if len(choice.Branches) != 2 {
		t.Fatalf("choice has %d branches, want 2", len(choice.Branches))
	}
	// Section 3: each branch begins with an assume.
	for i, br := range choice.Branches {
		if len(br.Stmts) == 0 {
			t.Fatalf("branch %d empty", i)
		}
		if _, ok := br.Stmts[0].(*ast.AssumeStmt); !ok {
			t.Errorf("branch %d starts with %T, want AssumeStmt", i, br.Stmts[0])
		}
	}
}

func TestWhileDesugarsToIter(t *testing.T) {
	p := lowered(t, `var x; func main() { while (x < 5) { x = x + 1; } }`)
	main := p.FindFunc("main")
	var iter *ast.IterStmt
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		if it, ok := s.(*ast.IterStmt); ok {
			iter = it
		}
		if _, ok := s.(*ast.WhileStmt); ok {
			t.Error("WhileStmt survived lowering")
		}
		return true
	})
	if iter == nil {
		t.Fatal("no iter produced")
	}
	// iter body starts with assume(cond); after the loop an assume(!cond).
	if _, ok := iter.Body.Stmts[0].(*ast.AssumeStmt); !ok {
		t.Errorf("iter body starts with %T, want AssumeStmt", iter.Body.Stmts[0])
	}
	last := main.Body.Stmts[len(main.Body.Stmts)-1]
	as, ok := last.(*ast.AssumeStmt)
	if !ok {
		t.Fatalf("statement after iter is %T, want AssumeStmt", last)
	}
	if u, ok := as.Cond.(*ast.UnaryExpr); !ok || u.Op != "!" {
		t.Errorf("post-loop assume is not negated: %s", ast.PrintExpr(as.Cond))
	}
}

func TestNestedExpressionsFlattened(t *testing.T) {
	p := lowered(t, `var a; var b; func main() { var x; x = (a + b) * (a - b) + 1; }`)
	main := p.FindFunc("main")
	// After lowering, each assignment RHS is at most one operator deep.
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		if as, ok := s.(*ast.AssignStmt); ok {
			if bin, ok := as.Rhs.(*ast.BinaryExpr); ok {
				if _, nested := bin.X.(*ast.BinaryExpr); nested {
					t.Errorf("nested binary survived: %s", ast.PrintStmt(s))
				}
				if _, nested := bin.Y.(*ast.BinaryExpr); nested {
					t.Errorf("nested binary survived: %s", ast.PrintStmt(s))
				}
			}
		}
		return true
	})
	if len(main.Locals) < 3 {
		t.Errorf("expected fresh temporaries, locals = %v", main.Locals)
	}
}

func TestCallInExpressionHoisted(t *testing.T) {
	p := lowered(t, `
func f(x) { return x; }
func main() { var y; y = f(1) + f(2); }
`)
	main := p.FindFunc("main")
	calls := 0
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		if _, ok := s.(*ast.CallStmt); ok {
			calls++
		}
		return true
	})
	if calls != 2 {
		t.Errorf("got %d hoisted call statements, want 2", calls)
	}
}

func TestDeepLValueBasesFlattened(t *testing.T) {
	p := lowered(t, `
record R { f; next; }
func main() {
  var e;
  e = new R;
  e->next = new R;
  (e->next)->f = 7;
}
`)
	_ = p // IsCore in lowered() is the assertion
}

func TestAssumeKeepsShape(t *testing.T) {
	// assume(*l == 0) must keep its dereference so blocking re-evaluates
	// the lock word (the paper's lock_acquire idiom).
	p := lowered(t, `
var l;
func main() {
  var p;
  p = &l;
  atomic { assume(*p == 0); *p = 1; }
}
`)
	main := p.FindFunc("main")
	found := false
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		if as, ok := s.(*ast.AssumeStmt); ok {
			if bin, ok := as.Cond.(*ast.BinaryExpr); ok {
				if _, ok := bin.X.(*ast.DerefExpr); ok {
					found = true
				}
			}
		}
		return true
	})
	if !found {
		t.Errorf("assume condition lost its dereference:\n%s", ast.Print(p))
	}
}

func TestAsyncArgumentsFlattened(t *testing.T) {
	p := lowered(t, `
func f(x) { return x; }
func main() { var a; async f(a + 1); }
`)
	main := p.FindFunc("main")
	ast.WalkStmts(main.Body, func(s ast.Stmt) bool {
		if as, ok := s.(*ast.AsyncStmt); ok {
			for _, arg := range as.Args {
				switch arg.(type) {
				case *ast.VarExpr, *ast.IntLit, *ast.BoolLit, *ast.FuncLit, *ast.NullLit:
				default:
					t.Errorf("async arg not an operand: %T", arg)
				}
			}
		}
		return true
	})
}

func TestIdempotent(t *testing.T) {
	src := `
record R { f; }
var g;
func f(x) { if (x > 0) { g = x; } return x; }
func main() { var e; e = new R; e->f = f(g * 2 + 1); while (g < 3) { g = g + 1; } }
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	Program(p)
	once := ast.Print(p)
	Program(p)
	twice := ast.Print(p)
	if once != twice {
		t.Errorf("lowering is not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

func TestIsCoreRejectsSurface(t *testing.T) {
	p, err := parser.Parse(`var x; func main() { if (x == 1) { skip; } }`)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := IsCore(p); ok {
		t.Error("IsCore accepted a program with if sugar")
	}
}
