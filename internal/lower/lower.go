// Package lower normalizes surface-syntax programs into the core layer on
// which the KISS transformation and the operational semantics are defined.
//
// Lowering performs, in one pass:
//
//   - Desugaring of if and while exactly as defined in Section 3 of the
//     paper:
//
//     if (v) s1 else s2  ==  choice{assume(v); s1 [] assume(!v); s2}
//     while (v) s        ==  iter{assume(v); s}; assume(!v)
//
//     Conditions richer than a core expression are first assigned to a
//     fresh temporary ("Decisions on an expression can be modeled by first
//     assigning the expression to a fresh variable").
//
//   - Hoisting of calls in expression position into call statements that
//     assign fresh temporaries.
//
//   - Flattening of nested expressions into three-address form: after
//     lowering, every assignment has one of the right-hand-side shapes of
//     Figure 3 (constant, variable, &v, *v, v->f, &v->f, unary/binary over
//     operands, new R) and every statement operand is a literal or a
//     variable.
//
// Lowered programs satisfy IsCore, which the semantics and transformation
// check on entry.
package lower

import (
	"fmt"

	"repro/internal/ast"
)

// Program lowers every function of p in place and returns p. Fresh
// temporaries are appended to each function's locals.
func Program(p *ast.Program) *ast.Program {
	for _, f := range p.Funcs {
		lowerFunc(f)
	}
	return p
}

type funcLowerer struct {
	fn      *ast.Func
	tmpSeq  int
	declSet map[string]bool
}

func lowerFunc(f *ast.Func) {
	fl := &funcLowerer{fn: f, declSet: map[string]bool{}}
	for _, p := range f.Params {
		fl.declSet[p] = true
	}
	for _, l := range f.Locals {
		fl.declSet[l.Name] = true
	}
	f.Body = fl.block(f.Body)
}

func (fl *funcLowerer) fresh(pos ast.Pos) string {
	for {
		name := fmt.Sprintf("__t%d", fl.tmpSeq)
		fl.tmpSeq++
		if !fl.declSet[name] {
			fl.declSet[name] = true
			fl.fn.Locals = append(fl.fn.Locals, &ast.VarDecl{Name: name, Pos: pos})
			return name
		}
	}
}

func (fl *funcLowerer) block(b *ast.Block) *ast.Block {
	out := &ast.Block{Pos: b.Pos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, fl.stmt(s)...)
	}
	return out
}

// stmt lowers one statement into a sequence of core statements.
func (fl *funcLowerer) stmt(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.Block:
		return []ast.Stmt{fl.block(s)}

	case *ast.AssignStmt:
		return fl.assign(s)

	case *ast.AssertStmt:
		pre, cond := fl.coreCond(s.Cond, false)
		return append(pre, &ast.AssertStmt{Cond: cond, Pos: s.Pos})

	case *ast.AssumeStmt:
		// Assume conditions stay as core expressions (no temporaries for
		// the condition itself) so that blocking re-evaluates the actual
		// condition: extracting `t = *l == 0; assume(t)` would block on a
		// stale snapshot forever. Calls inside assume conditions are
		// rejected by sema.
		pre, cond := fl.coreCond(s.Cond, true)
		return append(pre, &ast.AssumeStmt{Cond: cond, Pos: s.Pos})

	case *ast.AtomicStmt:
		return []ast.Stmt{&ast.AtomicStmt{Body: fl.block(s.Body), Pos: s.Pos}}

	case *ast.BenignStmt:
		return []ast.Stmt{&ast.BenignStmt{Body: fl.block(s.Body), Pos: s.Pos}}

	case *ast.CallStmt:
		var pre []ast.Stmt
		fn := s.Fn
		if !isCallTarget(fn) {
			p, op := fl.operand(fn)
			pre, fn = append(pre, p...), op
		}
		args := make([]ast.Expr, len(s.Args))
		for i, a := range s.Args {
			p, op := fl.operand(a)
			pre = append(pre, p...)
			args[i] = op
		}
		return append(pre, &ast.CallStmt{Result: s.Result, Fn: fn, Args: args, Pos: s.Pos})

	case *ast.AsyncStmt:
		var pre []ast.Stmt
		fn := s.Fn
		if !isCallTarget(fn) {
			p, op := fl.operand(fn)
			pre, fn = append(pre, p...), op
		}
		args := make([]ast.Expr, len(s.Args))
		for i, a := range s.Args {
			p, op := fl.operand(a)
			pre = append(pre, p...)
			args[i] = op
		}
		return append(pre, &ast.AsyncStmt{Fn: fn, Args: args, Pos: s.Pos})

	case *ast.ReturnStmt:
		if s.Value == nil {
			return []ast.Stmt{s}
		}
		pre, op := fl.operandOrCore(s.Value)
		return append(pre, &ast.ReturnStmt{Value: op, Pos: s.Pos})

	case *ast.IfStmt:
		// Section 3: if (v) s1 else s2 == choice{assume(v); s1 [] assume(!v); s2}
		pre, cond := fl.coreCond(s.Cond, false)
		then := fl.block(s.Then)
		var els *ast.Block
		if s.Else != nil {
			els = fl.block(s.Else)
		} else {
			els = &ast.Block{Pos: s.Pos}
		}
		thenBr := &ast.Block{Pos: s.Pos}
		thenBr.Stmts = append([]ast.Stmt{&ast.AssumeStmt{Cond: cond, Pos: s.Pos}}, then.Stmts...)
		elseBr := &ast.Block{Pos: s.Pos}
		elseBr.Stmts = append([]ast.Stmt{&ast.AssumeStmt{Cond: negate(cond, s.Pos), Pos: s.Pos}}, els.Stmts...)
		return append(pre, &ast.ChoiceStmt{Branches: []*ast.Block{thenBr, elseBr}, Pos: s.Pos})

	case *ast.WhileStmt:
		// Section 3: while (v) s == iter{assume(v); s}; assume(!v).
		// A condition needing preparatory statements (e.g. a call) is
		// re-prepared on every iteration and once more after the loop.
		pre, cond := fl.coreCond(s.Cond, false)
		body := fl.block(s.Body)
		iterBody := &ast.Block{Pos: s.Pos}
		iterBody.Stmts = append(iterBody.Stmts, pre...)
		iterBody.Stmts = append(iterBody.Stmts, &ast.AssumeStmt{Cond: ast.CloneExpr(cond), Pos: s.Pos})
		iterBody.Stmts = append(iterBody.Stmts, body.Stmts...)
		var out []ast.Stmt
		out = append(out, &ast.IterStmt{Body: iterBody, Pos: s.Pos})
		for _, p := range pre {
			out = append(out, ast.CloneStmt(p))
		}
		out = append(out, &ast.AssumeStmt{Cond: negate(cond, s.Pos), Pos: s.Pos})
		return out

	case *ast.ChoiceStmt:
		c := &ast.ChoiceStmt{Pos: s.Pos}
		for _, b := range s.Branches {
			c.Branches = append(c.Branches, fl.block(b))
		}
		return []ast.Stmt{c}

	case *ast.IterStmt:
		return []ast.Stmt{&ast.IterStmt{Body: fl.block(s.Body), Pos: s.Pos}}

	case *ast.SkipStmt:
		return []ast.Stmt{s}

	case *ast.TsPutStmt, *ast.TsDispatchStmt:
		return []ast.Stmt{s}

	default:
		panic(fmt.Sprintf("lower: unknown statement %T", s))
	}
}

func (fl *funcLowerer) assign(s *ast.AssignStmt) []ast.Stmt {
	var pre []ast.Stmt

	// Normalize the left-hand side: bases of *e and e->f must be variables.
	lhs := s.Lhs
	switch l := lhs.(type) {
	case *ast.VarExpr:
	case *ast.DerefExpr:
		p, base := fl.operand(l.X)
		pre = append(pre, p...)
		lhs = &ast.DerefExpr{X: base, Pos: l.Pos}
	case *ast.FieldExpr:
		p, base := fl.operand(l.X)
		pre = append(pre, p...)
		lhs = &ast.FieldExpr{X: base, Field: l.Field, Pos: l.Pos}
	default:
		panic(fmt.Sprintf("lower: invalid assignment target %T", lhs))
	}

	// Figure 3 has no *v0 = <compound>: when the target is a memory cell,
	// the right-hand side must be an operand.
	if _, isVar := lhs.(*ast.VarExpr); !isVar {
		p, op := fl.operand(s.Rhs)
		pre = append(pre, p...)
		return append(pre, &ast.AssignStmt{Lhs: lhs, Rhs: op, Pos: s.Pos})
	}
	p, rhs := fl.operandOrCore(s.Rhs)
	pre = append(pre, p...)
	return append(pre, &ast.AssignStmt{Lhs: lhs, Rhs: rhs, Pos: s.Pos})
}

// operand lowers e to a literal or variable, emitting preparatory
// statements as needed.
func (fl *funcLowerer) operand(e ast.Expr) ([]ast.Stmt, ast.Expr) {
	if isOperand(e) {
		return nil, e
	}
	pre, core := fl.operandOrCore(e)
	tmp := fl.fresh(e.ExprPos())
	pre = append(pre, &ast.AssignStmt{Lhs: &ast.VarExpr{Name: tmp, Pos: e.ExprPos()}, Rhs: core, Pos: e.ExprPos()})
	return pre, &ast.VarExpr{Name: tmp, Pos: e.ExprPos()}
}

// operandOrCore lowers e to a core right-hand-side expression (one level of
// structure over operands), emitting preparatory statements as needed.
func (fl *funcLowerer) operandOrCore(e ast.Expr) ([]ast.Stmt, ast.Expr) {
	switch e := e.(type) {
	case *ast.IntLit, *ast.BoolLit, *ast.FuncLit, *ast.NullLit, *ast.VarExpr,
		*ast.AddrOfExpr, *ast.NewExpr, *ast.TsSizeExpr:
		return nil, e
	case *ast.DerefExpr:
		pre, base := fl.operand(e.X)
		return pre, &ast.DerefExpr{X: base, Pos: e.Pos}
	case *ast.FieldExpr:
		pre, base := fl.operand(e.X)
		return pre, &ast.FieldExpr{X: base, Field: e.Field, Pos: e.Pos}
	case *ast.AddrFieldExpr:
		pre, base := fl.operand(e.X)
		return pre, &ast.AddrFieldExpr{X: base, Field: e.Field, Pos: e.Pos}
	case *ast.UnaryExpr:
		pre, x := fl.operand(e.X)
		return pre, &ast.UnaryExpr{Op: e.Op, X: x, Pos: e.Pos}
	case *ast.BinaryExpr:
		pre, x := fl.operand(e.X)
		p2, y := fl.operand(e.Y)
		pre = append(pre, p2...)
		return pre, &ast.BinaryExpr{Op: e.Op, X: x, Y: y, Pos: e.Pos}
	case *ast.RaceCellExpr:
		pre, x := fl.operand(e.X)
		return pre, &ast.RaceCellExpr{X: x, Pos: e.Pos}
	case *ast.CallExpr:
		var pre []ast.Stmt
		fn := e.Fn
		if !isCallTarget(fn) {
			p, op := fl.operand(fn)
			pre, fn = append(pre, p...), op
		}
		args := make([]ast.Expr, len(e.Args))
		for i, a := range e.Args {
			p, op := fl.operand(a)
			pre = append(pre, p...)
			args[i] = op
		}
		tmp := fl.fresh(e.Pos)
		pre = append(pre, &ast.CallStmt{Result: tmp, Fn: fn, Args: args, Pos: e.Pos})
		return pre, &ast.VarExpr{Name: tmp, Pos: e.Pos}
	default:
		panic(fmt.Sprintf("lower: unknown expression %T", e))
	}
}

// coreCond lowers a condition. When keepShape is true (assume conditions),
// call-free conditions are preserved structurally even if not core, so that
// blocking re-evaluates them; they are decomposed only when they contain
// calls, in which case lowering falls back to a temporary.
func (fl *funcLowerer) coreCond(e ast.Expr, keepShape bool) ([]ast.Stmt, ast.Expr) {
	if keepShape && !containsCall(e) {
		return nil, e
	}
	if isCoreExpr(e) {
		return nil, e
	}
	return fl.operandOrCore(e)
}

func containsCall(e ast.Expr) bool {
	found := false
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		if e == nil || found {
			return
		}
		switch e := e.(type) {
		case *ast.CallExpr:
			found = true
		case *ast.DerefExpr:
			walk(e.X)
		case *ast.FieldExpr:
			walk(e.X)
		case *ast.AddrFieldExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.RaceCellExpr:
			walk(e.X)
		}
	}
	walk(e)
	return found
}

func negate(e ast.Expr, pos ast.Pos) ast.Expr {
	return &ast.UnaryExpr{Op: "!", X: ast.CloneExpr(e), Pos: pos}
}

func isOperand(e ast.Expr) bool {
	switch e.(type) {
	case *ast.IntLit, *ast.BoolLit, *ast.FuncLit, *ast.NullLit, *ast.VarExpr:
		return true
	}
	return false
}

func isCallTarget(e ast.Expr) bool {
	switch e.(type) {
	case *ast.VarExpr, *ast.FuncLit:
		return true
	}
	return false
}

// isCoreExpr reports whether e is a core right-hand-side expression: at
// most one level of structure whose children are operands.
func isCoreExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit, *ast.BoolLit, *ast.FuncLit, *ast.NullLit, *ast.VarExpr,
		*ast.AddrOfExpr, *ast.NewExpr, *ast.TsSizeExpr:
		return true
	case *ast.DerefExpr:
		return isOperand(e.X)
	case *ast.FieldExpr:
		return isOperand(e.X)
	case *ast.AddrFieldExpr:
		return isOperand(e.X)
	case *ast.UnaryExpr:
		return isOperand(e.X)
	case *ast.BinaryExpr:
		return isOperand(e.X) && isOperand(e.Y)
	case *ast.RaceCellExpr:
		return isOperand(e.X)
	}
	return false
}

// IsCore reports whether the program is fully in core form: no if/while
// sugar, no calls in expression position, and all statements in
// three-address shape. The returned string describes the first violation
// when the program is not core.
func IsCore(p *ast.Program) (bool, string) {
	for _, f := range p.Funcs {
		var violation string
		ast.WalkStmts(f.Body, func(s ast.Stmt) bool {
			if violation != "" {
				return false
			}
			switch s := s.(type) {
			case *ast.IfStmt:
				violation = fmt.Sprintf("%s: if statement not desugared", s.Pos)
			case *ast.WhileStmt:
				violation = fmt.Sprintf("%s: while statement not desugared", s.Pos)
			case *ast.AssignStmt:
				ok := false
				switch l := s.Lhs.(type) {
				case *ast.VarExpr:
					ok = isCoreExpr(s.Rhs)
				case *ast.DerefExpr:
					ok = isOperand(l.X) && isOperand(s.Rhs)
				case *ast.FieldExpr:
					ok = isOperand(l.X) && isOperand(s.Rhs)
				}
				if !ok {
					violation = fmt.Sprintf("%s: assignment not in core form: %s", s.Pos, ast.PrintStmt(s))
				}
			case *ast.AssertStmt:
				if !isCoreExprTree(s.Cond) {
					violation = fmt.Sprintf("%s: assert condition not core", s.Pos)
				}
			case *ast.AssumeStmt:
				if !isCoreExprTree(s.Cond) {
					violation = fmt.Sprintf("%s: assume condition not core", s.Pos)
				}
			case *ast.CallStmt:
				if !isCallTarget(s.Fn) {
					violation = fmt.Sprintf("%s: call target not a variable or function name", s.Pos)
				}
				for _, a := range s.Args {
					if !isOperand(a) {
						violation = fmt.Sprintf("%s: call argument not an operand", s.Pos)
					}
				}
			case *ast.AsyncStmt:
				if !isCallTarget(s.Fn) {
					violation = fmt.Sprintf("%s: async target not a variable or function name", s.Pos)
				}
				for _, a := range s.Args {
					if !isOperand(a) {
						violation = fmt.Sprintf("%s: async argument not an operand", s.Pos)
					}
				}
			case *ast.ReturnStmt:
				if s.Value != nil && !isCoreExpr(s.Value) {
					violation = fmt.Sprintf("%s: return value not core", s.Pos)
				}
			}
			return violation == ""
		})
		if violation != "" {
			return false, f.Name + ": " + violation
		}
	}
	return true, ""
}

// isCoreExprTree accepts effect-free expression trees of arbitrary depth
// built from core constructors (used for assume/assert conditions, which
// may keep their shape for faithful blocking semantics).
func isCoreExprTree(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit, *ast.BoolLit, *ast.FuncLit, *ast.NullLit, *ast.VarExpr,
		*ast.AddrOfExpr, *ast.TsSizeExpr:
		return true
	case *ast.DerefExpr:
		return isCoreExprTree(e.X)
	case *ast.FieldExpr:
		return isCoreExprTree(e.X)
	case *ast.AddrFieldExpr:
		return isCoreExprTree(e.X)
	case *ast.UnaryExpr:
		return isCoreExprTree(e.X)
	case *ast.BinaryExpr:
		return isCoreExprTree(e.X) && isCoreExprTree(e.Y)
	case *ast.RaceCellExpr:
		return isCoreExprTree(e.X)
	}
	return false
}
