package drivers

// FakemodemRefcountSource models the reference-counting logic of the
// fakemodem driver for the Section 6 experiment: "We examined the code
// dealing with reference counting in the fakemodem driver and observed
// that it behaved exactly according to the fixed implementation of
// BCSP_IoIncrement. Hence, we believe that the fakemodem driver does not
// have this error."
//
// The model therefore mirrors the *fixed* increment discipline
// (increment-then-check) on fakemodem-flavored names; KISS reports no
// errors on it at ts bound 1, matching the paper.
const FakemodemRefcountSource = `
record FM_EXTENSION {
  OpenCount;
  Removing;
  RemoveEvent;
}

var stopped;

func main() {
  var e;
  e = new FM_EXTENSION;
  e->OpenCount = 1;
  e->Removing = false;
  e->RemoveEvent = false;
  stopped = false;
  async FakeModem_RemoveDevice(e);
  FakeModem_DispatchRead(e);
}

func FakeModem_DispatchRead(e) {
  var status;
  status = FakeModem_IoIncrement(e);
  if (status == 0) {
    // process the read request
    assert(!stopped);
  }
  FakeModem_IoDecrement(e);
}

func FakeModem_RemoveDevice(e) {
  e->Removing = true;
  FakeModem_IoDecrement(e);
  assume(e->RemoveEvent);
  // free allocated resources
  stopped = true;
}

// FakeModem_IoIncrement follows the fixed discipline: take the reference
// first, then check the removing flag, backing out on failure.
func FakeModem_IoIncrement(e) {
  atomic {
    e->OpenCount = e->OpenCount + 1;
  }
  if (e->Removing) {
    FakeModem_IoDecrement(e);
    return -1;
  }
  return 0;
}

func FakeModem_IoDecrement(e) {
  var count;
  atomic {
    e->OpenCount = e->OpenCount - 1;
    count = e->OpenCount;
  }
  if (count == 0) {
    e->RemoveEvent = true;
  }
}
`
